package report

import (
	"strings"
	"testing"

	"xeonomp/internal/stats"
)

func TestBarChartSVG(t *testing.T) {
	svg, err := BarChartSVG("Figure 3", []string{"CG", "MG"}, []string{"a", "b", "c"},
		[][]float64{{1, 2, 3}, {2, 1.5, 2.5}})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<svg", "</svg>", "Figure 3", "CG", "MG", "<rect", "#4878d0"} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	// One bar rect per value plus background and legend swatches.
	if n := strings.Count(svg, "<rect"); n < 6 {
		t.Errorf("only %d rects", n)
	}
}

func TestBarChartSVGErrors(t *testing.T) {
	if _, err := BarChartSVG("t", []string{"g"}, []string{"s"}, nil); err == nil {
		t.Error("row mismatch accepted")
	}
	if _, err := BarChartSVG("t", []string{"g"}, []string{"s"}, [][]float64{{1, 2}}); err == nil {
		t.Error("column mismatch accepted")
	}
	if _, err := BarChartSVG("t", []string{"g"}, []string{"s"}, [][]float64{{-1}}); err == nil {
		t.Error("negative value accepted")
	}
}

func TestBarChartSVGAllZero(t *testing.T) {
	svg, err := BarChartSVG("z", []string{"g"}, []string{"s"}, [][]float64{{0}})
	if err != nil || !strings.Contains(svg, "</svg>") {
		t.Fatalf("zero chart failed: %v", err)
	}
}

func TestBoxPlotSVG(t *testing.T) {
	boxes := []stats.BoxPlot{
		{Min: 1, Q1: 1.5, Median: 2, Q3: 2.5, Max: 3},
		{Min: 2, Q1: 2.1, Median: 2.3, Q3: 2.6, Max: 3.5},
	}
	svg, err := BoxPlotSVG("Figure 5", []string{"HT off -4-2", "HT on -8-2"}, boxes)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 5", "HT off -4-2", "rotate(-45", "<line"} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
}

func TestBoxPlotSVGErrors(t *testing.T) {
	if _, err := BoxPlotSVG("t", []string{"a"}, nil); err == nil {
		t.Error("label mismatch accepted")
	}
	if _, err := BoxPlotSVG("t", nil, nil); err == nil {
		t.Error("empty boxes accepted")
	}
}

func TestBoxPlotSVGDegenerate(t *testing.T) {
	boxes := []stats.BoxPlot{{Min: 2, Q1: 2, Median: 2, Q3: 2, Max: 2}}
	if _, err := BoxPlotSVG("t", []string{"x"}, boxes); err != nil {
		t.Fatal(err)
	}
}

func TestEscape(t *testing.T) {
	if escape("a<b&c>d") != "a&lt;b&amp;c&gt;d" {
		t.Fatal("escape wrong")
	}
}

func TestTrimNum(t *testing.T) {
	if trimNum(2.50) != "2.5" || trimNum(3.00) != "3" || trimNum(0.25) != "0.25" {
		t.Fatal("number trimming wrong")
	}
}
