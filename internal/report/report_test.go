package report

import (
	"strings"
	"testing"

	"xeonomp/internal/stats"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("My Title", "name", "value")
	tb.Add("alpha", "1")
	tb.AddF("beta", 2.5)
	tb.AddF("gamma", 42, int64(7))
	out := tb.String()
	for _, want := range []string{"My Title", "name", "value", "alpha", "2.500", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	// Header separator present.
	if !strings.Contains(out, "----") {
		t.Error("missing separator line")
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.Add("short", "x")
	tb.Add("muchlongercell", "y")
	lines := strings.Split(strings.TrimSpace(tb.String()), "\n")
	// All data lines must have the same column start for "x"/"y".
	xi := strings.Index(lines[2], "x")
	yi := strings.Index(lines[3], "y")
	if xi != yi {
		t.Fatalf("columns misaligned: %d vs %d\n%s", xi, yi, tb.String())
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("ignored", "a", "b")
	tb.Add("1", "2")
	tb.Add("3", "4")
	want := "a,b\n1,2\n3,4\n"
	if got := tb.CSV(); got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestAddFTypes(t *testing.T) {
	tb := NewTable("", "c")
	tb.AddF(struct{ X int }{1}) // fallback formatting must not panic
	if len(tb.Rows) != 1 {
		t.Fatal("row not added")
	}
}

func TestBoxPlots(t *testing.T) {
	boxes := []stats.BoxPlot{
		{Min: 1, Q1: 1.5, Median: 2, Q3: 2.5, Max: 3, N: 10},
		{Min: 2, Q1: 2.2, Median: 2.4, Q3: 2.8, Max: 4, N: 10},
	}
	out := BoxPlots("Figure 5", []string{"HT off -4-2", "HT on -8-2"}, boxes, 40)
	for _, want := range []string{"Figure 5", "HT off -4-2", "HT on -8-2", "#", "="} {
		if !strings.Contains(out, want) {
			t.Errorf("box plot missing %q:\n%s", want, out)
		}
	}
	// Five-number summary shown.
	if !strings.Contains(out, "1.00/1.50/2.00/2.50/3.00") {
		t.Errorf("summary numbers missing:\n%s", out)
	}
}

func TestBoxPlotsDegenerate(t *testing.T) {
	// A single constant sample must not divide by zero.
	boxes := []stats.BoxPlot{{Min: 2, Q1: 2, Median: 2, Q3: 2, Max: 2, N: 1}}
	out := BoxPlots("", []string{"x"}, boxes, 30)
	if !strings.Contains(out, "#") {
		t.Fatalf("degenerate box not rendered:\n%s", out)
	}
}

func TestBoxPlotsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BoxPlots("", []string{"a"}, nil, 40)
}

func TestBoxPlotsTinyWidthClamped(t *testing.T) {
	boxes := []stats.BoxPlot{{Min: 0, Q1: 1, Median: 2, Q3: 3, Max: 4}}
	out := BoxPlots("", []string{"a"}, boxes, 5) // clamps to a sane width
	if len(out) == 0 {
		t.Fatal("no output")
	}
}

func TestMarkdown(t *testing.T) {
	tb := NewTable("T", "a", "b")
	tb.Add("1", "2")
	md := tb.Markdown()
	for _, want := range []string{"**T**", "| a | b |", "| --- | --- |", "| 1 | 2 |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}
