// Package report renders the characterization results as aligned text
// tables, CSV, and ASCII box-and-whisker plots — the output layer of
// cmd/xeonchar that stands in for the paper's figures.
package report

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"xeonomp/internal/stats"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; the cell count should match the headers.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddF appends a row of formatted values: strings pass through, float64
// render with %.3f, ints with %d.
func (t *Table) AddF(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case int64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Add(row...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s", w, c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no quoting: callers do
// not put commas in cells).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// JSON renders the table as indented JSON ({title, headers, rows}) with a
// trailing newline — the machine-readable twin of String/CSV that
// cmd/xeonchar emits next to each CSV under -outdir.
func (t *Table) JSON() ([]byte, error) {
	out := struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}{t.Title, t.Headers, t.Rows}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// BoxPlots renders horizontal ASCII box-and-whisker plots, one per label,
// sharing a common scale — the Figure-5 rendering. The box spans Q1..Q3
// with the median marked '|', whiskers span min..max, matching the paper's
// description of its plot.
func BoxPlots(title string, labels []string, boxes []stats.BoxPlot, width int) string {
	if len(labels) != len(boxes) {
		panic("report: labels and boxes length mismatch")
	}
	if width < 20 {
		width = 60
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, bx := range boxes {
		lo = math.Min(lo, bx.Min)
		hi = math.Max(hi, bx.Max)
	}
	if !(hi > lo) {
		hi = lo + 1
	}
	span := hi - lo
	pos := func(v float64) int {
		p := int(math.Round((v - lo) / span * float64(width-1)))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}

	labW := 0
	for _, l := range labels {
		if len(l) > labW {
			labW = len(l)
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	fmt.Fprintf(&b, "%-*s  %-*s  %s\n", labW, "config", width, fmt.Sprintf("scale %.2f .. %.2f", lo, hi), "min/q1/med/q3/max")
	for i, bx := range boxes {
		line := make([]byte, width)
		for j := range line {
			line[j] = ' '
		}
		for j := pos(bx.Min); j <= pos(bx.Max); j++ {
			line[j] = '-'
		}
		for j := pos(bx.Q1); j <= pos(bx.Q3); j++ {
			line[j] = '='
		}
		line[pos(bx.Min)] = '|'
		line[pos(bx.Max)] = '|'
		line[pos(bx.Median)] = '#'
		fmt.Fprintf(&b, "%-*s  %s  %.2f/%.2f/%.2f/%.2f/%.2f\n",
			labW, labels[i], string(line), bx.Min, bx.Q1, bx.Median, bx.Q3, bx.Max)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Headers)) + "\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	return b.String()
}
