package report

import (
	"fmt"
	"math"
	"strings"

	"xeonomp/internal/stats"
)

// SVG rendering of the paper's figure styles: grouped bar charts (Figures
// 2-4) and box-and-whisker plots (Figure 5). The output is self-contained
// SVG 1.1 with no external dependencies, suitable for embedding in reports.

// svgPalette cycles through distinguishable series colours.
var svgPalette = []string{
	"#4878d0", "#ee854a", "#6acc64", "#d65f5f",
	"#956cb4", "#8c613c", "#dc7ec0", "#797979",
}

type svgCanvas struct {
	b    strings.Builder
	w, h int
}

func newCanvas(w, h int) *svgCanvas {
	c := &svgCanvas{w: w, h: h}
	fmt.Fprintf(&c.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif" font-size="11">`+"\n", w, h, w, h)
	fmt.Fprintf(&c.b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	return c
}

func (c *svgCanvas) rect(x, y, w, h float64, fill string) {
	fmt.Fprintf(&c.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n", x, y, w, h, fill)
}

func (c *svgCanvas) line(x1, y1, x2, y2 float64, stroke string) {
	fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n", x1, y1, x2, y2, stroke)
}

func (c *svgCanvas) text(x, y float64, anchor, s string) {
	fmt.Fprintf(&c.b, `<text x="%.1f" y="%.1f" text-anchor="%s">%s</text>`+"\n", x, y, anchor, escape(s))
}

func (c *svgCanvas) close() string {
	c.b.WriteString("</svg>\n")
	return c.b.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// BarChartSVG renders grouped bars: one group per row label, one bar per
// series. values[group][series] must be rectangular and non-negative.
func BarChartSVG(title string, groups, series []string, values [][]float64) (string, error) {
	if len(groups) != len(values) {
		return "", fmt.Errorf("report: %d groups but %d value rows", len(groups), len(values))
	}
	for i, row := range values {
		if len(row) != len(series) {
			return "", fmt.Errorf("report: group %d has %d values for %d series", i, len(row), len(series))
		}
	}
	maxV := 0.0
	for _, row := range values {
		for _, v := range row {
			if v < 0 {
				return "", fmt.Errorf("report: negative bar value %v", v)
			}
			maxV = math.Max(maxV, v)
		}
	}
	if maxV == 0 {
		maxV = 1
	}

	const (
		mLeft, mRight, mTop, mBottom = 50.0, 20.0, 40.0, 60.0
		plotH                        = 240.0
	)
	groupW := math.Max(30, float64(len(series))*12+8)
	plotW := groupW * float64(len(groups))
	width := int(mLeft + plotW + mRight)
	height := int(mTop + plotH + mBottom)
	c := newCanvas(width, height)
	c.text(float64(width)/2, 18, "middle", title)

	// Axes and gridlines.
	c.line(mLeft, mTop, mLeft, mTop+plotH, "#333")
	c.line(mLeft, mTop+plotH, mLeft+plotW, mTop+plotH, "#333")
	for i := 0; i <= 4; i++ {
		v := maxV * float64(i) / 4
		y := mTop + plotH - plotH*float64(i)/4
		c.line(mLeft, y, mLeft+plotW, y, "#ddd")
		c.text(mLeft-4, y+4, "end", trimNum(v))
	}

	barW := (groupW - 8) / float64(len(series))
	for gi, row := range values {
		gx := mLeft + groupW*float64(gi) + 4
		for si, v := range row {
			h := plotH * v / maxV
			c.rect(gx+barW*float64(si), mTop+plotH-h, barW-1, h, svgPalette[si%len(svgPalette)])
		}
		c.text(gx+(groupW-8)/2, mTop+plotH+14, "middle", groups[gi])
	}

	// Legend.
	lx := mLeft
	ly := mTop + plotH + 32.0
	for si, name := range series {
		c.rect(lx, ly-9, 10, 10, svgPalette[si%len(svgPalette)])
		c.text(lx+14, ly, "start", name)
		lx += float64(14 + 7*len(name) + 16)
		if lx > float64(width)-mRight-80 {
			lx = mLeft
			ly += 16
		}
	}
	return c.close(), nil
}

// BoxPlotSVG renders vertical box-and-whisker plots, one per label — the
// Figure 5 style (box = interquartile range, whiskers = min/max, bar =
// median).
func BoxPlotSVG(title string, labels []string, boxes []stats.BoxPlot) (string, error) {
	if len(labels) != len(boxes) {
		return "", fmt.Errorf("report: %d labels for %d boxes", len(labels), len(boxes))
	}
	if len(boxes) == 0 {
		return "", fmt.Errorf("report: no boxes")
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, b := range boxes {
		lo = math.Min(lo, b.Min)
		hi = math.Max(hi, b.Max)
	}
	if !(hi > lo) {
		hi = lo + 1
	}
	span := hi - lo

	const (
		mLeft, mRight, mTop, mBottom = 50.0, 20.0, 40.0, 70.0
		plotH                        = 240.0
		colW                         = 56.0
	)
	plotW := colW * float64(len(boxes))
	width := int(mLeft + plotW + mRight)
	height := int(mTop + plotH + mBottom)
	c := newCanvas(width, height)
	c.text(float64(width)/2, 18, "middle", title)

	yOf := func(v float64) float64 { return mTop + plotH - plotH*(v-lo)/span }
	c.line(mLeft, mTop, mLeft, mTop+plotH, "#333")
	for i := 0; i <= 4; i++ {
		v := lo + span*float64(i)/4
		y := yOf(v)
		c.line(mLeft, y, mLeft+plotW, y, "#ddd")
		c.text(mLeft-4, y+4, "end", trimNum(v))
	}

	for i, b := range boxes {
		cx := mLeft + colW*float64(i) + colW/2
		// Whiskers.
		c.line(cx, yOf(b.Min), cx, yOf(b.Max), "#333")
		c.line(cx-8, yOf(b.Min), cx+8, yOf(b.Min), "#333")
		c.line(cx-8, yOf(b.Max), cx+8, yOf(b.Max), "#333")
		// Box.
		top := yOf(b.Q3)
		c.rect(cx-14, top, 28, math.Max(1, yOf(b.Q1)-top), svgPalette[0])
		// Median.
		c.line(cx-14, yOf(b.Median), cx+14, yOf(b.Median), "#fff")
		// Rotated label.
		fmt.Fprintf(&c.b, `<text x="%.1f" y="%.1f" text-anchor="end" transform="rotate(-45 %.1f %.1f)">%s</text>`+"\n",
			cx, mTop+plotH+14, cx, mTop+plotH+14, escape(labels[i]))
	}
	return c.close(), nil
}

func trimNum(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
