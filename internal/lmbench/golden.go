package lmbench

import (
	"xeonomp/internal/golden"
	"xeonomp/internal/units"
)

// Golden artifact names. "lmbench" pins the simulated Section-3
// measurements against themselves (tight band — catches machine-model
// drift); "lmbench-paper" pins them against the paper's published targets
// (wide band — catches calibration rot). Both are checked by the same
// machinery in cmd/xeonchar -check and cmd/lmbench -check.
const (
	GoldenName      = "lmbench"
	PaperGoldenName = "lmbench-paper"
)

// metricIDs in Result field order; frozen — golden artifacts key on them.
var metricIDs = []struct {
	id, unit string
	get      func(r Result) float64
}{
	{"l1_latency_ns", "ns", func(r Result) float64 { return r.L1Ns }},
	{"l2_latency_ns", "ns", func(r Result) float64 { return r.L2Ns }},
	{"mem_latency_ns", "ns", func(r Result) float64 { return r.MemNs }},
	{"read_bw_1chip_gbs", "GB/s", func(r Result) float64 { return r.ReadBW1 / units.GB }},
	{"write_bw_1chip_gbs", "GB/s", func(r Result) float64 { return r.WriteBW1 / units.GB }},
	{"read_bw_2chip_gbs", "GB/s", func(r Result) float64 { return r.ReadBW2 / units.GB }},
	{"write_bw_2chip_gbs", "GB/s", func(r Result) float64 { return r.WriteBW2 / units.GB }},
}

// Artifact serializes the measurements under the given artifact name.
// LMbench is scale-independent, so no scale/seed provenance is stamped.
func (r Result) Artifact(name string, tol golden.Tolerance) *golden.Artifact {
	a := golden.New(name, tol)
	a.Note = "Section 3 — simulated LMbench latencies and streaming bandwidths"
	for _, m := range metricIDs {
		a.AddUnit(m.id, m.get(r), m.unit)
	}
	return a
}

// PaperTargets returns the pinned artifact holding the paper's Section-3
// numbers from DESIGN §3 — L1 1.43 ns, L2 10.6 ns, memory 136.85 ns;
// 3.57/1.77 GB/s single-chip and 4.43/2.6 GB/s dual-chip read/write — with
// the calibration bands the test suite has always enforced (5% everywhere,
// 20% on dual-chip write, where write-combining on the real box beats the
// RFO+writeback model; see lmbench_test.go). -update-golden rewrites this
// file from these constants, never from a measurement: the paper is the
// source of truth.
func PaperTargets() *golden.Artifact {
	a := golden.New(PaperGoldenName, golden.Relative(0.05))
	a.Note = "paper targets from DESIGN §3; compared against live simulated measurements"
	a.Add("l1_latency_ns", 1.43)
	a.Add("l2_latency_ns", 10.6)
	a.Add("mem_latency_ns", 136.85)
	a.Add("read_bw_1chip_gbs", 3.57)
	a.Add("write_bw_1chip_gbs", 1.77)
	a.Add("read_bw_2chip_gbs", 4.43)
	a.AddTol("write_bw_2chip_gbs", 2.6, golden.Relative(0.20))
	return a
}
