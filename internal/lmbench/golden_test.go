package lmbench

import (
	"testing"

	"xeonomp/internal/golden"
)

// The pinned DESIGN §3 targets must accept the live simulated
// measurements — the same calibration gate as TestSection3Calibration,
// routed through the golden machinery cmd/xeonchar -check uses.
func TestPaperTargetsAcceptSimulatedMeasurements(t *testing.T) {
	r, err := Measure(newMachine(t))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := golden.Compare(PaperTargets(), r.Artifact(PaperGoldenName, golden.Exact()))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("simulated measurements outside the paper's calibration bands:\n%s", rep)
	}
	if rep.Checked != 7 {
		t.Fatalf("checked %d metrics, want 7", rep.Checked)
	}
}

// The tight self-artifact is a fixed point against a second measurement —
// the simulator is deterministic.
func TestMeasurementArtifactIsDeterministic(t *testing.T) {
	r1, err := Measure(newMachine(t))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Measure(newMachine(t))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := golden.Compare(
		r1.Artifact(GoldenName, golden.Relative(1e-9)),
		r2.Artifact(GoldenName, golden.Relative(1e-9)))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("two measurements disagree:\n%s", rep)
	}
}

// A broken latency model — e.g. an L2 suddenly twice as slow — is caught
// by the paper-target artifact with the cell named.
func TestPaperTargetsCatchModelDrift(t *testing.T) {
	r, err := Measure(newMachine(t))
	if err != nil {
		t.Fatal(err)
	}
	r.L2Ns *= 2
	rep, err := golden.Compare(PaperTargets(), r.Artifact(PaperGoldenName, golden.Exact()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("doubled L2 latency passed the calibration band")
	}
	if len(rep.Drifts) != 1 || rep.Drifts[0].ID != "l2_latency_ns" {
		t.Fatalf("drifts = %+v", rep.Drifts)
	}
}
