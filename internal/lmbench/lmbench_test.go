package lmbench

import (
	"math"
	"testing"

	"xeonomp/internal/machine"
	"xeonomp/internal/units"
)

func newMachine(t *testing.T) *machine.Machine {
	t.Helper()
	m, err := machine.New(machine.PaxvilleSMP())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// within checks a measured value against a paper target with a relative
// tolerance.
func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want)/want > tol {
		t.Errorf("%s = %.3f, want %.3f (±%.0f%%)", name, got, want, tol*100)
	}
}

// TestSection3Calibration asserts the paper's Section 3 measurements — the
// gate every other experiment depends on.
func TestSection3Calibration(t *testing.T) {
	m := newMachine(t)
	r, err := Measure(m)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "L1 latency (ns)", r.L1Ns, 1.43, 0.05)
	within(t, "L2 latency (ns)", r.L2Ns, 10.6, 0.05)
	within(t, "memory latency (ns)", r.MemNs, 136.85, 0.05)
	within(t, "read BW 1 chip", r.ReadBW1/1e9, 3.57, 0.05)
	within(t, "write BW 1 chip", r.WriteBW1/1e9, 1.77, 0.05)
	within(t, "read BW 2 chips", r.ReadBW2/1e9, 4.43, 0.05)
	// The write-combining benefits on the real box push dual-chip writes
	// to 2.6 GB/s; the RFO+WB model lands at read/2 — a documented gap.
	within(t, "write BW 2 chips", r.WriteBW2/1e9, 2.6, 0.20)
}

func TestLatencyStaircase(t *testing.T) {
	m := newMachine(t)
	sizes := []int64{
		4 * units.KiB, 8 * units.KiB, // L1 plateau
		64 * units.KiB, 256 * units.KiB, // L2 plateau
		8 * units.MiB, 32 * units.MiB, // memory plateau
	}
	pts, err := LatencyCurve(m, sizes)
	if err != nil {
		t.Fatal(err)
	}
	// Monotone non-decreasing in working-set size.
	for i := 1; i < len(pts); i++ {
		if pts[i].LatencyNs+1e-9 < pts[i-1].LatencyNs {
			t.Fatalf("latency decreased with size: %+v", pts)
		}
	}
	// The three plateaus are distinct by an order of magnitude each.
	if pts[1].LatencyNs > 3 || pts[3].LatencyNs < 5 || pts[3].LatencyNs > 30 || pts[5].LatencyNs < 100 {
		t.Fatalf("plateaus wrong: %+v", pts)
	}
}

func TestLatencyErrors(t *testing.T) {
	m := newMachine(t)
	if _, err := Latency(m, 0); err == nil {
		t.Error("zero size accepted")
	}
}

func TestBandwidthErrors(t *testing.T) {
	m := newMachine(t)
	if _, err := ReadBandwidth(m, 0); err == nil {
		t.Error("zero chips accepted")
	}
	if _, err := ReadBandwidth(m, 3); err == nil {
		t.Error("three chips accepted on a two-chip machine")
	}
}

func TestDualChipBeatsSingleChip(t *testing.T) {
	m := newMachine(t)
	r1, err := ReadBandwidth(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ReadBandwidth(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r2 <= r1 {
		t.Fatalf("dual-chip bandwidth %.3g not above single-chip %.3g", r2, r1)
	}
	// But far from 2x: the shared memory controller binds (the paper's
	// 4.43/3.57 = 1.24 ratio).
	if r2/r1 > 1.5 {
		t.Fatalf("dual/single ratio %.2f too high; controller should bind", r2/r1)
	}
}

func TestWritesCostTwoTransfers(t *testing.T) {
	m := newMachine(t)
	r, err := ReadBandwidth(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := WriteBandwidth(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	ratio := r / w
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("read/write ratio %.2f, want ~2 (RFO + writeback)", ratio)
	}
}

func TestMeasureLeavesMachineClean(t *testing.T) {
	m := newMachine(t)
	if _, err := Measure(m); err != nil {
		t.Fatal(err)
	}
	if m.Clock() != 0 {
		t.Error("machine clock not reset after measurement")
	}
	if m.Mem.ReadBytes() != 0 {
		t.Error("memory counters not reset after measurement")
	}
}
