// Package lmbench reproduces the LMbench measurements of the paper's
// Section 3 against the simulated memory system: lat_mem_rd-style dependent
// pointer chases that expose the L1 / L2 / main-memory latency plateaus, and
// bw_mem-style streaming reads and writes that expose the single-chip FSB
// limit and the dual-chip memory-controller limit.
//
// The paper's targets: L1 1.43 ns, L2 10.6 ns, memory 136.85 ns; read
// bandwidth 3.57 GB/s (one chip) and 4.43 GB/s (two chips); write bandwidth
// 1.77 and 2.6 GB/s. These measurements gate every other experiment — if the
// machine model drifts from them, nothing downstream is trustworthy, so the
// test suite asserts them.
package lmbench

import (
	"fmt"

	"xeonomp/internal/bus"
	"xeonomp/internal/machine"
	"xeonomp/internal/units"
)

// l1HitCycles is the pipelined L1 load-to-use latency visible to a
// dependent chase. It is an lmbench-visible quantity, not an exposed stall,
// which is why it lives here rather than in cpu.Latencies.
const l1HitCycles = 4

// Latency measures the average nanoseconds per dependent load of a pointer
// chase over a working set of the given size (bytes), using chip 0 core 0 of
// the machine. It mirrors lat_mem_rd with a 64-byte stride.
func Latency(m *machine.Machine, size int64) (float64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("lmbench: size %d", size)
	}
	core := m.Cores()[0]
	fsb := m.Chips[0].FSB
	const stride = 64
	base := uint64(1) << 32
	n := size / stride
	if n < 1 {
		n = 1
	}

	// Two passes over the set: the first warms the caches, the second is
	// measured — exactly how lat_mem_rd reaches steady state.
	var now int64
	measure := func(count bool) int64 {
		var cycles int64
		for i := int64(0); i < n; i++ {
			addr := base + uint64(i)*stride
			lat := int64(l1HitCycles)
			if !core.L1D.Lookup(addr, false).Hit {
				if core.L2.Lookup(addr, false).Hit {
					lat += core.Lat.L2Hit
				} else {
					done := fsb.Issue(now, bus.DemandRead)
					lat += done - now
					core.L2.Fill(addr, false, false)
				}
				core.L1D.Fill(addr, false, false)
			}
			now += lat
			cycles += lat
		}
		if count {
			return cycles
		}
		return 0
	}
	measure(false)
	total := measure(true)
	return m.Cfg.Freq.Nanoseconds(total) / float64(n), nil
}

// Point is one (size, latency) sample of the latency curve.
type Point struct {
	Size      int64
	LatencyNs float64
}

// LatencyCurve measures the chase latency across the given working-set
// sizes (the classic lat_mem_rd staircase).
func LatencyCurve(m *machine.Machine, sizes []int64) ([]Point, error) {
	out := make([]Point, 0, len(sizes))
	for _, s := range sizes {
		m.Reset()
		ns, err := Latency(m, s)
		if err != nil {
			return nil, err
		}
		out = append(out, Point{Size: s, LatencyNs: ns})
	}
	m.Reset()
	return out, nil
}

// ReadBandwidth measures the saturated streaming read bandwidth in bytes
// per second using the given number of chips (1 or 2 on the paper's box).
func ReadBandwidth(m *machine.Machine, chips int) (float64, error) {
	return streamBandwidth(m, chips, false)
}

// WriteBandwidth measures the saturated streaming write bandwidth in bytes
// per second. Write-allocate hardware moves two lines per line written
// (RFO in, writeback out), which is what makes the measured write figure
// roughly half the read figure.
func WriteBandwidth(m *machine.Machine, chips int) (float64, error) {
	return streamBandwidth(m, chips, true)
}

func streamBandwidth(m *machine.Machine, chips int, write bool) (float64, error) {
	if chips <= 0 || chips > len(m.Chips) {
		return 0, fmt.Errorf("lmbench: chips %d of %d", chips, len(m.Chips))
	}
	m.Reset()
	line := m.Cfg.Mem.LineSize
	const lines = 1 << 15
	var last int64
	for i := 0; i < lines; i++ {
		fsb := m.Chips[i%chips].FSB
		if write {
			// One payload line written = RFO + eventual writeback.
			done := fsb.Issue(0, bus.RFO)
			wb := fsb.Issue(0, bus.Writeback)
			if wb > done {
				done = wb
			}
			if done > last {
				last = done
			}
		} else {
			done := fsb.Issue(0, bus.DemandRead)
			if done > last {
				last = done
			}
		}
	}
	if last == 0 {
		return 0, fmt.Errorf("lmbench: no transactions completed")
	}
	seconds := m.Cfg.Freq.Nanoseconds(last) / units.NsPerSecond
	bw := float64(lines) * float64(line) / seconds
	m.Reset()
	return bw, nil
}

// Result bundles the Section 3 measurements.
type Result struct {
	L1Ns, L2Ns, MemNs                    float64
	ReadBW1, WriteBW1, ReadBW2, WriteBW2 float64 // bytes/second
}

// Measure runs the full Section 3 set on the machine. The plateau probes
// use 4 KiB (L1), 256 KiB (L2) and 64 MiB (memory) working sets.
func Measure(m *machine.Machine) (Result, error) {
	var r Result
	var err error
	m.Reset()
	if r.L1Ns, err = Latency(m, 4<<10); err != nil {
		return r, err
	}
	m.Reset()
	if r.L2Ns, err = Latency(m, 256<<10); err != nil {
		return r, err
	}
	m.Reset()
	if r.MemNs, err = Latency(m, 64<<20); err != nil {
		return r, err
	}
	if r.ReadBW1, err = ReadBandwidth(m, 1); err != nil {
		return r, err
	}
	if r.WriteBW1, err = WriteBandwidth(m, 1); err != nil {
		return r, err
	}
	if r.ReadBW2, err = ReadBandwidth(m, 2); err != nil {
		return r, err
	}
	if r.WriteBW2, err = WriteBandwidth(m, 2); err != nil {
		return r, err
	}
	return r, nil
}
