package runcache

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"xeonomp/internal/config"
	"xeonomp/internal/machine"
	"xeonomp/internal/profiles"
	"xeonomp/internal/sched"
	"xeonomp/internal/units"
)

func baseKey(t *testing.T) Key {
	t.Helper()
	cg, err := profiles.ByName("CG")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := config.ByArch(config.CMT)
	if err != nil {
		t.Fatal(err)
	}
	return Key{
		Schema:         "test/v1",
		Machine:        machine.PaxvilleSMP(),
		Workload:       []profiles.Profile{cg},
		Config:         cfg,
		Policy:         sched.Alternate,
		Seed:           1,
		Scale:          1.0,
		WarmupFrac:     0.35,
		CycleLimit:     0,
		SampleInterval: 0,
	}
}

// TestKeyStability pins that every input that can change a simulation
// result changes the content address.
func TestKeyStability(t *testing.T) {
	base, err := baseKey(t).Hash()
	if err != nil {
		t.Fatal(err)
	}
	mutations := []struct {
		name   string
		mutate func(*Key)
	}{
		{"schema", func(k *Key) { k.Schema = "test/v2" }},
		{"machine L2 size", func(k *Key) { k.Machine.L2.Size = 2 * units.MiB }},
		{"machine FSB bandwidth", func(k *Key) { k.Machine.FSBBandwidth /= 2 }},
		{"machine SMT clash", func(k *Key) { k.Machine.Lat.SMTClash = 0 }},
		{"machine prefetch gate", func(k *Key) { k.Machine.PrefetchGate = -1 }},
		{"machine topology", func(k *Key) { k.Machine.Chips = 1 }},
		{"profile name", func(k *Key) { k.Workload[0].Name = "FT" }},
		{"profile instruction budget", func(k *Key) { k.Workload[0].SerialInstr++ }},
		{"profile working set", func(k *Key) { k.Workload[0].Params.WarmBytes++ }},
		{"workload size", func(k *Key) { k.Workload = append(k.Workload, k.Workload[0]) }},
		{"config name", func(k *Key) { k.Config.Name = "other" }},
		{"config contexts", func(k *Key) { k.Config.Contexts = k.Config.Contexts[:1] }},
		{"config threads", func(k *Key) { k.Config.Threads++ }},
		{"policy", func(k *Key) { k.Policy = sched.Block }},
		{"seed", func(k *Key) { k.Seed++ }},
		{"scale", func(k *Key) { k.Scale = 0.5 }},
		{"warmup", func(k *Key) { k.WarmupFrac = 0 }},
		{"cycle limit", func(k *Key) { k.CycleLimit = 1 }},
		{"sample interval", func(k *Key) { k.SampleInterval = 500_000 }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			k := baseKey(t)
			m.mutate(&k)
			h, err := k.Hash()
			if err != nil {
				t.Fatal(err)
			}
			if h == base {
				t.Fatalf("mutating %s did not change the cache key", m.name)
			}
		})
	}
}

// TestKeyRemarshalStable pins that hashing is a pure function of the
// Key's value: repeated hashing and a JSON round trip do not change it.
func TestKeyRemarshalStable(t *testing.T) {
	k := baseKey(t)
	h1, err := k.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := k.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("re-hashing changed the key: %s vs %s", h1, h2)
	}
	b, err := json.Marshal(k)
	if err != nil {
		t.Fatal(err)
	}
	var k2 Key
	if err := json.Unmarshal(b, &k2); err != nil {
		t.Fatal(err)
	}
	h3, err := k2.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h3 != h1 {
		t.Fatalf("JSON round trip changed the key: %s vs %s", h3, h1)
	}
}

func TestMemoryTierLRU(t *testing.T) {
	c, err := New(2, "")
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if _, ok := c.Get("a"); !ok { // refresh a: b becomes LRU
		t.Fatal("a missing before eviction")
	}
	c.Put("c", []byte("C"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as least recently used")
	}
	if v, ok := c.Get("a"); !ok || string(v) != "A" {
		t.Fatalf("a = %q, %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || string(v) != "C" {
		t.Fatalf("c = %q, %v", v, ok)
	}
	s := c.Stats()
	if s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	if s.MemHits != 3 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDiskTierRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put("deadbeef", []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	// A fresh cache over the same directory serves the entry from disk.
	c2, err := New(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := c2.Get("deadbeef")
	if !ok || string(v) != `{"x":1}` {
		t.Fatalf("disk get = %q, %v", v, ok)
	}
	if s := c2.Stats(); s.DiskHits != 1 {
		t.Fatalf("stats = %+v, want one disk hit", s)
	}
	// Promoted to memory: second get is a memory hit.
	if _, ok := c2.Get("deadbeef"); !ok {
		t.Fatal("promoted entry missing")
	}
	if s := c2.Stats(); s.MemHits != 1 {
		t.Fatalf("stats = %+v, want one memory hit", s)
	}
}

// TestDiskCorruptionIsAMiss pins the corruption-safety contract: a
// damaged entry reads as a miss and is removed, never returned.
func TestDiskCorruptionIsAMiss(t *testing.T) {
	for name, corrupt := range map[string]func([]byte) []byte{
		"flipped payload byte": func(b []byte) []byte { b[len(b)-2] ^= 0xff; return b },
		"truncated":            func(b []byte) []byte { return b[:len(b)/2] },
		"no header":            func([]byte) []byte { return []byte("garbage") },
		"empty":                func([]byte) []byte { return nil },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			c, err := New(0, dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Put("cafe", []byte("payload")); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, "cafe.run")
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			fresh, err := New(0, dir)
			if err != nil {
				t.Fatal(err)
			}
			if v, ok := fresh.Get("cafe"); ok {
				t.Fatalf("corrupt entry served: %q", v)
			}
			if s := fresh.Stats(); s.DiskErrors != 1 || s.Misses != 1 {
				t.Fatalf("stats = %+v, want one disk error and one miss", s)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("corrupt entry not removed")
			}
			// The slot is reusable after recomputation.
			if err := fresh.Put("cafe", []byte("recomputed")); err != nil {
				t.Fatal(err)
			}
			if v, ok := fresh.Get("cafe"); !ok || string(v) != "recomputed" {
				t.Fatalf("recomputed entry = %q, %v", v, ok)
			}
		})
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache
	if _, ok := c.Get("x"); ok {
		t.Fatal("nil cache returned a hit")
	}
	if err := c.Put("x", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 || c.Stats() != (Stats{}) {
		t.Fatal("nil cache not inert")
	}
}
