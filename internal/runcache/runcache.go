// Package runcache is a content-addressed store for simulation results.
//
// Every cell of a characterization study — one workload on one
// configuration with one seed on one machine — is fully determined by
// plain-data inputs, so its result can be addressed by a stable hash of
// those inputs and reused across studies, ablations, and repeated
// invocations. The cross-product study shares its pairs with the pair
// study, ablations share their baselines with the unablated run, and a
// second full regeneration repeats every cell; a warm cache turns all of
// that into lookups.
//
// The store has two tiers: a bounded in-memory LRU, and an optional
// on-disk tier under a cache directory. Disk entries are checksummed and
// never trusted: a corrupted or truncated entry reads as a miss (and is
// removed), so the worst case is recomputation, never a wrong result.
// Payloads are opaque bytes — serialization of results is the caller's
// concern, which keeps this package free of dependencies on the
// experiment layer.
package runcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"xeonomp/internal/config"
	"xeonomp/internal/machine"
	"xeonomp/internal/obs"
	"xeonomp/internal/profiles"
	"xeonomp/internal/sched"
)

// Process-wide observability series (see internal/obs): the Stats the
// progress reporter prints, mirrored into the metric registry so a
// -metrics-out snapshot carries cache traffic, plus a lookup-latency
// histogram the in-struct Stats cannot express.
var (
	obsMemHits    = obs.NewCounter(obs.MetricRuncacheMemHits)
	obsDiskHits   = obs.NewCounter(obs.MetricRuncacheDiskHits)
	obsMisses     = obs.NewCounter(obs.MetricRuncacheMisses)
	obsEvictions  = obs.NewCounter(obs.MetricRuncacheEvictions)
	obsDiskErrors = obs.NewCounter(obs.MetricRuncacheDiskErrors)
	obsLookupNs   = obs.NewHistogram(obs.MetricRuncacheLookupNs)
)

// Key is the complete plain-data identity of one simulation cell. Two runs
// with equal Keys produce byte-identical results; any field difference —
// a machine-config change, another seed, a different profile — must change
// the hash. Hashing goes through canonical JSON (struct fields in
// declaration order, no maps), so re-marshalling a Key never changes it.
type Key struct {
	// Schema versions the result encoding and the simulator's observable
	// behaviour; bump it to invalidate every prior cache entry.
	Schema string
	// Machine is the fully resolved platform (never nil/default — resolve
	// presets before building the Key).
	Machine machine.Config
	// Workload lists the full profiles in placement order, not just names,
	// so a custom profile reusing a stock name cannot alias a stock cell.
	Workload []profiles.Profile
	// Config is the Table-1 row (name, contexts, thread count).
	Config config.Configuration
	// Policy is the thread-placement policy.
	Policy sched.Policy
	// Seed, Scale, WarmupFrac, CycleLimit and SampleInterval mirror the
	// run options that affect the produced result.
	Seed           uint64
	Scale          float64
	WarmupFrac     float64
	CycleLimit     int64
	SampleInterval int64
}

// Hash returns the cell's content address: the hex SHA-256 of the Key's
// canonical JSON encoding.
func (k Key) Hash() (string, error) {
	b, err := json.Marshal(k)
	if err != nil {
		return "", fmt.Errorf("runcache: hashing key: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Stats counts cache traffic. Hits splits into memory and disk tiers;
// Misses counts lookups neither tier satisfied; Evictions counts LRU
// removals from the memory tier; DiskErrors counts on-disk entries that
// failed the checksum or could not be read and were treated as misses.
type Stats struct {
	MemHits    uint64
	DiskHits   uint64
	Misses     uint64
	Evictions  uint64
	DiskErrors uint64
}

// Hits returns total hits across both tiers.
func (s Stats) Hits() uint64 { return s.MemHits + s.DiskHits }

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	n := s.Hits() + s.Misses
	if n == 0 {
		return 0
	}
	return float64(s.Hits()) / float64(n)
}

// entry is one memory-tier element.
type entry struct {
	hash    string
	payload []byte
}

// Cache is the two-tier content-addressed store. It is safe for
// concurrent use; a nil *Cache is inert (Get always misses, Put is a
// no-op), so callers can thread it through unconditionally.
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List               // front = most recently used
	items map[string]*list.Element // hash -> element holding *entry
	dir   string                   // "" = memory only
	stats Stats
}

// DefaultMemEntries is the memory-tier capacity used when callers pass a
// non-positive size to New.
const DefaultMemEntries = 4096

// New builds a cache holding at most memEntries results in memory
// (<= 0 selects DefaultMemEntries). A non-empty dir adds the persistent
// tier; the directory is created if needed.
func New(memEntries int, dir string) (*Cache, error) {
	if memEntries <= 0 {
		memEntries = DefaultMemEntries
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("runcache: creating %s: %w", dir, err)
		}
	}
	return &Cache{
		cap:   memEntries,
		ll:    list.New(),
		items: map[string]*list.Element{},
		dir:   dir,
	}, nil
}

// Get returns the payload stored under hash. A memory hit refreshes LRU
// order; a disk hit is promoted into the memory tier. The returned slice
// must not be modified by the caller.
func (c *Cache) Get(hash string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	t := obs.StartTimer()
	defer obsLookupNs.ObserveSince(t)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[hash]; ok {
		c.ll.MoveToFront(el)
		c.stats.MemHits++
		obsMemHits.Inc()
		return el.Value.(*entry).payload, true
	}
	if c.dir != "" {
		payload, err := c.loadDisk(hash)
		if err == nil && payload != nil {
			c.stats.DiskHits++
			obsDiskHits.Inc()
			c.insertLocked(hash, payload)
			return payload, true
		}
		if err != nil {
			// Corrupted or unreadable: drop the entry and recompute.
			c.stats.DiskErrors++
			obsDiskErrors.Inc()
			_ = os.Remove(c.path(hash)) // best effort; a stale entry only costs a recompute
		}
	}
	c.stats.Misses++
	obsMisses.Inc()
	return nil, false
}

// Put stores payload under hash in the memory tier and, when a cache
// directory is configured, on disk. Disk write failures are returned but
// leave the memory tier populated, so the run can proceed.
func (c *Cache) Put(hash string, payload []byte) error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insertLocked(hash, payload)
	if c.dir == "" {
		return nil
	}
	return c.writeDisk(hash, payload)
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of memory-tier entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// insertLocked adds or refreshes a memory-tier entry, evicting from the
// LRU tail when over capacity. Callers hold c.mu.
func (c *Cache) insertLocked(hash string, payload []byte) {
	if el, ok := c.items[hash]; ok {
		el.Value.(*entry).payload = payload
		c.ll.MoveToFront(el)
		return
	}
	c.items[hash] = c.ll.PushFront(&entry{hash: hash, payload: payload})
	for c.ll.Len() > c.cap {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*entry).hash)
		c.stats.Evictions++
		obsEvictions.Inc()
	}
}

// diskMagic heads every on-disk entry; it versions the file format.
const diskMagic = "xeonomp-runcache-v1"

// path returns the on-disk file for a hash.
func (c *Cache) path(hash string) string {
	return filepath.Join(c.dir, hash+".run")
}

// writeDisk persists an entry atomically: header line with a payload
// checksum, then the payload, written to a temp file and renamed into
// place so a crash never leaves a half-written entry under the final name.
func (c *Cache) writeDisk(hash string, payload []byte) error {
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %s\n", diskMagic, hex.EncodeToString(sum[:]))
	tmp, err := os.CreateTemp(c.dir, "tmp-*.run")
	if err != nil {
		return fmt.Errorf("runcache: temp file: %w", err)
	}
	name := tmp.Name()
	_, werr := tmp.WriteString(header)
	if werr == nil {
		_, werr = tmp.Write(payload)
	}
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(name) // best effort; the write error below is the real failure
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("runcache: writing %s: %w", hash, werr)
	}
	if err := os.Rename(name, c.path(hash)); err != nil {
		_ = os.Remove(name) // best effort; the rename error below is the real failure
		return fmt.Errorf("runcache: committing %s: %w", hash, err)
	}
	return nil
}

// loadDisk reads and verifies an on-disk entry. It returns (nil, nil)
// when the entry does not exist and a non-nil error when it exists but is
// corrupt — wrong magic, wrong checksum, or truncated.
func (c *Cache) loadDisk(hash string) ([]byte, error) {
	raw, err := os.ReadFile(c.path(hash))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	nl := -1
	for i, b := range raw {
		if b == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return nil, fmt.Errorf("runcache: %s: truncated header", hash)
	}
	var magic, want string
	if _, err := fmt.Sscanf(string(raw[:nl]), "%s %s", &magic, &want); err != nil || magic != diskMagic {
		return nil, fmt.Errorf("runcache: %s: bad header", hash)
	}
	payload := raw[nl+1:]
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != want {
		return nil, fmt.Errorf("runcache: %s: checksum mismatch", hash)
	}
	return payload, nil
}
