// Package golden is the paper-fidelity regression layer. It serializes
// every quantity the reproduction derives from the paper — the Figure-2
// counter panels, the Figure-3/Table-2 speedups, the Figure-4/5
// multi-programmed results, and the Section-3 LMbench latencies and
// bandwidths — into canonical, diff-stable JSON artifacts, and compares a
// live run against a stored artifact with per-metric tolerance bands:
// exact for deterministic counters, a relative epsilon for derived rates,
// and wide bands where a golden value is a paper target rather than a
// prior measurement. cmd/xeonchar wires it to the CLI (-export-json,
// -check, -update-golden) and .github/workflows/ci.yml turns -check into
// the drift gate that fails a PR for moving a paper number.
package golden

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// SchemaVersion is bumped whenever the artifact shape changes
// incompatibly; Compare reports a schema mismatch rather than producing a
// misleading metric-by-metric diff.
const SchemaVersion = 1

// Tolerance is one acceptance band. A live value passes against a golden
// value when |live-golden| <= Abs + Rel*|golden| (the numpy allclose
// shape). The zero value demands an exact match.
type Tolerance struct {
	Abs float64 `json:"abs,omitempty"`
	Rel float64 `json:"rel,omitempty"`
}

// Exact returns the zero tolerance: the live value must equal the golden
// value bit-for-bit. Use it for integer counters and cycle counts, which
// the simulator produces deterministically.
func Exact() Tolerance { return Tolerance{} }

// Relative returns a pure relative tolerance of eps.
func Relative(eps float64) Tolerance { return Tolerance{Rel: eps} }

// Allows reports whether live is within the band around golden.
func (t Tolerance) Allows(golden, live float64) bool {
	if math.IsNaN(golden) || math.IsNaN(live) {
		// NaN golden matches NaN live exactly; anything else is drift.
		return math.IsNaN(golden) && math.IsNaN(live)
	}
	return math.Abs(live-golden) <= t.Abs+t.Rel*math.Abs(golden)
}

// String renders the band for drift reports ("exact", "rel 1e-06",
// "abs 0.5 + rel 1e-03").
func (t Tolerance) String() string {
	switch {
	case t.Abs == 0 && t.Rel == 0:
		return "exact"
	case t.Abs == 0:
		return fmt.Sprintf("rel %g", t.Rel)
	case t.Rel == 0:
		return fmt.Sprintf("abs %g", t.Abs)
	default:
		return fmt.Sprintf("abs %g + rel %g", t.Abs, t.Rel)
	}
}

// Metric is one named value of an artifact. The ID is a stable
// slash-separated path naming the cell it came from, e.g.
// "CG/HT on -4-1/speedup" or "FT/Serial/l2_miss". Tol, when present,
// overrides the artifact's default tolerance for this metric only.
type Metric struct {
	ID    string     `json:"id"`
	Value float64    `json:"value"`
	Unit  string     `json:"unit,omitempty"`
	Tol   *Tolerance `json:"tol,omitempty"`
}

// Artifact is one golden file: every metric of one table or figure, plus
// enough provenance (schema, scale, seed) that Compare can refuse an
// apples-to-oranges check.
type Artifact struct {
	Name   string `json:"name"`
	Schema int    `json:"schema"`
	// Scale and Seed record the core.Options the artifact was generated
	// under; zero for scale-independent artifacts (LMbench, paper
	// targets). Compare fails when they differ between golden and live.
	Scale float64 `json:"scale,omitempty"`
	Seed  uint64  `json:"seed,omitempty"`
	// Note is free-form provenance ("paper targets from DESIGN §3").
	Note       string    `json:"note,omitempty"`
	DefaultTol Tolerance `json:"default_tolerance"`
	Metrics    []Metric  `json:"metrics"`
}

// New returns an empty artifact with the given default tolerance.
func New(name string, tol Tolerance) *Artifact {
	return &Artifact{Name: name, Schema: SchemaVersion, DefaultTol: tol}
}

// Add appends a metric carrying the artifact's default tolerance.
func (a *Artifact) Add(id string, v float64) {
	a.Metrics = append(a.Metrics, Metric{ID: id, Value: v})
}

// AddTol appends a metric with its own tolerance band.
func (a *Artifact) AddTol(id string, v float64, tol Tolerance) {
	t := tol
	a.Metrics = append(a.Metrics, Metric{ID: id, Value: v, Tol: &t})
}

// AddUnit appends a metric with a unit annotation.
func (a *Artifact) AddUnit(id string, v float64, unit string) {
	a.Metrics = append(a.Metrics, Metric{ID: id, Value: v, Unit: unit})
}

// tolFor returns the effective band for metric m.
func (a *Artifact) tolFor(m Metric) Tolerance {
	if m.Tol != nil {
		return *m.Tol
	}
	return a.DefaultTol
}

// normalize sorts the metrics by ID and rejects empty names, empty
// artifacts, and duplicate IDs — a duplicate would make a drift report
// ambiguous about which cell moved.
func (a *Artifact) normalize() error {
	if a.Name == "" {
		return fmt.Errorf("golden: artifact without a name")
	}
	if strings.ContainsAny(a.Name, "/\\ ") {
		return fmt.Errorf("golden: artifact name %q must be a file-name-safe slug", a.Name)
	}
	sort.SliceStable(a.Metrics, func(i, j int) bool { return a.Metrics[i].ID < a.Metrics[j].ID })
	for i, m := range a.Metrics {
		if m.ID == "" {
			return fmt.Errorf("golden: %s: metric %d has an empty id", a.Name, i)
		}
		if i > 0 && a.Metrics[i-1].ID == m.ID {
			return fmt.Errorf("golden: %s: duplicate metric id %q", a.Name, m.ID)
		}
	}
	return nil
}

// MarshalCanonical renders the artifact as diff-stable JSON: metrics
// sorted by ID, two-space indentation, trailing newline. Two artifacts
// with the same content always serialize to the same bytes, so golden
// files only change in review when a number actually moves.
func (a *Artifact) MarshalCanonical() ([]byte, error) {
	if err := a.normalize(); err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Filename returns the file name an artifact is stored under in a golden
// directory.
func Filename(name string) string { return name + ".json" }

// Write stores the artifact canonically as dir/<name>.json, creating dir
// if needed.
func Write(dir string, a *Artifact) error {
	b, err := a.MarshalCanonical()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, Filename(a.Name)), b, 0o644)
}

// Load reads one artifact file.
func Load(path string) (*Artifact, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	a := &Artifact{}
	if err := json.Unmarshal(b, a); err != nil {
		return nil, fmt.Errorf("golden: %s: %w", path, err)
	}
	if err := a.normalize(); err != nil {
		return nil, fmt.Errorf("golden: %s: %w", path, err)
	}
	return a, nil
}

// LoadDir reads every *.json artifact in dir, sorted by name.
func LoadDir(dir string) ([]*Artifact, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []*Artifact
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		a, err := Load(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	if len(out) == 0 {
		return nil, fmt.Errorf("golden: no artifacts in %s", dir)
	}
	return out, nil
}
