package golden

import (
	"fmt"
	"math"
	"strings"

	"xeonomp/internal/report"
)

// DriftKind classifies one comparison failure.
type DriftKind int

const (
	// Drifted: the metric exists on both sides but the live value left
	// the golden tolerance band.
	Drifted DriftKind = iota
	// MissingInLive: the golden artifact has a metric the live run no
	// longer produces (a renamed cell, a dropped benchmark).
	MissingInLive
	// UnexpectedInLive: the live run produced a metric the golden
	// artifact has never seen — a shape change that needs -update-golden.
	UnexpectedInLive
)

func (k DriftKind) String() string {
	switch k {
	case Drifted:
		return "drifted"
	case MissingInLive:
		return "missing in live run"
	case UnexpectedInLive:
		return "not in golden artifact"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Drift is one failed metric: which cell moved, by how much, and against
// which tolerance.
type Drift struct {
	ID           string
	Kind         DriftKind
	Golden, Live float64
	Tol          Tolerance
}

// Delta returns live - golden.
func (d Drift) Delta() float64 { return d.Live - d.Golden }

func (d Drift) String() string {
	switch d.Kind {
	case MissingInLive:
		return fmt.Sprintf("%s: golden %g, %s", d.ID, d.Golden, d.Kind)
	case UnexpectedInLive:
		return fmt.Sprintf("%s: live %g, %s", d.ID, d.Live, d.Kind)
	}
	pct := ""
	if d.Golden != 0 && !math.IsNaN(d.Golden) {
		pct = fmt.Sprintf(", %+.3f%%", 100*d.Delta()/math.Abs(d.Golden))
	}
	return fmt.Sprintf("%s: golden %g, live %g (Δ %+g%s), tolerance %s",
		d.ID, d.Golden, d.Live, d.Delta(), pct, d.Tol)
}

// Report is the outcome of comparing one live artifact against its golden
// counterpart.
type Report struct {
	Artifact string
	// Checked counts golden metrics examined (including missing ones).
	Checked int
	// Drifts lists every failure, golden metric order.
	Drifts []Drift
	// Problems are whole-artifact mismatches (schema, scale, seed) that
	// make the metric diff untrustworthy.
	Problems []string
}

// OK reports whether every metric stayed inside its band and the
// provenance matched.
func (r *Report) OK() bool { return len(r.Drifts) == 0 && len(r.Problems) == 0 }

// String renders the human-readable drift report: one header line, then
// one line per problem and per drifted metric.
func (r *Report) String() string {
	var b strings.Builder
	if r.OK() {
		fmt.Fprintf(&b, "%s: ok — %d metric(s) within tolerance", r.Artifact, r.Checked)
		return b.String()
	}
	fmt.Fprintf(&b, "%s: FAIL — %d of %d metric(s) out of tolerance", r.Artifact, len(r.Drifts), r.Checked)
	for _, p := range r.Problems {
		fmt.Fprintf(&b, "\n  %s", p)
	}
	for _, d := range r.Drifts {
		fmt.Fprintf(&b, "\n  %s", d)
	}
	return b.String()
}

// Table renders the drifted metrics as an aligned report.Table, the same
// output layer the figures use.
func (r *Report) Table() *report.Table {
	t := report.NewTable(fmt.Sprintf("Golden drift — %s", r.Artifact),
		"metric", "golden", "live", "delta", "tolerance", "status")
	for _, d := range r.Drifts {
		switch d.Kind {
		case MissingInLive:
			t.Add(d.ID, fmt.Sprintf("%g", d.Golden), "—", "—", d.Tol.String(), d.Kind.String())
		case UnexpectedInLive:
			t.Add(d.ID, "—", fmt.Sprintf("%g", d.Live), "—", d.Tol.String(), d.Kind.String())
		default:
			t.Add(d.ID, fmt.Sprintf("%g", d.Golden), fmt.Sprintf("%g", d.Live),
				fmt.Sprintf("%+g", d.Delta()), d.Tol.String(), d.Kind.String())
		}
	}
	return t
}

// Compare checks a live artifact against its golden counterpart. The
// golden side supplies the tolerance bands — golden files are
// self-describing, so tightening or loosening a band is a reviewed change
// to the artifact, not to code. Metric sets must match exactly: a metric
// that vanished or appeared is reported by name, not ignored.
func Compare(gold, live *Artifact) (*Report, error) {
	if err := gold.normalize(); err != nil {
		return nil, err
	}
	if err := live.normalize(); err != nil {
		return nil, err
	}
	if gold.Name != live.Name {
		return nil, fmt.Errorf("golden: comparing artifact %q against %q", gold.Name, live.Name)
	}
	r := &Report{Artifact: gold.Name, Checked: len(gold.Metrics)}
	if gold.Schema != live.Schema {
		r.Problems = append(r.Problems,
			fmt.Sprintf("schema mismatch: golden v%d, live v%d — regenerate with -update-golden", gold.Schema, live.Schema))
	}
	if gold.Scale != live.Scale {
		r.Problems = append(r.Problems,
			fmt.Sprintf("scale mismatch: golden generated at -scale %g, live run at -scale %g", gold.Scale, live.Scale))
	}
	if gold.Seed != live.Seed {
		r.Problems = append(r.Problems,
			fmt.Sprintf("seed mismatch: golden generated at -seed %d, live run at -seed %d", gold.Seed, live.Seed))
	}
	if len(r.Problems) > 0 {
		// A provenance mismatch would drown the report in meaningless
		// per-metric drift; stop at the whole-artifact diagnosis.
		return r, nil
	}
	liveByID := make(map[string]Metric, len(live.Metrics))
	for _, m := range live.Metrics {
		liveByID[m.ID] = m
	}
	for _, gm := range gold.Metrics {
		tol := gold.tolFor(gm)
		lm, ok := liveByID[gm.ID]
		if !ok {
			r.Drifts = append(r.Drifts, Drift{ID: gm.ID, Kind: MissingInLive, Golden: gm.Value, Tol: tol})
			continue
		}
		delete(liveByID, gm.ID)
		if !tol.Allows(gm.Value, lm.Value) {
			r.Drifts = append(r.Drifts, Drift{ID: gm.ID, Kind: Drifted, Golden: gm.Value, Live: lm.Value, Tol: tol})
		}
	}
	// Whatever is left in the live set has no golden counterpart.
	for _, m := range live.Metrics { // ordered walk keeps reports deterministic
		if _, ok := liveByID[m.ID]; ok {
			r.Drifts = append(r.Drifts, Drift{ID: m.ID, Kind: UnexpectedInLive, Live: m.Value, Tol: gold.DefaultTol})
		}
	}
	return r, nil
}
