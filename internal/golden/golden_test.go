package golden

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sample() *Artifact {
	a := New("figure-x", Relative(1e-6))
	a.Scale = 0.1
	a.Seed = 1
	a.Add("CG/HT on -4-1/speedup", 1.832)
	a.Add("CG/Serial/cpi", 2.25)
	a.AddTol("CG/Serial/wall_cycles", 123456789, Exact())
	a.AddUnit("mem_latency_ns", 136.85, "ns")
	return a
}

func TestToleranceAllows(t *testing.T) {
	cases := []struct {
		tol          Tolerance
		golden, live float64
		want         bool
	}{
		{Exact(), 5, 5, true},
		{Exact(), 5, 5.0000001, false},
		{Relative(0.01), 100, 100.9, true},
		{Relative(0.01), 100, 101.1, false},
		{Relative(0.01), -100, -100.9, true}, // band scales with |golden|
		{Tolerance{Abs: 0.5}, 0, 0.4, true},
		{Tolerance{Abs: 0.5}, 0, 0.6, false},
		{Exact(), math.NaN(), math.NaN(), true},
		{Relative(1), math.NaN(), 1, false},
		{Relative(1), 1, math.NaN(), false},
	}
	for i, c := range cases {
		if got := c.tol.Allows(c.golden, c.live); got != c.want {
			t.Errorf("case %d: %s.Allows(%g, %g) = %v, want %v", i, c.tol, c.golden, c.live, got, c.want)
		}
	}
}

func TestToleranceString(t *testing.T) {
	if s := Exact().String(); s != "exact" {
		t.Errorf("Exact() = %q", s)
	}
	if s := Relative(1e-6).String(); s != "rel 1e-06" {
		t.Errorf("Relative = %q", s)
	}
	if s := (Tolerance{Abs: 0.5, Rel: 0.01}).String(); s != "abs 0.5 + rel 0.01" {
		t.Errorf("mixed = %q", s)
	}
}

// Round trip: serialize → write → load → compare is a fixed point, and a
// second marshal is byte-identical (diff-stability).
func TestRoundTripFixedPoint(t *testing.T) {
	dir := t.TempDir()
	a := sample()
	b1, err := a.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(dir, a); err != nil {
		t.Fatal(err)
	}
	back, err := Load(filepath.Join(dir, Filename("figure-x")))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := back.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("round trip not byte-identical:\n%s\nvs\n%s", b1, b2)
	}
	rep, err := Compare(a, back)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("self-comparison after round trip drifted:\n%s", rep)
	}
	if rep.Checked != 4 {
		t.Fatalf("checked %d metrics, want 4", rep.Checked)
	}
}

func TestMarshalSortsMetrics(t *testing.T) {
	a := New("z", Exact())
	a.Add("b/metric", 2)
	a.Add("a/metric", 1)
	b, err := a.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if ia, ib := bytes.Index(b, []byte("a/metric")), bytes.Index(b, []byte("b/metric")); ia > ib {
		t.Fatalf("metrics not sorted by id:\n%s", b)
	}
}

func TestDuplicateIDRejected(t *testing.T) {
	a := New("dup", Exact())
	a.Add("x", 1)
	a.Add("x", 2)
	if _, err := a.MarshalCanonical(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate id not rejected: %v", err)
	}
}

func TestBadNameRejected(t *testing.T) {
	for _, name := range []string{"", "a b", "a/b"} {
		a := New(name, Exact())
		a.Add("x", 1)
		if _, err := a.MarshalCanonical(); err == nil {
			t.Errorf("name %q not rejected", name)
		}
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"bbb", "aaa"} {
		a := New(name, Exact())
		a.Add("x", 1)
		if err := Write(dir, a); err != nil {
			t.Fatal(err)
		}
	}
	// Non-artifact files are ignored.
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	arts, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 2 || arts[0].Name != "aaa" || arts[1].Name != "bbb" {
		t.Fatalf("LoadDir = %v", arts)
	}
}

func TestLoadDirEmpty(t *testing.T) {
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Fatal("empty golden directory not rejected")
	}
}

func TestLoadCorrupt(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(p, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(p); err == nil {
		t.Fatal("corrupt artifact not rejected")
	}
}
