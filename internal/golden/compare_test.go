package golden

import (
	"strings"
	"testing"
)

// perturbed returns a copy of a with metric id moved to v.
func perturbed(a *Artifact, id string, v float64) *Artifact {
	out := New(a.Name, a.DefaultTol)
	out.Scale, out.Seed, out.Schema = a.Scale, a.Seed, a.Schema
	for _, m := range a.Metrics {
		mm := m
		if mm.ID == id {
			mm.Value = v
		}
		out.Metrics = append(out.Metrics, mm)
	}
	return out
}

// An out-of-tolerance perturbation fails and the report names the cell,
// both values, and the violated band.
func TestOutOfToleranceNamesTheCell(t *testing.T) {
	g := sample()
	live := perturbed(g, "CG/HT on -4-1/speedup", 1.9)
	rep, err := Compare(g, live)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("perturbation outside tolerance passed")
	}
	if len(rep.Drifts) != 1 || rep.Drifts[0].ID != "CG/HT on -4-1/speedup" {
		t.Fatalf("drifts = %+v", rep.Drifts)
	}
	out := rep.String()
	for _, want := range []string{"CG/HT on -4-1/speedup", "1.832", "1.9", "rel 1e-06", "FAIL"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// A within-tolerance perturbation passes.
func TestWithinTolerancePasses(t *testing.T) {
	g := sample()
	live := perturbed(g, "CG/HT on -4-1/speedup", 1.832*(1+5e-7))
	rep, err := Compare(g, live)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("within-tolerance perturbation failed:\n%s", rep)
	}
}

// Exact per-metric overrides beat the artifact's relative default.
func TestExactOverrideCatchesOffByOne(t *testing.T) {
	g := sample()
	live := perturbed(g, "CG/Serial/wall_cycles", 123456790)
	rep, err := Compare(g, live)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("off-by-one on an exact counter passed")
	}
	if d := rep.Drifts[0]; d.ID != "CG/Serial/wall_cycles" || d.Tol.String() != "exact" {
		t.Fatalf("drift = %+v", d)
	}
}

func TestMissingAndUnexpectedMetrics(t *testing.T) {
	g := sample()
	live := New(g.Name, g.DefaultTol)
	live.Scale, live.Seed = g.Scale, g.Seed
	for _, m := range g.Metrics {
		if m.ID == "CG/Serial/cpi" {
			continue // dropped in live
		}
		live.Metrics = append(live.Metrics, m)
	}
	live.Add("CG/Serial/new_metric", 7)
	rep, err := Compare(g, live)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || len(rep.Drifts) != 2 {
		t.Fatalf("report = %s", rep)
	}
	kinds := map[string]DriftKind{}
	for _, d := range rep.Drifts {
		kinds[d.ID] = d.Kind
	}
	if kinds["CG/Serial/cpi"] != MissingInLive {
		t.Errorf("dropped metric kind = %v", kinds["CG/Serial/cpi"])
	}
	if kinds["CG/Serial/new_metric"] != UnexpectedInLive {
		t.Errorf("new metric kind = %v", kinds["CG/Serial/new_metric"])
	}
}

// A provenance mismatch is diagnosed whole-artifact instead of drowning
// the report in per-metric drift.
func TestScaleMismatchIsAProblem(t *testing.T) {
	g := sample()
	live := perturbed(g, "", 0)
	live.Scale = 0.25
	rep, err := Compare(g, live)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || len(rep.Problems) != 1 || len(rep.Drifts) != 0 {
		t.Fatalf("report = %s", rep)
	}
	if !strings.Contains(rep.String(), "-scale 0.25") {
		t.Fatalf("scale mismatch not named:\n%s", rep)
	}
}

func TestSchemaMismatchIsAProblem(t *testing.T) {
	g := sample()
	live := perturbed(g, "", 0)
	live.Schema = SchemaVersion + 1
	rep, err := Compare(g, live)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || !strings.Contains(rep.String(), "schema mismatch") {
		t.Fatalf("report = %s", rep)
	}
}

func TestCompareNameMismatchErrors(t *testing.T) {
	a := New("a", Exact())
	a.Add("x", 1)
	b := New("b", Exact())
	b.Add("x", 1)
	if _, err := Compare(a, b); err == nil {
		t.Fatal("cross-artifact comparison not rejected")
	}
}

func TestReportTable(t *testing.T) {
	g := sample()
	live := perturbed(g, "mem_latency_ns", 150)
	rep, err := Compare(g, live)
	if err != nil {
		t.Fatal(err)
	}
	tab := rep.Table()
	out := tab.String()
	for _, want := range []string{"Golden drift — figure-x", "mem_latency_ns", "136.85", "150", "drifted"} {
		if !strings.Contains(out, want) {
			t.Errorf("drift table missing %q:\n%s", want, out)
		}
	}
}
