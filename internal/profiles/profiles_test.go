package profiles

import (
	"testing"

	"xeonomp/internal/trace"
)

func TestAllProfilesValidate(t *testing.T) {
	all := All()
	if len(all) != 8 {
		t.Fatalf("%d profiles, want 8", len(all))
	}
	for _, p := range all {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if p.Class != "B" {
			t.Errorf("%s class %q, want B", p.Name, p.Class)
		}
	}
}

func TestStudiedSet(t *testing.T) {
	s := Studied()
	names := StudiedNames()
	if len(s) != 6 || len(names) != 6 {
		t.Fatalf("studied set size %d/%d, want 6", len(s), len(names))
	}
	for i, p := range s {
		if p.Name != names[i] {
			t.Errorf("studied[%d] = %s, want %s", i, p.Name, names[i])
		}
	}
	// FT is named in the paper's text; CG is the memory-bound partner; IS
	// the branch outlier. All three must be studied.
	for _, want := range []string{"FT", "CG", "IS"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("studied set misses %s", want)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("CG")
	if err != nil || p.Name != "CG" {
		t.Fatalf("ByName(CG) = %+v, %v", p, err)
	}
	if _, err := ByName("cg"); err == nil {
		t.Error("lower-case name accepted")
	}
	if _, err := ByName("ZZ"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestWarmSetsAlignedToStride(t *testing.T) {
	// The residency analysis requires WarmBytes to be an exact multiple of
	// WarmStride — otherwise the scan phase-drifts and the footprint
	// explodes (the bug class the warm calibration hit).
	for _, p := range All() {
		ws := p.Params.WarmStride
		if ws == 0 {
			ws = 192
		}
		if p.Params.WarmBytes%ws != 0 {
			t.Errorf("%s: WarmBytes %d not a multiple of stride %d", p.Name, p.Params.WarmBytes, ws)
		}
	}
}

func TestHotSetsFitL1UnderHT(t *testing.T) {
	// Two hot sets must fit the 16 KiB shared L1, or the paper's flat-L1
	// observation breaks.
	for _, p := range All() {
		if 2*p.Params.HotBytes > 16*1024 {
			t.Errorf("%s: hot set %d too large for HT-shared L1", p.Name, p.Params.HotBytes)
		}
	}
}

func TestLayoutGeometry(t *testing.T) {
	p, _ := ByName("CG")
	l, err := p.Layout(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if l.Threads() != 4 {
		t.Fatal("layout thread count wrong")
	}
	if l.Shared.Size != p.SharedBytes || l.Code.Size != p.CodeBytes {
		t.Fatal("layout region sizes wrong")
	}
}

func TestGeneratorSplitsBudget(t *testing.T) {
	p, _ := ByName("MG")
	l, err := p.Layout(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := p.Generator(l, 0, 4, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantBudget := p.SerialInstr / 4
	if got := g.Remaining(); got != wantBudget {
		t.Fatalf("per-thread budget %d, want %d", got, wantBudget)
	}
	// Chunk length shrinks with the thread count.
	if g.Params().ChunkInstr != p.Params.ChunkInstr/4 {
		t.Fatalf("chunk %d, want %d", g.Params().ChunkInstr, p.Params.ChunkInstr/4)
	}
}

func TestGeneratorScale(t *testing.T) {
	p, _ := ByName("MG")
	l, _ := p.Layout(1, 1)
	g, err := p.Generator(l, 0, 1, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Remaining() != int64(float64(p.SerialInstr)*0.1) {
		t.Fatalf("scaled budget %d", g.Remaining())
	}
	if _, err := p.Generator(l, 0, 0, 1, 1); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := p.Generator(l, 0, 1, 0, 1); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestValidateCatchesBadProfile(t *testing.T) {
	p, _ := ByName("CG")
	p.SerialInstr = 0
	if err := p.Validate(); err == nil {
		t.Error("zero budget accepted")
	}
	p, _ = ByName("CG")
	p.PrivBytes = 0
	if err := p.Validate(); err == nil {
		t.Error("private region smaller than hot+warm accepted")
	}
}

func TestProfileRolesMatchTheStudy(t *testing.T) {
	// Structural expectations the characterization relies on.
	cg, _ := ByName("CG")
	ft, _ := ByName("FT")
	is, _ := ByName("IS")
	ep, _ := ByName("EP")

	if cg.Params.RandFrac <= ft.Params.RandFrac {
		t.Error("CG should be the most irregular benchmark")
	}
	if is.Params.DataBranchFrac < 0.5 {
		t.Error("IS must be dominated by data-dependent branches")
	}
	if ep.SharedBytes >= cg.SharedBytes {
		t.Error("EP must have a tiny shared working set")
	}
	// CG's warm set must fit two-per-L2 with margin (no HT thrash: it is
	// the paper's HT-on exception). FT's must be large enough that an
	// FT+FT core overflows the 1 MiB L2 once streaming noise is added,
	// while a CG+FT core still fits — the pair-symbiosis mechanism.
	cgFoot := cg.Params.WarmBytes / cg.Params.WarmStride * 64
	ftFoot := ft.Params.WarmBytes / ft.Params.WarmStride * 64
	if 2*cgFoot > (1<<20)*6/10 {
		t.Errorf("CG warm footprint %d too large to be HT-neutral", cgFoot)
	}
	if 2*ftFoot <= (1<<20)*55/100 {
		t.Errorf("FT warm footprint %d too small to thrash under HT with noise", ftFoot)
	}
	if cgFoot+ftFoot >= 2*ftFoot {
		t.Error("mixed CG+FT footprint must be strictly below FT+FT")
	}
}

func TestParamsAreCompleteTraceParams(t *testing.T) {
	// Every profile must produce a generator without tweaks.
	for _, p := range All() {
		l, err := p.Layout(1, 8)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		for tid := 0; tid < 8; tid++ {
			g, err := p.Generator(l, tid, 8, 0.001, 1)
			if err != nil {
				t.Fatalf("%s tid %d: %v", p.Name, tid, err)
			}
			var in trace.Instr
			if !g.Next(&in) {
				t.Fatalf("%s produced no instructions", p.Name)
			}
		}
	}
}
