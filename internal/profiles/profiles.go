// Package profiles defines the class-B architectural profiles of the NAS
// OpenMP benchmarks used to drive the timing simulator. Each Profile is a
// compact description of a benchmark's behaviour — instruction mix, working
// sets, access patterns, branch structure, code footprint, and parallel-loop
// granularity — derived from the loop structure of the functional kernels in
// internal/npb and from published NPB characterization data.
//
// The profiles are where the paper's per-benchmark personalities live:
//
//   - EP: embarrassingly parallel, tiny working set, compute bound.
//   - CG: sparse conjugate gradient; large irregular working set, the
//     memory-bound benchmark of the paper's multi-program study and the one
//     benchmark that profits from HT on the fully-loaded machine.
//   - MG: multigrid; streaming with mixed strides, prefetch friendly.
//   - FT: 3-D FFT; compute heavy with page-crossing transpose strides
//     ("requires mostly computational resources", per the paper).
//   - IS: integer sort; data-dependent branch patterns that a private
//     predictor learns but interleaved Hyper-Threaded histories destroy —
//     the paper's branch-prediction outlier.
//   - LU/SP/BT: pseudo-applications; moderately memory bound with a
//     pipelined-wavefront imbalance component for LU.
package profiles

import (
	"fmt"
	"sort"

	"xeonomp/internal/mem"
	"xeonomp/internal/sched"
	"xeonomp/internal/trace"
	"xeonomp/internal/units"
)

// Profile is one benchmark's architectural description at a given class.
type Profile struct {
	Name  string // canonical upper-case benchmark name ("CG")
	Class string // NPB class the geometry corresponds to

	Params trace.Params

	CodeBytes   uint64 // total code region (cold jumps range over this)
	SharedBytes uint64 // class-B shared working set
	PrivBytes   uint64 // per-thread private region (hot + warm + stream area)

	// SerialInstr is the instruction budget of a serial run at scale 1.0;
	// parallel runs split it across threads.
	SerialInstr int64
}

// Validate checks profile consistency.
func (p Profile) Validate() error {
	if p.Name == "" || p.SerialInstr <= 0 {
		return fmt.Errorf("profiles: incomplete profile %+v", p)
	}
	if p.PrivBytes < p.Params.HotBytes+p.Params.WarmBytes {
		return fmt.Errorf("profiles %s: private region %d smaller than hot+warm %d",
			p.Name, p.PrivBytes, p.Params.HotBytes+p.Params.WarmBytes)
	}
	return p.Params.Validate()
}

// Demand estimates the profile's appetite for the platform's two scarce
// shared resources, for symbiosis-aware scheduling: the single-thread
// off-chip bandwidth (from the miss-generating pattern fractions at a
// nominal instruction rate) and the per-thread L2 warm footprint.
func (p Profile) Demand() sched.ProgramDemand {
	t := p.Params
	memOps := t.LoadFrac + t.StoreFrac
	// Line fetches per memory operation: random and strided accesses miss
	// per access, sequential ones once per line.
	missFrac := t.RandFrac + t.StrideFrac + t.SeqFrac/8
	const nominalInstrPerSec = 7e8 // ~CPI 4 at 2.8 GHz
	bw := memOps * missFrac * 64 * nominalInstrPerSec
	stride := t.WarmStride
	if stride == 0 {
		stride = 192
	}
	var foot uint64
	if t.WarmFrac > 0 && stride > 0 {
		foot = t.WarmBytes / stride * 64
	}
	return sched.ProgramDemand{Bandwidth: bw, CacheFootprint: foot}
}

// Layout builds the address space for one instance of the benchmark run
// with the given thread count. asid distinguishes co-scheduled programs.
func (p Profile) Layout(asid uint64, threads int) (*mem.Layout, error) {
	return mem.NewLayout(asid, threads, p.CodeBytes, p.SharedBytes, p.PrivBytes)
}

// Generator builds thread tid's stream for a run with the given thread
// count and work scale. The per-thread chunk length shrinks with the thread
// count, as OpenMP static scheduling divides each parallel loop.
func (p Profile) Generator(layout *mem.Layout, tid, threads int, scale float64, seed uint64) (*trace.Generator, error) {
	if threads <= 0 {
		return nil, fmt.Errorf("profiles %s: threads %d", p.Name, threads)
	}
	if scale <= 0 {
		return nil, fmt.Errorf("profiles %s: scale %g", p.Name, scale)
	}
	params := p.Params
	params.ChunkInstr = params.ChunkInstr / int64(threads)
	if params.ChunkInstr < 64 {
		params.ChunkInstr = 64
	}
	budget := int64(float64(p.SerialInstr) * scale / float64(threads))
	if budget < 1 {
		budget = 1
	}
	return trace.NewGenerator(params, layout, tid, budget, seed)
}

const (
	kib = uint64(units.KiB)
	mib = uint64(units.MiB)
)

// table is the profile registry. All pattern fractions are over memory
// operations; mix fractions are over instructions.
var table = map[string]Profile{
	"EP": {
		Name: "EP", Class: "B",
		Params: trace.Params{
			LoadFrac: 0.16, StoreFrac: 0.05, BranchFrac: 0.13,
			HotFrac: 0.985, WarmFrac: 0.01, SeqFrac: 0.005,
			HotBytes: 6 * kib, WarmBytes: 64 * kib, WarmStride: 64,
			SharedFrac: 0.02,
			LoopLen:    28, DataBranchFrac: 0.06, DataEntropy: 0.25,
			CodeHotBytes: 6 * kib, CodeJumpProb: 0.0002,
			ChunkInstr: 500_000, ImbalancePct: 0.01,
			MLP: 0.30, DepProb: 0.28,
		},
		CodeBytes: 48 * kib, SharedBytes: 2 * mib, PrivBytes: 1 * mib,
		SerialInstr: 10_000_000,
	},
	"CG": {
		Name: "CG", Class: "B",
		Params: trace.Params{
			LoadFrac: 0.35, StoreFrac: 0.11, BranchFrac: 0.10,
			HotFrac: 0.944, WarmFrac: 0.020, SeqFrac: 0.012, StrideFrac: 0.004, RandFrac: 0.020,
			HotBytes: 6 * kib, WarmBytes: 672 * kib, WarmStride: 192, StrideBytes: 128,
			SharedFrac: 0.90,
			LoopLen:    28, DataBranchFrac: 0.04, DataEntropy: 0.30,
			CodeHotBytes: 8 * kib, CodeJumpProb: 0.0005,
			ChunkInstr: 600_000, ImbalancePct: 0.03,
			MLP: 0.40, DepProb: 0.18,
		},
		CodeBytes: 64 * kib, SharedBytes: 320 * mib, PrivBytes: 4 * mib,
		SerialInstr: 12_000_000,
	},
	"MG": {
		Name: "MG", Class: "B",
		Params: trace.Params{
			LoadFrac: 0.33, StoreFrac: 0.12, BranchFrac: 0.09,
			HotFrac: 0.878, WarmFrac: 0.027, SeqFrac: 0.070, StrideFrac: 0.015, RandFrac: 0.010,
			HotBytes: 6 * kib, WarmBytes: 1344 * kib, WarmStride: 192, StrideBytes: 128,
			SharedFrac: 0.85,
			LoopLen:    192, DataBranchFrac: 0.03, DataEntropy: 0.25,
			CodeHotBytes: 18 * kib, CodeJumpProb: 0.0008,
			ChunkInstr: 450_000, ImbalancePct: 0.04,
			MLP: 0.68, DepProb: 0.22,
		},
		CodeBytes: 96 * kib, SharedBytes: 440 * mib, PrivBytes: 4 * mib,
		SerialInstr: 12_000_000,
	},
	"FT": {
		Name: "FT", Class: "B",
		Params: trace.Params{
			LoadFrac: 0.27, StoreFrac: 0.10, BranchFrac: 0.09,
			HotFrac: 0.912, WarmFrac: 0.033, SeqFrac: 0.030, StrideFrac: 0.015, RandFrac: 0.010,
			HotBytes: 6 * kib, WarmBytes: 1152 * kib, WarmStride: 192, StrideBytes: 4096,
			SharedFrac: 0.85,
			LoopLen:    160, DataBranchFrac: 0.02, DataEntropy: 0.20,
			CodeHotBytes: 12 * kib, CodeJumpProb: 0.0006,
			ChunkInstr: 700_000, ImbalancePct: 0.02,
			MLP: 0.55, DepProb: 0.34,
		},
		CodeBytes: 80 * kib, SharedBytes: 720 * mib, PrivBytes: 4 * mib,
		SerialInstr: 13_000_000,
	},
	"IS": {
		Name: "IS", Class: "B",
		Params: trace.Params{
			LoadFrac: 0.30, StoreFrac: 0.16, BranchFrac: 0.16,
			HotFrac: 0.903, WarmFrac: 0.027, SeqFrac: 0.050, RandFrac: 0.020,
			HotBytes: 6 * kib, WarmBytes: 1380 * kib, WarmStride: 192,
			SharedFrac: 0.92,
			LoopLen:    22, DataBranchFrac: 0.60,
			DataPattern:  0x9249249249249249, // period-3 "100" pattern, learnable alone
			DataEntropy:  0.02,
			CodeHotBytes: 5 * kib, CodeJumpProb: 0.0003,
			ChunkInstr: 400_000, ImbalancePct: 0.05,
			MLP: 0.55, DepProb: 0.15,
		},
		CodeBytes: 32 * kib, SharedBytes: 160 * mib, PrivBytes: 4 * mib,
		SerialInstr: 10_000_000,
	},
	"LU": {
		Name: "LU", Class: "B",
		Params: trace.Params{
			LoadFrac: 0.30, StoreFrac: 0.10, BranchFrac: 0.10,
			HotFrac: 0.902, WarmFrac: 0.028, SeqFrac: 0.055, StrideFrac: 0.005, RandFrac: 0.010,
			HotBytes: 6 * kib, WarmBytes: 1344 * kib, WarmStride: 192, StrideBytes: 128,
			SharedFrac: 0.80,
			LoopLen:    384, DataBranchFrac: 0.05, DataEntropy: 0.25,
			CodeHotBytes: 24 * kib, CodeJumpProb: 0.0012,
			ChunkInstr: 300_000, ImbalancePct: 0.08,
			MLP: 0.55, DepProb: 0.26,
		},
		CodeBytes: 448 * kib, SharedBytes: 180 * mib, PrivBytes: 4 * mib,
		SerialInstr: 14_000_000,
	},
	"SP": {
		Name: "SP", Class: "B",
		Params: trace.Params{
			LoadFrac: 0.32, StoreFrac: 0.12, BranchFrac: 0.08,
			HotFrac: 0.888, WarmFrac: 0.027, SeqFrac: 0.065, StrideFrac: 0.012, RandFrac: 0.008,
			HotBytes: 6 * kib, WarmBytes: 1344 * kib, WarmStride: 192, StrideBytes: 128,
			SharedFrac: 0.85,
			LoopLen:    320, DataBranchFrac: 0.03, DataEntropy: 0.25,
			CodeHotBytes: 20 * kib, CodeJumpProb: 0.0010,
			ChunkInstr: 400_000, ImbalancePct: 0.05,
			MLP: 0.62, DepProb: 0.24,
		},
		CodeBytes: 384 * kib, SharedBytes: 300 * mib, PrivBytes: 4 * mib,
		SerialInstr: 13_000_000,
	},
	"BT": {
		Name: "BT", Class: "B",
		Params: trace.Params{
			LoadFrac: 0.30, StoreFrac: 0.11, BranchFrac: 0.08,
			HotFrac: 0.935, WarmFrac: 0.020, SeqFrac: 0.033, StrideFrac: 0.005, RandFrac: 0.007,
			HotBytes: 6 * kib, WarmBytes: 1056 * kib, WarmStride: 192, StrideBytes: 128,
			SharedFrac: 0.82,
			LoopLen:    448, DataBranchFrac: 0.03, DataEntropy: 0.25,
			CodeHotBytes: 26 * kib, CodeJumpProb: 0.0012,
			ChunkInstr: 500_000, ImbalancePct: 0.04,
			MLP: 0.55, DepProb: 0.30,
		},
		CodeBytes: 512 * kib, SharedBytes: 300 * mib, PrivBytes: 4 * mib,
		SerialInstr: 14_000_000,
	},
}

// ByName returns the profile for the benchmark (case-sensitive canonical
// name, e.g. "CG").
func ByName(name string) (Profile, error) {
	p, ok := table[name]
	if !ok {
		return Profile{}, fmt.Errorf("profiles: unknown benchmark %q", name)
	}
	return p, nil
}

// All returns every profile, sorted by name.
func All() []Profile {
	out := make([]Profile, 0, len(table))
	for _, p := range table {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Studied returns the six class-B benchmarks of the paper's evaluation, in
// the order used for the figures.
func Studied() []Profile {
	names := []string{"CG", "MG", "FT", "IS", "LU", "SP"}
	out := make([]Profile, 0, len(names))
	for _, n := range names {
		p, err := ByName(n)
		if err != nil {
			panic(err)
		}
		out = append(out, p)
	}
	return out
}

// StudiedNames returns the names of the studied set in figure order.
func StudiedNames() []string { return []string{"CG", "MG", "FT", "IS", "LU", "SP"} }
