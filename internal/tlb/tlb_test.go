package tlb

import (
	"testing"
	"testing/quick"
)

func cfg() Config {
	return Config{Name: "t", Entries: 8, Assoc: 2, PageSize: 4096} // 4 sets x 2 ways
}

func TestConfigValidate(t *testing.T) {
	if err := cfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Name: "e", Entries: 0, Assoc: 1, PageSize: 4096},
		{Name: "a", Entries: 8, Assoc: 3, PageSize: 4096},
		{Name: "s", Entries: 12, Assoc: 2, PageSize: 4096}, // 6 sets not pow2
		{Name: "p", Entries: 8, Assoc: 2, PageSize: 1000},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%v should be invalid", c)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Name: "bad", Entries: 7, Assoc: 2, PageSize: 4096})
}

func TestMissInstallsTranslation(t *testing.T) {
	tl := New(cfg())
	if tl.Access(0x1234) {
		t.Fatal("cold TLB must miss")
	}
	if !tl.Access(0x1FFF) {
		t.Fatal("same page must hit after install")
	}
	if tl.Access(0x2000) {
		t.Fatal("next page must miss")
	}
}

func TestLRUWithinSet(t *testing.T) {
	tl := New(cfg()) // 4 sets
	// Pages mapping to set 0: page numbers 0, 4, 8.
	p := func(n uint64) uint64 { return n * 4 * 4096 }
	tl.Access(p(0))
	tl.Access(p(1))
	tl.Access(p(0)) // refresh page 0
	tl.Access(p(2)) // evicts page 1
	if !tl.Probe(p(0)) || !tl.Probe(p(2)) || tl.Probe(p(1)) {
		t.Fatal("LRU replacement wrong")
	}
}

func TestFlush(t *testing.T) {
	tl := New(cfg())
	tl.Access(0)
	tl.Access(4096)
	if tl.Valid() != 2 {
		t.Fatalf("valid = %d", tl.Valid())
	}
	tl.Flush()
	if tl.Valid() != 0 || tl.Probe(0) {
		t.Fatal("flush incomplete")
	}
}

func TestPage(t *testing.T) {
	tl := New(cfg())
	if tl.Page(4096) != 1 || tl.Page(4095) != 0 {
		t.Fatal("page extraction wrong")
	}
}

func TestReachProperty(t *testing.T) {
	// Sequential pages up to the entry count always fit (reach invariant).
	tl := New(Config{Name: "r", Entries: 64, Assoc: 4, PageSize: 4096})
	for i := uint64(0); i < 64; i++ {
		tl.Access(i * 4096)
	}
	for i := uint64(0); i < 64; i++ {
		if !tl.Probe(i * 4096) {
			t.Fatalf("page %d fell out within reach", i)
		}
	}
}

func TestValidNeverExceedsEntriesProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		tl := New(cfg())
		for _, a := range addrs {
			tl.Access(uint64(a))
		}
		return tl.Valid() <= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAccessIdempotentHitProperty(t *testing.T) {
	f := func(a uint32) bool {
		tl := New(cfg())
		tl.Access(uint64(a))
		return tl.Access(uint64(a)) // must hit immediately after install
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
