// Package tlb models the instruction and data translation lookaside buffers
// of the simulated Xeon core. A TLB is a small fully-associative (or
// set-associative) cache of page translations with true-LRU replacement.
// Both Hyper-Threaded contexts of a core share one ITLB and one DTLB, so
// enabling HT halves the effective per-thread reach — the mechanism behind
// the ITLB-miss growth the paper observes on the more complex architectures.
package tlb

import (
	"fmt"

	"xeonomp/internal/units"
)

// Config describes one TLB.
type Config struct {
	Name     string
	Entries  int   // total entries; must be a positive multiple of Assoc
	Assoc    int   // ways per set; Entries/Assoc must be a power of two
	PageSize int64 // bytes per page; must be a power of two
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Entries <= 0 || c.Assoc <= 0 || c.Entries%c.Assoc != 0 {
		return fmt.Errorf("tlb %s: bad geometry entries=%d assoc=%d", c.Name, c.Entries, c.Assoc)
	}
	if !units.IsPow2(int64(c.Entries / c.Assoc)) {
		return fmt.Errorf("tlb %s: set count %d not a power of two", c.Name, c.Entries/c.Assoc)
	}
	if c.PageSize <= 0 || !units.IsPow2(c.PageSize) {
		return fmt.Errorf("tlb %s: page size %d not a positive power of two", c.Name, c.PageSize)
	}
	return nil
}

// invalidVPN marks an empty entry. Virtual page numbers are addr>>pageShift
// with pageShift ≥ 12, so no reachable translation can collide with it.
const invalidVPN = ^uint64(0)

// TLB is one translation buffer. Entry state is structure-of-arrays with a
// sentinel VPN for empty slots, so the Access hot path scans one contiguous
// run of uint64s (a single hardware cache line for a 4-way set) with no
// separate validity check.
type TLB struct {
	cfg       Config
	vpns      []uint64 // invalidVPN when the slot is empty
	stamps    []uint64 // LRU: larger = more recent
	assoc     uint64
	numSets   uint64
	pageShift uint
	clock     uint64
}

// New builds a TLB from cfg, panicking on invalid configuration.
func New(cfg Config) *TLB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	t := &TLB{
		cfg:       cfg,
		vpns:      make([]uint64, cfg.Entries),
		stamps:    make([]uint64, cfg.Entries),
		assoc:     uint64(cfg.Assoc),
		numSets:   uint64(cfg.Entries / cfg.Assoc),
		pageShift: units.Log2(cfg.PageSize),
	}
	for i := range t.vpns {
		t.vpns[i] = invalidVPN
	}
	return t
}

// Config returns the TLB's configuration.
func (t *TLB) Config() Config { return t.cfg }

// Page returns the virtual page number of addr.
func (t *TLB) Page(addr uint64) uint64 { return addr >> t.pageShift }

// setBase returns the index of the first way of vpn's set.
func (t *TLB) setBase(vpn uint64) uint64 {
	return (vpn & (t.numSets - 1)) * t.assoc
}

// Access translates addr: it returns true on a TLB hit. On a miss the
// translation is installed (the page walk itself is charged by the pipeline
// model), evicting the LRU entry of the set.
func (t *TLB) Access(addr uint64) bool {
	vpn := t.Page(addr)
	base := t.setBase(vpn)
	t.clock++
	vpns := t.vpns[base : base+t.assoc]
	for i := range vpns {
		if vpns[i] == vpn {
			t.stamps[base+uint64(i)] = t.clock
			return true
		}
	}
	victim := base
	for j := base; j < base+t.assoc; j++ {
		if t.vpns[j] == invalidVPN {
			victim = j
			break
		}
		if t.stamps[j] < t.stamps[victim] {
			victim = j
		}
	}
	t.vpns[victim] = vpn
	t.stamps[victim] = t.clock
	return false
}

// Probe reports whether the translation for addr is resident, without
// altering state.
func (t *TLB) Probe(addr uint64) bool {
	vpn := t.Page(addr)
	base := t.setBase(vpn)
	vpns := t.vpns[base : base+t.assoc]
	for i := range vpns {
		if vpns[i] == vpn {
			return true
		}
	}
	return false
}

// Flush invalidates all entries (e.g. on a simulated context switch with
// address-space change). The LRU stamp clock keeps ticking; use Reset to
// return to power-on state.
func (t *TLB) Flush() {
	for i := range t.vpns {
		t.vpns[i] = invalidVPN
		t.stamps[i] = 0
	}
}

// Reset restores power-on state: all entries invalid and the LRU stamp
// clock rewound, so a recycled TLB is indistinguishable from a fresh one.
func (t *TLB) Reset() {
	t.Flush()
	t.clock = 0
}

// Valid returns the number of valid entries.
func (t *TLB) Valid() int {
	n := 0
	for _, v := range t.vpns {
		if v != invalidVPN {
			n++
		}
	}
	return n
}
