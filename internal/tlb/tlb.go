// Package tlb models the instruction and data translation lookaside buffers
// of the simulated Xeon core. A TLB is a small fully-associative (or
// set-associative) cache of page translations with true-LRU replacement.
// Both Hyper-Threaded contexts of a core share one ITLB and one DTLB, so
// enabling HT halves the effective per-thread reach — the mechanism behind
// the ITLB-miss growth the paper observes on the more complex architectures.
package tlb

import (
	"fmt"

	"xeonomp/internal/units"
)

// Config describes one TLB.
type Config struct {
	Name     string
	Entries  int   // total entries; must be a positive multiple of Assoc
	Assoc    int   // ways per set; Entries/Assoc must be a power of two
	PageSize int64 // bytes per page; must be a power of two
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Entries <= 0 || c.Assoc <= 0 || c.Entries%c.Assoc != 0 {
		return fmt.Errorf("tlb %s: bad geometry entries=%d assoc=%d", c.Name, c.Entries, c.Assoc)
	}
	if !units.IsPow2(int64(c.Entries / c.Assoc)) {
		return fmt.Errorf("tlb %s: set count %d not a power of two", c.Name, c.Entries/c.Assoc)
	}
	if c.PageSize <= 0 || !units.IsPow2(c.PageSize) {
		return fmt.Errorf("tlb %s: page size %d not a positive power of two", c.Name, c.PageSize)
	}
	return nil
}

type entry struct {
	vpn   uint64
	valid bool
	stamp uint64
}

// TLB is one translation buffer.
type TLB struct {
	cfg       Config
	entries   []entry
	numSets   uint64
	pageShift uint
	clock     uint64
}

// New builds a TLB from cfg, panicking on invalid configuration.
func New(cfg Config) *TLB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &TLB{
		cfg:       cfg,
		entries:   make([]entry, cfg.Entries),
		numSets:   uint64(cfg.Entries / cfg.Assoc),
		pageShift: units.Log2(cfg.PageSize),
	}
}

// Config returns the TLB's configuration.
func (t *TLB) Config() Config { return t.cfg }

// Page returns the virtual page number of addr.
func (t *TLB) Page(addr uint64) uint64 { return addr >> t.pageShift }

func (t *TLB) set(vpn uint64) []entry {
	s := vpn & (t.numSets - 1)
	base := s * uint64(t.cfg.Assoc)
	return t.entries[base : base+uint64(t.cfg.Assoc)]
}

// Access translates addr: it returns true on a TLB hit. On a miss the
// translation is installed (the page walk itself is charged by the pipeline
// model), evicting the LRU entry of the set.
func (t *TLB) Access(addr uint64) bool {
	vpn := t.Page(addr)
	set := t.set(vpn)
	t.clock++
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].stamp = t.clock
			return true
		}
	}
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].stamp < set[victim].stamp {
			victim = i
		}
	}
	set[victim] = entry{vpn: vpn, valid: true, stamp: t.clock}
	return false
}

// Probe reports whether the translation for addr is resident, without
// altering state.
func (t *TLB) Probe(addr uint64) bool {
	vpn := t.Page(addr)
	set := t.set(vpn)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			return true
		}
	}
	return false
}

// Flush invalidates all entries (e.g. on a simulated context switch with
// address-space change).
func (t *TLB) Flush() {
	for i := range t.entries {
		t.entries[i] = entry{}
	}
}

// Valid returns the number of valid entries.
func (t *TLB) Valid() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
	}
	return n
}
