package machine

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON serializes the machine configuration as indented JSON, so a
// platform variant can be stored next to the experiments it produced.
func (c Config) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// LoadConfig parses a machine configuration from JSON and validates it.
// Fields omitted in the input stay at their zero values, so callers usually
// start from a full preset: marshal PaxvilleSMP(), edit, reload.
func LoadConfig(r io.Reader) (Config, error) {
	var c Config
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("machine: parsing config: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}
