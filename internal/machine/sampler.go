package machine

import (
	"fmt"

	"xeonomp/internal/counters"
)

// Sample is one sampling window: the aggregate counter deltas of every
// thread on the machine over [Start, End) cycles — the shape of data a
// time-based profiler like VTune produces, used to expose phase behaviour.
type Sample struct {
	Start, End int64
	Counters   counters.Set
}

// Metrics derives the window's Figure-2-style metrics.
func (s Sample) Metrics() counters.Metrics {
	return counters.Derive(&s.Counters)
}

// Sampler periodically snapshots the machine-wide counter state during Run.
// Attach with Machine.SetSampler before running; read Samples afterwards.
type Sampler struct {
	Interval int64 // cycles per window
	Samples  []Sample

	last     counters.Set
	nextTick int64
	started  bool
}

// NewSampler creates a sampler with the given window length in cycles.
func NewSampler(interval int64) (*Sampler, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("machine: sampler interval %d", interval)
	}
	return &Sampler{Interval: interval}, nil
}

// aggregate sums every thread's counters across the machine.
func aggregate(m *Machine, out *counters.Set) {
	out.Reset()
	for _, x := range m.Contexts() {
		for _, t := range x.Threads() {
			out.Merge(&t.Counters)
		}
	}
}

// tick is called by the engine when the clock reaches or passes the next
// window boundary.
func (s *Sampler) tick(m *Machine, now int64) {
	if !s.started {
		s.started = true
		s.nextTick = now + s.Interval
		aggregate(m, &s.last)
		return
	}
	for now >= s.nextTick {
		var cur counters.Set
		aggregate(m, &cur)
		// A thread's warmup reset can make counters regress between
		// windows; clamp those deltas to zero rather than panicking.
		var delta counters.Set
		for _, e := range counters.Events() {
			c, l := cur.Get(e), s.last.Get(e)
			if c > l {
				delta.Add(e, c-l)
			}
		}
		s.Samples = append(s.Samples, Sample{
			Start:    s.nextTick - s.Interval,
			End:      s.nextTick,
			Counters: delta,
		})
		s.last = cur
		s.nextTick += s.Interval
	}
}

// SetSampler attaches (or detaches, with nil) a sampler to the machine.
func (m *Machine) SetSampler(s *Sampler) { m.sampler = s }
