package machine

import (
	"sync"

	"xeonomp/internal/obs"
)

// Pool traffic series (see internal/obs): a build is a pool miss paying
// the full New cost; a reuse hands out a hard-reset recycled machine.
var (
	obsPoolBuilds = obs.NewCounter(obs.MetricMachinePoolBuilds)
	obsPoolReuses = obs.NewCounter(obs.MetricMachinePoolReuses)
)

// Pool recycles Machines between experiment cells. Building a machine
// allocates every cache way, TLB entry and predictor table (a few MB for
// the Paxville preset), which a study repeats hundreds of times with the
// same Config; the pool trades that for a ResetHard sweep over existing
// arrays. Machines are keyed by their full Config (a comparable value
// type), so a pooled machine is only ever reused for an identical
// platform, and Put hard-resets before parking so a recycled machine is
// bit-for-bit indistinguishable from a fresh New — determinism tests
// assert this. Pool is safe for concurrent use by the study workers.
type Pool struct {
	mu   sync.Mutex
	free map[Config][]*Machine
}

// NewPool returns an empty machine pool.
func NewPool() *Pool {
	return &Pool{free: make(map[Config][]*Machine)}
}

// Get returns a machine for cfg: a recycled one when available, otherwise
// a freshly built one. The machine is in power-on state either way.
func (p *Pool) Get(cfg Config) (*Machine, error) {
	p.mu.Lock()
	if list := p.free[cfg]; len(list) > 0 {
		m := list[len(list)-1]
		list[len(list)-1] = nil
		p.free[cfg] = list[:len(list)-1]
		p.mu.Unlock()
		obsPoolReuses.Inc()
		return m, nil
	}
	p.mu.Unlock()
	obsPoolBuilds.Inc()
	return New(cfg)
}

// Put hard-resets m and parks it for reuse. Put(nil) is a no-op. The
// caller must not retain references into the machine (contexts, cores,
// samplers) after Put.
func (p *Pool) Put(m *Machine) {
	if m == nil {
		return
	}
	m.ResetHard()
	p.mu.Lock()
	p.free[m.Cfg] = append(p.free[m.Cfg], m)
	p.mu.Unlock()
}
