package machine

import (
	"testing"

	"xeonomp/internal/counters"
	"xeonomp/internal/cpu"
	"xeonomp/internal/mem"
)

// poolRun executes one deterministic single-thread workload on m and
// returns the wall cycles and the thread's full counter set.
func poolRun(t *testing.T, m *Machine) (int64, counters.Set) {
	t.Helper()
	m.DisableAll()
	l, err := mem.NewLayout(1, 1, 8192, 1<<20, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	th := addThread(t, m, 0, 0, 0, "pooled", l, 0, 6000, cpu.NewTeam(1))
	cycles, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	return cycles, th.Counters
}

// dirty runs a different workload shape (two threads, HT-shared core) so
// the machine's caches, TLBs, predictors and RNGs are far from power-on
// state before the pool recycles it.
func dirty(t *testing.T, m *Machine) {
	t.Helper()
	m.DisableAll()
	l, err := mem.NewLayout(2, 2, 65536, 1<<20, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	team := cpu.NewTeam(2)
	addThread(t, m, 0, 0, 0, "dirty0", l, 0, 9000, team)
	addThread(t, m, 0, 0, 1, "dirty1", l, 1, 9000, team)
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
}

// TestPooledMachineDeterminism pins the pool's core guarantee: a machine
// recycled through Put/Get is bit-for-bit indistinguishable from a fresh
// New — identical wall cycles and identical counter values for the same
// workload — even after an unrelated run has dirtied every model.
// internal/core relies on this when it serves every study cell from the
// package-level pool.
func TestPooledMachineDeterminism(t *testing.T) {
	cfg := PaxvilleSMP()

	fresh, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantCycles, wantCounters := poolRun(t, fresh)

	p := NewPool()
	m, err := p.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dirty(t, m)
	p.Put(m)

	got, err := p.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatal("pool built a new machine instead of recycling")
	}
	gotCycles, gotCounters := poolRun(t, got)

	if gotCycles != wantCycles {
		t.Fatalf("recycled machine ran %d cycles, fresh ran %d", gotCycles, wantCycles)
	}
	if gotCounters != wantCounters {
		for _, ev := range counters.Events() {
			if g, w := gotCounters.Get(ev), wantCounters.Get(ev); g != w {
				t.Errorf("counter %v: recycled %d, fresh %d", ev, g, w)
			}
		}
		t.Fatal("recycled machine diverged from fresh machine")
	}
}

// TestPoolGetPutNoAllocs is the allocation-regression guard on the pooled
// hot path: once a machine exists for a config, a Get/Put cycle must not
// allocate — ResetHard sweeps existing arrays in place. A regression here
// means some model's Reset started rebuilding state instead of rewinding
// it, which silently restores the per-cell allocation cost the pool exists
// to remove.
func TestPoolGetPutNoAllocs(t *testing.T) {
	cfg := PaxvilleSMP()
	p := NewPool()
	m, err := p.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(m)

	avg := testing.AllocsPerRun(20, func() {
		m, err := p.Get(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p.Put(m)
	})
	if avg > 0.5 {
		t.Fatalf("pool Get/Put allocates %.1f objects per cycle, want 0", avg)
	}
}
