package machine

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"xeonomp/internal/bus"

	"xeonomp/internal/counters"
	"xeonomp/internal/cpu"
	"xeonomp/internal/mem"
	"xeonomp/internal/trace"
)

func newMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := New(PaxvilleSMP())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func simpleParams() trace.Params {
	return trace.Params{
		LoadFrac: 0.3, StoreFrac: 0.1, BranchFrac: 0.1,
		HotFrac: 0.9, SeqFrac: 0.05, RandFrac: 0.05,
		HotBytes: 2048, SharedFrac: 0.5,
		LoopLen: 20, ChunkInstr: 2000,
		MLP: 0.5,
	}
}

func addThread(t *testing.T, m *Machine, chip, core, ctx int, name string, layout *mem.Layout, tid int, budget int64, team *cpu.Team) *cpu.Thread {
	t.Helper()
	gen, err := trace.NewGenerator(simpleParams(), layout, tid, budget, 1)
	if err != nil {
		t.Fatal(err)
	}
	th := cpu.NewThread(name, 0, gen, team)
	x, err := m.Context(chip, core, ctx)
	if err != nil {
		t.Fatal(err)
	}
	x.Enabled = true
	x.Assign(th)
	return th
}

func TestTopology(t *testing.T) {
	m := newMachine(t)
	if len(m.Chips) != 2 || len(m.Cores()) != 4 || len(m.Contexts()) != 8 {
		t.Fatalf("topology wrong: %d chips %d cores %d contexts",
			len(m.Chips), len(m.Cores()), len(m.Contexts()))
	}
	// Both cores of a chip share the FSB; different chips do not.
	if m.Chips[0].Cores[0].FSB != m.Chips[0].Cores[1].FSB {
		t.Fatal("cores of a chip must share the FSB")
	}
	if m.Chips[0].Cores[0].FSB == m.Chips[1].Cores[0].FSB {
		t.Fatal("chips must have distinct FSBs")
	}
	// Contexts of a core share every core structure.
	c0 := m.Cores()[0]
	if len(c0.Contexts) != 2 {
		t.Fatal("core must have two contexts")
	}
}

func TestContextLookup(t *testing.T) {
	m := newMachine(t)
	x, err := m.Context(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if x.Label != "P1C1T1" {
		t.Fatalf("label = %q", x.Label)
	}
	if _, err := m.Context(2, 0, 0); err == nil {
		t.Fatal("out-of-range chip accepted")
	}
	if _, err := m.Context(0, 0, 2); err == nil {
		t.Fatal("out-of-range thread accepted")
	}
}

func TestEnumerationOrderMatchesPaperLabels(t *testing.T) {
	m := newMachine(t)
	// A-enumeration: chip-major, then core, then hardware thread.
	want := []string{"P0C0T0", "P0C0T1", "P0C1T0", "P0C1T1", "P1C0T0", "P1C0T1", "P1C1T0", "P1C1T1"}
	for i, x := range m.Contexts() {
		if x.Label != want[i] {
			t.Fatalf("context %d (%s) label %q, want %q", i, HTLabel(i), x.Label, want[i])
		}
	}
	if HTLabel(3) != "A3" || HTOffLabel(2) != "B2" {
		t.Fatal("paper labels wrong")
	}
}

func TestEnableDisable(t *testing.T) {
	m := newMachine(t)
	m.EnableAll()
	if len(m.Enabled()) != 8 {
		t.Fatal("enable all failed")
	}
	m.DisableAll()
	if len(m.Enabled()) != 0 {
		t.Fatal("disable all failed")
	}
}

func TestRunSingleThread(t *testing.T) {
	m := newMachine(t)
	m.DisableAll()
	l, err := mem.NewLayout(1, 1, 8192, 1<<20, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	th := addThread(t, m, 0, 0, 0, "solo", l, 0, 6000, cpu.NewTeam(1))
	cycles, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if cycles <= 0 {
		t.Fatal("no cycles elapsed")
	}
	if th.State != cpu.ThreadDone {
		t.Fatal("thread did not finish")
	}
	if th.Counters.Get(counters.Instructions) != 6000 {
		t.Fatalf("retired %d, want 6000", th.Counters.Get(counters.Instructions))
	}
	if th.Counters.Get(counters.Cycles) == 0 {
		t.Fatal("cycle counter empty")
	}
	if th.FinishedAt <= 0 || th.FinishedAt > cycles {
		t.Fatalf("finish time %d outside run (%d)", th.FinishedAt, cycles)
	}
}

func TestRunTeamAcrossCores(t *testing.T) {
	m := newMachine(t)
	m.DisableAll()
	l, err := mem.NewLayout(1, 4, 8192, 1<<20, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	team := cpu.NewTeam(4)
	var threads []*cpu.Thread
	coords := [][3]int{{0, 0, 0}, {0, 1, 0}, {1, 0, 0}, {1, 1, 0}}
	for tid, c := range coords {
		threads = append(threads, addThread(t, m, c[0], c[1], c[2], "t", l, tid, 8000, team))
	}
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	for tid, th := range threads {
		if th.State != cpu.ThreadDone {
			t.Fatalf("thread %d not done", tid)
		}
	}
}

func TestRunSMTSharedCore(t *testing.T) {
	m := newMachine(t)
	m.DisableAll()
	l, err := mem.NewLayout(1, 2, 8192, 1<<20, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	team := cpu.NewTeam(2)
	a := addThread(t, m, 0, 0, 0, "a", l, 0, 8000, team)
	b := addThread(t, m, 0, 0, 1, "b", l, 1, 8000, team)
	wall, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if a.State != cpu.ThreadDone || b.State != cpu.ThreadDone {
		t.Fatal("SMT pair did not finish")
	}
	// Two contexts share issue bandwidth: the run must take longer than a
	// single thread of the same budget but less than the serial sum.
	m2 := newMachine(t)
	m2.DisableAll()
	l2, _ := mem.NewLayout(1, 1, 8192, 1<<20, 1<<20)
	solo := addThread(t, m2, 0, 0, 0, "solo", l2, 0, 8000, cpu.NewTeam(1))
	soloWall, err := m2.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	_ = solo
	if wall <= soloWall {
		t.Fatalf("SMT pair (%d) should be slower than one thread (%d)", wall, soloWall)
	}
	if wall >= 2*soloWall {
		t.Fatalf("SMT pair (%d) should be faster than fully serialized (%d)", wall, 2*soloWall)
	}
}

func TestRunTimeslicedOversubscription(t *testing.T) {
	m := newMachine(t)
	m.DisableAll()
	// Two independent single-thread programs on ONE context: the serial
	// multi-program case; the context must time-slice them.
	l1, _ := mem.NewLayout(1, 1, 8192, 1<<20, 1<<20)
	l2, _ := mem.NewLayout(2, 1, 8192, 1<<20, 1<<20)
	a := addThread(t, m, 0, 0, 0, "p0", l1, 0, 6000, cpu.NewTeam(1))
	gen, err := trace.NewGenerator(simpleParams(), l2, 0, 6000, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := cpu.NewThread("p1", 1, gen, cpu.NewTeam(1))
	x, _ := m.Context(0, 0, 0)
	x.Assign(b)
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if a.State != cpu.ThreadDone || b.State != cpu.ThreadDone {
		t.Fatal("time-sliced threads did not finish")
	}
}

func TestRunDeadlockDetected(t *testing.T) {
	m := newMachine(t)
	m.DisableAll()
	l, _ := mem.NewLayout(1, 2, 8192, 1<<20, 1<<20)
	// Team of two, but only one thread assigned: its first barrier can
	// never be released.
	team := cpu.NewTeam(2)
	addThread(t, m, 0, 0, 0, "lonely", l, 0, 50000, team)
	_, err := m.Run(0)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected deadlock, got %v", err)
	}
}

func TestRunCycleLimit(t *testing.T) {
	m := newMachine(t)
	m.DisableAll()
	l, _ := mem.NewLayout(1, 1, 8192, 1<<20, 1<<20)
	addThread(t, m, 0, 0, 0, "long", l, 0, 1_000_000, cpu.NewTeam(1))
	_, err := m.Run(100)
	if !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("expected cycle limit, got %v", err)
	}
}

func TestRunEmptyMachine(t *testing.T) {
	m := newMachine(t)
	m.DisableAll()
	cycles, err := m.Run(0)
	if err != nil || cycles != 0 {
		t.Fatalf("empty run = %d, %v", cycles, err)
	}
}

func TestReset(t *testing.T) {
	m := newMachine(t)
	m.DisableAll()
	l, _ := mem.NewLayout(1, 1, 8192, 1<<20, 1<<20)
	addThread(t, m, 0, 0, 0, "x", l, 0, 5000, cpu.NewTeam(1))
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	if m.Clock() != 0 {
		t.Fatal("clock not reset")
	}
	if m.Mem.ReadBytes() != 0 {
		t.Fatal("memory counters not reset")
	}
	for _, c := range m.Cores() {
		if c.L1D.ValidLines() != 0 || c.L2.ValidLines() != 0 {
			t.Fatal("caches not flushed")
		}
		for _, x := range c.Contexts {
			if x.QueueLen() != 0 {
				t.Fatal("run queues not cleared")
			}
		}
	}
	// The machine is reusable after reset.
	l2, _ := mem.NewLayout(1, 1, 8192, 1<<20, 1<<20)
	addThread(t, m, 0, 0, 0, "y", l2, 0, 1000, cpu.NewTeam(1))
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicWallClock(t *testing.T) {
	run := func() int64 {
		m := newMachine(t)
		m.DisableAll()
		l, _ := mem.NewLayout(1, 2, 8192, 1<<20, 1<<20)
		team := cpu.NewTeam(2)
		addThread(t, m, 0, 0, 0, "a", l, 0, 10000, team)
		addThread(t, m, 0, 1, 0, "b", l, 1, 10000, team)
		w, err := m.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	if run() != run() {
		t.Fatal("simulation not deterministic")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := PaxvilleSMP()
	bad.Chips = 0
	if _, err := New(bad); err == nil {
		t.Error("zero chips accepted")
	}
	bad = PaxvilleSMP()
	bad.FSBBandwidth = 0
	if _, err := New(bad); err == nil {
		t.Error("zero FSB bandwidth accepted")
	}
	bad = PaxvilleSMP()
	bad.L1D.Size = 1000 // not a power of two
	if _, err := New(bad); err == nil {
		t.Error("bad cache config accepted")
	}
}

func TestPrefetchGateOverride(t *testing.T) {
	cfg := PaxvilleSMP()
	cfg.PrefetchGate = -1
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Cores() {
		if c.PrefetchGate != -1 {
			t.Fatal("prefetch gate override not applied")
		}
	}
}

func TestSampler(t *testing.T) {
	m := newMachine(t)
	m.DisableAll()
	l, _ := mem.NewLayout(1, 1, 8192, 1<<20, 1<<20)
	addThread(t, m, 0, 0, 0, "sampled", l, 0, 50000, cpu.NewTeam(1))
	s, err := NewSampler(10_000)
	if err != nil {
		t.Fatal(err)
	}
	m.SetSampler(s)
	wall, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Samples) == 0 {
		t.Fatal("no samples collected")
	}
	var total uint64
	for i, smp := range s.Samples {
		if smp.End-smp.Start != 10_000 {
			t.Fatalf("sample %d window %d, want 10000", i, smp.End-smp.Start)
		}
		if i > 0 && smp.Start != s.Samples[i-1].End {
			t.Fatalf("samples not contiguous at %d", i)
		}
		total += smp.Counters.Get(counters.Instructions)
		if m := smp.Metrics(); m.CPI < 0 {
			t.Fatal("sample metrics malformed")
		}
	}
	if total == 0 || total > 50000 {
		t.Fatalf("sampled instruction total %d implausible", total)
	}
	if s.Samples[len(s.Samples)-1].End > wall+10_000 {
		t.Fatal("samples extend past the run")
	}
}

func TestSamplerValidation(t *testing.T) {
	if _, err := NewSampler(0); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestRecordedTraceReplaysIdentically(t *testing.T) {
	// Record a thread's stream, then run the live generator and the replay
	// through identical machines: wall clocks and counters must match
	// exactly — the trace capture/replay guarantee.
	l, err := mem.NewLayout(1, 1, 8192, 1<<20, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := trace.NewGenerator(simpleParams(), l, 0, 20000, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := trace.WriteTrace(&buf, rec); err != nil {
		t.Fatal(err)
	}

	run := func(stream trace.Stream) (int64, counters.Set) {
		m := newMachine(t)
		m.DisableAll()
		th := cpu.NewThread("replay", 0, stream, cpu.NewTeam(1))
		x, err := m.Context(0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		x.Enabled = true
		x.Assign(th)
		x.Prewarm()
		wall, err := m.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return wall, th.Counters
	}

	live, err := trace.NewGenerator(simpleParams(), l, 0, 20000, 9)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := trace.NewFileStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// The replayed header intentionally omits generator-only knobs; for a
	// strict equivalence check the streams must agree on MLP and DepProb,
	// which the header carries.
	w1, c1 := run(live)
	w2, c2 := run(fs)
	if w1 != w2 {
		t.Fatalf("wall clocks differ: live %d, replay %d", w1, w2)
	}
	if c1 != c2 {
		t.Fatalf("counters differ between live and replayed runs")
	}
}

func TestCoherenceInvalidation(t *testing.T) {
	// A line read by core 0 and then written by core 1 must disappear from
	// core 0's caches, and the writer must count an invalidation.
	m := newMachine(t)
	c0 := m.Cores()[0]
	c1 := m.Cores()[1]
	l, _ := mem.NewLayout(1, 2, 8192, 1<<20, 1<<20)
	team := cpu.NewTeam(2)
	gen, err := trace.NewGenerator(simpleParams(), l, 0, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	writer := cpu.NewThread("writer", 0, gen, team)

	const addr = uint64(0x5000)
	c0.L1D.Fill(addr, false, false)
	c0.L2.Fill(addr, false, false)
	if !c0.L1D.Probe(addr) {
		t.Fatal("setup failed")
	}
	c1.InvalidatePeersForTest(writer, addr, 0)
	if c0.L1D.Probe(addr) || c0.L2.Probe(addr) {
		t.Fatal("remote copies survived the invalidation")
	}
	if writer.Counters.Get(counters.BusInvalidate) != 1 {
		t.Fatalf("invalidation count = %d, want 1", writer.Counters.Get(counters.BusInvalidate))
	}
	// Second invalidation of the same (now absent) line is free.
	c1.InvalidatePeersForTest(writer, addr, 0)
	if writer.Counters.Get(counters.BusInvalidate) != 1 {
		t.Fatal("invalidation counted for absent remote line")
	}
}

func TestCoherenceDirtyRemoteWritesBack(t *testing.T) {
	m := newMachine(t)
	c0 := m.Cores()[0] // chip 0
	c1 := m.Cores()[2] // chip 1: distinct FSB, so the writeback is attributable
	l, _ := mem.NewLayout(1, 1, 8192, 1<<20, 1<<20)
	gen, err := trace.NewGenerator(simpleParams(), l, 0, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	writer := cpu.NewThread("w", 0, gen, cpu.NewTeam(1))

	const addr = uint64(0x9000)
	c0.L2.Fill(addr, true, false) // dirty remote copy
	before := c0.FSB.Transactions(bus.Writeback)
	c1.InvalidatePeersForTest(writer, addr, 0)
	if got := c0.FSB.Transactions(bus.Writeback); got != before+1 {
		t.Fatalf("dirty remote data not written back: %d -> %d", before, got)
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	orig := PaxvilleSMP()
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != orig {
		t.Fatalf("round trip changed the config:\n%+v\nvs\n%+v", loaded, orig)
	}
	// The loaded config must build a working machine.
	if _, err := New(loaded); err != nil {
		t.Fatal(err)
	}
}

func TestLoadConfigRejectsInvalid(t *testing.T) {
	if _, err := LoadConfig(strings.NewReader(`{"Chips": 0}`)); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := LoadConfig(strings.NewReader(`{"NotAField": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := LoadConfig(strings.NewReader(`garbage`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestPrestoniaPreset(t *testing.T) {
	cfg := PrestoniaSMP()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cores()) != 2 || len(m.Contexts()) != 4 {
		t.Fatalf("Prestonia topology wrong: %d cores, %d contexts", len(m.Cores()), len(m.Contexts()))
	}
	// Slower platform: less FSB bandwidth and higher latency than Paxville.
	pax := PaxvilleSMP()
	if cfg.FSBBandwidth >= pax.FSBBandwidth {
		t.Fatal("Prestonia FSB should be slower")
	}
	if cfg.Mem.LatencyNs <= pax.Mem.LatencyNs {
		t.Fatal("Prestonia memory should be slower")
	}
}
