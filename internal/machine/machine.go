// Package machine assembles the full simulated platform of the paper: a
// Dell PowerEdge 2850-like SMP with two dual-core 2.8 GHz Hyper-Threaded
// Xeon "Paxville" chips, per-core trace cache / L1D / private 1 MB L2,
// shared-per-core TLBs and branch predictor, one front-side bus per chip,
// and a shared dual-channel memory controller. It also contains the cycle
// engine that advances all cores in lockstep with event-driven clock jumps
// across globally-stalled windows.
package machine

import (
	"errors"
	"fmt"

	"xeonomp/internal/branch"
	"xeonomp/internal/bus"
	"xeonomp/internal/cache"
	"xeonomp/internal/counters"
	"xeonomp/internal/cpu"
	"xeonomp/internal/obs"
	"xeonomp/internal/prefetch"
	"xeonomp/internal/tlb"
	"xeonomp/internal/units"
)

// Process-wide observability series (see internal/obs): cycle-engine
// throughput, for judging simulator speed from a -metrics-out snapshot.
var (
	obsRuns        = obs.NewCounter(obs.MetricMachineRuns)
	obsCycles      = obs.NewCounter(obs.MetricMachineCycles)
	obsCyclesPerWs = obs.NewGauge(obs.MetricMachineCyclesPerWs)
)

// Config describes a full machine.
type Config struct {
	Chips           int
	CoresPerChip    int
	ContextsPerCore int

	Freq units.Frequency

	TraceCache cache.Config
	L1D        cache.Config
	L2         cache.Config
	ITLB       tlb.Config
	DTLB       tlb.Config
	Branch     branch.Config
	Prefetch   prefetch.Config

	FSBBandwidth float64 // effective bytes/second per chip
	Mem          bus.MemConfig

	Lat cpu.Latencies

	// PrefetchGate overrides the cores' prefetch admission threshold (the
	// maximum FSB queue delay at which prefetches are still issued).
	// 0 keeps the default; a negative value disables prefetching.
	PrefetchGate int64
}

// Validate checks the machine configuration.
func (c Config) Validate() error {
	if c.Chips <= 0 || c.CoresPerChip <= 0 || c.ContextsPerCore <= 0 {
		return fmt.Errorf("machine: bad topology %d/%d/%d", c.Chips, c.CoresPerChip, c.ContextsPerCore)
	}
	if c.Freq <= 0 {
		return fmt.Errorf("machine: frequency %v", c.Freq)
	}
	for _, cc := range []cache.Config{c.TraceCache, c.L1D, c.L2} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	if err := c.ITLB.Validate(); err != nil {
		return err
	}
	if err := c.DTLB.Validate(); err != nil {
		return err
	}
	if err := c.Branch.Validate(); err != nil {
		return err
	}
	if err := c.Prefetch.Validate(); err != nil {
		return err
	}
	if c.FSBBandwidth <= 0 {
		return fmt.Errorf("machine: FSB bandwidth %g", c.FSBBandwidth)
	}
	if err := c.Mem.Validate(); err != nil {
		return err
	}
	return c.Lat.Validate()
}

// PaxvilleSMP returns the paper's platform: 2 chips x 2 cores x 2 contexts
// at 2.8 GHz, 16 KiB L1D and trace cache per core, private 1 MiB L2 per
// core, one FSB per chip calibrated to 3.57 GB/s effective read bandwidth,
// and a dual-channel controller calibrated to the paper's 4.43 GB/s
// aggregate and 136.85 ns unloaded latency.
func PaxvilleSMP() Config {
	const freq = units.Frequency(2.8 * units.GHz)
	const line = 64
	return Config{
		Chips:           2,
		CoresPerChip:    2,
		ContextsPerCore: 2,
		Freq:            freq,
		TraceCache:      cache.Config{Name: "TC", Size: 16 * units.KiB, LineSize: line, Assoc: 8},
		L1D:             cache.Config{Name: "L1D", Size: 16 * units.KiB, LineSize: line, Assoc: 8},
		L2:              cache.Config{Name: "L2", Size: 1 * units.MiB, LineSize: line, Assoc: 8},
		ITLB:            tlb.Config{Name: "ITLB", Entries: 64, Assoc: 4, PageSize: 4096},
		DTLB:            tlb.Config{Name: "DTLB", Entries: 64, Assoc: 4, PageSize: 4096},
		Branch:          branch.Config{PHTBits: 12, HistoryBits: 10, BTBEntries: 2048},
		Prefetch:        prefetch.Config{Streams: 8, Degree: 2, LineSize: line, PageSize: 4096, MaxStride: 2},
		FSBBandwidth:    3.57 * units.GB,
		Mem: bus.MemConfig{
			Channels:         2,
			ChannelBandwidth: 4.43 * units.GB / 2,
			LatencyNs:        136.85,
			LineSize:         line,
			Freq:             freq,
		},
		Lat: cpu.DefaultLatencies(),
	}
}

// PrestoniaSMP returns the authors' earlier platform (their IOSCA'05 study,
// the paper's reference [3]): a two-way SMP of single-core Hyper-Threaded
// 3.0 GHz Xeons with 512 KiB L2 and a 533 MHz front-side bus. The paper
// argues HT efficiency improved on the newer box "most likely due to the
// improvements in memory bus speed"; comparing SMT speedups across the two
// presets reproduces that claim.
func PrestoniaSMP() Config {
	const freq = units.Frequency(3.0 * units.GHz)
	const line = 64
	return Config{
		Chips:           2,
		CoresPerChip:    1,
		ContextsPerCore: 2,
		Freq:            freq,
		TraceCache:      cache.Config{Name: "TC", Size: 16 * units.KiB, LineSize: line, Assoc: 8},
		L1D:             cache.Config{Name: "L1D", Size: 8 * units.KiB, LineSize: line, Assoc: 4},
		L2:              cache.Config{Name: "L2", Size: 512 * units.KiB, LineSize: line, Assoc: 8},
		ITLB:            tlb.Config{Name: "ITLB", Entries: 64, Assoc: 4, PageSize: 4096},
		DTLB:            tlb.Config{Name: "DTLB", Entries: 64, Assoc: 4, PageSize: 4096},
		Branch:          branch.Config{PHTBits: 12, HistoryBits: 10, BTBEntries: 2048},
		Prefetch:        prefetch.Config{Streams: 8, Degree: 2, LineSize: line, PageSize: 4096, MaxStride: 2},
		FSBBandwidth:    2.1 * units.GB, // 533 MHz FSB, protocol overhead folded in
		Mem: bus.MemConfig{
			Channels:         2,
			ChannelBandwidth: 2.6 * units.GB / 2,
			LatencyNs:        180,
			LineSize:         line,
			Freq:             freq,
		},
		Lat: cpu.DefaultLatencies(),
	}
}

// Chip is one physical package: cores sharing a front-side bus.
type Chip struct {
	ID    int
	FSB   *bus.FSB
	Cores []*cpu.Core
}

// Machine is the assembled platform.
type Machine struct {
	Cfg   Config
	Mem   *bus.Memory
	Chips []*Chip

	cores    []*cpu.Core
	contexts []*cpu.Context // flattened, HT enumeration order
	clock    int64
	sampler  *Sampler
}

// New builds a machine from cfg. All contexts start disabled; apply a
// configuration (internal/config) or call EnableAll.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{Cfg: cfg, Mem: bus.NewMemory(cfg.Mem)}
	for p := 0; p < cfg.Chips; p++ {
		fsb := bus.NewFSB(bus.FSBConfig{
			Name:      fmt.Sprintf("fsb%d", p),
			Bandwidth: cfg.FSBBandwidth,
			LineSize:  cfg.Mem.LineSize,
			Freq:      cfg.Freq,
		}, m.Mem)
		chip := &Chip{ID: p, FSB: fsb}
		for c := 0; c < cfg.CoresPerChip; c++ {
			id := fmt.Sprintf("P%dC%d", p, c)
			core := cpu.NewCore(id, cfg.Lat,
				cache.New(named(cfg.TraceCache, id)),
				cache.New(named(cfg.L1D, id)),
				cache.New(named(cfg.L2, id)),
				tlb.New(cfg.ITLB), tlb.New(cfg.DTLB),
				branch.New(cfg.Branch), prefetch.New(cfg.Prefetch),
				fsb, cfg.ContextsPerCore)
			if cfg.PrefetchGate != 0 {
				core.PrefetchGate = cfg.PrefetchGate
			}
			for t, x := range core.Contexts {
				x.Label = fmt.Sprintf("P%dC%dT%d", p, c, t)
				m.contexts = append(m.contexts, x)
				_ = t
			}
			chip.Cores = append(chip.Cores, core)
			m.cores = append(m.cores, core)
		}
		m.Chips = append(m.Chips, chip)
	}
	// Wire write-invalidate coherence: every core sees every other core.
	for _, a := range m.cores {
		for _, b := range m.cores {
			if a != b {
				a.Peers = append(a.Peers, b)
			}
		}
	}
	return m, nil
}

func named(c cache.Config, core string) cache.Config {
	c.Name = core + "." + c.Name
	return c
}

// Context returns the hardware context at (chip, core, thread).
func (m *Machine) Context(chip, core, thread int) (*cpu.Context, error) {
	if chip < 0 || chip >= m.Cfg.Chips || core < 0 || core >= m.Cfg.CoresPerChip ||
		thread < 0 || thread >= m.Cfg.ContextsPerCore {
		return nil, fmt.Errorf("machine: no context (%d,%d,%d)", chip, core, thread)
	}
	idx := (chip*m.Cfg.CoresPerChip+core)*m.Cfg.ContextsPerCore + thread
	return m.contexts[idx], nil
}

// Contexts returns all hardware contexts in HT enumeration order
// (chip-major, then core, then thread): A0..A7 on the paper's box.
func (m *Machine) Contexts() []*cpu.Context { return m.contexts }

// Cores returns all cores, chip-major.
func (m *Machine) Cores() []*cpu.Core { return m.cores }

// HTLabel returns the paper's HT-enabled label (A0..) for flat index i.
func HTLabel(i int) string { return fmt.Sprintf("A%d", i) }

// HTOffLabel returns the paper's HT-disabled label (B0..) for the i-th core.
func HTOffLabel(i int) string { return fmt.Sprintf("B%d", i) }

// DisableAll disables every context.
func (m *Machine) DisableAll() {
	for _, x := range m.contexts {
		x.Enabled = false
	}
}

// EnableAll enables every context.
func (m *Machine) EnableAll() {
	for _, x := range m.contexts {
		x.Enabled = true
	}
}

// Enabled returns the enabled contexts in enumeration order — the logical
// processors the OS scheduler may use.
func (m *Machine) Enabled() []*cpu.Context {
	var out []*cpu.Context
	for _, x := range m.contexts {
		if x.Enabled {
			out = append(out, x)
		}
	}
	return out
}

// Clock returns the current cycle.
func (m *Machine) Clock() int64 { return m.clock }

// ErrDeadlock is returned when no context can ever issue again but threads
// remain unfinished (a barrier that can never be released, e.g. a team
// thread that was never assigned to an enabled context).
var ErrDeadlock = errors.New("machine: deadlock, unfinished threads but no runnable context")

// ErrCycleLimit is returned when the run exceeds the cycle budget.
var ErrCycleLimit = errors.New("machine: cycle limit exceeded")

// Run advances the machine until every assigned thread has finished, or
// until limit cycles have elapsed (limit <= 0 means no limit). It returns
// the cycle count at completion.
func (m *Machine) Run(limit int64) (int64, error) {
	obsRuns.Inc()
	t := obs.StartTimer()
	startClock := m.clock
	defer func() {
		advanced := m.clock - startClock
		obsCycles.Add(uint64(advanced))
		obsCyclesPerWs.Set(t.Rate(advanced))
	}()
	for {
		if m.allDone() {
			return m.clock, nil
		}
		if limit > 0 && m.clock >= limit {
			return m.clock, ErrCycleLimit
		}
		issued := false
		for _, c := range m.cores {
			if c.Step(m.clock) {
				issued = true
			}
		}
		next := m.clock + 1
		if !issued {
			ev := m.nextEvent()
			if ev < 0 {
				if m.allDone() {
					return m.clock, nil
				}
				return m.clock, ErrDeadlock
			}
			if ev > next {
				next = ev
			}
		}
		m.accrue(next - m.clock)
		m.clock = next
		if m.sampler != nil {
			m.sampler.tick(m, m.clock)
		}
	}
}

// nextEvent returns the earliest cycle any context could issue, or -1.
func (m *Machine) nextEvent() int64 {
	best := int64(-1)
	for _, x := range m.contexts {
		ev := x.NextEvent(m.clock)
		if ev < 0 {
			continue
		}
		if best < 0 || ev < best {
			best = ev
		}
	}
	if best >= 0 && best <= m.clock {
		best = m.clock + 1
	}
	return best
}

// accrue charges d cycles to the mounted thread of every context that still
// has unfinished work — this is the PMU "cycles" event per thread.
func (m *Machine) accrue(d int64) {
	if d <= 0 {
		return
	}
	for _, x := range m.contexts {
		if !x.Enabled || x.AllDone() {
			continue
		}
		if t := x.Mounted(); t != nil && t.State != cpu.ThreadDone {
			t.Counters.Add(counters.Cycles, uint64(d))
		}
	}
}

func (m *Machine) allDone() bool {
	for _, c := range m.cores {
		if !c.Done() {
			return false
		}
	}
	return true
}

// Reset restores the machine to power-on state: caches, TLBs, predictors,
// prefetchers, buses, memory, clock, run queues. Enabled flags are kept.
func (m *Machine) Reset() {
	m.clock = 0
	m.Mem.Reset()
	for _, ch := range m.Chips {
		ch.FSB.Reset()
	}
	for _, c := range m.cores {
		c.TC.Flush()
		c.L1D.Flush()
		c.L2.Flush()
		c.ITLB.Flush()
		c.DTLB.Flush()
		c.BP.Reset()
		c.PF.Reset()
		for _, x := range c.Contexts {
			x.Clear()
		}
	}
}
