// Package machine assembles the full simulated platform of the paper: a
// Dell PowerEdge 2850-like SMP with two dual-core 2.8 GHz Hyper-Threaded
// Xeon "Paxville" chips, per-core trace cache / L1D / private 1 MB L2,
// shared-per-core TLBs and branch predictor, one front-side bus per chip,
// and a shared dual-channel memory controller. It also contains the cycle
// engine that advances all cores in lockstep with event-driven clock
// jumps — across globally-stalled windows, across per-context quiet
// windows, and through fused single-core solo windows (see the
// advancement contract on Machine.Run) — plus the machine Pool that
// recycles fully-built platforms between experiment cells. Every
// advancement shortcut is byte-identity-preserving by construction; see
// PERFORMANCE.md for the ground rules and the measured effect.
package machine

import (
	"errors"
	"fmt"

	"xeonomp/internal/branch"
	"xeonomp/internal/bus"
	"xeonomp/internal/cache"
	"xeonomp/internal/counters"
	"xeonomp/internal/cpu"
	"xeonomp/internal/obs"
	"xeonomp/internal/prefetch"
	"xeonomp/internal/tlb"
	"xeonomp/internal/units"
)

// Process-wide observability series (see internal/obs): cycle-engine
// throughput, for judging simulator speed from a -metrics-out snapshot.
var (
	obsRuns        = obs.NewCounter(obs.MetricMachineRuns)
	obsCycles      = obs.NewCounter(obs.MetricMachineCycles)
	obsCyclesPerWs = obs.NewGauge(obs.MetricMachineCyclesPerWs)
)

// Config describes a full machine.
type Config struct {
	Chips           int
	CoresPerChip    int
	ContextsPerCore int

	Freq units.Frequency

	TraceCache cache.Config
	L1D        cache.Config
	L2         cache.Config
	ITLB       tlb.Config
	DTLB       tlb.Config
	Branch     branch.Config
	Prefetch   prefetch.Config

	FSBBandwidth float64 // effective bytes/second per chip
	Mem          bus.MemConfig

	Lat cpu.Latencies

	// PrefetchGate overrides the cores' prefetch admission threshold (the
	// maximum FSB queue delay at which prefetches are still issued).
	// 0 keeps the default; a negative value disables prefetching.
	PrefetchGate int64
}

// Validate checks the machine configuration.
func (c Config) Validate() error {
	if c.Chips <= 0 || c.CoresPerChip <= 0 || c.ContextsPerCore <= 0 {
		return fmt.Errorf("machine: bad topology %d/%d/%d", c.Chips, c.CoresPerChip, c.ContextsPerCore)
	}
	if c.Freq <= 0 {
		return fmt.Errorf("machine: frequency %v", c.Freq)
	}
	for _, cc := range []cache.Config{c.TraceCache, c.L1D, c.L2} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	if err := c.ITLB.Validate(); err != nil {
		return err
	}
	if err := c.DTLB.Validate(); err != nil {
		return err
	}
	if err := c.Branch.Validate(); err != nil {
		return err
	}
	if err := c.Prefetch.Validate(); err != nil {
		return err
	}
	if c.FSBBandwidth <= 0 {
		return fmt.Errorf("machine: FSB bandwidth %g", c.FSBBandwidth)
	}
	if err := c.Mem.Validate(); err != nil {
		return err
	}
	return c.Lat.Validate()
}

// PaxvilleSMP returns the paper's platform: 2 chips x 2 cores x 2 contexts
// at 2.8 GHz, 16 KiB L1D and trace cache per core, private 1 MiB L2 per
// core, one FSB per chip calibrated to 3.57 GB/s effective read bandwidth,
// and a dual-channel controller calibrated to the paper's 4.43 GB/s
// aggregate and 136.85 ns unloaded latency.
func PaxvilleSMP() Config {
	const freq = units.Frequency(2.8 * units.GHz)
	const line = 64
	return Config{
		Chips:           2,
		CoresPerChip:    2,
		ContextsPerCore: 2,
		Freq:            freq,
		TraceCache:      cache.Config{Name: "TC", Size: 16 * units.KiB, LineSize: line, Assoc: 8},
		L1D:             cache.Config{Name: "L1D", Size: 16 * units.KiB, LineSize: line, Assoc: 8},
		L2:              cache.Config{Name: "L2", Size: 1 * units.MiB, LineSize: line, Assoc: 8},
		ITLB:            tlb.Config{Name: "ITLB", Entries: 64, Assoc: 4, PageSize: 4096},
		DTLB:            tlb.Config{Name: "DTLB", Entries: 64, Assoc: 4, PageSize: 4096},
		Branch:          branch.Config{PHTBits: 12, HistoryBits: 10, BTBEntries: 2048},
		Prefetch:        prefetch.Config{Streams: 8, Degree: 2, LineSize: line, PageSize: 4096, MaxStride: 2},
		FSBBandwidth:    3.57 * units.GB,
		Mem: bus.MemConfig{
			Channels:         2,
			ChannelBandwidth: 4.43 * units.GB / 2,
			LatencyNs:        136.85,
			LineSize:         line,
			Freq:             freq,
		},
		Lat: cpu.DefaultLatencies(),
	}
}

// PrestoniaSMP returns the authors' earlier platform (their IOSCA'05 study,
// the paper's reference [3]): a two-way SMP of single-core Hyper-Threaded
// 3.0 GHz Xeons with 512 KiB L2 and a 533 MHz front-side bus. The paper
// argues HT efficiency improved on the newer box "most likely due to the
// improvements in memory bus speed"; comparing SMT speedups across the two
// presets reproduces that claim.
func PrestoniaSMP() Config {
	const freq = units.Frequency(3.0 * units.GHz)
	const line = 64
	return Config{
		Chips:           2,
		CoresPerChip:    1,
		ContextsPerCore: 2,
		Freq:            freq,
		TraceCache:      cache.Config{Name: "TC", Size: 16 * units.KiB, LineSize: line, Assoc: 8},
		L1D:             cache.Config{Name: "L1D", Size: 8 * units.KiB, LineSize: line, Assoc: 4},
		L2:              cache.Config{Name: "L2", Size: 512 * units.KiB, LineSize: line, Assoc: 8},
		ITLB:            tlb.Config{Name: "ITLB", Entries: 64, Assoc: 4, PageSize: 4096},
		DTLB:            tlb.Config{Name: "DTLB", Entries: 64, Assoc: 4, PageSize: 4096},
		Branch:          branch.Config{PHTBits: 12, HistoryBits: 10, BTBEntries: 2048},
		Prefetch:        prefetch.Config{Streams: 8, Degree: 2, LineSize: line, PageSize: 4096, MaxStride: 2},
		FSBBandwidth:    2.1 * units.GB, // 533 MHz FSB, protocol overhead folded in
		Mem: bus.MemConfig{
			Channels:         2,
			ChannelBandwidth: 2.6 * units.GB / 2,
			LatencyNs:        180,
			LineSize:         line,
			Freq:             freq,
		},
		Lat: cpu.DefaultLatencies(),
	}
}

// Chip is one physical package: cores sharing a front-side bus.
type Chip struct {
	ID    int
	FSB   *bus.FSB
	Cores []*cpu.Core
}

// Machine is the assembled platform.
type Machine struct {
	Cfg   Config
	Mem   *bus.Memory
	Chips []*Chip

	cores    []*cpu.Core
	contexts []*cpu.Context // flattened, HT enumeration order
	clock    int64
	sampler  *Sampler

	// Reusable scratch for runSolo (per-window context/thread sets), so
	// entering a solo window costs no allocation.
	soloXs  []*cpu.Context
	soloAcc []*cpu.Thread

	// relEpoch is the machine-wide barrier-release counter shared with
	// every core (cpu.Core.ShareReleaseEpoch). Solo windows snapshot it and
	// detect escaping releases with one load per step.
	relEpoch *uint64
}

// New builds a machine from cfg. All contexts start disabled; apply a
// configuration (internal/config) or call EnableAll.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{Cfg: cfg, Mem: bus.NewMemory(cfg.Mem)}
	for p := 0; p < cfg.Chips; p++ {
		fsb := bus.NewFSB(bus.FSBConfig{
			Name:      fmt.Sprintf("fsb%d", p),
			Bandwidth: cfg.FSBBandwidth,
			LineSize:  cfg.Mem.LineSize,
			Freq:      cfg.Freq,
		}, m.Mem)
		chip := &Chip{ID: p, FSB: fsb}
		for c := 0; c < cfg.CoresPerChip; c++ {
			id := fmt.Sprintf("P%dC%d", p, c)
			core := cpu.NewCore(id, cfg.Lat,
				cache.New(named(cfg.TraceCache, id)),
				cache.New(named(cfg.L1D, id)),
				cache.New(named(cfg.L2, id)),
				tlb.New(cfg.ITLB), tlb.New(cfg.DTLB),
				branch.New(cfg.Branch), prefetch.New(cfg.Prefetch),
				fsb, cfg.ContextsPerCore)
			if cfg.PrefetchGate != 0 {
				core.PrefetchGate = cfg.PrefetchGate
			}
			for t, x := range core.Contexts {
				x.Label = fmt.Sprintf("P%dC%dT%d", p, c, t)
				m.contexts = append(m.contexts, x)
				_ = t
			}
			chip.Cores = append(chip.Cores, core)
			m.cores = append(m.cores, core)
		}
		m.Chips = append(m.Chips, chip)
	}
	// Wire write-invalidate coherence: every core sees every other core.
	for _, a := range m.cores {
		for _, b := range m.cores {
			if a != b {
				a.Peers = append(a.Peers, b)
			}
		}
	}
	// One release-epoch counter for the whole machine, so a solo window can
	// detect any escaping barrier release with a single load.
	m.relEpoch = new(uint64)
	for _, c := range m.cores {
		c.ShareReleaseEpoch(m.relEpoch)
	}
	return m, nil
}

func named(c cache.Config, core string) cache.Config {
	c.Name = core + "." + c.Name
	return c
}

// Context returns the hardware context at (chip, core, thread).
func (m *Machine) Context(chip, core, thread int) (*cpu.Context, error) {
	if chip < 0 || chip >= m.Cfg.Chips || core < 0 || core >= m.Cfg.CoresPerChip ||
		thread < 0 || thread >= m.Cfg.ContextsPerCore {
		return nil, fmt.Errorf("machine: no context (%d,%d,%d)", chip, core, thread)
	}
	idx := (chip*m.Cfg.CoresPerChip+core)*m.Cfg.ContextsPerCore + thread
	return m.contexts[idx], nil
}

// Contexts returns all hardware contexts in HT enumeration order
// (chip-major, then core, then thread): A0..A7 on the paper's box.
func (m *Machine) Contexts() []*cpu.Context { return m.contexts }

// Cores returns all cores, chip-major.
func (m *Machine) Cores() []*cpu.Core { return m.cores }

// HTLabel returns the paper's HT-enabled label (A0..) for flat index i.
func HTLabel(i int) string { return fmt.Sprintf("A%d", i) }

// HTOffLabel returns the paper's HT-disabled label (B0..) for the i-th core.
func HTOffLabel(i int) string { return fmt.Sprintf("B%d", i) }

// DisableAll disables every context.
func (m *Machine) DisableAll() {
	for _, x := range m.contexts {
		x.Enabled = false
	}
}

// EnableAll enables every context.
func (m *Machine) EnableAll() {
	for _, x := range m.contexts {
		x.Enabled = true
	}
}

// Enabled returns the enabled contexts in enumeration order — the logical
// processors the OS scheduler may use.
func (m *Machine) Enabled() []*cpu.Context {
	var out []*cpu.Context
	for _, x := range m.contexts {
		if x.Enabled {
			out = append(out, x)
		}
	}
	return out
}

// Clock returns the current cycle.
func (m *Machine) Clock() int64 { return m.clock }

// ErrDeadlock is returned when no context can ever issue again but threads
// remain unfinished (a barrier that can never be released, e.g. a team
// thread that was never assigned to an enabled context).
var ErrDeadlock = errors.New("machine: deadlock, unfinished threads but no runnable context")

// ErrCycleLimit is returned when the run exceeds the cycle budget.
var ErrCycleLimit = errors.New("machine: cycle limit exceeded")

// Run advances the machine until every assigned thread has finished, or
// until limit cycles have elapsed (limit <= 0 means no limit). It returns
// the cycle count at completion.
//
// # Advancement contract
//
// The engine advances a single global clock. Each iteration offers one
// issue cycle to every core that has work (round-robin arbitration between
// the core's contexts happens inside cpu.Core.Step), then picks the next
// clock value:
//
//   - If no core issued, the clock jumps to the earliest cycle any context
//     reports it could issue again (cpu.Context.NextEvent) — the original
//     globally-stalled jump. By this point every context has already been
//     offered the cycle, so any call-time mutation (barrier recovery,
//     thread switches) has happened and the jump is safe.
//   - If some core issued and no sampler is attached, the engine
//     additionally consults cpu.Context.QuietWake for batched advancement:
//     when every context with unfinished work is either inert or purely
//     stalled until a known future cycle, the clock jumps straight to the
//     earliest such wake-up. QuietWake only reports a window when every
//     skipped Step offer would be a read-only no-op, so the jump cannot
//     change observable state; any context whose step path would mutate
//     state (switchTo and barrier recovery stamp readyAt/sliceEnd from the
//     call-time cycle) forces cycle-by-cycle stepping instead.
//   - When exactly one core has steppable work — every cycle of a serial
//     baseline, and every memory-stall window that leaves one core
//     runnable — the engine enters a solo window (runSolo): only that core
//     is stepped until the earliest cycle an off-core context could wake,
//     with off-core threads' cycle counters charged in one segment. Solo
//     windows of at most two contexts run in the fused core-level loops
//     cpu.Core.StepWindow / StepWindow2, which batch the per-cycle
//     accounting; a barrier release is detected through the machine-wide
//     release epoch (one counter shared by all cores) and completes the
//     cycle exactly as the lockstep loop would before handing back.
//
// Per-thread cycle counters accrue by the advancement delta, so a jumped
// window charges exactly the cycles stepping through it would have. With a
// sampler attached the quiet jump is disabled (the globally-stalled jump
// remains) so sampling windows observe the same clock trajectory as the
// reference engine. RunReference runs the engine with all new-style jumps
// disabled; TestEngineEquivalence asserts both paths produce byte-identical
// counters across serial, HT, cross-core, pair, and oversubscribed shapes.
func (m *Machine) Run(limit int64) (int64, error) {
	return m.run(limit, false)
}

// RunReference is Run with batched (quiet-window) advancement disabled:
// the engine's original control flow, stepping every issue cycle and
// jumping only across globally-stalled windows. It exists as the
// equivalence baseline for the optimized engine and for A/B benchmarks.
func (m *Machine) RunReference(limit int64) (int64, error) {
	return m.run(limit, true)
}

func (m *Machine) run(limit int64, reference bool) (int64, error) {
	obsRuns.Inc()
	t := obs.StartTimer()
	startClock := m.clock
	defer func() {
		advanced := m.clock - startClock
		obsCycles.Add(uint64(advanced))
		obsCyclesPerWs.Set(t.Rate(advanced))
	}()
	// Cores and contexts with no assigned work cannot issue and are never
	// mutated by an offer; drop them from the hot loop up front. Placement
	// happens before Run, so the active sets are fixed for the whole run.
	active := m.activeContexts()
	cores := m.activeCores()
	quiet := !reference && m.sampler == nil
	// When classify keeps finding several busy cores, re-probing for a
	// jump or solo window every cycle is pure overhead: back off for a few
	// cycles. classify only gates optimizations that are equivalence-
	// preserving either way, so the throttle cannot change results — at
	// worst a window is entered a few cycles late.
	throttle := 0
	for {
		if contextsDone(active) {
			return m.clock, nil
		}
		if limit > 0 && m.clock >= limit {
			return m.clock, ErrCycleLimit
		}
		issued := false
		for _, c := range cores {
			if c.Step(m.clock) {
				issued = true
			}
		}
		next := m.clock + 1
		var solo *cpu.Core
		if !issued {
			throttle = 0 // gone quiet: probe again next cycle
			ev := m.nextEvent(active, m.clock)
			if ev < 0 {
				if contextsDone(active) {
					return m.clock, nil
				}
				return m.clock, ErrDeadlock
			}
			if ev > next {
				next = ev
			}
		} else if quiet {
			if throttle > 0 {
				throttle--
			} else {
				ready, wake, soloCore := classify(active, next)
				switch {
				case ready == 0:
					// Batched advancement: nobody can issue before wake,
					// and the reference engine would only reach the limit
					// check at next before jumping itself, so match that
					// exactly.
					if wake > next && (limit <= 0 || next < limit) {
						next = wake
					}
				case soloCore != nil:
					solo = soloCore
				default:
					// Multiple cores busy: lockstep is the right mode;
					// don't re-probe for a window for a few cycles.
					throttle = 7
				}
			}
		}
		m.accrue(active, next-m.clock)
		m.clock = next
		if m.sampler != nil {
			m.sampler.tick(m, m.clock)
		}
		if solo != nil {
			m.clock = m.runSolo(solo, active, cores, m.clock, limit)
		}
	}
}

// classify scans the active contexts' QuietWake state for cycle next.
// ready counts the contexts that must be offered cycle next; wake is the
// earliest future wake-up among the purely-stalled rest (-1 when none);
// soloCore is the single core owning every must-offer context, or nil
// when they span cores.
func classify(active []*cpu.Context, next int64) (ready int, wake int64, soloCore *cpu.Core) {
	wake = -1
	for _, x := range active {
		w := x.QuietWake(next)
		switch {
		case w < 0:
		case w == 0:
			ready++
			if ready == 1 {
				soloCore = x.Core
			} else if x.Core != soloCore {
				soloCore = nil
			}
		default:
			if wake < 0 || w < wake {
				wake = w
			}
		}
	}
	return ready, wake, soloCore
}

// runSolo drives core cx alone from cycle `from` while it is the only core
// whose contexts can issue — the solo window. Every other active context
// has been classified inert or purely stalled until a known cycle (bound),
// so the reference engine's per-cycle offers to those cores are provably
// read-only no-ops and can be skipped wholesale; only cx is stepped, at
// exactly the cycles the reference engine would step it. The window ends
// (returning the clock for the main loop to resume at) when any off-core
// context wakes, the work or cycle budget runs out, or a barrier release
// escapes the core — the single cross-context side effect a step can have.
// On a release the current cycle is completed exactly as the reference
// engine would (the remaining cores in order get their same-cycle offer)
// before handing back.
//
// Solo windows dominate real studies: serial baselines and single-core HT
// cells spend their whole run here, and multi-core cells enter whenever
// memory stalls leave one core runnable.
func (m *Machine) runSolo(cx *cpu.Core, active []*cpu.Context, cores []*cpu.Core, from, limit int64) (now int64) {
	xs := m.soloXs[:0]
	otherAcc := m.soloAcc[:0]
	bound := int64(-1)
	othersDone := true
	for _, o := range active {
		if o.Core == cx {
			xs = append(xs, o)
			continue
		}
		if !o.AllDone() {
			othersDone = false
			if t := o.Mounted(); t != nil && t.State != cpu.ThreadDone {
				otherAcc = append(otherAcc, t)
			}
		}
		if w := o.QuietWake(from); w > 0 && (bound < 0 || w < bound) {
			bound = w
		}
	}
	m.soloXs, m.soloAcc = xs, otherAcc

	// Threads stalled on other contexts still accrue cycles every cycle of
	// the window, and the accruing set is constant while they are not
	// stepped — charge them in one shot instead of per cycle. The charge
	// must stop at any cycle where other cores ARE stepped (the release
	// path): from there the reference engine charges post-step states, so
	// settle against the entry set first and let accrue handle the rest.
	settle := func(upto int64) {
		if d := upto - from; d > 0 {
			for _, t := range otherAcc {
				t.Counters.Add(counters.Cycles, uint64(d))
			}
		}
		from = upto
	}
	defer func() { settle(now) }()

	// A barrier release can only change off-core state when some team
	// member lives off-core; a core whose teams are entirely local never
	// needs the release check (serial and single-core cells). The check
	// itself is one load of the machine-wide release epoch: during the
	// window only cx steps, so any epoch change is a release by a team
	// with a thread on cx.
	self := coreSelfContained(xs)
	var relBase uint64
	if !self {
		relBase = *m.relEpoch
	}

	// finishRelease completes a release cycle the way the reference engine
	// would: a release at cycle `at` may have made threads on other cores
	// runnable, and those cores — the ones after cx in step order — still
	// get their offer at this cycle before the window closes. The off-core
	// charge settles through the last fully-quiet cycle first: stepping the
	// later cores can finish or remount their threads, and the final
	// advancement must be charged to post-step states.
	finishRelease := func(at int64, issued bool) int64 {
		settle(at)
		after := false
		for _, c := range cores {
			if c == cx {
				after = true
				continue
			}
			if after && c.Step(at) {
				issued = true
			}
		}
		nxt := at + 1
		if !issued {
			ev := m.nextEvent(active, at)
			if ev < 0 {
				return at // full loop resolves done/deadlock at `at`
			}
			if ev > nxt {
				nxt = ev
			}
		}
		m.accrue(active, nxt-at)
		from = nxt // the deferred off-core settle must not re-charge
		return nxt
	}

	now = from

	// One- and two-context windows (serial cells, every HT-off core, and
	// HT-on cores with both contexts active — together, all windows in
	// practice): delegate to the fused core-level loop, which batches the
	// per-cycle accounting. It returns either at the window close (bound
	// or limit reached — the loop below exits immediately), on an escaping
	// barrier release (completed here exactly as the generic path would),
	// or when the core went inert (done or deadlocked — the loop below
	// resolves it). Off-core accrual is unaffected: the deferred settle
	// above charges the whole [from, now) span either way.
	if n := len(xs); n == 1 || n == 2 {
		var issued, released bool
		if n == 1 {
			now, issued, released = cx.StepWindow(xs[0], now, bound, limit, !self)
		} else {
			now, issued, released = cx.StepWindow2(xs[0], xs[1], now, bound, limit, !self)
		}
		if released {
			now = finishRelease(now, issued)
			return now
		}
	}

	for {
		if bound >= 0 && now >= bound {
			return now
		}
		if othersDone && contextsDone(xs) {
			return now
		}
		if limit > 0 && now >= limit {
			return now
		}
		issued := cx.Step(now)
		if !self && *m.relEpoch != relBase {
			now = finishRelease(now, issued)
			return now
		}
		nxt := now + 1
		if !issued {
			ev := int64(-1)
			for _, x := range xs {
				if w := x.NextEvent(now); w >= 0 && (ev < 0 || w < ev) {
					ev = w
				}
			}
			if bound >= 0 && (ev < 0 || bound < ev) {
				ev = bound
			}
			if ev < 0 {
				return now // all inert: the full loop resolves done/deadlock
			}
			if ev > nxt {
				nxt = ev
			}
		} else if limit <= 0 || nxt < limit {
			if w := quietUntil(xs, nxt); w > nxt {
				if bound >= 0 && bound < w {
					w = bound
				}
				nxt = w
			}
		}
		m.accrue(xs, nxt-now)
		now = nxt
	}
}

// coreSelfContained reports whether every team with a thread on the given
// contexts has all of its members there.
func coreSelfContained(xs []*cpu.Context) bool {
	for _, x := range xs {
		for _, t := range x.Threads() {
			n := 0
			for _, y := range xs {
				for _, u := range y.Threads() {
					if u.Team == t.Team {
						n++
					}
				}
			}
			if n != t.Team.Size {
				return false
			}
		}
	}
	return true
}

// activeContexts returns the enabled contexts that have assigned threads.
func (m *Machine) activeContexts() []*cpu.Context {
	var out []*cpu.Context
	for _, x := range m.contexts {
		if x.Enabled && x.QueueLen() > 0 {
			out = append(out, x)
		}
	}
	return out
}

// activeCores returns the cores with at least one active context.
func (m *Machine) activeCores() []*cpu.Core {
	var out []*cpu.Core
	for _, c := range m.cores {
		for _, x := range c.Contexts {
			if x.Enabled && x.QueueLen() > 0 {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

// contextsDone reports whether every active context has finished its work.
func contextsDone(active []*cpu.Context) bool {
	for _, x := range active {
		if !x.AllDone() {
			return false
		}
	}
	return true
}

// quietUntil returns the cycle the clock may jump to from next, or next
// itself when any context needs a cycle-by-cycle offer (see the
// advancement contract on Run and cpu.Context.QuietWake).
func quietUntil(active []*cpu.Context, next int64) int64 {
	best := next
	for _, x := range active {
		w := x.QuietWake(next)
		if w < 0 {
			continue // inert: imposes no wake-up
		}
		if w <= next {
			return next // must be offered the very next cycle
		}
		if best == next || w < best {
			best = w
		}
	}
	return best
}

// nextEvent returns the earliest cycle after now any active context could
// issue, or -1.
func (m *Machine) nextEvent(active []*cpu.Context, now int64) int64 {
	best := int64(-1)
	for _, x := range active {
		ev := x.NextEvent(now)
		if ev < 0 {
			continue
		}
		if best < 0 || ev < best {
			best = ev
		}
	}
	if best >= 0 && best <= now {
		best = now + 1
	}
	return best
}

// accrue charges d cycles to the mounted thread of every context that still
// has unfinished work — this is the PMU "cycles" event per thread.
func (m *Machine) accrue(active []*cpu.Context, d int64) {
	if d <= 0 {
		return
	}
	// A context with all threads done necessarily has a Done (or nil)
	// mounted thread, so the mounted-state check alone suffices.
	for _, x := range active {
		if t := x.Mounted(); t != nil && t.State != cpu.ThreadDone {
			t.Counters.Add(counters.Cycles, uint64(d))
		}
	}
}

// Reset empties the machine between back-to-back phases of one experiment:
// caches, TLBs, predictors, prefetchers, buses, memory, clock, and run
// queues are cleared. Enabled flags, the cores' round-robin arbitration
// pointers, and the caches' internal replacement clocks are deliberately
// preserved — phase N+1 of an experiment continues on the "same" warm
// machine (see internal/lmbench). For power-on recycling use ResetHard.
func (m *Machine) Reset() {
	m.clock = 0
	m.Mem.Reset()
	for _, ch := range m.Chips {
		ch.FSB.Reset()
	}
	for _, c := range m.cores {
		c.TC.Flush()
		c.L1D.Flush()
		c.L2.Flush()
		c.ITLB.Flush()
		c.DTLB.Flush()
		c.BP.Reset()
		c.PF.Reset()
		for _, x := range c.Contexts {
			x.Clear()
		}
	}
}

// ResetHard restores true power-on state: everything Reset clears plus the
// cores' full power-on reset (replacement clocks, policy RNGs, arbitration
// pointers, Enabled flags — see cpu.Core.Reset) and any attached sampler.
// A hard-reset machine is bit-for-bit indistinguishable from one freshly
// built by New with the same Config; Pool relies on this to recycle
// machines across cells without perturbing determinism.
func (m *Machine) ResetHard() {
	m.clock = 0
	m.sampler = nil
	m.Mem.Reset()
	for _, ch := range m.Chips {
		ch.FSB.Reset()
	}
	for _, c := range m.cores {
		c.Reset()
	}
}
