// Package config defines the eight hardware configurations of the paper's
// Table 1. A configuration names the Hyper-Threading state, the number of
// application threads, and the number of physical chips in use, and lists
// exactly which hardware contexts the kernel's maxcpus-style masking leaves
// enabled, using the paper's A0..A7 (HT on) and B0..B3 (HT off) labels.
package config

import (
	"fmt"

	"xeonomp/internal/cpu"
	"xeonomp/internal/machine"
)

// Arch is the architectural class a configuration exercises.
type Arch string

// Architectural classes from Table 1.
const (
	Serial Arch = "Serial"
	SMT    Arch = "SMT"
	CMP    Arch = "CMP"
	CMT    Arch = "CMT"
	SMP    Arch = "SMP"
	SMTSMP Arch = "SMT-based SMP"
	CMPSMP Arch = "CMP-based SMP"
	CMTSMP Arch = "CMT-based SMP"
)

// CtxID addresses one hardware context by topology coordinates.
type CtxID struct {
	Chip, Core, Thread int
}

// Configuration is one row of Table 1.
type Configuration struct {
	Name     string  // e.g. "HT on -4-1"
	Arch     Arch    // architecture the row represents
	HT       bool    // Hyper-Threading enabled
	Threads  int     // application threads used in single-program runs
	Chips    int     // physical chips in use
	Contexts []CtxID // enabled hardware contexts
	Labels   []string
}

// String returns the Table-1 terminology.
func (c Configuration) String() string { return c.Name }

// Apply masks the machine so that exactly this configuration's contexts are
// enabled (the kernel maxcpus= emulation from the paper's methodology).
func (c Configuration) Apply(m *machine.Machine) ([]*cpu.Context, error) {
	m.DisableAll()
	out := make([]*cpu.Context, 0, len(c.Contexts))
	for _, id := range c.Contexts {
		x, err := m.Context(id.Chip, id.Core, id.Thread)
		if err != nil {
			return nil, fmt.Errorf("config %s: %w", c.Name, err)
		}
		x.Enabled = true
		out = append(out, x)
	}
	return out, nil
}

func ids(list ...[3]int) []CtxID {
	out := make([]CtxID, len(list))
	for i, v := range list {
		out[i] = CtxID{Chip: v[0], Core: v[1], Thread: v[2]}
	}
	return out
}

// Table1 returns the paper's eight configurations, in Table-1 order.
func Table1() []Configuration {
	return []Configuration{
		{
			Name: "Serial", Arch: Serial, HT: false, Threads: 1, Chips: 1,
			Contexts: ids([3]int{0, 0, 0}),
			Labels:   []string{"B0"},
		},
		{
			Name: "HT on -2-1", Arch: SMT, HT: true, Threads: 2, Chips: 1,
			Contexts: ids([3]int{0, 0, 0}, [3]int{0, 0, 1}),
			Labels:   []string{"A0", "A1"},
		},
		{
			Name: "HT off -2-1", Arch: CMP, HT: false, Threads: 2, Chips: 1,
			Contexts: ids([3]int{0, 0, 0}, [3]int{0, 1, 0}),
			Labels:   []string{"B0", "B1"},
		},
		{
			Name: "HT on -4-1", Arch: CMT, HT: true, Threads: 4, Chips: 1,
			Contexts: ids([3]int{0, 0, 0}, [3]int{0, 0, 1}, [3]int{0, 1, 0}, [3]int{0, 1, 1}),
			Labels:   []string{"A0", "A1", "A2", "A3"},
		},
		{
			Name: "HT off -2-2", Arch: SMP, HT: false, Threads: 2, Chips: 2,
			Contexts: ids([3]int{0, 0, 0}, [3]int{1, 0, 0}),
			Labels:   []string{"B0", "B2"},
		},
		{
			Name: "HT on -4-2", Arch: SMTSMP, HT: true, Threads: 4, Chips: 2,
			Contexts: ids([3]int{0, 0, 0}, [3]int{0, 0, 1}, [3]int{1, 0, 0}, [3]int{1, 0, 1}),
			Labels:   []string{"A0", "A1", "A4", "A5"},
		},
		{
			Name: "HT off -4-2", Arch: CMPSMP, HT: false, Threads: 4, Chips: 2,
			Contexts: ids([3]int{0, 0, 0}, [3]int{0, 1, 0}, [3]int{1, 0, 0}, [3]int{1, 1, 0}),
			Labels:   []string{"B0", "B1", "B2", "B3"},
		},
		{
			Name: "HT on -8-2", Arch: CMTSMP, HT: true, Threads: 8, Chips: 2,
			Contexts: ids(
				[3]int{0, 0, 0}, [3]int{0, 0, 1}, [3]int{0, 1, 0}, [3]int{0, 1, 1},
				[3]int{1, 0, 0}, [3]int{1, 0, 1}, [3]int{1, 1, 0}, [3]int{1, 1, 1}),
			Labels: []string{"A0", "A1", "A2", "A3", "A4", "A5", "A6", "A7"},
		},
	}
}

// ByName returns the configuration with the given Table-1 name.
func ByName(name string) (Configuration, error) {
	for _, c := range Table1() {
		if c.Name == name {
			return c, nil
		}
	}
	return Configuration{}, fmt.Errorf("config: unknown configuration %q", name)
}

// ByArch returns the configuration for the given architecture class.
func ByArch(a Arch) (Configuration, error) {
	for _, c := range Table1() {
		if c.Arch == a {
			return c, nil
		}
	}
	return Configuration{}, fmt.Errorf("config: unknown architecture %q", a)
}

// Multithreaded returns the seven non-serial configurations, the set
// compared in Table 2 and Figures 2-5.
func Multithreaded() []Configuration {
	var out []Configuration
	for _, c := range Table1() {
		if c.Arch != Serial {
			out = append(out, c)
		}
	}
	return out
}

// Groups returns the paper's Section-4 comparison groups: group 1 is the
// SMT-vs-serial pair, group 2 compares HT on/off on one chip, group 3 on
// two chips at half usage, and group 4 at full machine load.
func Groups() map[int][]Arch {
	return map[int][]Arch{
		1: {Serial, SMT},
		2: {CMP, CMT},
		3: {SMP, SMTSMP},
		4: {CMPSMP, CMTSMP},
	}
}
