package config

import (
	"testing"

	"xeonomp/internal/machine"
)

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 8 {
		t.Fatalf("Table 1 has %d rows, want 8", len(rows))
	}
	type row struct {
		name    string
		arch    Arch
		ht      bool
		threads int
		chips   int
		ctxs    int
	}
	want := []row{
		{"Serial", Serial, false, 1, 1, 1},
		{"HT on -2-1", SMT, true, 2, 1, 2},
		{"HT off -2-1", CMP, false, 2, 1, 2},
		{"HT on -4-1", CMT, true, 4, 1, 4},
		{"HT off -2-2", SMP, false, 2, 2, 2},
		{"HT on -4-2", SMTSMP, true, 4, 2, 4},
		{"HT off -4-2", CMPSMP, false, 4, 2, 4},
		{"HT on -8-2", CMTSMP, true, 8, 2, 8},
	}
	for i, w := range want {
		g := rows[i]
		if g.Name != w.name || g.Arch != w.arch || g.HT != w.ht ||
			g.Threads != w.threads || g.Chips != w.chips || len(g.Contexts) != w.ctxs {
			t.Errorf("row %d = %+v, want %+v", i, g, w)
		}
		if len(g.Labels) != len(g.Contexts) {
			t.Errorf("row %d labels/contexts mismatch", i)
		}
	}
}

func TestHTOffRowsUseOnlyThreadZero(t *testing.T) {
	for _, c := range Table1() {
		if c.HT {
			continue
		}
		for _, id := range c.Contexts {
			if id.Thread != 0 {
				t.Errorf("%s uses context thread %d with HT off", c.Name, id.Thread)
			}
		}
	}
}

func TestHTOnRowsPairContexts(t *testing.T) {
	// Every HT-on configuration enables both hardware threads of each core
	// it touches.
	for _, c := range Table1() {
		if !c.HT {
			continue
		}
		type core struct{ chip, core int }
		threads := map[core]int{}
		for _, id := range c.Contexts {
			threads[core{id.Chip, id.Core}]++
		}
		for k, n := range threads {
			if n != 2 {
				t.Errorf("%s enables %d contexts on chip %d core %d, want 2", c.Name, n, k.chip, k.core)
			}
		}
	}
}

func TestPaperLabels(t *testing.T) {
	cmt, err := ByArch(CMT)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"A0", "A1", "A2", "A3"}
	for i, l := range cmt.Labels {
		if l != want[i] {
			t.Fatalf("CMT labels %v, want %v", cmt.Labels, want)
		}
	}
	smtSMP, _ := ByArch(SMTSMP)
	want = []string{"A0", "A1", "A4", "A5"}
	for i, l := range smtSMP.Labels {
		if l != want[i] {
			t.Fatalf("SMT-SMP labels %v, want %v", smtSMP.Labels, want)
		}
	}
}

func TestApply(t *testing.T) {
	m, err := machine.New(machine.PaxvilleSMP())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range Table1() {
		ctxs, err := c.Apply(m)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if len(ctxs) != len(c.Contexts) {
			t.Fatalf("%s enabled %d contexts, want %d", c.Name, len(ctxs), len(c.Contexts))
		}
		if got := len(m.Enabled()); got != len(c.Contexts) {
			t.Fatalf("%s machine has %d enabled, want %d", c.Name, got, len(c.Contexts))
		}
	}
}

func TestApplyRejectsBadTopology(t *testing.T) {
	m, _ := machine.New(machine.PaxvilleSMP())
	bad := Configuration{Name: "bogus", Contexts: []CtxID{{Chip: 9}}}
	if _, err := bad.Apply(m); err == nil {
		t.Fatal("bogus context accepted")
	}
}

func TestByNameByArch(t *testing.T) {
	if _, err := ByName("HT on -8-2"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
	if _, err := ByArch(CMPSMP); err != nil {
		t.Error(err)
	}
	if _, err := ByArch(Arch("nope")); err == nil {
		t.Error("unknown arch accepted")
	}
}

func TestMultithreaded(t *testing.T) {
	ms := Multithreaded()
	if len(ms) != 7 {
		t.Fatalf("%d multithreaded configs, want 7", len(ms))
	}
	for _, c := range ms {
		if c.Arch == Serial {
			t.Fatal("serial included in multithreaded set")
		}
	}
}

func TestGroups(t *testing.T) {
	g := Groups()
	if len(g) != 4 {
		t.Fatalf("%d groups, want 4", len(g))
	}
	// Group 2 compares HT on/off on one chip; group 4 at full load.
	if g[2][0] != CMP || g[2][1] != CMT {
		t.Errorf("group 2 = %v", g[2])
	}
	if g[4][0] != CMPSMP || g[4][1] != CMTSMP {
		t.Errorf("group 4 = %v", g[4])
	}
}
