// Package counters implements the hardware-performance-counter layer of the
// simulator. Every modeled structure (caches, TLBs, predictor, bus, pipeline)
// increments events in a Set, playing the role VTune and the Xeon's
// performance-monitoring unit play in the paper. Derived metrics — the nine
// quantities plotted in Figures 2 and 4 — are computed from a Set by Derive.
package counters

import (
	"fmt"
	"strings"

	"xeonomp/internal/stats"
)

// Event identifies one countable hardware event.
type Event int

// The counted events. The set mirrors the events the paper collects with
// VTune on the Paxville PMU, plus the byte counters used for bandwidth
// calibration.
const (
	Cycles       Event = iota // core clock cycles during which the context was active
	Instructions              // instructions retired
	StallCycles               // cycles the context spent stalled (memory, flush, fetch)

	L1DAccess // L1 data cache lookups
	L1DMiss   // L1 data cache misses
	L2Access  // unified L2 lookups (demand)
	L2Miss    // unified L2 demand misses
	TCAccess  // execution trace cache fetch lookups
	TCMiss    // execution trace cache misses (decode pipeline engaged)

	ITLBAccess
	ITLBMiss
	DTLBAccess // load+store address translations
	DTLBMiss   // load+store translation misses

	BranchRetired
	BranchMispredicted

	BusDemandRead // FSB transactions: demand line reads
	BusRFO        // FSB transactions: read-for-ownership (store misses)
	BusWriteback  // FSB transactions: dirty evictions
	BusPrefetch   // FSB transactions: hardware prefetches
	BusInvalidate // coherence invalidations sent to remote cores

	PrefetchIssued // prefetch requests generated (some are dropped at the bus)
	PrefetchUseful // prefetched lines later hit by demand accesses

	MemReadBytes  // bytes read from DRAM
	MemWriteBytes // bytes written to DRAM

	BarrierCycles // cycles spent waiting at OpenMP barrier points

	numEvents
)

var eventNames = [numEvents]string{
	"cycles", "instructions", "stall_cycles",
	"l1d_access", "l1d_miss", "l2_access", "l2_miss", "tc_access", "tc_miss",
	"itlb_access", "itlb_miss", "dtlb_access", "dtlb_miss",
	"branch_retired", "branch_mispredicted",
	"bus_demand_read", "bus_rfo", "bus_writeback", "bus_prefetch", "bus_invalidate",
	"prefetch_issued", "prefetch_useful",
	"mem_read_bytes", "mem_write_bytes",
	"barrier_cycles",
}

// NumEvents is the number of distinct events.
const NumEvents = int(numEvents)

// String returns the stable lower_snake name of the event.
func (e Event) String() string {
	if e < 0 || e >= numEvents {
		return fmt.Sprintf("event(%d)", int(e))
	}
	return eventNames[e]
}

// Events returns all events in declaration order.
func Events() []Event {
	es := make([]Event, numEvents)
	for i := range es {
		es[i] = Event(i)
	}
	return es
}

// Set is one counter bank: a fixed array of event counts. The zero value is
// ready to use. Sets are not safe for concurrent mutation; the simulator
// gives each hardware context its own Set and merges after a run.
type Set struct {
	c [numEvents]uint64
}

// Inc increments event e by one.
func (s *Set) Inc(e Event) { s.c[e]++ }

// Add increments event e by n.
func (s *Set) Add(e Event, n uint64) { s.c[e] += n }

// Get returns the count of event e.
func (s *Set) Get(e Event) uint64 { return s.c[e] }

// Reset zeroes every counter.
func (s *Set) Reset() { s.c = [numEvents]uint64{} }

// Merge adds every counter of o into s.
func (s *Set) Merge(o *Set) {
	for i := range s.c {
		s.c[i] += o.c[i]
	}
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	out := &Set{}
	out.c = s.c
	return out
}

// Delta returns s - base per event. Counts are monotonic, so a negative
// delta indicates misuse; Delta panics in that case.
func (s *Set) Delta(base *Set) *Set {
	out := &Set{}
	for i := range s.c {
		if s.c[i] < base.c[i] {
			panic(fmt.Sprintf("counters: negative delta for %s", Event(i)))
		}
		out.c[i] = s.c[i] - base.c[i]
	}
	return out
}

// String renders the non-zero counters, one per line, for debugging.
func (s *Set) String() string {
	var b strings.Builder
	for i, v := range s.c {
		if v != 0 {
			fmt.Fprintf(&b, "%-22s %d\n", Event(i), v)
		}
	}
	return b.String()
}

// Metrics holds the derived quantities reported in the paper's Figure 2 and
// Figure 4 panels for one run (or one program of a multi-program run).
type Metrics struct {
	L1MissRate     float64 // L1D misses / L1D accesses
	L2MissRate     float64 // L2 misses / L2 accesses
	TCMissRate     float64 // trace cache misses / fetches
	ITLBMissRate   float64 // ITLB misses / ITLB accesses
	DTLBMisses     float64 // DTLB load+store misses (absolute; normalized to serial by the caller)
	StalledPct     float64 // 100 * stall cycles / cycles
	BranchPredRate float64 // 100 * (1 - mispredicts / branches)
	PrefetchBusPct float64 // 100 * prefetch bus accesses / all bus accesses
	CPI            float64 // cycles / instructions retired
}

// Derive computes the Figure-2 metrics from a counter set.
func Derive(s *Set) Metrics {
	busAll := s.Get(BusDemandRead) + s.Get(BusRFO) + s.Get(BusWriteback) + s.Get(BusPrefetch)
	return Metrics{
		L1MissRate:     stats.Ratio(float64(s.Get(L1DMiss)), float64(s.Get(L1DAccess))),
		L2MissRate:     stats.Ratio(float64(s.Get(L2Miss)), float64(s.Get(L2Access))),
		TCMissRate:     stats.Ratio(float64(s.Get(TCMiss)), float64(s.Get(TCAccess))),
		ITLBMissRate:   stats.Ratio(float64(s.Get(ITLBMiss)), float64(s.Get(ITLBAccess))),
		DTLBMisses:     float64(s.Get(DTLBMiss)),
		StalledPct:     100 * stats.Ratio(float64(s.Get(StallCycles)), float64(s.Get(Cycles))),
		BranchPredRate: 100 * (1 - stats.Ratio(float64(s.Get(BranchMispredicted)), float64(s.Get(BranchRetired)))),
		PrefetchBusPct: 100 * stats.Ratio(float64(s.Get(BusPrefetch)), float64(busAll)),
		CPI:            stats.Ratio(float64(s.Get(Cycles)), float64(s.Get(Instructions))),
	}
}

// BusTransactions returns the total FSB transaction count in s.
func BusTransactions(s *Set) uint64 {
	return s.Get(BusDemandRead) + s.Get(BusRFO) + s.Get(BusWriteback) + s.Get(BusPrefetch)
}
