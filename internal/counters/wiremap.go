package counters

import "fmt"

// Name-keyed map form of a Set — the serialization the run cache, the
// study journals, and the HTTP wire (api.CellProgram.Counters) all
// share. Names, not ordinals, so a payload written before an event was
// added (or reordered) still decodes, and one written by foreign code
// fails loudly instead of silently misattributing counts.

// eventByName maps counter-event names back to events for decoding.
var eventByName = func() map[string]Event {
	m := map[string]Event{}
	for _, e := range Events() {
		m[e.String()] = e
	}
	return m
}()

// NonzeroMap flattens the set to its non-zero events by name; a set with
// no counts returns nil, which serializers omit.
func (s *Set) NonzeroMap() map[string]uint64 {
	var m map[string]uint64
	for _, e := range Events() {
		if v := s.Get(e); v != 0 {
			if m == nil {
				m = map[string]uint64{}
			}
			m[e.String()] = v
		}
	}
	return m
}

// SetFromMap rebuilds a counter set from its name-keyed form; unknown
// event names mean the payload was written by different code and must
// not be trusted.
func SetFromMap(m map[string]uint64) (Set, error) {
	var s Set
	for name, v := range m {
		e, ok := eventByName[name]
		if !ok {
			return Set{}, fmt.Errorf("counters: unknown counter event %q in encoded set", name)
		}
		s.Add(e, v)
	}
	return s, nil
}
