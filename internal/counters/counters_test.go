package counters

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestIncAddGet(t *testing.T) {
	var s Set
	s.Inc(L1DMiss)
	s.Add(L1DMiss, 4)
	if s.Get(L1DMiss) != 5 {
		t.Errorf("got %d, want 5", s.Get(L1DMiss))
	}
	if s.Get(L2Miss) != 0 {
		t.Error("untouched counter must be zero")
	}
}

func TestReset(t *testing.T) {
	var s Set
	for _, e := range Events() {
		s.Add(e, 7)
	}
	s.Reset()
	for _, e := range Events() {
		if s.Get(e) != 0 {
			t.Fatalf("%v not reset", e)
		}
	}
}

func TestMergeClone(t *testing.T) {
	var a, b Set
	a.Add(Cycles, 10)
	b.Add(Cycles, 5)
	b.Add(Instructions, 2)
	c := a.Clone()
	c.Merge(&b)
	if c.Get(Cycles) != 15 || c.Get(Instructions) != 2 {
		t.Errorf("merge wrong: %v", c)
	}
	if a.Get(Cycles) != 10 {
		t.Error("clone must not alias the source")
	}
}

func TestDelta(t *testing.T) {
	var base, now Set
	base.Add(Cycles, 10)
	now.Add(Cycles, 25)
	d := now.Delta(&base)
	if d.Get(Cycles) != 15 {
		t.Errorf("delta = %d", d.Get(Cycles))
	}
}

func TestDeltaPanicsOnRegression(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var base, now Set
	base.Add(Cycles, 10)
	now.Delta(&base)
}

func TestEventNames(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Events() {
		n := e.String()
		if n == "" || strings.HasPrefix(n, "event(") {
			t.Errorf("event %d has no name", e)
		}
		if seen[n] {
			t.Errorf("duplicate event name %q", n)
		}
		seen[n] = true
	}
	if Event(-1).String() != "event(-1)" {
		t.Error("out-of-range name wrong")
	}
}

func TestDerive(t *testing.T) {
	var s Set
	s.Add(Cycles, 1000)
	s.Add(Instructions, 500)
	s.Add(StallCycles, 250)
	s.Add(L1DAccess, 100)
	s.Add(L1DMiss, 10)
	s.Add(L2Access, 10)
	s.Add(L2Miss, 5)
	s.Add(TCAccess, 50)
	s.Add(TCMiss, 5)
	s.Add(ITLBAccess, 50)
	s.Add(ITLBMiss, 1)
	s.Add(DTLBAccess, 100)
	s.Add(DTLBMiss, 3)
	s.Add(BranchRetired, 40)
	s.Add(BranchMispredicted, 4)
	s.Add(BusDemandRead, 6)
	s.Add(BusRFO, 2)
	s.Add(BusWriteback, 1)
	s.Add(BusPrefetch, 1)

	m := Derive(&s)
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"L1", m.L1MissRate, 0.1},
		{"L2", m.L2MissRate, 0.5},
		{"TC", m.TCMissRate, 0.1},
		{"ITLB", m.ITLBMissRate, 0.02},
		{"DTLB", m.DTLBMisses, 3},
		{"stall", m.StalledPct, 25},
		{"bp", m.BranchPredRate, 90},
		{"pf", m.PrefetchBusPct, 10},
		{"cpi", m.CPI, 2},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	if BusTransactions(&s) != 10 {
		t.Errorf("bus transactions = %d", BusTransactions(&s))
	}
}

func TestDeriveEmptySetIsFinite(t *testing.T) {
	var s Set
	m := Derive(&s)
	// All-zero counters must not produce NaN or Inf anywhere.
	for _, v := range []float64{m.L1MissRate, m.L2MissRate, m.TCMissRate,
		m.ITLBMissRate, m.DTLBMisses, m.StalledPct, m.PrefetchBusPct, m.CPI} {
		if v != 0 {
			t.Errorf("zero set yields non-zero metric %v", v)
		}
	}
	if m.BranchPredRate != 100 {
		t.Errorf("zero-branch prediction rate = %v, want 100", m.BranchPredRate)
	}
}

func TestMergeCommutativeProperty(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		var a, b Set
		for i, v := range xs {
			a.Add(Event(i%NumEvents), uint64(v))
		}
		for i, v := range ys {
			b.Add(Event(i%NumEvents), uint64(v))
		}
		ab := a.Clone()
		ab.Merge(&b)
		ba := b.Clone()
		ba.Merge(&a)
		for _, e := range Events() {
			if ab.Get(e) != ba.Get(e) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStringShowsOnlyNonZero(t *testing.T) {
	var s Set
	s.Add(L2Miss, 3)
	out := s.String()
	if !strings.Contains(out, "l2_miss") {
		t.Errorf("missing l2_miss in %q", out)
	}
	if strings.Contains(out, "l1d_miss") {
		t.Errorf("zero counter printed in %q", out)
	}
}
