package core

import (
	"fmt"
	"os"
	"testing"

	"xeonomp/internal/config"
	"xeonomp/internal/counters"
	"xeonomp/internal/profiles"
)

// TestCalibration prints the calibration dashboard used to tune profiles.
// Run with XEONOMP_CALIB=1 to enable.
func TestCalibration(t *testing.T) {
	if os.Getenv("XEONOMP_CALIB") == "" {
		t.Skip("set XEONOMP_CALIB=1 to run the calibration dashboard")
	}
	opt := DefaultOptions()
	opt.Scale = 0.5
	freq := 2.8e9
	cfgs := config.Table1()
	for _, name := range profiles.StudiedNames() {
		p, _ := profiles.ByName(name)
		base, err := RunSingle(p, cfgs[0], opt)
		if err != nil {
			t.Fatal(err)
		}
		pr := base.Programs[0]
		m := pr.Metrics
		cyc := float64(pr.Counters.Get(counters.Cycles))
		bytes := float64(pr.Counters.Get(counters.MemReadBytes) + pr.Counters.Get(counters.MemWriteBytes))
		bw := bytes / (cyc / freq) / 1e9
		fmt.Printf("%-3s serial CPI=%.2f L1=%.3f L2=%.3f TC=%.3f BP=%.1f stall=%.1f pf=%.1f BW=%.2fGB/s | spdup:", name, m.CPI, m.L1MissRate, m.L2MissRate, m.TCMissRate, m.BranchPredRate, m.StalledPct, m.PrefetchBusPct, bw)
		for _, cfg := range cfgs[1:] {
			r, err := RunSingle(p, cfg, opt)
			if err != nil {
				t.Fatal(err)
			}
			rp := r.Programs[0]
			rb := float64(rp.Counters.Get(counters.MemReadBytes)+rp.Counters.Get(counters.MemWriteBytes)) /
				(float64(rp.Counters.Get(counters.Cycles)) / float64(r.Programs[0].Threads) / freq) / 1e9
			fmt.Printf(" %.2f(%.1fG,L2 %.2f,bp %.0f)", float64(base.WallCycles)/float64(r.WallCycles), rb, rp.Metrics.L2MissRate, rp.Metrics.BranchPredRate)
		}
		fmt.Println()
	}
	fmt.Println("order: SMT CMP CMT SMP SMT-SMP CMP-SMP CMT-SMP")
}
