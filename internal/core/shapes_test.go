package core

import (
	"strings"
	"testing"

	"xeonomp/internal/config"
	"xeonomp/internal/stats"
)

// TestPaperShapes is the integration test of the reproduction: it runs the
// full single-program study at a moderate scale and asserts the qualitative
// results the paper reports (DESIGN.md section 6). It is the expensive test
// of this package; -short skips it.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-shape integration study is not run in -short mode")
	}
	opt := DefaultOptions()
	opt.Scale = 0.4
	study, err := runSingleStudy(opt)
	if err != nil {
		t.Fatal(err)
	}

	cfgName := func(a config.Arch) string {
		c, err := config.ByArch(a)
		if err != nil {
			t.Fatal(err)
		}
		return c.Name
	}
	speedup := func(bench string, a config.Arch) float64 {
		v, err := study.Speedup(bench, cfgName(a))
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	metrics := func(bench string, a config.Arch) (m struct {
		L1, L2, BP, Stall float64
	}) {
		r, err := study.Result(bench, cfgName(a))
		if err != nil {
			t.Fatal(err)
		}
		mm := r.Programs[0].Metrics
		m.L1, m.L2, m.BP, m.Stall = mm.L1MissRate, mm.L2MissRate, mm.BranchPredRate, mm.StalledPct
		return
	}

	archs, avg, err := study.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(archs) != 7 {
		t.Fatalf("Table 2 has %d architectures", len(archs))
	}

	// (1) CMP-based SMP and CMT-based SMP have the highest average speedups.
	best, second := config.Arch(""), config.Arch("")
	var bestV, secondV float64
	for a, v := range avg {
		if v > bestV {
			second, secondV = best, bestV
			best, bestV = a, v
		} else if v > secondV {
			second, secondV = a, v
		}
	}
	top := map[config.Arch]bool{best: true, second: true}
	if !top[config.CMPSMP] || !top[config.CMTSMP] {
		t.Errorf("top-2 architectures = %v/%v (%.2f/%.2f), want CMP-based SMP and CMT-based SMP; all: %v",
			best, second, bestV, secondV, avg)
	}

	// (2) The fully-loaded HT machine is a small net slowdown vs HT off
	// (paper: ~6.7%), within a generous band.
	rel := avg[config.CMTSMP] / avg[config.CMPSMP]
	if rel < 0.80 || rel > 1.02 {
		t.Errorf("CMT-SMP / CMP-SMP average ratio %.3f, want a modest slowdown (0.80..1.02)", rel)
	}

	// (3) CG is the exception that gains from HT at full load.
	cgGain := speedup("CG", config.CMTSMP) / speedup("CG", config.CMPSMP)
	if cgGain <= 1.0 {
		t.Errorf("CG at HT on -8-2 should beat HT off -4-2, ratio %.3f", cgGain)
	}
	// ...and the majority of the others must not gain.
	losers := 0
	for _, bn := range study.Benchmarks {
		if bn == "CG" {
			continue
		}
		if speedup(bn, config.CMTSMP) <= speedup(bn, config.CMPSMP)*1.02 {
			losers++
		}
	}
	if losers < 4 {
		t.Errorf("only %d of 5 non-CG benchmarks avoid gaining from HT at full load", losers)
	}

	// (4) HT-on configurations show higher L2 miss rates than their HT-off
	// group partners (groups 2 and 3), averaged over benchmarks.
	for _, grp := range [][2]config.Arch{{config.CMP, config.CMT}, {config.SMP, config.SMTSMP}} {
		var off, on float64
		for _, bn := range study.Benchmarks {
			off += metrics(bn, grp[0]).L2
			on += metrics(bn, grp[1]).L2
		}
		if on <= off {
			t.Errorf("HT-on (%s) average L2 miss %.3f not above HT-off (%s) %.3f", grp[1], on/6, grp[0], off/6)
		}
	}

	// (5) L1 miss rates are comparatively flat across configurations.
	for _, bn := range study.Benchmarks {
		lo, hi := 1.0, 0.0
		for _, cfg := range study.Configs {
			r, err := study.Result(bn, cfg.Name)
			if err != nil {
				t.Fatal(err)
			}
			v := r.Programs[0].Metrics.L1MissRate
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi > 3*lo+0.02 {
			t.Errorf("%s L1 miss rate not flat: %.3f .. %.3f", bn, lo, hi)
		}
	}

	// (6) IS is the branch-prediction outlier: fine with HT off, poor with
	// HT on; the others stay uniformly high.
	isOff := metrics("IS", config.CMP).BP
	isOn := metrics("IS", config.CMT).BP
	if isOff-isOn < 5 {
		t.Errorf("IS branch prediction should collapse under HT: off %.1f%%, on %.1f%%", isOff, isOn)
	}
	for _, bn := range study.Benchmarks {
		if bn == "IS" {
			continue
		}
		if bp := metrics(bn, config.CMTSMP).BP; bp < 90 {
			t.Errorf("%s branch prediction %.1f%% under HT, want excellent", bn, bp)
		}
	}

	// (7) HT-on configurations spend more cycles stalled than HT-off ones
	// on average (groups 2/3/4 pattern from the paper).
	var stallOff, stallOn float64
	for _, bn := range study.Benchmarks {
		stallOff += metrics(bn, config.CMP).Stall + metrics(bn, config.SMP).Stall + metrics(bn, config.CMPSMP).Stall
		stallOn += metrics(bn, config.CMT).Stall + metrics(bn, config.SMTSMP).Stall + metrics(bn, config.CMTSMP).Stall
	}
	if stallOn <= stallOff {
		t.Errorf("HT-on average stall %.1f%% not above HT-off %.1f%%", stallOn/18, stallOff/18)
	}

	// (8) Efficiency: the CMT chip (half the machine) must land within a
	// credible band of the CMP-based SMP average (paper: 3.6%; the
	// simulator preserves "close", not the exact figure).
	eff := avg[config.CMT] / avg[config.CMPSMP]
	if eff < 0.5 || eff > 1.05 {
		t.Errorf("CMT / CMP-SMP average ratio %.3f implausible", eff)
	}

	// The rendering layer must digest the same study without errors.
	tables, err := study.Figure2Tables()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 9 {
		t.Fatalf("Figure 2 has %d panels, want 9", len(tables))
	}
	f3, err := study.Figure3Table()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f3.String(), "CG") {
		t.Fatal("Figure 3 table missing benchmarks")
	}
	t2, err := study.Table2Report()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t2.String(), "CMT-based SMP") {
		t.Fatal("Table 2 report missing architectures")
	}
}

// TestPairStudyShapes checks the paper's multi-program findings: the
// complementary CG/FT mix outperforms the identical pairs.
func TestPairStudyShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("pair-study integration is not run in -short mode")
	}
	opt := DefaultOptions()
	opt.Scale = 0.3
	study, err := runPairStudy(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Workloads) != 3 {
		t.Fatalf("%d workloads, want 3", len(study.Workloads))
	}

	// Resource complementarity on the full HT machine: the CG/FT mix,
	// taken over both programs, beats what the same programs achieve in
	// their identical-pair workloads (the paper's "tangible performance
	// benefit" of mixing compute-bound and memory-bound programs).
	cmt, _ := config.ByArch(config.CMT) // the paper's best multi-program performer
	cmtSMP, _ := config.ByArch(config.CMTSMP)
	mixed := study.Workloads[0] // CG/FT
	ftft := study.Workloads[1]  // FT/FT
	cgcg := study.Workloads[2]  // CG/CG
	spdup := func(w Workload, pi int, cfgName string) float64 {
		v, err := study.ProgramSpeedup(w, pi, cfgName)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// The complementary mix must win on at least one of the two HT-on
	// configurations (the paper: "better ... for most architectures"), and
	// clearly on CMT, where cache complementarity is strongest.
	wins := 0
	for _, cfgName := range []string{cmt.Name, cmtSMP.Name} {
		mixedMean := (spdup(mixed, 0, cfgName) + spdup(mixed, 1, cfgName)) / 2
		sameMean := (spdup(cgcg, 0, cfgName) + spdup(ftft, 1, cfgName)) / 2
		if mixedMean > sameMean {
			wins++
		}
	}
	if wins == 0 {
		t.Errorf("CG/FT mix never beats the identical pairs")
	}
	// FT itself must prefer the CG partner over another FT on CMT (their
	// warm sets fit one L2 together; two FT warm sets thrash it).
	if spdup(mixed, 1, cmt.Name) <= spdup(ftft, 1, cmt.Name) {
		t.Errorf("FT with CG (%.2fx) should beat FT with FT (%.2fx) on CMT",
			spdup(mixed, 1, cmt.Name), spdup(ftft, 1, cmt.Name))
	}

	tables, err := study.Figure4Tables()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 9 { // 8 metric panels (DTLB skipped) + speedups
		t.Fatalf("Figure 4 has %d tables, want 9", len(tables))
	}
}

// TestCrossStudyShapes checks Figure 5: CMP-based SMP has the best median
// pair performance; box summaries are well-formed.
func TestCrossStudyShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-product integration is not run in -short mode")
	}
	opt := DefaultOptions()
	opt.Scale = 0.3
	study, err := runCrossStudy(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Configs) != 7 {
		t.Fatalf("%d configurations, want 7", len(study.Configs))
	}
	var bestName string
	var bestMedian float64
	for _, cfg := range study.Configs {
		b := study.Boxes[cfg.Name]
		if b.N != 42 { // 21 pairs x 2 program instances
			t.Fatalf("%s has %d samples, want 42", cfg.Name, b.N)
		}
		if !(b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max) {
			t.Fatalf("%s box not ordered: %+v", cfg.Name, b)
		}
		if b.Median > bestMedian {
			bestMedian, bestName = b.Median, cfg.Name
		}
	}
	cmpSMP, _ := config.ByArch(config.CMPSMP)
	cmtSMP, _ := config.ByArch(config.CMTSMP)
	if bestName != cmpSMP.Name && bestName != cmtSMP.Name {
		t.Errorf("best median pair config = %s, want a full-machine configuration", bestName)
	}
	// The paper: "HT off -4-2 provides the overall best performance for
	// the majority of program pairs".
	winsCMP := 0
	pairsChecked := 0
	for pairName, sp := range study.PairSpeedups[cmpSMP.Name] {
		other := study.PairSpeedups[cmtSMP.Name][pairName]
		pairsChecked++
		if stats.Mean(sp) >= stats.Mean(other) {
			winsCMP++
		}
	}
	if winsCMP*2 < pairsChecked {
		t.Errorf("CMP-based SMP wins only %d of %d pairs vs CMT-based SMP", winsCMP, pairsChecked)
	}
	if out := study.Figure5Plot(); !strings.Contains(out, "HT off -4-2") {
		t.Fatal("Figure 5 plot missing configurations")
	}
}
