package core

import (
	"encoding/json"
	"fmt"

	"xeonomp/internal/config"
	"xeonomp/internal/counters"
	"xeonomp/internal/machine"
	"xeonomp/internal/runcache"
)

// runSchemaVersion identifies the result encoding and the simulator's
// observable behaviour in every cache key. Bump it whenever either
// changes so stale cache and journal entries miss instead of resurfacing
// results the current code would not produce.
const runSchemaVersion = "xeonomp/run/v1"

// CacheKey returns the content-address identity of running workload w
// under cfg with opt — the runcache key core.Run uses. Exported so tools
// can inspect or prune cache entries for specific cells.
func CacheKey(w Workload, cfg config.Configuration, opt Options) runcache.Key {
	return runcache.Key{
		Schema:         runSchemaVersion,
		Machine:        opt.machineConfig(),
		Workload:       w.Programs,
		Config:         cfg,
		Policy:         opt.Policy,
		Seed:           opt.Seed,
		Scale:          opt.Scale,
		WarmupFrac:     opt.WarmupFrac,
		CycleLimit:     opt.CycleLimit,
		SampleInterval: opt.SampleInterval,
	}
}

// cellLabel renders the human-readable journal label for a cell.
func cellLabel(w Workload, cfg config.Configuration, opt Options) string {
	return fmt.Sprintf("%s|%s|seed=%d", w.Name(), cfg.Name, opt.Seed)
}

// runThroughCache serves a cell from the run cache or the replayed
// journal when possible, running compute and recording its result
// otherwise. It is the shared cache/journal tier of every backend that
// carries one: the local backend's compute is the cycle engine
// (runUncached), the Cached decorator's compute is its inner backend —
// which is how a sharding frontend keeps a resumable journal of cells
// that were simulated machines away. Decode failures — corrupt disk
// entries, schema drift — degrade to recomputation. The cached return
// reports whether the cell was served rather than computed; RunContext
// owns the progress and metric accounting built on it.
func runThroughCache(w Workload, cfg config.Configuration, opt Options, compute func() (*RunResult, bool, error)) (*RunResult, bool, error) {
	hash, err := CacheKey(w, cfg, opt).Hash()
	if err != nil {
		// An unhashable key cannot happen with plain-data inputs; if it
		// does, fall back to the uncached path rather than failing the run.
		return compute()
	}
	if payload, ok := opt.Cache.Get(hash); ok {
		if res, err := decodeRunResult(payload); err == nil {
			return res, true, nil
		}
	}
	if payload, ok := opt.Journal.Replayed(hash); ok {
		if res, err := decodeRunResult(payload); err == nil {
			// Promote into the cache so later lookups skip the journal map.
			_ = opt.Cache.Put(hash, payload)
			return res, true, nil
		}
	}
	res, cached, err := compute()
	if err != nil {
		return nil, false, err
	}
	if payload, err := encodeRunResult(res); err == nil {
		// Best effort: a full disk or read-only journal must not fail the
		// simulation that just succeeded. Recorded even when the inner
		// backend reports cached (a remote worker's warm cache): this
		// tier's cache and journal are what make the *next* lookup, and a
		// resumed study, local hits.
		_ = opt.Cache.Put(hash, payload)
		_ = opt.Journal.Append(hash, cellLabel(w, cfg, opt), payload)
	}
	return res, cached, nil
}

// cellProgram is the cache encoding of one ProgramResult. Metrics are
// not stored: they are re-derived from the counters on decode, so a
// cached result cannot disagree with what Derive produces today.
type cellProgram struct {
	Benchmark string            `json:"benchmark"`
	Threads   int               `json:"threads"`
	Cycles    int64             `json:"cycles"`
	Counters  map[string]uint64 `json:"counters,omitempty"`
}

// cellSample is the cache encoding of one sampler window.
type cellSample struct {
	Start    int64             `json:"start"`
	End      int64             `json:"end"`
	Counters map[string]uint64 `json:"counters,omitempty"`
}

// cellResult is the full-fidelity cache encoding of a RunResult.
type cellResult struct {
	Schema     string               `json:"schema"`
	Config     config.Configuration `json:"config"`
	WallCycles int64                `json:"wall_cycles"`
	Programs   []cellProgram        `json:"programs"`
	Samples    []cellSample         `json:"samples,omitempty"`
}

// encodeRunResult serializes r for the run cache and journal.
func encodeRunResult(r *RunResult) ([]byte, error) {
	out := cellResult{
		Schema:     runSchemaVersion,
		Config:     r.Config,
		WallCycles: r.WallCycles,
	}
	for i := range r.Programs {
		p := &r.Programs[i]
		out.Programs = append(out.Programs, cellProgram{
			Benchmark: p.Benchmark,
			Threads:   p.Threads,
			Cycles:    p.Cycles,
			Counters:  p.Counters.NonzeroMap(),
		})
	}
	for i := range r.Samples {
		s := &r.Samples[i]
		out.Samples = append(out.Samples, cellSample{
			Start:    s.Start,
			End:      s.End,
			Counters: s.Counters.NonzeroMap(),
		})
	}
	return json.Marshal(out)
}

// decodeRunResult rebuilds a RunResult from a cache or journal payload.
// Any mismatch — schema drift, unknown events, malformed JSON — is an
// error; callers treat it as a miss and recompute.
func decodeRunResult(payload []byte) (*RunResult, error) {
	var in cellResult
	if err := json.Unmarshal(payload, &in); err != nil {
		return nil, fmt.Errorf("core: decoding cached result: %w", err)
	}
	if in.Schema != runSchemaVersion {
		return nil, fmt.Errorf("core: cached result schema %q, want %q", in.Schema, runSchemaVersion)
	}
	res := &RunResult{Config: in.Config, WallCycles: in.WallCycles}
	for _, p := range in.Programs {
		set, err := counters.SetFromMap(p.Counters)
		if err != nil {
			return nil, err
		}
		res.Programs = append(res.Programs, ProgramResult{
			Benchmark: p.Benchmark,
			Threads:   p.Threads,
			Cycles:    p.Cycles,
			Counters:  set,
			Metrics:   counters.Derive(&set),
		})
	}
	for _, s := range in.Samples {
		set, err := counters.SetFromMap(s.Counters)
		if err != nil {
			return nil, err
		}
		res.Samples = append(res.Samples, machine.Sample{Start: s.Start, End: s.End, Counters: set})
	}
	return res, nil
}
