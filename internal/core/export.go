package core

import (
	"encoding/json"
	"io"

	"xeonomp/internal/counters"
)

// exportProgram is the JSON shape of one program's results.
type exportProgram struct {
	Benchmark string            `json:"benchmark"`
	Threads   int               `json:"threads"`
	Cycles    int64             `json:"cycles"`
	Counters  map[string]uint64 `json:"counters"`
	Metrics   counters.Metrics  `json:"metrics"`
}

// exportRun is the JSON shape of one run.
type exportRun struct {
	Config     string          `json:"config"`
	Arch       string          `json:"architecture"`
	WallCycles int64           `json:"wall_cycles"`
	Programs   []exportProgram `json:"programs"`
}

func exportOf(r *RunResult) exportRun {
	out := exportRun{
		Config:     r.Config.Name,
		Arch:       string(r.Config.Arch),
		WallCycles: r.WallCycles,
	}
	for _, p := range r.Programs {
		ep := exportProgram{
			Benchmark: p.Benchmark,
			Threads:   p.Threads,
			Cycles:    p.Cycles,
			Counters:  map[string]uint64{},
			Metrics:   p.Metrics,
		}
		for _, e := range counters.Events() {
			if v := p.Counters.Get(e); v != 0 {
				ep.Counters[e.String()] = v
			}
		}
		out.Programs = append(out.Programs, ep)
	}
	return out
}

// WriteJSON serializes the run result (configuration, wall clock, and per
// program the counters and derived metrics) as indented JSON.
func (r *RunResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(exportOf(r))
}

// WriteJSON serializes the whole single-program study, keyed by benchmark
// and configuration, including serial baselines.
func (s *SingleStudy) WriteJSON(w io.Writer) error {
	type study struct {
		Benchmarks []string             `json:"benchmarks"`
		Configs    []string             `json:"configurations"`
		Baselines  map[string]int64     `json:"serial_baselines"`
		Runs       map[string]exportRun `json:"runs"` // "BENCH|CONFIG"
	}
	out := study{
		Benchmarks: s.Benchmarks,
		Baselines:  s.Baselines,
		Runs:       map[string]exportRun{},
	}
	for _, c := range s.Configs {
		out.Configs = append(out.Configs, c.Name)
	}
	for key, r := range s.Results {
		out.Runs[key.Benchmark+"|"+key.Config] = exportOf(r)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
