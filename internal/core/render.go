package core

import (
	"fmt"

	"xeonomp/internal/config"
	"xeonomp/internal/counters"
	"xeonomp/internal/report"
	"xeonomp/internal/stats"
)

// metricPanel names one Figure-2/Figure-4 panel and extracts its value.
// Slug is the stable lower_snake identifier the golden artifacts key
// metrics by; renaming one invalidates every stored artifact, so treat
// slugs as frozen.
type metricPanel struct {
	Name    string
	Slug    string
	Get     func(m counters.Metrics) float64
	Percent bool
}

func panels() []metricPanel {
	return []metricPanel{
		{"L1 cache miss rate", "l1_miss_rate", func(m counters.Metrics) float64 { return m.L1MissRate }, false},
		{"L2 cache miss rate", "l2_miss_rate", func(m counters.Metrics) float64 { return m.L2MissRate }, false},
		{"Trace cache miss rate", "tc_miss_rate", func(m counters.Metrics) float64 { return m.TCMissRate }, false},
		{"ITLB miss rate", "itlb_miss_rate", func(m counters.Metrics) float64 { return m.ITLBMissRate }, false},
		{"DTLB load+store misses (normalized to serial)", "dtlb_normalized", nil, false}, // special-cased
		{"% stalled cycles", "stalled_pct", func(m counters.Metrics) float64 { return m.StalledPct }, true},
		{"Branch prediction rate (%)", "branch_pred_rate", func(m counters.Metrics) float64 { return m.BranchPredRate }, true},
		{"% prefetching bus accesses", "prefetch_bus_pct", func(m counters.Metrics) float64 { return m.PrefetchBusPct }, true},
		{"CPI", "cpi", func(m counters.Metrics) float64 { return m.CPI }, false},
	}
}

// Figure2Tables renders the nine Figure-2 panels: one table per metric,
// benchmarks as rows and configurations as columns.
func (s *SingleStudy) Figure2Tables() ([]*report.Table, error) {
	var out []*report.Table
	for pi, p := range panels() {
		headers := append([]string{"benchmark"}, configNames(s.Configs)...)
		t := report.NewTable(fmt.Sprintf("Figure 2.%d — %s", pi+1, p.Name), headers...)
		for _, bn := range s.Benchmarks {
			row := []any{bn}
			for _, cfg := range s.Configs {
				if p.Get == nil {
					v, err := s.DTLBNormalized(bn, cfg.Name)
					if err != nil {
						return nil, err
					}
					row = append(row, v)
					continue
				}
				r, err := s.Result(bn, cfg.Name)
				if err != nil {
					return nil, err
				}
				v := p.Get(r.Programs[0].Metrics)
				if pi == 3 { // ITLB rates are tiny; show more precision
					row = append(row, fmt.Sprintf("%.5f", v))
					continue
				}
				row = append(row, v)
			}
			t.AddF(row...)
		}
		out = append(out, t)
	}
	return out, nil
}

// Figure3Table renders the single-program speedups (Figure 3).
func (s *SingleStudy) Figure3Table() (*report.Table, error) {
	var multis []config.Configuration
	for _, c := range s.Configs {
		if c.Arch != config.Serial {
			multis = append(multis, c)
		}
	}
	headers := append([]string{"benchmark"}, configNames(multis)...)
	t := report.NewTable("Figure 3 — Speedup of NAS OpenMP applications over serial", headers...)
	for _, bn := range s.Benchmarks {
		row := []any{bn}
		for _, cfg := range multis {
			v, err := s.Speedup(bn, cfg.Name)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		t.AddF(row...)
	}
	return t, nil
}

// Table2Report renders the average speedup per architecture (Table 2).
func (s *SingleStudy) Table2Report() (*report.Table, error) {
	archs, avg, err := s.Table2()
	if err != nil {
		return nil, err
	}
	headers := make([]string, 0, len(archs)+1)
	headers = append(headers, "")
	for _, a := range archs {
		headers = append(headers, string(a))
	}
	t := report.NewTable("Table 2 — Average speedup for architectures", headers...)
	row := []any{"avg speedup"}
	for _, a := range archs {
		row = append(row, avg[a])
	}
	t.AddF(row...)
	return t, nil
}

// Figure4Tables renders the multi-program study: the nine metric panels
// (one row per program instance per workload) plus the per-workload
// speedup table.
func (s *PairStudy) Figure4Tables() ([]*report.Table, error) {
	cfgNames := configNames(s.Configs)
	var out []*report.Table
	for pi, p := range panels() {
		if p.Get == nil {
			continue // DTLB normalization needs per-program serial bases; reported raw below
		}
		headers := append([]string{"program (workload)"}, cfgNames...)
		t := report.NewTable(fmt.Sprintf("Figure 4.%d — %s", pi+1, p.Name), headers...)
		for _, w := range s.Workloads {
			for gi := range w.Programs {
				label := fmt.Sprintf("%s (%s)", w.Programs[gi].Name, w.Name())
				row := []any{label}
				for _, cfg := range s.Configs {
					res := s.Results[w.Name()][cfg.Name]
					row = append(row, p.Get(res.Programs[gi].Metrics))
				}
				t.AddF(row...)
			}
		}
		out = append(out, t)
	}

	headers := append([]string{"program (workload)"}, cfgNames...)
	t := report.NewTable("Figure 4.10 — Multiprogrammed speedup over serial", headers...)
	for _, w := range s.Workloads {
		for gi := range w.Programs {
			label := fmt.Sprintf("%s (%s)", w.Programs[gi].Name, w.Name())
			row := []any{label}
			for _, cfg := range s.Configs {
				v, err := s.ProgramSpeedup(w, gi, cfg.Name)
				if err != nil {
					return nil, err
				}
				row = append(row, v)
			}
			t.AddF(row...)
		}
	}
	out = append(out, t)
	return out, nil
}

// Figure5Plot renders the cross-product box-and-whisker plot.
func (s *CrossStudy) Figure5Plot() string {
	labels := make([]string, 0, len(s.Configs))
	boxes := make([]stats.BoxPlot, 0, len(s.Configs))
	for _, cfg := range s.Configs {
		labels = append(labels, cfg.Name)
		boxes = append(boxes, s.Boxes[cfg.Name])
	}
	return report.BoxPlots("Figure 5 — Multi-programmed speedup of NAS benchmark pairs", labels, boxes, 64)
}

// Table1Report renders the configuration table.
func Table1Report() *report.Table {
	t := report.NewTable("Table 1 — Configuration information",
		"terminology", "h/w contexts", "architecture")
	for _, c := range config.Table1() {
		ctxs := ""
		for i, l := range c.Labels {
			if i > 0 {
				ctxs += ","
			}
			ctxs += l
		}
		t.Add(c.Name, ctxs, string(c.Arch))
	}
	return t
}

func configNames(cfgs []config.Configuration) []string {
	out := make([]string, len(cfgs))
	for i, c := range cfgs {
		out[i] = c.Name
	}
	return out
}
