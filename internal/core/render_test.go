package core

import (
	"strings"
	"sync"
	"testing"

	"xeonomp/internal/config"
)

var (
	tinyOnce  sync.Once
	tinyCache *SingleStudy
	tinyErr   error
)

// tinyStudy runs the full single-program grid at minimal scale once and
// shares it across the rendering-layer tests (the study is read-only).
func tinyStudy(t *testing.T) *SingleStudy {
	t.Helper()
	tinyOnce.Do(func() {
		tinyCache, tinyErr = runSingleStudy(quickOptions())
	})
	if tinyErr != nil {
		t.Fatal(tinyErr)
	}
	return tinyCache
}

func TestFigure2TablesStructure(t *testing.T) {
	s := tinyStudy(t)
	tables, err := s.Figure2Tables()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 9 {
		t.Fatalf("%d panels, want 9", len(tables))
	}
	wantTitles := []string{
		"L1 cache miss rate", "L2 cache miss rate", "Trace cache miss rate",
		"ITLB miss rate", "DTLB", "stalled", "Branch prediction",
		"prefetching bus accesses", "CPI",
	}
	for i, tb := range tables {
		if !strings.Contains(tb.Title, wantTitles[i]) {
			t.Errorf("panel %d title %q missing %q", i, tb.Title, wantTitles[i])
		}
		if len(tb.Rows) != 6 {
			t.Errorf("panel %d has %d rows, want 6 benchmarks", i, len(tb.Rows))
		}
		if len(tb.Headers) != 9 { // benchmark + 8 configurations
			t.Errorf("panel %d has %d columns, want 9", i, len(tb.Headers))
		}
	}
}

func TestFigure2DTLBNormalizedToSerial(t *testing.T) {
	s := tinyStudy(t)
	for _, bn := range s.Benchmarks {
		serialCfg, _ := config.ByArch(config.Serial)
		v, err := s.DTLBNormalized(bn, serialCfg.Name)
		if err != nil {
			t.Fatal(err)
		}
		if v != 1.0 {
			t.Errorf("%s serial DTLB normalization = %v, want exactly 1", bn, v)
		}
	}
}

func TestFigure3TableStructure(t *testing.T) {
	s := tinyStudy(t)
	tb, err := s.Figure3Table()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Headers) != 8 { // benchmark + 7 multithreaded configs
		t.Fatalf("Figure 3 columns = %d, want 8", len(tb.Headers))
	}
	if strings.Contains(strings.Join(tb.Headers, " "), "Serial") {
		t.Fatal("Figure 3 must not include the serial column")
	}
	// Serial speedup is by definition 1.0 and excluded; all entries present.
	for _, row := range tb.Rows {
		if len(row) != 8 {
			t.Fatalf("row %v wrong width", row)
		}
	}
}

func TestTable2ReportStructure(t *testing.T) {
	s := tinyStudy(t)
	tb, err := s.Table2Report()
	if err != nil {
		t.Fatal(err)
	}
	line := tb.String()
	for _, arch := range []string{"SMT", "CMP", "CMT", "SMP", "SMT-based SMP", "CMP-based SMP", "CMT-based SMP"} {
		if !strings.Contains(line, arch) {
			t.Errorf("Table 2 missing architecture %q", arch)
		}
	}
}

func TestSpeedupErrorsOnUnknown(t *testing.T) {
	s := tinyStudy(t)
	if _, err := s.Speedup("ZZ", "Serial"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := s.Speedup("CG", "nope"); err == nil {
		t.Error("unknown configuration accepted")
	}
	if _, err := s.Result("CG", "nope"); err == nil {
		t.Error("unknown result accepted")
	}
}

func TestMetricsSanityAcrossStudy(t *testing.T) {
	s := tinyStudy(t)
	for key, res := range s.Results {
		m := res.Programs[0].Metrics
		if m.L1MissRate < 0 || m.L1MissRate > 1 ||
			m.L2MissRate < 0 || m.L2MissRate > 1 ||
			m.TCMissRate < 0 || m.TCMissRate > 1 ||
			m.ITLBMissRate < 0 || m.ITLBMissRate > 1 {
			t.Fatalf("%v: miss rate outside [0,1]: %+v", key, m)
		}
		if m.StalledPct < 0 || m.StalledPct > 100 {
			t.Fatalf("%v: stall %% %v", key, m.StalledPct)
		}
		if m.BranchPredRate < 0 || m.BranchPredRate > 100 {
			t.Fatalf("%v: BP %% %v", key, m.BranchPredRate)
		}
		if m.CPI <= 0 || m.CPI > 100 {
			t.Fatalf("%v: CPI %v", key, m.CPI)
		}
	}
}
