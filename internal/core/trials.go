package core

import (
	"context"
	"fmt"

	"xeonomp/internal/config"
	"xeonomp/internal/obs"
	"xeonomp/internal/stats"
)

// TrialSet is the result of repeated independent runs of one workload on
// one configuration — the paper's "series of ten independent trials, with
// minimal variance between tests (<~1-5%)" methodology. Trials differ by
// seed, which perturbs chunk imbalance, data-dependent branch entropy, and
// access interleavings.
type TrialSet struct {
	Workload   string
	Config     string
	WallCycles []float64
	// PerProgram[i] holds program i's completion cycles across trials.
	PerProgram [][]float64
}

// RunTrials executes n independent trials of workload w under cfg, varying
// the seed from opt.Seed upward.
func RunTrials(w Workload, cfg config.Configuration, opt Options, n int) (*TrialSet, error) {
	return RunTrialsContext(context.Background(), w, cfg, opt, n)
}

// RunTrialsContext is RunTrials with cancellation between trials and a
// "trials" trace span covering the whole set.
func RunTrialsContext(ctx context.Context, w Workload, cfg config.Configuration, opt Options, n int) (*TrialSet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: trial count %d", n)
	}
	ctx, sp := obs.StartSpan(ctx, "trials", "workload", w.Name(), "config", cfg.Name)
	defer sp.End()
	ts := &TrialSet{
		Workload:   w.Name(),
		Config:     cfg.Name,
		PerProgram: make([][]float64, len(w.Programs)),
	}
	opt.Progress.AddTotal(n)
	for i := 0; i < n; i++ {
		o := opt
		o.Seed = opt.Seed + uint64(i)*1_000_003
		res, err := RunContext(ctx, w, cfg, o)
		if err != nil {
			return nil, fmt.Errorf("core: trial %d: %w", i, err)
		}
		ts.WallCycles = append(ts.WallCycles, float64(res.WallCycles))
		for pi, p := range res.Programs {
			ts.PerProgram[pi] = append(ts.PerProgram[pi], float64(p.Cycles))
		}
	}
	return ts, nil
}

// Mean returns the mean wall-clock cycles across trials.
func (ts *TrialSet) Mean() float64 { return stats.Mean(ts.WallCycles) }

// CoefVar returns the coefficient of variation of the wall clock across
// trials — the paper's "variance between tests" figure.
func (ts *TrialSet) CoefVar() float64 { return stats.CoefVar(ts.WallCycles) }

// Box returns the five-number summary of the wall-clock trials.
func (ts *TrialSet) Box() (stats.BoxPlot, error) { return stats.Box(ts.WallCycles) }
