// Package core is the characterization framework — the reproduction of the
// paper's methodology. It assembles the simulated PowerEdge-2850-like
// machine, applies a Table-1 hardware configuration, places one or more
// benchmark programs on the enabled contexts, runs the cycle engine, and
// reduces the per-thread performance counters to the metrics and speedups
// reported in the paper's figures and tables.
package core

import (
	"context"
	"fmt"

	"xeonomp/internal/config"
	"xeonomp/internal/counters"
	"xeonomp/internal/cpu"
	"xeonomp/internal/journal"
	"xeonomp/internal/machine"
	"xeonomp/internal/obs"
	"xeonomp/internal/profiles"
	"xeonomp/internal/runcache"
	"xeonomp/internal/sched"
)

// Process-wide observability series (see internal/obs): cell traffic and
// latency for the experiment engine, plus study-driver worker telemetry.
var (
	obsCellsComputed = obs.NewCounter(obs.MetricCoreCellsComputed)
	obsCellsCached   = obs.NewCounter(obs.MetricCoreCellsCached)
	obsCellNs        = obs.NewHistogram(obs.MetricCoreCellNs)
	obsWorkers       = obs.NewGauge(obs.MetricCoreWorkers)
	obsWorkerUtil    = obs.NewGauge(obs.MetricCoreWorkerUtil)
)

// Options controls a characterization run.
type Options struct {
	// Scale multiplies every benchmark's instruction budget; 1.0 is the
	// full workload, tests use small fractions.
	Scale float64
	// Seed makes runs reproducible; different seeds model independent
	// trials.
	Seed uint64
	// Policy is the thread-placement policy (sched.Alternate reproduces
	// the balanced Linux default).
	Policy sched.Policy
	// Machine is the platform; nil selects machine.PaxvilleSMP.
	Machine *machine.Config
	// CycleLimit aborts runaway runs; 0 means none.
	CycleLimit int64
	// WarmupFrac is the fraction of each thread's instruction budget run
	// before its counters are zeroed, so reported metrics reflect warm
	// caches the way the paper's whole-run VTune sampling does. Wall-clock
	// cycles (and hence speedups) still cover the entire run.
	WarmupFrac float64
	// SampleInterval, when positive, attaches a machine-wide counter
	// sampler with the given window (in cycles); the time series lands in
	// RunResult.Samples — the VTune-style phase view.
	SampleInterval int64
	// Workers parallelizes the study drivers across goroutines (each run
	// owns its machine, so results are identical to sequential execution).
	// <= 1 runs sequentially.
	Workers int
	// Cache, when non-nil, memoizes each simulation cell content-addressed
	// by (machine config, workload profiles, configuration, placement
	// policy, seed, scale, warmup, cycle limit, sample interval, schema
	// version). Cached, resumed, and cold runs produce identical results;
	// a corrupt entry is recomputed, never trusted.
	Cache *runcache.Cache
	// Journal, when non-nil, records every computed cell to an append-only
	// JSONL file and serves cells replayed from a previous, interrupted
	// invocation — the -resume path of cmd/xeonchar and cmd/sweep.
	Journal *journal.Journal
	// Progress, when non-nil, receives cell-completion events for the
	// stderr progress reporter (done/total, cache hit rate, ETA).
	Progress *journal.Progress
	// Reference runs the cycle engine through machine.RunReference — the
	// un-optimized advancement loop — instead of machine.Run. Results are
	// identical by contract (the equivalence tests pin this); the switch
	// exists for those tests and for A/B benchmarking the engine.
	Reference bool
	// Backend executes the cells. nil selects Local(), the in-process
	// path; the experiment server layers Dedupe and Gate on top, and the
	// seam is where a remote shard would plug in. Backends never affect
	// results — a cell's identity (CacheKey) deliberately excludes the
	// backend, and the golden artifacts pin the equivalence.
	Backend Backend
}

// DefaultOptions returns full-scale options with the paper's platform.
func DefaultOptions() Options {
	return Options{Scale: 1.0, Seed: 1, Policy: sched.Alternate, WarmupFrac: 0.35}
}

func (o Options) machineConfig() machine.Config {
	if o.Machine != nil {
		return *o.Machine
	}
	return machine.PaxvilleSMP()
}

func (o Options) validate() error {
	if o.Scale <= 0 {
		return fmt.Errorf("core: scale %g", o.Scale)
	}
	if o.WarmupFrac < 0 || o.WarmupFrac >= 1 {
		return fmt.Errorf("core: warmup fraction %g out of [0,1)", o.WarmupFrac)
	}
	return o.validateBounds()
}

// ProgramResult is the outcome of one program within a run.
type ProgramResult struct {
	Benchmark string
	Threads   int
	Cycles    int64 // wall-clock cycles until the program's last thread finished
	Counters  counters.Set
	Metrics   counters.Metrics
}

// RunResult is the outcome of one workload on one configuration.
type RunResult struct {
	Config     config.Configuration
	WallCycles int64
	Programs   []ProgramResult
	// Samples is the machine-wide counter time series, present when
	// Options.SampleInterval was set.
	Samples []machine.Sample
}

// Workload is a set of programs to co-schedule.
type Workload struct {
	Programs []profiles.Profile
}

// Single returns a one-program workload.
func Single(p profiles.Profile) Workload { return Workload{Programs: []profiles.Profile{p}} }

// Pair returns a two-program workload.
func Pair(a, b profiles.Profile) Workload {
	return Workload{Programs: []profiles.Profile{a, b}}
}

// Name renders the workload like the paper ("CG/FT").
func (w Workload) Name() string {
	s := ""
	for i, p := range w.Programs {
		if i > 0 {
			s += "/"
		}
		s += p.Name
	}
	return s
}

// threadsPerProgram splits the configuration's hardware contexts evenly
// between programs, the paper's multi-program methodology. Single programs
// use the configuration's thread count.
func threadsPerProgram(cfg config.Configuration, programs int) int {
	if programs <= 1 {
		return cfg.Threads
	}
	per := len(cfg.Contexts) / programs
	if per < 1 {
		per = 1
	}
	return per
}

// Run executes workload w under configuration cfg and returns per-program
// results. It is RunContext with a background context.
func Run(w Workload, cfg config.Configuration, opt Options) (*RunResult, error) {
	return RunContext(context.Background(), w, cfg, opt)
}

// RunContext executes workload w under configuration cfg and returns
// per-program results. The cell is dispatched through Options.Backend
// (nil means Local()), so the same orchestration serves in-process runs,
// deduped server-side execution, and future remote shards; the span,
// counter, and progress accounting here covers every backend. Every run
// uses a machine in power-on state —
// freshly built or recycled through the machine pool, which is
// indistinguishable — mirroring the paper's independent trials. When Options carries a run cache or
// journal, the cell is served from there when possible and recorded after
// computing; either way the result is identical to an uncached run.
//
// The context carries cancellation (a canceled ctx returns before any
// simulation work) and the observability plumbing: the cell records a
// trace span (named "cell", tagged benchmark/config/cached) under the span
// already in ctx, and the simulation runs under pprof labels so CPU
// profiles attribute samples to the cell.
func RunContext(ctx context.Context, w Workload, cfg config.Configuration, opt Options) (*RunResult, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	backend := opt.Backend
	if backend == nil {
		backend = Local()
	}
	ctx, sp := obs.StartSpan(ctx, "cell", "benchmark", w.Name(), "config", cfg.Name)
	defer sp.End()
	t := obs.StartTimer()
	var (
		res    *RunResult
		cached bool
		err    error
	)
	obs.DoCell(ctx, w.Name(), cfg.Name, func(ctx context.Context) {
		res, cached, err = backend.RunCell(ctx, w, cfg, opt)
	})
	if err != nil {
		return nil, err
	}
	obsCellNs.ObserveSince(t)
	if cached {
		obsCellsCached.Inc()
		sp.SetArg("cached", "true")
	} else {
		obsCellsComputed.Inc()
		sp.SetArg("cached", "false")
	}
	opt.Progress.Done(cached)
	return res, nil
}

// pool recycles simulated machines across cells. A study re-builds the
// same platform hundreds of times; recycling replaces those allocations
// with a hard reset, and machine.ResetHard guarantees a recycled machine
// is bit-for-bit a fresh one (TestPooledMachineDeterminism pins this).
var pool = machine.NewPool()

// runUncached is the cache-oblivious simulation path: build the machine,
// place the threads, run the cycle engine, reduce the counters.
func runUncached(w Workload, cfg config.Configuration, opt Options) (*RunResult, error) {
	if len(w.Programs) == 0 {
		return nil, fmt.Errorf("core: empty workload")
	}
	m, err := pool.Get(opt.machineConfig())
	if err != nil {
		return nil, err
	}
	defer pool.Put(m)
	ctxs, err := cfg.Apply(m)
	if err != nil {
		return nil, err
	}

	per := threadsPerProgram(cfg, len(w.Programs))
	progThreads := make([][]*cpu.Thread, len(w.Programs))
	for pi, prof := range w.Programs {
		if err := prof.Validate(); err != nil {
			return nil, err
		}
		layout, err := prof.Layout(uint64(pi+1), per)
		if err != nil {
			return nil, err
		}
		team := cpu.NewTeam(per)
		for tid := 0; tid < per; tid++ {
			gen, err := prof.Generator(layout, tid, per, opt.Scale, opt.Seed+uint64(pi)*7919)
			if err != nil {
				return nil, err
			}
			name := fmt.Sprintf("%s.%d.t%d", prof.Name, pi, tid)
			th := cpu.NewThread(name, pi, gen, team)
			if o := opt.WarmupFrac; o > 0 {
				th.WarmupInstr = int64(o * float64(prof.SerialInstr) * opt.Scale / float64(per))
			}
			progThreads[pi] = append(progThreads[pi], th)
		}
	}
	if opt.Policy == sched.Symbiotic {
		demands := make([]sched.ProgramDemand, len(w.Programs))
		for pi, prof := range w.Programs {
			demands[pi] = prof.Demand()
		}
		if err := sched.PlaceSymbiotic(progThreads, demands, ctxs); err != nil {
			return nil, err
		}
	} else if err := sched.Place(progThreads, ctxs, opt.Policy); err != nil {
		return nil, err
	}
	for _, x := range ctxs {
		x.Prewarm()
	}

	var sampler *machine.Sampler
	if opt.SampleInterval > 0 {
		sampler, err = machine.NewSampler(opt.SampleInterval)
		if err != nil {
			return nil, err
		}
		m.SetSampler(sampler)
	}

	var wall int64
	if opt.Reference {
		wall, err = m.RunReference(opt.CycleLimit)
	} else {
		wall, err = m.Run(opt.CycleLimit)
	}
	if err != nil {
		return nil, fmt.Errorf("core: %s on %s: %w", w.Name(), cfg.Name, err)
	}

	res := &RunResult{Config: cfg, WallCycles: wall}
	if sampler != nil {
		res.Samples = sampler.Samples
	}
	for pi, prof := range w.Programs {
		pr := ProgramResult{Benchmark: prof.Name, Threads: per}
		for _, t := range progThreads[pi] {
			pr.Counters.Merge(&t.Counters)
			if t.FinishedAt > pr.Cycles {
				pr.Cycles = t.FinishedAt
			}
		}
		pr.Metrics = counters.Derive(&pr.Counters)
		res.Programs = append(res.Programs, pr)
	}
	return res, nil
}

// RunSingle is a convenience wrapper for one-program workloads.
func RunSingle(p profiles.Profile, cfg config.Configuration, opt Options) (*RunResult, error) {
	return RunContext(context.Background(), Single(p), cfg, opt)
}

// RunSingleContext is RunSingle with cancellation and span/label context.
func RunSingleContext(ctx context.Context, p profiles.Profile, cfg config.Configuration, opt Options) (*RunResult, error) {
	return RunContext(ctx, Single(p), cfg, opt)
}

// SerialBaseline runs benchmark p alone on the Serial configuration and
// returns its result; speedups in the figures are relative to this.
func SerialBaseline(p profiles.Profile, opt Options) (*RunResult, error) {
	return SerialBaselineContext(context.Background(), p, opt)
}

// SerialBaselineContext is SerialBaseline with cancellation and span/label
// context.
func SerialBaselineContext(ctx context.Context, p profiles.Profile, opt Options) (*RunResult, error) {
	serial, err := config.ByArch(config.Serial)
	if err != nil {
		return nil, err
	}
	return RunContext(ctx, Single(p), serial, opt)
}

// Speedup returns baseline/cycles, the paper's speedup definition.
func Speedup(baselineCycles, cycles int64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(baselineCycles) / float64(cycles)
}
