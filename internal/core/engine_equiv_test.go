package core

import (
	"testing"

	"xeonomp/internal/config"
	"xeonomp/internal/counters"
	"xeonomp/internal/profiles"
	"xeonomp/internal/sched"
)

// equivOptions returns reduced-scale options matching the golden studies'
// shape (warmup fraction, placement policy) so the equivalence sweep
// exercises the same code paths the golden gate does.
func equivOptions(reference bool) Options {
	opt := DefaultOptions()
	opt.Scale = 0.02
	opt.Reference = reference
	return opt
}

// TestEngineEquivalence pins the optimization contract of the cycle
// engine: the batched-advancement engine (machine.Run) must produce
// results identical to the reference engine (machine.RunReference) — same
// wall cycles, same per-program cycle counts, and byte-identical counter
// banks — across workload shapes that exercise every advancement path:
// serial, HT sharing, cross-core teams, oversubscription, and
// multi-program co-scheduling.
func TestEngineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep is a long test")
	}
	benchmarks := []string{"CG", "EP", "LU"}
	configs := []string{
		"Serial",
		"HT on -2-1",
		"HT off -2-1",
		"HT off -2-2",
		"HT on -4-1",
		"HT on -8-2",
	}
	for _, bm := range benchmarks {
		prof, err := profiles.ByName(bm)
		if err != nil {
			t.Fatal(err)
		}
		for _, cn := range configs {
			cfg, err := config.ByName(cn)
			if err != nil {
				t.Fatal(err)
			}
			t.Run(bm+"/"+cn, func(t *testing.T) {
				opt, ref := equivOptions(false), equivOptions(true)
				got, err := RunSingle(prof, cfg, opt)
				if err != nil {
					t.Fatal(err)
				}
				want, err := RunSingle(prof, cfg, ref)
				if err != nil {
					t.Fatal(err)
				}
				compareRuns(t, got, want)
			})
		}
	}
}

// TestEngineEquivalenceMultiProgram covers the pair-study shape: two
// programs co-scheduled, including the symbiotic placement policy.
func TestEngineEquivalenceMultiProgram(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep is a long test")
	}
	cg, err := profiles.ByName("CG")
	if err != nil {
		t.Fatal(err)
	}
	ft, err := profiles.ByName("FT")
	if err != nil {
		t.Fatal(err)
	}
	for _, cn := range []string{"HT off -4-2", "HT on -8-2"} {
		cfg, err := config.ByName(cn)
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range []sched.Policy{sched.Alternate, sched.Symbiotic} {
			t.Run(cn+"/"+pol.String(), func(t *testing.T) {
				opt, ref := equivOptions(false), equivOptions(true)
				opt.Policy, ref.Policy = pol, pol
				got, err := Run(Pair(cg, ft), cfg, opt)
				if err != nil {
					t.Fatal(err)
				}
				want, err := Run(Pair(cg, ft), cfg, ref)
				if err != nil {
					t.Fatal(err)
				}
				compareRuns(t, got, want)
			})
		}
	}
}

func compareRuns(t *testing.T, got, want *RunResult) {
	t.Helper()
	if got.WallCycles != want.WallCycles {
		t.Errorf("wall cycles: optimized %d, reference %d", got.WallCycles, want.WallCycles)
	}
	if len(got.Programs) != len(want.Programs) {
		t.Fatalf("program count: optimized %d, reference %d", len(got.Programs), len(want.Programs))
	}
	for i := range got.Programs {
		g, w := &got.Programs[i], &want.Programs[i]
		if g.Cycles != w.Cycles {
			t.Errorf("%s: finish cycle: optimized %d, reference %d", g.Benchmark, g.Cycles, w.Cycles)
		}
		for _, e := range counters.Events() {
			if gv, wv := g.Counters.Get(e), w.Counters.Get(e); gv != wv {
				t.Errorf("%s: %v: optimized %d, reference %d (Δ %+d)",
					g.Benchmark, e, gv, wv, int64(gv)-int64(wv))
			}
		}
	}
}
