package core

import (
	"strings"
	"testing"

	"xeonomp/internal/golden"
)

func fabricatedArtifacts(t *testing.T) []*golden.Artifact {
	t.Helper()
	s := fabricatedStudy()
	opt := DefaultOptions()
	opt.Scale = 0.5
	opt.Seed = 3
	s.opt = opt
	arts, err := s.Artifacts()
	if err != nil {
		t.Fatal(err)
	}
	return arts
}

func artifactByName(t *testing.T, arts []*golden.Artifact, name string) *golden.Artifact {
	t.Helper()
	for _, a := range arts {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no artifact %q in %d artifacts", name, len(arts))
	return nil
}

func metricValue(t *testing.T, a *golden.Artifact, id string) float64 {
	t.Helper()
	for _, m := range a.Metrics {
		if m.ID == id {
			return m.Value
		}
	}
	t.Fatalf("%s: no metric %q", a.Name, id)
	return 0
}

// The exporter mirrors the renderer: the same fabricated study that draws
// 8.000 in the Figure-3 table exports speedup 8 under the same cell name,
// stamped with the options it ran under.
func TestSingleStudyArtifactsMatchRenderer(t *testing.T) {
	arts := fabricatedArtifacts(t)
	if len(arts) != 4 {
		t.Fatalf("%d artifacts, want 4", len(arts))
	}
	fig3 := artifactByName(t, arts, "figure3")
	if v := metricValue(t, fig3, "XX/HT on -8-2/speedup"); v != 8 {
		t.Fatalf("speedup = %v, want 8", v)
	}
	if fig3.Scale != 0.5 || fig3.Seed != 3 {
		t.Fatalf("provenance = scale %v seed %d", fig3.Scale, fig3.Seed)
	}
	t2 := artifactByName(t, arts, "table2")
	if v := metricValue(t, t2, "CMT-based SMP/avg_speedup"); v != 8 {
		t.Fatalf("table2 avg = %v, want 8", v)
	}
	fig2 := artifactByName(t, arts, "figure2")
	if v := metricValue(t, fig2, "XX/HT on -8-2/dtlb_normalized"); v != 8 {
		t.Fatalf("dtlb_normalized = %v, want 8", v)
	}
	// 9 panels x 2 benchmarks x 8 configurations.
	if len(fig2.Metrics) != 9*2*8 {
		t.Fatalf("figure2 has %d metrics, want %d", len(fig2.Metrics), 9*2*8)
	}
}

// Raw counters are exported with the exact band: a single-count change in
// one cell must fail the check, naming the cell.
func TestCountersArtifactIsExact(t *testing.T) {
	arts := fabricatedArtifacts(t)
	raw := artifactByName(t, arts, "single-counters")
	if raw.DefaultTol != golden.Exact() {
		t.Fatalf("counters tolerance = %v, want exact", raw.DefaultTol)
	}
	live := fabricatedArtifacts(t)
	lraw := artifactByName(t, live, "single-counters")
	for i := range lraw.Metrics {
		if lraw.Metrics[i].ID == "YY/Serial/l2_miss" {
			lraw.Metrics[i].Value++
		}
	}
	rep, err := golden.Compare(raw, lraw)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("single-count perturbation passed the exact band")
	}
	if !strings.Contains(rep.String(), "YY/Serial/l2_miss") {
		t.Fatalf("drift report does not name the cell:\n%s", rep)
	}
}

// Serialize → reload → compare is a fixed point for a study export.
func TestStudyArtifactsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, a := range fabricatedArtifacts(t) {
		if err := golden.Write(dir, a); err != nil {
			t.Fatal(err)
		}
	}
	stored, err := golden.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	live := fabricatedArtifacts(t)
	for _, g := range stored {
		rep, err := golden.Compare(g, artifactByName(t, live, g.Name))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("round trip drifted:\n%s", rep)
		}
	}
}

// A deliberate change to a derived-metric formula — here simulated by
// scaling a speedup the way a broken Speedup() would — fails against the
// stored artifact with a named cell.
func TestPerturbedFormulaFailsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, a := range fabricatedArtifacts(t) {
		if err := golden.Write(dir, a); err != nil {
			t.Fatal(err)
		}
	}
	stored, err := golden.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	live := fabricatedArtifacts(t)
	fig3 := artifactByName(t, live, "figure3")
	for i := range fig3.Metrics {
		fig3.Metrics[i].Value *= 1.02 // 2% shift, far outside rel 1e-6
	}
	var g *golden.Artifact
	for _, a := range stored {
		if a.Name == "figure3" {
			g = a
		}
	}
	rep, err := golden.Compare(g, fig3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || len(rep.Drifts) != len(g.Metrics) {
		t.Fatalf("perturbed formula: %d drifts of %d metrics", len(rep.Drifts), len(g.Metrics))
	}
	if !strings.Contains(rep.String(), "/speedup") {
		t.Fatalf("no cell named:\n%s", rep)
	}
}
