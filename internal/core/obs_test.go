package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"xeonomp/internal/journal"
	"xeonomp/internal/obs"
	"xeonomp/internal/runcache"
)

// TestCachedRerunMetricsHitRate pins the -metrics-out contract end to
// end: a warm rerun over a populated cache serves every cell from cache,
// and the metrics snapshot proves it — computed cells zero, cached cells
// equal to the run's total, every serve a memory hit.
func TestCachedRerunMetricsHitRate(t *testing.T) {
	opt := quickOptions()
	var err error
	opt.Cache, err = runcache.New(0, "")
	if err != nil {
		t.Fatal(err)
	}

	obs.Default.Reset()
	if err := NewSingleStudy().Run(context.Background(), opt); err != nil {
		t.Fatal(err)
	}
	cold := obs.Default.Snapshot()
	if cold.Counters[obs.MetricCoreCellsComputed] == 0 {
		t.Fatal("cold run computed no cells")
	}

	obs.Default.Reset()
	if err := NewSingleStudy().Run(context.Background(), opt); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.Default.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("metrics snapshot is not valid JSON: %v", err)
	}
	computed := snap.Counters[obs.MetricCoreCellsComputed]
	cached := snap.Counters[obs.MetricCoreCellsCached]
	if computed != 0 || cached == 0 {
		t.Fatalf("warm rerun computed %d cells, served %d; want hit rate 1.0", computed, cached)
	}
	if hits := snap.Counters[obs.MetricRuncacheMemHits]; hits != cached {
		t.Fatalf("memory hits %d != cells served %d", hits, cached)
	}
	if snap.Histograms[obs.MetricCoreCellNs].Count != cached {
		t.Fatalf("cell latency histogram saw %d cells, want %d", snap.Histograms[obs.MetricCoreCellNs].Count, cached)
	}
}

// TestObsOverhead pins the observability tax with tracing off: the
// per-cell instrumentation bundle — span start/end against a nil tracer,
// pprof labels, timers, counters, histogram — measured hot, must cost
// under 2% of a real study's wall time per cell.
func TestObsOverhead(t *testing.T) {
	obs.SetTracer(nil)
	ctx := context.Background()
	const reps = 100_000
	bt := obs.StartTimer()
	for i := 0; i < reps; i++ {
		sctx, sp := obs.StartSpan(ctx, "cell", "benchmark", "CG", "config", "CMT")
		tm := obs.StartTimer()
		obs.DoCell(sctx, "CG", "CMT", func(context.Context) {})
		obsCellNs.Observe(tm.ElapsedNs())
		obsCellsComputed.Inc()
		obsWorkers.Set(1)
		sp.SetArg("cached", "false")
		sp.End()
	}
	perCell := float64(bt.ElapsedNs()) / reps

	obs.Default.Reset()
	st := obs.StartTimer()
	if _, err := runSingleStudy(quickOptions()); err != nil {
		t.Fatal(err)
	}
	wall := float64(st.ElapsedNs())
	snap := obs.Default.Snapshot()
	cells := float64(snap.Counters[obs.MetricCoreCellsComputed] + snap.Counters[obs.MetricCoreCellsCached])
	if cells == 0 || wall <= 0 {
		t.Fatalf("degenerate measurement: %v cells in %v ns", cells, wall)
	}
	overhead := perCell * cells / wall
	if overhead > 0.02 {
		t.Fatalf("instrumentation overhead %.4f (%.0f ns/cell over %d cells, study %.0f ns); budget is 2%%",
			overhead, perCell, int(cells), wall)
	}
}

func TestForEachJobHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := forEachJob(ctx, 10, 1, func(_ context.Context, i int) error {
		calls++
		if i == 1 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 2 {
		t.Fatalf("fn ran %d times after cancellation at job 1", calls)
	}

	// Parallel path: workers drain remaining jobs without running them.
	pctx, pcancel := context.WithCancel(context.Background())
	pcancel()
	ran := 0
	err = forEachJob(pctx, 1000, 4, func(_ context.Context, i int) error {
		ran++
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Fatalf("%d jobs ran under a pre-cancelled context", ran)
	}
}

// cancelOnWrite cancels a context the first time anything is written —
// wired into the progress reporter, it cancels the study right after the
// first cell completes, simulating Ctrl-C mid-run.
type cancelOnWrite struct{ cancel context.CancelFunc }

func (w cancelOnWrite) Write(p []byte) (int, error) {
	w.cancel()
	return len(p), nil
}

// TestStudyCancellationLeavesReplayableJournal pins the Ctrl-C contract:
// cancelling mid-study stops between cells with context.Canceled, and the
// journal tail stays clean — every recorded cell replays into a resumed
// run that completes the study.
func TestStudyCancellationLeavesReplayableJournal(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "run.jsonl")
	jn, err := journal.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := quickOptions()
	opt.Journal = jn
	opt.Progress = journal.NewProgress(cancelOnWrite{cancel}, time.Nanosecond)

	err = NewSingleStudy().Run(ctx, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted study returned %v, want context.Canceled", err)
	}
	if err := jn.Close(); err != nil {
		t.Fatal(err)
	}

	replay, err := journal.Open(jpath)
	if err != nil {
		t.Fatalf("journal did not reopen after interruption: %v", err)
	}
	defer replay.Close()
	recorded := replay.Len()
	if recorded == 0 {
		t.Fatal("no cells recorded before cancellation")
	}

	obs.Default.Reset()
	resOpt := quickOptions()
	resOpt.Journal = replay
	if err := NewSingleStudy().Run(context.Background(), resOpt); err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	snap := obs.Default.Snapshot()
	if served := snap.Counters[obs.MetricJournalReplayServes]; served == 0 {
		t.Fatalf("resumed run replayed nothing from %d recorded cells", recorded)
	}
}
