package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"xeonomp/internal/config"
	"xeonomp/internal/golden"
	"xeonomp/internal/obs"
	"xeonomp/internal/profiles"
	"xeonomp/internal/stats"
)

// Study is the one seam every experiment driver shares: Run executes the
// study's cells under opt (storing opt for provenance), honoring ctx
// cancellation between cells, and Artifacts serializes the finished study
// as golden regression artifacts stamped with the Options it ran under.
// NewSingleStudy, NewPairStudy and NewCrossStudy build the three studies
// of the paper.
type Study interface {
	Run(ctx context.Context, opt Options) error
	Artifacts() ([]*golden.Artifact, error)
}

// StudyNames lists the studies NewStudy can build, in paper order.
func StudyNames() []string { return []string{"single", "pair", "cross"} }

// NewStudy builds an empty study by its short name: "single" (Figures
// 2/3, Table 2), "pair" (Figure 4) or "cross" (Figure 5). The experiment
// server and CLI share this registry, so a study name means the same
// cells everywhere.
func NewStudy(name string) (Study, error) {
	switch name {
	case "single":
		return NewSingleStudy(), nil
	case "pair":
		return NewPairStudy(), nil
	case "cross":
		return NewCrossStudy(), nil
	}
	return nil, fmt.Errorf("core: unknown study %q (have %v)", name, StudyNames())
}

// StudyCells returns how many simulation cells study name will run —
// the admission-control estimate the experiment server budgets requests
// with. It mirrors the AddTotal accounting of each study's Run.
func StudyCells(name string) (int, error) {
	switch name {
	case "single":
		return len(profiles.StudiedNames()) * len(config.Table1()), nil
	case "pair":
		wls, err := Figure4Workloads()
		if err != nil {
			return 0, err
		}
		uniq := map[string]bool{}
		for _, w := range wls {
			for _, p := range w.Programs {
				uniq[p.Name] = true
			}
		}
		return len(uniq) + len(wls)*len(config.Table1()), nil
	case "cross":
		pairs, err := CrossPairs()
		if err != nil {
			return 0, err
		}
		return len(profiles.StudiedNames()) + len(pairs)*len(config.Multithreaded()), nil
	}
	return 0, fmt.Errorf("core: unknown study %q (have %v)", name, StudyNames())
}

// forEachJob runs fn over 0..n-1 with the given worker count (<=1 means
// sequential). Workers always drain the job channel — even after a
// failure or context cancellation — so the producer can never deadlock;
// remaining jobs are skipped once any worker has failed or ctx is done,
// and all worker errors (including ctx.Err) are aggregated with
// errors.Join. Every run uses its own Machine, so parallel execution
// cannot change results — TestStudiesWorkerInvariant pins that.
//
// Each worker goroutine gets its own trace lane, so concurrent cells
// render as parallel tracks, and the pool reports its size and busy
// fraction to the core.workers / core.worker_utilization gauges.
func forEachJob(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	obsWorkers.Set(float64(workers))
	wall := obs.StartTimer()
	var busyNs atomic.Int64
	jobs := make(chan int)
	errCh := make(chan error, workers)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			wctx := obs.WithLane(ctx, lane)
			var errs []error
			for i := range jobs {
				if failed.Load() || ctx.Err() != nil {
					continue // keep draining so the producer never blocks
				}
				t := obs.StartTimer()
				err := fn(wctx, i)
				busyNs.Add(t.ElapsedNs())
				if err != nil {
					failed.Store(true)
					errs = append(errs, err)
				}
			}
			errCh <- errors.Join(errs...)
		}(w + 1)
	}
	for i := 0; i < n; i++ {
		//xeonlint:ignore ctxflow workers drain jobs even after a failure (they keep ranging and skip work), so this send cannot block forever
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	close(errCh)
	obsWorkerUtil.Set(wall.Utilization(busyNs.Load(), workers))
	var all []error
	for err := range errCh {
		if err != nil {
			all = append(all, err)
		}
	}
	if err := ctx.Err(); err != nil {
		all = append(all, err)
	}
	return errors.Join(all...)
}

// CellKey addresses one (benchmark, configuration) cell of a study.
type CellKey struct {
	Benchmark string
	Config    string
}

// SingleStudy holds the single-program experiment behind Figure 2 (counter
// metrics), Figure 3 (speedups) and Table 2 (average speedup per
// architecture).
type SingleStudy struct {
	Benchmarks []string
	Configs    []config.Configuration
	Results    map[CellKey]*RunResult
	Baselines  map[string]int64 // serial wall cycles per benchmark
	DTLBSerial map[string]float64

	opt Options // the Options Run executed under; Artifacts stamps from it
}

// NewSingleStudy returns an empty single-program study; Run populates it.
func NewSingleStudy() *SingleStudy { return &SingleStudy{} }

// Run executes every studied benchmark under every Table-1 configuration,
// stopping between cells when ctx is canceled.
func (s *SingleStudy) Run(ctx context.Context, opt Options) error {
	ctx, sp := obs.StartSpan(ctx, "study", "name", "single")
	defer sp.End()
	s.opt = opt
	s.Benchmarks = profiles.StudiedNames()
	s.Configs = config.Table1()
	s.Results = map[CellKey]*RunResult{}
	s.Baselines = map[string]int64{}
	s.DTLBSerial = map[string]float64{}
	type job struct {
		bench string
		cfg   config.Configuration
	}
	var jobs []job
	for _, bn := range s.Benchmarks {
		for _, cfg := range s.Configs {
			jobs = append(jobs, job{bn, cfg})
		}
	}
	opt.Progress.AddTotal(len(jobs))
	var mu sync.Mutex
	return forEachJob(ctx, len(jobs), opt.Workers, func(ctx context.Context, i int) error {
		j := jobs[i]
		prof, err := profiles.ByName(j.bench)
		if err != nil {
			return err
		}
		res, err := RunSingleContext(ctx, prof, j.cfg, opt)
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		s.Results[CellKey{j.bench, j.cfg.Name}] = res
		if j.cfg.Arch == config.Serial {
			s.Baselines[j.bench] = res.WallCycles
			s.DTLBSerial[j.bench] = res.Programs[0].Metrics.DTLBMisses
		}
		return nil
	})
}

// Result returns the run for (benchmark, configuration name).
func (s *SingleStudy) Result(bench, cfgName string) (*RunResult, error) {
	r, ok := s.Results[CellKey{bench, cfgName}]
	if !ok {
		return nil, fmt.Errorf("core: no result for %s on %s", bench, cfgName)
	}
	return r, nil
}

// Speedup returns benchmark bench's speedup over serial on cfgName
// (Figure 3).
func (s *SingleStudy) Speedup(bench, cfgName string) (float64, error) {
	r, err := s.Result(bench, cfgName)
	if err != nil {
		return 0, err
	}
	base, ok := s.Baselines[bench]
	if !ok {
		return 0, fmt.Errorf("core: no serial baseline for %s", bench)
	}
	return Speedup(base, r.WallCycles), nil
}

// DTLBNormalized returns the benchmark's DTLB load+store misses on cfgName
// normalized to its serial run (the Figure-2 DTLB panel).
func (s *SingleStudy) DTLBNormalized(bench, cfgName string) (float64, error) {
	r, err := s.Result(bench, cfgName)
	if err != nil {
		return 0, err
	}
	base := s.DTLBSerial[bench]
	return stats.Ratio(r.Programs[0].Metrics.DTLBMisses, base), nil
}

// Table2 returns the average speedup across all studied benchmarks for each
// multithreaded architecture, keyed by architecture, plus the ordered
// architecture list (Table 2 of the paper).
func (s *SingleStudy) Table2() ([]config.Arch, map[config.Arch]float64, error) {
	var archs []config.Arch
	avg := map[config.Arch]float64{}
	for _, cfg := range s.Configs {
		if cfg.Arch == config.Serial {
			continue
		}
		var sp []float64
		for _, bn := range s.Benchmarks {
			v, err := s.Speedup(bn, cfg.Name)
			if err != nil {
				return nil, nil, err
			}
			sp = append(sp, v)
		}
		archs = append(archs, cfg.Arch)
		avg[cfg.Arch] = stats.Mean(sp)
	}
	return archs, avg, nil
}

// PairStudy is the fixed-pair multi-program experiment behind Figure 4:
// CG/FT (complementary), FT/FT and CG/CG (identical pairs).
type PairStudy struct {
	Workloads []Workload
	Configs   []config.Configuration
	// Results[workloadName][cfgName] is the pair run.
	Results   map[string]map[string]*RunResult
	Baselines map[string]int64

	opt Options // the Options Run executed under; Artifacts stamps from it
}

// NewPairStudy returns an empty fixed-pair study; Run populates it.
func NewPairStudy() *PairStudy { return &PairStudy{} }

// Figure4Workloads returns the paper's three multi-program workloads.
func Figure4Workloads() ([]Workload, error) {
	cg, err := profiles.ByName("CG")
	if err != nil {
		return nil, err
	}
	ft, err := profiles.ByName("FT")
	if err != nil {
		return nil, err
	}
	return []Workload{Pair(cg, ft), Pair(ft, ft), Pair(cg, cg)}, nil
}

// Run executes the Figure-4 workloads under every configuration, stopping
// between cells when ctx is canceled.
func (s *PairStudy) Run(ctx context.Context, opt Options) error {
	ctx, sp := obs.StartSpan(ctx, "study", "name", "pair")
	defer sp.End()
	wls, err := Figure4Workloads()
	if err != nil {
		return err
	}
	s.opt = opt
	s.Workloads = wls
	s.Configs = config.Table1()
	s.Results = map[string]map[string]*RunResult{}
	s.Baselines = map[string]int64{}
	uniq := map[string]bool{}
	for _, w := range wls {
		for _, p := range w.Programs {
			uniq[p.Name] = true
		}
	}
	opt.Progress.AddTotal(len(uniq) + len(wls)*len(s.Configs))
	for _, w := range wls {
		s.Results[w.Name()] = map[string]*RunResult{}
		for _, p := range w.Programs {
			if _, ok := s.Baselines[p.Name]; !ok {
				base, err := SerialBaselineContext(ctx, p, opt)
				if err != nil {
					return err
				}
				s.Baselines[p.Name] = base.WallCycles
			}
		}
		for _, cfg := range s.Configs {
			res, err := RunContext(ctx, w, cfg, opt)
			if err != nil {
				return err
			}
			s.Results[w.Name()][cfg.Name] = res
		}
	}
	return nil
}

// ProgramSpeedup returns program pi's speedup over its dedicated serial run
// within workload wl on configuration cfgName.
func (s *PairStudy) ProgramSpeedup(wl Workload, pi int, cfgName string) (float64, error) {
	res, ok := s.Results[wl.Name()][cfgName]
	if !ok {
		return 0, fmt.Errorf("core: no pair result for %s on %s", wl.Name(), cfgName)
	}
	if pi < 0 || pi >= len(res.Programs) {
		return 0, fmt.Errorf("core: program index %d", pi)
	}
	base, ok := s.Baselines[res.Programs[pi].Benchmark]
	if !ok {
		return 0, fmt.Errorf("core: no baseline for %s", res.Programs[pi].Benchmark)
	}
	return Speedup(base, res.Programs[pi].Cycles), nil
}

// CrossStudy is the all-pairs experiment behind Figure 5: every unordered
// pair of studied benchmarks (including identical pairs) on every
// multithreaded configuration, summarized as a box plot of per-program
// speedups per configuration.
type CrossStudy struct {
	Configs []config.Configuration
	// Samples[cfgName] holds one speedup per program instance per pair.
	Samples map[string][]float64
	Boxes   map[string]stats.BoxPlot
	// PairSpeedups[cfgName][pairName] lists the two program speedups.
	PairSpeedups map[string]map[string][]float64

	opt Options // the Options Run executed under; Artifacts stamps from it
}

// NewCrossStudy returns an empty all-pairs study; Run populates it.
func NewCrossStudy() *CrossStudy { return &CrossStudy{} }

// CrossPairs returns the unordered benchmark pairs (with replacement) of
// the studied set, in deterministic order.
func CrossPairs() ([][2]string, error) {
	names := profiles.StudiedNames()
	sort.Strings(names)
	var out [][2]string
	for i := 0; i < len(names); i++ {
		for j := i; j < len(names); j++ {
			out = append(out, [2]string{names[i], names[j]})
		}
	}
	return out, nil
}

// Run executes the full cross-product, stopping between cells when ctx is
// canceled.
func (s *CrossStudy) Run(ctx context.Context, opt Options) error {
	ctx, sp := obs.StartSpan(ctx, "study", "name", "cross")
	defer sp.End()
	pairs, err := CrossPairs()
	if err != nil {
		return err
	}
	s.opt = opt
	s.Configs = config.Multithreaded()
	s.Samples = map[string][]float64{}
	s.Boxes = map[string]stats.BoxPlot{}
	s.PairSpeedups = map[string]map[string][]float64{}
	opt.Progress.AddTotal(len(profiles.StudiedNames()))
	baselines := map[string]int64{}
	for _, name := range profiles.StudiedNames() {
		p, err := profiles.ByName(name)
		if err != nil {
			return err
		}
		base, err := SerialBaselineContext(ctx, p, opt)
		if err != nil {
			return err
		}
		baselines[name] = base.WallCycles
	}

	type job struct {
		cfg  config.Configuration
		pair [2]string
	}
	var jobs []job
	for _, cfg := range s.Configs {
		s.PairSpeedups[cfg.Name] = map[string][]float64{}
		for _, pr := range pairs {
			jobs = append(jobs, job{cfg, pr})
		}
	}
	opt.Progress.AddTotal(len(jobs))
	var mu sync.Mutex
	err = forEachJob(ctx, len(jobs), opt.Workers, func(ctx context.Context, i int) error {
		j := jobs[i]
		a, err := profiles.ByName(j.pair[0])
		if err != nil {
			return err
		}
		b, err := profiles.ByName(j.pair[1])
		if err != nil {
			return err
		}
		res, err := RunContext(ctx, Pair(a, b), j.cfg, opt)
		if err != nil {
			return err
		}
		var sp []float64
		for _, p := range res.Programs {
			sp = append(sp, Speedup(baselines[p.Benchmark], p.Cycles))
		}
		mu.Lock()
		defer mu.Unlock()
		s.PairSpeedups[j.cfg.Name][j.pair[0]+"/"+j.pair[1]] = sp
		return nil
	})
	if err != nil {
		return err
	}
	// Deterministic sample order: pairs in CrossPairs order per config.
	for _, cfg := range s.Configs {
		for _, pr := range pairs {
			s.Samples[cfg.Name] = append(s.Samples[cfg.Name], s.PairSpeedups[cfg.Name][pr[0]+"/"+pr[1]]...)
		}
		box, err := stats.Box(s.Samples[cfg.Name])
		if err != nil {
			return err
		}
		s.Boxes[cfg.Name] = box
	}
	return nil
}
