package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"xeonomp/internal/config"
	"xeonomp/internal/machine"
	"xeonomp/internal/profiles"
	"xeonomp/internal/sched"
)

func TestRunTrialsVariance(t *testing.T) {
	cg, _ := profiles.ByName("CG")
	cmt, _ := config.ByArch(config.CMT)
	opt := quickOptions()
	ts, err := RunTrials(Single(cg), cmt, opt, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.WallCycles) != 5 {
		t.Fatalf("%d trials recorded, want 5", len(ts.WallCycles))
	}
	if ts.Mean() <= 0 {
		t.Fatal("zero mean wall clock")
	}
	// The paper reports <~1-5% variance between trials; our seeds perturb
	// imbalance and entropy, so the coefficient of variation must be small
	// but typically non-zero.
	cv := ts.CoefVar()
	if cv < 0 || cv > 0.05 {
		t.Fatalf("trial coefficient of variation %v, want < 5%%", cv)
	}
	box, err := ts.Box()
	if err != nil {
		t.Fatal(err)
	}
	if box.N != 5 || box.Min > box.Max {
		t.Fatalf("trial box malformed: %+v", box)
	}
	if len(ts.PerProgram) != 1 || len(ts.PerProgram[0]) != 5 {
		t.Fatal("per-program trials missing")
	}
}

func TestRunTrialsErrors(t *testing.T) {
	cg, _ := profiles.ByName("CG")
	cmt, _ := config.ByArch(config.CMT)
	if _, err := RunTrials(Single(cg), cmt, quickOptions(), 0); err == nil {
		t.Fatal("zero trials accepted")
	}
}

// Mix builds an n-program workload for the scheduler-extension tests.
func mix(t *testing.T, names ...string) Workload {
	t.Helper()
	var w Workload
	for _, n := range names {
		p, err := profiles.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		w.Programs = append(w.Programs, p)
	}
	return w
}

func TestSymbioticPolicyRuns(t *testing.T) {
	w := mix(t, "CG", "FT")
	cmtSMP, _ := config.ByArch(config.CMTSMP)
	opt := quickOptions()
	opt.Policy = sched.Symbiotic
	res, err := Run(w, cmtSMP, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Programs) != 2 {
		t.Fatal("symbiotic run lost programs")
	}
	for _, p := range res.Programs {
		if p.Cycles == 0 {
			t.Fatalf("%s did not finish under symbiotic placement", p.Benchmark)
		}
	}
}

func TestSymbioticFourProgramMix(t *testing.T) {
	// Four programs, two threads each, on the full HT machine: the
	// extension scenario from the paper's future-work direction.
	w := mix(t, "MG", "EP", "SP", "CG")
	cmtSMP, _ := config.ByArch(config.CMTSMP)
	opt := quickOptions()
	opt.Policy = sched.Symbiotic
	res, err := Run(w, cmtSMP, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Programs) != 4 {
		t.Fatal("four-program run lost programs")
	}
	for _, p := range res.Programs {
		if p.Threads != 2 {
			t.Fatalf("%s got %d threads, want 2", p.Benchmark, p.Threads)
		}
	}
}

func TestSymbioticBeatsBlockForMixedLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("scheduler comparison not run in -short mode")
	}
	// The paper's conclusion: smarter placement should beat naive
	// placement for mixed multi-program loads. Compare total throughput
	// (sum of per-program speedups) of symbiotic vs block placement for a
	// heavy+light mix on the full HT machine.
	w := mix(t, "MG", "EP", "SP", "EP")
	cmtSMP, _ := config.ByArch(config.CMTSMP)

	base := DefaultOptions()
	base.Scale = 0.25

	total := func(policy sched.Policy) float64 {
		o := base
		o.Policy = policy
		res, err := Run(w, cmtSMP, o)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, p := range res.Programs {
			prof, _ := profiles.ByName(p.Benchmark)
			serial, err := SerialBaseline(prof, base)
			if err != nil {
				t.Fatal(err)
			}
			sum += Speedup(serial.WallCycles, p.Cycles)
		}
		return sum
	}
	sym := total(sched.Symbiotic)
	blk := total(sched.Block)
	if sym <= blk {
		t.Errorf("symbiotic total %.2f not above block %.2f", sym, blk)
	}
}

func TestDemandEstimates(t *testing.T) {
	cg, _ := profiles.ByName("CG")
	ep, _ := profiles.ByName("EP")
	mg, _ := profiles.ByName("MG")
	if cg.Demand().Bandwidth <= ep.Demand().Bandwidth {
		t.Error("CG must demand more bandwidth than EP")
	}
	if mg.Demand().CacheFootprint <= ep.Demand().CacheFootprint {
		t.Error("MG must demand more cache than EP")
	}
}

func TestHTEfficiencyImprovedWithBusSpeed(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-platform comparison not run in -short mode")
	}
	// The paper: "the efficiency of HT with fewer physical processors has
	// increased from previous observations most likely due to the
	// improvements in memory bus speed." Compare the SMT (one chip, HT on,
	// 2 threads) speedup of the memory-hungry MG on the old Prestonia box
	// vs the paper's Paxville box.
	mg, _ := profiles.ByName("MG")
	opt := DefaultOptions()
	opt.Scale = 0.25

	smtSpeedup := func(mc machine.Config, serialCtx, smtCtxs []config.CtxID) float64 {
		o := opt
		o.Machine = &mc
		serialCfg := config.Configuration{
			Name: "serial", Arch: config.Serial, Threads: 1, Chips: 1, Contexts: serialCtx,
		}
		smtCfg := config.Configuration{
			Name: "smt", Arch: config.SMT, Threads: len(smtCtxs), Chips: 1, Contexts: smtCtxs,
		}
		base, err := Run(Single(mg), serialCfg, o)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Single(mg), smtCfg, o)
		if err != nil {
			t.Fatal(err)
		}
		return Speedup(base.WallCycles, res.WallCycles)
	}

	oneCore := []config.CtxID{{Chip: 0, Core: 0, Thread: 0}}
	htPair := []config.CtxID{{Chip: 0, Core: 0, Thread: 0}, {Chip: 0, Core: 0, Thread: 1}}

	old := smtSpeedup(machine.PrestoniaSMP(), oneCore, htPair)
	new_ := smtSpeedup(machine.PaxvilleSMP(), oneCore, htPair)
	if new_ <= old {
		t.Errorf("HT efficiency did not improve with the faster bus: old %.3f, new %.3f", old, new_)
	}
}

func TestStudiesWorkerInvariant(t *testing.T) {
	// Parallel study execution must produce byte-identical results to the
	// sequential driver (each run owns its machine).
	seq := quickOptions()
	par := quickOptions()
	par.Workers = 4
	s1, err := runSingleStudy(seq)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := runSingleStudy(par)
	if err != nil {
		t.Fatal(err)
	}
	for key, r1 := range s1.Results {
		r2, ok := s2.Results[key]
		if !ok {
			t.Fatalf("parallel study missing %v", key)
		}
		if r1.WallCycles != r2.WallCycles {
			t.Fatalf("%v wall cycles differ: %d vs %d", key, r1.WallCycles, r2.WallCycles)
		}
		if r1.Programs[0].Counters != r2.Programs[0].Counters {
			t.Fatalf("%v counters differ between sequential and parallel drivers", key)
		}
	}
}

func TestRunResultJSONExport(t *testing.T) {
	cg, _ := profiles.ByName("CG")
	cmt, _ := config.ByArch(config.CMT)
	res, err := RunSingle(cg, cmt, quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if decoded["config"] != "HT on -4-1" {
		t.Fatalf("config field = %v", decoded["config"])
	}
	progs := decoded["programs"].([]any)
	if len(progs) != 1 {
		t.Fatal("program missing in export")
	}
	p := progs[0].(map[string]any)
	if p["benchmark"] != "CG" {
		t.Fatal("benchmark field wrong")
	}
	ctrs := p["counters"].(map[string]any)
	if ctrs["instructions"] == nil || ctrs["cycles"] == nil {
		t.Fatal("counters missing from export")
	}
}

func TestStudyJSONExport(t *testing.T) {
	s, err := runSingleStudy(quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Benchmarks []string `json:"benchmarks"`
		Runs       map[string]json.RawMessage
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Benchmarks) != 6 || len(decoded.Runs) != 48 {
		t.Fatalf("study export has %d benchmarks, %d runs", len(decoded.Benchmarks), len(decoded.Runs))
	}
}
