package core

import (
	"fmt"

	"xeonomp/internal/config"
	"xeonomp/internal/counters"
	"xeonomp/internal/golden"
)

// Exporter sits next to the text renderers in render.go: every study that
// can draw itself as tables can also serialize itself as golden regression
// artifacts, so each figure has a machine-readable twin that -check can
// diff against testdata/golden. Provenance (scale, seed) is stamped from
// the Options the study's Run stored, so it can never disagree with the
// values the cells were actually computed under.
type Exporter interface {
	Artifacts() ([]*golden.Artifact, error)
}

// derivedEps is the relative tolerance for float-derived metrics (miss
// rates, percentages, CPI, speedups). The simulator is deterministic, so
// the band only needs to absorb floating-point variation across Go
// versions and architectures (e.g. fused multiply-add contraction), not
// measurement noise; a real formula change moves metrics orders of
// magnitude more than this.
const derivedEps = 1e-6

// stamp records the run provenance Compare checks before diffing metrics.
func stamp(a *golden.Artifact, opt Options) *golden.Artifact {
	a.Scale = opt.Scale
	a.Seed = opt.Seed
	return a
}

// counterID keys a raw counter cell: "BENCH/CONFIG/EVENT".
func counterID(bench, cfg, event string) string {
	return bench + "/" + cfg + "/" + event
}

// Artifacts serializes the single-program study as four artifacts:
// "single-counters" (raw event counts and cycle totals, exact),
// "figure2" (the nine derived panels), "figure3" (speedups over serial)
// and "table2" (average speedup per architecture).
func (s *SingleStudy) Artifacts() ([]*golden.Artifact, error) {
	raw := golden.New("single-counters", golden.Exact())
	raw.Note = "raw performance counters per (benchmark, configuration) cell; deterministic, matched exactly"
	for _, bn := range s.Benchmarks {
		for _, cfg := range s.Configs {
			r, err := s.Result(bn, cfg.Name)
			if err != nil {
				return nil, err
			}
			raw.Add(counterID(bn, cfg.Name, "wall_cycles"), float64(r.WallCycles))
			raw.Add(counterID(bn, cfg.Name, "program_cycles"), float64(r.Programs[0].Cycles))
			for _, e := range counters.Events() {
				raw.Add(counterID(bn, cfg.Name, e.String()), float64(r.Programs[0].Counters.Get(e)))
			}
		}
	}

	fig2 := golden.New("figure2", golden.Relative(derivedEps))
	fig2.Note = "Figure 2 — the nine counter-derived panels, benchmarks x configurations"
	for _, p := range panels() {
		for _, bn := range s.Benchmarks {
			for _, cfg := range s.Configs {
				var v float64
				if p.Get == nil {
					dv, err := s.DTLBNormalized(bn, cfg.Name)
					if err != nil {
						return nil, err
					}
					v = dv
				} else {
					r, err := s.Result(bn, cfg.Name)
					if err != nil {
						return nil, err
					}
					v = p.Get(r.Programs[0].Metrics)
				}
				fig2.Add(bn+"/"+cfg.Name+"/"+p.Slug, v)
			}
		}
	}

	fig3 := golden.New("figure3", golden.Relative(derivedEps))
	fig3.Note = "Figure 3 — speedup of each benchmark over its serial run"
	for _, bn := range s.Benchmarks {
		for _, cfg := range s.Configs {
			if cfg.Arch == config.Serial {
				continue
			}
			v, err := s.Speedup(bn, cfg.Name)
			if err != nil {
				return nil, err
			}
			fig3.Add(bn+"/"+cfg.Name+"/speedup", v)
		}
	}

	t2 := golden.New("table2", golden.Relative(derivedEps))
	t2.Note = "Table 2 — average speedup per architecture"
	archs, avg, err := s.Table2()
	if err != nil {
		return nil, err
	}
	for _, a := range archs {
		t2.Add(string(a)+"/avg_speedup", avg[a])
	}

	return []*golden.Artifact{stamp(raw, s.opt), stamp(fig2, s.opt), stamp(fig3, s.opt), stamp(t2, s.opt)}, nil
}

// Artifacts serializes the fixed-pair study as "figure4": per program
// instance per workload the nine panels and the multiprogrammed speedup,
// plus the exact wall cycles of every pair run and serial baseline.
func (s *PairStudy) Artifacts() ([]*golden.Artifact, error) {
	a := golden.New("figure4", golden.Relative(derivedEps))
	a.Note = "Figure 4 — fixed multi-programmed pairs (CG/FT, FT/FT, CG/CG)"
	// s.Baselines is a map; walk workloads for deterministic order.
	seen := map[string]bool{}
	for _, w := range s.Workloads {
		for _, p := range w.Programs {
			if !seen[p.Name] {
				seen[p.Name] = true
				a.AddTol("baseline/"+p.Name+"/wall_cycles", float64(s.Baselines[p.Name]), golden.Exact())
			}
		}
	}
	for _, w := range s.Workloads {
		for _, cfg := range s.Configs {
			res, ok := s.Results[w.Name()][cfg.Name]
			if !ok {
				return nil, fmt.Errorf("core: no pair result for %s on %s", w.Name(), cfg.Name)
			}
			a.AddTol(w.Name()+"/"+cfg.Name+"/wall_cycles", float64(res.WallCycles), golden.Exact())
			for gi := range w.Programs {
				prefix := fmt.Sprintf("%s/%d:%s/%s/", w.Name(), gi, res.Programs[gi].Benchmark, cfg.Name)
				a.AddTol(prefix+"cycles", float64(res.Programs[gi].Cycles), golden.Exact())
				sp, err := s.ProgramSpeedup(w, gi, cfg.Name)
				if err != nil {
					return nil, err
				}
				a.Add(prefix+"speedup", sp)
				for _, p := range panels() {
					if p.Get == nil {
						continue // DTLB normalization is a single-program view
					}
					a.Add(prefix+p.Slug, p.Get(res.Programs[gi].Metrics))
				}
			}
		}
	}
	return []*golden.Artifact{stamp(a, s.opt)}, nil
}

// Artifacts serializes the all-pairs study as "figure5": every per-program
// speedup of every pair on every configuration, plus the box-plot summary
// the figure draws.
func (s *CrossStudy) Artifacts() ([]*golden.Artifact, error) {
	pairs, err := CrossPairs()
	if err != nil {
		return nil, err
	}
	a := golden.New("figure5", golden.Relative(derivedEps))
	a.Note = "Figure 5 — cross-product multi-programmed speedups and their box-plot summary"
	for _, cfg := range s.Configs {
		for _, pr := range pairs {
			sp, ok := s.PairSpeedups[cfg.Name][pr[0]+"/"+pr[1]]
			if !ok {
				return nil, fmt.Errorf("core: no cross result for %s/%s on %s", pr[0], pr[1], cfg.Name)
			}
			for i, v := range sp {
				a.Add(fmt.Sprintf("%s/%s/%s/speedup.%d", cfg.Name, pr[0], pr[1], i), v)
			}
		}
		box := s.Boxes[cfg.Name]
		base := cfg.Name + "/box/"
		a.Add(base+"min", box.Min)
		a.Add(base+"q1", box.Q1)
		a.Add(base+"median", box.Median)
		a.Add(base+"q3", box.Q3)
		a.Add(base+"max", box.Max)
		a.AddTol(base+"n", float64(box.N), golden.Exact())
	}
	return []*golden.Artifact{stamp(a, s.opt)}, nil
}
