package core

import (
	"fmt"
	"os"
	"testing"

	"xeonomp/internal/config"
	"xeonomp/internal/profiles"
)

// TestProbe is a calibration probe driven by env vars (XEONOMP_PROBE=1).
func TestProbe(t *testing.T) {
	if os.Getenv("XEONOMP_PROBE") == "" {
		t.Skip("probe disabled")
	}
	opt := DefaultOptions()
	fmt.Sscanf(os.Getenv("XEONOMP_PROBE_SCALE"), "%g", &opt.Scale)
	if opt.Scale == 0 {
		opt.Scale = 1.0
	}
	var warmKiB uint64
	fmt.Sscanf(os.Getenv("XEONOMP_PROBE_FTWARM"), "%d", &warmKiB)

	ft, _ := profiles.ByName("FT")
	cg, _ := profiles.ByName("CG")
	if warmKiB > 0 {
		ft.Params.WarmBytes = warmKiB * 1024
	}
	serialFT, err := SerialBaseline(ft, opt)
	if err != nil {
		t.Fatal(err)
	}
	serialCG, err := SerialBaseline(cg, opt)
	if err != nil {
		t.Fatal(err)
	}
	cmpSMP, _ := config.ByArch(config.CMPSMP)
	cmtSMP, _ := config.ByArch(config.CMTSMP)
	cmt, _ := config.ByArch(config.CMT)
	r4, err := RunSingle(ft, cmpSMP, opt)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := RunSingle(ft, cmtSMP, opt)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("FT warm=%dKiB scale=%.2f: -4-2 %.3f  -8-2 %.3f  ratio %.3f\n",
		warmKiB, opt.Scale,
		Speedup(serialFT.WallCycles, r4.WallCycles),
		Speedup(serialFT.WallCycles, r8.WallCycles),
		float64(r4.WallCycles)/float64(r8.WallCycles))
	// Pair check at CMT: FT with CG vs FT with FT.
	mixed, err := Run(Workload{Programs: []profiles.Profile{cg, ft}}, cmt, opt)
	if err != nil {
		t.Fatal(err)
	}
	same, err := Run(Workload{Programs: []profiles.Profile{ft, ft}}, cmt, opt)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("  pair@CMT: FT w/CG %.3f  FT w/FT %.3f   CG w/FT %.3f  CG serial base\n",
		Speedup(serialFT.WallCycles, mixed.Programs[1].Cycles),
		Speedup(serialFT.WallCycles, same.Programs[1].Cycles),
		Speedup(serialCG.WallCycles, mixed.Programs[0].Cycles))
}

// TestProbeCG probes CG's -8-2 exception at the env-selected scale.
func TestProbeCG(t *testing.T) {
	if os.Getenv("XEONOMP_PROBE") == "" {
		t.Skip("probe disabled")
	}
	opt := DefaultOptions()
	fmt.Sscanf(os.Getenv("XEONOMP_PROBE_SCALE"), "%g", &opt.Scale)
	if opt.Scale == 0 {
		opt.Scale = 1.0
	}
	cg, _ := profiles.ByName("CG")
	serial, err := SerialBaseline(cg, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []config.Arch{config.CMT, config.CMPSMP, config.CMTSMP} {
		cfg, _ := config.ByArch(a)
		r, err := RunSingle(cg, cfg, opt)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("CG %s: %.3f\n", cfg.Name, Speedup(serial.WallCycles, r.WallCycles))
	}
}
