package core

import (
	"fmt"

	"xeonomp/internal/journal"
	"xeonomp/internal/machine"
	"xeonomp/internal/runcache"
	"xeonomp/internal/sched"
)

// Option mutates an Options under construction; see NewOptions.
type Option func(*Options)

// NewOptions builds run Options from DefaultOptions plus the given
// functional options, and validates the result — so a bad scale or a
// negative worker count fails at construction, where the mistake is, not
// cells later inside a study. The Options struct remains exported for
// callers that prefer literal construction; both paths go through the
// same validation in Run.
func NewOptions(opts ...Option) (Options, error) {
	o := DefaultOptions()
	for _, f := range opts {
		f(&o)
	}
	if err := o.validate(); err != nil {
		return Options{}, err
	}
	return o, nil
}

// WithScale sets the workload scale factor (1.0 = full size).
func WithScale(scale float64) Option {
	return func(o *Options) { o.Scale = scale }
}

// WithSeed sets the trial seed.
func WithSeed(seed uint64) Option {
	return func(o *Options) { o.Seed = seed }
}

// WithPolicy sets the thread-placement policy.
func WithPolicy(p sched.Policy) Option {
	return func(o *Options) { o.Policy = p }
}

// WithMachine sets the platform; nil keeps machine.PaxvilleSMP.
func WithMachine(m *machine.Config) Option {
	return func(o *Options) { o.Machine = m }
}

// WithCycleLimit bounds each run's cycles (0 = unlimited).
func WithCycleLimit(limit int64) Option {
	return func(o *Options) { o.CycleLimit = limit }
}

// WithWarmupFrac sets the counter-warmup fraction in [0,1).
func WithWarmupFrac(frac float64) Option {
	return func(o *Options) { o.WarmupFrac = frac }
}

// WithSampleInterval attaches the counter sampler with the given window in
// cycles (0 = off).
func WithSampleInterval(interval int64) Option {
	return func(o *Options) { o.SampleInterval = interval }
}

// WithWorkers parallelizes the study drivers (<= 1 = sequential).
func WithWorkers(n int) Option {
	return func(o *Options) { o.Workers = n }
}

// WithCache memoizes simulation cells in the given run cache.
func WithCache(c *runcache.Cache) Option {
	return func(o *Options) { o.Cache = c }
}

// WithJournal records computed cells to (and resumes from) the journal.
func WithJournal(j *journal.Journal) Option {
	return func(o *Options) { o.Journal = j }
}

// WithProgress wires the stderr progress reporter.
func WithProgress(p *journal.Progress) Option {
	return func(o *Options) { o.Progress = p }
}

// WithBackend routes cell execution through b (nil = Local()); see the
// Backend interface for the seam's contract.
func WithBackend(b Backend) Option {
	return func(o *Options) { o.Backend = b }
}

// validateBounds holds the checks shared by NewOptions and Run beyond the
// historical scale/warmup ones; kept with the options so a new field's
// option and its validation land together.
func (o Options) validateBounds() error {
	if o.Workers < 0 {
		return fmt.Errorf("core: workers %d", o.Workers)
	}
	if o.CycleLimit < 0 {
		return fmt.Errorf("core: cycle limit %d", o.CycleLimit)
	}
	if o.SampleInterval < 0 {
		return fmt.Errorf("core: sample interval %d", o.SampleInterval)
	}
	return nil
}
