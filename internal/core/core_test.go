package core

import (
	"context"
	"strings"
	"testing"

	"xeonomp/internal/config"
	"xeonomp/internal/counters"
	"xeonomp/internal/profiles"
	"xeonomp/internal/sched"
)

// quickOptions keeps unit-test runs fast; shape assertions use testOptions.
func quickOptions() Options {
	o := DefaultOptions()
	o.Scale = 0.02
	return o
}

// runSingleStudy / runPairStudy / runCrossStudy run a fresh study to
// completion — the run-and-return shorthand tests in this package share.
func runSingleStudy(opt Options) (*SingleStudy, error) {
	s := NewSingleStudy()
	if err := s.Run(context.Background(), opt); err != nil {
		return nil, err
	}
	return s, nil
}

func runPairStudy(opt Options) (*PairStudy, error) {
	s := NewPairStudy()
	if err := s.Run(context.Background(), opt); err != nil {
		return nil, err
	}
	return s, nil
}

func runCrossStudy(opt Options) (*CrossStudy, error) {
	s := NewCrossStudy()
	if err := s.Run(context.Background(), opt); err != nil {
		return nil, err
	}
	return s, nil
}

func TestOptionsValidation(t *testing.T) {
	bad := DefaultOptions()
	bad.Scale = 0
	cg, _ := profiles.ByName("CG")
	serial, _ := config.ByArch(config.Serial)
	if _, err := RunSingle(cg, serial, bad); err == nil {
		t.Error("zero scale accepted")
	}
	bad = DefaultOptions()
	bad.WarmupFrac = 1.0
	if _, err := RunSingle(cg, serial, bad); err == nil {
		t.Error("warmup fraction 1.0 accepted")
	}
	if _, err := Run(Workload{}, serial, DefaultOptions()); err == nil {
		t.Error("empty workload accepted")
	}
}

func TestWorkloadName(t *testing.T) {
	cg, _ := profiles.ByName("CG")
	ft, _ := profiles.ByName("FT")
	if Single(cg).Name() != "CG" {
		t.Error("single name wrong")
	}
	if Pair(cg, ft).Name() != "CG/FT" {
		t.Error("pair name wrong")
	}
}

func TestThreadsPerProgram(t *testing.T) {
	cmtSMP, _ := config.ByArch(config.CMTSMP)
	serial, _ := config.ByArch(config.Serial)
	if threadsPerProgram(cmtSMP, 1) != 8 {
		t.Error("single program should use the configuration thread count")
	}
	if threadsPerProgram(cmtSMP, 2) != 4 {
		t.Error("pair should split contexts evenly")
	}
	if threadsPerProgram(serial, 2) != 1 {
		t.Error("serial pair should clamp to one thread each")
	}
}

func TestRunSingleOnEveryConfiguration(t *testing.T) {
	cg, _ := profiles.ByName("CG")
	opt := quickOptions()
	for _, cfg := range config.Table1() {
		res, err := RunSingle(cg, cfg, opt)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if res.WallCycles <= 0 {
			t.Fatalf("%s: no cycles", cfg.Name)
		}
		p := res.Programs[0]
		if p.Threads != cfg.Threads {
			t.Fatalf("%s: threads %d, want %d", cfg.Name, p.Threads, cfg.Threads)
		}
		if p.Counters.Get(counters.Instructions) == 0 {
			t.Fatalf("%s: no instructions retired", cfg.Name)
		}
		if p.Metrics.CPI <= 0 {
			t.Fatalf("%s: CPI %v", cfg.Name, p.Metrics.CPI)
		}
		if p.Cycles <= 0 || p.Cycles > res.WallCycles {
			t.Fatalf("%s: program cycles %d outside wall %d", cfg.Name, p.Cycles, res.WallCycles)
		}
	}
}

func TestRunIsDeterministic(t *testing.T) {
	mg, _ := profiles.ByName("MG")
	cmt, _ := config.ByArch(config.CMT)
	opt := quickOptions()
	r1, err := RunSingle(mg, cmt, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunSingle(mg, cmt, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r1.WallCycles != r2.WallCycles {
		t.Fatalf("non-deterministic: %d vs %d", r1.WallCycles, r2.WallCycles)
	}
	if r1.Programs[0].Counters != r2.Programs[0].Counters {
		t.Fatal("counters differ between identical runs")
	}
}

func TestDifferentSeedsAreIndependentTrials(t *testing.T) {
	mg, _ := profiles.ByName("MG")
	cmt, _ := config.ByArch(config.CMT)
	o1 := quickOptions()
	o2 := quickOptions()
	o2.Seed = 99
	r1, _ := RunSingle(mg, cmt, o1)
	r2, _ := RunSingle(mg, cmt, o2)
	if r1.WallCycles == r2.WallCycles {
		t.Fatal("different seeds produced identical wall clocks (suspicious)")
	}
}

func TestRunPairSplitsThreads(t *testing.T) {
	cg, _ := profiles.ByName("CG")
	ft, _ := profiles.ByName("FT")
	cmpSMP, _ := config.ByArch(config.CMPSMP)
	res, err := Run(Pair(cg, ft), cmpSMP, quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Programs) != 2 {
		t.Fatal("pair run missing programs")
	}
	for _, p := range res.Programs {
		if p.Threads != 2 {
			t.Fatalf("program %s threads %d, want 2", p.Benchmark, p.Threads)
		}
		if p.Counters.Get(counters.Instructions) == 0 {
			t.Fatalf("program %s retired nothing", p.Benchmark)
		}
	}
}

func TestRunPairOnSerialTimeslices(t *testing.T) {
	// Two programs, one logical CPU: the Linux-scheduler model must
	// time-slice and both must finish.
	cg, _ := profiles.ByName("CG")
	ft, _ := profiles.ByName("FT")
	serial, _ := config.ByArch(config.Serial)
	res, err := Run(Pair(cg, ft), serial, quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Programs {
		if p.Cycles == 0 {
			t.Fatalf("program %s never finished", p.Benchmark)
		}
	}
	// Serialization: the wall clock must exceed either program alone.
	solo, err := RunSingle(cg, serial, quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.WallCycles <= solo.WallCycles {
		t.Fatal("time-sliced pair not slower than one program alone")
	}
}

func TestSerialBaselineAndSpeedup(t *testing.T) {
	lu, _ := profiles.ByName("LU")
	opt := quickOptions()
	base, err := SerialBaseline(lu, opt)
	if err != nil {
		t.Fatal(err)
	}
	cmpSMP, _ := config.ByArch(config.CMPSMP)
	res, err := RunSingle(lu, cmpSMP, opt)
	if err != nil {
		t.Fatal(err)
	}
	sp := Speedup(base.WallCycles, res.WallCycles)
	if sp <= 1.0 {
		t.Fatalf("CMP-based SMP speedup %v, want > 1", sp)
	}
	if Speedup(100, 0) != 0 {
		t.Fatal("zero-cycle speedup should be 0")
	}
}

func TestPlacementPolicyChangesOutcome(t *testing.T) {
	cg, _ := profiles.ByName("CG")
	ft, _ := profiles.ByName("FT")
	cmtSMP, _ := config.ByArch(config.CMTSMP)
	alt := quickOptions()
	alt.Policy = sched.Alternate
	blk := quickOptions()
	blk.Policy = sched.Block
	r1, err := Run(Pair(cg, ft), cmtSMP, alt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(Pair(cg, ft), cmtSMP, blk)
	if err != nil {
		t.Fatal(err)
	}
	if r1.WallCycles == r2.WallCycles {
		t.Fatal("placement policy had no effect at all (suspicious)")
	}
}

func TestCrossPairs(t *testing.T) {
	pairs, err := CrossPairs()
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 21 { // C(6,2) + 6 identical pairs
		t.Fatalf("%d pairs, want 21", len(pairs))
	}
	seen := map[string]bool{}
	for _, p := range pairs {
		key := p[0] + "/" + p[1]
		if seen[key] {
			t.Fatalf("duplicate pair %s", key)
		}
		seen[key] = true
		if strings.Compare(p[0], p[1]) > 0 {
			t.Fatalf("pair %s not ordered", key)
		}
	}
}

func TestCustomMachineOption(t *testing.T) {
	cg, _ := profiles.ByName("CG")
	serial, _ := config.ByArch(config.Serial)
	opt := quickOptions()
	mc := opt.machineConfig()
	mc.L2.Size *= 2
	opt.Machine = &mc
	if _, err := RunSingle(cg, serial, opt); err != nil {
		t.Fatal(err)
	}
}

func TestTable1Report(t *testing.T) {
	out := Table1Report().String()
	for _, want := range []string{"HT on -8-2", "CMT-based SMP", "A7", "B3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 report missing %q:\n%s", want, out)
		}
	}
}

func TestRetiredInstructionsInvariantAcrossConfigs(t *testing.T) {
	// The same workload retires (almost exactly) the same instruction
	// count on every configuration — only the cycles differ. Chunk-count
	// rounding with per-thread budgets allows a small tolerance.
	cg, _ := profiles.ByName("CG")
	opt := quickOptions()
	opt.WarmupFrac = 0 // count everything
	var ref uint64
	for _, cfg := range config.Table1() {
		res, err := RunSingle(cg, cfg, opt)
		if err != nil {
			t.Fatal(err)
		}
		got := res.Programs[0].Counters.Get(counters.Instructions)
		if ref == 0 {
			ref = got
			continue
		}
		lo := ref - ref/20
		hi := ref + ref/20
		if got < lo || got > hi {
			t.Errorf("%s retired %d, serial retired %d (>5%% apart)", cfg.Name, got, ref)
		}
	}
}

func TestSamplingThroughCore(t *testing.T) {
	cg, _ := profiles.ByName("CG")
	cmt, _ := config.ByArch(config.CMT)
	opt := quickOptions()
	opt.SampleInterval = 50_000
	res, err := RunSingle(cg, cmt, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) == 0 {
		t.Fatal("no samples collected through core")
	}
	for _, s := range res.Samples {
		if s.End <= s.Start {
			t.Fatal("malformed sample window")
		}
	}
}
