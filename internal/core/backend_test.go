package core

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"xeonomp/internal/config"
	"xeonomp/internal/profiles"
)

// countingBackend delegates to Local and counts executions — the probe
// the dedupe and gate tests assert one-computation behaviour with.
type countingBackend struct {
	calls atomic.Int64
	// hold, when non-nil, blocks every execution until it is closed, so
	// tests can pile up concurrent identical requests deterministically.
	hold chan struct{}
}

func (b *countingBackend) RunCell(ctx context.Context, w Workload, cfg config.Configuration, opt Options) (*RunResult, bool, error) {
	b.calls.Add(1)
	if b.hold != nil {
		select {
		case <-b.hold:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	return Local().RunCell(ctx, w, cfg, opt)
}

func TestBackendDefaultMatchesExplicitLocal(t *testing.T) {
	cg, _ := profiles.ByName("CG")
	cfg, _ := config.ByArch(config.CMPSMP)
	opt := quickOptions()

	base, err := RunSingle(cg, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Backend = Local()
	viaLocal, err := RunSingle(cg, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Backend = NewDedupe(NewGate(Local(), 2))
	viaStack, err := RunSingle(cg, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, viaLocal) || !reflect.DeepEqual(base, viaStack) {
		t.Error("results differ across backends; the backend seam must not affect results")
	}
}

func TestDedupeSharesInflightCell(t *testing.T) {
	cg, _ := profiles.ByName("CG")
	cfg, _ := config.ByArch(config.CMPSMP)

	const waiters = 4
	inner := &countingBackend{hold: make(chan struct{})}
	d := NewDedupe(inner)
	opt := quickOptions()
	opt.Backend = d

	var (
		wg      sync.WaitGroup
		cachedN atomic.Int64
		started = make(chan struct{}, waiters)
	)
	results := make([]*RunResult, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			res, cached, err := d.RunCell(context.Background(), Single(cg), cfg, opt)
			if cached {
				cachedN.Add(1)
			}
			results[i], errs[i] = res, err
		}(i)
	}
	for i := 0; i < waiters; i++ {
		<-started
	}
	// All goroutines are past the starting line; let the leader (and any
	// stragglers not yet at RunCell) through. Followers joining after the
	// leader finishes would compute their own cell — that is correct
	// dedupe behaviour, so the assertion below allows >1 but the release
	// ordering makes 1 overwhelmingly likely and the shared-result checks
	// hold regardless.
	close(inner.hold)
	wg.Wait()

	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if results[i] == nil {
			t.Fatalf("waiter %d: nil result", i)
		}
	}
	if got := inner.calls.Load(); got >= waiters {
		t.Errorf("inner backend executed %d times for %d identical requests; dedupe shared nothing", got, waiters)
	}
	if cachedN.Load() == 0 {
		t.Error("no waiter reported cached=true; followers must report shared service")
	}
	want := results[0]
	for i, r := range results[1:] {
		if !reflect.DeepEqual(want, r) {
			t.Errorf("waiter %d result differs from leader's", i+1)
		}
	}
}

func TestDedupeDistinctCellsRunIndependently(t *testing.T) {
	cg, _ := profiles.ByName("CG")
	ft, _ := profiles.ByName("FT")
	cfg, _ := config.ByArch(config.CMPSMP)

	inner := &countingBackend{}
	d := NewDedupe(inner)
	opt := quickOptions()
	opt.Backend = d
	for _, w := range []Workload{Single(cg), Single(ft)} {
		if _, cached, err := d.RunCell(context.Background(), w, cfg, opt); err != nil {
			t.Fatal(err)
		} else if cached {
			t.Errorf("%s reported cached on first execution", w.Name())
		}
	}
	if got := inner.calls.Load(); got != 2 {
		t.Errorf("distinct cells executed %d times, want 2", got)
	}
}

func TestDedupeCanceledWaiterLeavesLeaderRunning(t *testing.T) {
	cg, _ := profiles.ByName("CG")
	cfg, _ := config.ByArch(config.CMPSMP)

	inner := &countingBackend{hold: make(chan struct{})}
	d := NewDedupe(inner)
	opt := quickOptions()
	opt.Backend = d

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := d.RunCell(context.Background(), Single(cg), cfg, opt)
		leaderDone <- err
	}()
	// Wait until the leader has registered its flight.
	for {
		d.mu.Lock()
		n := len(d.inflight)
		d.mu.Unlock()
		if n == 1 {
			break
		}
		runtime.Gosched()
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := d.RunCell(ctx, Single(cg), cfg, opt); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled waiter returned %v, want context.Canceled", err)
	}
	close(inner.hold)
	if err := <-leaderDone; err != nil {
		t.Errorf("leader failed after waiter cancellation: %v", err)
	}
}

func TestGateBoundsConcurrency(t *testing.T) {
	cg, _ := profiles.ByName("CG")
	ft, _ := profiles.ByName("FT")
	bt, _ := profiles.ByName("BT")
	cfg, _ := config.ByArch(config.CMPSMP)

	var inFlight, peak atomic.Int64
	inner := &gaugeBackend{inFlight: &inFlight, peak: &peak}
	g := NewGate(inner, 1)
	opt := quickOptions()
	opt.Backend = g

	var wg sync.WaitGroup
	for _, p := range []profiles.Profile{cg, ft, bt} {
		wg.Add(1)
		go func(p profiles.Profile) {
			defer wg.Done()
			if _, _, err := g.RunCell(context.Background(), Single(p), cfg, opt); err != nil {
				t.Error(err)
			}
		}(p)
	}
	wg.Wait()
	if got := peak.Load(); got != 1 {
		t.Errorf("peak concurrency %d through a 1-slot gate", got)
	}
}

func TestGateCanceledWaiterLeavesQueue(t *testing.T) {
	cg, _ := profiles.ByName("CG")
	cfg, _ := config.ByArch(config.CMPSMP)

	inner := &countingBackend{hold: make(chan struct{})}
	g := NewGate(inner, 1)
	opt := quickOptions()
	opt.Backend = g

	holderDone := make(chan struct{})
	go func() {
		defer close(holderDone)
		// Holds the only slot until hold closes.
		if _, _, err := g.RunCell(context.Background(), Single(cg), cfg, opt); err != nil {
			t.Error(err)
		}
	}()
	// Wait for the holder to occupy the slot.
	for len(g.sem) == 0 {
		runtime.Gosched()
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := g.RunCell(ctx, Single(cg), cfg, opt); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled queuer returned %v, want context.Canceled", err)
	}
	close(inner.hold)
	<-holderDone
}

// gaugeBackend tracks concurrent executions for the gate test.
type gaugeBackend struct {
	inFlight, peak *atomic.Int64
}

func (b *gaugeBackend) RunCell(ctx context.Context, w Workload, cfg config.Configuration, opt Options) (*RunResult, bool, error) {
	n := b.inFlight.Add(1)
	for {
		p := b.peak.Load()
		if n <= p || b.peak.CompareAndSwap(p, n) {
			break
		}
	}
	defer b.inFlight.Add(-1)
	return Local().RunCell(ctx, w, cfg, opt)
}
