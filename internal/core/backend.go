package core

import (
	"context"
	"sync"

	"xeonomp/internal/config"
	"xeonomp/internal/obs"
)

// Process-wide observability series for the in-flight dedupe layer:
// leaders computed a cell while identical requests waited; shared counts
// the waiters that were served the leader's result instead of simulating.
var (
	obsFlightLeaders = obs.NewCounter(obs.MetricCoreFlightLeaders)
	obsFlightShared  = obs.NewCounter(obs.MetricCoreFlightShared)
)

// Backend is the seam between study orchestration and cell execution.
// Studies (experiments.go) decide *which* cells to run and how to reduce
// them; a Backend decides *where and how* one cell runs. RunContext
// dispatches every cell through Options.Backend, so swapping the backend
// — local in-process execution, in-flight dedupe in front of it, a
// concurrency gate, or (eventually) a remote shard — changes nothing
// about study results: the golden artifacts and determinism pins are the
// contract every implementation must honor.
//
// RunCell executes (or serves) one simulation cell. cached reports
// whether the result was served from a cache, journal, or an identical
// in-flight computation rather than simulated by this call; RunContext
// owns the progress and metric accounting built on it. Implementations
// must be safe for concurrent use: the study drivers call RunCell from
// Options.Workers goroutines at once.
type Backend interface {
	RunCell(ctx context.Context, w Workload, cfg config.Configuration, opt Options) (res *RunResult, cached bool, err error)
}

// localBackend is the in-process execution path: the run cache and
// journal tiers when Options carries them, the cycle engine underneath.
type localBackend struct{}

// Local returns the in-process Backend — the execution path xeonchar and
// sweep always used, now behind the seam. It is stateless; every call
// reads its cache/journal wiring from the Options it is handed.
func Local() Backend { return localBackend{} }

func (localBackend) RunCell(ctx context.Context, w Workload, cfg config.Configuration, opt Options) (*RunResult, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	if opt.Cache == nil && opt.Journal == nil {
		res, err := runUncached(w, cfg, opt)
		return res, false, err
	}
	return runThroughCache(w, cfg, opt, func() (*RunResult, bool, error) {
		res, err := runUncached(w, cfg, opt)
		return res, false, err
	})
}

// cachedBackend layers the run-cache and journal tiers of Options over
// any inner backend.
type cachedBackend struct{ inner Backend }

// Cached wraps inner with the same cache/journal tier the local backend
// has built in: cells are served from Options.Cache or the replayed
// Options.Journal when possible, and every cell the inner backend
// returns is recorded to both. Local() does not need it; a remote or
// sharded backend does — without it, a frontend daemon scattering cells
// to workers would have no journal of its own to resume from and no
// cache to serve warm reruns out of. Layer it innermost-but-one:
// Dedupe(Gate(Cached(remote))).
func Cached(inner Backend) Backend { return cachedBackend{inner: inner} }

func (b cachedBackend) RunCell(ctx context.Context, w Workload, cfg config.Configuration, opt Options) (*RunResult, bool, error) {
	if opt.Cache == nil && opt.Journal == nil {
		return b.inner.RunCell(ctx, w, cfg, opt)
	}
	return runThroughCache(w, cfg, opt, func() (*RunResult, bool, error) {
		return b.inner.RunCell(ctx, w, cfg, opt)
	})
}

// flight is one in-progress cell computation; waiters block on done and
// then read res/err, which the leader writes before closing the channel.
type flight struct {
	done chan struct{}
	res  *RunResult
	err  error
}

// Dedupe wraps a Backend with in-flight deduplication (the singleflight
// pattern): concurrent RunCell calls whose cells hash to the same
// runcache identity share one computation. The first caller becomes the
// leader and executes against the inner backend; everyone else waits for
// the leader and is served the same *RunResult (treat it as read-only —
// results are immutable after computation everywhere in this tree).
//
// This is what makes a shared experiment server cheap under redundant
// load: two clients submitting the same sweep cost one simulation, and
// the run cache only ever stores the cell once. A canceled waiter
// returns its own ctx.Err and leaves the leader running; a leader whose
// ctx is canceled propagates that error to every waiter of that flight,
// and the next identical request starts a fresh computation.
type Dedupe struct {
	inner Backend

	mu       sync.Mutex
	inflight map[string]*flight
}

// NewDedupe returns a Dedupe executing unique cells on inner.
func NewDedupe(inner Backend) *Dedupe {
	return &Dedupe{inner: inner, inflight: map[string]*flight{}}
}

// RunCell implements Backend. Cells are identified by the same
// content-address the run cache uses, so "identical" means identical in
// every result-affecting input; an unhashable key (impossible with
// plain-data inputs) degrades to plain execution.
func (d *Dedupe) RunCell(ctx context.Context, w Workload, cfg config.Configuration, opt Options) (*RunResult, bool, error) {
	hash, err := CacheKey(w, cfg, opt).Hash()
	if err != nil {
		return d.inner.RunCell(ctx, w, cfg, opt)
	}
	d.mu.Lock()
	if f, ok := d.inflight[hash]; ok {
		d.mu.Unlock()
		obsFlightShared.Inc()
		select {
		case <-f.done:
			return f.res, true, f.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	d.inflight[hash] = f
	d.mu.Unlock()

	obsFlightLeaders.Inc()
	res, cached, err := d.inner.RunCell(ctx, w, cfg, opt)
	f.res, f.err = res, err
	d.mu.Lock()
	delete(d.inflight, hash)
	d.mu.Unlock()
	close(f.done)
	return res, cached, err
}

// Gate wraps a Backend with a global concurrency limit: at most slots
// RunCell calls execute at once, everyone else queues. A server fronting
// many study jobs uses one Gate under one Dedupe, so admission control
// bounds total simulation concurrency regardless of how many requests
// are in flight, and duplicate waiters never hold a slot.
type Gate struct {
	inner Backend
	sem   chan struct{}
}

// NewGate returns a Gate running at most slots (minimum 1) concurrent
// cells on inner.
func NewGate(inner Backend, slots int) *Gate {
	if slots < 1 {
		slots = 1
	}
	return &Gate{inner: inner, sem: make(chan struct{}, slots)}
}

// RunCell implements Backend. Waiting for a slot honors ctx, so a
// canceled request leaves the queue immediately.
func (g *Gate) RunCell(ctx context.Context, w Workload, cfg config.Configuration, opt Options) (*RunResult, bool, error) {
	select {
	case g.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
	defer func() { <-g.sem }()
	return g.inner.RunCell(ctx, w, cfg, opt)
}
