package core

import (
	"strings"
	"testing"

	"xeonomp/internal/config"
	"xeonomp/internal/counters"
	"xeonomp/internal/stats"
)

// fabricatedStudy builds a SingleStudy with hand-written counter values so
// the rendering layer can be tested without running the simulator.
func fabricatedStudy() *SingleStudy {
	benches := []string{"XX", "YY"}
	cfgs := config.Table1()
	s := &SingleStudy{
		Benchmarks: benches,
		Configs:    cfgs,
		Results:    map[CellKey]*RunResult{},
		Baselines:  map[string]int64{},
		DTLBSerial: map[string]float64{},
	}
	for bi, bn := range benches {
		for ci, cfg := range cfgs {
			var set counters.Set
			set.Add(counters.Cycles, uint64(1000*(ci+1)))
			set.Add(counters.Instructions, 500)
			set.Add(counters.StallCycles, uint64(100*(ci+1)))
			set.Add(counters.L1DAccess, 100)
			set.Add(counters.L1DMiss, uint64(5+bi))
			set.Add(counters.L2Access, 10)
			set.Add(counters.L2Miss, uint64(2+ci))
			set.Add(counters.TCAccess, 50)
			set.Add(counters.TCMiss, 5)
			set.Add(counters.ITLBAccess, 1000)
			set.Add(counters.ITLBMiss, uint64(ci))
			set.Add(counters.DTLBAccess, 200)
			set.Add(counters.DTLBMiss, uint64(4*(ci+1)))
			set.Add(counters.BranchRetired, 50)
			set.Add(counters.BranchMispredicted, uint64(1+bi))
			set.Add(counters.BusDemandRead, 8)
			set.Add(counters.BusPrefetch, 2)
			res := &RunResult{
				Config:     cfg,
				WallCycles: int64(10000 / (ci + 1)), // speedup grows with config index
				Programs: []ProgramResult{{
					Benchmark: bn,
					Threads:   cfg.Threads,
					Cycles:    int64(10000 / (ci + 1)),
					Counters:  set,
					Metrics:   counters.Derive(&set),
				}},
			}
			s.Results[CellKey{bn, cfg.Name}] = res
			if cfg.Arch == config.Serial {
				s.Baselines[bn] = res.WallCycles
				s.DTLBSerial[bn] = res.Programs[0].Metrics.DTLBMisses
			}
		}
	}
	return s
}

func TestGoldenFigure3FromFabricatedData(t *testing.T) {
	s := fabricatedStudy()
	tb, err := s.Figure3Table()
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	// The wall clocks are 10000/(ci+1): speedup over serial for the last
	// configuration (index 7) is exactly 8.000.
	if !strings.Contains(out, "8.000") {
		t.Fatalf("expected 8.000 speedup in:\n%s", out)
	}
	if !strings.Contains(out, "XX") || !strings.Contains(out, "YY") {
		t.Fatalf("benchmarks missing in:\n%s", out)
	}
}

func TestGoldenTable2FromFabricatedData(t *testing.T) {
	s := fabricatedStudy()
	archs, avg, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(archs) != 7 {
		t.Fatalf("%d architectures", len(archs))
	}
	// Both benchmarks have identical wall clocks, so the average equals
	// the per-benchmark speedup: config index + 1.
	if got := avg[config.CMTSMP]; got != 8 {
		t.Fatalf("CMT-SMP average = %v, want 8", got)
	}
	if got := avg[config.SMT]; got != 2 {
		t.Fatalf("SMT average = %v, want 2", got)
	}
}

func TestGoldenDTLBNormalization(t *testing.T) {
	s := fabricatedStudy()
	// DTLB misses are 4*(ci+1); normalized to serial (ci=0) gives ci+1.
	v, err := s.DTLBNormalized("XX", "HT on -8-2")
	if err != nil {
		t.Fatal(err)
	}
	if v != 8 {
		t.Fatalf("DTLB normalization = %v, want 8", v)
	}
}

func TestGoldenFigure2ITLBPrecision(t *testing.T) {
	s := fabricatedStudy()
	tables, err := s.Figure2Tables()
	if err != nil {
		t.Fatal(err)
	}
	// Panel 4 is the ITLB panel; with 1000 accesses and ci misses, the
	// serial column is 0.00000 and the last is 0.00700 — the extra
	// precision must be present.
	itlb := tables[3].String()
	if !strings.Contains(itlb, "0.00700") {
		t.Fatalf("ITLB panel lost precision:\n%s", itlb)
	}
}

func TestGoldenFigure5FromFabricatedBoxes(t *testing.T) {
	cs := &CrossStudy{
		Configs: config.Multithreaded(),
		Boxes:   map[string]stats.BoxPlot{},
		Samples: map[string][]float64{},
	}
	for i, cfg := range cs.Configs {
		base := float64(i + 1)
		cs.Boxes[cfg.Name] = stats.BoxPlot{
			Min: base, Q1: base + 0.2, Median: base + 0.5, Q3: base + 0.8, Max: base + 1, N: 42,
		}
	}
	out := cs.Figure5Plot()
	for _, cfg := range cs.Configs {
		if !strings.Contains(out, cfg.Name) {
			t.Fatalf("missing %s in plot:\n%s", cfg.Name, out)
		}
	}
	if !strings.Contains(out, "#") {
		t.Fatal("plot missing median markers")
	}
}
