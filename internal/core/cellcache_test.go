package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"xeonomp/internal/config"
	"xeonomp/internal/journal"
	"xeonomp/internal/profiles"
	"xeonomp/internal/runcache"
)

// TestColdWarmResumedStudiesIdentical is the acceptance pin for the run
// cache: a cold run, a warm run served entirely from the persistent
// cache, and a run resumed from a journal must produce identical Results
// maps — byte-identical counters, cycles, and derived metrics.
func TestColdWarmResumedStudiesIdentical(t *testing.T) {
	dir := t.TempDir()

	cold, err := runSingleStudy(quickOptions())
	if err != nil {
		t.Fatal(err)
	}

	// First cached run populates the disk tier; it must already agree
	// with the cold run (cache writes cannot perturb results).
	populate := quickOptions()
	cache1, err := runcache.New(0, filepath.Join(dir, "cache"))
	if err != nil {
		t.Fatal(err)
	}
	populate.Cache = cache1
	first, err := runSingleStudy(populate)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold.Results, first.Results) {
		t.Fatal("cache-populating run differs from cold run")
	}
	if s := cache1.Stats(); s.Misses == 0 || s.Hits() != 0 {
		t.Fatalf("populating run stats = %+v, want all misses", s)
	}

	// Warm run: a fresh process (fresh memory tier) over the same
	// directory must serve every cell from disk.
	warmOpt := quickOptions()
	cache2, err := runcache.New(0, filepath.Join(dir, "cache"))
	if err != nil {
		t.Fatal(err)
	}
	warmOpt.Cache = cache2
	warm, err := runSingleStudy(warmOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold.Results, warm.Results) {
		t.Fatal("warm (disk-cached) run differs from cold run")
	}
	if s := cache2.Stats(); s.Misses != 0 || s.DiskHits == 0 {
		t.Fatalf("warm run stats = %+v, want zero misses", s)
	}

	// Resumed run: record every cell to a journal, then replay it into a
	// new invocation with no cache directory at all.
	jpath := filepath.Join(dir, "run.jsonl")
	recOpt := quickOptions()
	rec, err := journal.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	recOpt.Journal = rec
	if _, err := runSingleStudy(recOpt); err != nil {
		t.Fatal(err)
	}
	rec.Close()

	resOpt := quickOptions()
	replay, err := journal.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer replay.Close()
	if replay.Len() == 0 {
		t.Fatal("journal recorded no cells")
	}
	resOpt.Journal = replay
	resOpt.Cache, err = runcache.New(0, "")
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := runSingleStudy(resOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold.Results, resumed.Results) {
		t.Fatal("resumed (journal-replayed) run differs from cold run")
	}
	if !reflect.DeepEqual(cold.Baselines, resumed.Baselines) {
		t.Fatal("resumed baselines differ from cold run")
	}
}

// TestCacheSharedAcrossStudies pins the motivating reuse: the pair study
// computes CG/FT, FT/FT and CG/CG cells that the cross-product study can
// then serve from cache.
func TestCacheSharedAcrossStudies(t *testing.T) {
	if testing.Short() {
		t.Skip("cross study at scale")
	}
	opt := quickOptions()
	var err error
	opt.Cache, err = runcache.New(0, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runPairStudy(opt); err != nil {
		t.Fatal(err)
	}
	afterPair := opt.Cache.Stats()
	if _, err := runCrossStudy(opt); err != nil {
		t.Fatal(err)
	}
	s := opt.Cache.Stats()
	if s.MemHits <= afterPair.MemHits {
		t.Fatalf("cross study reused no pair-study cells: %+v after %+v", s, afterPair)
	}
}

// TestRunResultCodecRoundTrip pins full-fidelity serialization,
// including the sampler time series.
func TestRunResultCodecRoundTrip(t *testing.T) {
	cg, err := profiles.ByName("CG")
	if err != nil {
		t.Fatal(err)
	}
	cmt, err := config.ByArch(config.CMT)
	if err != nil {
		t.Fatal(err)
	}
	opt := quickOptions()
	opt.SampleInterval = 200_000
	res, err := RunSingle(cg, cmt, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) == 0 {
		t.Fatal("no samples to round-trip")
	}
	payload, err := encodeRunResult(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeRunResult(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, back) {
		t.Fatal("codec round trip changed the result")
	}
}

// TestCorruptCacheEntryRecomputed pins that a damaged disk entry is
// recomputed, never trusted.
func TestCorruptCacheEntryRecomputed(t *testing.T) {
	dir := t.TempDir()
	cg, err := profiles.ByName("CG")
	if err != nil {
		t.Fatal(err)
	}
	serial, err := config.ByArch(config.Serial)
	if err != nil {
		t.Fatal(err)
	}
	opt := quickOptions()
	opt.Cache, err = runcache.New(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := RunSingle(cg, serial, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Damage every stored entry.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("nothing cached on disk")
	}
	for _, e := range ents {
		if err := os.WriteFile(filepath.Join(dir, e.Name()), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fresh := quickOptions()
	fresh.Cache, err = runcache.New(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	again, err := RunSingle(cg, serial, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, again) {
		t.Fatal("recomputed result differs after cache corruption")
	}
	if s := fresh.Cache.Stats(); s.DiskErrors == 0 {
		t.Fatalf("stats = %+v, want disk errors counted", s)
	}
}

// TestForEachJobAggregatesErrors pins that concurrent worker failures
// are all reported, not just the first.
func TestForEachJobAggregatesErrors(t *testing.T) {
	var gate sync.WaitGroup
	gate.Add(2)
	err := forEachJob(context.Background(), 2, 2, func(_ context.Context, i int) error {
		// Both workers enter before either fails, so neither can be
		// suppressed by the other's failure flag.
		gate.Done()
		gate.Wait()
		return fmt.Errorf("job %d failed", i)
	})
	if err == nil {
		t.Fatal("no error returned")
	}
	for _, want := range []string{"job 0 failed", "job 1 failed"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("aggregated error %q missing %q", err, want)
		}
	}
}

// TestForEachJobFailureDoesNotDeadlock pins the drain contract: an early
// failure with far more jobs than workers must not strand the producer.
// Before the errors.Join rework, a failed worker stopped reading the job
// channel and this test hung.
func TestForEachJobFailureDoesNotDeadlock(t *testing.T) {
	boom := errors.New("boom")
	ran := 0
	var mu sync.Mutex
	err := forEachJob(context.Background(), 10_000, 4, func(_ context.Context, i int) error {
		mu.Lock()
		ran++
		mu.Unlock()
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran == 10_000 {
		t.Fatal("failure did not short-circuit remaining jobs")
	}
}

func TestForEachJobSequentialStopsAtFirstError(t *testing.T) {
	calls := 0
	err := forEachJob(context.Background(), 10, 1, func(_ context.Context, i int) error {
		calls++
		if i == 2 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || calls != 3 {
		t.Fatalf("err = %v after %d calls", err, calls)
	}
}
