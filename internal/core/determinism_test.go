package core

import (
	"bytes"
	"testing"
)

// serializedStudy runs the reduced-scale single-program study and returns
// every byte the study can emit: the canonical golden artifacts followed
// by the full JSON export. This is the output surface the determinism
// analyzer (internal/analysis) guards — if map-iteration order, a wall
// clock, or an unseeded random draw ever leaks into the export path, two
// in-process runs stop being byte-identical.
func serializedStudy(t *testing.T, workers int) []byte {
	t.Helper()
	opt := quickOptions()
	opt.Seed = 7
	opt.Workers = workers
	s, err := runSingleStudy(opt)
	if err != nil {
		t.Fatal(err)
	}
	arts, err := s.Artifacts()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, a := range arts {
		b, err := a.MarshalCanonical()
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStudySerializationIsBitStable runs the same study twice — once
// sequentially, once on a parallel driver — and demands byte-identical
// golden JSON. TestStudiesWorkerInvariant already pins the in-memory
// numbers; this pins the rendered artifacts, which is what the golden
// regression gate actually diffs.
func TestStudySerializationIsBitStable(t *testing.T) {
	first := serializedStudy(t, 1)
	second := serializedStudy(t, 4)
	if !bytes.Equal(first, second) {
		limit := 400
		a, b := string(first), string(second)
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				lo := max(0, i-100)
				t.Fatalf("study serialization diverged at byte %d:\nrun1: ...%.*s\nrun2: ...%.*s",
					i, limit, a[lo:], limit, b[lo:])
			}
		}
		t.Fatalf("study serializations differ in length: %d vs %d bytes", len(first), len(second))
	}
}
