package journal

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress reports study progress — cells done/total, cache hit rate,
// elapsed time and ETA — to a writer at a fixed minimum interval. Study
// drivers announce upcoming work with AddTotal and completions with Done;
// the reporter prints whenever the interval has elapsed since the last
// line, plus a final summary from Finish. All methods are safe on a nil
// receiver, so the experiment layer threads a *Progress through
// unconditionally.
type Progress struct {
	mu       sync.Mutex
	w        io.Writer
	interval time.Duration
	start    time.Time
	last     time.Time
	total    int64
	done     int64
	cached   int64
	now      func() time.Time // injectable clock for tests
}

// NewProgress builds a reporter writing to w at most once per interval
// (<= 0 selects 10 s). Pass the result even when reporting is unwanted:
// a nil *Progress is inert.
func NewProgress(w io.Writer, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	now := time.Now
	t := now()
	return &Progress{w: w, interval: interval, start: t, last: t, now: now}
}

// AddTotal announces n upcoming cells, growing the denominator and the
// ETA horizon.
func (p *Progress) AddTotal(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.total += int64(n)
}

// Done records one completed cell; fromCache marks it as served by the
// run cache or journal rather than simulated. A progress line is emitted
// if the reporting interval has elapsed.
func (p *Progress) Done(fromCache bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if fromCache {
		p.cached++
	}
	if t := p.now(); t.Sub(p.last) >= p.interval {
		p.last = t
		p.emitLocked(t)
	}
}

// Finish prints a final summary line regardless of the interval.
func (p *Progress) Finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.emitLocked(p.now())
}

// emitLocked writes one progress line; callers hold p.mu.
func (p *Progress) emitLocked(t time.Time) {
	total := p.total
	if p.done > total {
		total = p.done
	}
	elapsed := t.Sub(p.start).Round(time.Second)
	line := fmt.Sprintf("progress: %d/%d cells", p.done, total)
	if total > 0 {
		line += fmt.Sprintf(" (%.1f%%)", 100*float64(p.done)/float64(total))
	}
	if p.done > 0 {
		line += fmt.Sprintf(" | cache hits %d (%.1f%%)", p.cached, 100*float64(p.cached)/float64(p.done))
	}
	line += fmt.Sprintf(" | elapsed %s", elapsed)
	if p.done > 0 && p.done < total {
		eta := time.Duration(float64(t.Sub(p.start)) / float64(p.done) * float64(total-p.done)).Round(time.Second)
		line += fmt.Sprintf(" | eta %s", eta)
	}
	//xeonlint:ignore errdrop best-effort progress line to stderr; a write failure must not kill the study
	fmt.Fprintln(p.w, line)
}
