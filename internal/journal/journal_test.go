package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestAppendAndReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	cells := map[string]string{
		"k1": `{"wall":100}`,
		"k2": `{"wall":200}`,
		"k3": `{"wall":300}`,
	}
	for k, v := range cells {
		if err := j.Append(k, "cell-"+k, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != len(cells) {
		t.Fatalf("replayed %d cells, want %d", r.Len(), len(cells))
	}
	for k, v := range cells {
		got, ok := r.Replayed(k)
		if !ok || string(got) != v {
			t.Fatalf("Replayed(%s) = %q, %v; want %q", k, got, ok, v)
		}
	}
	if _, ok := r.Replayed("absent"); ok {
		t.Fatal("unknown key replayed")
	}
}

func TestAppendDeduplicates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append("k", "cell", []byte(`{"v":1}`)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(raw, []byte{'\n'}); n != 1 {
		t.Fatalf("journal has %d lines, want 1 (duplicate appends must be dropped)", n)
	}
}

// TestReplayTruncatedLastLine pins the interrupted-writer contract: a
// partial trailing line is skipped, everything before it survives, and
// new appends do not fuse with the debris.
func TestReplayTruncatedLastLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	good := `{"key":"k1","cell":"CG|CMT|seed=1","result":{"wall":1}}` + "\n"
	truncated := `{"key":"k2","cell":"FT|CMT|seed=1","result":{"wa` // killed mid-write
	if err := os.WriteFile(path, []byte(good+truncated), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 1 || j.Skipped() != 1 {
		t.Fatalf("len = %d, skipped = %d; want 1 and 1", j.Len(), j.Skipped())
	}
	if _, ok := j.Replayed("k2"); ok {
		t.Fatal("truncated entry must not be replayed")
	}
	if err := j.Append("k3", "IS|CMT|seed=1", []byte(`{"wall":3}`)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, ok := r.Replayed("k1"); !ok {
		t.Fatal("k1 lost after truncated-tail recovery")
	}
	if got, ok := r.Replayed("k3"); !ok || string(got) != `{"wall":3}` {
		t.Fatalf("k3 = %q, %v after recovery", got, ok)
	}
}

// TestReplayCorruptedLastLine covers a complete but garbage final line
// (e.g. a partially overwritten block).
func TestReplayCorruptedLastLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	content := `{"key":"k1","cell":"a","result":{"v":1}}` + "\n" +
		`{"key":"k2","cell":"b","result":{"v":2}}` + "\n" +
		"\x00\x00corrupted\xff\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != 2 || j.Skipped() != 1 {
		t.Fatalf("len = %d, skipped = %d; want 2 and 1", j.Len(), j.Skipped())
	}
}

func TestNilJournalIsInert(t *testing.T) {
	var j *Journal
	if err := j.Append("k", "c", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok := j.Replayed("k"); ok {
		t.Fatal("nil journal replayed an entry")
	}
	if j.Len() != 0 || j.Skipped() != 0 || j.Close() != nil {
		t.Fatal("nil journal not inert")
	}
}

func TestProgressReporting(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, time.Second)
	now := time.Unix(0, 0)
	p.now = func() time.Time { return now }
	p.start, p.last = now, now

	p.AddTotal(4)
	p.Done(false) // within the interval: silent
	if buf.Len() != 0 {
		t.Fatalf("premature output: %q", buf.String())
	}
	now = now.Add(2 * time.Second)
	p.Done(true)
	line := buf.String()
	for _, want := range []string{"progress: 2/4 cells", "(50.0%)", "cache hits 1 (50.0%)", "eta"} {
		if !strings.Contains(line, want) {
			t.Fatalf("progress line %q missing %q", line, want)
		}
	}
	buf.Reset()
	now = now.Add(10 * time.Second)
	p.Done(false)
	p.Done(false)
	p.Finish()
	if !strings.Contains(buf.String(), "progress: 4/4 cells (100.0%)") {
		t.Fatalf("final line = %q", buf.String())
	}
}

func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	p.AddTotal(10)
	p.Done(true)
	p.Finish()
}
