// Package journal makes long experiment invocations resumable and their
// progress observable.
//
// A Journal is an append-only JSONL file recording every completed
// simulation cell together with its serialized result, keyed by the
// cell's runcache content address. When an invocation dies mid-study,
// reopening the journal replays the completed cells so the rerun picks up
// where the previous one stopped; a truncated or corrupted trailing line
// — the normal debris of a kill — is skipped, never trusted. A Progress
// reporter prints cells done/total, the cache hit rate, and an ETA to a
// writer (normally stderr) at a configurable interval.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"xeonomp/internal/obs"
)

// Process-wide observability series (see internal/obs): append volume and
// latency, cells replayed at Open, and replay-map serves.
var (
	obsAppends      = obs.NewCounter(obs.MetricJournalAppends)
	obsAppendNs     = obs.NewHistogram(obs.MetricJournalAppendNs)
	obsReplayed     = obs.NewCounter(obs.MetricJournalReplayed)
	obsReplayServes = obs.NewCounter(obs.MetricJournalReplayServes)
)

// Entry is one journal line: a completed cell. Key is the runcache
// content address of the cell's inputs, Cell a human-readable label
// ("CG/FT|HT on -8-2|seed=1"), and Result the cell's serialized result,
// in whatever encoding the experiment layer uses for its cache payloads.
type Entry struct {
	Key    string          `json:"key"`
	Cell   string          `json:"cell"`
	Result json.RawMessage `json:"result"`
}

// Journal is an append-only JSONL run journal. It is safe for concurrent
// use, and a nil *Journal is inert, so callers can thread it through
// unconditionally.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	replayed map[string]json.RawMessage
	skipped  int
}

// Open opens (creating if needed) the journal at path and replays any
// entries already present. Undecodable lines — a truncated or corrupted
// tail from an interrupted writer — are counted and skipped; everything
// that decodes is served through Replayed.
func Open(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: opening %s: %w", path, err)
	}
	j := &Journal{replayed: map[string]json.RawMessage{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil || e.Key == "" || len(e.Result) == 0 {
			j.skipped++
			continue
		}
		j.replayed[e.Key] = append(json.RawMessage(nil), e.Result...)
		obsReplayed.Inc()
	}
	if err := sc.Err(); err != nil {
		_ = f.Close() // the scan error is the one worth reporting
		return nil, fmt.Errorf("journal: reading %s: %w", path, err)
	}
	// Append after whatever was read. If the previous writer died
	// mid-line, terminate the partial line first so the next entry does
	// not fuse with the debris.
	end, err := f.Seek(0, 2)
	if err != nil {
		_ = f.Close() // the seek error is the one worth reporting
		return nil, fmt.Errorf("journal: seeking %s: %w", path, err)
	}
	if end > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], end-1); err != nil {
			_ = f.Close() // the read error is the one worth reporting
			return nil, fmt.Errorf("journal: reading %s: %w", path, err)
		}
		if last[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				_ = f.Close() // the repair error is the one worth reporting
				return nil, fmt.Errorf("journal: repairing %s: %w", path, err)
			}
		}
	}
	j.f = f
	j.w = bufio.NewWriter(f)
	return j, nil
}

// Replayed returns the serialized result recorded for key by a previous
// (or the current) invocation.
func (j *Journal) Replayed(key string) ([]byte, bool) {
	if j == nil {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	p, ok := j.replayed[key]
	if ok {
		obsReplayServes.Inc()
	}
	return p, ok
}

// Len returns the number of cells the journal currently knows.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.replayed)
}

// Skipped returns how many undecodable lines the replay dropped.
func (j *Journal) Skipped() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.skipped
}

// Append records a completed cell and flushes it to the file, so an
// interruption immediately afterwards loses nothing. A key already known
// (replayed or appended earlier) is not written twice.
func (j *Journal) Append(key, cell string, result []byte) error {
	if j == nil {
		return nil
	}
	t := obs.StartTimer()
	defer obsAppendNs.ObserveSince(t)
	obsAppends.Inc()
	e := Entry{Key: key, Cell: cell, Result: result}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("journal: encoding %s: %w", cell, err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.replayed[key]; ok {
		return nil
	}
	j.replayed[key] = append(json.RawMessage(nil), result...)
	if _, err := j.w.Write(line); err != nil {
		return fmt.Errorf("journal: writing %s: %w", cell, err)
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("journal: writing %s: %w", cell, err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("journal: flushing %s: %w", cell, err)
	}
	return nil
}

// Close flushes and closes the underlying file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	ferr := j.w.Flush()
	cerr := j.f.Close()
	j.f = nil
	if ferr != nil {
		return ferr
	}
	return cerr
}
