package api

import (
	"testing"

	"xeonomp/internal/sched"
)

// TestCanonicalStability pins the exact canonical bytes and hashes of
// representative study requests. These values are load-bearing: the hash
// names the journal file a daemon resumes a study from, and the pinned
// bytes reproduce the serialization used before Canonical existed (a
// json.Marshal of the normalized request struct) — so upgrading a daemon
// never orphans the journals already on its disk. If this test fails,
// you have changed the on-disk identity of every resumable study; bump
// the journal naming scheme alongside or revert.
func TestCanonicalStability(t *testing.T) {
	cases := []struct {
		req   StudyRequest
		canon string
		hash  string
	}{
		{StudyRequest{Study: "single"},
			`{"study":"single","scale":1,"seed":1,"policy":"alternate"}`,
			"e74273298b1d623b"},
		{StudyRequest{Study: "pair", Scale: 0.1},
			`{"study":"pair","scale":0.1,"seed":1,"policy":"alternate"}`,
			"485aa92bef001472"},
		{StudyRequest{Study: "cross", Scale: 0.25, Seed: 7, Policy: "symbiotic"},
			`{"study":"cross","scale":0.25,"seed":7,"policy":"symbiotic"}`,
			"0217fc6ac62531c2"},
		{StudyRequest{Study: "single", Scale: 0.02, Seed: 3, Policy: "round-robin"},
			`{"study":"single","scale":0.02,"seed":3,"policy":"round-robin"}`,
			"3eab797df201d42f"},
	}
	for _, c := range cases {
		canon, err := c.req.Canonical()
		if err != nil {
			t.Fatalf("%+v: %v", c.req, err)
		}
		if string(canon) != c.canon {
			t.Errorf("%+v canonical bytes:\n got %s\nwant %s", c.req, canon, c.canon)
		}
		hash, err := c.req.Hash()
		if err != nil {
			t.Fatalf("%+v: %v", c.req, err)
		}
		if hash != c.hash {
			t.Errorf("%+v hash %s, want %s", c.req, hash, c.hash)
		}
	}
}

// TestHashNormalization: zero values and their explicit defaults are the
// same request, and must resume from the same journal.
func TestHashNormalization(t *testing.T) {
	a, err := StudyRequest{Study: "single"}.Hash()
	if err != nil {
		t.Fatal(err)
	}
	b, err := StudyRequest{Study: "single", Scale: 1.0, Seed: 1, Policy: "alternate"}.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("zero-value request hashes %s, explicit defaults hash %s; they are the same study", a, b)
	}
	c, err := StudyRequest{Study: "single", Seed: 2}.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds produced the same hash")
	}
}

func TestPolicyRoundTrip(t *testing.T) {
	for _, name := range []string{"alternate", "block", "round-robin", "symbiotic"} {
		p, err := ParsePolicy(name)
		if err != nil {
			t.Fatalf("ParsePolicy(%s): %v", name, err)
		}
		back, err := PolicyName(p)
		if err != nil {
			t.Fatalf("PolicyName(%v): %v", p, err)
		}
		if back != name {
			t.Errorf("policy %s round-trips to %s", name, back)
		}
	}
	if p, err := ParsePolicy(""); err != nil || p != sched.Alternate {
		t.Errorf("empty policy parsed to (%v, %v), want the alternate default", p, err)
	}
	if _, err := ParsePolicy("no-such-policy"); err == nil {
		t.Error("unknown policy name accepted")
	}
}

func TestEventTerminal(t *testing.T) {
	if (Event{Seq: 1, Cell: "CG|Serial"}).Terminal() {
		t.Error("cell event reported terminal")
	}
	if !(Event{Seq: 9, State: StateDone}).Terminal() {
		t.Error("terminal event not reported terminal")
	}
}
