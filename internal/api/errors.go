package api

import (
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Structured error codes carried in ErrorResponse.Code. The code — not
// the HTTP status and not the message text — is the stable contract:
// Client maps each onto the matching sentinel error below.
const (
	// CodeBadRequest: the request is malformed or names something the
	// server does not have (unknown study, benchmark, config, policy, or
	// an out-of-range scale). Retrying cannot help.
	CodeBadRequest = "bad_request"
	// CodeNotFound: no such job or artifact.
	CodeNotFound = "not_found"
	// CodeOverBudget: admission control rejected the request (cell
	// budget, study concurrency). Sent with 429 and a Retry-After header;
	// retrying after the hinted delay is the intended reaction.
	CodeOverBudget = "over_budget"
	// CodeConflict: the resource exists but is in the wrong state (for
	// example, artifacts requested from a job that is not done yet).
	CodeConflict = "conflict"
	// CodeInternal: the server failed; the message says how.
	CodeInternal = "internal"
)

// Sentinel errors surfaced by Client. Every error returned for a non-2xx
// response is a *Error that errors.Is-matches exactly one of the first
// five; transport-level failures (connection refused, reset, timeout)
// match ErrTransport instead — the signal the shard layer fails over on.
var (
	ErrBadRequest = errors.New("api: bad request")
	ErrNotFound   = errors.New("api: not found")
	ErrOverBudget = errors.New("api: over budget")
	ErrConflict   = errors.New("api: conflict")
	ErrInternal   = errors.New("api: internal server error")
	// ErrTransport marks errors where no HTTP response arrived: the
	// request may or may not have executed. Cells are idempotent
	// (content-addressed, deterministic), so retrying elsewhere is safe.
	ErrTransport = errors.New("api: transport error")
	// ErrSeqGap marks a progress stream whose event sequence numbers
	// were not dense — events were lost, and the client's done/total
	// view can no longer be trusted without a reconnect from scratch.
	ErrSeqGap = errors.New("api: progress sequence gap")
)

// Error is the typed form of a non-2xx response. It satisfies errors.Is
// against the sentinel that matches its Code (falling back to the HTTP
// status for responses from servers predating structured codes).
type Error struct {
	// Status is the HTTP status code of the response.
	Status int
	// Code is the structured ErrorResponse.Code, "" if the server sent
	// none.
	Code string
	// Message is the human-readable ErrorResponse.Error text.
	Message string
	// RetryAfter is the parsed Retry-After header on 429 responses, 0
	// when absent.
	RetryAfter time.Duration
	// Method and Path identify the request that failed.
	Method, Path string
}

func (e *Error) Error() string {
	msg := e.Message
	if msg == "" {
		msg = http.StatusText(e.Status)
	}
	if e.Code != "" {
		return fmt.Sprintf("api: %s %s: %s (%s, HTTP %d)", e.Method, e.Path, msg, e.Code, e.Status)
	}
	return fmt.Sprintf("api: %s %s: %s (HTTP %d)", e.Method, e.Path, msg, e.Status)
}

// Is maps the structured code (or, when absent, the HTTP status) onto
// the package sentinels, so callers branch with errors.Is instead of
// string matching.
func (e *Error) Is(target error) bool {
	code := e.Code
	if code == "" {
		switch {
		case e.Status == http.StatusBadRequest:
			code = CodeBadRequest
		case e.Status == http.StatusNotFound:
			code = CodeNotFound
		case e.Status == http.StatusTooManyRequests:
			code = CodeOverBudget
		case e.Status == http.StatusConflict:
			code = CodeConflict
		case e.Status >= 500:
			code = CodeInternal
		}
	}
	switch target {
	case ErrBadRequest:
		return code == CodeBadRequest
	case ErrNotFound:
		return code == CodeNotFound
	case ErrOverBudget:
		return code == CodeOverBudget
	case ErrConflict:
		return code == CodeConflict
	case ErrInternal:
		return code == CodeInternal
	}
	return false
}
