package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client is the typed HTTP client for a xeond daemon. All request and
// response bodies are the wire types in this package; all failures are
// errors.Is-able (see errors.go). Every method takes a context — there
// are no hidden background requests and no hidden deadlines beyond the
// optional WithTimeout.
//
// A Client is safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	timeout time.Duration
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (connection
// pooling, TLS, test transports). The default is http.DefaultClient.
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// WithTimeout bounds each unary request (submit, status, cancel, cell,
// artifact, metrics) with a per-call deadline layered under the caller's
// context. Progress streams are exempt: they are long-lived by design
// and end with the job or the caller's context. Note RunCell simulates
// synchronously — at full scale a cell can legitimately run for minutes,
// so pick a timeout for the workloads actually submitted.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// NewClient returns a Client for the daemon at base, e.g.
// "http://127.0.0.1:7788".
func NewClient(base string, opts ...ClientOption) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Base returns the daemon base URL the client was built with.
func (c *Client) Base() string { return c.base }

// SubmitStudy submits one study job and returns its initial status (the
// 202 body). The job runs asynchronously; Follow or Study observe it.
func (c *Client) SubmitStudy(ctx context.Context, req StudyRequest) (StudyStatus, error) {
	var st StudyStatus
	err := c.doJSON(ctx, http.MethodPost, "/api/v1/study", req, &st)
	return st, err
}

// Study returns the current status of one job.
func (c *Client) Study(ctx context.Context, id string) (StudyStatus, error) {
	var st StudyStatus
	err := c.doJSON(ctx, http.MethodGet, "/api/v1/study/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Studies lists every job the daemon knows, in submission order.
func (c *Client) Studies(ctx context.Context) ([]StudyStatus, error) {
	var sts []StudyStatus
	err := c.doJSON(ctx, http.MethodGet, "/api/v1/study", nil, &sts)
	return sts, err
}

// CancelStudy cancels a running job. Cancellation is clean by contract:
// completed cells are already journaled, and resubmitting the same
// request resumes from that tail.
func (c *Client) CancelStudy(ctx context.Context, id string) (StudyStatus, error) {
	var st StudyStatus
	err := c.doJSON(ctx, http.MethodDelete, "/api/v1/study/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Artifact downloads one finished artifact's canonical golden bytes,
// verbatim — byte-identical to the file a local run of the same study
// writes, so callers can diff against testdata/golden directly.
func (c *Client) Artifact(ctx context.Context, id, name string) ([]byte, error) {
	return c.doRaw(ctx, "/api/v1/study/"+url.PathEscape(id)+"/artifacts/"+url.PathEscape(name))
}

// RunCell executes one simulation cell synchronously on the daemon and
// returns its outcome, including the raw per-program counters a remote
// backend rebuilds full results from.
func (c *Client) RunCell(ctx context.Context, req CellRequest) (CellResponse, error) {
	var resp CellResponse
	err := c.doJSON(ctx, http.MethodPost, "/api/v1/cell", req, &resp)
	return resp, err
}

// Metrics returns the daemon's obs metric-registry snapshot, raw — the
// same diff-stable JSON a local -metrics-out run writes.
func (c *Client) Metrics(ctx context.Context) ([]byte, error) {
	return c.doRaw(ctx, "/metrics")
}

// Healthz reports daemon liveness.
func (c *Client) Healthz(ctx context.Context) error {
	return c.doJSON(ctx, http.MethodGet, "/healthz", nil, nil)
}

// withCallTimeout layers the optional per-call deadline under ctx.
func (c *Client) withCallTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.timeout > 0 {
		return context.WithTimeout(ctx, c.timeout)
	}
	return context.WithCancel(ctx)
}

// doJSON performs one unary request, decoding the JSON response into out
// (which may be nil) and turning every failure into a typed error.
func (c *Client) doJSON(ctx context.Context, method, path string, body, out any) error {
	ctx, cancel := c.withCallTimeout(ctx)
	defer cancel()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("api: encoding %s %s body: %w", method, path, err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("api: building %s %s: %w", method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return transportError(method, path, err)
	}
	defer func() {
		// Best-effort drain; the response is already consumed or failed.
		_ = resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		return responseError(method, path, resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return transportError(method, path, err)
	}
	return nil
}

// doRaw GETs one endpoint and returns the body bytes verbatim.
func (c *Client) doRaw(ctx context.Context, path string) ([]byte, error) {
	ctx, cancel := c.withCallTimeout(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, fmt.Errorf("api: building GET %s: %w", path, err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, transportError(http.MethodGet, path, err)
	}
	defer func() {
		// Fully read below; close cannot add information.
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, responseError(http.MethodGet, path, resp)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, transportError(http.MethodGet, path, err)
	}
	return b, nil
}

// transportError wraps a connection-level failure (no usable HTTP
// response) so it errors.Is-matches ErrTransport while keeping the
// original chain — a caller-canceled context still matches
// context.Canceled through it.
func transportError(method, path string, err error) error {
	return fmt.Errorf("%w: %s %s: %w", ErrTransport, method, path, err)
}

// responseError turns a non-2xx response into a *Error, reading the
// structured body and the Retry-After hint when present.
func responseError(method, path string, resp *http.Response) error {
	e := &Error{Status: resp.StatusCode, Method: method, Path: path}
	var body ErrorResponse
	if json.NewDecoder(resp.Body).Decode(&body) == nil {
		e.Code, e.Message = body.Code, body.Error
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		// The header value counts seconds (RFC 9110).
		if n, err := strconv.Atoi(ra); err == nil && n >= 0 {
			e.RetryAfter = time.Duration(n) * time.Second
		}
	}
	return e
}

// ProgressStream is one /progress/{id} connection: an iterator over the
// job's NDJSON event log. The server replays the job's full history on
// every connection; a stream opened with after > 0 silently skips the
// already-seen prefix, so reconnecting clients neither miss nor repeat
// events. Seq density is verified on every delivered event — a gap
// surfaces as ErrSeqGap, never as silently wrong done/total counts.
type ProgressStream struct {
	body io.ReadCloser
	dec  *json.Decoder
	next int // the Seq the next delivered event must carry
}

// Progress opens a progress stream for job id, delivering events with
// Seq > after (pass 0 for the full history). The stream is bounded by
// ctx only — the client's unary timeout does not apply.
func (c *Client) Progress(ctx context.Context, id string, after int) (*ProgressStream, error) {
	path := "/progress/" + url.PathEscape(id)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, fmt.Errorf("api: building GET %s: %w", path, err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, transportError(http.MethodGet, path, err)
	}
	if resp.StatusCode != http.StatusOK {
		defer func() {
			// The error body is consumed by responseError; close is cleanup.
			_ = resp.Body.Close()
		}()
		return nil, responseError(http.MethodGet, path, resp)
	}
	return &ProgressStream{body: resp.Body, dec: json.NewDecoder(resp.Body), next: after + 1}, nil
}

// Next returns the next unseen event. io.EOF means the server closed the
// stream (it does so after the terminal event); an ErrTransport-matching
// error means the connection dropped mid-stream and the caller should
// reconnect with after set to the last delivered Seq; ErrSeqGap means
// events were lost.
func (s *ProgressStream) Next() (Event, error) {
	for {
		var e Event
		if err := s.dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				return Event{}, io.EOF
			}
			return Event{}, transportError(http.MethodGet, "progress stream", err)
		}
		if e.Seq < s.next {
			// Replayed history this stream's caller has already seen.
			continue
		}
		if e.Seq > s.next {
			return Event{}, fmt.Errorf("%w: got seq %d, want %d", ErrSeqGap, e.Seq, s.next)
		}
		s.next++
		return e, nil
	}
}

// Close releases the underlying connection.
func (s *ProgressStream) Close() error {
	return s.body.Close()
}

// Reconnection pacing for Follow: exponential from reconnectDelay,
// capped by reconnectMax attempts per silent stretch (the counter resets
// whenever an event arrives).
const (
	reconnectDelay = 200 * time.Millisecond
	reconnectMax   = 5
)

// Follow streams job id's progress events through fn (which may be nil)
// until the job reaches a terminal state, and returns that terminal
// event. Dropped connections are reconnected with the last delivered Seq
// as the resume point, with exponential backoff and a bounded number of
// consecutive silent failures; a sequence gap, a non-transport error, or
// an fn error aborts immediately.
func (c *Client) Follow(ctx context.Context, id string, fn func(Event) error) (Event, error) {
	after := 0
	fails := 0
	retry := func(err error) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		fails++
		if fails > reconnectMax {
			return fmt.Errorf("api: progress %s: giving up after %d reconnect attempts: %w", id, reconnectMax, err)
		}
		return sleep(ctx, reconnectDelay<<uint(fails-1))
	}
	for {
		stream, err := c.Progress(ctx, id, after)
		if err != nil {
			if !errors.Is(err, ErrTransport) {
				return Event{}, err
			}
			if rerr := retry(err); rerr != nil {
				return Event{}, rerr
			}
			continue
		}
		e, err := followStream(stream, fn, &after, &fails)
		if err == nil {
			return e, nil
		}
		if errors.Is(err, io.EOF) || errors.Is(err, ErrTransport) {
			// The stream ended before the terminal event: the connection
			// dropped, or the daemon restarted. Resume after the last
			// delivered Seq.
			if rerr := retry(err); rerr != nil {
				return Event{}, rerr
			}
			continue
		}
		return Event{}, err
	}
}

// followStream drains one connection, updating the resume point and
// resetting the failure counter on every delivered event.
func followStream(stream *ProgressStream, fn func(Event) error, after, fails *int) (Event, error) {
	defer func() {
		// The stream is finished or broken either way.
		_ = stream.Close()
	}()
	for {
		e, err := stream.Next()
		if err != nil {
			return Event{}, err
		}
		*after = e.Seq
		*fails = 0
		if fn != nil {
			if err := fn(e); err != nil {
				return Event{}, err
			}
		}
		if e.Terminal() {
			return e, nil
		}
	}
}

// sleep waits d, honoring ctx cancellation.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
