// Package api is the versioned wire surface of the experiment daemon:
// the JSON schema cmd/xeond serves, a typed HTTP client for it, and the
// structured error model both share. The daemon (internal/server), the
// CLI (cmd/xeonctl), and the remote shard backend (internal/shard) all
// build on this one package, so the three can never drift apart.
//
// Everything in this file is plain data. The request hash — the identity
// the server keys resumable study journals by — is computed from an
// explicit canonical serialization (see Hash), never from struct field
// order, so renaming or reordering a Go field can never silently orphan
// a journal.
package api

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"xeonomp/internal/counters"
	"xeonomp/internal/sched"
)

// StudyRequest is the POST /api/v1/study body: one named study of the
// paper plus the result-affecting knobs of core.Options. Zero values
// select the defaults noted per field, so `{"study":"single"}` is a
// complete full-scale request.
type StudyRequest struct {
	// Study is the short study name: "single", "pair" or "cross"
	// (core.StudyNames).
	Study string `json:"study"`
	// Scale multiplies every benchmark's instruction budget; 0 selects
	// 1.0, the paper's full workload. Servers cap it at their -max-scale.
	Scale float64 `json:"scale,omitempty"`
	// Seed is the trial seed; 0 selects 1, the golden artifacts' seed.
	Seed uint64 `json:"seed,omitempty"`
	// Policy is the thread-placement policy: "alternate" (default),
	// "block", "round-robin" or "symbiotic".
	Policy string `json:"policy,omitempty"`
}

// Normalized returns the request with defaults filled in — the form the
// server hashes, budgets, and executes.
func (r StudyRequest) Normalized() StudyRequest {
	if r.Scale == 0 {
		r.Scale = 1.0
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Policy == "" {
		r.Policy = "alternate"
	}
	return r
}

// Canonical returns the canonical serialization of the normalized
// request: a JSON object with the fields in the pinned order study,
// scale, seed, policy, each value encoded by encoding/json. This is the
// byte layout Hash digests. It is deliberately independent of the Go
// struct's field order and tags, and TestCanonicalStability pins the
// exact bytes: changing them orphans every resumable study journal on
// every deployed daemon, so any change must bump the journal naming
// scheme alongside.
func (r StudyRequest) Canonical() ([]byte, error) {
	n := r.Normalized()
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, f := range []struct {
		key   string
		value any
	}{
		{"study", n.Study},
		{"scale", n.Scale},
		{"seed", n.Seed},
		{"policy", n.Policy},
	} {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteByte('"')
		buf.WriteString(f.key)
		buf.WriteString(`":`)
		v, err := json.Marshal(f.value)
		if err != nil {
			return nil, fmt.Errorf("api: canonicalizing study request field %q: %w", f.key, err)
		}
		buf.Write(v)
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// Hash returns the content address of the normalized request — the
// identity the server keys study journals by, so an interrupted study
// resumes when the same request is submitted again, and the affinity
// input the shard layer partitions on.
func (r StudyRequest) Hash() (string, error) {
	b, err := r.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8]), nil
}

// Job states reported in StudyStatus.State and terminal progress events.
const (
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// StudyStatus is the GET /api/v1/study/{id} body (and the 202 response
// to a submission). Artifacts lists the golden artifact names available
// under /api/v1/study/{id}/artifacts/{name} once the job is done; each
// of those responses is byte-identical to the file a local
// `xeonchar -export-json` run writes for the same study and options.
type StudyStatus struct {
	ID          string   `json:"id"`
	Study       string   `json:"study"`
	State       string   `json:"state"`
	Cells       int      `json:"cells"`
	DoneCells   int      `json:"done_cells"`
	CachedCells int      `json:"cached_cells"`
	Error       string   `json:"error,omitempty"`
	Artifacts   []string `json:"artifacts,omitempty"`
}

// Event is one line of the /progress/{id} stream (newline-delimited
// JSON): a completed cell, or — when State is set — the job's terminal
// event. Seq is dense from 1 over the job's full history, which is what
// lets a reconnecting client detect gaps (ProgressStream does).
type Event struct {
	Seq    int    `json:"seq"`
	Cell   string `json:"cell,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	Done   int    `json:"done"`
	Total  int    `json:"total"`
	State  string `json:"state,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Terminal reports whether this is the job's final event.
func (e Event) Terminal() bool { return e.State != "" }

// CellRequest is the POST /api/v1/cell body: one simulation cell,
// executed synchronously. Benchmarks holds one program (single-program
// cell) or two (a co-scheduled pair, the paper's multi-program
// methodology). Defaults mirror StudyRequest.
type CellRequest struct {
	Benchmarks []string `json:"benchmarks"`
	Config     string   `json:"config"`
	Scale      float64  `json:"scale,omitempty"`
	Seed       uint64   `json:"seed,omitempty"`
	Policy     string   `json:"policy,omitempty"`
}

// CellProgram is one program's outcome within a CellResponse. Counters
// carries the program's non-zero hardware counters by event name — the
// full-fidelity payload a remote backend rebuilds its RunResult from
// (metrics are re-derived from counters on the receiving side, so a
// served cell can never disagree with what counters.Derive produces
// there); Metrics is the derived view for human readers and thin
// clients.
type CellProgram struct {
	Benchmark string            `json:"benchmark"`
	Threads   int               `json:"threads"`
	Cycles    int64             `json:"cycles"`
	Counters  map[string]uint64 `json:"counters,omitempty"`
	Metrics   counters.Metrics  `json:"metrics"`
}

// CellResponse is the POST /api/v1/cell response. Cached reports whether
// the cell was served from the shared run cache, journal, or an
// identical in-flight computation rather than simulated for this call.
type CellResponse struct {
	Cached     bool          `json:"cached"`
	WallCycles int64         `json:"wall_cycles"`
	Programs   []CellProgram `json:"programs"`
}

// ErrorResponse is the body of every non-2xx JSON response. Code is one
// of the Code* constants (errors.go); clients should branch on it (via
// Client's typed errors), never on the human-readable Error text.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// ParsePolicy maps the wire policy names onto sched placement policies,
// the same names cmd/xeonchar's -policy flag accepts.
func ParsePolicy(s string) (sched.Policy, error) {
	switch s {
	case "", "alternate":
		return sched.Alternate, nil
	case "block":
		return sched.Block, nil
	case "round-robin":
		return sched.RoundRobin, nil
	case "symbiotic":
		return sched.Symbiotic, nil
	}
	return 0, fmt.Errorf("unknown policy %q (have alternate, block, round-robin, symbiotic)", s)
}

// PolicyName is the inverse of ParsePolicy: the wire name of a sched
// placement policy, as a remote backend must serialize it.
func PolicyName(p sched.Policy) (string, error) {
	switch p {
	case sched.Alternate:
		return "alternate", nil
	case sched.Block:
		return "block", nil
	case sched.RoundRobin:
		return "round-robin", nil
	case sched.Symbiotic:
		return "symbiotic", nil
	}
	return "", fmt.Errorf("policy %v has no wire name", p)
}
