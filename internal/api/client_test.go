package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// eventServer streams canned NDJSON progress events, one script entry
// per connection (connection n gets script[min(n, len-1)]).
type eventServer struct {
	conns  atomic.Int64
	script [][]Event
}

func (s *eventServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := int(s.conns.Add(1)) - 1
	if n >= len(s.script) {
		n = len(s.script) - 1
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, e := range s.script[n] {
		// Encode failures surface as a truncated stream client-side.
		_ = enc.Encode(e)
	}
}

func cellEvent(seq int) Event {
	return Event{Seq: seq, Cell: fmt.Sprintf("cell-%d", seq), Done: seq, Total: 4}
}

func TestProgressSeqGapDetected(t *testing.T) {
	srv := &eventServer{script: [][]Event{{cellEvent(1), cellEvent(2), cellEvent(4)}}}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	stream, err := NewClient(ts.URL).Progress(context.Background(), "job-1", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		// The stream is drained or broken by the assertions above.
		_ = stream.Close()
	}()
	for want := 1; want <= 2; want++ {
		e, err := stream.Next()
		if err != nil || e.Seq != want {
			t.Fatalf("event %d: (%+v, %v)", want, e, err)
		}
	}
	if _, err := stream.Next(); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("after a dropped event: error %v, want ErrSeqGap", err)
	}
}

func TestProgressSkipsReplayedPrefix(t *testing.T) {
	srv := &eventServer{script: [][]Event{{cellEvent(1), cellEvent(2), cellEvent(3), {Seq: 4, State: StateDone, Done: 4, Total: 4}}}}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	stream, err := NewClient(ts.URL).Progress(context.Background(), "job-1", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		// Drained to EOF below.
		_ = stream.Close()
	}()
	e, err := stream.Next()
	if err != nil || e.Seq != 3 {
		t.Fatalf("first unseen event: (%+v, %v), want seq 3", e, err)
	}
	e, err = stream.Next()
	if err != nil || !e.Terminal() {
		t.Fatalf("terminal event: (%+v, %v)", e, err)
	}
	if _, err := stream.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("after the server closed: %v, want io.EOF", err)
	}
}

// TestFollowReconnects drops the connection mid-history and verifies
// Follow resumes from the last delivered Seq: every event exactly once,
// in order, ending with the terminal event.
func TestFollowReconnects(t *testing.T) {
	full := []Event{cellEvent(1), cellEvent(2), cellEvent(3), {Seq: 4, State: StateDone, Done: 4, Total: 4}}
	srv := &eventServer{script: [][]Event{
		full[:2], // first connection dies after seq 2
		full,     // reconnection replays the whole history
	}}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var got []int
	last, err := NewClient(ts.URL).Follow(context.Background(), "job-1", func(e Event) error {
		got = append(got, e.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if last.State != StateDone {
		t.Errorf("terminal event %+v, want state %s", last, StateDone)
	}
	want := []int{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("delivered seqs %v, want %v (no duplicates, no gaps)", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered seqs %v, want %v", got, want)
		}
	}
	if c := srv.conns.Load(); c != 2 {
		t.Errorf("server saw %d connections, want 2", c)
	}
}

func TestFollowAbortsOnSeqGap(t *testing.T) {
	srv := &eventServer{script: [][]Event{{cellEvent(1), cellEvent(3)}}}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	_, err := NewClient(ts.URL).Follow(context.Background(), "job-1", nil)
	if !errors.Is(err, ErrSeqGap) {
		t.Fatalf("error %v, want ErrSeqGap", err)
	}
	if c := srv.conns.Load(); c != 1 {
		t.Errorf("Follow reconnected %d times after a seq gap; a gap must abort", c-1)
	}
}

func TestFollowGivesUpAfterRepeatedFailures(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	ts.Close() // nothing listens: every connection is a transport error
	start := time.Now()
	_, err := NewClient(ts.URL).Follow(context.Background(), "job-1", nil)
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("error %v, want ErrTransport after exhausting reconnects", err)
	}
	// Backoff is 200ms * (1+2+4+8+16) ≈ 6.2s worst case; just assert it
	// did not spin forever and did wait at least the first backoff.
	if d := time.Since(start); d < reconnectDelay {
		t.Errorf("gave up after %v, faster than one backoff period", d)
	}
}

// TestErrorMapping pins the typed-error contract of non-2xx responses:
// structured codes map to sentinels, Retry-After is surfaced, and
// status-only responses (servers predating codes) still map.
func TestErrorMapping(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/study", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusTooManyRequests)
		// Test fixture; an encode failure fails the assertions below.
		_ = json.NewEncoder(w).Encode(ErrorResponse{Error: "8 cells over budget", Code: CodeOverBudget})
	})
	mux.HandleFunc("/api/v1/study/legacy", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no such job", http.StatusNotFound) // plain text, no code
	})
	mux.HandleFunc("/api/v1/study/gone/artifacts/figure2", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusConflict)
		_ = json.NewEncoder(w).Encode(ErrorResponse{Error: "job is canceled", Code: CodeConflict})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	_, err := c.SubmitStudy(ctx, StudyRequest{Study: "single"})
	if !errors.Is(err, ErrOverBudget) {
		t.Fatalf("429 mapped to %v, want ErrOverBudget", err)
	}
	var apiErr *Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %v is not a *Error", err)
	}
	if apiErr.RetryAfter != 2*time.Second {
		t.Errorf("RetryAfter %v, want 2s", apiErr.RetryAfter)
	}
	if apiErr.Code != CodeOverBudget || apiErr.Status != http.StatusTooManyRequests {
		t.Errorf("error carries code=%q status=%d", apiErr.Code, apiErr.Status)
	}
	if errors.Is(err, ErrBadRequest) || errors.Is(err, ErrTransport) {
		t.Error("over-budget error matched unrelated sentinels")
	}

	if _, err := c.Study(ctx, "legacy"); !errors.Is(err, ErrNotFound) {
		t.Errorf("code-less 404 mapped to %v, want ErrNotFound via the status fallback", err)
	}
	if _, err := c.Artifact(ctx, "gone", "figure2"); !errors.Is(err, ErrConflict) {
		t.Errorf("409 mapped to %v, want ErrConflict", err)
	}

	ts.Close()
	if _, err := c.Studies(ctx); !errors.Is(err, ErrTransport) {
		t.Errorf("connection refused mapped to %v, want ErrTransport", err)
	}
}

// TestClientHonorsContext: a canceled context surfaces as its own error
// through the ErrTransport chain, so callers can tell "I gave up" from
// "the worker died".
func TestClientHonorsContext(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewClient(ts.URL).Study(ctx, "job-1")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled to remain matchable", err)
	}
}
