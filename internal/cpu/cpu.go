// Package cpu models the Xeon "Paxville" core and its Hyper-Threaded
// hardware contexts. A Core owns the structures the paper lists as shared
// between the two contexts of a core — the execution trace cache, the L1
// data cache, the private-per-core L2, the ITLB/DTLB, the branch prediction
// unit, and the stream prefetcher — and multiplexes issue bandwidth between
// its contexts cycle by cycle, the way Hyper-Threading time-slices the
// front end.
//
// Application threads (internal/cpu.Thread) carry their own instruction
// stream, counter bank and OpenMP team; a hardware Context hosts a run
// queue of threads and time-slices them with a quantum, modeling the Linux
// scheduler behaviour the paper relies on. All latency accounting happens
// here: TLB walks, cache-hierarchy stalls (scaled by the workload's
// memory-level parallelism), branch-flush penalties, trace-cache fill
// bubbles, store-buffer back-pressure, and barrier waits.
package cpu

import (
	"fmt"
	"math"

	"xeonomp/internal/branch"
	"xeonomp/internal/bus"
	"xeonomp/internal/cache"
	"xeonomp/internal/counters"
	"xeonomp/internal/prefetch"
	"xeonomp/internal/tlb"
	"xeonomp/internal/trace"
)

// Latencies collects the exposed-penalty parameters of the core model, in
// core cycles.
type Latencies struct {
	L2Hit          int64 // exposed stall of an L1 miss that hits L2
	TCMiss         int64 // decode bubble on a trace-cache miss
	ITLBWalk       int64 // page-walk penalty, instruction side
	DTLBWalk       int64 // page-walk penalty, data side
	Mispredict     int64 // pipeline flush on branch mispredict
	BTBMiss        int64 // fetch bubble on a taken branch with unknown target
	BarrierRelease int64 // cost of leaving a barrier once released
	IssuePerCycle  int   // micro-ops one context may issue in its cycle
	StoreBuffer    int   // store-buffer entries per context
	SwitchCost     int64 // thread context-switch cost (oversubscribed runs)
	Quantum        int64 // scheduler time slice in cycles

	// SMTSharedMLP scales a thread's memory-level parallelism when the
	// sibling context is active: the Xeon statically partitions the load
	// and store buffers between Hyper-Threaded contexts, halving the
	// reordering window available to each thread.
	SMTSharedMLP float64
	// SMTClash is the probability that an issue by one context delays a
	// simultaneously-ready sibling by a cycle (execution-port contention).
	SMTClash float64
}

// DefaultLatencies returns the calibrated Paxville-like parameters.
func DefaultLatencies() Latencies {
	return Latencies{
		L2Hit:          26,
		TCMiss:         12,
		ITLBWalk:       30,
		DTLBWalk:       30,
		Mispredict:     31, // Prescott-derived pipeline depth
		BTBMiss:        6,
		BarrierRelease: 40,
		IssuePerCycle:  2,
		StoreBuffer:    12,
		SwitchCost:     3000,
		Quantum:        400_000, // ~143 us at 2.8 GHz, in the Linux HZ=250..1000 range scaled down
		SMTSharedMLP:   0.75,
		SMTClash:       0.15,
	}
}

// Validate checks the latency parameters.
func (l Latencies) Validate() error {
	if l.IssuePerCycle <= 0 || l.StoreBuffer <= 0 || l.Quantum <= 0 {
		return fmt.Errorf("cpu: invalid latencies %+v", l)
	}
	return nil
}

// Team is one OpenMP thread team synchronizing at barriers. All threads of
// one program instance share a Team.
type Team struct {
	Size     int
	arrived  int
	releases uint64
	waiting  []*Thread
}

// Releases returns the number of barrier releases the team has performed.
// The cycle engine uses it to detect, from outside the stepped core, that
// a barrier release may have changed thread states on other contexts (the
// one cross-context side effect of stepping a core — see the solo-window
// fast path in internal/machine).
func (tm *Team) Releases() uint64 { return tm.releases }

// NewTeam creates a team of n threads.
func NewTeam(n int) *Team {
	if n <= 0 {
		panic("cpu: team size must be positive")
	}
	return &Team{Size: n}
}

// ThreadState is the lifecycle state of an application thread.
type ThreadState int

// Thread states.
const (
	ThreadRunnable ThreadState = iota
	ThreadBarrier              // arrived at a barrier, waiting for the team
	ThreadDone                 // instruction stream exhausted
)

// Thread is one application thread: a stream, a counter bank, and team
// membership. FinishedAt records the cycle its stream ended.
type Thread struct {
	Name     string
	Program  int // program index within the workload (for multi-program runs)
	Gen      trace.Stream
	Team     *Team
	Counters counters.Set
	State    ThreadState

	// WarmupInstr, when positive, makes the thread zero its counter bank
	// after retiring that many instructions, so derived metrics reflect
	// warm-cache steady state the way a PMU sampling a long run does.
	WarmupInstr int64
	// WarmedAt is the cycle the warmup reset happened (-1 before then).
	WarmedAt int64

	FinishedAt int64

	// mlp and depT cache the two Stream.Params() timing knobs the issue
	// loop reads per instruction. Params returns the full parameter struct
	// by value; copying ~200 bytes twice per instruction was ~10% of a cold
	// study before these were hoisted here (see PERFORMANCE.md). depT is
	// DepProb as a 53-bit integer threshold (see randThreshold): the
	// per-instruction dependency draw compares in the integer domain,
	// skipping the int→float convert of rand().
	mlp  float64
	depT uint64

	retired   int64
	arrivedAt int64
	rngState  uint64
	pending   trace.Instr
	hasPend   bool
}

// NewThread wraps a generator as a schedulable thread of the given team.
func NewThread(name string, program int, gen trace.Stream, team *Team) *Thread {
	p := gen.Params()
	return &Thread{
		Name:     name,
		Program:  program,
		Gen:      gen,
		Team:     team,
		WarmedAt: -1,
		mlp:      p.MLP,
		depT:     randThreshold(p.DepProb),
		rngState: hash64(name),
	}
}

// randThreshold converts probability p to the integer threshold q such
// that rand() < p ⟺ randBits() < q, exactly: rand() is float64(z>>11)/2^53
// with the division exact, so the comparison holds iff z>>11 < ⌈p·2^53⌉
// (for integral p·2^53 the strict compare makes ⌈·⌉ the right bound too).
func randThreshold(p float64) uint64 {
	return uint64(math.Ceil(p * (1 << 53)))
}

func hash64(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return h
}

// rand returns a uniform float64 in [0,1) from the thread's private stream,
// used only for timing decisions (dependency bubbles), never for the
// instruction stream itself.
func (t *Thread) rand() float64 {
	return float64(t.randBits()) / (1 << 53)
}

// randBits returns the raw 53-bit draw behind rand(); comparing it against
// a randThreshold value is exactly equivalent to comparing rand() against
// the probability, without the integer→float conversion.
func (t *Thread) randBits() uint64 {
	t.rngState += 0x9e3779b97f4a7c15
	z := t.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return z >> 11
}

// next returns the thread's next record, honoring a previously deferred one.
func (t *Thread) next(in *trace.Instr) bool {
	if t.hasPend {
		*in = t.pending
		t.hasPend = false
		return true
	}
	return t.Gen.Next(in)
}

// defer_ pushes a record back so it is re-delivered by the next call.
func (t *Thread) defer_(in trace.Instr) {
	t.pending = in
	t.hasPend = true
}

// Context is one hardware context (logical processor). It owns a run queue
// of application threads and issues for whichever is mounted.
type Context struct {
	Label   string // paper labeling: A0..A7 / B0..B3
	Core    *Core
	Enabled bool

	runq    []*Thread
	current int     // index into runq, -1 when empty
	cur     *Thread // runq[current], cached: mounted() is on every hot path
	done    int     // threads on runq that reached ThreadDone

	readyAt      int64 // next cycle the mounted thread may issue
	sliceEnd     int64 // quantum expiry for the mounted thread
	storeBuf     []int64
	lastFetchLn  uint64
	lastFetchPg  uint64
	fetchPrimed  bool
	barrierBlock bool // mounted thread is barrier-blocked and nothing else is runnable

	// scratch is the per-context instruction buffer Step decodes into. It
	// lives on the Context (not the Step stack) because passing a stack
	// variable through the Stream interface makes it escape — one heap
	// allocation per Step call, ~19% of a cold study's allocation volume.
	scratch trace.Instr
}

// Core is one physical core with its shared structures.
type Core struct {
	ID       string
	Lat      Latencies
	TC       *cache.Cache
	L1D      *cache.Cache
	L2       *cache.Cache
	ITLB     *tlb.TLB
	DTLB     *tlb.TLB
	BP       *branch.Predictor
	PF       *prefetch.Prefetcher
	FSB      *bus.FSB
	Contexts []*Context

	// PrefetchGate is the maximum FSB queue delay (cycles) at which the
	// prefetcher is still allowed to issue; beyond it demand traffic has
	// priority and prefetches are dropped.
	PrefetchGate int64

	// Peers are the other cores of the machine, for write-invalidate
	// coherence: a store that gains ownership of a line invalidates every
	// remote copy (wired by internal/machine).
	Peers []*Core

	rr int // round-robin pointer over contexts

	// relEpoch counts barrier releases machine-wide: every core of one
	// machine shares the counter (wired by internal/machine via
	// ShareReleaseEpoch). During a solo window only the solo core steps, so
	// a change of the epoch across one of its steps is exactly "a team with
	// a thread on this core released a barrier" — the one cross-context
	// side effect a step can have — detectable with a single load instead
	// of a walk over every team's release count.
	relEpoch *uint64
}

// NewCore assembles a core. The caller provides the shared structures so
// the machine model can wire both contexts and the chip-level FSB.
func NewCore(id string, lat Latencies, tc, l1d, l2 *cache.Cache, itlb, dtlb *tlb.TLB, bp *branch.Predictor, pf *prefetch.Prefetcher, fsb *bus.FSB, nContexts int) *Core {
	if err := lat.Validate(); err != nil {
		panic(err)
	}
	c := &Core{
		ID: id, Lat: lat, TC: tc, L1D: l1d, L2: l2,
		ITLB: itlb, DTLB: dtlb, BP: bp, PF: pf, FSB: fsb,
		PrefetchGate: 64,
		relEpoch:     new(uint64),
	}
	for i := 0; i < nContexts; i++ {
		c.Contexts = append(c.Contexts, &Context{Core: c, current: -1})
	}
	return c
}

// Assign appends a thread to the context's run queue.
func (x *Context) Assign(t *Thread) {
	x.runq = append(x.runq, t)
	if t.State == ThreadDone {
		x.done++
	}
	if x.current < 0 {
		x.current = 0
		x.cur = t
	}
}

// QueueLen returns the number of threads (in any state) on the context.
func (x *Context) QueueLen() int { return len(x.runq) }

// Threads returns the context's run queue.
func (x *Context) Threads() []*Thread { return x.runq }

// mounted returns the currently mounted thread, or nil.
func (x *Context) mounted() *Thread { return x.cur }

// Mounted returns the thread currently occupying the context, or nil.
func (x *Context) Mounted() *Thread { return x.mounted() }

// allDone reports whether every thread on the context has finished. The
// done counter is maintained at the single ThreadDone transition in Step
// (plus Assign, for pre-finished threads) so this is O(1) — it runs once
// per Machine advancement per context.
func (x *Context) allDone() bool {
	return x.done == len(x.runq)
}

// AllDone reports whether every thread on the context has finished.
func (x *Context) AllDone() bool { return x.allDone() }

// Clear empties the run queue and resets all per-context machine state.
// The store-buffer backing array is kept (length zeroed) so a recycled
// context does not re-grow it; everything observable is reset.
func (x *Context) Clear() {
	x.runq = nil
	x.current = -1
	x.cur = nil
	x.done = 0
	x.readyAt = 0
	x.sliceEnd = 0
	x.storeBuf = x.storeBuf[:0]
	x.lastFetchLn = 0
	x.lastFetchPg = 0
	x.fetchPrimed = false
	x.barrierBlock = false
	x.scratch = trace.Instr{}
}

// switchTo rotates to the next thread that is not Done, preferring runnable
// threads over barrier-blocked ones. Returns false if nothing can run.
// Switching between distinct programs flushes the core TLBs (address-space
// change), as on the real machine.
func (x *Context) switchTo(now int64) bool {
	n := len(x.runq)
	if n == 0 {
		return false
	}
	prev := x.mounted()
	pick := -1
	// First pass: runnable threads after current.
	for i := 1; i <= n; i++ {
		c := (x.current + i) % n
		if x.runq[c].State == ThreadRunnable {
			pick = c
			break
		}
	}
	if pick < 0 {
		x.barrierBlock = true
		return false
	}
	nxt := x.runq[pick]
	if nxt != prev {
		if prev != nil && prev.Program != nxt.Program {
			x.Core.ITLB.Flush()
			x.Core.DTLB.Flush()
		}
		x.readyAt = now + x.Core.Lat.SwitchCost
		x.fetchPrimed = false
	}
	x.current = pick
	x.cur = nxt
	x.sliceEnd = now + x.Core.Lat.Quantum
	x.barrierBlock = false
	return true
}

// ready reports whether the context can issue at cycle now.
func (x *Context) ready(now int64) bool {
	if !x.Enabled || x.barrierBlock {
		return false
	}
	t := x.mounted()
	if t == nil || t.State != ThreadRunnable {
		return false
	}
	return now >= x.readyAt
}

// NextEvent returns the earliest future cycle at which the context could
// possibly issue again, or -1 if it never will (done or blocked on a
// barrier that someone else must release).
func (x *Context) NextEvent(now int64) int64 {
	if !x.Enabled {
		return -1
	}
	t := x.mounted()
	if t == nil || x.allDone() {
		return -1
	}
	if x.barrierBlock || t.State != ThreadRunnable {
		// Blocked until a barrier release elsewhere makes a thread
		// runnable; once that has happened, the context can recover.
		if !x.anyRunnable() {
			return -1
		}
	}
	if x.readyAt > now {
		return x.readyAt
	}
	return now
}

// QuietWake classifies the context for batched clock advancement (see
// internal/machine's advancement contract). Called with the cycle the
// machine is about to advance to, it returns:
//
//   - -1 if the context is inert: disabled, empty, all threads done, or
//     barrier-blocked with no release pending. Stepping it at any cycle is
//     a no-op and it imposes no wake-up.
//   - 0 if the context must be offered the very next cycle, because its
//     step path would MUTATE state whose values depend on the call-time
//     cycle: barrier-release recovery (readyFull clears barrierBlock and
//     may switch threads), or a mounted non-Runnable thread (readyFull
//     calls switchTo, which stamps readyAt/sliceEnd from `now`), or a
//     mounted Runnable thread that is already ready.
//   - w > now if the context is purely stalled until cycle w: mounted
//     thread Runnable, not barrier-blocked, readyAt = w. Every Step offer
//     in [now, w) is provably a read-only no-op (ready() is false and no
//     recovery path triggers), so the machine may jump the clock straight
//     to w without changing any observable state.
//
// This classification is deliberately conservative: any case that is not
// provably a no-op window returns 0, forcing cycle-by-cycle stepping, so
// the optimized engine stays byte-identical with the reference loop.
func (x *Context) QuietWake(now int64) int64 {
	if !x.Enabled {
		return -1
	}
	t := x.mounted()
	if t == nil || x.allDone() {
		return -1
	}
	if x.barrierBlock {
		if !x.anyRunnable() {
			return -1 // parked until a release elsewhere
		}
		return 0 // recovery pending; readyFull must run now
	}
	if t.State != ThreadRunnable {
		return 0 // switchTo would stamp state from the call-time cycle
	}
	if x.readyAt > now {
		return x.readyAt
	}
	return 0
}

// stall charges n stall cycles to the mounted thread and blocks issue.
func (x *Context) stall(t *Thread, now, n int64) {
	if n <= 0 {
		return
	}
	t.Counters.Add(counters.StallCycles, uint64(n))
	if now+n > x.readyAt {
		x.readyAt = now + n
	}
}

// memorySubsystem resolves a data access for thread t at cycle now and
// returns the exposed stall in cycles. write selects store semantics.
func (c *Core) memorySubsystem(x *Context, t *Thread, now int64, addr uint64, write bool) int64 {
	var stall int64

	// DTLB.
	t.Counters.Inc(counters.DTLBAccess)
	if !c.DTLB.Access(addr) {
		t.Counters.Inc(counters.DTLBMiss)
		stall += c.Lat.DTLBWalk
	}

	// L1 data cache.
	t.Counters.Inc(counters.L1DAccess)
	if lr := c.L1D.Lookup(addr, write); lr.Hit {
		if write && !lr.WasDirty {
			// First write to a clean line: gain ownership. A line this
			// core already dirtied cannot have remote copies, so the
			// coherence probe is skipped on the (dominant) dirty-hit path.
			c.invalidatePeers(t, addr, now)
		}
		return stall
	}
	t.Counters.Inc(counters.L1DMiss)

	// L2.
	t.Counters.Inc(counters.L2Access)
	lr := c.L2.Lookup(addr, write)
	if lr.Hit {
		if lr.HitPrefetched {
			t.Counters.Inc(counters.PrefetchUseful)
		}
		c.fillL1(t, addr, write, now)
		if write {
			return stall // stores drain via the store buffer; L2 hit absorbs them
		}
		return stall + c.Lat.L2Hit
	}
	t.Counters.Inc(counters.L2Miss)

	// Miss to memory. Stores go through the store buffer as RFOs and do not
	// stall unless the buffer is full; loads expose latency scaled by MLP.
	line := c.L2.LineAddr(addr)
	c.prefetchOnMiss(t, line, now)
	if write {
		c.invalidatePeers(t, addr, now)
		stall += x.storeMiss(t, now)
	} else {
		done := c.FSB.Issue(now, bus.DemandRead)
		t.Counters.Inc(counters.BusDemandRead)
		t.Counters.Add(counters.MemReadBytes, uint64(c.L2.Config().LineSize))
		mlp := t.mlp
		if c.siblingActive(x) {
			// Load/store buffers are statically partitioned between the
			// contexts when both are active, shrinking the miss-overlap
			// window each thread can sustain.
			mlp *= c.Lat.SMTSharedMLP
		}
		// Overlap hides DRAM access latency, but queueing on a loaded bus
		// delays every outstanding miss and cannot be hidden.
		lat := done - now
		unloaded := c.FSB.UnloadedLatency()
		queue := lat - unloaded
		if queue < 0 {
			queue = 0
		}
		stall += int64(float64(unloaded)*(1-mlp)) + queue
	}
	c.fillL2(t, addr, write, now)
	c.fillL1(t, addr, write, now)
	return stall
}

// storeMiss issues an RFO through the store buffer, returning any stall due
// to a full buffer.
func (x *Context) storeMiss(t *Thread, now int64) int64 {
	c := x.Core
	// Retire completed entries.
	live := x.storeBuf[:0]
	for _, done := range x.storeBuf {
		if done > now {
			live = append(live, done)
		}
	}
	x.storeBuf = live
	var stall int64
	if len(x.storeBuf) >= c.Lat.StoreBuffer {
		oldest := x.storeBuf[0]
		for _, d := range x.storeBuf {
			if d < oldest {
				oldest = d
			}
		}
		if oldest > now {
			stall = oldest - now
		}
		// One entry drains.
		idx := 0
		for i, d := range x.storeBuf {
			if d == oldest {
				idx = i
				break
			}
		}
		x.storeBuf = append(x.storeBuf[:idx], x.storeBuf[idx+1:]...)
	}
	done := c.FSB.Issue(now+stall, bus.RFO)
	t.Counters.Inc(counters.BusRFO)
	t.Counters.Add(counters.MemReadBytes, uint64(c.L2.Config().LineSize))
	x.storeBuf = append(x.storeBuf, done)
	return stall
}

// siblingActive reports whether another context of the core currently has
// an unfinished thread mounted.
func (c *Core) siblingActive(x *Context) bool {
	for _, o := range c.Contexts {
		if o == x || !o.Enabled {
			continue
		}
		if t := o.mounted(); t != nil && !o.allDone() {
			return true
		}
	}
	return false
}

// invalidatePeers removes the line containing addr from every other core's
// caches (write-invalidate coherence). A remote dirty copy is transferred —
// modeled as a posted writeback on the remote chip's FSB — and each remote
// hit costs one invalidation transaction on this core's FSB.
func (c *Core) invalidatePeers(t *Thread, addr uint64, now int64) {
	for _, p := range c.Peers {
		p1, d1 := p.L1D.Invalidate(addr)
		p2, d2 := p.L2.Invalidate(addr)
		if !p1 && !p2 {
			continue
		}
		t.Counters.Inc(counters.BusInvalidate)
		c.FSB.Issue(now, bus.Writeback) // snoop/upgrade occupies the bus like a posted transfer
		if d1 || d2 {
			// Dirty remote data comes back over the remote chip's bus.
			p.FSB.Issue(now, bus.Writeback)
			t.Counters.Add(counters.MemWriteBytes, uint64(c.L2.Config().LineSize))
		}
	}
}

// pollute delays the sibling contexts of x by up to n cycles (shared
// front-end disruption from a flush).
func (c *Core) pollute(x *Context, now, n int64) {
	if n <= 0 {
		return
	}
	for _, o := range c.Contexts {
		if o == x || !o.Enabled {
			continue
		}
		if t := o.mounted(); t == nil || o.allDone() {
			continue
		}
		if o.readyAt < now+n {
			o.readyAt = now + n
		}
	}
}

// fillL2 installs a line in L2, writing back a dirty victim.
func (c *Core) fillL2(t *Thread, addr uint64, write bool, now int64) {
	fr := c.L2.Fill(addr, write, false)
	if fr.Evicted && fr.EvictedDirty {
		c.FSB.Issue(now, bus.Writeback)
		t.Counters.Inc(counters.BusWriteback)
		t.Counters.Add(counters.MemWriteBytes, uint64(c.L2.Config().LineSize))
	}
}

// fillL1 installs a line in L1; a dirty L1 victim is absorbed by L2
// (write-back within the chip, no bus traffic unless L2 evicts later).
func (c *Core) fillL1(t *Thread, addr uint64, write bool, now int64) {
	fr := c.L1D.Fill(addr, write, false)
	if fr.Evicted && fr.EvictedDirty {
		// Write the victim into L2, possibly cascading a bus writeback.
		f2 := c.L2.Fill(fr.EvictedAddr, true, false)
		if f2.Evicted && f2.EvictedDirty {
			c.FSB.Issue(now, bus.Writeback)
			t.Counters.Inc(counters.BusWriteback)
			t.Counters.Add(counters.MemWriteBytes, uint64(c.L2.Config().LineSize))
		}
	}
}

// prefetchOnMiss feeds the stream prefetcher and issues gated prefetches.
func (c *Core) prefetchOnMiss(t *Thread, line uint64, now int64) {
	cands := c.PF.OnMiss(line)
	if len(cands) == 0 {
		return
	}
	for _, p := range cands {
		t.Counters.Inc(counters.PrefetchIssued)
		if c.FSB.QueueDelay(now) > c.PrefetchGate {
			continue // bus busy: drop the prefetch
		}
		if c.L2.Probe(p) {
			continue
		}
		c.FSB.Issue(now, bus.Prefetch)
		t.Counters.Inc(counters.BusPrefetch)
		t.Counters.Add(counters.MemReadBytes, uint64(c.L2.Config().LineSize))
		fr := c.L2.Fill(p, false, true)
		if fr.Evicted && fr.EvictedDirty {
			c.FSB.Issue(now, bus.Writeback)
			t.Counters.Inc(counters.BusWriteback)
			t.Counters.Add(counters.MemWriteBytes, uint64(c.L2.Config().LineSize))
		}
	}
}

// fetch models trace-cache and ITLB behaviour for the instruction at pc.
// Fetch structures are consulted when execution crosses into a new
// trace-cache line or page.
func (c *Core) fetch(x *Context, t *Thread, now int64, pc uint64) int64 {
	var stall int64
	ln := c.TC.LineAddr(pc)
	if x.fetchPrimed && ln == x.lastFetchLn {
		return 0
	}
	pg := c.ITLB.Page(pc)
	if !x.fetchPrimed || pg != x.lastFetchPg {
		t.Counters.Inc(counters.ITLBAccess)
		if !c.ITLB.Access(pc) {
			t.Counters.Inc(counters.ITLBMiss)
			stall += c.Lat.ITLBWalk
		}
	}
	t.Counters.Inc(counters.TCAccess)
	if !c.TC.Lookup(pc, false).Hit {
		t.Counters.Inc(counters.TCMiss)
		c.TC.Fill(pc, false, false)
		stall += c.Lat.TCMiss
	}
	x.lastFetchLn = ln
	x.lastFetchPg = pg
	x.fetchPrimed = true
	return stall
}

// arriveBarrier parks thread t at its team barrier; the last arrival
// releases the whole team. Returns true if the team released immediately.
func arriveBarrier(t *Thread, now, releaseCost int64) bool {
	tm := t.Team
	t.State = ThreadBarrier
	t.arrivedAt = now
	tm.arrived++
	tm.waiting = append(tm.waiting, t)
	if tm.arrived < tm.Size {
		return false
	}
	for _, w := range tm.waiting {
		wait := now - w.arrivedAt
		if wait > 0 {
			w.Counters.Add(counters.BarrierCycles, uint64(wait))
		}
		w.State = ThreadRunnable
	}
	tm.waiting = tm.waiting[:0]
	tm.arrived = 0
	tm.releases++
	return true
}

// Step lets the core issue for one cycle. It returns true if any micro-op
// was issued. Hyper-Threading is modeled as strict round-robin selection of
// one ready context per cycle; the selected context issues up to
// IssuePerCycle micro-ops.
func (c *Core) Step(now int64) bool {
	n := len(c.Contexts)
	var x *Context
	switch n {
	case 1:
		// Single hardware context (HT off): no arbitration, and rr can
		// only ever be 0, so skip the round-robin scan.
		if c.Contexts[0].readyFull(now) {
			x = c.Contexts[0]
		}
	case 2:
		// Hyper-Threading: two contexts, strict round robin, unrolled.
		a := c.rr
		if cand := c.Contexts[a]; cand.readyFull(now) {
			x = cand
			c.rr = 1 - a
		} else if cand := c.Contexts[1-a]; cand.readyFull(now) {
			x = cand
			c.rr = a
		}
	default:
		idx := c.rr
		for i := 0; i < n; i++ {
			if idx >= n {
				idx -= n
			}
			cand := c.Contexts[idx]
			if cand.readyFull(now) {
				x = cand
				c.rr = idx + 1
				if c.rr >= n {
					c.rr = 0
				}
				break
			}
			idx++
		}
	}
	if x == nil {
		return false
	}
	t := x.mounted()

	// Quantum expiry with other runnable threads present: preempt.
	if now >= x.sliceEnd && len(x.runq) > 1 {
		x.switchTo(now)
		t = x.mounted()
		if t == nil || !x.ready(now) {
			return false
		}
	}

	// Execution-port contention: with the sibling context also ready this
	// cycle, the shared decode/issue resources sometimes halve the group.
	width := c.Lat.IssuePerCycle
	if n > 1 && width > 1 && c.Lat.SMTClash > 0 {
		for _, o := range c.Contexts {
			if o != x && o.ready(now) {
				if t.rand() < c.Lat.SMTClash {
					width = 1
				}
				break
			}
		}
	}

	issued := 0
	for issued < width {
		in := &x.scratch
		if !t.next(in) {
			t.State = ThreadDone
			t.FinishedAt = now
			x.done++
			x.switchTo(now)
			return issued > 0
		}
		if in.Kind == trace.Barrier {
			released := arriveBarrier(t, now, c.Lat.BarrierRelease)
			if released {
				*c.relEpoch++
				x.stallNoCount(now, c.Lat.BarrierRelease)
			} else {
				// Try to run something else on this context.
				x.switchTo(now)
			}
			return issued > 0
		}

		stall := c.fetch(x, t, now, in.PC)
		t.Counters.Inc(counters.Instructions)
		t.retired++
		if t.WarmupInstr > 0 && t.WarmedAt < 0 && t.retired >= t.WarmupInstr {
			t.Counters.Reset()
			t.WarmedAt = now
		}
		issued++

		switch in.Kind {
		case trace.Compute:
			// No extra latency beyond the issue slot.
		case trace.Load:
			stall += c.memorySubsystem(x, t, now, in.Addr, false)
		case trace.Store:
			stall += c.memorySubsystem(x, t, now, in.Addr, true)
		case trace.Branch:
			t.Counters.Inc(counters.BranchRetired)
			out := c.BP.Resolve(in.PC, in.Taken, in.Target)
			if out.Mispredicted {
				t.Counters.Inc(counters.BranchMispredicted)
				stall += c.Lat.Mispredict
				// The flush drains the shared front end: wrong-path
				// micro-ops occupied the trace-cache fill and issue
				// structures the sibling also uses.
				c.pollute(x, now, c.Lat.Mispredict/2)
			} else if out.BTBMiss && in.Taken {
				stall += c.Lat.BTBMiss
			}
		}
		if stall > 0 {
			x.stall(t, now, stall)
			break
		}
		// Dependency bubble ends the issue group.
		if t.depT > 0 && t.randBits() < t.depT {
			x.stallNoCount(now, 1)
			break
		}
	}
	if issued > 0 && x.readyAt <= now {
		x.readyAt = now + 1
	}
	return issued > 0
}

// StepWindow drives context x — which must be the core's only active
// context — from cycle `from` until the window closes, and returns the
// cycle it stopped at. It is the fused fast path for internal/machine's
// solo windows: the per-cycle Step/QuietWake/accrue round-trips of the
// generic loop collapse into one tight loop with segment-batched cycle
// accounting.
//
// The loop is cycle-for-cycle equivalent to the generic solo loop (and so
// to the reference engine):
//
//   - bound (earliest off-core wake, -1 for none) and limit (cycle budget,
//     0 for none) close the window exactly where the generic loop's
//     top-of-loop checks would.
//   - After an issuing step the clock jumps straight to x's readyAt when it
//     is purely stalled — the inlined equivalent of QuietWake — capped at
//     bound, and only when the jump start is inside the limit.
//   - After a non-issuing step the clock advances to x's next event, capped
//     at bound; with no event the window closes and the machine resolves
//     done/deadlock at the returned cycle.
//
// watchRelease selects the non-self-contained mode: when a step changes
// the machine-wide release epoch — a barrier release that may have made
// threads on other cores runnable — the window stops with released=true
// and `issued` reporting that step's outcome, and the caller completes the
// cycle exactly as the reference engine would (offering it to the cores
// after this one, then accruing the advancement). A core whose teams are
// all local never needs the probe and passes false.
//
// Cycle accounting matches machine.accrue: each advancement charges the
// post-step mounted, not-Done thread. Because that chargeable thread only
// changes inside Step — only this core steps during a solo window — whole
// segments between changes are charged with a single counter add instead
// of one per advancement.
func (c *Core) StepWindow(x *Context, from, bound, limit int64, watchRelease bool) (now int64, issued, released bool) {
	now = from
	seg := now
	epoch := *c.relEpoch
	var t *Thread // chargeable mounted thread over [seg, now)
	if u := x.cur; u != nil && u.State != ThreadDone {
		t = u
	}
	settle := func(upto int64) {
		if t != nil && upto > seg {
			t.Counters.Add(counters.Cycles, uint64(upto-seg))
		}
		seg = upto
	}
	for {
		if bound >= 0 && now >= bound {
			settle(now)
			return now, false, false
		}
		if limit > 0 && now >= limit {
			settle(now)
			return now, false, false
		}
		if x.done == len(x.runq) {
			settle(now)
			return now, false, false
		}
		issued = c.Step(now)
		if t != nil && t.WarmedAt == now {
			// The warmup threshold fired inside this step: Counters.Reset
			// discarded everything accrued so far, and the reference engine
			// charged all of the pending segment before that reset. Drop it
			// instead of (wrongly) applying it post-reset.
			seg = now
		}
		if watchRelease && *c.relEpoch != epoch {
			// A release escaped the core; the advancement off this cycle is
			// the caller's to charge (post-step states of all cores).
			settle(now)
			return now, issued, true
		}
		u := x.cur
		if u != nil && u.State == ThreadDone {
			u = nil
		}
		if u != t {
			settle(now)
			t = u
		}
		nxt := now + 1
		if !issued {
			ev := x.NextEvent(now)
			if bound >= 0 && (ev < 0 || bound < ev) {
				ev = bound
			}
			if ev < 0 {
				settle(now)
				return now, false, false
			}
			if ev > nxt {
				nxt = ev
			}
		} else if limit <= 0 || nxt < limit {
			// Inlined QuietWake: after an issuing step the context is
			// enabled with a mounted thread; it is purely stalled iff that
			// thread is still Runnable, no barrier recovery is pending, and
			// readyAt is in the future.
			if u != nil && u.State == ThreadRunnable && !x.barrierBlock && x.readyAt > nxt {
				w := x.readyAt
				if bound >= 0 && bound < w {
					w = bound
				}
				nxt = w
			}
		}
		now = nxt
	}
}

// StepWindow2 is StepWindow for a Hyper-Threaded core whose two contexts
// are both active: the same fused solo-window loop, with the segment
// accounting and wake classification carried for both contexts. The window
// semantics, closing conditions, and equivalence argument are identical to
// StepWindow's; arbitration between the contexts stays inside Step, so the
// issue interleaving is untouched.
func (c *Core) StepWindow2(x0, x1 *Context, from, bound, limit int64, watchRelease bool) (now int64, issued, released bool) {
	now = from
	seg := now
	epoch := *c.relEpoch
	chargeable := func(x *Context) *Thread {
		if u := x.cur; u != nil && u.State != ThreadDone {
			return u
		}
		return nil
	}
	t0, t1 := chargeable(x0), chargeable(x1)
	settle := func(upto int64) {
		if upto > seg {
			d := uint64(upto - seg)
			if t0 != nil {
				t0.Counters.Add(counters.Cycles, d)
			}
			if t1 != nil {
				t1.Counters.Add(counters.Cycles, d)
			}
		}
		seg = upto
	}
	for {
		if bound >= 0 && now >= bound {
			settle(now)
			return now, false, false
		}
		if limit > 0 && now >= limit {
			settle(now)
			return now, false, false
		}
		if x0.done == len(x0.runq) && x1.done == len(x1.runq) {
			settle(now)
			return now, false, false
		}
		issued = c.Step(now)
		w0 := t0 != nil && t0.WarmedAt == now
		w1 := t1 != nil && t1.WarmedAt == now
		if w0 || w1 {
			// A warmup reset discards that thread's pending segment (see
			// StepWindow); the sibling's pending charge still applies.
			if now > seg {
				d := uint64(now - seg)
				if t0 != nil && !w0 {
					t0.Counters.Add(counters.Cycles, d)
				}
				if t1 != nil && !w1 {
					t1.Counters.Add(counters.Cycles, d)
				}
			}
			seg = now
		}
		if watchRelease && *c.relEpoch != epoch {
			settle(now)
			return now, issued, true
		}
		u0, u1 := chargeable(x0), chargeable(x1)
		if u0 != t0 || u1 != t1 {
			settle(now)
			t0, t1 = u0, u1
		}
		nxt := now + 1
		if !issued {
			ev := x0.NextEvent(now)
			if e := x1.NextEvent(now); e >= 0 && (ev < 0 || e < ev) {
				ev = e
			}
			if bound >= 0 && (ev < 0 || bound < ev) {
				ev = bound
			}
			if ev < 0 {
				settle(now)
				return now, false, false
			}
			if ev > nxt {
				nxt = ev
			}
		} else if limit <= 0 || nxt < limit {
			// quietUntil over exactly two contexts: 0 forbids the jump,
			// -1 imposes nothing, >nxt bounds it.
			q0 := x0.QuietWake(nxt)
			if q0 != 0 {
				q1 := x1.QuietWake(nxt)
				if q1 != 0 {
					best := nxt
					if q0 > nxt {
						best = q0
					}
					if q1 > nxt && (best == nxt || q1 < best) {
						best = q1
					}
					if best > nxt {
						if bound >= 0 && bound < best {
							best = bound
						}
						nxt = best
					}
				}
			}
		}
		now = nxt
	}
}

// readyFull is ready() plus barrier-release recovery: a context whose
// mounted thread was released from a barrier becomes schedulable again.
func (x *Context) readyFull(now int64) bool {
	t := x.cur
	if t == nil {
		return false
	}
	// Fast path: the overwhelmingly common case is a runnable mounted
	// thread with no barrier recovery pending.
	if !x.barrierBlock && t.State == ThreadRunnable {
		return x.Enabled && now >= x.readyAt
	}
	if x.barrierBlock {
		// Re-check: a barrier release elsewhere may have made a thread runnable.
		if !x.anyRunnable() {
			return false
		}
		x.barrierBlock = false
		if t.State != ThreadRunnable {
			x.switchTo(now)
			t = x.mounted()
			if t == nil {
				return false
			}
		}
	}
	if t.State == ThreadBarrier {
		if !x.switchTo(now) {
			return false
		}
	} else if t.State == ThreadDone {
		if !x.switchTo(now) {
			return false
		}
	}
	return x.ready(now)
}

func (x *Context) anyRunnable() bool {
	for _, t := range x.runq {
		if t.State == ThreadRunnable {
			return true
		}
	}
	return false
}

// stallNoCount blocks issue without charging stall-cycle counters (used for
// barrier release and dependency bubbles, which are not PMU stalls).
func (x *Context) stallNoCount(now, n int64) {
	if now+n > x.readyAt {
		x.readyAt = now + n
	}
}

// Prewarm installs the steady-state cache contents for every thread queued
// on the context: hot sets into L1 (and L2, maintaining inclusion of the
// model's fill path), warm footprints into L2. It models the fact that the
// paper's measurements sample minutes of execution, far past cold start.
func (x *Context) Prewarm() {
	c := x.Core
	for _, t := range x.runq {
		for _, a := range t.Gen.WarmSet() {
			c.L2.Fill(a, false, false)
		}
		for _, a := range t.Gen.HotSet() {
			c.L2.Fill(a, false, false)
			c.L1D.Fill(a, false, false)
		}
	}
}

// Done reports whether every thread on every context of the core finished.
func (c *Core) Done() bool {
	for _, x := range c.Contexts {
		if x.Enabled && !x.allDone() {
			return false
		}
	}
	return true
}

// Reset restores the core to power-on state so a recycled core is
// indistinguishable from a freshly built one: caches and TLBs are reset
// including their internal replacement clocks and policy RNG (a plain
// Flush keeps those ticking, which would diverge under the Random
// replacement policy), branch predictor and prefetcher re-initialize, the
// round-robin context-arbitration pointer returns to context 0, and every
// context is cleared and disabled. Contrast with machine.Reset, which
// deliberately preserves arbitration state for back-to-back phases of one
// experiment (see internal/lmbench).
func (c *Core) Reset() {
	c.TC.Reset()
	c.L1D.Reset()
	c.L2.Reset()
	c.ITLB.Reset()
	c.DTLB.Reset()
	c.BP.Reset()
	c.PF.Reset()
	c.rr = 0
	for _, x := range c.Contexts {
		x.Enabled = false
		x.Clear()
	}
}

// ReleaseEpoch returns the machine-wide barrier-release counter shared by
// this core (see the relEpoch field).
func (c *Core) ReleaseEpoch() uint64 { return *c.relEpoch }

// ShareReleaseEpoch rewires the core's release-epoch counter to p, so all
// cores of one machine observe every release. Called once at machine build.
func (c *Core) ShareReleaseEpoch(p *uint64) { c.relEpoch = p }

// InvalidatePeersForTest exposes the coherence path for cross-package tests.
func (c *Core) InvalidatePeersForTest(t *Thread, addr uint64, now int64) {
	c.invalidatePeers(t, addr, now)
}
