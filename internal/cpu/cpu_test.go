package cpu

import (
	"testing"

	"xeonomp/internal/counters"
	"xeonomp/internal/mem"
	"xeonomp/internal/trace"
)

// testCore builds a one-chip, one-core machine fragment directly, without
// importing internal/machine (which would create an import cycle in tests).
func testCoreParams() trace.Params {
	return trace.Params{
		LoadFrac: 0.3, StoreFrac: 0.1, BranchFrac: 0.1,
		HotFrac: 0.9, SeqFrac: 0.05, RandFrac: 0.05,
		HotBytes: 2048, SharedFrac: 0.5,
		LoopLen: 20, ChunkInstr: 1000,
		MLP: 0.5,
	}
}

func newThread(t *testing.T, name string, layout *mem.Layout, tid int, budget int64, team *Team) *Thread {
	t.Helper()
	gen, err := trace.NewGenerator(testCoreParams(), layout, tid, budget, 1)
	if err != nil {
		t.Fatal(err)
	}
	return NewThread(name, 0, gen, team)
}

func TestLatenciesValidate(t *testing.T) {
	if err := DefaultLatencies().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultLatencies()
	bad.IssuePerCycle = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero issue width should be invalid")
	}
	bad = DefaultLatencies()
	bad.Quantum = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero quantum should be invalid")
	}
}

func TestNewTeamPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTeam(0)
}

func TestThreadDefer(t *testing.T) {
	l, err := mem.NewLayout(1, 1, 4096, 1<<20, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	th := newThread(t, "t", l, 0, 100, NewTeam(1))
	var a, b trace.Instr
	if !th.next(&a) {
		t.Fatal("no first instruction")
	}
	th.defer_(a)
	if !th.next(&b) || b != a {
		t.Fatal("deferred instruction not redelivered")
	}
}

func TestThreadRandDeterministicPerName(t *testing.T) {
	l, _ := mem.NewLayout(1, 1, 4096, 1<<20, 1<<20)
	t1 := newThread(t, "same", l, 0, 10, NewTeam(1))
	t2 := newThread(t, "same", l, 0, 10, NewTeam(1))
	for i := 0; i < 100; i++ {
		if t1.rand() != t2.rand() {
			t.Fatal("thread rand not deterministic by name")
		}
	}
	t3 := newThread(t, "other", l, 0, 10, NewTeam(1))
	diff := false
	for i := 0; i < 10; i++ {
		if t1.rand() != t3.rand() {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different names produced identical rand streams")
	}
}

func TestContextAssignAndClear(t *testing.T) {
	l, _ := mem.NewLayout(1, 2, 4096, 1<<20, 1<<20)
	x := &Context{current: -1}
	if x.Mounted() != nil {
		t.Fatal("empty context has a mounted thread")
	}
	team := NewTeam(2)
	x.Assign(newThread(t, "a", l, 0, 10, team))
	x.Assign(newThread(t, "b", l, 1, 10, team))
	if x.QueueLen() != 2 || x.Mounted() == nil {
		t.Fatal("assign bookkeeping wrong")
	}
	if x.AllDone() {
		t.Fatal("fresh threads reported done")
	}
	x.Clear()
	if x.QueueLen() != 0 || x.Mounted() != nil {
		t.Fatal("clear incomplete")
	}
}

func TestArriveBarrierReleasesTeam(t *testing.T) {
	l, _ := mem.NewLayout(1, 2, 4096, 1<<20, 1<<20)
	team := NewTeam(2)
	a := newThread(t, "a", l, 0, 10, team)
	b := newThread(t, "b", l, 1, 10, team)

	if released := arriveBarrier(a, 100, 0); released {
		t.Fatal("first arrival must not release")
	}
	if a.State != ThreadBarrier {
		t.Fatal("first arrival not parked")
	}
	if released := arriveBarrier(b, 250, 0); !released {
		t.Fatal("last arrival must release")
	}
	if a.State != ThreadRunnable || b.State != ThreadRunnable {
		t.Fatal("team not runnable after release")
	}
	// The early arriver was charged its wait.
	if a.Counters.Get(counters.BarrierCycles) != 150 {
		t.Fatalf("barrier wait = %d, want 150", a.Counters.Get(counters.BarrierCycles))
	}
	if b.Counters.Get(counters.BarrierCycles) != 0 {
		t.Fatalf("last arriver charged %d barrier cycles", b.Counters.Get(counters.BarrierCycles))
	}
	// Reusable for the next phase.
	if released := arriveBarrier(b, 300, 0); released {
		t.Fatal("barrier did not re-arm")
	}
	if released := arriveBarrier(a, 300, 0); !released {
		t.Fatal("second phase did not release")
	}
}

func TestWarmupResetsCounters(t *testing.T) {
	l, _ := mem.NewLayout(1, 1, 4096, 1<<20, 1<<20)
	th := newThread(t, "w", l, 0, 1000, NewTeam(1))
	th.WarmupInstr = 600
	// Simulate retirement bookkeeping the way Step does.
	for i := 0; i < 1000; i++ {
		th.Counters.Inc(counters.Instructions)
		th.retired++
		if th.WarmupInstr > 0 && th.WarmedAt < 0 && th.retired >= th.WarmupInstr {
			th.Counters.Reset()
			th.WarmedAt = 12345
		}
	}
	if th.WarmedAt != 12345 {
		t.Fatal("warmup reset did not trigger")
	}
	if got := th.Counters.Get(counters.Instructions); got != 400 {
		t.Fatalf("post-warmup instructions = %d, want 400", got)
	}
}
