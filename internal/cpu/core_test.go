package cpu

import (
	"testing"

	"xeonomp/internal/branch"
	"xeonomp/internal/bus"
	"xeonomp/internal/cache"
	"xeonomp/internal/counters"
	"xeonomp/internal/mem"
	"xeonomp/internal/prefetch"
	"xeonomp/internal/tlb"
	"xeonomp/internal/trace"
	"xeonomp/internal/units"
)

// buildCore assembles a standalone two-context core with Paxville-like
// structures for direct pipeline tests.
func buildCore(t *testing.T) *Core {
	t.Helper()
	freq := units.Frequency(2.8 * units.GHz)
	memc := bus.NewMemory(bus.MemConfig{
		Channels: 2, ChannelBandwidth: 2.215e9, LatencyNs: 136.85, LineSize: 64, Freq: freq,
	})
	fsb := bus.NewFSB(bus.FSBConfig{Name: "f", Bandwidth: 3.57e9, LineSize: 64, Freq: freq}, memc)
	return NewCore("t", DefaultLatencies(),
		cache.New(cache.Config{Name: "tc", Size: 16 * units.KiB, LineSize: 64, Assoc: 8}),
		cache.New(cache.Config{Name: "l1", Size: 16 * units.KiB, LineSize: 64, Assoc: 8}),
		cache.New(cache.Config{Name: "l2", Size: 1 * units.MiB, LineSize: 64, Assoc: 8}),
		tlb.New(tlb.Config{Name: "itlb", Entries: 64, Assoc: 4, PageSize: 4096}),
		tlb.New(tlb.Config{Name: "dtlb", Entries: 64, Assoc: 4, PageSize: 4096}),
		branch.New(branch.Config{PHTBits: 12, HistoryBits: 10, BTBEntries: 2048}),
		prefetch.New(prefetch.Config{Streams: 8, Degree: 2, LineSize: 64, PageSize: 4096, MaxStride: 2}),
		fsb, 2)
}

// mount places a thread on context idx of the core.
func mount(t *testing.T, c *Core, idx int, params trace.Params, budget int64, team *Team, name string) *Thread {
	t.Helper()
	l, err := mem.NewLayout(1, 2, 64<<10, 8<<20, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	g, err := trace.NewGenerator(params, l, idx, budget, 5)
	if err != nil {
		t.Fatal(err)
	}
	th := NewThread(name, 0, g, team)
	c.Contexts[idx].Enabled = true
	c.Contexts[idx].Assign(th)
	return th
}

// drive steps the core until every thread is done or the cycle cap hits.
func drive(t *testing.T, c *Core, cap int64) int64 {
	t.Helper()
	var now int64
	for ; now < cap; now++ {
		if c.Done() {
			return now
		}
		// Jump over globally-stalled windows like the machine engine does.
		if !c.Step(now) {
			min := int64(-1)
			for _, x := range c.Contexts {
				if ev := x.NextEvent(now); ev >= 0 && (min < 0 || ev < min) {
					min = ev
				}
			}
			if min > now {
				now = min - 1
			}
		}
	}
	if !c.Done() {
		t.Fatalf("core did not finish within %d cycles", cap)
	}
	return now
}

func storeHeavyParams() trace.Params {
	return trace.Params{
		LoadFrac: 0.05, StoreFrac: 0.6, BranchFrac: 0.05,
		RandFrac:   1.0, // every store misses: hammer the store buffer
		SharedFrac: 0.0,
		LoopLen:    32, ChunkInstr: 100000, MLP: 0.3,
	}
}

func TestStoreBufferBackPressure(t *testing.T) {
	c := buildCore(t)
	th := mount(t, c, 0, storeHeavyParams(), 4000, NewTeam(1), "stores")
	drive(t, c, 50_000_000)
	if th.Counters.Get(counters.BusRFO) == 0 {
		t.Fatal("no RFOs issued for store misses")
	}
	// A full store buffer must eventually stall the context.
	if th.Counters.Get(counters.StallCycles) == 0 {
		t.Fatal("store-heavy random workload never stalled")
	}
}

func TestFetchStructuresCount(t *testing.T) {
	c := buildCore(t)
	p := trace.Params{
		LoadFrac: 0.2, StoreFrac: 0.05, BranchFrac: 0.1,
		HotFrac: 1.0, HotBytes: 4096,
		LoopLen: 64, ChunkInstr: 100000, MLP: 0.3,
		CodeHotBytes: 32 * 1024, // exceeds the 16 KiB trace cache
		CodeJumpProb: 0.001,
	}
	th := mount(t, c, 0, p, 50_000, NewTeam(1), "fetch")
	drive(t, c, 50_000_000)
	if th.Counters.Get(counters.TCAccess) == 0 || th.Counters.Get(counters.TCMiss) == 0 {
		t.Fatalf("trace cache not exercised: %d/%d",
			th.Counters.Get(counters.TCMiss), th.Counters.Get(counters.TCAccess))
	}
	if th.Counters.Get(counters.ITLBAccess) == 0 {
		t.Fatal("ITLB never consulted")
	}
}

func TestSiblingActive(t *testing.T) {
	c := buildCore(t)
	team := NewTeam(2)
	mount(t, c, 0, storeHeavyParams(), 1000, team, "a")
	mount(t, c, 1, storeHeavyParams(), 1000, team, "b")
	if !c.siblingActive(c.Contexts[0]) {
		t.Fatal("sibling with mounted thread not detected")
	}
	drive(t, c, 50_000_000)
	if c.siblingActive(c.Contexts[0]) {
		t.Fatal("finished sibling still reported active")
	}
}

func TestPollute(t *testing.T) {
	c := buildCore(t)
	team := NewTeam(2)
	mount(t, c, 0, storeHeavyParams(), 1000, team, "a")
	mount(t, c, 1, storeHeavyParams(), 1000, team, "b")
	c.pollute(c.Contexts[0], 100, 10)
	if c.Contexts[1].readyAt < 110 {
		t.Fatalf("sibling readyAt %d, want >= 110", c.Contexts[1].readyAt)
	}
	// Never shortens an existing longer stall.
	c.Contexts[1].readyAt = 500
	c.pollute(c.Contexts[0], 100, 10)
	if c.Contexts[1].readyAt != 500 {
		t.Fatal("pollute shortened a longer stall")
	}
}

func TestQuantumPreemption(t *testing.T) {
	// Two single-thread programs on one context: after a quantum the other
	// thread must get the CPU; both finish.
	c := buildCore(t)
	c.Lat.Quantum = 5000
	l1, _ := mem.NewLayout(1, 1, 64<<10, 8<<20, 4<<20)
	l2, _ := mem.NewLayout(2, 1, 64<<10, 8<<20, 4<<20)
	p := trace.Params{
		LoadFrac: 0.2, StoreFrac: 0.05, BranchFrac: 0.1,
		HotFrac: 1.0, HotBytes: 4096,
		LoopLen: 32, ChunkInstr: 100000, MLP: 0.3,
	}
	g1, _ := trace.NewGenerator(p, l1, 0, 50_000, 1)
	g2, _ := trace.NewGenerator(p, l2, 0, 50_000, 2)
	a := NewThread("a", 0, g1, NewTeam(1))
	b := NewThread("b", 1, g2, NewTeam(1))
	c.Contexts[0].Enabled = true
	c.Contexts[0].Assign(a)
	c.Contexts[0].Assign(b)
	drive(t, c, 100_000_000)
	if a.State != ThreadDone || b.State != ThreadDone {
		t.Fatal("time-sliced threads did not both finish")
	}
	// Interleaving means neither finish time can precede the other by the
	// full budget: thread b must have run before a finished.
	if b.FinishedAt < a.FinishedAt/4 {
		t.Fatalf("suspicious finish times: a=%d b=%d", a.FinishedAt, b.FinishedAt)
	}
}

func TestPrewarmPopulatesCaches(t *testing.T) {
	c := buildCore(t)
	p := trace.Params{
		LoadFrac: 0.3, StoreFrac: 0.1, BranchFrac: 0.1,
		HotFrac: 0.8, WarmFrac: 0.2,
		HotBytes: 4096, WarmBytes: 192 * 512, WarmStride: 192,
		LoopLen: 32, ChunkInstr: 100000, MLP: 0.3,
	}
	mount(t, c, 0, p, 1000, NewTeam(1), "warm")
	if c.L2.ValidLines() != 0 {
		t.Fatal("L2 dirty before prewarm")
	}
	c.Contexts[0].Prewarm()
	if c.L2.ValidLines() == 0 || c.L1D.ValidLines() == 0 {
		t.Fatal("prewarm did not populate the caches")
	}
}
