// Package cache implements the set-associative cache model used for every
// cache-like structure in the simulated Xeon: the per-core execution trace
// cache, the 16 KB shared L1 data cache, and the private 1 MB L2. Caches are
// write-allocate and write-back, with true-LRU replacement within a set.
//
// The model is functional, not timed: Lookup and Fill report hits, misses,
// and evictions, and the pipeline model (internal/cpu) charges the latency.
// Because both Hyper-Threaded contexts of a core share the same Cache
// instance, the capacity contention the paper attributes to HT emerges
// directly from interleaved fills.
package cache

import (
	"fmt"

	"xeonomp/internal/units"
)

// Replacement selects the victim policy within a set.
type Replacement int

// Replacement policies.
const (
	// LRU is true least-recently-used, the model's default. Its cyclic-scan
	// pathology (a loop over slightly-more-than-capacity misses every time)
	// is part of the Hyper-Threading contention story.
	LRU Replacement = iota
	// Random picks a pseudo-random victim; kept for ablations, since it
	// degrades gracefully where LRU falls off a cliff.
	Random
)

// String names the policy.
func (r Replacement) String() string {
	switch r {
	case LRU:
		return "lru"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("replacement(%d)", int(r))
	}
}

// Config describes one cache.
type Config struct {
	Name     string // for error messages and reports
	Size     int64  // total capacity in bytes; must be a power of two
	LineSize int64  // line size in bytes; must be a power of two
	Assoc    int    // ways per set; Size/LineSize must be divisible by Assoc
	// Policy selects the replacement policy (default LRU).
	Policy Replacement
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.Size <= 0 || !units.IsPow2(c.Size) {
		return fmt.Errorf("cache %s: size %d not a positive power of two", c.Name, c.Size)
	}
	if c.LineSize <= 0 || !units.IsPow2(c.LineSize) {
		return fmt.Errorf("cache %s: line size %d not a positive power of two", c.Name, c.LineSize)
	}
	if c.LineSize > c.Size {
		return fmt.Errorf("cache %s: line size %d exceeds size %d", c.Name, c.LineSize, c.Size)
	}
	lines := c.Size / c.LineSize
	if c.Assoc <= 0 || lines%int64(c.Assoc) != 0 {
		return fmt.Errorf("cache %s: associativity %d does not divide %d lines", c.Name, c.Assoc, lines)
	}
	if !units.IsPow2(lines / int64(c.Assoc)) {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, lines/int64(c.Assoc))
	}
	if c.Policy != LRU && c.Policy != Random {
		return fmt.Errorf("cache %s: unknown replacement policy %v", c.Name, c.Policy)
	}
	return nil
}

type way struct {
	tag        uint64
	valid      bool
	dirty      bool
	prefetched bool   // filled by the hardware prefetcher, not yet demanded
	stamp      uint64 // LRU timestamp: larger = more recent
}

// Cache is one set-associative cache instance.
type Cache struct {
	cfg       Config
	ways      []way // numSets * assoc, set-major
	numSets   uint64
	lineShift uint
	setMask   uint64
	clock     uint64 // LRU stamp source
	rand      uint64 // LCG state for Random replacement
}

// New builds a cache from cfg. It panics on an invalid configuration, since
// configurations are compile-time constants of the machine model.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	numSets := uint64(cfg.Size / cfg.LineSize / int64(cfg.Assoc))
	return &Cache{
		cfg:       cfg,
		ways:      make([]way, numSets*uint64(cfg.Assoc)),
		numSets:   numSets,
		lineShift: units.Log2(cfg.LineSize),
		setMask:   numSets - 1,
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return int(c.numSets) }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr >> c.lineShift << c.lineShift
}

func (c *Cache) set(addr uint64) []way {
	s := (addr >> c.lineShift) & c.setMask
	base := s * uint64(c.cfg.Assoc)
	return c.ways[base : base+uint64(c.cfg.Assoc)]
}

// LookupResult reports the outcome of a demand access.
type LookupResult struct {
	Hit           bool
	HitPrefetched bool // hit on a line brought in by the prefetcher (first demand touch)
	WasDirty      bool // the line was already dirty before this access (hits only)
}

// Lookup performs a demand access to addr. On a hit the line's LRU stamp is
// refreshed and, for a write, the line is marked dirty. On a miss the cache
// is unchanged; the caller is expected to resolve the miss and then Fill.
func (c *Cache) Lookup(addr uint64, write bool) LookupResult {
	tag := addr >> c.lineShift
	set := c.set(addr)
	c.clock++
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == tag {
			w.stamp = c.clock
			hp := w.prefetched
			wd := w.dirty
			w.prefetched = false
			if write {
				w.dirty = true
			}
			return LookupResult{Hit: true, HitPrefetched: hp, WasDirty: wd}
		}
	}
	return LookupResult{}
}

// Probe reports whether addr is present without touching LRU state.
func (c *Cache) Probe(addr uint64) bool {
	tag := addr >> c.lineShift
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// FillResult reports what a Fill displaced.
type FillResult struct {
	Evicted      bool
	EvictedDirty bool
	EvictedAddr  uint64 // line address of the victim, valid when Evicted
}

// Fill installs the line containing addr, evicting the LRU way if the set is
// full. write marks the new line dirty; prefetch marks it as a speculative
// fill. Filling a line that is already present refreshes it in place (and
// upgrades dirtiness) without eviction.
func (c *Cache) Fill(addr uint64, write, prefetch bool) FillResult {
	tag := addr >> c.lineShift
	set := c.set(addr)
	c.clock++

	// Already present: refresh. A demand fill clears the prefetched mark.
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == tag {
			w.stamp = c.clock
			if write {
				w.dirty = true
			}
			if !prefetch {
				w.prefetched = false
			}
			return FillResult{}
		}
	}

	// Choose victim: an invalid way if any, else per the policy.
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		switch c.cfg.Policy {
		case Random:
			c.rand = c.rand*6364136223846793005 + 1442695040888963407
			victim = int((c.rand >> 33) % uint64(c.cfg.Assoc))
		default: // LRU
			victim = 0
			for i := range set {
				if set[i].stamp < set[victim].stamp {
					victim = i
				}
			}
		}
	}
	w := &set[victim]
	res := FillResult{}
	if w.valid {
		res.Evicted = true
		res.EvictedDirty = w.dirty
		res.EvictedAddr = w.tag << c.lineShift
	}
	*w = way{tag: tag, valid: true, dirty: write, prefetched: prefetch, stamp: c.clock}
	return res
}

// Invalidate removes the line containing addr if present, reporting whether
// it was present and dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	tag := addr >> c.lineShift
	set := c.set(addr)
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == tag {
			present, dirty = true, w.dirty
			*w = way{}
			return
		}
	}
	return
}

// Flush invalidates every line.
func (c *Cache) Flush() {
	for i := range c.ways {
		c.ways[i] = way{}
	}
}

// ValidLines returns the number of valid lines, for tests and occupancy
// reporting.
func (c *Cache) ValidLines() int {
	n := 0
	for i := range c.ways {
		if c.ways[i].valid {
			n++
		}
	}
	return n
}
