// Package cache implements the set-associative cache model used for every
// cache-like structure in the simulated Xeon: the per-core execution trace
// cache, the 16 KB shared L1 data cache, and the private 1 MB L2. Caches are
// write-allocate and write-back, with true-LRU replacement within a set.
//
// The model is functional, not timed: Lookup and Fill report hits, misses,
// and evictions, and the pipeline model (internal/cpu) charges the latency.
// Because both Hyper-Threaded contexts of a core share the same Cache
// instance, the capacity contention the paper attributes to HT emerges
// directly from interleaved fills.
package cache

import (
	"fmt"

	"xeonomp/internal/units"
)

// Replacement selects the victim policy within a set.
type Replacement int

// Replacement policies.
const (
	// LRU is true least-recently-used, the model's default. Its cyclic-scan
	// pathology (a loop over slightly-more-than-capacity misses every time)
	// is part of the Hyper-Threading contention story.
	LRU Replacement = iota
	// Random picks a pseudo-random victim; kept for ablations, since it
	// degrades gracefully where LRU falls off a cliff.
	Random
)

// String names the policy.
func (r Replacement) String() string {
	switch r {
	case LRU:
		return "lru"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("replacement(%d)", int(r))
	}
}

// Config describes one cache.
type Config struct {
	Name     string // for error messages and reports
	Size     int64  // total capacity in bytes; must be a power of two
	LineSize int64  // line size in bytes; must be a power of two
	Assoc    int    // ways per set; Size/LineSize must be divisible by Assoc
	// Policy selects the replacement policy (default LRU).
	Policy Replacement
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.Size <= 0 || !units.IsPow2(c.Size) {
		return fmt.Errorf("cache %s: size %d not a positive power of two", c.Name, c.Size)
	}
	if c.LineSize <= 0 || !units.IsPow2(c.LineSize) {
		return fmt.Errorf("cache %s: line size %d not a positive power of two", c.Name, c.LineSize)
	}
	if c.LineSize > c.Size {
		return fmt.Errorf("cache %s: line size %d exceeds size %d", c.Name, c.LineSize, c.Size)
	}
	lines := c.Size / c.LineSize
	if c.Assoc <= 0 || lines%int64(c.Assoc) != 0 {
		return fmt.Errorf("cache %s: associativity %d does not divide %d lines", c.Name, c.Assoc, lines)
	}
	if !units.IsPow2(lines / int64(c.Assoc)) {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, lines/int64(c.Assoc))
	}
	if c.Policy != LRU && c.Policy != Random {
		return fmt.Errorf("cache %s: unknown replacement policy %v", c.Name, c.Policy)
	}
	return nil
}

// Per-way state bits, kept in the flags array. Validity is not a flag:
// empty ways hold invalidTag, so the hot tag scan needs no second load.
const (
	fDirty      uint8 = 1 << iota
	fPrefetched       // filled by the hardware prefetcher, not yet demanded
)

// invalidTag marks an empty way. Tags are addr>>lineShift with
// lineShift ≥ 5, so no reachable address can produce it.
const invalidTag = ^uint64(0)

// Cache is one set-associative cache instance. Line state is kept
// structure-of-arrays, set-major: the tag scan on the Lookup hot path then
// walks one contiguous run of uint64s (a single hardware cache line for an
// 8-way set) instead of striding through an array of structs, and the
// sentinel tag for empty ways keeps the scan to that single array.
type Cache struct {
	cfg       Config
	tags      []uint64 // numSets * assoc; invalidTag when the way is empty
	stamps    []uint64 // LRU timestamps: larger = more recent
	flags     []uint8  // fDirty | fPrefetched
	assoc     uint64
	numSets   uint64
	lineShift uint
	setMask   uint64
	clock     uint64 // LRU stamp source
	rand      uint64 // LCG state for Random replacement
}

// New builds a cache from cfg. It panics on an invalid configuration, since
// configurations are compile-time constants of the machine model.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	numSets := uint64(cfg.Size / cfg.LineSize / int64(cfg.Assoc))
	n := numSets * uint64(cfg.Assoc)
	c := &Cache{
		cfg:       cfg,
		tags:      make([]uint64, n),
		stamps:    make([]uint64, n),
		flags:     make([]uint8, n),
		assoc:     uint64(cfg.Assoc),
		numSets:   numSets,
		lineShift: units.Log2(cfg.LineSize),
		setMask:   numSets - 1,
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return int(c.numSets) }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr >> c.lineShift << c.lineShift
}

// setBase returns the index of the first way of addr's set.
func (c *Cache) setBase(addr uint64) uint64 {
	return ((addr >> c.lineShift) & c.setMask) * c.assoc
}

// LookupResult reports the outcome of a demand access.
type LookupResult struct {
	Hit           bool
	HitPrefetched bool // hit on a line brought in by the prefetcher (first demand touch)
	WasDirty      bool // the line was already dirty before this access (hits only)
}

// Lookup performs a demand access to addr. On a hit the line's LRU stamp is
// refreshed and, for a write, the line is marked dirty. On a miss the cache
// is unchanged; the caller is expected to resolve the miss and then Fill.
func (c *Cache) Lookup(addr uint64, write bool) LookupResult {
	tag := addr >> c.lineShift
	base := c.setBase(addr)
	c.clock++
	tags := c.tags[base : base+c.assoc]
	for i := range tags {
		if tags[i] == tag {
			j := base + uint64(i)
			f := c.flags[j]
			c.stamps[j] = c.clock
			hp := f&fPrefetched != 0
			wd := f&fDirty != 0
			f &^= fPrefetched
			if write {
				f |= fDirty
			}
			c.flags[j] = f
			return LookupResult{Hit: true, HitPrefetched: hp, WasDirty: wd}
		}
	}
	return LookupResult{}
}

// Probe reports whether addr is present without touching LRU state.
func (c *Cache) Probe(addr uint64) bool {
	tag := addr >> c.lineShift
	base := c.setBase(addr)
	tags := c.tags[base : base+c.assoc]
	for i := range tags {
		if tags[i] == tag {
			return true
		}
	}
	return false
}

// FillResult reports what a Fill displaced.
type FillResult struct {
	Evicted      bool
	EvictedDirty bool
	EvictedAddr  uint64 // line address of the victim, valid when Evicted
}

// Fill installs the line containing addr, evicting the LRU way if the set is
// full. write marks the new line dirty; prefetch marks it as a speculative
// fill. Filling a line that is already present refreshes it in place (and
// upgrades dirtiness) without eviction.
func (c *Cache) Fill(addr uint64, write, prefetch bool) FillResult {
	tag := addr >> c.lineShift
	base := c.setBase(addr)
	c.clock++

	// Already present: refresh. A demand fill clears the prefetched mark.
	for j := base; j < base+c.assoc; j++ {
		if c.tags[j] == tag {
			c.stamps[j] = c.clock
			if write {
				c.flags[j] |= fDirty
			}
			if !prefetch {
				c.flags[j] &^= fPrefetched
			}
			return FillResult{}
		}
	}

	// Choose victim: an invalid way if any, else per the policy.
	victim := uint64(0)
	found := false
	for j := base; j < base+c.assoc; j++ {
		if c.tags[j] == invalidTag {
			victim = j
			found = true
			break
		}
	}
	if !found {
		switch c.cfg.Policy {
		case Random:
			c.rand = c.rand*6364136223846793005 + 1442695040888963407
			victim = base + (c.rand>>33)%c.assoc
		default: // LRU
			victim = base
			for j := base + 1; j < base+c.assoc; j++ {
				if c.stamps[j] < c.stamps[victim] {
					victim = j
				}
			}
		}
	}
	res := FillResult{}
	if c.tags[victim] != invalidTag {
		res.Evicted = true
		res.EvictedDirty = c.flags[victim]&fDirty != 0
		res.EvictedAddr = c.tags[victim] << c.lineShift
	}
	c.tags[victim] = tag
	c.stamps[victim] = c.clock
	f := uint8(0)
	if write {
		f |= fDirty
	}
	if prefetch {
		f |= fPrefetched
	}
	c.flags[victim] = f
	return res
}

// Invalidate removes the line containing addr if present, reporting whether
// it was present and dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	tag := addr >> c.lineShift
	base := c.setBase(addr)
	tags := c.tags[base : base+c.assoc]
	for i := range tags {
		if tags[i] == tag {
			j := base + uint64(i)
			present, dirty = true, c.flags[j]&fDirty != 0
			c.tags[j] = invalidTag
			c.stamps[j] = 0
			c.flags[j] = 0
			return
		}
	}
	return
}

// Flush invalidates every line. The LRU stamp clock and the Random-policy
// RNG keep ticking: a flushed cache mid-experiment is empty but not
// "new". Use Reset to return to power-on state.
func (c *Cache) Flush() {
	for i := range c.flags {
		c.tags[i] = invalidTag
		c.stamps[i] = 0
		c.flags[i] = 0
	}
}

// Reset restores power-on state: all lines invalid AND the internal LRU
// stamp clock and Random-replacement RNG rewound to zero, so a recycled
// Cache behaves bit-for-bit like one freshly built by New. Machine pooling
// depends on this distinction — Flush alone would leave the Random policy's
// victim sequence mid-stream.
func (c *Cache) Reset() {
	c.Flush()
	c.clock = 0
	c.rand = 0
}

// ValidLines returns the number of valid lines, for tests and occupancy
// reporting.
func (c *Cache) ValidLines() int {
	n := 0
	for _, t := range c.tags {
		if t != invalidTag {
			n++
		}
	}
	return n
}
