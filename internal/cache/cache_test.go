package cache

import (
	"testing"
	"testing/quick"

	"xeonomp/internal/units"
)

func smallConfig() Config {
	return Config{Name: "test", Size: 1024, LineSize: 64, Assoc: 2} // 8 sets x 2 ways
}

func TestConfigValidate(t *testing.T) {
	good := smallConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Name: "sz", Size: 0, LineSize: 64, Assoc: 1},
		{Name: "sz2", Size: 1000, LineSize: 64, Assoc: 1}, // not pow2
		{Name: "ln", Size: 1024, LineSize: 48, Assoc: 1},
		{Name: "big", Size: 64, LineSize: 128, Assoc: 1},
		{Name: "as", Size: 1024, LineSize: 64, Assoc: 0},
		{Name: "as2", Size: 1024, LineSize: 64, Assoc: 5}, // 16 lines not divisible
		{Name: "st", Size: 1024, LineSize: 64, Assoc: 16}, // hmm: 16 lines/16 ways = 1 set, pow2 -> actually valid
	}
	for _, c := range bad[:6] {
		if err := c.Validate(); err == nil {
			t.Errorf("config %v should be invalid", c)
		}
	}
	// Fully associative is legal.
	if err := (Config{Name: "fa", Size: 1024, LineSize: 64, Assoc: 16}).Validate(); err != nil {
		t.Errorf("fully associative rejected: %v", err)
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Name: "bad", Size: 100, LineSize: 64, Assoc: 1})
}

func TestMissThenFillThenHit(t *testing.T) {
	c := New(smallConfig())
	addr := uint64(0x1000)
	if c.Lookup(addr, false).Hit {
		t.Fatal("cold cache must miss")
	}
	c.Fill(addr, false, false)
	if !c.Lookup(addr, false).Hit {
		t.Fatal("filled line must hit")
	}
	// Same line, different offset.
	if !c.Lookup(addr+63, false).Hit {
		t.Fatal("same line must hit at any offset")
	}
	if c.Lookup(addr+64, false).Hit {
		t.Fatal("next line must miss")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(smallConfig()) // 8 sets, 2 ways
	setStride := uint64(8 * 64)
	a := uint64(0)       // set 0
	b := a + setStride   // set 0
	d := a + 2*setStride // set 0
	c.Fill(a, false, false)
	c.Fill(b, false, false)
	c.Lookup(a, false) // refresh a: b becomes LRU
	fr := c.Fill(d, false, false)
	if !fr.Evicted || fr.EvictedAddr != b {
		t.Fatalf("expected b evicted, got %+v", fr)
	}
	if !c.Probe(a) || !c.Probe(d) || c.Probe(b) {
		t.Fatal("LRU state wrong after eviction")
	}
}

func TestDirtyEvictionReported(t *testing.T) {
	c := New(smallConfig())
	setStride := uint64(8 * 64)
	c.Fill(0, true, false) // dirty
	c.Fill(setStride, false, false)
	fr := c.Fill(2*setStride, false, false)
	if !fr.Evicted || !fr.EvictedDirty || fr.EvictedAddr != 0 {
		t.Fatalf("dirty eviction not reported: %+v", fr)
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := New(smallConfig())
	setStride := uint64(8 * 64)
	c.Fill(0, false, false)
	c.Lookup(0, true) // write hit dirties the line
	c.Fill(setStride, false, false)
	fr := c.Fill(2*setStride, false, false)
	if !fr.EvictedDirty {
		t.Fatal("write-hit line should evict dirty")
	}
}

func TestPrefetchedBitConsumedOnce(t *testing.T) {
	c := New(smallConfig())
	c.Fill(0, false, true)
	r1 := c.Lookup(0, false)
	if !r1.Hit || !r1.HitPrefetched {
		t.Fatalf("first demand touch should report prefetched hit: %+v", r1)
	}
	r2 := c.Lookup(0, false)
	if !r2.Hit || r2.HitPrefetched {
		t.Fatalf("second touch must not report prefetched: %+v", r2)
	}
}

func TestDemandFillClearsPrefetchMark(t *testing.T) {
	c := New(smallConfig())
	c.Fill(0, false, true)
	c.Fill(0, false, false) // demand refresh
	if r := c.Lookup(0, false); r.HitPrefetched {
		t.Fatal("demand fill should clear the prefetch mark")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(smallConfig())
	c.Fill(0, true, false)
	present, dirty := c.Invalidate(0)
	if !present || !dirty {
		t.Fatalf("invalidate = %v, %v", present, dirty)
	}
	if c.Probe(0) {
		t.Fatal("line still present after invalidate")
	}
	present, _ = c.Invalidate(0)
	if present {
		t.Fatal("double invalidate should report absent")
	}
}

func TestFlushAndValidLines(t *testing.T) {
	c := New(smallConfig())
	for i := uint64(0); i < 100; i++ {
		c.Fill(i*64, false, false)
	}
	if c.ValidLines() != 16 {
		t.Fatalf("valid lines = %d, want full 16", c.ValidLines())
	}
	c.Flush()
	if c.ValidLines() != 0 {
		t.Fatal("flush left valid lines")
	}
}

func TestCapacityNeverExceededProperty(t *testing.T) {
	cfg := smallConfig()
	capacity := int(cfg.Size / cfg.LineSize)
	f := func(addrs []uint32, writes []bool) bool {
		c := New(cfg)
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			if !c.Lookup(uint64(a), w).Hit {
				c.Fill(uint64(a), w, i%3 == 0)
			}
		}
		return c.ValidLines() <= capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFillThenProbeProperty(t *testing.T) {
	c := New(Config{Name: "p", Size: 64 * units.KiB, LineSize: 64, Assoc: 8})
	f := func(a uint32) bool {
		c.Fill(uint64(a), false, false)
		return c.Probe(uint64(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkingSetFitsIsAllHits(t *testing.T) {
	// A working set equal to the cache size must be fully resident after
	// one pass — the invariant behind the warm-set calibration.
	cfg := Config{Name: "ws", Size: 16 * units.KiB, LineSize: 64, Assoc: 8}
	c := New(cfg)
	lines := cfg.Size / cfg.LineSize
	for i := int64(0); i < lines; i++ {
		c.Fill(uint64(i*64), false, false)
	}
	for i := int64(0); i < lines; i++ {
		if !c.Lookup(uint64(i*64), false).Hit {
			t.Fatalf("resident line %d missed", i)
		}
	}
}

func TestCyclicOverCapacityThrashes(t *testing.T) {
	// A cyclic scan over 2x the cache under LRU must miss every time after
	// the first pass — the HT-thrash mechanism in the timing model.
	cfg := Config{Name: "th", Size: 4 * units.KiB, LineSize: 64, Assoc: 4}
	c := New(cfg)
	lines := 2 * cfg.Size / cfg.LineSize
	miss := 0
	for pass := 0; pass < 3; pass++ {
		for i := int64(0); i < lines; i++ {
			if !c.Lookup(uint64(i*64), false).Hit {
				miss++
				c.Fill(uint64(i*64), false, false)
			}
		}
	}
	if miss != int(3*lines) {
		t.Fatalf("expected total thrash, got %d misses of %d accesses", miss, 3*lines)
	}
}

func TestLineAddr(t *testing.T) {
	c := New(smallConfig())
	if c.LineAddr(0x12345) != 0x12340 {
		t.Errorf("LineAddr = %#x", c.LineAddr(0x12345))
	}
}

func TestNumSets(t *testing.T) {
	if New(smallConfig()).NumSets() != 8 {
		t.Error("set count wrong")
	}
}

func TestRandomReplacementDegradesGracefully(t *testing.T) {
	// The cyclic 2x-capacity scan that LRU loses completely keeps a
	// substantial hit rate under random replacement — the ablation that
	// isolates the thrash-cliff mechanism.
	cfg := Config{Name: "rr", Size: 4 * units.KiB, LineSize: 64, Assoc: 4, Policy: Random}
	c := New(cfg)
	lines := 2 * cfg.Size / cfg.LineSize
	hits, accesses := 0, 0
	for pass := 0; pass < 10; pass++ {
		for i := int64(0); i < lines; i++ {
			accesses++
			if c.Lookup(uint64(i*64), false).Hit {
				hits++
			} else {
				c.Fill(uint64(i*64), false, false)
			}
		}
	}
	rate := float64(hits) / float64(accesses)
	if rate < 0.10 {
		t.Fatalf("random replacement hit rate %v, want graceful degradation", rate)
	}
}

func TestRandomReplacementDeterministic(t *testing.T) {
	cfg := Config{Name: "rd", Size: 1024, LineSize: 64, Assoc: 2, Policy: Random}
	run := func() int {
		c := New(cfg)
		hits := 0
		for i := 0; i < 2000; i++ {
			a := uint64((i * 2654435761) % 4096 &^ 63)
			if c.Lookup(a, false).Hit {
				hits++
			} else {
				c.Fill(a, false, false)
			}
		}
		return hits
	}
	if run() != run() {
		t.Fatal("random replacement not reproducible")
	}
}

func TestReplacementPolicyValidation(t *testing.T) {
	bad := smallConfig()
	bad.Policy = Replacement(9)
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if LRU.String() != "lru" || Random.String() != "random" {
		t.Fatal("policy names wrong")
	}
}
