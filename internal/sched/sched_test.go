package sched

import (
	"testing"

	"xeonomp/internal/cpu"
	"xeonomp/internal/machine"
	"xeonomp/internal/mem"
	"xeonomp/internal/trace"
)

func params() trace.Params {
	return trace.Params{
		LoadFrac: 0.3, StoreFrac: 0.1, BranchFrac: 0.1,
		HotFrac: 1.0, HotBytes: 2048,
		LoopLen: 20, ChunkInstr: 1000, MLP: 0.5,
	}
}

func mkThreads(t *testing.T, program, n int, asid uint64) []*cpu.Thread {
	t.Helper()
	l, err := mem.NewLayout(asid, n, 4096, 1<<20, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	team := cpu.NewTeam(n)
	var out []*cpu.Thread
	for tid := 0; tid < n; tid++ {
		g, err := trace.NewGenerator(params(), l, tid, 1000, 1)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, cpu.NewThread("t", program, g, team))
	}
	return out
}

func contexts(t *testing.T, n int) []*cpu.Context {
	t.Helper()
	m, err := machine.New(machine.PaxvilleSMP())
	if err != nil {
		t.Fatal(err)
	}
	m.EnableAll()
	return m.Contexts()[:n]
}

func TestPlaceSingleProgramOnePerContext(t *testing.T) {
	ctxs := contexts(t, 4)
	prog := mkThreads(t, 0, 4, 1)
	if err := Place([][]*cpu.Thread{prog}, ctxs, Alternate); err != nil {
		t.Fatal(err)
	}
	for i, x := range ctxs {
		if x.QueueLen() != 1 {
			t.Fatalf("context %d has %d threads", i, x.QueueLen())
		}
	}
}

func TestAlternateInterleavesPrograms(t *testing.T) {
	ctxs := contexts(t, 4)
	p0 := mkThreads(t, 0, 2, 1)
	p1 := mkThreads(t, 1, 2, 2)
	if err := Place([][]*cpu.Thread{p0, p1}, ctxs, Alternate); err != nil {
		t.Fatal(err)
	}
	// Expect p0 t0, p1 t0, p0 t1, p1 t1 across the enumeration.
	want := []int{0, 1, 0, 1}
	for i, x := range ctxs {
		if got := x.Threads()[0].Program; got != want[i] {
			t.Fatalf("context %d got program %d, want %d", i, got, want[i])
		}
	}
}

func TestBlockKeepsProgramsContiguous(t *testing.T) {
	ctxs := contexts(t, 4)
	p0 := mkThreads(t, 0, 2, 1)
	p1 := mkThreads(t, 1, 2, 2)
	if err := Place([][]*cpu.Thread{p0, p1}, ctxs, Block); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1, 1}
	for i, x := range ctxs {
		if got := x.Threads()[0].Program; got != want[i] {
			t.Fatalf("context %d got program %d, want %d", i, got, want[i])
		}
	}
}

func TestOversubscriptionWrapsRoundRobin(t *testing.T) {
	ctxs := contexts(t, 1)
	p0 := mkThreads(t, 0, 1, 1)
	p1 := mkThreads(t, 1, 1, 2)
	if err := Place([][]*cpu.Thread{p0, p1}, ctxs, Alternate); err != nil {
		t.Fatal(err)
	}
	if ctxs[0].QueueLen() != 2 {
		t.Fatalf("context queue = %d, want 2 (time-sliced)", ctxs[0].QueueLen())
	}
}

func TestUnevenProgramsInterleaveSafely(t *testing.T) {
	ctxs := contexts(t, 5)
	p0 := mkThreads(t, 0, 3, 1)
	p1 := mkThreads(t, 1, 2, 2)
	if err := Place([][]*cpu.Thread{p0, p1}, ctxs, Alternate); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, x := range ctxs {
		total += x.QueueLen()
	}
	if total != 5 {
		t.Fatalf("placed %d threads, want 5", total)
	}
}

func TestPlaceErrors(t *testing.T) {
	if err := Place(nil, nil, Alternate); err == nil {
		t.Error("no contexts accepted")
	}
	ctxs := contexts(t, 2)
	if err := Place(nil, ctxs, Alternate); err == nil {
		t.Error("no threads accepted")
	}
	if err := Place([][]*cpu.Thread{mkThreads(t, 0, 1, 1)}, ctxs, Policy(99)); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestOccupancy(t *testing.T) {
	ctxs := contexts(t, 3)
	p0 := mkThreads(t, 0, 4, 1)
	if err := Place([][]*cpu.Thread{p0}, ctxs, Alternate); err != nil {
		t.Fatal(err)
	}
	occ := Occupancy(ctxs)
	if occ[0] != 2 || occ[1] != 1 || occ[2] != 1 {
		t.Fatalf("occupancy = %v", occ)
	}
}

func TestPolicyString(t *testing.T) {
	for _, p := range []Policy{Alternate, Block, RoundRobin} {
		if p.String() == "" {
			t.Error("empty policy name")
		}
	}
	if Policy(42).String() == "" {
		t.Error("unknown policy name empty")
	}
}

func TestPlaceSymbioticPairsHeavyWithLight(t *testing.T) {
	ctxs := contexts(t, 8)
	// Four programs, two threads each; program demands: 0 heavy, 1 light,
	// 2 medium, 3 lightest.
	progs := [][]*cpu.Thread{
		mkThreads(t, 0, 2, 1),
		mkThreads(t, 1, 2, 2),
		mkThreads(t, 2, 2, 3),
		mkThreads(t, 3, 2, 4),
	}
	demands := []ProgramDemand{
		{Bandwidth: 2e9, CacheFootprint: 512 << 10},
		{Bandwidth: 0.2e9, CacheFootprint: 64 << 10},
		{Bandwidth: 1e9, CacheFootprint: 256 << 10},
		{Bandwidth: 0.1e9, CacheFootprint: 32 << 10},
	}
	if err := PlaceSymbiotic(progs, demands, ctxs); err != nil {
		t.Fatal(err)
	}
	// Adjacent contexts are HT siblings: sibling pairs must combine a
	// heavy program (0 or 2) with a light one (1 or 3).
	heavy := map[int]bool{0: true, 2: true}
	for i := 0; i < 8; i += 2 {
		a := ctxs[i].Threads()[0].Program
		b := ctxs[i+1].Threads()[0].Program
		if heavy[a] == heavy[b] {
			t.Fatalf("siblings %d/%d run programs %d and %d (both heavy=%v)", i, i+1, a, b, heavy[a])
		}
	}
}

func TestPlaceSymbioticErrors(t *testing.T) {
	ctxs := contexts(t, 2)
	progs := [][]*cpu.Thread{mkThreads(t, 0, 1, 1)}
	if err := PlaceSymbiotic(progs, nil, ctxs); err == nil {
		t.Error("mismatched demands accepted")
	}
	if err := PlaceSymbiotic(progs, []ProgramDemand{{}}, nil); err == nil {
		t.Error("no contexts accepted")
	}
	if err := PlaceSymbiotic(nil, nil, ctxs); err == nil {
		t.Error("no threads accepted")
	}
}

func TestDemandScoreOrdering(t *testing.T) {
	heavy := ProgramDemand{Bandwidth: 2e9, CacheFootprint: 1 << 20}
	light := ProgramDemand{Bandwidth: 1e8, CacheFootprint: 16 << 10}
	if heavy.score() <= light.score() {
		t.Fatal("demand score ordering wrong")
	}
}
