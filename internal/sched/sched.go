// Package sched models the OS-level placement of application threads onto
// the enabled hardware contexts. The paper uses the default Linux scheduler
// on a maxcpus-masked kernel; its observable behaviour for these workloads
// is (a) one thread per logical processor while threads <= processors, and
// (b) round-robin time slicing when oversubscribed. Placement order matters
// for multi-program runs because it decides which threads share a core and
// a chip, so the package offers the balanced default plus two alternatives
// used as ablations.
package sched

import (
	"fmt"

	"xeonomp/internal/cpu"
	"xeonomp/internal/units"
)

// Policy selects a placement strategy.
type Policy int

// Placement policies.
const (
	// Alternate interleaves the programs' threads across the context
	// enumeration (p0t0, p1t0, p0t1, ...), the effective spread the Linux
	// balancer converges to for simultaneously-started equal-size programs.
	Alternate Policy = iota
	// Block places each program's threads contiguously, so one program
	// owns the first contexts and the next program the following ones.
	Block
	// RoundRobin flattens programs in order but assigns contexts
	// round-robin even when oversubscribed (used in tests).
	RoundRobin
	// Symbiotic orders programs by resource demand and interleaves the
	// heaviest with the lightest, so Hyper-Threaded siblings get
	// complementary workloads — the scheduler direction the paper's
	// conclusion proposes. Requires per-program demand descriptors
	// (PlaceSymbiotic).
	Symbiotic
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Alternate:
		return "alternate"
	case Block:
		return "block"
	case RoundRobin:
		return "round-robin"
	case Symbiotic:
		return "symbiotic"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ProgramDemand summarizes a program's appetite for the shared resources
// that matter on this platform: sustained memory bandwidth (bytes/second at
// one thread) and the per-thread L2 cache footprint. The symbiotic policy
// pairs high-demand programs with low-demand ones.
type ProgramDemand struct {
	Bandwidth      float64
	CacheFootprint uint64
}

// score collapses a demand to a single pressure figure for ordering:
// bandwidth in GB/s plus cache footprint in MiB, equally weighted — both
// resources saturate near 1 unit on the paper's machine.
func (d ProgramDemand) score() float64 {
	return d.Bandwidth/units.GB + float64(d.CacheFootprint)/float64(units.MiB)
}

// Place assigns every thread of every program to a context. Threads beyond
// the context count share contexts by time slicing (the cpu layer's run
// queues). It returns an error when there are no contexts or no threads.
func Place(programs [][]*cpu.Thread, ctxs []*cpu.Context, p Policy) error {
	if len(ctxs) == 0 {
		return fmt.Errorf("sched: no enabled contexts")
	}
	total := 0
	for _, prog := range programs {
		total += len(prog)
	}
	if total == 0 {
		return fmt.Errorf("sched: no threads to place")
	}
	var order []*cpu.Thread
	switch p {
	case Alternate:
		for i := 0; ; i++ {
			added := false
			for _, prog := range programs {
				if i < len(prog) {
					order = append(order, prog[i])
					added = true
				}
			}
			if !added {
				break
			}
		}
	case Block, RoundRobin:
		for _, prog := range programs {
			order = append(order, prog...)
		}
	default:
		return fmt.Errorf("sched: unknown policy %v", p)
	}
	for i, t := range order {
		ctxs[i%len(ctxs)].Assign(t)
	}
	return nil
}

// PlaceSymbiotic assigns threads so that programs with heavy shared-resource
// demands share cores with light ones: programs are sorted by demand score
// and consumed alternately from the heavy and light ends while interleaving
// their threads across the context enumeration (adjacent contexts are
// Hyper-Threaded siblings on the paper's machine). demands must parallel
// programs.
func PlaceSymbiotic(programs [][]*cpu.Thread, demands []ProgramDemand, ctxs []*cpu.Context) error {
	if len(ctxs) == 0 {
		return fmt.Errorf("sched: no enabled contexts")
	}
	if len(demands) != len(programs) {
		return fmt.Errorf("sched: %d demand descriptors for %d programs", len(demands), len(programs))
	}
	total := 0
	for _, prog := range programs {
		total += len(prog)
	}
	if total == 0 {
		return fmt.Errorf("sched: no threads to place")
	}

	// Order program indices by decreasing demand.
	order := make([]int, len(programs))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && demands[order[j]].score() > demands[order[j-1]].score(); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	// Alternate heavy / light: h0, l0, h1, l1, ...
	paired := make([]int, 0, len(order))
	lo, hi := 0, len(order)-1
	for lo <= hi {
		paired = append(paired, order[lo])
		if lo != hi {
			paired = append(paired, order[hi])
		}
		lo++
		hi--
	}

	// Interleave the paired programs' threads across the enumeration.
	var flat []*cpu.Thread
	for i := 0; ; i++ {
		added := false
		for _, pi := range paired {
			if i < len(programs[pi]) {
				flat = append(flat, programs[pi][i])
				added = true
			}
		}
		if !added {
			break
		}
	}
	for i, t := range flat {
		ctxs[i%len(ctxs)].Assign(t)
	}
	return nil
}

// Occupancy returns, for reporting, how many threads each context received.
func Occupancy(ctxs []*cpu.Context) []int {
	out := make([]int, len(ctxs))
	for i, x := range ctxs {
		out[i] = x.QueueLen()
	}
	return out
}
