// Package units provides the byte-size, frequency, and time-conversion
// helpers shared by the simulator packages.
//
// The simulator is cycle-based: every latency and occupancy is expressed in
// core clock cycles. This package converts between cycles, nanoseconds, and
// bandwidth figures at a given core frequency so that calibration targets
// written in datasheet units (ns, GB/s) translate exactly into model
// parameters.
package units

import "fmt"

// Byte sizes.
const (
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
)

// Hz multiples.
const (
	KHz float64 = 1e3
	MHz float64 = 1e6
	GHz float64 = 1e9
)

// GB is the decimal gigabyte used in bandwidth figures (GB/s), matching how
// the paper reports LMbench bandwidths.
const GB float64 = 1e9

// Mega is the bare 10^6 scale factor used for rates reported in millions
// (the paper's MOPS figures).
const Mega float64 = 1e6

// NsPerSecond converts between seconds and nanoseconds; derived rates such
// as bytes/ns -> GB/s should use this instead of a literal 1e9.
const NsPerSecond float64 = 1e9

// Frequency is a clock rate in Hz.
type Frequency float64

// Cycles converts a duration in nanoseconds to whole clock cycles at f,
// rounding to nearest. A sub-cycle duration yields at least one cycle so
// that no modeled structure is infinitely fast.
func (f Frequency) Cycles(ns float64) int64 {
	c := int64(ns*float64(f)/1e9 + 0.5)
	if c < 1 {
		return 1
	}
	return c
}

// Nanoseconds converts a cycle count at f into nanoseconds.
func (f Frequency) Nanoseconds(cycles int64) float64 {
	return float64(cycles) / float64(f) * 1e9
}

// BytesPerCycle converts a bandwidth in bytes/second into bytes per core
// cycle at f.
func (f Frequency) BytesPerCycle(bytesPerSecond float64) float64 {
	return bytesPerSecond / float64(f)
}

// OccupancyCycles returns the number of core cycles a transfer of size bytes
// occupies a link of the given bandwidth (bytes/second), rounded up and at
// least one.
func (f Frequency) OccupancyCycles(size int64, bytesPerSecond float64) int64 {
	bpc := f.BytesPerCycle(bytesPerSecond)
	if bpc <= 0 {
		panic("units: non-positive bandwidth")
	}
	c := int64(float64(size)/bpc + 0.999999)
	if c < 1 {
		return 1
	}
	return c
}

// HumanBytes formats a byte count with a binary-prefix unit, e.g. "16KiB".
func HumanBytes(n int64) string {
	switch {
	case n >= GiB && n%GiB == 0:
		return fmt.Sprintf("%dGiB", n/GiB)
	case n >= MiB && n%MiB == 0:
		return fmt.Sprintf("%dMiB", n/MiB)
	case n >= KiB && n%KiB == 0:
		return fmt.Sprintf("%dKiB", n/KiB)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int64) bool {
	return n > 0 && n&(n-1) == 0
}

// Log2 returns the base-2 logarithm of a positive power of two.
// It panics if n is not a positive power of two.
func Log2(n int64) uint {
	if !IsPow2(n) {
		panic(fmt.Sprintf("units: Log2 of non-power-of-two %d", n))
	}
	var l uint
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
