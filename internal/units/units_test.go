package units

import (
	"testing"
	"testing/quick"
)

func TestCycles(t *testing.T) {
	f := Frequency(2.8 * GHz)
	cases := []struct {
		ns   float64
		want int64
	}{
		{1.43, 4},     // the paper's L1 latency
		{10.6, 30},    // L2
		{136.85, 383}, // memory
		{0.0001, 1},   // sub-cycle clamps to 1
	}
	for _, c := range cases {
		if got := f.Cycles(c.ns); got != c.want {
			t.Errorf("Cycles(%v) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestNanosecondsRoundTrip(t *testing.T) {
	f := Frequency(2.8 * GHz)
	for _, cyc := range []int64{1, 4, 30, 383, 1000000} {
		ns := f.Nanoseconds(cyc)
		if got := f.Cycles(ns); got != cyc {
			t.Errorf("round trip %d cycles -> %v ns -> %d cycles", cyc, ns, got)
		}
	}
}

func TestOccupancyCycles(t *testing.T) {
	f := Frequency(2.8 * GHz)
	// 64 bytes at 3.57 GB/s is ~50 core cycles, the FSB line occupancy.
	got := f.OccupancyCycles(64, 3.57*GB)
	if got < 49 || got > 51 {
		t.Errorf("OccupancyCycles(64, 3.57GB/s) = %d, want ~50", got)
	}
	if f.OccupancyCycles(1, 1e12) != 1 {
		t.Error("occupancy must be at least one cycle")
	}
}

func TestOccupancyPanicsOnZeroBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Frequency(1e9).OccupancyCycles(64, 0)
}

func TestBytesPerCycle(t *testing.T) {
	f := Frequency(2 * GHz)
	if got := f.BytesPerCycle(4e9); got != 2 {
		t.Errorf("BytesPerCycle = %v, want 2", got)
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int64{1, 2, 4, 1024, 1 << 40} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int64{0, -1, 3, 6, 1023, 1<<40 + 1} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestLog2(t *testing.T) {
	for i := uint(0); i < 60; i++ {
		if got := Log2(1 << i); got != i {
			t.Errorf("Log2(1<<%d) = %d", i, got)
		}
	}
}

func TestLog2PanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Log2(12)
}

func TestLog2Pow2Property(t *testing.T) {
	f := func(shift uint8) bool {
		s := uint(shift % 62)
		n := int64(1) << s
		return IsPow2(n) && Log2(n) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		512:      "512B",
		KiB:      "1KiB",
		16 * KiB: "16KiB",
		MiB:      "1MiB",
		GiB:      "1GiB",
		1536:     "1536B", // not a clean KiB multiple
		3 * MiB:  "3MiB",
		64 * MiB: "64MiB",
	}
	for n, want := range cases {
		if got := HumanBytes(n); got != want {
			t.Errorf("HumanBytes(%d) = %q, want %q", n, got, want)
		}
	}
}
