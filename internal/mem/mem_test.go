package mem

import (
	"testing"
	"testing/quick"
)

func TestNewLayoutBasics(t *testing.T) {
	l, err := NewLayout(1, 4, 64<<10, 1<<20, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if l.Code.Size != 64<<10 || l.Shared.Size != 1<<20 {
		t.Fatal("region sizes wrong")
	}
	if l.Threads() != 4 || len(l.Private) != 4 {
		t.Fatal("thread count wrong")
	}
	if l.TotalData() != 1<<20+4*(256<<10) {
		t.Fatalf("total data = %d", l.TotalData())
	}
}

func TestLayoutErrors(t *testing.T) {
	if _, err := NewLayout(1, 0, 1, 1, 1); err == nil {
		t.Error("zero threads should fail")
	}
	if _, err := NewLayout(1<<16, 1, 1, 1, 1); err == nil {
		t.Error("oversized asid should fail")
	}
}

func TestZeroSizesPromoted(t *testing.T) {
	l, err := NewLayout(1, 1, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Region{l.Code, l.Shared, l.Private[0]} {
		if r.Size == 0 {
			t.Fatal("zero-size region not promoted")
		}
	}
}

func TestRegionsDisjoint(t *testing.T) {
	l, err := NewLayout(3, 8, 1<<20, 512<<20, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	regions := append([]Region{l.Code, l.Shared}, l.Private...)
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			a, b := regions[i], regions[j]
			if a.Base < b.End() && b.Base < a.End() {
				t.Fatalf("regions %d and %d overlap: %+v %+v", i, j, a, b)
			}
		}
	}
}

func TestASIDSeparationProperty(t *testing.T) {
	f := func(a1, a2 uint8, threads uint8) bool {
		if a1 == a2 {
			return true
		}
		n := int(threads%8) + 1
		l1, err1 := NewLayout(uint64(a1), n, 1<<20, 64<<20, 4<<20)
		l2, err2 := NewLayout(uint64(a2), n, 1<<20, 64<<20, 4<<20)
		if err1 != nil || err2 != nil {
			return false
		}
		// No region of l1 may overlap any region of l2.
		r1 := append([]Region{l1.Code, l1.Shared}, l1.Private...)
		r2 := append([]Region{l2.Code, l2.Shared}, l2.Private...)
		for _, a := range r1 {
			for _, b := range r2 {
				if a.Base < b.End() && b.Base < a.End() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{Base: 100, Size: 10}
	if !r.Contains(100) || !r.Contains(109) {
		t.Error("contains endpoints wrong")
	}
	if r.Contains(99) || r.Contains(110) {
		t.Error("contains out of range")
	}
	if r.End() != 110 {
		t.Error("end wrong")
	}
}
