// Package mem defines the simulated virtual address-space layout used by the
// trace generators. Each program in a workload gets its own address space
// (distinguished by an ASID folded into the high address bits, so two
// co-scheduled programs never alias in the caches or TLBs), containing a
// code region, an OpenMP shared-data region, and one private region per
// thread. Layout geometry comes from the benchmark profiles.
package mem

import "fmt"

// Region is one contiguous address range.
type Region struct {
	Base uint64
	Size uint64
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool {
	return addr >= r.Base && addr < r.Base+r.Size
}

// End returns one past the last address of the region.
func (r Region) End() uint64 { return r.Base + r.Size }

// asidShift places the address-space ID above any realistic footprint while
// staying inside 64 bits.
const asidShift = 44

// guard separates regions within a space so streams never run across a
// region boundary.
const guard = 1 << 30

// Layout is one program's address space.
type Layout struct {
	ASID    uint64
	Code    Region
	Shared  Region
	Private []Region // one per thread
}

// NewLayout builds the address space for program asid with the given region
// sizes (bytes) and thread count. Sizes of zero are promoted to one page so
// every region is addressable.
func NewLayout(asid uint64, threads int, codeSize, sharedSize, privSize uint64) (*Layout, error) {
	if threads <= 0 {
		return nil, fmt.Errorf("mem: thread count %d", threads)
	}
	if asid >= 1<<16 {
		return nil, fmt.Errorf("mem: asid %d out of range", asid)
	}
	const page = 4096
	if codeSize == 0 {
		codeSize = page
	}
	if sharedSize == 0 {
		sharedSize = page
	}
	if privSize == 0 {
		privSize = page
	}
	base := asid << asidShift
	l := &Layout{ASID: asid}
	l.Code = Region{Base: base + guard, Size: codeSize}
	l.Shared = Region{Base: l.Code.End() + guard, Size: sharedSize}
	next := l.Shared.End() + guard
	for t := 0; t < threads; t++ {
		l.Private = append(l.Private, Region{Base: next, Size: privSize})
		next = next + privSize + guard
	}
	return l, nil
}

// TotalData returns the combined shared and private data footprint in bytes.
func (l *Layout) TotalData() uint64 {
	n := l.Shared.Size
	for _, p := range l.Private {
		n += p.Size
	}
	return n
}

// Threads returns the number of per-thread private regions.
func (l *Layout) Threads() int { return len(l.Private) }
