package branch

import (
	"testing"
)

func cfg() Config {
	return Config{PHTBits: 12, HistoryBits: 10, BTBEntries: 256}
}

func TestConfigValidate(t *testing.T) {
	if err := cfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{PHTBits: 0, HistoryBits: 0, BTBEntries: 16},
		{PHTBits: 31, HistoryBits: 0, BTBEntries: 16},
		{PHTBits: 8, HistoryBits: 9, BTBEntries: 16},
		{PHTBits: 8, HistoryBits: 4, BTBEntries: 17},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%v should be invalid", c)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{PHTBits: 0})
}

// rate runs n resolutions via gen and returns the fraction mispredicted in
// the second half (after warm-up).
func rate(p *Predictor, n int, gen func(i int) (pc uint64, taken bool)) float64 {
	misp := 0
	count := 0
	for i := 0; i < n; i++ {
		pc, taken := gen(i)
		out := p.Resolve(pc, taken, pc+16)
		if i >= n/2 {
			count++
			if out.Mispredicted {
				misp++
			}
		}
	}
	return float64(misp) / float64(count)
}

func TestLearnsAlwaysTaken(t *testing.T) {
	p := New(cfg())
	r := rate(p, 2000, func(i int) (uint64, bool) { return 0x400000, true })
	if r > 0.001 {
		t.Fatalf("always-taken mispredict rate %v", r)
	}
}

func TestLearnsAlwaysNotTaken(t *testing.T) {
	p := New(cfg())
	r := rate(p, 2000, func(i int) (uint64, bool) { return 0x400000, false })
	if r > 0.001 {
		t.Fatalf("always-not-taken mispredict rate %v", r)
	}
}

func TestLearnsLoopBranch(t *testing.T) {
	// Taken 63 of 64: the classic loop-back pattern. Global history must
	// catch the exit.
	p := New(cfg())
	r := rate(p, 64*200, func(i int) (uint64, bool) { return 0x400000, i%64 != 63 })
	if r > 0.02 {
		t.Fatalf("loop branch mispredict rate %v", r)
	}
}

func TestLearnsShortPattern(t *testing.T) {
	// Period-3 "110" pattern at a single site: gshare learns it exactly.
	p := New(cfg())
	pattern := []bool{true, true, false}
	r := rate(p, 6000, func(i int) (uint64, bool) { return 0x400000, pattern[i%3] })
	if r > 0.01 {
		t.Fatalf("pattern mispredict rate %v", r)
	}
}

func TestInterleavedStreamsDegradeEachOther(t *testing.T) {
	// The paper's HT branch effect: two contexts share the predictor. A
	// learnable pattern interleaved with a second thread's independent
	// pattern in the SAME shared history register becomes much harder.
	solo := New(cfg())
	pattern := []bool{true, false, false}
	soloRate := rate(solo, 9000, func(i int) (uint64, bool) { return 0x400000 + uint64(i%7)*4, pattern[i%3] })

	shared := New(cfg())
	n1, n2 := 0, 0
	sharedRate := rate(shared, 18000, func(i int) (uint64, bool) {
		if i%2 == 0 {
			// Thread A: the patterned stream.
			k := n1
			n1++
			return 0x400000 + uint64(k%7)*4, pattern[k%3]
		}
		// Thread B: different code, alternating outcomes.
		k := n2
		n2++
		return 0x900000 + uint64(k%13)*4, k%2 == 0
	})
	if sharedRate < soloRate+0.01 {
		t.Fatalf("sharing did not degrade prediction: solo %v, shared %v", soloRate, sharedRate)
	}
}

func TestBTBMissOnFirstTakenOnly(t *testing.T) {
	p := New(cfg())
	out := p.Resolve(0x1000, true, 0x2000)
	if !out.BTBMiss {
		t.Fatal("first taken branch must miss BTB")
	}
	out = p.Resolve(0x1000, true, 0x2000)
	if out.BTBMiss {
		t.Fatal("second taken branch with same target must hit BTB")
	}
	// Target change re-misses.
	out = p.Resolve(0x1000, true, 0x3000)
	if !out.BTBMiss {
		t.Fatal("target change must miss BTB")
	}
}

func TestNotTakenDoesNotTouchBTB(t *testing.T) {
	p := New(cfg())
	out := p.Resolve(0x1000, false, 0)
	if out.BTBMiss {
		t.Fatal("not-taken branch should not report BTB miss")
	}
}

func TestReset(t *testing.T) {
	p := New(cfg())
	for i := 0; i < 100; i++ {
		p.Resolve(0x1000, true, 0x2000)
	}
	p.Reset()
	out := p.Resolve(0x1000, true, 0x2000)
	if !out.BTBMiss {
		t.Fatal("reset should clear the BTB")
	}
}

func TestAliasingIsBounded(t *testing.T) {
	// Many distinct always-taken sites: even with aliasing the rate must
	// converge near zero because all alias entries saturate the same way.
	p := New(cfg())
	r := rate(p, 20000, func(i int) (uint64, bool) { return uint64(i%5000) * 4, true })
	if r > 0.01 {
		t.Fatalf("aliased always-taken rate %v", r)
	}
}
