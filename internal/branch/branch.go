// Package branch models the branch prediction unit of the simulated Xeon
// core: a gshare-style two-level direction predictor plus a branch target
// buffer. The paper lists the branch prediction unit among the resources
// shared by the two Hyper-Threaded contexts of a core; the model therefore
// keeps one predictor per core, so two threads with different branch
// behaviour alias in the pattern table and degrade each other — the
// mechanism behind the HT-on prediction-rate drops in Figures 2 and 4.
package branch

import (
	"fmt"

	"xeonomp/internal/units"
)

// Config describes one predictor.
type Config struct {
	PHTBits     uint // log2 of pattern-history-table entries
	HistoryBits uint // global-history register length, <= PHTBits
	BTBEntries  int  // branch target buffer entries (direct-mapped); power of two
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.PHTBits == 0 || c.PHTBits > 30 {
		return fmt.Errorf("branch: PHT bits %d out of range", c.PHTBits)
	}
	if c.HistoryBits > c.PHTBits {
		return fmt.Errorf("branch: history bits %d exceed PHT bits %d", c.HistoryBits, c.PHTBits)
	}
	if c.BTBEntries <= 0 || !units.IsPow2(int64(c.BTBEntries)) {
		return fmt.Errorf("branch: BTB entries %d not a positive power of two", c.BTBEntries)
	}
	return nil
}

// Predictor is one per-core branch prediction unit.
type Predictor struct {
	cfg     Config
	pht     []uint8 // 2-bit saturating counters
	history uint64  // shared global history (HT contexts interleave here)
	btb     []uint64
	phtMask uint64
	btbMask uint64
}

// New builds a predictor, panicking on invalid configuration.
func New(cfg Config) *Predictor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := uint64(1) << cfg.PHTBits
	p := &Predictor{
		cfg:     cfg,
		pht:     make([]uint8, n),
		btb:     make([]uint64, cfg.BTBEntries),
		phtMask: n - 1,
		btbMask: uint64(cfg.BTBEntries) - 1,
	}
	// Initialize counters to weakly taken, the usual reset state.
	for i := range p.pht {
		p.pht[i] = 2
	}
	return p
}

// Config returns the predictor's configuration.
func (p *Predictor) Config() Config { return p.cfg }

func (p *Predictor) index(pc uint64) uint64 {
	histMask := (uint64(1) << p.cfg.HistoryBits) - 1
	return ((pc >> 2) ^ (p.history & histMask)) & p.phtMask
}

// Outcome reports a resolved branch.
type Outcome struct {
	Mispredicted bool
	BTBMiss      bool // target unknown at fetch (charged like a mispredict bubble for taken branches)
}

// Resolve predicts the branch at pc, then updates the predictor with the
// actual direction (taken) and target. It returns whether the prediction
// was wrong and whether the BTB lacked the target.
func (p *Predictor) Resolve(pc uint64, taken bool, target uint64) Outcome {
	idx := p.index(pc)
	predictTaken := p.pht[idx] >= 2

	var out Outcome
	if predictTaken != taken {
		out.Mispredicted = true
	}
	if taken {
		b := (pc >> 2) & p.btbMask
		if p.btb[b] != target {
			out.BTBMiss = true
			p.btb[b] = target
		}
	}

	// Update the 2-bit counter and global history.
	if taken {
		if p.pht[idx] < 3 {
			p.pht[idx]++
		}
	} else if p.pht[idx] > 0 {
		p.pht[idx]--
	}
	p.history <<= 1
	if taken {
		p.history |= 1
	}
	return out
}

// Reset restores the power-on state.
func (p *Predictor) Reset() {
	for i := range p.pht {
		p.pht[i] = 2
	}
	for i := range p.btb {
		p.btb[i] = 0
	}
	p.history = 0
}
