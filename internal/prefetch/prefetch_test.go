package prefetch

import (
	"testing"
	"testing/quick"
)

func cfg() Config {
	return Config{Streams: 4, Degree: 2, LineSize: 64, PageSize: 4096, MaxStride: 2}
}

func TestConfigValidate(t *testing.T) {
	if err := cfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{},
		{Streams: 1, Degree: 1, LineSize: 64, PageSize: 100, MaxStride: 1}, // page not multiple of line
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%v should be invalid", c)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{})
}

func TestUnitStrideStreamDetection(t *testing.T) {
	p := New(cfg())
	base := uint64(0x10000)
	// Miss 1: allocate; miss 2: confirm direction; miss 3: run ahead.
	if got := p.OnMiss(base); got != nil {
		t.Fatalf("first miss should not prefetch, got %v", got)
	}
	if got := p.OnMiss(base + 64); got != nil {
		t.Fatalf("second miss confirms only, got %v", got)
	}
	got := p.OnMiss(base + 128)
	want := []uint64{base + 192, base + 256}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("prefetch candidates %v, want %v", got, want)
	}
	if p.Issued() != 2 {
		t.Fatalf("issued = %d", p.Issued())
	}
}

func TestDescendingStream(t *testing.T) {
	p := New(cfg())
	base := uint64(0x10000 + 2048)
	p.OnMiss(base)
	p.OnMiss(base - 64)
	got := p.OnMiss(base - 128)
	if len(got) != 2 || got[0] != base-192 || got[1] != base-256 {
		t.Fatalf("descending candidates %v", got)
	}
}

func TestCandidatesStayInPage(t *testing.T) {
	p := New(cfg())
	// Stream running at the end of a page must not cross it.
	base := uint64(4096 - 192) // third-to-last line of page 0
	p.OnMiss(base)
	p.OnMiss(base + 64)
	got := p.OnMiss(base + 128) // last line of the page
	if len(got) != 0 {
		t.Fatalf("prefetch crossed page boundary: %v", got)
	}
}

func TestLargeStrideNotPrefetched(t *testing.T) {
	p := New(cfg()) // MaxStride 2 lines = 128 bytes
	base := uint64(0x10000)
	p.OnMiss(base)
	p.OnMiss(base + 256) // 4-line jump: beyond MaxStride
	got := p.OnMiss(base + 512)
	if got != nil {
		t.Fatalf("out-of-reach stride prefetched: %v", got)
	}
}

func TestTwoLineStridePrefetched(t *testing.T) {
	p := New(cfg())
	base := uint64(0x10000)
	p.OnMiss(base)
	p.OnMiss(base + 128)
	got := p.OnMiss(base + 256)
	if len(got) != 2 || got[0] != base+384 || got[1] != base+512 {
		t.Fatalf("stride-2 candidates %v", got)
	}
}

func TestDirectionFlipResetsRun(t *testing.T) {
	p := New(cfg())
	base := uint64(0x10000 + 1024)
	p.OnMiss(base)
	p.OnMiss(base + 64)
	p.OnMiss(base - 64) // direction flip: no prefetch this round
	got := p.OnMiss(base - 128)
	if len(got) == 0 {
		t.Fatal("stream should re-confirm after one flip step")
	}
}

func TestStreamsAreLRUReplaced(t *testing.T) {
	p := New(Config{Streams: 2, Degree: 1, LineSize: 64, PageSize: 4096, MaxStride: 2})
	// Touch three different pages: the first stream is evicted.
	p.OnMiss(0 * 4096)
	p.OnMiss(1 * 4096)
	p.OnMiss(2 * 4096)
	// Returning to page 0 allocates a fresh (unconfirmed) stream: the next
	// two misses only confirm, the third prefetches.
	if got := p.OnMiss(0*4096 + 64); got != nil {
		t.Fatalf("evicted stream retained state: %v", got)
	}
}

func TestSamLineRepeatIsIgnored(t *testing.T) {
	p := New(cfg())
	base := uint64(0x20000)
	p.OnMiss(base)
	p.OnMiss(base + 64)
	if got := p.OnMiss(base + 64); got != nil {
		t.Fatalf("repeat miss should not prefetch: %v", got)
	}
}

func TestReset(t *testing.T) {
	p := New(cfg())
	base := uint64(0x10000)
	p.OnMiss(base)
	p.OnMiss(base + 64)
	p.OnMiss(base + 128)
	if p.Issued() == 0 {
		t.Fatal("setup failed")
	}
	p.Reset()
	if p.Issued() != 0 {
		t.Fatal("reset did not clear issue count")
	}
	if got := p.OnMiss(base + 192); got != nil {
		t.Fatalf("reset did not clear streams: %v", got)
	}
}

func TestCandidatesAlwaysInPageProperty(t *testing.T) {
	f := func(seeds []uint32) bool {
		p := New(cfg())
		for _, s := range seeds {
			line := uint64(s) &^ 63
			page := line &^ 4095
			for _, c := range p.OnMiss(line) {
				if c&^4095 != page {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
