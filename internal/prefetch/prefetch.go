// Package prefetch models the per-core hardware stream prefetcher of the
// simulated Xeon. It watches the L2 demand-miss stream, detects unit- and
// small-stride streams within a page, and emits prefetch candidates ahead of
// the stream. The machine model only issues those candidates when the chip's
// FSB has headroom, which is why in the paper only lightly-loaded
// configurations (group 2) and bandwidth-starved-but-latency-bound workloads
// (CG on HT on -8-2) show significant prefetch traffic.
package prefetch

import "fmt"

// Config describes one stream prefetcher.
type Config struct {
	Streams   int   // concurrently tracked streams
	Degree    int   // lines fetched ahead per confirmed-stream trigger
	LineSize  int64 // cache line size in bytes
	PageSize  int64 // streams do not cross this boundary
	MaxStride int64 // largest detectable stride, in lines
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Streams <= 0 || c.Degree <= 0 || c.LineSize <= 0 || c.PageSize <= 0 || c.MaxStride <= 0 {
		return fmt.Errorf("prefetch: incomplete config %+v", c)
	}
	if c.PageSize%c.LineSize != 0 {
		return fmt.Errorf("prefetch: page size %d not a multiple of line size %d", c.PageSize, c.LineSize)
	}
	return nil
}

type stream struct {
	valid     bool
	confirmed bool
	page      uint64 // page base address
	lastLine  uint64 // last miss line address
	stride    int64  // in bytes; 0 until a direction is seen
	stamp     uint64
}

// Prefetcher is one per-core stream prefetcher.
type Prefetcher struct {
	cfg     Config
	streams []stream
	clock   uint64
	issued  uint64

	// cands is the reusable candidate buffer OnMiss returns a slice of;
	// callers consume the result before the next OnMiss call (the cpu
	// model issues candidates immediately), so one buffer per prefetcher
	// avoids an allocation on every confirmed-stream trigger.
	cands []uint64
}

// New builds a prefetcher, panicking on invalid configuration.
func New(cfg Config) *Prefetcher {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Prefetcher{cfg: cfg, streams: make([]stream, cfg.Streams)}
}

// Config returns the prefetcher's configuration.
func (p *Prefetcher) Config() Config { return p.cfg }

// Issued returns the number of prefetch candidates emitted so far.
func (p *Prefetcher) Issued() uint64 { return p.issued }

// OnMiss observes a demand miss at line-aligned address line and returns the
// line addresses to prefetch (possibly none). Candidates never cross the
// stream's page. The returned slice aliases an internal buffer and is only
// valid until the next OnMiss call.
func (p *Prefetcher) OnMiss(line uint64) []uint64 {
	p.clock++
	page := line &^ uint64(p.cfg.PageSize-1)

	// Find a stream on the same page.
	var s *stream
	for i := range p.streams {
		if p.streams[i].valid && p.streams[i].page == page {
			s = &p.streams[i]
			break
		}
	}
	if s == nil {
		// Allocate the LRU slot as a new unconfirmed stream.
		victim := 0
		for i := range p.streams {
			if !p.streams[i].valid {
				victim = i
				break
			}
			if p.streams[i].stamp < p.streams[victim].stamp {
				victim = i
			}
		}
		p.streams[victim] = stream{valid: true, page: page, lastLine: line, stamp: p.clock}
		return nil
	}

	s.stamp = p.clock
	delta := int64(line) - int64(s.lastLine)
	s.lastLine = line
	if delta == 0 {
		return nil
	}
	maxBytes := p.cfg.MaxStride * p.cfg.LineSize
	if delta > maxBytes || delta < -maxBytes {
		// Too far apart: restart the stream at the new point.
		s.confirmed, s.stride = false, 0
		return nil
	}
	if !s.confirmed {
		s.stride = delta
		s.confirmed = true
		return nil
	}
	// Confirmed stream: require direction agreement, then run ahead.
	if (delta > 0) != (s.stride > 0) {
		s.stride = delta
		return nil
	}
	s.stride = delta
	out := p.cands[:0]
	next := int64(line)
	for i := 0; i < p.cfg.Degree; i++ {
		next += s.stride
		if next < 0 {
			break
		}
		if uint64(next)&^uint64(p.cfg.PageSize-1) != page {
			break
		}
		out = append(out, uint64(next))
	}
	p.cands = out
	p.issued += uint64(len(out))
	return out
}

// Reset clears all streams and the issue count.
func (p *Prefetcher) Reset() {
	for i := range p.streams {
		p.streams[i] = stream{}
	}
	p.issued = 0
	p.clock = 0
}
