package npb

import (
	"math"
	"math/cmplx"
	"testing"

	"xeonomp/internal/omp"
)

// fillConst sets a grid's interior (and ghosts, via comm3 semantics) to v.
func fillConst(g *grid, v float64) {
	for i := range g.data {
		g.data[i] = v
	}
}

func TestStencilAOfConstantIsZero(t *testing.T) {
	// The NPB A-operator coefficients sum to zero over the 27-point
	// stencil (-8/3 + 6*0 + 12/6 + 8/12 = 0), so A applied to a constant
	// field vanishes — the discrete Laplacian property.
	g := newGrid(8)
	fillConst(g, 3.7)
	out := newGrid(8)
	team := omp.NewTeam(2)
	team.Parallel(func(c *omp.Context) {
		comm3(g, c)
		stencil27(g, mgA, c, func(i3, i2, i1 int, v float64) {
			out.set(i3, i2, i1, v)
		})
	})
	for i3 := 1; i3 <= 8; i3++ {
		for i2 := 1; i2 <= 8; i2++ {
			for i1 := 1; i1 <= 8; i1++ {
				if math.Abs(out.at(i3, i2, i1)) > 1e-12 {
					t.Fatalf("A(const) = %v at (%d,%d,%d)", out.at(i3, i2, i1), i3, i2, i1)
				}
			}
		}
	}
}

func TestComm3Periodicity(t *testing.T) {
	g := newGrid(4)
	// Put distinct values in the interior.
	v := 1.0
	for i3 := 1; i3 <= 4; i3++ {
		for i2 := 1; i2 <= 4; i2++ {
			for i1 := 1; i1 <= 4; i1++ {
				g.set(i3, i2, i1, v)
				v++
			}
		}
	}
	team := omp.NewTeam(3)
	team.Parallel(func(c *omp.Context) { comm3(g, c) })
	for i3 := 1; i3 <= 4; i3++ {
		for i2 := 1; i2 <= 4; i2++ {
			if g.at(i3, i2, 0) != g.at(i3, i2, 4) || g.at(i3, i2, 5) != g.at(i3, i2, 1) {
				t.Fatal("i1 ghosts not periodic")
			}
		}
	}
	for i2 := 0; i2 <= 5; i2++ {
		for i1 := 0; i1 <= 5; i1++ {
			if g.at(0, i2, i1) != g.at(4, i2, i1) || g.at(5, i2, i1) != g.at(1, i2, i1) {
				t.Fatal("i3 ghosts not periodic")
			}
		}
	}
}

func TestRprj3OfConstant(t *testing.T) {
	// Full-weighting of a constant field scales it by the stencil's total
	// weight (0.5 + 6/8 + 12/32 + 8/128 = 1.6875).
	fine := newGrid(8)
	fillConst(fine, 2.0)
	coarse := newGrid(4)
	team := omp.NewTeam(2)
	team.Parallel(func(c *omp.Context) { rprj3(fine, coarse, c) })
	want := 2.0 * 1.6875
	for i3 := 1; i3 <= 4; i3++ {
		for i2 := 1; i2 <= 4; i2++ {
			for i1 := 1; i1 <= 4; i1++ {
				if math.Abs(coarse.at(i3, i2, i1)-want) > 1e-12 {
					t.Fatalf("rprj3(const) = %v, want %v", coarse.at(i3, i2, i1), want)
				}
			}
		}
	}
}

func TestInterpAddOfConstant(t *testing.T) {
	// Trilinear prolongation preserves a constant (per-dimension weights
	// sum to 1), and interpAdd ADDS it to the fine grid.
	coarse := newGrid(4)
	fillConst(coarse, 1.5)
	fine := newGrid(8)
	fillConst(fine, 0.25)
	team := omp.NewTeam(2)
	team.Parallel(func(c *omp.Context) { interpAdd(coarse, fine, c) })
	for i3 := 1; i3 <= 8; i3++ {
		for i2 := 1; i2 <= 8; i2++ {
			for i1 := 1; i1 <= 8; i1++ {
				if math.Abs(fine.at(i3, i2, i1)-1.75) > 1e-12 {
					t.Fatalf("interp(const)+0.25 = %v at (%d,%d,%d), want 1.75",
						fine.at(i3, i2, i1), i3, i2, i1)
				}
			}
		}
	}
}

func TestApplyAOfConstantAtCenter(t *testing.T) {
	// Away from the Dirichlet boundary the Laplacian of a constant is
	// zero, so A(const) = (eps + kappa * rowsum(C)) * const.
	n := 8
	u := newField(n)
	for m := 0; m < appComps; m++ {
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				for k := 1; k <= n; k++ {
					u.set(m, i, j, k, 2.0)
				}
			}
		}
	}
	out := newField(n)
	team := omp.NewTeam(2)
	team.Parallel(func(c *omp.Context) { applyA(u, out, c) })
	for m := 0; m < appComps; m++ {
		var rowsum float64
		for mm := 0; mm < appComps; mm++ {
			rowsum += appCoupling[m][mm]
		}
		want := (appEps + appKappa*rowsum) * 2.0
		got := out.at(m, n/2, n/2, n/2)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("component %d: A(const) center = %v, want %v", m, got, want)
		}
	}
}

func TestBlockTriSolveAgainstOperator(t *testing.T) {
	// Solve the block-tridiagonal system and verify M x = rhs by applying
	// the operator directly.
	n := 9
	const sigma = appSigma
	var diag [appComps][appComps]float64
	for a := 0; a < appComps; a++ {
		for b := 0; b < appComps; b++ {
			diag[a][b] = sigma * appKappa * appCoupling[a][b]
			if a == b {
				diag[a][b] += 1 + 2*sigma
			}
		}
	}
	rhs := make([][appComps]float64, n)
	s := DefaultSeed
	for i := range rhs {
		for m := 0; m < appComps; m++ {
			rhs[i][m] = Randlc(&s, A) - 0.5
		}
	}
	x := make([][appComps]float64, n)
	copy(x, rhs)
	blockTriSolve(x, &diag)
	for i := 0; i < n; i++ {
		for a := 0; a < appComps; a++ {
			var got float64
			for b := 0; b < appComps; b++ {
				got += diag[a][b] * x[i][b]
			}
			if i > 0 {
				got += -sigma * x[i-1][a]
			}
			if i+1 < n {
				got += -sigma * x[i+1][a]
			}
			if math.Abs(got-rhs[i][a]) > 1e-10 {
				t.Fatalf("row %d comp %d: Mx = %v, want %v", i, a, got, rhs[i][a])
			}
		}
	}
}

func TestFTChecksumMagnitudeEvolves(t *testing.T) {
	// The evolution factors are exp(-c*|k|^2) <= 1, so spectral energy is
	// non-increasing and so (up to sampling) is the checksum magnitude.
	p, _ := FTClass(ClassT)
	p.NIter = 4
	_, out := RunFT(p, 2)
	if len(out.Checksums) != 4 {
		t.Fatalf("%d checksums", len(out.Checksums))
	}
	first := cmplx.Abs(out.Checksums[0])
	last := cmplx.Abs(out.Checksums[len(out.Checksums)-1])
	if last > first {
		t.Fatalf("checksum magnitude grew: %v -> %v", first, last)
	}
}

func TestFTTwiddleRange(t *testing.T) {
	p, _ := FTClass(ClassT)
	st := newFTState(p)
	for i, w := range st.twiddle {
		if w <= 0 || w > 1 {
			t.Fatalf("twiddle[%d] = %v outside (0,1]", i, w)
		}
	}
	// The zero mode is untouched by evolution.
	if st.twiddle[st.idx(0, 0, 0)] != 1 {
		t.Fatal("zero-mode twiddle must be 1")
	}
}

func TestISRankingIsStable(t *testing.T) {
	// Equal keys must keep their original relative order (the parallel
	// counting sort is stable by construction).
	p := ISParams{TotalKeysLog: 10, MaxKeyLog: 3, Iterations: 1}
	// With only 8 distinct keys there are many duplicates.
	res := RunIS(p, 4)
	if !res.Verified {
		t.Fatalf("IS failed: %s", res.Detail)
	}
}

func TestEPBlockSeedsMatchStream(t *testing.T) {
	// The k-th block's seed must equal stepping the global stream to the
	// block boundary — EP's parallel decomposition correctness.
	const blockNumbers = 1 << 10
	want := DefaultSeed
	for i := 0; i < 3*blockNumbers; i++ {
		Randlc(&want, A)
	}
	got := SeedAt(DefaultSeed, A, 3*blockNumbers)
	if got != want {
		t.Fatal("block seed jump diverges from stream stepping")
	}
}

func TestPseudoAppRHSDeterministic(t *testing.T) {
	a := appRHS(6)
	b := appRHS(6)
	for i := range a.data {
		if a.data[i] != b.data[i] {
			t.Fatal("appRHS not deterministic")
		}
	}
}

func TestFieldIndexingDisjointComponents(t *testing.T) {
	f := newField(4)
	f.set(0, 1, 1, 1, 7)
	f.set(4, 1, 1, 1, 9)
	if f.at(0, 1, 1, 1) != 7 || f.at(4, 1, 1, 1) != 9 {
		t.Fatal("component storage overlaps")
	}
}
