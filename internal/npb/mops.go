package npb

import (
	"time"

	"xeonomp/internal/units"
)

// Operation counts for the Mop/s figures the NPB output footer reports.
// The formulas follow the published NPB operation-count conventions where
// they exist (EP, IS, CG, MG, FT); the compact pseudo-applications count
// the stencil and solver operations they actually perform.

// EPOps returns the nominal operation count of an EP run.
func EPOps(p EPParams) float64 {
	// NPB counts the Gaussian-pair generation as the workload.
	return float64(int64(1) << p.M)
}

// ISOps returns the nominal operation count of an IS run (keys ranked per
// iteration).
func ISOps(p ISParams) float64 {
	return float64(int64(1)<<p.TotalKeysLog) * float64(p.Iterations)
}

// CGOps returns the floating-point operation count of a CG run: per inner
// CG iteration, one SpMV (2 flops per nonzero) plus vector updates.
func CGOps(p CGParams, nnz int) float64 {
	const cgitmax = 25
	perIt := 2*float64(nnz) + 10*float64(p.NA)
	return float64(p.NIter) * cgitmax * perIt
}

// MGOps returns the stencil operation count of an MG run: each 27-point
// stencil application costs ~27 multiply-adds per cell, applied over the
// V-cycle hierarchy (sum over levels of n^3 is < (8/7) n_top^3 per operator
// pass; four operator passes per level per cycle is a close NPB-style
// estimate).
func MGOps(p MGParams) float64 {
	n := float64(int64(1) << p.Lt)
	cells := n * n * n * 8 / 7
	return float64(p.NIter) * 4 * 27 * cells
}

// FTOps returns the operation count of an FT run: 5*N*log2(N) per 3-D FFT
// (the standard FFT count) plus the evolve multiply, per iteration.
func FTOps(p FTParams) float64 {
	n := float64(p.N1 * p.N2 * p.N3)
	logN := 0.0
	for s := p.N1 * p.N2 * p.N3; s > 1; s >>= 1 {
		logN++
	}
	return float64(p.NIter) * (5*n*logN + 6*n)
}

// AppOps returns the operation count of one pseudo-application run: the
// residual (27 ops/cell/component) plus the solver sweeps (~3 dimensional
// passes at ~10 ops per cell per component).
func AppOps(p AppParams) float64 {
	cells := float64(p.N * p.N * p.N * appComps)
	perIter := 27*cells + 3*10*cells
	return float64(p.NIter) * perIter
}

// Mops converts an operation count and wall time into the NPB Mop/s figure.
func Mops(ops float64, elapsed time.Duration) float64 {
	s := elapsed.Seconds()
	if s <= 0 {
		return 0
	}
	return ops / s / units.Mega
}
