package npb

import (
	"fmt"
	"math"
	"math/cmplx"

	"xeonomp/internal/omp"
)

// FTParams sizes the FT kernel: an N1 x N2 x N3 complex grid (powers of
// two) evolved for NIter steps in frequency space.
type FTParams struct {
	N1, N2, N3 int
	NIter      int
}

// FTClass returns the NPB size for the class.
func FTClass(c Class) (FTParams, error) {
	switch c {
	case ClassT:
		return FTParams{N1: 16, N2: 16, N3: 16, NIter: 2}, nil
	case ClassS:
		return FTParams{N1: 64, N2: 64, N3: 64, NIter: 6}, nil
	case ClassW:
		return FTParams{N1: 128, N2: 128, N3: 32, NIter: 6}, nil
	case ClassA:
		return FTParams{N1: 256, N2: 256, N3: 128, NIter: 6}, nil
	case ClassB:
		return FTParams{N1: 512, N2: 256, N3: 256, NIter: 20}, nil
	}
	return FTParams{}, fmt.Errorf("npb: ft has no class %q", c)
}

// fft1 performs an in-place iterative radix-2 FFT of x (length a power of
// two). sign = -1 for the forward transform, +1 for the inverse; the
// inverse is unscaled (callers divide by N once, as NPB does).
func fft1(x []complex128, sign float64) {
	n := len(x)
	if n&(n-1) != 0 {
		panic("npb: fft length not a power of two")
	}
	// Bit reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
		m := n >> 1
		for m >= 1 && j&m != 0 {
			j ^= m
			m >>= 1
		}
		j |= m
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		w := cmplx.Exp(complex(0, sign*2*math.Pi/float64(size)))
		for start := 0; start < n; start += size {
			wk := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * wk
				x[start+k] = a + b
				x[start+k+half] = a - b
				wk *= w
			}
		}
	}
}

// FTState holds the FT arrays.
type FTState struct {
	p        FTParams
	u0       []complex128 // frequency-space state
	u1       []complex128 // work array
	twiddle  []float64    // per-mode evolution factor exponent
	checksum []complex128
}

func (s *FTState) idx(i1, i2, i3 int) int {
	return (i3*s.p.N2+i2)*s.p.N1 + i1
}

// newFTState draws the initial conditions from the NPB random stream (two
// deviates per cell, blocked per i3-plane so the stream is layout-stable)
// and precomputes the evolution exponents.
func newFTState(p FTParams) *FTState {
	n := p.N1 * p.N2 * p.N3
	st := &FTState{
		p:       p,
		u0:      make([]complex128, n),
		u1:      make([]complex128, n),
		twiddle: make([]float64, n),
	}
	perPlane := int64(2 * p.N1 * p.N2)
	buf := make([]float64, perPlane)
	for i3 := 0; i3 < p.N3; i3++ {
		seed := SeedAt(DefaultSeed, A, int64(i3)*perPlane)
		Vranlc(int(perPlane), &seed, A, buf)
		for k := 0; k < p.N1*p.N2; k++ {
			st.u1[i3*p.N1*p.N2+k] = complex(buf[2*k], buf[2*k+1])
		}
	}
	// Evolution factors: exp(-4 alpha pi^2 |kbar|^2 t) with the NPB alpha.
	const alpha = 1e-6
	for i3 := 0; i3 < p.N3; i3++ {
		k3 := i3
		if k3 >= p.N3/2 {
			k3 -= p.N3
		}
		for i2 := 0; i2 < p.N2; i2++ {
			k2 := i2
			if k2 >= p.N2/2 {
				k2 -= p.N2
			}
			for i1 := 0; i1 < p.N1; i1++ {
				k1 := i1
				if k1 >= p.N1/2 {
					k1 -= p.N1
				}
				kk := float64(k1*k1 + k2*k2 + k3*k3)
				st.twiddle[st.idx(i1, i2, i3)] = math.Exp(-4 * alpha * math.Pi * math.Pi * kk)
			}
		}
	}
	return st
}

// fft3d transforms data in place along all three dimensions; sign as in
// fft1. Parallelized over pencils with a barrier between dimensions.
func (s *FTState) fft3d(team *omp.Team, data []complex128, sign float64) {
	p := s.p
	team.Parallel(func(c *omp.Context) {
		// Dimension 1: contiguous pencils, parallel over (i2, i3).
		c.ForEach(0, p.N2*p.N3, omp.Static, 0, func(k int) {
			base := k * p.N1
			fft1(data[base:base+p.N1], sign)
		})
		c.Barrier()
		// Dimension 2: stride N1 pencils, parallel over (i1, i3).
		scratch := make([]complex128, p.N2)
		c.ForEach(0, p.N1*p.N3, omp.Static, 0, func(k int) {
			i1 := k % p.N1
			i3 := k / p.N1
			for i2 := 0; i2 < p.N2; i2++ {
				scratch[i2] = data[s.idx(i1, i2, i3)]
			}
			fft1(scratch, sign)
			for i2 := 0; i2 < p.N2; i2++ {
				data[s.idx(i1, i2, i3)] = scratch[i2]
			}
		})
		c.Barrier()
		// Dimension 3: stride N1*N2 pencils, parallel over (i1, i2).
		scratch3 := make([]complex128, p.N3)
		c.ForEach(0, p.N1*p.N2, omp.Static, 0, func(k int) {
			i1 := k % p.N1
			i2 := k / p.N1
			for i3 := 0; i3 < p.N3; i3++ {
				scratch3[i3] = data[s.idx(i1, i2, i3)]
			}
			fft1(scratch3, sign)
			for i3 := 0; i3 < p.N3; i3++ {
				data[s.idx(i1, i2, i3)] = scratch3[i3]
			}
		})
		c.Barrier()
	})
}

// FTOutput is the FT signature: the per-iteration checksums.
type FTOutput struct {
	Checksums []complex128
}

// RunFT executes the FT benchmark: forward 3-D FFT of the random initial
// state, then NIter spectral evolution steps, each followed by an inverse
// 3-D FFT and the NPB 1024-sample checksum.
func RunFT(p FTParams, threads int) (Result, FTOutput) {
	st := newFTState(p)
	team := omp.NewTeam(threads)
	n := p.N1 * p.N2 * p.N3

	// Forward transform of the initial state into u0.
	st.fft3d(team, st.u1, -1)
	copy(st.u0, st.u1)

	var out FTOutput
	work := make([]complex128, n)
	for iter := 1; iter <= p.NIter; iter++ {
		// Evolve in frequency space: u0 *= twiddle (cumulative, as NPB).
		team.Parallel(func(c *omp.Context) {
			lo, hi := c.For(0, n)
			for i := lo; i < hi; i++ {
				st.u0[i] *= complex(st.twiddle[i], 0)
				work[i] = st.u0[i]
			}
		})
		// Inverse transform and checksum.
		st.fft3d(team, work, +1)
		scale := complex(1/float64(n), 0)
		var chk complex128
		for j := 1; j <= 1024; j++ {
			q := (5 * j) % p.N1
			r := (3 * j) % p.N2
			ss := j % p.N3
			chk += work[st.idx(q, r, ss)] * scale
		}
		out.Checksums = append(out.Checksums, chk)
	}

	last := out.Checksums[len(out.Checksums)-1]
	ok := !math.IsNaN(real(last)) && !math.IsNaN(imag(last)) && cmplx.Abs(last) > 0
	return Result{
		Name:     "FT",
		Threads:  threads,
		Verified: ok,
		Checksum: cmplx.Abs(last),
		Detail:   fmt.Sprintf("final checksum %.10e%+.10ei", real(last), imag(last)),
	}, out
}
