package npb

import (
	"fmt"
	"math"

	"xeonomp/internal/omp"
)

// The BT, SP and LU pseudo-applications share a synthetic implicit problem
// that keeps the NPB solver shapes without the full compressible
// Navier-Stokes physics (a documented substitution — see DESIGN.md): a
// five-component diffusion-reaction system
//
//	A u = eps*u + sum_d D2_d(u) + kappa*(C u) = f
//
// on an n^3 grid with zero Dirichlet boundaries, where C is a fixed 5x5
// symmetric positive-definite coupling matrix and f is drawn from the NPB
// random stream. Each benchmark runs NIter defect-correction iterations
//
//	r = f - A u;  solve M du = r;  u += du
//
// with its characteristic approximate solver M:
//
//	BT — block-tridiagonal ADI sweeps with 5x5 blocks (block Thomas),
//	SP — scalar-pentadiagonal ADI sweeps (penta Thomas),
//	LU — red-black SSOR sweeps over the full operator.
//
// All three converge toward the same steady state, which the tests exploit
// as a cross-solver consistency check.

// AppParams sizes a pseudo-application.
type AppParams struct {
	N     int // grid dimension (interior)
	NIter int
}

// AppClass returns the size for a class (shared by BT, SP, LU up to
// iteration counts handled by the callers).
func AppClass(c Class) (AppParams, error) {
	switch c {
	case ClassT:
		return AppParams{N: 8, NIter: 5}, nil
	case ClassS:
		return AppParams{N: 12, NIter: 10}, nil
	case ClassW:
		return AppParams{N: 24, NIter: 10}, nil
	case ClassA:
		return AppParams{N: 64, NIter: 12}, nil
	case ClassB:
		return AppParams{N: 102, NIter: 15}, nil
	}
	return AppParams{}, fmt.Errorf("npb: pseudo-app has no class %q", c)
}

// app problem constants.
const (
	appComps = 5
	appEps   = 0.6
	appKappa = 0.2
	appSigma = 0.9 // ADI implicit weight
)

// appCoupling is the fixed SPD coupling matrix C (diagonally dominant).
var appCoupling = [appComps][appComps]float64{
	{2.0, 0.3, 0.1, 0.0, 0.1},
	{0.3, 2.2, 0.2, 0.1, 0.0},
	{0.1, 0.2, 2.4, 0.3, 0.1},
	{0.0, 0.1, 0.3, 2.1, 0.2},
	{0.1, 0.0, 0.1, 0.2, 2.3},
}

// field is a five-component scalar field on an n^3 interior with a zero
// ghost boundary, component-major.
type field struct {
	n    int
	data []float64 // appComps * (n+2)^3
}

func newField(n int) *field {
	d := n + 2
	return &field{n: n, data: make([]float64, appComps*d*d*d)}
}

func (f *field) idx(m, i, j, k int) int {
	d := f.n + 2
	return ((m*d+i)*d+j)*d + k
}

func (f *field) at(m, i, j, k int) float64     { return f.data[f.idx(m, i, j, k)] }
func (f *field) set(m, i, j, k int, v float64) { f.data[f.idx(m, i, j, k)] = v }

// appRHS builds the forcing field from the NPB random stream.
func appRHS(n int) *field {
	f := newField(n)
	seed := DefaultSeed
	for m := 0; m < appComps; m++ {
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				for k := 1; k <= n; k++ {
					f.set(m, i, j, k, Randlc(&seed, A)-0.5)
				}
			}
		}
	}
	return f
}

// applyA computes out = A u over this thread's plane range, leaving ghost
// cells untouched (they are always zero: Dirichlet boundary).
func applyA(u, out *field, c *omp.Context) {
	n := u.n
	lo, hi := c.For(1, n+1)
	for m := 0; m < appComps; m++ {
		for i := lo; i < hi; i++ {
			for j := 1; j <= n; j++ {
				for k := 1; k <= n; k++ {
					lap := 6*u.at(m, i, j, k) -
						u.at(m, i-1, j, k) - u.at(m, i+1, j, k) -
						u.at(m, i, j-1, k) - u.at(m, i, j+1, k) -
						u.at(m, i, j, k-1) - u.at(m, i, j, k+1)
					var couple float64
					for mm := 0; mm < appComps; mm++ {
						couple += appCoupling[m][mm] * u.at(mm, i, j, k)
					}
					out.set(m, i, j, k, appEps*u.at(m, i, j, k)+lap+appKappa*couple)
				}
			}
		}
	}
	c.Barrier()
}

// residual computes r = f - A u and returns its RMS norm.
func residual(u, f, r *field, team *omp.Team, red *omp.ReduceFloat64) float64 {
	var total float64
	n := u.n
	team.Parallel(func(c *omp.Context) {
		applyA(u, r, c)
		lo, hi := c.For(1, n+1)
		var local float64
		for m := 0; m < appComps; m++ {
			for i := lo; i < hi; i++ {
				for j := 1; j <= n; j++ {
					for k := 1; k <= n; k++ {
						v := f.at(m, i, j, k) - r.at(m, i, j, k)
						r.set(m, i, j, k, v)
						local += v * v
					}
				}
			}
		}
		t := red.Combine(c, local, func(a, b float64) float64 { return a + b })
		c.Master(func() { total = t })
		c.Barrier()
	})
	cells := float64(appComps * n * n * n)
	return math.Sqrt(total / cells)
}

// AppOutput records the residual trajectory of a pseudo-app run.
type AppOutput struct {
	RNorms []float64
	Final  float64
}

// runApp is the shared defect-correction driver; solve applies the
// benchmark's approximate inverse to r in place (du overwrites r).
func runApp(name string, p AppParams, threads int, solve func(r *field, team *omp.Team)) (Result, AppOutput) {
	u := newField(p.N)
	f := appRHS(p.N)
	r := newField(p.N)
	team := omp.NewTeam(threads)
	red := omp.NewReduceFloat64()

	var out AppOutput
	out.RNorms = append(out.RNorms, residual(u, f, r, team, red))
	for it := 0; it < p.NIter; it++ {
		solve(r, team) // r becomes du
		n := p.N
		team.Parallel(func(c *omp.Context) {
			lo, hi := c.For(1, n+1)
			for m := 0; m < appComps; m++ {
				for i := lo; i < hi; i++ {
					for j := 1; j <= n; j++ {
						for k := 1; k <= n; k++ {
							u.set(m, i, j, k, u.at(m, i, j, k)+r.at(m, i, j, k))
						}
					}
				}
			}
		})
		out.RNorms = append(out.RNorms, residual(u, f, r, team, red))
	}
	out.Final = out.RNorms[len(out.RNorms)-1]
	ok := !math.IsNaN(out.Final) && out.Final < out.RNorms[0]
	return Result{
		Name:     name,
		Threads:  threads,
		Verified: ok,
		Checksum: out.Final,
		Detail:   fmt.Sprintf("residual %0.3e -> %0.3e over %d iterations", out.RNorms[0], out.Final, p.NIter),
	}, out
}

// --- SP: scalar-pentadiagonal ADI ------------------------------------------

// pentaSolve solves (in place) the constant-coefficient pentadiagonal
// system M x = rhs along one line, where M has stencil
// [e, c, d, c, e] with d = 1 + 2*sigma + 6*tau, c = -sigma - 4*tau,
// e = tau — the (I + sigma*D2 + tau*D4) line operator of SP.
func pentaSolve(x []float64, scratch []float64) {
	n := len(x)
	const sigma = appSigma
	const tau = appSigma / 12
	d := 1 + 2*sigma + 6*tau
	cc := -sigma - 4*tau
	e := tau

	// Banded Gaussian elimination without pivoting (the matrix is strictly
	// diagonally dominant). scratch holds the two working diagonals:
	// scratch[2*i] = main, scratch[2*i+1] = first super.
	if cap(scratch) < 2*n {
		panic("npb: penta scratch too small")
	}
	s := scratch[:2*n]

	// Row i holds [e, c, d, c, e] at columns i-2..i+2. Eliminate sub-
	// diagonals with the two previous rows.
	// After elimination row i: diag s[2i], super s[2i+1], second super = e.
	for i := 0; i < n; i++ {
		di := d
		c1 := cc // first super coefficient of this row after elimination
		ri := x[i]
		// Eliminate with row i-1 (factor m1 = sub1 / diag_{i-1}).
		if i >= 1 {
			sub1 := cc
			if i >= 2 {
				// First eliminate the i-2 coupling: factor = e / diag_{i-2}.
				m2 := e / s[2*(i-2)]
				sub1 -= m2 * s[2*(i-2)+1]
				ri -= m2 * x[i-2]
				di -= m2 * e
			}
			m1 := sub1 / s[2*(i-1)]
			di -= m1 * s[2*(i-1)+1]
			ri -= m1 * x[i-1]
			if i+1 < n {
				c1 -= m1 * e
			}
		}
		s[2*i] = di
		s[2*i+1] = c1
		x[i] = ri
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		v := x[i]
		if i+1 < n {
			v -= s[2*i+1] * x[i+1]
		}
		if i+2 < n {
			v -= e * x[i+2]
		}
		x[i] = v / s[2*i]
	}
}

// spSweep applies the pentadiagonal line solve along dimension dim for all
// lines and components, partitioned over the outermost free index.
func spSweep(r *field, team *omp.Team, dim int) {
	n := r.n
	team.Parallel(func(c *omp.Context) {
		line := make([]float64, n)
		scratch := make([]float64, 2*n)
		c.ForEach(0, appComps*n*n, omp.Static, 0, func(w int) {
			m := w / (n * n)
			rest := w % (n * n)
			a := rest/n + 1
			b := rest%n + 1
			for t := 1; t <= n; t++ {
				switch dim {
				case 0:
					line[t-1] = r.at(m, t, a, b)
				case 1:
					line[t-1] = r.at(m, a, t, b)
				default:
					line[t-1] = r.at(m, a, b, t)
				}
			}
			pentaSolve(line, scratch)
			for t := 1; t <= n; t++ {
				switch dim {
				case 0:
					r.set(m, t, a, b, line[t-1])
				case 1:
					r.set(m, a, t, b, line[t-1])
				default:
					r.set(m, a, b, t, line[t-1])
				}
			}
		})
		c.Barrier()
	})
}

// RunSP executes the SP pseudo-application.
func RunSP(p AppParams, threads int) (Result, AppOutput) {
	return runApp("SP", p, threads, func(r *field, team *omp.Team) {
		for dim := 0; dim < 3; dim++ {
			spSweep(r, team, dim)
		}
	})
}

// --- BT: block-tridiagonal ADI ----------------------------------------------

// blockTriSolve solves the block-tridiagonal system along one line with
// 5x5 blocks: diag D = (1+2*sigma)I + sigma*kappa*C, off-diagonals -sigma*I.
// x is n consecutive 5-vectors. Block Thomas with dense 5x5 elimination.
func blockTriSolve(x [][appComps]float64, diag *[appComps][appComps]float64) {
	n := len(x)
	const sigma = appSigma
	off := -sigma

	// dprime[i] = eliminated diagonal block, rprime in x.
	dp := make([][appComps][appComps]float64, n)
	dp[0] = *diag
	for i := 1; i < n; i++ {
		// m = off * inv(dp[i-1]); dp[i] = D - m*off = D - off^2 inv(dp[i-1])
		inv := invert5(&dp[i-1])
		var next [appComps][appComps]float64
		for a := 0; a < appComps; a++ {
			for b := 0; b < appComps; b++ {
				next[a][b] = (*diag)[a][b] - off*off*inv[a][b]
			}
		}
		dp[i] = next
		// x[i] -= off * inv(dp[i-1]) * x[i-1]
		var tmp [appComps]float64
		for a := 0; a < appComps; a++ {
			var s float64
			for b := 0; b < appComps; b++ {
				s += inv[a][b] * x[i-1][b]
			}
			tmp[a] = s
		}
		for a := 0; a < appComps; a++ {
			x[i][a] -= off * tmp[a]
		}
	}
	// Back substitution: x[i] = inv(dp[i]) * (x[i] - off*x[i+1]).
	for i := n - 1; i >= 0; i-- {
		rhs := x[i]
		if i+1 < n {
			for a := 0; a < appComps; a++ {
				rhs[a] -= off * x[i+1][a]
			}
		}
		inv := invert5(&dp[i])
		for a := 0; a < appComps; a++ {
			var s float64
			for b := 0; b < appComps; b++ {
				s += inv[a][b] * rhs[b]
			}
			x[i][a] = s
		}
	}
}

// invert5 inverts a 5x5 matrix by Gauss-Jordan elimination with partial
// pivoting. The blocks are strongly diagonally dominant, so this is stable.
func invert5(m *[appComps][appComps]float64) [appComps][appComps]float64 {
	var a [appComps][2 * appComps]float64
	for i := 0; i < appComps; i++ {
		for j := 0; j < appComps; j++ {
			a[i][j] = m[i][j]
		}
		a[i][appComps+i] = 1
	}
	for col := 0; col < appComps; col++ {
		p := col
		for r := col + 1; r < appComps; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		a[col], a[p] = a[p], a[col]
		piv := a[col][col]
		for j := 0; j < 2*appComps; j++ {
			a[col][j] /= piv
		}
		for r := 0; r < appComps; r++ {
			if r == col {
				continue
			}
			f := a[r][col]
			if f == 0 {
				continue
			}
			for j := 0; j < 2*appComps; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	var out [appComps][appComps]float64
	for i := 0; i < appComps; i++ {
		for j := 0; j < appComps; j++ {
			out[i][j] = a[i][appComps+j]
		}
	}
	return out
}

// btSweep applies the block-tridiagonal solve along dimension dim.
func btSweep(r *field, team *omp.Team, dim int) {
	n := r.n
	const sigma = appSigma
	var diag [appComps][appComps]float64
	for a := 0; a < appComps; a++ {
		for b := 0; b < appComps; b++ {
			diag[a][b] = sigma * appKappa * appCoupling[a][b]
			if a == b {
				diag[a][b] += 1 + 2*sigma
			}
		}
	}
	team.Parallel(func(c *omp.Context) {
		line := make([][appComps]float64, n)
		c.ForEach(0, n*n, omp.Static, 0, func(w int) {
			a := w/n + 1
			b := w%n + 1
			for t := 1; t <= n; t++ {
				for m := 0; m < appComps; m++ {
					switch dim {
					case 0:
						line[t-1][m] = r.at(m, t, a, b)
					case 1:
						line[t-1][m] = r.at(m, a, t, b)
					default:
						line[t-1][m] = r.at(m, a, b, t)
					}
				}
			}
			blockTriSolve(line, &diag)
			for t := 1; t <= n; t++ {
				for m := 0; m < appComps; m++ {
					switch dim {
					case 0:
						r.set(m, t, a, b, line[t-1][m])
					case 1:
						r.set(m, a, t, b, line[t-1][m])
					default:
						r.set(m, a, b, t, line[t-1][m])
					}
				}
			}
		})
		c.Barrier()
	})
}

// RunBT executes the BT pseudo-application.
func RunBT(p AppParams, threads int) (Result, AppOutput) {
	return runApp("BT", p, threads, func(r *field, team *omp.Team) {
		for dim := 0; dim < 3; dim++ {
			btSweep(r, team, dim)
		}
	})
}

// --- LU: SSOR ----------------------------------------------------------------

// RunLU executes the LU pseudo-application: red-black SSOR sweeps applied
// directly to the full operator A.
func RunLU(p AppParams, threads int) (Result, AppOutput) {
	const omega = 1.1
	const sweeps = 2
	return runApp("LU", p, threads, func(r *field, team *omp.Team) {
		n := r.n
		// Solve A du = r approximately; du accumulates in place of r, so
		// work on a copy of the right-hand side.
		rhs := newField(n)
		copy(rhs.data, r.data)
		team.Parallel(func(c *omp.Context) {
			lo, hi := c.For(1, n+1)
			// Zero initial guess.
			for m := 0; m < appComps; m++ {
				for i := lo; i < hi; i++ {
					for j := 0; j <= n+1; j++ {
						for k := 0; k <= n+1; k++ {
							r.set(m, i, j, k, 0)
						}
					}
				}
			}
			c.Barrier()
			// diag of A per component row: eps + 6 + kappa*C[m][m]; the
			// coupling off-diagonals are folded into the relaxation RHS.
			for s := 0; s < sweeps; s++ {
				for color := 0; color < 2; color++ {
					for i := lo; i < hi; i++ {
						for j := 1; j <= n; j++ {
							for k := 1; k <= n; k++ {
								if (i+j+k)%2 != color {
									continue
								}
								for m := 0; m < appComps; m++ {
									neigh := r.at(m, i-1, j, k) + r.at(m, i+1, j, k) +
										r.at(m, i, j-1, k) + r.at(m, i, j+1, k) +
										r.at(m, i, j, k-1) + r.at(m, i, j, k+1)
									var couple float64
									for mm := 0; mm < appComps; mm++ {
										if mm != m {
											couple += appCoupling[m][mm] * r.at(mm, i, j, k)
										}
									}
									dg := appEps + 6 + appKappa*appCoupling[m][m]
									gs := (rhs.at(m, i, j, k) + neigh - appKappa*couple) / dg
									r.set(m, i, j, k, (1-omega)*r.at(m, i, j, k)+omega*gs)
								}
							}
						}
					}
					c.Barrier()
				}
			}
		})
	})
}
