package npb

import (
	"fmt"
	"math"

	"xeonomp/internal/omp"
)

// EPParams sizes the EP (embarrassingly parallel) kernel: 2^M pairs of
// Gaussian deviates are generated and binned by annulus.
type EPParams struct {
	M int // log2 of the number of pairs
}

// EPClass returns the NPB size for the class (T is the fast test size).
func EPClass(c Class) (EPParams, error) {
	switch c {
	case ClassT:
		return EPParams{M: 16}, nil
	case ClassS:
		return EPParams{M: 24}, nil
	case ClassW:
		return EPParams{M: 25}, nil
	case ClassA:
		return EPParams{M: 28}, nil
	case ClassB:
		return EPParams{M: 30}, nil
	}
	return EPParams{}, fmt.Errorf("npb: ep has no class %q", c)
}

// EPOutput is the EP signature: the sums of the accepted Gaussian deviates
// and the per-annulus counts.
type EPOutput struct {
	SX, SY float64
	Q      [10]float64
	Pairs  int64 // accepted pairs
}

// epBlock is the random-stream block size, matching NPB's NK = 2^16 numbers
// (2^15 pairs) per block so every thread can jump to its blocks' seeds.
const epBlockLog = 16

// RunEP executes EP with the given team size and returns the result. The
// random stream is partitioned into fixed blocks whose seeds are reached by
// LCG jumping, so the output is independent of the schedule and thread
// count.
func RunEP(p EPParams, threads int) (Result, EPOutput) {
	if p.M < epBlockLog {
		// Small test sizes use a single smaller block per thread chunk.
		return runEP(p, threads, p.M)
	}
	return runEP(p, threads, epBlockLog)
}

func runEP(p EPParams, threads int, blockLog int) (Result, EPOutput) {
	nPairs := int64(1) << p.M
	pairsPerBlock := int64(1) << (blockLog - 1)
	nBlocks := int(nPairs / pairsPerBlock)
	if nBlocks < 1 {
		nBlocks = 1
		pairsPerBlock = nPairs
	}

	team := omp.NewTeam(threads)
	partial := make([]EPOutput, team.NumThreads())

	team.Parallel(func(c *omp.Context) {
		var local EPOutput
		xs := make([]float64, 2*pairsPerBlock)
		c.ForEach(0, nBlocks, omp.Static, 0, func(b int) {
			// Jump to this block's seed: 2 numbers per pair.
			seed := SeedAt(DefaultSeed, A, int64(b)*pairsPerBlock*2)
			Vranlc(len(xs), &seed, A, xs)
			for i := int64(0); i < pairsPerBlock; i++ {
				x := 2*xs[2*i] - 1
				y := 2*xs[2*i+1] - 1
				t := x*x + y*y
				if t > 1 {
					continue
				}
				f := math.Sqrt(-2 * math.Log(t) / t)
				gx := x * f
				gy := y * f
				l := int(math.Max(math.Abs(gx), math.Abs(gy)))
				if l > 9 {
					l = 9
				}
				local.Q[l]++
				local.SX += gx
				local.SY += gy
				local.Pairs++
			}
		})
		partial[c.TID()] = local
	})

	var out EPOutput
	for _, l := range partial {
		out.SX += l.SX
		out.SY += l.SY
		out.Pairs += l.Pairs
		for i := range out.Q {
			out.Q[i] += l.Q[i]
		}
	}

	// Invariant verification: the annulus counts must sum to the accepted
	// pairs, and the acceptance rate must be near pi/4.
	var qsum float64
	for _, q := range out.Q {
		qsum += q
	}
	rate := float64(out.Pairs) / float64(nPairs)
	ok := qsum == float64(out.Pairs) && math.Abs(rate-math.Pi/4) < 0.05
	detail := fmt.Sprintf("accept rate %.4f (pi/4=%.4f), qsum ok=%v", rate, math.Pi/4, qsum == float64(out.Pairs))

	res := Result{
		Name:     "EP",
		Threads:  threads,
		Verified: ok,
		Checksum: out.SX,
		Detail:   detail,
	}
	return res, out
}
