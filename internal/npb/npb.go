// Package npb contains functional Go implementations of the NAS Parallel
// Benchmarks (OpenMP flavour) used by the paper: the kernels EP, IS, CG,
// MG, FT and the pseudo-applications BT, LU, SP. They run on the OpenMP-like
// runtime in internal/omp and are real shared-memory parallel programs: the
// loop and data-structure shapes here are what ground the architectural
// profiles that drive the timing simulator.
//
// Faithfulness notes (also recorded in DESIGN.md):
//
//   - The pseudo-random stream is the NPB randlc linear congruential
//     generator (a = 5^13, modulus 2^46) with the standard block-seed
//     jumping, so parallel runs are bit-identical to serial runs.
//   - EP, IS, CG, MG and FT follow the published NPB algorithm structure.
//     BT, SP and LU are compact pseudo-applications that keep the NPB
//     solver shape — block-tridiagonal, scalar-pentadiagonal and SSOR
//     sweeps respectively, over a 3-D grid with per-step verification —
//     but solve a synthetic diffusion system instead of the full
//     compressible Navier-Stokes equations.
//   - The official NPB verification constants are not available offline;
//     each benchmark instead verifies that (a) its internal invariants
//     hold (sortedness, inverse-transform identity, residual decrease)
//     and (b) parallel executions reproduce the serial result exactly or
//     within floating-point reduction tolerance.
package npb

import (
	"fmt"
	"math"
)

// Class identifies an NPB problem size. T is a test-sized class added for
// fast unit tests; S, W, A, B follow the NPB naming (the paper runs class B).
type Class string

// Problem classes.
const (
	ClassT Class = "T"
	ClassS Class = "S"
	ClassW Class = "W"
	ClassA Class = "A"
	ClassB Class = "B"
)

// Valid reports whether c names a known class.
func (c Class) Valid() bool {
	switch c {
	case ClassT, ClassS, ClassW, ClassA, ClassB:
		return true
	}
	return false
}

// Result is the outcome of one benchmark run.
type Result struct {
	Name     string
	Class    Class
	Threads  int
	Verified bool
	// Checksum is the benchmark's scalar signature (zeta for CG, sx for
	// EP, residual norm for MG/BT/LU/SP, |checksum| for FT, key digest
	// for IS); used to compare serial and parallel executions.
	Checksum float64
	// Detail holds a human-readable verification note.
	Detail string
}

// String renders the result like the NPB output footer.
func (r Result) String() string {
	v := "UNVERIFIED"
	if r.Verified {
		v = "VERIFIED"
	}
	return fmt.Sprintf("%s class %s threads=%d checksum=%.10e %s (%s)",
		r.Name, r.Class, r.Threads, r.Checksum, v, r.Detail)
}

// NPB randlc constants: multiplier 5^13, modulus 2^46.
const (
	r23 = 1.0 / (1 << 23)
	t23 = 1 << 23
	r46 = r23 * r23
	t46 = float64(t23) * float64(t23)

	// A is the NPB multiplier 5^13.
	A = 1220703125.0
	// DefaultSeed is the NPB default seed.
	DefaultSeed = 314159265.0
)

// Randlc advances *x by one step of the NPB linear congruential generator
// x' = a*x mod 2^46 and returns x' * 2^-46, a uniform deviate in (0, 1).
// The double-double arithmetic follows the published NPB code exactly.
func Randlc(x *float64, a float64) float64 {
	t1 := r23 * a
	a1 := math.Trunc(t1)
	a2 := a - t23*a1

	t1 = r23 * *x
	x1 := math.Trunc(t1)
	x2 := *x - t23*x1

	t1 = a1*x2 + a2*x1
	t2 := math.Trunc(r23 * t1)
	z := t1 - t23*t2
	t3 := t23*z + a2*x2
	t4 := math.Trunc(r46 * t3)
	*x = t3 - t46*t4
	return r46 * *x
}

// Vranlc fills out with n uniform deviates, advancing *x.
func Vranlc(n int, x *float64, a float64, out []float64) {
	for i := 0; i < n; i++ {
		out[i] = Randlc(x, a)
	}
}

// SeedAt returns the LCG state after advancing seed by k steps with
// multiplier a — i.e. a^k * seed mod 2^46 — using the NPB power-jumping
// trick (square-and-multiply through Randlc's arithmetic). It is what lets
// every thread of EP or FT generate its block of the global random stream
// independently.
func SeedAt(seed float64, a float64, k int64) float64 {
	if k < 0 {
		panic("npb: negative stream offset")
	}
	t := seed
	pow := a
	for k > 0 {
		if k&1 == 1 {
			// t = pow * t mod 2^46: Randlc(&t, pow) sets t correctly.
			Randlc(&t, pow)
		}
		// pow = pow^2 mod 2^46.
		Randlc(&pow, pow)
		k >>= 1
	}
	return t
}

// almostEqual compares within a relative tolerance, the NPB epsilon style.
func almostEqual(a, b, rel float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return d == 0
	}
	return d/m <= rel
}
