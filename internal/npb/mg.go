package npb

import (
	"fmt"
	"math"
	"sort"

	"xeonomp/internal/omp"
)

// MGParams sizes the MG kernel: a 2^Lt cubic grid and NIter V-cycles.
type MGParams struct {
	Lt    int // log2 of the grid dimension
	NIter int
}

// MGClass returns the NPB size for the class.
func MGClass(c Class) (MGParams, error) {
	switch c {
	case ClassT:
		return MGParams{Lt: 4, NIter: 2}, nil
	case ClassS:
		return MGParams{Lt: 5, NIter: 4}, nil
	case ClassW:
		return MGParams{Lt: 6, NIter: 40}, nil
	case ClassA:
		return MGParams{Lt: 8, NIter: 4}, nil
	case ClassB:
		return MGParams{Lt: 8, NIter: 20}, nil
	}
	return MGParams{}, fmt.Errorf("npb: mg has no class %q", c)
}

// grid is one multigrid level: an n^3 interior with one ghost layer on each
// side (periodic boundaries), stored row-major as (n+2)^3.
type grid struct {
	n    int
	data []float64
}

func newGrid(n int) *grid {
	d := n + 2
	return &grid{n: n, data: make([]float64, d*d*d)}
}

func (g *grid) idx(i3, i2, i1 int) int {
	d := g.n + 2
	return (i3*d+i2)*d + i1
}

func (g *grid) at(i3, i2, i1 int) float64     { return g.data[g.idx(i3, i2, i1)] }
func (g *grid) set(i3, i2, i1 int, v float64) { g.data[g.idx(i3, i2, i1)] = v }

// comm3 refreshes the periodic ghost layers. Threads partition the planes;
// the caller must barrier afterwards.
func comm3(g *grid, c *omp.Context) {
	n := g.n
	lo, hi := c.For(1, n+1)
	for i3 := lo; i3 < hi; i3++ {
		for i2 := 1; i2 <= n; i2++ {
			g.set(i3, i2, 0, g.at(i3, i2, n))
			g.set(i3, i2, n+1, g.at(i3, i2, 1))
		}
		for i1 := 0; i1 <= n+1; i1++ {
			g.set(i3, 0, i1, g.at(i3, n, i1))
			g.set(i3, n+1, i1, g.at(i3, 1, i1))
		}
	}
	c.Barrier()
	lo2, hi2 := c.For(0, n+2)
	for i2 := lo2; i2 < hi2; i2++ {
		for i1 := 0; i1 <= n+1; i1++ {
			g.set(0, i2, i1, g.at(n, i2, i1))
			g.set(n+1, i2, i1, g.at(1, i2, i1))
		}
	}
	c.Barrier()
}

// stencil27 applies the NPB 4-coefficient 27-point stencil of u into out:
// out = op(u) with coefficient a[0] for the center, a[1] for the 6 faces,
// a[2] for the 12 edges, a[3] for the 8 corners.
func stencil27(u *grid, a [4]float64, c *omp.Context, combine func(i3, i2, i1 int, v float64)) {
	n := u.n
	lo, hi := c.For(1, n+1)
	for i3 := lo; i3 < hi; i3++ {
		for i2 := 1; i2 <= n; i2++ {
			for i1 := 1; i1 <= n; i1++ {
				center := u.at(i3, i2, i1)
				faces := u.at(i3-1, i2, i1) + u.at(i3+1, i2, i1) +
					u.at(i3, i2-1, i1) + u.at(i3, i2+1, i1) +
					u.at(i3, i2, i1-1) + u.at(i3, i2, i1+1)
				edges := u.at(i3-1, i2-1, i1) + u.at(i3-1, i2+1, i1) +
					u.at(i3+1, i2-1, i1) + u.at(i3+1, i2+1, i1) +
					u.at(i3-1, i2, i1-1) + u.at(i3-1, i2, i1+1) +
					u.at(i3+1, i2, i1-1) + u.at(i3+1, i2, i1+1) +
					u.at(i3, i2-1, i1-1) + u.at(i3, i2-1, i1+1) +
					u.at(i3, i2+1, i1-1) + u.at(i3, i2+1, i1+1)
				corners := u.at(i3-1, i2-1, i1-1) + u.at(i3-1, i2-1, i1+1) +
					u.at(i3-1, i2+1, i1-1) + u.at(i3-1, i2+1, i1+1) +
					u.at(i3+1, i2-1, i1-1) + u.at(i3+1, i2-1, i1+1) +
					u.at(i3+1, i2+1, i1-1) + u.at(i3+1, i2+1, i1+1)
				combine(i3, i2, i1, a[0]*center+a[1]*faces+a[2]*edges+a[3]*corners)
			}
		}
	}
	c.Barrier()
}

// The NPB operator coefficients.
var (
	mgA = [4]float64{-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0}   // A (Laplacian-like)
	mgC = [4]float64{-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0.0} // S (smoother)
)

// MGState carries the multigrid hierarchy.
type MGState struct {
	lt   int
	u, r []*grid // per level, index 1..lt (0 unused)
	v    *grid   // right-hand side at the top level
}

// newMGState builds the hierarchy and the NPB-style right-hand side: +1 at
// the ten "largest" pseudo-random points and -1 at the ten "smallest".
func newMGState(p MGParams) *MGState {
	st := &MGState{lt: p.Lt}
	st.u = make([]*grid, p.Lt+1)
	st.r = make([]*grid, p.Lt+1)
	for l := 1; l <= p.Lt; l++ {
		st.u[l] = newGrid(1 << l)
		st.r[l] = newGrid(1 << l)
	}
	n := 1 << p.Lt
	st.v = newGrid(n)

	// zran3-style charges: rank n^3 pseudo-random values, +1 at the 10
	// largest, -1 at the 10 smallest. We draw one value per cell from the
	// randlc stream and track the extremes.
	type pv struct {
		val        float64
		i3, i2, i1 int
	}
	var all []pv
	seed := DefaultSeed
	for i3 := 1; i3 <= n; i3++ {
		for i2 := 1; i2 <= n; i2++ {
			for i1 := 1; i1 <= n; i1++ {
				all = append(all, pv{Randlc(&seed, A), i3, i2, i1})
			}
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].val < all[b].val })
	for k := 0; k < 10 && k < len(all); k++ {
		p := all[k]
		st.v.set(p.i3, p.i2, p.i1, -1)
		q := all[len(all)-1-k]
		st.v.set(q.i3, q.i2, q.i1, +1)
	}
	return st
}

// MGOutput is the MG signature.
type MGOutput struct {
	RNorm  float64
	RNorms []float64 // after each V-cycle
}

// RunMG executes the MG benchmark: NIter V-cycles of the NPB multigrid
// algorithm (resid, rprj3 restriction, psinv smoothing, interp
// prolongation) on a periodic cube, parallelized over grid planes.
func RunMG(p MGParams, threads int) (Result, MGOutput) {
	st := newMGState(p)
	team := omp.NewTeam(threads)
	red := omp.NewReduceFloat64()
	sum := func(a, b float64) float64 { return a + b }
	var out MGOutput

	norm := func() float64 {
		var total float64
		team.Parallel(func(c *omp.Context) {
			n := st.r[st.lt].n
			lo, hi := c.For(1, n+1)
			var local float64
			for i3 := lo; i3 < hi; i3++ {
				for i2 := 1; i2 <= n; i2++ {
					for i1 := 1; i1 <= n; i1++ {
						v := st.r[st.lt].at(i3, i2, i1)
						local += v * v
					}
				}
			}
			t := red.Combine(c, local, sum)
			c.Master(func() { total = t })
			c.Barrier()
		})
		n := st.r[st.lt].n
		return math.Sqrt(total / float64(n*n*n))
	}

	// r = v - A u at the top level.
	residTop := func(c *omp.Context) {
		top := st.lt
		comm3(st.u[top], c)
		stencil27(st.u[top], mgA, c, func(i3, i2, i1 int, v float64) {
			st.r[top].set(i3, i2, i1, st.v.at(i3, i2, i1)-v)
		})
	}

	team.Parallel(func(c *omp.Context) { residTop(c) })
	out.RNorms = append(out.RNorms, norm())

	for it := 0; it < p.NIter; it++ {
		team.Parallel(func(c *omp.Context) {
			// Down sweep: restrict the residual to the bottom.
			for l := st.lt; l > 1; l-- {
				rprj3(st.r[l], st.r[l-1], c)
			}
			// Bottom solve: one smoothing application on the coarsest grid.
			zero(st.u[1], c)
			comm3(st.r[1], c)
			stencil27(st.r[1], mgC, c, func(i3, i2, i1 int, v float64) {
				st.u[1].set(i3, i2, i1, v)
			})
			// Up sweep below the top: u_l is the CORRECTION at level l.
			for l := 2; l < st.lt; l++ {
				zero(st.u[l], c)
				interpAdd(st.u[l-1], st.u[l], c)
				// r_l = r_l - A u_l  (defect correction)
				comm3(st.u[l], c)
				stencil27(st.u[l], mgA, c, func(i3, i2, i1 int, v float64) {
					st.r[l].set(i3, i2, i1, st.r[l].at(i3, i2, i1)-v)
				})
				// u_l = u_l + S r_l
				comm3(st.r[l], c)
				stencil27(st.r[l], mgC, c, func(i3, i2, i1 int, v float64) {
					st.u[l].set(i3, i2, i1, st.u[l].at(i3, i2, i1)+v)
				})
			}
			// Top level: the accumulated SOLUTION is corrected in place —
			// u += interp(e), r = v - A u, u += S r, as in the NPB mg3P.
			if st.lt >= 2 {
				interpAdd(st.u[st.lt-1], st.u[st.lt], c)
			}
			residTop(c)
			comm3(st.r[st.lt], c)
			stencil27(st.r[st.lt], mgC, c, func(i3, i2, i1 int, v float64) {
				st.u[st.lt].set(i3, i2, i1, st.u[st.lt].at(i3, i2, i1)+v)
			})
			// Final residual feeds the next cycle and the norm.
			residTop(c)
		})
		out.RNorms = append(out.RNorms, norm())
	}

	out.RNorm = out.RNorms[len(out.RNorms)-1]
	ok := !math.IsNaN(out.RNorm) && out.RNorm < out.RNorms[0]
	return Result{
		Name:     "MG",
		Threads:  threads,
		Verified: ok,
		Checksum: out.RNorm,
		Detail:   fmt.Sprintf("rnorm %0.3e -> %0.3e over %d cycles", out.RNorms[0], out.RNorm, p.NIter),
	}, out
}

// zero clears a grid's interior and ghosts.
func zero(g *grid, c *omp.Context) {
	d := g.n + 2
	lo, hi := c.For(0, d)
	for i3 := lo; i3 < hi; i3++ {
		base := i3 * d * d
		for k := base; k < base+d*d; k++ {
			g.data[k] = 0
		}
	}
	c.Barrier()
}

// rprj3 restricts fine (n) to coarse (n/2) with the NPB full-weighting
// operator.
func rprj3(fine, coarse *grid, c *omp.Context) {
	comm3(fine, c)
	n := coarse.n
	lo, hi := c.For(1, n+1)
	for j3 := lo; j3 < hi; j3++ {
		i3 := 2 * j3
		for j2 := 1; j2 <= n; j2++ {
			i2 := 2 * j2
			for j1 := 1; j1 <= n; j1++ {
				i1 := 2 * j1
				var faces, edges, corners float64
				for _, d := range [][3]int{{-1, 0, 0}, {1, 0, 0}, {0, -1, 0}, {0, 1, 0}, {0, 0, -1}, {0, 0, 1}} {
					faces += fine.at(i3+d[0], i2+d[1], i1+d[2])
				}
				for _, d := range [][3]int{
					{-1, -1, 0}, {-1, 1, 0}, {1, -1, 0}, {1, 1, 0},
					{-1, 0, -1}, {-1, 0, 1}, {1, 0, -1}, {1, 0, 1},
					{0, -1, -1}, {0, -1, 1}, {0, 1, -1}, {0, 1, 1}} {
					edges += fine.at(i3+d[0], i2+d[1], i1+d[2])
				}
				for _, d := range [][3]int{
					{-1, -1, -1}, {-1, -1, 1}, {-1, 1, -1}, {-1, 1, 1},
					{1, -1, -1}, {1, -1, 1}, {1, 1, -1}, {1, 1, 1}} {
					corners += fine.at(i3+d[0], i2+d[1], i1+d[2])
				}
				coarse.set(j3, j2, j1,
					0.5*fine.at(i3, i2, i1)+0.25*faces/2+0.125*edges/4+0.0625*corners/8)
			}
		}
	}
	c.Barrier()
}

// interpAdd adds the trilinear prolongation of coarse into fine, in gather
// form (each thread writes only its own fine planes, so no synchronization
// beyond the surrounding barriers is needed). Odd fine indices are
// co-located with a coarse cell; even ones average their two coarse
// neighbours, using the periodic ghost layer.
func interpAdd(coarse, fine *grid, c *omp.Context) {
	comm3(coarse, c)
	n := fine.n
	// contrib returns the (up to two) coarse indices and weights feeding
	// fine index i in one dimension.
	contrib := func(i int) (j1, j2 int, w1, w2 float64) {
		if i%2 == 1 {
			return (i + 1) / 2, 0, 1, 0
		}
		return i / 2, i/2 + 1, 0.5, 0.5
	}
	lo, hi := c.For(1, n+1)
	for i3 := lo; i3 < hi; i3++ {
		a3, b3, wa3, wb3 := contrib(i3)
		for i2 := 1; i2 <= n; i2++ {
			a2, b2, wa2, wb2 := contrib(i2)
			for i1 := 1; i1 <= n; i1++ {
				a1, b1, wa1, wb1 := contrib(i1)
				var v float64
				for _, p3 := range [2]struct {
					j int
					w float64
				}{{a3, wa3}, {b3, wb3}} {
					if p3.w == 0 {
						continue
					}
					for _, p2 := range [2]struct {
						j int
						w float64
					}{{a2, wa2}, {b2, wb2}} {
						if p2.w == 0 {
							continue
						}
						if wa1 == 1 {
							v += p3.w * p2.w * coarse.at(p3.j, p2.j, a1)
						} else {
							v += p3.w * p2.w * (wa1*coarse.at(p3.j, p2.j, a1) + wb1*coarse.at(p3.j, p2.j, b1))
						}
					}
				}
				fine.data[fine.idx(i3, i2, i1)] += v
			}
		}
	}
	c.Barrier()
}
