package npb

import (
	"fmt"

	"xeonomp/internal/omp"
)

// ISParams sizes the IS (integer sort) kernel.
type ISParams struct {
	TotalKeysLog int // log2 of the number of keys
	MaxKeyLog    int // log2 of the key range
	Iterations   int
}

// ISClass returns the NPB size for the class.
func ISClass(c Class) (ISParams, error) {
	switch c {
	case ClassT:
		return ISParams{TotalKeysLog: 12, MaxKeyLog: 9, Iterations: 3}, nil
	case ClassS:
		return ISParams{TotalKeysLog: 16, MaxKeyLog: 11, Iterations: 10}, nil
	case ClassW:
		return ISParams{TotalKeysLog: 20, MaxKeyLog: 16, Iterations: 10}, nil
	case ClassA:
		return ISParams{TotalKeysLog: 23, MaxKeyLog: 19, Iterations: 10}, nil
	case ClassB:
		return ISParams{TotalKeysLog: 25, MaxKeyLog: 21, Iterations: 10}, nil
	}
	return ISParams{}, fmt.Errorf("npb: is has no class %q", c)
}

// RunIS executes IS: keys with the NPB Gaussian-ish distribution (average
// of four uniform deviates) are ranked by a parallel stable counting sort
// for the configured number of iterations; the final ranking is verified to
// actually sort the keys.
func RunIS(p ISParams, threads int) Result {
	n := 1 << p.TotalKeysLog
	maxKey := 1 << p.MaxKeyLog

	// Key generation follows NPB: k = maxKey/4 * (r1+r2+r3+r4). It is done
	// serially, as in the reference code (generation is untimed), so the
	// stream is identical for every thread count.
	keys := make([]int32, n)
	seed := DefaultSeed
	quarter := float64(maxKey) / 4
	for i := range keys {
		s := Randlc(&seed, A) + Randlc(&seed, A) + Randlc(&seed, A) + Randlc(&seed, A)
		k := int32(quarter * s)
		if k >= int32(maxKey) {
			k = int32(maxKey) - 1
		}
		keys[i] = k
	}

	team := omp.NewTeam(threads)
	nt := team.NumThreads()
	rank := make([]int32, n)
	hist := make([][]int32, nt)   // per-thread histograms
	starts := make([][]int32, nt) // per-thread start offset per key
	global := make([]int32, maxKey)
	for t := 0; t < nt; t++ {
		hist[t] = make([]int32, maxKey)
		starts[t] = make([]int32, maxKey)
	}

	for iter := 0; iter < p.Iterations; iter++ {
		// NPB perturbs two keys per iteration so no iteration is a pure
		// replay of the previous one.
		keys[iter] = int32(iter)
		keys[iter+p.Iterations] = int32(maxKey - iter - 1)

		team.Parallel(func(c *omp.Context) {
			tid := c.TID()
			h := hist[tid]
			for i := range h {
				h[i] = 0
			}
			lo, hi := c.For(0, n)
			for i := lo; i < hi; i++ {
				h[keys[i]]++
			}
			c.Barrier()

			// For this thread's slice of the key range: per-thread start
			// offsets within each key's run, and the global count.
			klo, khi := c.For(0, maxKey)
			for k := klo; k < khi; k++ {
				var s int32
				for t := 0; t < nt; t++ {
					starts[t][k] = s
					s += hist[t][k]
				}
				global[k] = s
			}
			c.Barrier()

			// Exclusive prefix over the (small) key range; single thread,
			// as in the reference code.
			c.Single(1, func() {
				var acc int32
				for k := 0; k < maxKey; k++ {
					cnt := global[k]
					global[k] = acc
					acc += cnt
				}
			})

			// Stable rank assignment: this thread's occurrences of key k
			// start at global[k] + starts[tid][k].
			cur := starts[tid]
			for i := lo; i < hi; i++ {
				k := keys[i]
				rank[i] = global[k] + cur[k]
				cur[k]++
			}
		})
	}

	// Verification: scatter by rank and check sortedness and permutation
	// validity; the checksum is a positional digest of the ranking.
	sorted := make([]int32, n)
	seen := make([]bool, n)
	ok := true
	for i := 0; i < n; i++ {
		r := rank[i]
		if r < 0 || int(r) >= n || seen[r] {
			ok = false
			break
		}
		seen[r] = true
		sorted[r] = keys[i]
	}
	if ok {
		for i := 1; i < n; i++ {
			if sorted[i-1] > sorted[i] {
				ok = false
				break
			}
		}
	}
	var digest float64
	for i := 0; i < n; i += 997 {
		digest += float64(rank[i]) * float64(i%131+1)
	}
	return Result{
		Name:     "IS",
		Class:    "",
		Threads:  threads,
		Verified: ok,
		Checksum: digest,
		Detail:   fmt.Sprintf("n=%d maxKey=%d iterations=%d", n, maxKey, p.Iterations),
	}
}
