package npb

import (
	"fmt"
	"math"

	"xeonomp/internal/omp"
)

// CGParams sizes the CG kernel: a sparse symmetric positive-definite system
// of order NA with about NonZer off-diagonal entries per row, NIter outer
// power-method iterations, and the eigenvalue shift.
type CGParams struct {
	NA     int
	NonZer int
	NIter  int
	Shift  float64
}

// CGClass returns the NPB size for the class.
func CGClass(c Class) (CGParams, error) {
	switch c {
	case ClassT:
		return CGParams{NA: 512, NonZer: 5, NIter: 4, Shift: 10}, nil
	case ClassS:
		return CGParams{NA: 1400, NonZer: 7, NIter: 15, Shift: 10}, nil
	case ClassW:
		return CGParams{NA: 7000, NonZer: 8, NIter: 15, Shift: 12}, nil
	case ClassA:
		return CGParams{NA: 14000, NonZer: 11, NIter: 15, Shift: 20}, nil
	case ClassB:
		return CGParams{NA: 75000, NonZer: 13, NIter: 75, Shift: 60}, nil
	}
	return CGParams{}, fmt.Errorf("npb: cg has no class %q", c)
}

// csr is a compressed-sparse-row matrix.
type csr struct {
	n      int
	rowPtr []int32
	col    []int32
	val    []float64
}

// makeSPD builds a deterministic sparse symmetric strictly diagonally
// dominant (hence positive-definite) matrix in the spirit of NPB's makea:
// random off-diagonal pattern and values from the randlc stream,
// symmetrized, with the diagonal set above the absolute row sum.
func makeSPD(n, nonzer int) *csr {
	type entry struct {
		col int32
		val float64
	}
	rows := make([][]entry, n)
	seed := DefaultSeed
	for i := 0; i < n; i++ {
		for k := 0; k < nonzer; k++ {
			j := int(Randlc(&seed, A) * float64(n))
			if j >= n {
				j = n - 1
			}
			if j == i {
				continue
			}
			v := Randlc(&seed, A) - 0.5
			rows[i] = append(rows[i], entry{int32(j), v})
			rows[j] = append(rows[j], entry{int32(i), v})
		}
	}
	m := &csr{n: n, rowPtr: make([]int32, n+1)}
	for i := 0; i < n; i++ {
		// Diagonal dominance: diag = |row sum| + 1.
		var sum float64
		for _, e := range rows[i] {
			sum += math.Abs(e.val)
		}
		// Insertion sort by column for deterministic CSR layout.
		es := rows[i]
		for a := 1; a < len(es); a++ {
			for b := a; b > 0 && es[b].col < es[b-1].col; b-- {
				es[b], es[b-1] = es[b-1], es[b]
			}
		}
		m.col = append(m.col, int32(i))
		m.val = append(m.val, sum+1)
		for _, e := range es {
			m.col = append(m.col, e.col)
			m.val = append(m.val, e.val)
		}
		m.rowPtr[i+1] = int32(len(m.col))
	}
	return m
}

// spmv computes y = A x over rows [lo, hi).
func (m *csr) spmv(x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.val[k] * x[m.col[k]]
		}
		y[i] = s
	}
}

// CGOutput is the CG signature.
type CGOutput struct {
	Zeta   float64
	RNorm  float64
	RNorms []float64 // final inner-solve residual per outer iteration
}

// RunCG executes the CG benchmark: NIter outer iterations of the shifted
// inverse power method, each solving A z = x with 25 steps of conjugate
// gradient, exactly the NPB structure. All vector operations and the SpMV
// are parallelized over the team with static row partitions.
func RunCG(p CGParams, threads int) (Result, CGOutput) {
	mtx := makeSPD(p.NA, p.NonZer)
	n := p.NA

	x := make([]float64, n)
	z := make([]float64, n)
	r := make([]float64, n)
	pp := make([]float64, n)
	q := make([]float64, n)
	for i := range x {
		x[i] = 1
	}

	team := omp.NewTeam(threads)
	redA := omp.NewReduceFloat64()
	redB := omp.NewReduceFloat64()
	sum := func(a, b float64) float64 { return a + b }

	const cgitmax = 25
	var out CGOutput
	var zeta float64

	for it := 0; it < p.NIter; it++ {
		var rho float64
		// Inner CG solve: z ~ A^-1 x.
		team.Parallel(func(c *omp.Context) {
			lo, hi := c.For(0, n)
			var local float64
			for i := lo; i < hi; i++ {
				z[i] = 0
				r[i] = x[i]
				pp[i] = x[i]
				local += r[i] * r[i]
			}
			rho0 := redA.Combine(c, local, sum)

			for cgit := 0; cgit < cgitmax; cgit++ {
				mtx.spmv(pp, q, lo, hi)
				var d float64
				for i := lo; i < hi; i++ {
					d += pp[i] * q[i]
				}
				dSum := redB.Combine(c, d, sum)
				alpha := rho0 / dSum
				var rr float64
				for i := lo; i < hi; i++ {
					z[i] += alpha * pp[i]
					r[i] -= alpha * q[i]
					rr += r[i] * r[i]
				}
				rho1 := redA.Combine(c, rr, sum)
				beta := rho1 / rho0
				rho0 = rho1
				for i := lo; i < hi; i++ {
					pp[i] = r[i] + beta*pp[i]
				}
				c.Barrier()
			}
			c.Master(func() { rho = rho0 })
			c.Barrier()
		})

		// zeta and normalization (NPB does this serially between solves).
		var xz, zz float64
		for i := 0; i < n; i++ {
			xz += x[i] * z[i]
			zz += z[i] * z[i]
		}
		zeta = p.Shift + 1/xz
		norm := 1 / math.Sqrt(zz)
		for i := 0; i < n; i++ {
			x[i] = z[i] * norm
		}
		out.RNorms = append(out.RNorms, math.Sqrt(rho))
	}

	out.Zeta = zeta
	out.RNorm = out.RNorms[len(out.RNorms)-1]

	// Invariants: zeta finite and near the shift (the matrix is strongly
	// diagonally dominant, so the smallest eigenvalue of A is near its
	// diagonal scale and 1/xz stays O(1)), and the inner solves converge.
	ok := !math.IsNaN(zeta) && !math.IsInf(zeta, 0) && out.RNorm < 1e-6
	return Result{
		Name:     "CG",
		Threads:  threads,
		Verified: ok,
		Checksum: zeta,
		Detail:   fmt.Sprintf("zeta=%.12f final inner residual=%.3e", zeta, out.RNorm),
	}, out
}
