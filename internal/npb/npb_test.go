package npb

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
	"time"
)

func TestRandlcRange(t *testing.T) {
	seed := DefaultSeed
	for i := 0; i < 10000; i++ {
		v := Randlc(&seed, A)
		if v <= 0 || v >= 1 {
			t.Fatalf("randlc out of (0,1): %v at step %d", v, i)
		}
	}
}

func TestRandlcDeterministic(t *testing.T) {
	s1, s2 := DefaultSeed, DefaultSeed
	for i := 0; i < 1000; i++ {
		if Randlc(&s1, A) != Randlc(&s2, A) {
			t.Fatal("randlc not deterministic")
		}
	}
}

func TestRandlcMean(t *testing.T) {
	seed := DefaultSeed
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += Randlc(&seed, A)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("randlc mean %v, want ~0.5", mean)
	}
}

func TestSeedAtMatchesStepping(t *testing.T) {
	for _, k := range []int64{0, 1, 2, 3, 17, 64, 1000, 65536} {
		want := DefaultSeed
		for i := int64(0); i < k; i++ {
			Randlc(&want, A)
		}
		got := SeedAt(DefaultSeed, A, k)
		if got != want {
			t.Fatalf("SeedAt(%d) = %v, stepping gives %v", k, got, want)
		}
	}
}

func TestSeedAtProperty(t *testing.T) {
	f := func(k uint16) bool {
		want := DefaultSeed
		for i := 0; i < int(k); i++ {
			Randlc(&want, A)
		}
		return SeedAt(DefaultSeed, A, int64(k)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// threadCounts are the team sizes exercised for serial/parallel equality.
var threadCounts = []int{1, 2, 3, 4, 8}

func TestEPVerifiesAndMatchesSerial(t *testing.T) {
	p, err := EPClass(ClassT)
	if err != nil {
		t.Fatal(err)
	}
	ref, refOut := RunEP(p, 1)
	if !ref.Verified {
		t.Fatalf("serial EP failed verification: %s", ref.Detail)
	}
	for _, n := range threadCounts[1:] {
		r, out := RunEP(p, n)
		if !r.Verified {
			t.Errorf("EP threads=%d failed verification: %s", n, r.Detail)
		}
		if out.Pairs != refOut.Pairs || out.Q != refOut.Q {
			t.Errorf("EP threads=%d counts diverge from serial: %+v vs %+v", n, out, refOut)
		}
		// Sums may differ in association order only (NPB verifies EP with
		// a relative epsilon for the same reason).
		if !almostEqual(out.SX, refOut.SX, 1e-12) || !almostEqual(out.SY, refOut.SY, 1e-12) {
			t.Errorf("EP threads=%d sums diverge beyond tolerance: %+v vs %+v", n, out, refOut)
		}
	}
}

func TestEPAnnulusCounts(t *testing.T) {
	p, _ := EPClass(ClassT)
	_, out := RunEP(p, 2)
	var qsum float64
	for i, q := range out.Q {
		if q < 0 {
			t.Fatalf("negative annulus count q[%d]=%v", i, q)
		}
		qsum += q
	}
	if qsum != float64(out.Pairs) {
		t.Fatalf("annulus counts %v do not sum to accepted pairs %d", qsum, out.Pairs)
	}
	// The low annuli must dominate for Gaussian deviates.
	if out.Q[0] < out.Q[2] {
		t.Fatalf("annulus histogram not decreasing: %v", out.Q)
	}
}

func TestISVerifiesAndMatchesSerial(t *testing.T) {
	p, err := ISClass(ClassT)
	if err != nil {
		t.Fatal(err)
	}
	ref := RunIS(p, 1)
	if !ref.Verified {
		t.Fatalf("serial IS failed verification: %s", ref.Detail)
	}
	for _, n := range threadCounts[1:] {
		r := RunIS(p, n)
		if !r.Verified {
			t.Errorf("IS threads=%d failed verification: %s", n, r.Detail)
		}
		if r.Checksum != ref.Checksum {
			t.Errorf("IS threads=%d digest %v != serial %v", n, r.Checksum, ref.Checksum)
		}
	}
}

func TestCGVerifiesAndMatchesSerial(t *testing.T) {
	p, err := CGClass(ClassT)
	if err != nil {
		t.Fatal(err)
	}
	ref, refOut := RunCG(p, 1)
	if !ref.Verified {
		t.Fatalf("serial CG failed verification: %s", ref.Detail)
	}
	for _, n := range threadCounts[1:] {
		r, out := RunCG(p, n)
		if !r.Verified {
			t.Errorf("CG threads=%d failed verification: %s", n, r.Detail)
		}
		if !almostEqual(out.Zeta, refOut.Zeta, 1e-10) {
			t.Errorf("CG threads=%d zeta %v != serial %v", n, out.Zeta, refOut.Zeta)
		}
	}
}

func TestCGInnerResidualConverges(t *testing.T) {
	p, _ := CGClass(ClassT)
	_, out := RunCG(p, 2)
	for i, rn := range out.RNorms {
		if rn > 1e-6 {
			t.Fatalf("outer iteration %d inner residual %v did not converge", i, rn)
		}
	}
}

func TestMGVerifiesAndMatchesSerial(t *testing.T) {
	p, err := MGClass(ClassT)
	if err != nil {
		t.Fatal(err)
	}
	ref, refOut := RunMG(p, 1)
	if !ref.Verified {
		t.Fatalf("serial MG failed verification: %s", ref.Detail)
	}
	for _, n := range threadCounts[1:] {
		r, out := RunMG(p, n)
		if !r.Verified {
			t.Errorf("MG threads=%d failed verification: %s", n, r.Detail)
		}
		if !almostEqual(out.RNorm, refOut.RNorm, 1e-9) {
			t.Errorf("MG threads=%d rnorm %v != serial %v", n, out.RNorm, refOut.RNorm)
		}
	}
}

func TestMGResidualDecreasesEachCycle(t *testing.T) {
	p, _ := MGClass(ClassT)
	_, out := RunMG(p, 2)
	for i := 1; i < len(out.RNorms); i++ {
		if out.RNorms[i] >= out.RNorms[i-1] {
			t.Fatalf("V-cycle %d did not reduce the residual: %v", i, out.RNorms)
		}
	}
}

func TestFFT1RoundTrip(t *testing.T) {
	f := func(seed uint32) bool {
		n := 64
		x := make([]complex128, n)
		s := float64(seed%100000) + 1
		for i := range x {
			x[i] = complex(Randlc(&s, A)-0.5, Randlc(&s, A)-0.5)
		}
		orig := append([]complex128(nil), x...)
		fft1(x, -1)
		fft1(x, +1)
		for i := range x {
			if cmplx.Abs(x[i]/complex(float64(n), 0)-orig[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFFT1Parseval(t *testing.T) {
	n := 128
	x := make([]complex128, n)
	s := DefaultSeed
	var timeEnergy float64
	for i := range x {
		x[i] = complex(Randlc(&s, A)-0.5, Randlc(&s, A)-0.5)
		timeEnergy += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
	}
	fft1(x, -1)
	var freqEnergy float64
	for i := range x {
		freqEnergy += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
	}
	if !almostEqual(freqEnergy, timeEnergy*float64(n), 1e-10) {
		t.Fatalf("Parseval violated: %v vs %v", freqEnergy, timeEnergy*float64(n))
	}
}

func TestFTVerifiesAndMatchesSerial(t *testing.T) {
	p, err := FTClass(ClassT)
	if err != nil {
		t.Fatal(err)
	}
	ref, refOut := RunFT(p, 1)
	if !ref.Verified {
		t.Fatalf("serial FT failed verification: %s", ref.Detail)
	}
	for _, n := range threadCounts[1:] {
		r, out := RunFT(p, n)
		if !r.Verified {
			t.Errorf("FT threads=%d failed verification: %s", n, r.Detail)
		}
		for i := range refOut.Checksums {
			if cmplx.Abs(out.Checksums[i]-refOut.Checksums[i]) > 1e-9 {
				t.Errorf("FT threads=%d checksum %d diverges: %v vs %v",
					n, i, out.Checksums[i], refOut.Checksums[i])
			}
		}
	}
}

func TestPentaSolveAgainstDense(t *testing.T) {
	// Verify the banded elimination against a brute-force dense solve.
	n := 12
	const sigma = appSigma
	const tau = appSigma / 12
	d := 1 + 2*sigma + 6*tau
	cc := -sigma - 4*tau
	e := tau
	dense := make([][]float64, n)
	for i := range dense {
		dense[i] = make([]float64, n)
		dense[i][i] = d
		if i+1 < n {
			dense[i][i+1] = cc
		}
		if i-1 >= 0 {
			dense[i][i-1] = cc
		}
		if i+2 < n {
			dense[i][i+2] = e
		}
		if i-2 >= 0 {
			dense[i][i-2] = e
		}
	}
	rhs := make([]float64, n)
	s := DefaultSeed
	for i := range rhs {
		rhs[i] = Randlc(&s, A) - 0.5
	}
	x := append([]float64(nil), rhs...)
	pentaSolve(x, make([]float64, 2*n))
	// Check A x = rhs.
	for i := 0; i < n; i++ {
		var got float64
		for j := 0; j < n; j++ {
			got += dense[i][j] * x[j]
		}
		if math.Abs(got-rhs[i]) > 1e-10 {
			t.Fatalf("penta solve row %d: A x = %v, want %v", i, got, rhs[i])
		}
	}
}

func TestInvert5(t *testing.T) {
	m := appCoupling
	inv := invert5(&m)
	for i := 0; i < appComps; i++ {
		for j := 0; j < appComps; j++ {
			var s float64
			for k := 0; k < appComps; k++ {
				s += m[i][k] * inv[k][j]
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(s-want) > 1e-12 {
				t.Fatalf("invert5: (M * inv)[%d][%d] = %v", i, j, s)
			}
		}
	}
}

func TestPseudoAppsVerifyAndMatchSerial(t *testing.T) {
	p, err := AppClass(ClassT)
	if err != nil {
		t.Fatal(err)
	}
	type runner func(AppParams, int) (Result, AppOutput)
	for _, bench := range []struct {
		name string
		run  runner
	}{
		{"BT", RunBT},
		{"SP", RunSP},
		{"LU", RunLU},
	} {
		ref, refOut := bench.run(p, 1)
		if !ref.Verified {
			t.Fatalf("serial %s failed verification: %s", bench.name, ref.Detail)
		}
		for _, n := range []int{2, 4} {
			r, out := bench.run(p, n)
			if !r.Verified {
				t.Errorf("%s threads=%d failed verification: %s", bench.name, n, r.Detail)
			}
			if !almostEqual(out.Final, refOut.Final, 1e-9) {
				t.Errorf("%s threads=%d residual %v != serial %v", bench.name, n, out.Final, refOut.Final)
			}
		}
	}
}

func TestPseudoAppsConvergeToSameSolution(t *testing.T) {
	// All three solvers attack the same system; with enough iterations the
	// residuals must all fall well below the initial norm.
	p, _ := AppClass(ClassT)
	p.NIter = 12
	_, bt := RunBT(p, 2)
	_, sp := RunSP(p, 2)
	_, lu := RunLU(p, 2)
	start := bt.RNorms[0]
	for _, o := range []AppOutput{bt, sp, lu} {
		if o.RNorms[0] != start {
			t.Fatalf("initial residuals differ: %v vs %v", o.RNorms[0], start)
		}
		if o.Final > start*0.2 {
			t.Errorf("solver did not make progress: %v -> %v", start, o.Final)
		}
	}
}

func TestClassTables(t *testing.T) {
	for _, c := range []Class{ClassT, ClassS, ClassW, ClassA, ClassB} {
		if !c.Valid() {
			t.Fatalf("class %q invalid", c)
		}
		if _, err := EPClass(c); err != nil {
			t.Error(err)
		}
		if _, err := ISClass(c); err != nil {
			t.Error(err)
		}
		if _, err := CGClass(c); err != nil {
			t.Error(err)
		}
		if _, err := MGClass(c); err != nil {
			t.Error(err)
		}
		if _, err := FTClass(c); err != nil {
			t.Error(err)
		}
		if _, err := AppClass(c); err != nil {
			t.Error(err)
		}
	}
	if _, err := EPClass(Class("Z")); err == nil {
		t.Error("expected error for unknown class")
	}
}

func TestMopsCounts(t *testing.T) {
	ep, _ := EPClass(ClassS)
	is, _ := ISClass(ClassS)
	cg, _ := CGClass(ClassS)
	mg, _ := MGClass(ClassS)
	ft, _ := FTClass(ClassS)
	app, _ := AppClass(ClassS)
	for name, ops := range map[string]float64{
		"EP": EPOps(ep), "IS": ISOps(is), "CG": CGOps(cg, 10*cg.NA),
		"MG": MGOps(mg), "FT": FTOps(ft), "App": AppOps(app),
	} {
		if ops <= 0 {
			t.Errorf("%s op count %v", name, ops)
		}
	}
	// Bigger classes mean more operations.
	epB, _ := EPClass(ClassB)
	if EPOps(epB) <= EPOps(ep) {
		t.Error("class B EP must cost more than class S")
	}
	if Mops(1e6, time.Second) != 1 {
		t.Error("Mops conversion wrong")
	}
	if Mops(1e6, 0) != 0 {
		t.Error("zero-time Mops should be 0")
	}
}

// TestClassWVerifies runs every kernel at class W with a parallel team and
// checks verification plus serial agreement — the heavyweight functional
// test, skipped in -short mode.
func TestClassWVerifies(t *testing.T) {
	if testing.Short() {
		t.Skip("class W functional study not run in -short mode")
	}
	check := func(name string, serial, parallel Result, tol float64) {
		t.Helper()
		if !serial.Verified {
			t.Errorf("%s class W serial failed: %s", name, serial.Detail)
		}
		if !parallel.Verified {
			t.Errorf("%s class W parallel failed: %s", name, parallel.Detail)
		}
		if !almostEqual(serial.Checksum, parallel.Checksum, tol) {
			t.Errorf("%s class W checksum diverges: %v vs %v", name, serial.Checksum, parallel.Checksum)
		}
	}

	ep, _ := EPClass(ClassW)
	s1, _ := RunEP(ep, 1)
	p1, _ := RunEP(ep, 4)
	check("EP", s1, p1, 1e-12)

	is, _ := ISClass(ClassW)
	check("IS", RunIS(is, 1), RunIS(is, 4), 0)

	cg, _ := CGClass(ClassW)
	s2, _ := RunCG(cg, 1)
	p2, _ := RunCG(cg, 4)
	check("CG", s2, p2, 1e-9)

	mg, _ := MGClass(ClassW)
	s3, _ := RunMG(mg, 1)
	p3, _ := RunMG(mg, 4)
	check("MG", s3, p3, 1e-9)

	ft, _ := FTClass(ClassW)
	s4, _ := RunFT(ft, 1)
	p4, _ := RunFT(ft, 4)
	check("FT", s4, p4, 1e-9)

	app, _ := AppClass(ClassW)
	s5, _ := RunBT(app, 1)
	p5, _ := RunBT(app, 4)
	check("BT", s5, p5, 1e-9)
	s6, _ := RunSP(app, 1)
	p6, _ := RunSP(app, 4)
	check("SP", s6, p6, 1e-9)
	s7, _ := RunLU(app, 1)
	p7, _ := RunLU(app, 4)
	check("LU", s7, p7, 1e-9)
}
