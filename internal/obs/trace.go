package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects completed spans and renders them as Chrome trace_event
// JSON ("X" complete events), loadable in chrome://tracing and Perfetto.
// It is safe for concurrent use; a nil *Tracer (the default — tracing is
// off unless a CLI passed -trace-out) makes StartSpan return a nil Span
// whose methods are no-ops, so instrumentation stays compiled in at no
// cost.
type Tracer struct {
	start  time.Time
	nextID atomic.Uint64

	mu     sync.Mutex
	events []traceEvent
}

// NewTracer returns an empty tracer; its clock zero is now.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now()}
}

// tracer is the process-wide tracer; nil means tracing is off.
var tracer atomic.Pointer[Tracer]

// SetTracer installs (or, with nil, removes) the process-wide tracer
// StartSpan uses.
func SetTracer(t *Tracer) { tracer.Store(t) }

// CurrentTracer returns the installed tracer, or nil when tracing is off.
func CurrentTracer() *Tracer { return tracer.Load() }

// Span is one in-flight operation. Spans form a tree through context:
// StartSpan links the new span to the span already in ctx as its parent.
// A nil *Span (tracing off) accepts every method as a no-op.
type Span struct {
	t      *Tracer
	name   string
	id     uint64
	parent uint64 // 0 = root
	lane   int
	start  time.Time

	mu   sync.Mutex
	args map[string]string
}

type ctxKey int

const (
	ctxKeySpan ctxKey = iota
	ctxKeyLane
)

// WithLane pins the trace track ("tid" in the Chrome JSON) for spans
// started under ctx. Study drivers give each worker goroutine its own
// lane, so concurrent cells render as parallel tracks instead of
// overlapping on one.
func WithLane(ctx context.Context, lane int) context.Context {
	return context.WithValue(ctx, ctxKeyLane, lane)
}

// laneOf returns the lane pinned in ctx, or 0.
func laneOf(ctx context.Context) int {
	if v, ok := ctx.Value(ctxKeyLane).(int); ok {
		return v
	}
	return 0
}

// spanOf returns the span in ctx, or nil.
func spanOf(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKeySpan).(*Span)
	return s
}

// StartSpan begins a span named name under the process tracer, recording
// the span in ctx (so descendants link to it) and any initial key/value
// argument pairs. With tracing off it returns ctx unchanged and a nil
// span: two pointer loads and no allocation.
func StartSpan(ctx context.Context, name string, kv ...string) (context.Context, *Span) {
	t := tracer.Load()
	if t == nil {
		return ctx, nil
	}
	s := &Span{
		t:     t,
		name:  name,
		id:    t.nextID.Add(1),
		lane:  laneOf(ctx),
		start: time.Now(),
	}
	if parent := spanOf(ctx); parent != nil {
		s.parent = parent.id
	}
	if len(kv) > 0 {
		s.args = make(map[string]string, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			s.args[kv[i]] = kv[i+1]
		}
	}
	return context.WithValue(ctx, ctxKeySpan, s), s
}

// SetArg attaches (or overwrites) one key/value argument on the span.
func (s *Span) SetArg(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.args == nil {
		s.args = map[string]string{}
	}
	s.args[k] = v
}

// End completes the span and hands it to the tracer. Calling End twice
// records the span twice; don't.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	args := make(map[string]string, len(s.args)+2)
	for k, v := range s.args {
		args[k] = v
	}
	s.mu.Unlock()
	args["span_id"] = fmt.Sprintf("%d", s.id)
	if s.parent != 0 {
		args["parent_id"] = fmt.Sprintf("%d", s.parent)
	}
	ev := traceEvent{
		Name: s.name,
		Ph:   "X",
		Ts:   float64(s.start.Sub(s.t.start)) / float64(time.Microsecond),
		Dur:  float64(end.Sub(s.start)) / float64(time.Microsecond),
		Pid:  1,
		Tid:  s.lane,
		Args: args,
	}
	s.t.mu.Lock()
	s.t.events = append(s.t.events, ev)
	s.t.mu.Unlock()
}

// traceEvent is one Chrome trace_event entry. Ts and Dur are in
// microseconds, the unit the format specifies.
type traceEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// traceFile is the JSON object format of a Chrome trace.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Len returns the number of completed spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteTrace writes every completed span as Chrome trace_event JSON.
// Events are sorted by start time (then span id), which keeps parent
// events ahead of their children for viewers that rely on file order.
func (t *Tracer) WriteTrace(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	events := make([]traceEvent, len(t.events))
	copy(events, t.events)
	t.mu.Unlock()
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Ts != events[j].Ts {
			return events[i].Ts < events[j].Ts
		}
		return events[i].Args["span_id"] < events[j].Args["span_id"]
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"}); err != nil {
		return fmt.Errorf("obs: encoding trace: %w", err)
	}
	return nil
}
