package obs

// Metric names, one constant per registered series. The counterparity
// analyzer (internal/analysis) requires every Metric* constant here to
// appear at a NewCounter/NewGauge/NewHistogram registration site
// somewhere in the module, so a series can never silently stop being
// collected; the full table with meanings lives in ARCHITECTURE.md
// ("Observability").
const (
	// Run-cache traffic (internal/runcache) — mirrors runcache.Stats so
	// cached CLI reruns can assert hit rates from -metrics-out alone.
	MetricRuncacheMemHits    = "runcache.mem_hits"
	MetricRuncacheDiskHits   = "runcache.disk_hits"
	MetricRuncacheMisses     = "runcache.misses"
	MetricRuncacheEvictions  = "runcache.evictions"
	MetricRuncacheDiskErrors = "runcache.disk_errors"
	MetricRuncacheLookupNs   = "runcache.lookup_ns"

	// Run-journal activity (internal/journal).
	MetricJournalAppends      = "journal.appends"
	MetricJournalAppendNs     = "journal.append_ns"
	MetricJournalReplayed     = "journal.replayed_cells"
	MetricJournalReplayServes = "journal.replay_serves"

	// Cycle-engine throughput (internal/machine) — the raw-speed series
	// PERFORMANCE.md and the BENCH_*.json snapshots are built on.
	// MetricMachineRuns counts Machine.Run invocations (a study cell runs
	// the machine once per trial plus serial baselines).
	// MetricMachineCycles accumulates simulated cycles advanced across
	// all runs, including jumped quiet windows — it measures simulated
	// work, not host work. MetricMachineCyclesPerWs is a gauge of the
	// last run's simulated-cycles-per-wall-second rate, the single best
	// "is the simulator fast right now" number in a -metrics-out
	// snapshot; cmd/benchsnap derives its throughput fields from the
	// counter deltas instead so they aggregate across cells.
	MetricMachineRuns        = "machine.runs"
	MetricMachineCycles      = "machine.cycles_total"
	MetricMachineCyclesPerWs = "machine.cycles_per_wall_second"

	// Machine pool traffic (internal/machine.Pool): builds are cache
	// misses (a full New), reuses are recycled hard-reset machines. A
	// healthy study shows builds ≈ distinct machine configs and
	// everything else reuses; rising builds mean cells stopped sharing
	// pooled machines and the per-cell allocation cost is back.
	MetricMachinePoolBuilds = "machine.pool_builds"
	MetricMachinePoolReuses = "machine.pool_reuses"

	// Experiment engine (internal/core).
	MetricCoreCellsComputed = "core.cells_computed"
	MetricCoreCellsCached   = "core.cells_cached"
	MetricCoreCellNs        = "core.cell_ns"
	MetricCoreWorkers       = "core.workers"
	MetricCoreWorkerUtil    = "core.worker_utilization"

	// In-flight cell dedupe (core.Dedupe): leaders computed a cell,
	// shared counts identical concurrent requests served the leader's
	// result. leaders+misses of the dedupe layer equal unique in-flight
	// cells; shared is simulation work a shared server avoided.
	MetricCoreFlightLeaders = "core.flight_leaders"
	MetricCoreFlightShared  = "core.flight_shared"

	// Experiment server (internal/server): HTTP traffic and latency,
	// study-job lifecycle, and admission-control rejections (the 429s).
	// active_studies is the gauge of study jobs currently running.
	MetricServerRequests        = "server.http_requests"
	MetricServerRequestNs       = "server.http_request_ns"
	MetricServerStudiesAccepted = "server.studies_accepted"
	MetricServerStudiesDone     = "server.studies_done"
	MetricServerStudiesFailed   = "server.studies_failed"
	MetricServerStudiesCanceled = "server.studies_canceled"
	MetricServerRejected        = "server.rejected"
	MetricServerActiveStudies   = "server.active_studies"

	// Sharded execution (internal/shard): cells_sent counts cells
	// dispatched to remote workers (totalled across shards; the per-shard
	// split is the dynamic shard.cells_sent.<i> series), retries counts
	// 429-and-wait rounds against busy workers, failovers counts cells
	// that executed away from their cache-affinity home shard because it
	// was down or unreachable.
	MetricShardCellsSent = "shard.cells_sent"
	MetricShardRetries   = "shard.retries"
	MetricShardFailovers = "shard.failovers"
)
