package obs

// Metric names, one constant per registered series. The counterparity
// analyzer (internal/analysis) requires every Metric* constant here to
// appear at a NewCounter/NewGauge/NewHistogram registration site
// somewhere in the module, so a series can never silently stop being
// collected; the full table with meanings lives in ARCHITECTURE.md
// ("Observability").
const (
	// Run-cache traffic (internal/runcache) — mirrors runcache.Stats so
	// cached CLI reruns can assert hit rates from -metrics-out alone.
	MetricRuncacheMemHits    = "runcache.mem_hits"
	MetricRuncacheDiskHits   = "runcache.disk_hits"
	MetricRuncacheMisses     = "runcache.misses"
	MetricRuncacheEvictions  = "runcache.evictions"
	MetricRuncacheDiskErrors = "runcache.disk_errors"
	MetricRuncacheLookupNs   = "runcache.lookup_ns"

	// Run-journal activity (internal/journal).
	MetricJournalAppends      = "journal.appends"
	MetricJournalAppendNs     = "journal.append_ns"
	MetricJournalReplayed     = "journal.replayed_cells"
	MetricJournalReplayServes = "journal.replay_serves"

	// Cycle-engine throughput (internal/machine).
	MetricMachineRuns        = "machine.runs"
	MetricMachineCycles      = "machine.cycles_total"
	MetricMachineCyclesPerWs = "machine.cycles_per_wall_second"

	// Experiment engine (internal/core).
	MetricCoreCellsComputed = "core.cells_computed"
	MetricCoreCellsCached   = "core.cells_cached"
	MetricCoreCellNs        = "core.cell_ns"
	MetricCoreWorkers       = "core.workers"
	MetricCoreWorkerUtil    = "core.worker_utilization"
)
