package obs

import (
	"context"
	"runtime/pprof"
)

// DoCell runs f with pprof labels attributing the goroutine's CPU samples
// to one simulation cell, so a -cpuprofile capture can be sliced by
// benchmark and configuration (go tool pprof -tagfocus / Flame graph
// grouping). Labels propagate to goroutines started inside f.
//
// Labels are set unconditionally: they cost one small allocation per cell
// — invisible next to the millions of simulated cycles behind it — and
// keeping them on means any externally attached profiler sees attributed
// samples without a restart.
func DoCell(ctx context.Context, benchmark, config string, f func(context.Context)) {
	pprof.Do(ctx, pprof.Labels("benchmark", benchmark, "config", config), f)
}
