// Package obs is the self-measurement layer of the reproduction: the same
// discipline the paper applies to the simulated Xeon (VTune counters over
// every run, §4) applied to the simulator itself. It is zero-dependency —
// stdlib only — and cheap enough to leave compiled in everywhere.
//
// Three instruments share the package:
//
//   - a process-wide metric Registry of counters, gauges, and histograms
//     with fixed log2 buckets, snapshotted as diff-stable JSON
//     (cmd flags -metrics-out, Makefile `make profile`);
//   - lightweight span tracing — start/end pairs with parent links,
//     goroutine-safe, emitted as Chrome trace_event JSON loadable in
//     chrome://tracing and Perfetto (cmd flag -trace-out);
//   - pprof label plumbing, so CPU profiles attribute samples to the
//     (benchmark, configuration) cell being simulated.
//
// Every metric series is named by a Metric* constant in names.go; the
// counterparity analyzer (internal/analysis) verifies each constant has a
// registration site, so a renamed metric can never silently stop being
// collected.
//
// obs is the only simulation-adjacent package allowed to read the wall
// clock (see the taint analyzer's allowlist): instrumented packages take
// timestamps through StartTimer/Span, and those values flow only into the
// registry and tracer, never into golden artifacts, journals, or the run
// cache. Simulated time stays deterministic; obs measures real time.
package obs

import "time"

// Timer is an opaque wall-clock timestamp handed out to instrumented
// packages, which are themselves forbidden from reading the clock. The
// zero Timer reports zero elapsed time.
type Timer struct {
	start time.Time
}

// StartTimer reads the wall clock. Pair it with Histogram.ObserveSince or
// ElapsedNs.
func StartTimer() Timer { return Timer{start: time.Now()} }

// ElapsedNs returns wall nanoseconds since the timer started, never
// negative; zero for the zero Timer.
func (t Timer) ElapsedNs() int64 {
	if t.start.IsZero() {
		return 0
	}
	d := time.Since(t.start)
	if d < 0 {
		return 0
	}
	return int64(d)
}

// Rate returns n per wall second since the timer started, or 0 when no
// measurable time has elapsed — the machine layer's cycles-per-wall-second
// gauge. The quotient is computed here so instrumented packages never
// handle raw wall-clock durations.
func (t Timer) Rate(n int64) float64 {
	ns := t.ElapsedNs()
	if ns <= 0 {
		return 0
	}
	return float64(n) / (time.Duration(ns)).Seconds()
}

// Utilization returns busyNs / (workers x elapsed wall ns) — the fraction
// of the worker pool's capacity spent inside jobs since the timer started.
// Like Rate, the quotient lives here so callers never divide durations.
func (t Timer) Utilization(busyNs int64, workers int) float64 {
	ns := t.ElapsedNs()
	if ns <= 0 || workers <= 0 || busyNs <= 0 {
		return 0
	}
	return float64(busyNs) / (float64(ns) * float64(workers))
}
