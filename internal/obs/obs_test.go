package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"runtime/pprof"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("g")
	if g.Value() != 0 {
		t.Fatalf("unset gauge = %v, want 0", g.Value())
	}
	g.Set(0.75)
	g.Set(1.5)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want last write 1.5", g.Value())
	}
}

// Bucket i holds exactly the positive values with bit length i, so each
// power of two starts a new bucket and its upper bound is 2^i - 1.
func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	for _, v := range []int64{-3, 0, 1, 2, 3, 4, 7, 8, 1023} {
		h.Observe(v)
	}
	if h.Count() != 9 {
		t.Fatalf("count = %d, want 9", h.Count())
	}
	if h.Sum() != -3+0+1+2+3+4+7+8+1023 {
		t.Fatalf("sum = %d", h.Sum())
	}
	snap := r.Snapshot().Histograms["h"]
	want := []HistogramBucket{
		{UpperBound: 0, N: 2},    // -3, 0
		{UpperBound: 1, N: 1},    // 1
		{UpperBound: 3, N: 2},    // 2, 3
		{UpperBound: 7, N: 2},    // 4, 7
		{UpperBound: 15, N: 1},   // 8
		{UpperBound: 1023, N: 1}, // 1023
	}
	if len(snap.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", snap.Buckets, want)
	}
	for i, b := range snap.Buckets {
		if b != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, b, want[i])
		}
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("re-registering a counter returned a new instance")
	}
	if r.Gauge("y") != r.Gauge("y") {
		t.Fatal("re-registering a gauge returned a new instance")
	}
	if r.Histogram("z") != r.Histogram("z") {
		t.Fatal("re-registering a histogram returned a new instance")
	}
}

func TestRegistryKindMixingPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("name")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("name")
}

// Two registries populated in opposite orders with equal state must
// marshal byte-identically: the diff-stable property -metrics-out
// promises.
func TestSnapshotJSONDeterministic(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	names := []string{"z.last", "a.first", "m.mid"}
	for _, n := range names {
		a.Counter(n).Add(7)
	}
	for i := len(names) - 1; i >= 0; i-- {
		b.Counter(names[i]).Add(7)
	}
	a.Gauge("util").Set(0.5)
	b.Gauge("util").Set(0.5)
	a.Histogram("lat").Observe(100)
	b.Histogram("lat").Observe(100)

	var ab, bb bytes.Buffer
	if err := a.WriteJSON(&ab); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Fatalf("registration order changed the snapshot:\n%s\nvs\n%s", ab.String(), bb.String())
	}
	var parsed Snapshot
	if err := json.Unmarshal(ab.Bytes(), &parsed); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if parsed.Counters["a.first"] != 7 || parsed.Gauges["util"] != 0.5 {
		t.Fatalf("round-tripped snapshot lost values: %+v", parsed)
	}
}

func TestResetKeepsInstrumentsLive(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	c.Add(3)
	h.Observe(9)
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("reset left state: counter %d, hist count %d sum %d", c.Value(), h.Count(), h.Sum())
	}
	c.Inc() // the pre-reset pointer still feeds the registry
	if r.Snapshot().Counters["c"] != 1 {
		t.Fatal("pre-reset instrument pointer detached from registry")
	}
}

func TestTimerEdgeCases(t *testing.T) {
	var zero Timer
	if zero.ElapsedNs() != 0 {
		t.Fatalf("zero timer elapsed = %d, want 0", zero.ElapsedNs())
	}
	if zero.Rate(100) != 0 {
		t.Fatalf("rate on zero timer = %v, want 0", zero.Rate(100))
	}
	if zero.Utilization(100, 2) != 0 {
		t.Fatalf("utilization on zero timer = %v, want 0", zero.Utilization(100, 2))
	}
	tm := StartTimer()
	if tm.ElapsedNs() < 0 {
		t.Fatal("running timer went backwards")
	}
	if tm.Utilization(0, 4) != 0 || tm.Utilization(100, 0) != 0 {
		t.Fatal("degenerate utilization inputs must yield 0")
	}
}

func TestNilTracerIsInert(t *testing.T) {
	SetTracer(nil)
	ctx := context.Background()
	got, sp := StartSpan(ctx, "noop")
	if got != ctx {
		t.Fatal("tracing off must return ctx unchanged")
	}
	if sp != nil {
		t.Fatal("tracing off must return a nil span")
	}
	sp.SetArg("k", "v") // must not panic
	sp.End()
	var nilTracer *Tracer
	if nilTracer.Len() != 0 {
		t.Fatal("nil tracer has spans")
	}
	var buf bytes.Buffer
	if err := nilTracer.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil tracer wrote %q", buf.String())
	}
}

// Concurrent workers emitting nested spans on distinct lanes must produce
// one valid Chrome trace: every span present, ids unique, children linked
// to their parents, lanes preserved as tids, events sorted by timestamp.
func TestConcurrentSpanEmission(t *testing.T) {
	tr := NewTracer()
	SetTracer(tr)
	t.Cleanup(func() { SetTracer(nil) })

	const workers, spansPer = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			ctx := WithLane(context.Background(), lane)
			for i := 0; i < spansPer; i++ {
				pctx, parent := StartSpan(ctx, "outer", "lane", fmt.Sprint(lane))
				_, child := StartSpan(pctx, "inner")
				child.End()
				parent.End()
			}
		}(w + 1)
	}
	wg.Wait()

	if tr.Len() != workers*spansPer*2 {
		t.Fatalf("tracer holds %d spans, want %d", tr.Len(), workers*spansPer*2)
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", tf.DisplayTimeUnit)
	}
	ids := map[string]bool{}
	byID := map[string]int{} // span_id -> tid, for parent linking
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "X" || ev.Pid != 1 {
			t.Fatalf("event %+v is not a pid-1 complete event", ev)
		}
		if ev.Tid < 1 || ev.Tid > workers {
			t.Fatalf("event on lane %d, want 1..%d", ev.Tid, workers)
		}
		id := ev.Args["span_id"]
		if id == "" || ids[id] {
			t.Fatalf("missing or duplicate span_id %q", id)
		}
		ids[id] = true
		byID[id] = ev.Tid
	}
	linked := 0
	for _, ev := range tf.TraceEvents {
		if ev.Name != "inner" {
			continue
		}
		parent := ev.Args["parent_id"]
		if parent == "" {
			t.Fatal("inner span has no parent_id")
		}
		if byID[parent] != ev.Tid {
			t.Fatalf("child on lane %d, parent %q on lane %d", ev.Tid, parent, byID[parent])
		}
		linked++
	}
	if linked != workers*spansPer {
		t.Fatalf("%d linked children, want %d", linked, workers*spansPer)
	}
	for i := 1; i < len(tf.TraceEvents); i++ {
		if tf.TraceEvents[i].Ts < tf.TraceEvents[i-1].Ts {
			t.Fatal("trace events are not sorted by start time")
		}
	}
}

// DoCell must run f under the benchmark/configuration pprof labels so
// samples group by grid cell in profiles.
func TestDoCellAppliesLabels(t *testing.T) {
	var bench, config string
	DoCell(context.Background(), "CG", "CMT-8-2", func(ctx context.Context) {
		bench, _ = pprof.Label(ctx, "benchmark")
		config, _ = pprof.Label(ctx, "config")
	})
	if bench != "CG" || config != "CMT-8-2" {
		t.Fatalf("labels = %q/%q, want CG/CMT-8-2", bench, config)
	}
}
