package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. All methods are
// atomic; the zero value is usable but unregistered.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a last-write-wins float64 level (worker utilization, cycles
// per wall second). All methods are atomic.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value (0 before any Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets is the fixed bucket count of every histogram: bucket i
// counts observations v with 2^(i-1) < v <= 2^i-ish — precisely, values
// whose bit length is i — plus bucket 0 for v <= 0. 64 log2 buckets cover
// the full int64 range (1 ns to ~292 years when observing nanoseconds),
// so histograms never need configuration and snapshots never need
// rebucketing to compare.
const histBuckets = 65

// Histogram counts int64 observations in fixed log2 buckets and tracks
// their sum and count. All methods are atomic; observation never
// allocates.
type Histogram struct {
	count  atomic.Uint64
	sum    atomic.Int64
	bucket [histBuckets]atomic.Uint64
}

// bucketOf returns the bucket index of v: 0 for v <= 0, else bit length
// (so 1 -> 1, 2..3 -> 2, 4..7 -> 3, ...).
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketUpperBound returns the inclusive upper bound of bucket i: 0 for
// bucket 0, else 2^i - 1.
func BucketUpperBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxInt64
	}
	return int64(1)<<i - 1
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.bucket[bucketOf(v)].Add(1)
}

// ObserveSince records the wall nanoseconds elapsed since t — the latency
// idiom: t := obs.StartTimer(); defer hist.ObserveSince(t).
func (h *Histogram) ObserveSince(t Timer) { h.Observe(t.ElapsedNs()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Registry holds the process's metric families by name. Registration is
// idempotent — re-registering a name returns the existing instrument — so
// package-level instrument variables stay valid across registry Resets
// and repeated test runs. A name registers as exactly one kind; mixing
// kinds panics, because it is a programming error the counterparity
// analyzer should have caught.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Default is the process-wide registry every instrumented package
// registers into and the -metrics-out flag snapshots.
var Default = NewRegistry()

func (r *Registry) checkFree(name, kind string) {
	if _, ok := r.counters[name]; ok && kind != "counter" {
		panic(fmt.Sprintf("obs: %s already registered as a counter", name))
	}
	if _, ok := r.gauges[name]; ok && kind != "gauge" {
		panic(fmt.Sprintf("obs: %s already registered as a gauge", name))
	}
	if _, ok := r.hists[name]; ok && kind != "histogram" {
		panic(fmt.Sprintf("obs: %s already registered as a histogram", name))
	}
}

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFree(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFree(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.checkFree(name, "histogram")
	h := &Histogram{}
	r.hists[name] = h
	return h
}

// NewCounter registers (or retrieves) a counter in the Default registry.
// This is the registration site the counterparity analyzer looks for.
func NewCounter(name string) *Counter { return Default.Counter(name) }

// NewGauge registers (or retrieves) a gauge in the Default registry.
func NewGauge(name string) *Gauge { return Default.Gauge(name) }

// NewHistogram registers (or retrieves) a histogram in the Default
// registry.
func NewHistogram(name string) *Histogram { return Default.Histogram(name) }

// Reset zeroes every registered instrument without unregistering it, so
// package-level instrument pointers stay live. Tests use it to measure
// deltas against the process-wide Default registry.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.hists {
		h.count.Store(0)
		h.sum.Store(0)
		for i := range h.bucket {
			h.bucket[i].Store(0)
		}
	}
}

// HistogramBucket is one populated bucket of a histogram snapshot.
type HistogramBucket struct {
	// UpperBound is the bucket's inclusive upper bound (0, 1, 3, 7, 15,
	// ... 2^i-1): the fixed log2 scale.
	UpperBound int64 `json:"le"`
	// N is the number of observations that landed in this bucket.
	N uint64 `json:"n"`
}

// HistogramSnapshot is the serializable state of one histogram; only
// populated buckets appear, in ascending bound order.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     int64             `json:"sum"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a registry. Map keys serialize in
// sorted order (encoding/json sorts map keys), so two snapshots of equal
// state marshal byte-identically regardless of registration order — the
// diff-stable property -metrics-out relies on.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
			// Ascending bucket index is ascending upper bound, so the
			// slice is born sorted.
			for i := range h.bucket {
				if n := h.bucket[i].Load(); n > 0 {
					hs.Buckets = append(hs.Buckets, HistogramBucket{UpperBound: BucketUpperBound(i), N: n})
				}
			}
			s.Histograms[name] = hs
		}
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON with sorted
// keys — the -metrics-out payload.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Snapshot()); err != nil {
		return fmt.Errorf("obs: encoding metrics snapshot: %w", err)
	}
	return nil
}
