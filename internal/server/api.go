package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"xeonomp/internal/counters"
	"xeonomp/internal/sched"
)

// This file is the wire schema of the experiment server: the JSON bodies
// cmd/xeond serves, cmd/xeonctl submits, and the tests pin. Everything
// here is plain data — the daemon and the client share these types, so
// the two cannot drift apart.

// StudyRequest is the POST /api/v1/study body: one named study of the
// paper plus the result-affecting knobs of core.Options. Zero values
// select the defaults noted per field, so `{"study":"single"}` is a
// complete full-scale request.
type StudyRequest struct {
	// Study is the short study name: "single", "pair" or "cross"
	// (core.StudyNames).
	Study string `json:"study"`
	// Scale multiplies every benchmark's instruction budget; 0 selects
	// 1.0, the paper's full workload. Servers cap it at their -max-scale.
	Scale float64 `json:"scale,omitempty"`
	// Seed is the trial seed; 0 selects 1, the golden artifacts' seed.
	Seed uint64 `json:"seed,omitempty"`
	// Policy is the thread-placement policy: "alternate" (default),
	// "block", "round-robin" or "symbiotic".
	Policy string `json:"policy,omitempty"`
}

// normalized returns the request with defaults filled in, the form the
// server hashes, budgets, and executes.
func (r StudyRequest) normalized() StudyRequest {
	if r.Scale == 0 {
		r.Scale = 1.0
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Policy == "" {
		r.Policy = "alternate"
	}
	return r
}

// hash returns the content address of the normalized request — the
// identity the server keys study journals by, so an interrupted study
// resumes when the same request is submitted again.
func (r StudyRequest) hash() (string, error) {
	b, err := json.Marshal(r.normalized())
	if err != nil {
		return "", fmt.Errorf("server: hashing study request: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8]), nil
}

// Job states reported in StudyStatus.State and terminal progress events.
const (
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// StudyStatus is the GET /api/v1/study/{id} body (and the 202 response
// to a submission). Artifacts lists the golden artifact names available
// under /api/v1/study/{id}/artifacts/{name} once the job is done; each
// of those responses is byte-identical to the file a local
// `xeonchar -export-json` run writes for the same study and options.
type StudyStatus struct {
	ID          string   `json:"id"`
	Study       string   `json:"study"`
	State       string   `json:"state"`
	Cells       int      `json:"cells"`
	DoneCells   int      `json:"done_cells"`
	CachedCells int      `json:"cached_cells"`
	Error       string   `json:"error,omitempty"`
	Artifacts   []string `json:"artifacts,omitempty"`
}

// Event is one line of the /progress/{id} stream (newline-delimited
// JSON): a completed cell, or — when State is set — the job's terminal
// event. Seq makes gaps visible to clients that reconnect.
type Event struct {
	Seq    int    `json:"seq"`
	Cell   string `json:"cell,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	Done   int    `json:"done"`
	Total  int    `json:"total"`
	State  string `json:"state,omitempty"`
	Error  string `json:"error,omitempty"`
}

// CellRequest is the POST /api/v1/cell body: one simulation cell,
// executed synchronously. Benchmarks holds one program (single-program
// cell) or two (a co-scheduled pair, the paper's multi-program
// methodology). Defaults mirror StudyRequest.
type CellRequest struct {
	Benchmarks []string `json:"benchmarks"`
	Config     string   `json:"config"`
	Scale      float64  `json:"scale,omitempty"`
	Seed       uint64   `json:"seed,omitempty"`
	Policy     string   `json:"policy,omitempty"`
}

// CellProgram is one program's outcome within a CellResponse.
type CellProgram struct {
	Benchmark string           `json:"benchmark"`
	Threads   int              `json:"threads"`
	Cycles    int64            `json:"cycles"`
	Metrics   counters.Metrics `json:"metrics"`
}

// CellResponse is the POST /api/v1/cell response. Cached reports whether
// the cell was served from the shared run cache, journal, or an
// identical in-flight computation rather than simulated for this call.
type CellResponse struct {
	Cached     bool          `json:"cached"`
	WallCycles int64         `json:"wall_cycles"`
	Programs   []CellProgram `json:"programs"`
}

// ErrorResponse is the body of every non-2xx JSON response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// parsePolicy maps the wire policy names onto sched placement policies,
// the same names cmd/xeonchar's -policy flag accepts.
func parsePolicy(s string) (sched.Policy, error) {
	switch s {
	case "", "alternate":
		return sched.Alternate, nil
	case "block":
		return sched.Block, nil
	case "round-robin":
		return sched.RoundRobin, nil
	case "symbiotic":
		return sched.Symbiotic, nil
	}
	return 0, fmt.Errorf("unknown policy %q (have alternate, block, round-robin, symbiotic)", s)
}
