package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xeonomp/internal/api"
	"xeonomp/internal/config"
	"xeonomp/internal/core"
	"xeonomp/internal/journal"
	"xeonomp/internal/runcache"
	"xeonomp/internal/sched"
)

// testScale keeps HTTP-level study runs fast; the byte-identity test
// recomputes its local reference at the same scale, so any value works.
const testScale = 0.02

// newTestServer boots a Server behind httptest and returns the typed
// client for it; both are torn down with the test. Every byte of wire
// traffic in this file goes through api.Client — the server tests are
// also the client's integration tests.
func newTestServer(t *testing.T, cfg Config) (*Server, *api.Client) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Errorf("closing server: %v", err)
		}
	})
	return s, api.NewClient(ts.URL)
}

// followProgress consumes the progress stream until the terminal event
// and returns every event received, in order.
func followProgress(t *testing.T, c *api.Client, id string) []api.Event {
	t.Helper()
	var events []api.Event
	if _, err := c.Follow(context.Background(), id, func(e api.Event) error {
		events = append(events, e)
		return nil
	}); err != nil {
		t.Fatalf("progress stream broke before a terminal event: %v", err)
	}
	return events
}

// metricCounter scrapes one counter from the daemon's metrics snapshot.
func metricCounter(t *testing.T, c *api.Client, name string) float64 {
	t.Helper()
	b, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	var m struct {
		Counters map[string]float64 `json:"counters"`
	}
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("decoding metrics snapshot: %v", err)
	}
	return m.Counters[name]
}

func TestHealthzAndMetrics(t *testing.T) {
	_, c := newTestServer(t, Config{})
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	b, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	var m struct {
		Counters map[string]float64 `json:"counters"`
	}
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("decoding metrics snapshot: %v", err)
	}
	if _, ok := m.Counters["server.http_requests"]; !ok {
		t.Error("metrics snapshot is missing server.http_requests")
	}
}

func TestCellEndpoint(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	resp, err := c.RunCell(ctx, api.CellRequest{Benchmarks: []string{"CG"}, Config: "Serial", Scale: testScale})
	if err != nil {
		t.Fatalf("cell: %v", err)
	}
	if len(resp.Programs) != 1 || resp.Programs[0].Benchmark != "CG" || resp.WallCycles <= 0 {
		t.Fatalf("cell response malformed: %+v", resp)
	}
	if len(resp.Programs[0].Counters) == 0 {
		t.Fatal("cell response carries no raw counters; remote backends cannot rebuild results without them")
	}

	// The same cell again: no cache is configured, so it recomputes and
	// still reports cached=false; with a cache it must flip to true.
	_, cCached := newTestServer(t, Config{Cache: newMemCache(t)})
	req := api.CellRequest{Benchmarks: []string{"CG"}, Config: "Serial", Scale: testScale}
	first, err := cCached.RunCell(ctx, req)
	if err != nil {
		t.Fatalf("first cell: %v", err)
	}
	second, err := cCached.RunCell(ctx, req)
	if err != nil {
		t.Fatalf("second cell: %v", err)
	}
	if first.Cached || !second.Cached {
		t.Errorf("cache flags: first=%v second=%v, want false/true", first.Cached, second.Cached)
	}
	if first.WallCycles != second.WallCycles {
		t.Errorf("cached cell changed results: %d vs %d", first.WallCycles, second.WallCycles)
	}
}

func TestCellEndpointRejectsBadRequests(t *testing.T) {
	_, c := newTestServer(t, Config{})
	cases := []api.CellRequest{
		{Benchmarks: []string{"CG"}, Config: "no-such-config"},
		{Benchmarks: []string{"no-such-benchmark"}, Config: "Serial"},
		{Benchmarks: nil, Config: "Serial"},
		{Benchmarks: []string{"CG", "FT", "BT"}, Config: "Serial"},
		{Benchmarks: []string{"CG"}, Config: "Serial", Scale: 2.5}, // over MaxScale
	}
	for _, req := range cases {
		_, err := c.RunCell(context.Background(), req)
		if !errors.Is(err, api.ErrBadRequest) {
			t.Errorf("%+v: error %v, want api.ErrBadRequest", req, err)
			continue
		}
		var apiErr *api.Error
		if !errors.As(err, &apiErr) || apiErr.Code != api.CodeBadRequest || apiErr.Message == "" {
			t.Errorf("%+v: error %v lacks the structured code/message", req, err)
		}
	}
}

func newMemCache(t *testing.T) *runcache.Cache {
	t.Helper()
	c, err := runcache.New(0, "")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestStudyOverHTTPByteIdentity is the remote-equivalence contract: the
// artifact bytes served by the HTTP API are byte-for-byte the canonical
// golden JSON a local run of the same study produces. Seq density is
// enforced by the client's stream iterator as a side effect of Follow.
func TestStudyOverHTTPByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full study over HTTP")
	}
	_, c := newTestServer(t, Config{})
	ctx := context.Background()

	st, err := c.SubmitStudy(ctx, api.StudyRequest{Study: "single", Scale: testScale})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	events := followProgress(t, c, st.ID)
	last := events[len(events)-1]
	if last.State != api.StateDone {
		t.Fatalf("study finished %s: %s", last.State, last.Error)
	}
	for i, e := range events {
		if e.Seq != i+1 {
			t.Fatalf("event %d has seq %d; the stream must replay the full ordered history", i, e.Seq)
		}
	}
	if st, err = c.Study(ctx, st.ID); err != nil {
		t.Fatalf("status: %v", err)
	}
	wantCells, err := core.StudyCells("single")
	if err != nil {
		t.Fatal(err)
	}
	if st.DoneCells != wantCells || len(events) != wantCells+1 {
		t.Errorf("done %d cells, %d events; want %d cells", st.DoneCells, len(events), wantCells)
	}

	// The local reference: same study, same knobs, no server.
	study, err := core.NewStudy("single")
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.NewOptions(core.WithScale(testScale), core.WithSeed(1), core.WithPolicy(sched.Alternate))
	if err != nil {
		t.Fatal(err)
	}
	if err := study.Run(context.Background(), opt); err != nil {
		t.Fatal(err)
	}
	arts, err := study.Artifacts()
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != len(st.Artifacts) {
		t.Fatalf("server lists %d artifacts, local run has %d", len(st.Artifacts), len(arts))
	}
	for _, a := range arts {
		want, err := a.MarshalCanonical()
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Artifact(ctx, st.ID, a.Name)
		if err != nil {
			t.Fatalf("artifact %s: %v", a.Name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("artifact %s served over HTTP differs from the local canonical bytes", a.Name)
		}
	}
}

// holdBackend delegates to core.Local but parks executions until release
// is closed, so tests can hold cells in flight deterministically.
type holdBackend struct {
	entered atomic.Int64
	// free cells pass straight through before parking starts.
	free    int64
	release chan struct{}
}

func (b *holdBackend) RunCell(ctx context.Context, w core.Workload, cfg config.Configuration, opt core.Options) (*core.RunResult, bool, error) {
	if b.entered.Add(1) > b.free {
		select {
		case <-b.release:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	return core.Local().RunCell(ctx, w, cfg, opt)
}

// TestConcurrentIdenticalCellsDedupe pins the singleflight behaviour end
// to end: two clients POST the identical cell at the same time, exactly
// one simulation happens, and the obs counters expose the shared flight.
func TestConcurrentIdenticalCellsDedupe(t *testing.T) {
	hold := &holdBackend{release: make(chan struct{})}
	_, c := newTestServer(t, Config{Backend: hold, Workers: 4})
	ctx := context.Background()

	sharedBefore := metricCounter(t, c, "core.flight_shared")
	leadersBefore := metricCounter(t, c, "core.flight_leaders")

	req := api.CellRequest{Benchmarks: []string{"CG"}, Config: "Serial", Scale: testScale}
	var wg sync.WaitGroup
	responses := make([]api.CellResponse, 2)
	errs := make([]error, 2)
	for i := range responses {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i], errs[i] = c.RunCell(ctx, req)
		}(i)
	}
	// The leader is parked inside the backend; release once the second
	// request has joined the flight (visible as a shared-flight count).
	deadline := time.Now().Add(10 * time.Second)
	for metricCounter(t, c, "core.flight_shared")-sharedBefore < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never joined the in-flight cell")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(hold.release)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if got := hold.entered.Load(); got != 1 {
		t.Errorf("backend executed %d cells for 2 identical concurrent requests, want 1", got)
	}
	if responses[0].Cached == responses[1].Cached {
		t.Errorf("cache flags %v/%v: exactly one request computes, the other shares", responses[0].Cached, responses[1].Cached)
	}
	if responses[0].WallCycles != responses[1].WallCycles {
		t.Error("shared flight served different results")
	}
	if d := metricCounter(t, c, "core.flight_leaders") - leadersBefore; d != 1 {
		t.Errorf("flight_leaders moved by %g, want 1", d)
	}
	if d := metricCounter(t, c, "core.flight_shared") - sharedBefore; d != 1 {
		t.Errorf("flight_shared moved by %g, want 1", d)
	}
}

// TestStudyCancellationLeavesReplayableJournal cancels a study mid-run
// and pins the crash-safety contract: the journal holds every completed
// cell (no torn tail), and resubmitting the same request resumes from it
// instead of recomputing.
func TestStudyCancellationLeavesReplayableJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("full study over HTTP")
	}
	dir := t.TempDir()
	hold := &holdBackend{free: 3, release: make(chan struct{})}
	s, c := newTestServer(t, Config{Backend: hold, JournalDir: dir, Workers: 2})
	ctx := context.Background()

	req := api.StudyRequest{Study: "single", Scale: testScale}
	st, err := c.SubmitStudy(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Wait until some cells completed and the rest are parked.
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur, err := c.Study(ctx, st.ID)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if cur.DoneCells >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("study never completed its free cells")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The cancel response body is the (possibly still running) status;
	// the progress stream below observes the terminal state.
	if _, err := c.CancelStudy(ctx, st.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}

	events := followProgress(t, c, st.ID)
	last := events[len(events)-1]
	if last.State != api.StateCanceled {
		t.Fatalf("terminal state %q, want %q (error: %s)", last.State, api.StateCanceled, last.Error)
	}
	cur, err := c.Study(ctx, st.ID)
	if err != nil || cur.State != api.StateCanceled {
		t.Fatalf("status after cancel: %v %+v", err, cur)
	}
	// Artifacts must not exist for a canceled job — a typed conflict.
	if _, err := c.Artifact(ctx, st.ID, "figure2"); !errors.Is(err, api.ErrConflict) {
		t.Errorf("artifact of canceled job: error %v, want api.ErrConflict", err)
	}

	// Release the server's journal handle, then inspect the tail.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	hash, err := req.Hash()
	if err != nil {
		t.Fatal(err)
	}
	jn, err := journal.Open(filepath.Join(dir, hash+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	replayed := jn.Len()
	skipped := jn.Skipped()
	if err := jn.Close(); err != nil {
		t.Fatal(err)
	}
	if replayed < 2 {
		t.Fatalf("journal replays %d cells after cancellation, want >= 2", replayed)
	}
	if skipped != 0 {
		t.Fatalf("journal tail is torn: %d undecodable lines", skipped)
	}

	// Resume: a fresh server over the same journal dir serves the
	// completed tail without recomputing it.
	resumeHold := &holdBackend{free: 1 << 30, release: make(chan struct{})}
	_, c2 := newTestServer(t, Config{Backend: resumeHold, JournalDir: dir, Workers: 2})
	st2, err := c2.SubmitStudy(ctx, req)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	events2 := followProgress(t, c2, st2.ID)
	if last := events2[len(events2)-1]; last.State != api.StateDone {
		t.Fatalf("resumed study finished %s: %s", last.State, last.Error)
	}
	if st2, err = c2.Study(ctx, st2.ID); err != nil {
		t.Fatalf("resumed status: %v", err)
	}
	if st2.CachedCells < replayed {
		t.Errorf("resumed study served %d cells from cache/journal, want >= %d (the journal tail)", st2.CachedCells, replayed)
	}
}

func TestStudyAdmissionControl(t *testing.T) {
	ctx := context.Background()
	// A cell budget below the study size rejects with a typed over-budget
	// error carrying the Retry-After hint, before any work.
	_, cBudget := newTestServer(t, Config{MaxCellsPerRequest: 1})
	_, err := cBudget.SubmitStudy(ctx, api.StudyRequest{Study: "single", Scale: testScale})
	if !errors.Is(err, api.ErrOverBudget) {
		t.Errorf("over-budget study: error %v, want api.ErrOverBudget", err)
	}
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeOverBudget || apiErr.Message == "" {
		t.Errorf("over-budget study: error %v lacks the structured code/message", err)
	} else if apiErr.RetryAfter <= 0 {
		t.Errorf("over-budget study: no Retry-After hint on %v", err)
	}
	rejected := metricCounter(t, cBudget, "server.rejected")
	if rejected < 1 {
		t.Errorf("server.rejected is %g after a 429", rejected)
	}

	// Unknown study names, policies, and oversized scales reject as bad
	// requests.
	for _, req := range []api.StudyRequest{
		{Study: "no-such-study"},
		{Study: "single", Policy: "no-such-policy"},
		{Study: "single", Scale: 2.5},
	} {
		if _, err := cBudget.SubmitStudy(ctx, req); !errors.Is(err, api.ErrBadRequest) {
			t.Errorf("%+v: error %v, want api.ErrBadRequest", req, err)
		}
	}

	// A saturated server rejects the next study with over-budget.
	hold := &holdBackend{release: make(chan struct{})}
	defer close(hold.release)
	_, cSat := newTestServer(t, Config{Backend: hold, MaxConcurrentStudies: 1, Workers: 1})
	if _, err := cSat.SubmitStudy(ctx, api.StudyRequest{Study: "single", Scale: testScale}); err != nil {
		t.Fatalf("first study: %v", err)
	}
	if _, err := cSat.SubmitStudy(ctx, api.StudyRequest{Study: "pair", Scale: testScale}); !errors.Is(err, api.ErrOverBudget) {
		t.Errorf("second study on a saturated server: error %v, want api.ErrOverBudget", err)
	}
}

func TestUnknownJobRoutes(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := c.Study(ctx, "job-999"); !errors.Is(err, api.ErrNotFound) {
		t.Errorf("status of unknown job: error %v, want api.ErrNotFound", err)
	}
	if _, err := c.Artifact(ctx, "job-999", "figure2"); !errors.Is(err, api.ErrNotFound) {
		t.Errorf("artifact of unknown job: error %v, want api.ErrNotFound", err)
	}
	if _, err := c.Progress(ctx, "job-999", 0); !errors.Is(err, api.ErrNotFound) {
		t.Errorf("progress of unknown job: error %v, want api.ErrNotFound", err)
	}
}

func TestStudyList(t *testing.T) {
	hold := &holdBackend{release: make(chan struct{})}
	defer close(hold.release)
	_, c := newTestServer(t, Config{Backend: hold, Workers: 1, MaxConcurrentStudies: 2})
	ctx := context.Background()
	first, err := c.SubmitStudy(ctx, api.StudyRequest{Study: "single", Scale: testScale})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	second, err := c.SubmitStudy(ctx, api.StudyRequest{Study: "pair", Scale: testScale})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	list, err := c.Studies(ctx)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(list) != 2 || list[0].ID != first.ID || list[1].ID != second.ID {
		t.Fatalf("list %+v, want [%s %s] in submission order", list, first.ID, second.ID)
	}
}

func TestStudyCellsMatchesStudyNames(t *testing.T) {
	for _, name := range core.StudyNames() {
		n, err := core.StudyCells(name)
		if err != nil {
			t.Fatal(err)
		}
		if n <= 0 {
			t.Errorf("study %s reports %d cells", name, n)
		}
		if _, err := core.NewStudy(name); err != nil {
			t.Errorf("NewStudy(%s): %v", name, err)
		}
	}
	if _, err := core.NewStudy("bogus"); err == nil {
		t.Error("NewStudy accepted an unknown name")
	}
	if _, err := core.StudyCells("bogus"); err == nil {
		t.Error("StudyCells accepted an unknown name")
	}
}
