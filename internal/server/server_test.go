package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xeonomp/internal/config"
	"xeonomp/internal/core"
	"xeonomp/internal/journal"
	"xeonomp/internal/runcache"
	"xeonomp/internal/sched"
)

// testScale keeps HTTP-level study runs fast; the byte-identity test
// recomputes its local reference at the same scale, so any value works.
const testScale = 0.02

// newTestServer boots a Server behind httptest and tears both down with
// the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Errorf("closing server: %v", err)
		}
	})
	return s, ts
}

// postJSON posts body and decodes the response into out, returning the
// status code.
func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		// Body fully consumed by the decode below.
		_ = resp.Body.Close()
	}()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && err != io.EOF {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// getJSON fetches url into out, returning the status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		// Body fully consumed by the decode below.
		_ = resp.Body.Close()
	}()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && err != io.EOF {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// followProgress consumes the /progress/{id} stream until the terminal
// event and returns every event received.
func followProgress(t *testing.T, base, id string) []Event {
	t.Helper()
	resp, err := http.Get(base + "/progress/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		// Stream fully consumed (or the test already failed).
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("progress %s: status %d", id, resp.StatusCode)
	}
	var events []Event
	dec := json.NewDecoder(resp.Body)
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			t.Fatalf("progress stream broke before a terminal event: %v", err)
		}
		events = append(events, e)
		if e.State != "" {
			return events
		}
	}
}

// metricCounter scrapes one counter from the /metrics endpoint.
func metricCounter(t *testing.T, base, name string) float64 {
	t.Helper()
	var m struct {
		Counters map[string]float64 `json:"counters"`
	}
	if code := getJSON(t, base+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	return m.Counters[name]
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var h map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK || h["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, h)
	}
	var m struct {
		Counters map[string]float64 `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if _, ok := m.Counters["server.http_requests"]; !ok {
		t.Error("metrics snapshot is missing server.http_requests")
	}
}

func TestCellEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var resp CellResponse
	code := postJSON(t, ts.URL+"/api/v1/cell",
		CellRequest{Benchmarks: []string{"CG"}, Config: "Serial", Scale: testScale}, &resp)
	if code != http.StatusOK {
		t.Fatalf("cell: status %d", code)
	}
	if len(resp.Programs) != 1 || resp.Programs[0].Benchmark != "CG" || resp.WallCycles <= 0 {
		t.Fatalf("cell response malformed: %+v", resp)
	}

	// The same cell again: no cache is configured, so it recomputes and
	// still reports cached=false; with a cache it must flip to true.
	_, tsCached := newTestServer(t, Config{Cache: newMemCache(t)})
	req := CellRequest{Benchmarks: []string{"CG"}, Config: "Serial", Scale: testScale}
	var first, second CellResponse
	if code := postJSON(t, tsCached.URL+"/api/v1/cell", req, &first); code != http.StatusOK {
		t.Fatalf("first cell: status %d", code)
	}
	if code := postJSON(t, tsCached.URL+"/api/v1/cell", req, &second); code != http.StatusOK {
		t.Fatalf("second cell: status %d", code)
	}
	if first.Cached || !second.Cached {
		t.Errorf("cache flags: first=%v second=%v, want false/true", first.Cached, second.Cached)
	}
	if first.WallCycles != second.WallCycles {
		t.Errorf("cached cell changed results: %d vs %d", first.WallCycles, second.WallCycles)
	}
}

func TestCellEndpointRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []CellRequest{
		{Benchmarks: []string{"CG"}, Config: "no-such-config"},
		{Benchmarks: []string{"no-such-benchmark"}, Config: "Serial"},
		{Benchmarks: nil, Config: "Serial"},
		{Benchmarks: []string{"CG", "FT", "BT"}, Config: "Serial"},
		{Benchmarks: []string{"CG"}, Config: "Serial", Scale: 2.5}, // over MaxScale
	}
	for _, req := range cases {
		var e ErrorResponse
		if code := postJSON(t, ts.URL+"/api/v1/cell", req, &e); code != http.StatusBadRequest {
			t.Errorf("%+v: status %d, want 400", req, code)
		} else if e.Error == "" {
			t.Errorf("%+v: empty error body", req)
		}
	}
}

func newMemCache(t *testing.T) *runcache.Cache {
	t.Helper()
	c, err := runcache.New(0, "")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestStudyOverHTTPByteIdentity is the remote-equivalence contract: the
// artifact bytes served by the HTTP API are byte-for-byte the canonical
// golden JSON a local run of the same study produces.
func TestStudyOverHTTPByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full study over HTTP")
	}
	_, ts := newTestServer(t, Config{})

	var st StudyStatus
	if code := postJSON(t, ts.URL+"/api/v1/study", StudyRequest{Study: "single", Scale: testScale}, &st); code != http.StatusAccepted {
		t.Fatalf("submit: status %d (%+v)", code, st)
	}
	events := followProgress(t, ts.URL, st.ID)
	last := events[len(events)-1]
	if last.State != StateDone {
		t.Fatalf("study finished %s: %s", last.State, last.Error)
	}
	for i, e := range events {
		if e.Seq != i+1 {
			t.Fatalf("event %d has seq %d; the stream must replay the full ordered history", i, e.Seq)
		}
	}
	if code := getJSON(t, ts.URL+"/api/v1/study/"+st.ID, &st); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	wantCells, err := core.StudyCells("single")
	if err != nil {
		t.Fatal(err)
	}
	if st.DoneCells != wantCells || len(events) != wantCells+1 {
		t.Errorf("done %d cells, %d events; want %d cells", st.DoneCells, len(events), wantCells)
	}

	// The local reference: same study, same knobs, no server.
	study, err := core.NewStudy("single")
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.NewOptions(core.WithScale(testScale), core.WithSeed(1), core.WithPolicy(sched.Alternate))
	if err != nil {
		t.Fatal(err)
	}
	if err := study.Run(context.Background(), opt); err != nil {
		t.Fatal(err)
	}
	arts, err := study.Artifacts()
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != len(st.Artifacts) {
		t.Fatalf("server lists %d artifacts, local run has %d", len(st.Artifacts), len(arts))
	}
	for _, a := range arts {
		want, err := a.MarshalCanonical()
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Get(ts.URL + "/api/v1/study/" + st.ID + "/artifacts/" + a.Name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(resp.Body)
		// Fully read above.
		_ = resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("artifact %s: status %d", a.Name, resp.StatusCode)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("artifact %s served over HTTP differs from the local canonical bytes", a.Name)
		}
	}
}

// holdBackend delegates to core.Local but parks executions until release
// is closed, so tests can hold cells in flight deterministically.
type holdBackend struct {
	entered atomic.Int64
	// free cells pass straight through before parking starts.
	free    int64
	release chan struct{}
}

func (b *holdBackend) RunCell(ctx context.Context, w core.Workload, cfg config.Configuration, opt core.Options) (*core.RunResult, bool, error) {
	if b.entered.Add(1) > b.free {
		select {
		case <-b.release:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	return core.Local().RunCell(ctx, w, cfg, opt)
}

// TestConcurrentIdenticalCellsDedupe pins the singleflight behaviour end
// to end: two clients POST the identical cell at the same time, exactly
// one simulation happens, and the obs counters expose the shared flight.
func TestConcurrentIdenticalCellsDedupe(t *testing.T) {
	hold := &holdBackend{release: make(chan struct{})}
	_, ts := newTestServer(t, Config{Backend: hold, Workers: 4})

	sharedBefore := metricCounter(t, ts.URL, "core.flight_shared")
	leadersBefore := metricCounter(t, ts.URL, "core.flight_leaders")

	req := CellRequest{Benchmarks: []string{"CG"}, Config: "Serial", Scale: testScale}
	var wg sync.WaitGroup
	responses := make([]CellResponse, 2)
	codes := make([]int, 2)
	for i := range responses {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = postJSON(t, ts.URL+"/api/v1/cell", req, &responses[i])
		}(i)
	}
	// The leader is parked inside the backend; release once the second
	// request has joined the flight (visible as a shared-flight count).
	deadline := time.Now().Add(10 * time.Second)
	for metricCounter(t, ts.URL, "core.flight_shared")-sharedBefore < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never joined the in-flight cell")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(hold.release)
	wg.Wait()

	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	if got := hold.entered.Load(); got != 1 {
		t.Errorf("backend executed %d cells for 2 identical concurrent requests, want 1", got)
	}
	if responses[0].Cached == responses[1].Cached {
		t.Errorf("cache flags %v/%v: exactly one request computes, the other shares", responses[0].Cached, responses[1].Cached)
	}
	if responses[0].WallCycles != responses[1].WallCycles {
		t.Error("shared flight served different results")
	}
	if d := metricCounter(t, ts.URL, "core.flight_leaders") - leadersBefore; d != 1 {
		t.Errorf("flight_leaders moved by %g, want 1", d)
	}
	if d := metricCounter(t, ts.URL, "core.flight_shared") - sharedBefore; d != 1 {
		t.Errorf("flight_shared moved by %g, want 1", d)
	}
}

// TestStudyCancellationLeavesReplayableJournal cancels a study mid-run
// and pins the crash-safety contract: the journal holds every completed
// cell (no torn tail), and resubmitting the same request resumes from it
// instead of recomputing.
func TestStudyCancellationLeavesReplayableJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("full study over HTTP")
	}
	dir := t.TempDir()
	hold := &holdBackend{free: 3, release: make(chan struct{})}
	s, ts := newTestServer(t, Config{Backend: hold, JournalDir: dir, Workers: 2})

	req := StudyRequest{Study: "single", Scale: testScale}
	var st StudyStatus
	if code := postJSON(t, ts.URL+"/api/v1/study", req, &st); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	// Wait until some cells completed and the rest are parked.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var cur StudyStatus
		if code := getJSON(t, ts.URL+"/api/v1/study/"+st.ID, &cur); code != http.StatusOK {
			t.Fatalf("status: %d", code)
		}
		if cur.DoneCells >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("study never completed its free cells")
		}
		time.Sleep(5 * time.Millisecond)
	}
	delReq, err := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/study/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", r.StatusCode)
	}
	// The cancel response body is the (possibly still running) status;
	// the progress stream below observes the terminal state.
	_ = r.Body.Close()

	events := followProgress(t, ts.URL, st.ID)
	last := events[len(events)-1]
	if last.State != StateCanceled {
		t.Fatalf("terminal state %q, want %q (error: %s)", last.State, StateCanceled, last.Error)
	}
	var cur StudyStatus
	if code := getJSON(t, ts.URL+"/api/v1/study/"+st.ID, &cur); code != http.StatusOK || cur.State != StateCanceled {
		t.Fatalf("status after cancel: %d %+v", code, cur)
	}
	// Artifacts must not exist for a canceled job.
	if code := getJSON(t, ts.URL+"/api/v1/study/"+st.ID+"/artifacts/figure2", nil); code != http.StatusConflict {
		t.Errorf("artifact of canceled job: status %d, want 409", code)
	}

	// Release the server's journal handle, then inspect the tail.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	hash, err := req.hash()
	if err != nil {
		t.Fatal(err)
	}
	jn, err := journal.Open(filepath.Join(dir, hash+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	replayed := jn.Len()
	skipped := jn.Skipped()
	if err := jn.Close(); err != nil {
		t.Fatal(err)
	}
	if replayed < 2 {
		t.Fatalf("journal replays %d cells after cancellation, want >= 2", replayed)
	}
	if skipped != 0 {
		t.Fatalf("journal tail is torn: %d undecodable lines", skipped)
	}

	// Resume: a fresh server over the same journal dir serves the
	// completed tail without recomputing it.
	resumeHold := &holdBackend{free: 1 << 30, release: make(chan struct{})}
	_, ts2 := newTestServer(t, Config{Backend: resumeHold, JournalDir: dir, Workers: 2})
	var st2 StudyStatus
	if code := postJSON(t, ts2.URL+"/api/v1/study", req, &st2); code != http.StatusAccepted {
		t.Fatalf("resubmit: status %d", code)
	}
	events2 := followProgress(t, ts2.URL, st2.ID)
	if last := events2[len(events2)-1]; last.State != StateDone {
		t.Fatalf("resumed study finished %s: %s", last.State, last.Error)
	}
	if code := getJSON(t, ts2.URL+"/api/v1/study/"+st2.ID, &st2); code != http.StatusOK {
		t.Fatalf("resumed status: %d", code)
	}
	if st2.CachedCells < replayed {
		t.Errorf("resumed study served %d cells from cache/journal, want >= %d (the journal tail)", st2.CachedCells, replayed)
	}
}

func TestStudyAdmissionControl(t *testing.T) {
	// A cell budget below the study size rejects with 429 before any work.
	_, tsBudget := newTestServer(t, Config{MaxCellsPerRequest: 1})
	var e ErrorResponse
	if code := postJSON(t, tsBudget.URL+"/api/v1/study", StudyRequest{Study: "single", Scale: testScale}, &e); code != http.StatusTooManyRequests {
		t.Errorf("over-budget study: status %d, want 429", code)
	} else if e.Error == "" {
		t.Error("over-budget study: empty error body")
	}
	rejected := metricCounter(t, tsBudget.URL, "server.rejected")
	if rejected < 1 {
		t.Errorf("server.rejected is %g after a 429", rejected)
	}

	// Unknown study names, policies, and oversized scales reject with 400.
	for _, req := range []StudyRequest{
		{Study: "no-such-study"},
		{Study: "single", Policy: "no-such-policy"},
		{Study: "single", Scale: 2.5},
	} {
		if code := postJSON(t, tsBudget.URL+"/api/v1/study", req, nil); code != http.StatusBadRequest {
			t.Errorf("%+v: status %d, want 400", req, code)
		}
	}

	// A saturated server rejects the next study with 429.
	hold := &holdBackend{release: make(chan struct{})}
	defer close(hold.release)
	_, tsSat := newTestServer(t, Config{Backend: hold, MaxConcurrentStudies: 1, Workers: 1})
	var st StudyStatus
	if code := postJSON(t, tsSat.URL+"/api/v1/study", StudyRequest{Study: "single", Scale: testScale}, &st); code != http.StatusAccepted {
		t.Fatalf("first study: status %d", code)
	}
	if code := postJSON(t, tsSat.URL+"/api/v1/study", StudyRequest{Study: "pair", Scale: testScale}, &e); code != http.StatusTooManyRequests {
		t.Errorf("second study on a saturated server: status %d, want 429", code)
	}
}

func TestUnknownJobRoutes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, url := range []string{
		ts.URL + "/api/v1/study/job-999",
		ts.URL + "/api/v1/study/job-999/artifacts/figure2",
		ts.URL + "/progress/job-999",
	} {
		if code := getJSON(t, url, nil); code != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", url, code)
		}
	}
}

func TestStudyList(t *testing.T) {
	hold := &holdBackend{release: make(chan struct{})}
	defer close(hold.release)
	_, ts := newTestServer(t, Config{Backend: hold, Workers: 1, MaxConcurrentStudies: 2})
	var first, second StudyStatus
	if code := postJSON(t, ts.URL+"/api/v1/study", StudyRequest{Study: "single", Scale: testScale}, &first); code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	if code := postJSON(t, ts.URL+"/api/v1/study", StudyRequest{Study: "pair", Scale: testScale}, &second); code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	var list []StudyStatus
	if code := getJSON(t, ts.URL+"/api/v1/study", &list); code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	if len(list) != 2 || list[0].ID != first.ID || list[1].ID != second.ID {
		t.Fatalf("list %+v, want [%s %s] in submission order", list, first.ID, second.ID)
	}
}

// TestRequestHashStability pins the request identity the journal files
// are keyed by: defaults and their explicit spellings hash identically,
// different knobs differently.
func TestRequestHashStability(t *testing.T) {
	h := func(r StudyRequest) string {
		t.Helper()
		s, err := r.hash()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if h(StudyRequest{Study: "single"}) != h(StudyRequest{Study: "single", Scale: 1.0, Seed: 1, Policy: "alternate"}) {
		t.Error("defaulted and explicit requests hash differently")
	}
	seen := map[string]StudyRequest{}
	for _, r := range []StudyRequest{
		{Study: "single"},
		{Study: "pair"},
		{Study: "single", Scale: 0.5},
		{Study: "single", Seed: 2},
		{Study: "single", Policy: "block"},
	} {
		k := h(r)
		if prev, dup := seen[k]; dup {
			t.Errorf("%+v and %+v collide", prev, r)
		}
		seen[k] = r
	}
}

func TestStudyCellsMatchesStudyNames(t *testing.T) {
	for _, name := range core.StudyNames() {
		n, err := core.StudyCells(name)
		if err != nil {
			t.Fatal(err)
		}
		if n <= 0 {
			t.Errorf("study %s reports %d cells", name, n)
		}
		if _, err := core.NewStudy(name); err != nil {
			t.Errorf("NewStudy(%s): %v", name, err)
		}
	}
	if _, err := core.NewStudy("bogus"); err == nil {
		t.Error("NewStudy accepted an unknown name")
	}
	if _, err := core.StudyCells("bogus"); err == nil {
		t.Error("StudyCells accepted an unknown name")
	}
}
