// Package server is the simulation-as-a-service layer: a stdlib-only
// HTTP+JSON front end over the experiment engine. It accepts study and
// cell requests, dedupes identical in-flight cells (core.Dedupe), bounds
// total simulation concurrency (core.Gate), serves repeated work out of
// the shared run cache, and streams per-cell progress events. Results
// served remotely are byte-identical to local runs — the golden
// artifacts and determinism pins are the contract, and the byte-identity
// test plus the server-smoke CI job enforce it.
//
// The wire schema the handlers speak — request/response bodies, error
// codes, the progress-event format — lives in internal/api, shared with
// cmd/xeonctl's client and the internal/shard remote backend; this
// package holds only the handlers and job machinery. cmd/xeond is the
// thin daemon main around it.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"xeonomp/internal/api"
	"xeonomp/internal/config"
	"xeonomp/internal/core"
	"xeonomp/internal/journal"
	"xeonomp/internal/obs"
	"xeonomp/internal/profiles"
	"xeonomp/internal/runcache"
)

// Process-wide observability series (see internal/obs): HTTP traffic and
// latency, study-job lifecycle, and admission-control rejections. The
// /metrics endpoint serves these (and every other registered series)
// back out, so a repeated study shows up as core.cells_cached moving
// while core.cells_computed stands still.
var (
	obsRequests        = obs.NewCounter(obs.MetricServerRequests)
	obsRequestNs       = obs.NewHistogram(obs.MetricServerRequestNs)
	obsStudiesAccepted = obs.NewCounter(obs.MetricServerStudiesAccepted)
	obsStudiesDone     = obs.NewCounter(obs.MetricServerStudiesDone)
	obsStudiesFailed   = obs.NewCounter(obs.MetricServerStudiesFailed)
	obsStudiesCanceled = obs.NewCounter(obs.MetricServerStudiesCanceled)
	obsRejected        = obs.NewCounter(obs.MetricServerRejected)
	obsActiveStudies   = obs.NewGauge(obs.MetricServerActiveStudies)
)

// Config sizes a Server. The zero value is usable: in-process execution,
// no cache persistence, no journals, and the documented default budgets.
type Config struct {
	// Backend executes unique cells; nil selects core.Local(). The
	// server always layers its shared Dedupe and Gate on top, so tests
	// and future remote shards plug in here without changing admission
	// or dedupe behaviour.
	Backend core.Backend
	// Cache, when non-nil, memoizes cells across all requests — the tier
	// that makes a repeated study near-free. Pass one built with a disk
	// directory to survive restarts.
	Cache *runcache.Cache
	// JournalDir, when non-empty, gives every distinct study request an
	// append-only journal named by the request's content hash, so a
	// canceled or crashed study resumes when the same request returns.
	JournalDir string
	// Workers bounds simulation concurrency: each study job runs its
	// cells on this many workers, and the shared Gate admits at most
	// this many concurrent cells server-wide. 0 selects GOMAXPROCS.
	Workers int
	// MaxCellsPerRequest is the admission budget: a study expanding to
	// more cells is rejected with 429 before any simulation starts.
	// 0 selects 256.
	MaxCellsPerRequest int
	// MaxConcurrentStudies bounds running study jobs; excess submissions
	// get 429. 0 selects 4.
	MaxConcurrentStudies int
	// MaxScale caps the per-request Scale knob. 0 selects 1.0, the full
	// paper workload.
	MaxScale float64
}

// withDefaults fills the documented zero-value defaults.
func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxCellsPerRequest == 0 {
		c.MaxCellsPerRequest = 256
	}
	if c.MaxConcurrentStudies == 0 {
		c.MaxConcurrentStudies = 4
	}
	if c.MaxScale == 0 {
		c.MaxScale = 1.0
	}
	return c
}

// Server is the experiment daemon: shared backend stack, shared run
// cache, job table, and per-study journals. Create one with New, mount
// Handler on an http.Server, and Close it on the way out.
type Server struct {
	cfg     Config
	backend core.Backend // Dedupe(Gate(cfg.Backend))
	ctx     context.Context
	stop    context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*job
	jobSeq   int
	active   int
	journals map[string]*journal.Journal
}

// New builds a Server from cfg (see Config for the zero-value
// defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	inner := cfg.Backend
	if inner == nil {
		inner = core.Local()
	}
	//xeonlint:ignore ctxflow the server owns its own lifetime: this root is canceled by Close, not by any caller's ctx
	ctx, stop := context.WithCancel(context.Background())
	return &Server{
		cfg:      cfg,
		backend:  core.NewDedupe(core.NewGate(inner, cfg.Workers)),
		ctx:      ctx,
		stop:     stop,
		jobs:     map[string]*job{},
		journals: map[string]*journal.Journal{},
	}
}

// Close cancels every running job and closes the study journals. Safe to
// call once the HTTP server has stopped serving.
func (s *Server) Close() error {
	s.stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	hashes := make([]string, 0, len(s.journals))
	for hash := range s.journals {
		hashes = append(hashes, hash)
	}
	sort.Strings(hashes)
	var errs []error
	for _, hash := range hashes {
		if err := s.journals[hash].Close(); err != nil {
			errs = append(errs, fmt.Errorf("journal %s: %w", hash, err))
		}
	}
	s.journals = map[string]*journal.Journal{}
	return errors.Join(errs...)
}

// journalFor returns the shared journal for a study-request hash,
// opening it on first use. Sharing one Journal per hash keeps two
// concurrent identical studies from interleaving appends from separate
// writers, and means a resubmitted study is served its predecessor's
// completed cells straight from the replay map.
func (s *Server) journalFor(hash string) (*journal.Journal, error) {
	if s.cfg.JournalDir == "" {
		return nil, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if jn, ok := s.journals[hash]; ok {
		return jn, nil
	}
	jn, err := journal.Open(filepath.Join(s.cfg.JournalDir, hash+".jsonl"))
	if err != nil {
		return nil, err
	}
	s.journals[hash] = jn
	return jn, nil
}

// Handler returns the server's routes behind the request-metrics
// middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /api/v1/cell", s.handleCell)
	mux.HandleFunc("POST /api/v1/study", s.handleStudySubmit)
	mux.HandleFunc("GET /api/v1/study", s.handleStudyList)
	mux.HandleFunc("GET /api/v1/study/{id}", s.handleStudyStatus)
	mux.HandleFunc("DELETE /api/v1/study/{id}", s.handleStudyCancel)
	mux.HandleFunc("GET /api/v1/study/{id}/artifacts/{name}", s.handleArtifact)
	mux.HandleFunc("GET /progress/{id}", s.handleProgress)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		obsRequests.Inc()
		t := obs.StartTimer()
		defer obsRequestNs.ObserveSince(t)
		mux.ServeHTTP(w, r)
	})
}

// writeJSON emits v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// A failed write means the client is gone; there is nobody left to
	// report it to.
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits the structured JSON error body (code is one of the
// api.Code* constants — the stable contract api.Client maps onto typed
// errors). 429s count as admission rejections and carry a Retry-After
// hint: admission pressure clears as soon as a study slot or cell
// budget frees, so the hint is deliberately coarse.
func writeError(w http.ResponseWriter, status int, code string, format string, args ...any) {
	if status == http.StatusTooManyRequests {
		obsRejected.Inc()
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, api.ErrorResponse{Error: fmt.Sprintf(format, args...), Code: code})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics serves the process metric registry — the same snapshot
// the CLI's -metrics-out writes, so dashboards and the smoke gate read
// cache hit rates, cell latencies, and admission counters from one
// source of truth.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	// A failed write means the client is gone mid-snapshot.
	_ = obs.Default.WriteJSON(w)
}

// buildOptions turns wire knobs into validated core Options carrying the
// server's shared cache and the given backend.
func (s *Server) buildOptions(scale float64, seed uint64, policy string, backend core.Backend, jn *journal.Journal) (core.Options, error) {
	pol, err := api.ParsePolicy(policy)
	if err != nil {
		return core.Options{}, err
	}
	opts := []core.Option{
		core.WithScale(scale),
		core.WithSeed(seed),
		core.WithPolicy(pol),
		core.WithWorkers(s.cfg.Workers),
		core.WithBackend(backend),
	}
	if s.cfg.Cache != nil {
		opts = append(opts, core.WithCache(s.cfg.Cache))
	}
	if jn != nil {
		opts = append(opts, core.WithJournal(jn))
	}
	return core.NewOptions(opts...)
}

// handleCell runs one simulation cell synchronously. The request context
// carries the client connection: a disconnect cancels the cell cleanly
// (waiters leave the dedupe/gate queues immediately; a running leader
// finishes its current cell at the next engine checkpoint).
func (s *Server) handleCell(w http.ResponseWriter, r *http.Request) {
	var req api.CellRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "decoding cell request: %v", err)
		return
	}
	if len(req.Benchmarks) < 1 || len(req.Benchmarks) > 2 {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "benchmarks must name 1 or 2 programs, got %d", len(req.Benchmarks))
		return
	}
	var progs []profiles.Profile
	for _, name := range req.Benchmarks {
		p, err := profiles.ByName(name)
		if err != nil {
			writeError(w, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
			return
		}
		progs = append(progs, p)
	}
	cfg, err := config.ByName(req.Config)
	if err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
		return
	}
	norm := api.StudyRequest{Scale: req.Scale, Seed: req.Seed, Policy: req.Policy}.Normalized()
	if norm.Scale < 0 || norm.Scale > s.cfg.MaxScale {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "scale %g outside (0, %g]", norm.Scale, s.cfg.MaxScale)
		return
	}
	capture := &captureBackend{inner: s.backend}
	opt, err := s.buildOptions(norm.Scale, norm.Seed, norm.Policy, capture, nil)
	if err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
		return
	}

	res, err := core.RunContext(r.Context(), core.Workload{Programs: progs}, cfg, opt)
	if err != nil {
		if r.Context().Err() != nil {
			// The client is gone; the response would go nowhere.
			return
		}
		writeError(w, http.StatusInternalServerError, api.CodeInternal, "%v", err)
		return
	}
	resp := api.CellResponse{WallCycles: res.WallCycles, Cached: capture.cached}
	for i := range res.Programs {
		p := &res.Programs[i]
		resp.Programs = append(resp.Programs, api.CellProgram{
			Benchmark: p.Benchmark,
			Threads:   p.Threads,
			Cycles:    p.Cycles,
			// Raw counters travel alongside the derived metrics: a remote
			// backend rebuilds its RunResult (and its own cache/journal
			// payloads) from them, re-deriving metrics on its side.
			Counters: p.Counters.NonzeroMap(),
			Metrics:  p.Metrics,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleStudySubmit admits, registers, and starts one study job,
// answering 202 with the job's initial status.
func (s *Server) handleStudySubmit(w http.ResponseWriter, r *http.Request) {
	var req api.StudyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "decoding study request: %v", err)
		return
	}
	req = req.Normalized()
	study, err := core.NewStudy(req.Study)
	if err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
		return
	}
	cells, err := core.StudyCells(req.Study)
	if err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
		return
	}
	if req.Scale < 0 || req.Scale > s.cfg.MaxScale {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "scale %g outside (0, %g]", req.Scale, s.cfg.MaxScale)
		return
	}
	if _, err := api.ParsePolicy(req.Policy); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
		return
	}
	if cells > s.cfg.MaxCellsPerRequest {
		writeError(w, http.StatusTooManyRequests, api.CodeOverBudget,
			"study %q expands to %d cells, over the per-request budget of %d", req.Study, cells, s.cfg.MaxCellsPerRequest)
		return
	}
	hash, err := req.Hash()
	if err != nil {
		writeError(w, http.StatusInternalServerError, api.CodeInternal, "%v", err)
		return
	}

	s.mu.Lock()
	if s.active >= s.cfg.MaxConcurrentStudies {
		active := s.active
		s.mu.Unlock()
		writeError(w, http.StatusTooManyRequests, api.CodeOverBudget,
			"%d studies already running, concurrency budget is %d", active, s.cfg.MaxConcurrentStudies)
		return
	}
	s.active++
	obsActiveStudies.Set(float64(s.active))
	s.jobSeq++
	id := fmt.Sprintf("job-%d", s.jobSeq)
	ctx, cancel := context.WithCancel(s.ctx)
	j := newJob(id, hash, req, study, cells, cancel)
	s.jobs[id] = j
	s.mu.Unlock()

	obsStudiesAccepted.Inc()
	go s.runJob(ctx, j)
	writeJSON(w, http.StatusAccepted, j.status())
}

// runJob executes one study job to its terminal state.
func (s *Server) runJob(ctx context.Context, j *job) {
	defer func() {
		s.mu.Lock()
		s.active--
		obsActiveStudies.Set(float64(s.active))
		s.mu.Unlock()
		j.cancel() // release the context resources either way
	}()
	fail := func(err error) {
		if errors.Is(err, context.Canceled) {
			obsStudiesCanceled.Inc()
			j.finish(api.StateCanceled, err, nil, nil)
			return
		}
		obsStudiesFailed.Inc()
		j.finish(api.StateFailed, err, nil, nil)
	}
	jn, err := s.journalFor(j.hash)
	if err != nil {
		fail(err)
		return
	}
	opt, err := s.buildOptions(j.req.Scale, j.req.Seed, j.req.Policy, &recordingBackend{job: j, inner: s.backend}, jn)
	if err != nil {
		fail(err)
		return
	}
	if err := j.study.Run(ctx, opt); err != nil {
		fail(err)
		return
	}
	arts, err := j.study.Artifacts()
	if err != nil {
		fail(err)
		return
	}
	var names []string
	byName := map[string][]byte{}
	for _, a := range arts {
		b, err := a.MarshalCanonical()
		if err != nil {
			fail(err)
			return
		}
		names = append(names, a.Name)
		byName[a.Name] = b
	}
	obsStudiesDone.Inc()
	j.finish(api.StateDone, nil, names, byName)
}

// jobByID resolves the {id} path value, answering 404 itself.
func (s *Server) jobByID(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, api.CodeNotFound, "no study job %q", id)
		return nil
	}
	return j
}

func (s *Server) handleStudyList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	// Submission order: job ids carry the sequence number ("job-12"), and
	// lexicographic order gets multi-digit suffixes wrong.
	sort.Slice(jobs, func(a, b int) bool { return jobSeqOf(jobs[a].id) < jobSeqOf(jobs[b].id) })
	statuses := make([]api.StudyStatus, 0, len(jobs))
	for _, j := range jobs {
		statuses = append(statuses, j.status())
	}
	writeJSON(w, http.StatusOK, statuses)
}

func (s *Server) handleStudyStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.jobByID(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

// handleStudyCancel aborts a running job. Cancellation is clean by
// construction: the study stops between cells, every completed cell is
// already flushed to the study's journal, and resubmitting the same
// request resumes from that tail.
func (s *Server) handleStudyCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	j.cancel()
	writeJSON(w, http.StatusOK, j.status())
}

// handleArtifact serves one finished artifact's canonical bytes
// verbatim — the byte-identity contract endpoint. Writing the body to a
// file yields exactly what golden.Write stores for a local run of the
// same study, so clients can diff against testdata/golden directly.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	st := j.status()
	if st.State != api.StateDone {
		writeError(w, http.StatusConflict, api.CodeConflict, "study job %s is %s; artifacts exist only once done", st.ID, st.State)
		return
	}
	name := r.PathValue("name")
	b, ok := j.artifact(name)
	if !ok {
		writeError(w, http.StatusNotFound, api.CodeNotFound, "job %s has no artifact %q (have %v)", st.ID, name, st.Artifacts)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// A short write means the client hung up mid-artifact.
	_, _ = w.Write(b)
}

// handleProgress streams the job's event log as newline-delimited JSON,
// flushing per event, until the job is terminal or the client leaves.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	// The only error paths are a gone client or a canceled request;
	// either way the stream just ends.
	_ = j.stream(r.Context(), func(e api.Event) error {
		if err := enc.Encode(e); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
}

// captureBackend records whether the single cell it ran was served from
// a cache tier — RunContext folds the flag into the obs counters but does
// not return it, and the cell endpoint reports it per response.
type captureBackend struct {
	inner  core.Backend
	cached bool
}

func (b *captureBackend) RunCell(ctx context.Context, w core.Workload, cfg config.Configuration, opt core.Options) (*core.RunResult, bool, error) {
	res, cached, err := b.inner.RunCell(ctx, w, cfg, opt)
	b.cached = cached
	return res, cached, err
}

func jobSeqOf(id string) int {
	var n int
	// ids are always "job-<seq>"; a foreign id sorts first, harmlessly.
	_, _ = fmt.Sscanf(id, "job-%d", &n)
	return n
}
