package server

import (
	"context"
	"sync"

	"xeonomp/internal/api"
	"xeonomp/internal/config"
	"xeonomp/internal/core"
)

// job is one asynchronous study execution: the request, the study it
// builds, the event log its cells append to (the journal the
// /progress/{id} stream serves), and — once terminal — the canonical
// golden artifact bytes. All mutable state is guarded by mu; cond wakes
// progress subscribers on every appended event.
type job struct {
	id    string
	hash  string
	req   api.StudyRequest
	study core.Study
	total int
	// cancel aborts the job's context; DELETE /api/v1/study/{id} and
	// server shutdown both land here. Set before the job goroutine
	// starts, immutable afterwards.
	cancel context.CancelFunc

	mu        sync.Mutex
	cond      *sync.Cond
	state     string
	err       error
	events    []api.Event
	done      int
	cached    int
	names     []string          // artifact names, study order
	artifacts map[string][]byte // canonical golden JSON by name
}

func newJob(id, hash string, req api.StudyRequest, study core.Study, total int, cancel context.CancelFunc) *job {
	j := &job{
		id:     id,
		hash:   hash,
		req:    req,
		study:  study,
		total:  total,
		cancel: cancel,
		state:  api.StateRunning,
	}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// cellDone appends one completed-cell event; the recording backend calls
// it after every successful RunCell of this job.
func (j *job) cellDone(cell string, cached bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.done++
	if cached {
		j.cached++
	}
	j.events = append(j.events, api.Event{
		Seq:    len(j.events) + 1,
		Cell:   cell,
		Cached: cached,
		Done:   j.done,
		Total:  j.total,
	})
	j.cond.Broadcast()
}

// finish records the terminal state, the artifacts (nil unless done),
// and the terminal event, then wakes every subscriber one last time.
func (j *job) finish(state string, err error, names []string, artifacts map[string][]byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.err = err
	j.names = names
	j.artifacts = artifacts
	e := api.Event{Seq: len(j.events) + 1, Done: j.done, Total: j.total, State: state}
	if err != nil {
		e.Error = err.Error()
	}
	j.events = append(j.events, e)
	j.cond.Broadcast()
}

// status snapshots the job as its wire representation.
func (j *job) status() api.StudyStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := api.StudyStatus{
		ID:          j.id,
		Study:       j.req.Study,
		State:       j.state,
		Cells:       j.total,
		DoneCells:   j.done,
		CachedCells: j.cached,
		Artifacts:   append([]string(nil), j.names...),
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// artifact returns the canonical bytes of one finished artifact.
func (j *job) artifact(name string) ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	b, ok := j.artifacts[name]
	return b, ok
}

// stream replays the job's event log through fn in order, then blocks
// for new events until the job is terminal, fn fails (a disconnected
// subscriber), or ctx ends. Late subscribers see the full history: the
// event log is the job's journal, not a lossy broadcast.
func (j *job) stream(ctx context.Context, fn func(api.Event) error) error {
	// cond.Wait cannot select on ctx; a cancellation wakes all waiters
	// and the loop re-checks ctx below.
	stopWake := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		j.cond.Broadcast()
	})
	defer stopWake()
	i := 0
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		for i < len(j.events) {
			e := j.events[i]
			i++
			j.mu.Unlock()
			err := fn(e)
			j.mu.Lock()
			if err != nil {
				return err
			}
		}
		if j.state != api.StateRunning {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		j.cond.Wait()
	}
}

// recordingBackend threads one job's event log into the backend stack:
// every cell the study completes — simulated, cached, or deduped — lands
// in the job's events, which is what /progress/{id} streams. It wraps
// the server's shared Dedupe/Gate stack, so recording sits outside
// dedupe and each job sees its own cells regardless of which job's
// leader computed them.
type recordingBackend struct {
	job   *job
	inner core.Backend
}

func (b *recordingBackend) RunCell(ctx context.Context, w core.Workload, cfg config.Configuration, opt core.Options) (*core.RunResult, bool, error) {
	res, cached, err := b.inner.RunCell(ctx, w, cfg, opt)
	if err == nil {
		b.job.cellDone(w.Name()+"|"+cfg.Name, cached)
	}
	return res, cached, err
}
