package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of empty should be 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("geomean = %v, want 2", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("geomean with non-positive input should be NaN")
	}
	if GeoMean(nil) != 0 {
		t.Error("geomean of empty should be 0")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("variance = %v, want %v", got, 32.0/7)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("stddev = %v", got)
	}
	if Variance([]float64{5}) != 0 {
		t.Error("single sample variance should be 0")
	}
}

func TestCoefVar(t *testing.T) {
	if CoefVar([]float64{1, 1, 1}) != 0 {
		t.Error("constant sample should have zero CV")
	}
	if CoefVar([]float64{0, 0}) != 0 {
		t.Error("zero-mean CV should be 0 by convention")
	}
	cv := CoefVar([]float64{9, 10, 11})
	if cv <= 0 || cv > 0.2 {
		t.Errorf("cv = %v, want small positive", cv)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for q, want := range map[float64]float64{0: 1, 0.25: 2, 0.5: 3, 0.75: 4, 1: 5} {
		got, err := Quantile(xs, q)
		if err != nil || got != want {
			t.Errorf("quantile(%v) = %v, %v; want %v", q, got, err, want)
		}
	}
	// Interpolation between ranks.
	got, _ := Quantile([]float64{1, 2}, 0.5)
	if got != 1.5 {
		t.Errorf("interpolated median = %v, want 1.5", got)
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Error("expected ErrEmpty")
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestQuantilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_, _ = Quantile([]float64{1}, 1.5)
}

func TestBox(t *testing.T) {
	xs := []float64{7, 15, 36, 39, 40, 41}
	b, err := Box(xs)
	if err != nil {
		t.Fatal(err)
	}
	if b.Min != 7 || b.Max != 41 || b.N != 6 {
		t.Errorf("box extremes wrong: %+v", b)
	}
	if b.Median != 37.5 {
		t.Errorf("median = %v, want 37.5", b.Median)
	}
	if b.IQR() <= 0 || b.Range() != 34 {
		t.Errorf("IQR/Range wrong: %+v", b)
	}
	if _, err := Box(nil); err != ErrEmpty {
		t.Error("expected ErrEmpty")
	}
}

func TestBoxOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		b, err := Box(xs)
		if err != nil {
			return false
		}
		return b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := math.Abs(math.Mod(q1, 1))
		b := math.Abs(math.Mod(q2, 1))
		if a > b {
			a, b = b, a
		}
		va, err1 := Quantile(xs, a)
		vb, err2 := Quantile(xs, b)
		return err1 == nil && err2 == nil && va <= vb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	mn, err := Min(xs)
	if err != nil || mn != -1 {
		t.Errorf("min = %v, %v", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 7 {
		t.Errorf("max = %v, %v", mx, err)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Error("expected ErrEmpty")
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Error("expected ErrEmpty")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("ratio with zero denominator should be 0")
	}
	if Ratio(3, 4) != 0.75 {
		t.Error("ratio wrong")
	}
}
