// Package stats provides the small statistics toolkit used by the
// characterization framework: means, standard deviations, quartiles, and
// the five-number box-and-whisker summaries used for Figure 5 of the paper.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by summaries of empty samples.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive values yield NaN.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Variance returns the unbiased sample variance of xs (n-1 denominator).
// Samples with fewer than two points have zero variance.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// CoefVar returns the coefficient of variation (stddev / mean), the
// "variance between tests" statistic the paper reports as <~1-5 %.
// It returns 0 when the mean is zero.
func CoefVar(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks (the R-7 / spreadsheet definition).
// It returns an error for an empty sample and panics for q outside [0,1].
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		panic("stats: quantile out of range")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// Median returns the median of xs.
func Median(xs []float64) (float64, error) {
	return Quantile(xs, 0.5)
}

// BoxPlot is a five-number summary plus the mean: the representation behind
// each box-and-whisker in the paper's Figure 5, where the box spans the
// interquartile range and the whiskers span the full min-max range.
type BoxPlot struct {
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	Mean   float64
	N      int
}

// Box computes the BoxPlot summary of xs.
func Box(xs []float64) (BoxPlot, error) {
	if len(xs) == 0 {
		return BoxPlot{}, ErrEmpty
	}
	q1, _ := Quantile(xs, 0.25)
	med, _ := Quantile(xs, 0.5)
	q3, _ := Quantile(xs, 0.75)
	mn, mx := xs[0], xs[0]
	for _, x := range xs[1:] {
		mn = math.Min(mn, x)
		mx = math.Max(mx, x)
	}
	return BoxPlot{Min: mn, Q1: q1, Median: med, Q3: q3, Max: mx, Mean: Mean(xs), N: len(xs)}, nil
}

// IQR returns the interquartile range of the box.
func (b BoxPlot) IQR() float64 { return b.Q3 - b.Q1 }

// Range returns the whisker span of the box.
func (b BoxPlot) Range() float64 { return b.Max - b.Min }

// Min returns the smallest value of xs. It returns an error for an empty
// sample.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		m = math.Min(m, x)
	}
	return m, nil
}

// Max returns the largest value of xs. It returns an error for an empty
// sample.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		m = math.Max(m, x)
	}
	return m, nil
}

// Ratio returns a/b, or 0 when b is zero; used for derived counter metrics
// where the denominator may legitimately be zero (e.g. no bus accesses).
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
