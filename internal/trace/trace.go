// Package trace generates the deterministic synthetic instruction streams
// that drive the timing simulator. A Generator is parameterized by a Params
// value (produced from a benchmark profile, see internal/profiles) and emits
// a sequence of compute, load, store, branch and barrier records for one
// application thread.
//
// The streams encode the structural properties that determine the paper's
// counter metrics: a hot set that keeps most accesses L1-resident (the
// paper's "large amount of infrequently changing variables"), streaming and
// strided traversals over the thread's partition of the shared working set
// (prefetchable L2/bus traffic), random accesses (unprefetchable misses),
// loop-back branches (predictable) vs. data-dependent branches
// (unpredictable), a hot code loop plus occasional cold jumps (trace cache
// and ITLB pressure), and barrier-delimited parallel chunks with bounded
// imbalance.
package trace

import (
	"fmt"
	"math"
	"math/bits"

	"xeonomp/internal/mem"
)

// Kind classifies one emitted record.
type Kind uint8

// Record kinds.
const (
	Compute Kind = iota // one ALU/FPU micro-op
	Load
	Store
	Branch
	Barrier // end of a parallel chunk; the context must synchronize with its team
)

// String names the record kind.
func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "branch"
	case Barrier:
		return "barrier"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Instr is one record of the stream.
type Instr struct {
	Kind   Kind
	PC     uint64 // instruction address (all kinds except Barrier)
	Addr   uint64 // effective address for Load/Store
	Taken  bool   // Branch direction
	Target uint64 // Branch target when taken
}

// Params controls stream synthesis for one benchmark. All *Frac fields are
// fractions in [0,1]; the instruction-mix fractions must sum to at most 1
// (the remainder is Compute) and the pattern fractions are normalized over
// Hot/Seq/Stride/Rand.
type Params struct {
	// Instruction mix.
	LoadFrac   float64
	StoreFrac  float64
	BranchFrac float64

	// Memory access pattern mix (over loads+stores).
	HotFrac    float64 // small per-thread hot set, mostly L1-resident
	WarmFrac   float64 // medium per-thread set scanned cyclically; L2-resident when a thread has the L2 to itself
	SeqFrac    float64 // 8-byte unit-stride streaming over the partition
	StrideFrac float64 // fixed-stride traversal
	RandFrac   float64 // uniform random over the partition

	HotBytes    uint64  // hot set size per thread
	WarmBytes   uint64  // warm scan range per thread
	WarmStride  uint64  // warm scan step; default 192 (3 lines, beyond the prefetcher's reach)
	StrideBytes uint64  // stride for the strided pattern
	SharedFrac  float64 // fraction of streaming/random accesses hitting the shared region (vs. private)

	// Branch behaviour. Data-dependent branches follow a repeating 64-bit
	// outcome pattern — learnable by a global-history predictor when one
	// thread runs alone, but destroyed when two contexts interleave in a
	// shared history register — with DataEntropy of truly random flips.
	LoopLen        int     // instructions per inner-loop body (one loop-back branch each)
	DataBranchFrac float64 // fraction of branches that are data-dependent
	DataPattern    uint64  // repeating outcome pattern for data-dependent branches
	DataEntropy    float64 // probability a data-dependent outcome is flipped randomly

	// Code behaviour.
	CodeHotBytes uint64  // hot code loop footprint
	CodeJumpProb float64 // probability an instruction jumps somewhere cold in the code region

	// Parallel structure.
	ChunkInstr   int64   // instructions between barriers (per thread)
	ImbalancePct float64 // ± relative jitter of chunk length across threads

	// MLP is the fraction of an L2-miss latency hidden by overlapping
	// independent misses; consumed by the pipeline model, carried here so a
	// profile fully describes a workload's timing behaviour.
	MLP float64

	// DepProb is the probability that an instruction ends its context's
	// issue group for the cycle (a data-dependency bubble). It sets the
	// workload's inherent ILP and hence its compute-bound CPI floor; also
	// consumed by the pipeline model.
	DepProb float64
}

// Validate performs sanity checks on the parameters.
func (p Params) Validate() error {
	sumMix := p.LoadFrac + p.StoreFrac + p.BranchFrac
	if p.LoadFrac < 0 || p.StoreFrac < 0 || p.BranchFrac < 0 || sumMix > 1.0001 {
		return fmt.Errorf("trace: instruction mix fractions invalid (sum %.3f)", sumMix)
	}
	if p.HotFrac < 0 || p.WarmFrac < 0 || p.SeqFrac < 0 || p.StrideFrac < 0 || p.RandFrac < 0 {
		return fmt.Errorf("trace: negative pattern fraction")
	}
	if p.HotFrac+p.WarmFrac+p.SeqFrac+p.StrideFrac+p.RandFrac <= 0 {
		return fmt.Errorf("trace: pattern fractions all zero")
	}
	if p.SharedFrac < 0 || p.SharedFrac > 1 {
		return fmt.Errorf("trace: shared fraction %.3f", p.SharedFrac)
	}
	if p.LoopLen <= 1 {
		return fmt.Errorf("trace: loop length %d", p.LoopLen)
	}
	if p.ChunkInstr <= 0 {
		return fmt.Errorf("trace: chunk length %d", p.ChunkInstr)
	}
	if p.MLP < 0 || p.MLP >= 1 {
		return fmt.Errorf("trace: MLP %.3f out of [0,1)", p.MLP)
	}
	if p.DepProb < 0 || p.DepProb > 1 {
		return fmt.Errorf("trace: DepProb %.3f out of [0,1]", p.DepProb)
	}
	if p.DataEntropy < 0 || p.DataEntropy > 1 || p.DataBranchFrac < 0 || p.DataBranchFrac > 1 {
		return fmt.Errorf("trace: branch probabilities out of range")
	}
	if p.CodeJumpProb < 0 || p.CodeJumpProb > 1 {
		return fmt.Errorf("trace: code jump probability out of range")
	}
	return nil
}

// rng is a SplitMix64 generator: deterministic, seedable, and cheap.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform float64 in [0,1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// bits returns the raw 53-bit draw behind float(). Comparing it against a
// threshold(p) value is exactly equivalent to float() < p without the
// integer→float conversion — worth it on draws made once per instruction.
func (r *rng) bits() uint64 {
	return r.next() >> 11
}

// threshold converts probability p to the integer bound q with
// float() < p ⟺ bits() < q. The division in float() is exact (power of
// two), so the comparison holds iff the draw is below ⌈p·2^53⌉; for
// integral p·2^53 the strict compare makes the same bound right.
func threshold(p float64) uint64 {
	return uint64(math.Ceil(p * (1 << 53)))
}

// below returns a uniform value in [0,n). n must be positive.
func (r *rng) below(n uint64) uint64 {
	return r.next() % n
}

// divisor precomputes an exact remainder-by-constant: rem(x) == x%n for
// every x, via two multiplies (round-up reciprocal with one fixup step)
// instead of a hardware divide — the divide was the single most expensive
// instruction on the address-generation path. Divisors outside [2, 2^63)
// (never produced by real layouts) take the plain % path, so the identity
// holds unconditionally.
type divisor struct {
	n     uint64
	magic uint64 // ⌈2^64/n⌉; 0 selects the fallback path
}

func newDivisor(n uint64) divisor {
	d := divisor{n: n}
	if n >= 2 && n < 1<<63 {
		d.magic = ^uint64(0)/n + 1
	}
	return d
}

// rem returns x % d.n. With magic set, q = ⌊x·⌈2^64/n⌉ / 2^64⌋ is either
// the true quotient or one above it; in the latter case the subtraction
// wraps to [2^64-n, 2^64), disjoint from true remainders for n < 2^63, so
// one wrapping add of n restores exactness.
func (d divisor) rem(x uint64) uint64 {
	if d.magic == 0 {
		if d.n <= 1 {
			return 0
		}
		return x % d.n
	}
	q, _ := bits.Mul64(d.magic, x)
	r := x - q*d.n
	if r >= d.n {
		r += d.n
	}
	return r
}

// Generator produces one thread's stream.
type Generator struct {
	p      Params
	layout *mem.Layout
	tid    int
	budget int64 // remaining instructions (barriers excluded)
	rng    rng

	// Pattern cursors.
	pc           uint64
	sharedPart   mem.Region // this thread's partition of the shared region
	privStream   mem.Region // private region above the hot+warm sets
	warmRegion   mem.Region
	warmCursor   uint64
	seqShared    uint64
	seqPriv      uint64
	strideShared uint64
	stridePriv   uint64

	// Code-walk state: execution cycles through fixed windows of LoopLen
	// instructions inside the hot code region; the last slot of a window
	// is its loop-back branch. Cold jumps are straight-line excursions
	// into the rest of the code region.
	winBase     uint64
	loopIter    uint64
	coldLeft    int    // instructions left in a cold excursion
	coldResume  uint64 // hot pc to resume after the excursion
	chunksLeft  int64  // parallel chunks (barrier intervals) still to run
	effChunk    int64  // effective chunk length (budget / chunk count)
	chunkLeft   int64  // instructions left in the current chunk
	pendBarrier bool
	dataBranchN uint64

	// Normalized pattern thresholds.
	hotT, warmT, seqT, strideT float64

	// Hot-path caches, all pure functions of construction-time state (they
	// consume no RNG, so the emitted stream is byte-identical with or
	// without them). sites memoizes the per-PC site classification over the
	// hot code span: kinds are a pure function of the PC, and hot-loop PCs
	// repeat thousands of times, so the two pcMix hashes per visit were a
	// measurable slice of a study's wall time.
	hotN     uint64     // hotSpan(), computed once
	coldSpan uint64     // code bytes above the hot span
	canJump  bool       // the cold-excursion draw in Next is live
	priv     mem.Region // layout.Private[tid]
	hotB     uint64     // hot-set size clamped to the private region

	// Exact-remainder reciprocals for the three variable moduli on the
	// address/jump generation paths (see divisor).
	hotDiv, shDiv, pvDiv, coldDiv divisor

	sites []uint8 // 0 = not yet classified, else site* constants

	// Integer-domain probability bounds for the per-instruction draws
	// (see threshold): same RNG consumption, same outcomes, no
	// integer→float conversion per draw.
	hotTi, warmTi, seqTi, strideTi uint64
	sharedTi, jumpTi, entropyTi    uint64
}

// biasTi is threshold(0.96), the structured-branch taken bias.
var biasTi = threshold(0.96)

// Site classification codes for the sites memo (0 means "not yet
// classified", so every real code is non-zero).
const (
	siteLoad = iota + 1
	siteStore
	siteBranchData  // data-dependent branch site
	siteBranchPlain // structured, strongly-biased branch site
	siteCompute
)

// NewGenerator builds the stream generator for thread tid of a program with
// the given layout. budget is the number of instructions the thread will
// retire; seed makes distinct programs (and repeated trials) reproducible.
func NewGenerator(p Params, layout *mem.Layout, tid int, budget int64, seed uint64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if tid < 0 || tid >= layout.Threads() {
		return nil, fmt.Errorf("trace: tid %d outside layout with %d threads", tid, layout.Threads())
	}
	if budget <= 0 {
		return nil, fmt.Errorf("trace: budget %d", budget)
	}
	total := p.HotFrac + p.WarmFrac + p.SeqFrac + p.StrideFrac + p.RandFrac
	g := &Generator{
		p:       p,
		layout:  layout,
		tid:     tid,
		budget:  budget,
		rng:     rng{s: seed ^ (uint64(tid)+1)*0xa0761d6478bd642f},
		pc:      layout.Code.Base,
		hotT:    p.HotFrac / total,
		warmT:   (p.HotFrac + p.WarmFrac) / total,
		seqT:    (p.HotFrac + p.WarmFrac + p.SeqFrac) / total,
		strideT: (p.HotFrac + p.WarmFrac + p.SeqFrac + p.StrideFrac) / total,
	}
	g.winBase = layout.Code.Base
	// Static partition of the shared region, mirroring an OpenMP static
	// schedule: thread t owns the t-th contiguous slice.
	n := uint64(layout.Threads())
	part := layout.Shared.Size / n
	if part < 64 {
		part = layout.Shared.Size // degenerate tiny region: everyone shares it all
		g.sharedPart = layout.Shared
	} else {
		g.sharedPart = mem.Region{Base: layout.Shared.Base + uint64(tid)*part, Size: part}
	}
	g.seqShared = g.sharedPart.Base
	g.strideShared = g.sharedPart.Base
	// Private streaming happens above the hot and warm sets so it does not
	// continuously evict them.
	priv := layout.Private[tid]
	wb := p.WarmBytes
	if p.HotBytes+wb > priv.Size {
		wb = 0
	}
	g.warmRegion = mem.Region{Base: priv.Base + p.HotBytes, Size: wb}
	if wb == 0 {
		g.warmRegion = priv
	}
	g.warmCursor = g.warmRegion.Base
	off := p.HotBytes + wb
	if off+4096 > priv.Size {
		off = 0
	}
	g.privStream = mem.Region{Base: priv.Base + off, Size: priv.Size - off}
	g.seqPriv = g.privStream.Base
	g.stridePriv = g.privStream.Base

	// Equal chunk COUNT across the team (every thread of a team gets the
	// same budget and ChunkInstr, so the same count): OpenMP threads all
	// pass the same barriers. The chunk count is rounded so the emitted
	// total tracks the budget, and jitter affects only chunk length.
	g.chunksLeft = (budget + p.ChunkInstr/2) / p.ChunkInstr
	if g.chunksLeft < 1 {
		g.chunksLeft = 1
	}
	g.effChunk = budget / g.chunksLeft
	if g.effChunk < 1 {
		g.effChunk = 1
	}
	g.hotN = g.hotSpan()
	g.coldSpan = layout.Code.Size - g.hotN
	g.canJump = g.coldSpan >= uint64(p.LoopLen)*4 && p.CodeJumpProb > 0
	g.priv = layout.Private[tid]
	g.hotB = p.HotBytes
	if g.hotB == 0 || g.hotB > g.priv.Size {
		g.hotB = g.priv.Size
	}
	g.sites = make([]uint8, g.hotN/4)
	g.hotTi = threshold(g.hotT)
	g.warmTi = threshold(g.warmT)
	g.seqTi = threshold(g.seqT)
	g.strideTi = threshold(g.strideT)
	g.sharedTi = threshold(p.SharedFrac)
	g.jumpTi = threshold(p.CodeJumpProb)
	g.entropyTi = threshold(p.DataEntropy)
	g.hotDiv = newDivisor(g.hotB)
	g.shDiv = newDivisor(g.sharedPart.Size)
	g.pvDiv = newDivisor(g.privStream.Size)
	if g.canJump {
		g.coldDiv = newDivisor(g.coldSpan - uint64(p.LoopLen)*4 + 4)
	}
	g.startChunk()
	return g, nil
}

// Params returns the generator's parameters.
func (g *Generator) Params() Params { return g.p }

// Remaining returns the instruction budget left.
func (g *Generator) Remaining() int64 { return g.budget }

func (g *Generator) startChunk() {
	jit := 1.0
	if g.p.ImbalancePct > 0 {
		jit = 1 + g.p.ImbalancePct*(2*g.rng.float()-1)
	}
	g.chunkLeft = int64(float64(g.effChunk) * jit)
	if g.chunkLeft < 1 {
		g.chunkLeft = 1
	}
}

// pcMix deterministically maps an instruction address to a uniform value in
// [0,1). Instruction kinds are a pure function of the PC, as in real code:
// a given instruction is always a load, always a branch, and so on. This is
// what lets a global-history branch predictor learn the stream — the branch
// sites repeat every pass over the code loop.
func pcMix(pc uint64) float64 {
	z := pc * 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// advance moves a cursor by step within region r, wrapping at the end.
func advance(cur uint64, step uint64, r mem.Region) uint64 {
	next := cur + step
	if next >= r.End() {
		return r.Base + (next-r.Base)%r.Size
	}
	return next
}

func (g *Generator) dataAddr() uint64 {
	r := g.rng.bits()
	switch {
	case r < g.hotTi:
		// Hot set at the base of the private region.
		return g.priv.Base + g.hotDiv.rem(g.rng.next())&^7
	case r < g.warmTi:
		// Warm set just above the hot set: a cyclic strided scan, so its
		// reuse distance is its footprint and it stays L2-resident exactly
		// when one thread owns the L2.
		step := g.p.WarmStride
		if step == 0 {
			step = 192
		}
		g.warmCursor = advance(g.warmCursor, step, g.warmRegion)
		return g.warmCursor
	case r < g.seqTi:
		if g.rng.bits() < g.sharedTi {
			g.seqShared = advance(g.seqShared, 8, g.sharedPart)
			return g.seqShared
		}
		g.seqPriv = advance(g.seqPriv, 8, g.privStream)
		return g.seqPriv
	case r < g.strideTi:
		step := g.p.StrideBytes
		if step == 0 {
			step = 64
		}
		if g.rng.bits() < g.sharedTi {
			g.strideShared = advance(g.strideShared, step, g.sharedPart)
			return g.strideShared
		}
		g.stridePriv = advance(g.stridePriv, step, g.privStream)
		return g.stridePriv
	default:
		if g.rng.bits() < g.sharedTi {
			return g.sharedPart.Base + g.shDiv.rem(g.rng.next())&^7
		}
		return g.privStream.Base + g.pvDiv.rem(g.rng.next())&^7
	}
}

// hotSpan returns the byte length of the hot code area, clamped to the code
// region and to at least one loop window.
func (g *Generator) hotSpan() uint64 {
	hot := g.p.CodeHotBytes
	if hot == 0 || hot > g.layout.Code.Size {
		hot = g.layout.Code.Size
	}
	win := uint64(g.p.LoopLen) * 4
	if hot < win {
		hot = win
	}
	return hot
}

// classify derives the site code for pc from its hash. Kinds are a pure
// function of the PC, so branch sites are stable across passes and a
// history-based predictor can learn the stream. classify consumes no RNG.
func (g *Generator) classify(pc uint64) uint8 {
	r := pcMix(pc)
	switch {
	case r < g.p.LoadFrac:
		return siteLoad
	case r < g.p.LoadFrac+g.p.StoreFrac:
		return siteStore
	case r < g.p.LoadFrac+g.p.StoreFrac+g.p.BranchFrac:
		// Whether a branch site is data-dependent is also a property of
		// the site, not of the visit.
		if pcMix(pc^0xabcd1234) < g.p.DataBranchFrac {
			return siteBranchData
		}
		return siteBranchPlain
	default:
		return siteCompute
	}
}

// siteKind returns the site code for pc, memoized over the hot code span.
// Cold-excursion PCs (above the span) are classified on the fly — they are
// a fraction of a percent of the stream.
func (g *Generator) siteKind(pc uint64) uint8 {
	if off := pc - g.layout.Code.Base; off < g.hotN {
		i := off >> 2
		k := g.sites[i]
		if k == 0 {
			k = g.classify(pc)
			g.sites[i] = k
		}
		return k
	}
	return g.classify(pc)
}

// emitKind produces a non-loop-back record for the instruction at pc.
func (g *Generator) emitKind(pc uint64, in *Instr) {
	switch g.siteKind(pc) {
	case siteLoad:
		*in = Instr{Kind: Load, PC: pc, Addr: g.dataAddr()}
	case siteStore:
		*in = Instr{Kind: Store, PC: pc, Addr: g.dataAddr()}
	case siteBranchData:
		// Data-dependent: repeating pattern plus entropy flips.
		pat := g.p.DataPattern
		if pat == 0 {
			pat = 0xb6db6db6db6db6db // period-3 "110" pattern
		}
		taken := pat>>(g.dataBranchN%64)&1 == 1
		g.dataBranchN++
		if g.p.DataEntropy > 0 && g.rng.bits() < g.entropyTi {
			taken = g.rng.bits() < 1<<52 // fair coin
		}
		*in = Instr{Kind: Branch, PC: pc, Taken: taken, Target: pc + 16}
	case siteBranchPlain:
		// Structured non-loop branch: strongly biased taken.
		taken := g.rng.bits() < biasTi
		*in = Instr{Kind: Branch, PC: pc, Taken: taken, Target: pc + 16}
	default:
		*in = Instr{Kind: Compute, PC: pc}
	}
}

// WarmSet returns the line-aligned addresses of the thread's warm-scan
// footprint, used by the machine model to pre-establish steady-state cache
// contents before measurement.
func (g *Generator) WarmSet() []uint64 {
	if g.p.WarmFrac <= 0 {
		return nil
	}
	step := g.p.WarmStride
	if step == 0 {
		step = 192
	}
	seen := make(map[uint64]struct{})
	var out []uint64
	for cur := g.warmRegion.Base; cur < g.warmRegion.End(); cur += step {
		line := cur &^ 63
		if _, ok := seen[line]; !ok {
			seen[line] = struct{}{}
			out = append(out, line)
		}
	}
	return out
}

// HotSet returns the line-aligned addresses of the thread's hot set.
func (g *Generator) HotSet() []uint64 {
	if g.p.HotFrac <= 0 || g.p.HotBytes == 0 {
		return nil
	}
	priv := g.layout.Private[g.tid]
	hb := g.p.HotBytes
	if hb > priv.Size {
		hb = priv.Size
	}
	var out []uint64
	for cur := priv.Base; cur < priv.Base+hb; cur += 64 {
		out = append(out, cur&^63)
	}
	return out
}

// Next fills in the next record and reports whether one was produced. The
// stream is a fixed number of barrier-terminated chunks; after the final
// barrier it returns false forever. Barrier records do not consume budget.
func (g *Generator) Next(in *Instr) bool {
	if g.pendBarrier {
		g.pendBarrier = false
		g.chunksLeft--
		if g.chunksLeft > 0 {
			g.startChunk()
		}
		*in = Instr{Kind: Barrier}
		return true
	}
	if g.chunksLeft <= 0 {
		return false
	}
	if g.chunkLeft <= 0 {
		// Shouldn't happen (chunks start positive), but terminate cleanly.
		g.pendBarrier = true
		return g.Next(in)
	}
	g.budget--
	g.chunkLeft--
	if g.chunkLeft == 0 {
		g.pendBarrier = true
	}

	// Cold excursion in progress: straight-line walk, no loop-backs.
	if g.coldLeft > 0 {
		pc := g.pc
		g.coldLeft--
		if g.coldLeft == 0 {
			g.pc = g.coldResume
		} else {
			g.pc += 4
		}
		g.emitKind(pc, in)
		return true
	}

	// Occasionally leave the hot loops for outer/bookkeeping code in the
	// cold part of the code region, above the hot span (trace cache and
	// ITLB pressure). Cold code is straight-line and never overlaps the
	// hot loop tiles, so every PC keeps a single role.
	if g.canJump && g.rng.bits() < g.jumpTi {
		g.coldResume = g.pc
		g.pc = g.layout.Code.Base + g.hotN + g.coldDiv.rem(g.rng.next())&^3
		g.coldLeft = g.p.LoopLen
		pc := g.pc
		g.coldLeft--
		g.pc += 4
		g.emitKind(pc, in)
		return true
	}

	// Hot loop window: the last slot is the loop-back branch, taken except
	// when the iteration counter completes an outer trip of 64, at which
	// point execution advances to the next window of the hot region.
	pc := g.pc
	win := uint64(g.p.LoopLen) * 4
	if pc >= g.winBase+win-4 {
		g.loopIter++
		taken := g.loopIter%64 != 0
		if taken {
			g.pc = g.winBase
		} else {
			nb := g.winBase + win
			if nb+win > g.layout.Code.Base+g.hotN {
				nb = g.layout.Code.Base
			}
			g.winBase = nb
			g.pc = nb
		}
		*in = Instr{Kind: Branch, PC: pc, Taken: taken, Target: g.winBase}
		return true
	}
	g.pc = pc + 4
	g.emitKind(pc, in)
	return true
}
