package trace

import (
	"math"
	"testing"
	"testing/quick"

	"xeonomp/internal/mem"
)

func testParams() Params {
	return Params{
		LoadFrac: 0.30, StoreFrac: 0.10, BranchFrac: 0.10,
		HotFrac: 0.80, WarmFrac: 0.05, SeqFrac: 0.08, StrideFrac: 0.02, RandFrac: 0.05,
		HotBytes: 4096, WarmBytes: 96 * 192, WarmStride: 192, StrideBytes: 128,
		SharedFrac: 0.7,
		LoopLen:    24, DataBranchFrac: 0.3, DataEntropy: 0.1,
		CodeHotBytes: 4096, CodeJumpProb: 0.001,
		ChunkInstr: 5000, ImbalancePct: 0.05,
		MLP: 0.5, DepProb: 0.2,
	}
}

func testLayout(t *testing.T, threads int) *mem.Layout {
	t.Helper()
	l, err := mem.NewLayout(1, threads, 64<<10, 8<<20, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestParamsValidate(t *testing.T) {
	if err := testParams().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Params){
		func(p *Params) { p.LoadFrac = 0.9; p.StoreFrac = 0.9 },
		func(p *Params) { p.LoadFrac = -0.1 },
		func(p *Params) { p.HotFrac, p.WarmFrac, p.SeqFrac, p.StrideFrac, p.RandFrac = 0, 0, 0, 0, 0 },
		func(p *Params) { p.RandFrac = -1 },
		func(p *Params) { p.SharedFrac = 1.5 },
		func(p *Params) { p.LoopLen = 1 },
		func(p *Params) { p.ChunkInstr = 0 },
		func(p *Params) { p.MLP = 1.0 },
		func(p *Params) { p.DepProb = 2 },
		func(p *Params) { p.DataEntropy = -0.5 },
		func(p *Params) { p.CodeJumpProb = 1.5 },
	}
	for i, m := range mutations {
		p := testParams()
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate params", i)
		}
	}
}

func TestGeneratorErrors(t *testing.T) {
	l := testLayout(t, 2)
	if _, err := NewGenerator(testParams(), l, 5, 100, 1); err == nil {
		t.Error("tid out of range should fail")
	}
	if _, err := NewGenerator(testParams(), l, 0, 0, 1); err == nil {
		t.Error("zero budget should fail")
	}
	bad := testParams()
	bad.LoopLen = 0
	if _, err := NewGenerator(bad, l, 0, 100, 1); err == nil {
		t.Error("invalid params should fail")
	}
}

func collect(t *testing.T, g *Generator) []Instr {
	t.Helper()
	var out []Instr
	var in Instr
	for g.Next(&in) {
		out = append(out, in)
		if len(out) > 10_000_000 {
			t.Fatal("generator did not terminate")
		}
	}
	return out
}

func TestDeterminism(t *testing.T) {
	l := testLayout(t, 2)
	g1, _ := NewGenerator(testParams(), l, 0, 20000, 42)
	g2, _ := NewGenerator(testParams(), l, 0, 20000, 42)
	s1 := collect(t, g1)
	s2 := collect(t, g2)
	if len(s1) != len(s2) {
		t.Fatalf("lengths differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, s1[i], s2[i])
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	l := testLayout(t, 2)
	g1, _ := NewGenerator(testParams(), l, 0, 5000, 1)
	g2, _ := NewGenerator(testParams(), l, 0, 5000, 2)
	s1 := collect(t, g1)
	s2 := collect(t, g2)
	same := 0
	for i := range s1 {
		if i < len(s2) && s1[i] == s2[i] {
			same++
		}
	}
	if same == len(s1) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestBarrierCountEqualAcrossThreads(t *testing.T) {
	// The invariant that keeps teams deadlock-free: every thread of a team
	// (same budget, same ChunkInstr) emits the same number of barriers.
	l := testLayout(t, 4)
	counts := make([]int, 4)
	for tid := 0; tid < 4; tid++ {
		g, err := NewGenerator(testParams(), l, tid, 20000, 7)
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range collect(t, g) {
			if in.Kind == Barrier {
				counts[tid]++
			}
		}
	}
	for tid := 1; tid < 4; tid++ {
		if counts[tid] != counts[0] {
			t.Fatalf("barrier counts differ: %v", counts)
		}
	}
	if counts[0] != 20000/5000 {
		t.Fatalf("barrier count = %d, want %d", counts[0], 20000/5000)
	}
}

func TestBarrierCountProperty(t *testing.T) {
	l := testLayout(t, 4)
	f := func(budgetSeed uint16, seed uint8) bool {
		budget := int64(budgetSeed)%50000 + 1000
		var counts [4]int
		for tid := 0; tid < 4; tid++ {
			g, err := NewGenerator(testParams(), l, tid, budget, uint64(seed))
			if err != nil {
				return false
			}
			var in Instr
			for g.Next(&in) {
				if in.Kind == Barrier {
					counts[tid]++
				}
			}
		}
		return counts[0] == counts[1] && counts[1] == counts[2] && counts[2] == counts[3]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestInstructionMixApproximatesParams(t *testing.T) {
	l := testLayout(t, 1)
	p := testParams()
	g, _ := NewGenerator(p, l, 0, 200000, 3)
	var loads, stores, branches, computes, total int
	for _, in := range collect(t, g) {
		switch in.Kind {
		case Load:
			loads++
		case Store:
			stores++
		case Branch:
			branches++
		case Compute:
			computes++
		default:
			continue
		}
		total++
	}
	lf := float64(loads) / float64(total)
	sf := float64(stores) / float64(total)
	// Branches include the per-window loop-backs on top of BranchFrac.
	bf := float64(branches) / float64(total)
	if math.Abs(lf-p.LoadFrac) > 0.03 {
		t.Errorf("load fraction %v, want ~%v", lf, p.LoadFrac)
	}
	if math.Abs(sf-p.StoreFrac) > 0.03 {
		t.Errorf("store fraction %v, want ~%v", sf, p.StoreFrac)
	}
	wantB := p.BranchFrac + 1/float64(p.LoopLen)
	if math.Abs(bf-wantB) > 0.03 {
		t.Errorf("branch fraction %v, want ~%v", bf, wantB)
	}
	if computes == 0 {
		t.Error("no compute instructions")
	}
}

func TestAddressesStayInLayout(t *testing.T) {
	l := testLayout(t, 4)
	for tid := 0; tid < 4; tid++ {
		g, _ := NewGenerator(testParams(), l, tid, 50000, 11)
		for _, in := range collect(t, g) {
			switch in.Kind {
			case Load, Store:
				if !l.Shared.Contains(in.Addr) && !l.Private[tid].Contains(in.Addr) {
					t.Fatalf("tid %d data address %#x outside its regions", tid, in.Addr)
				}
			case Branch, Compute:
				if !l.Code.Contains(in.PC) {
					t.Fatalf("pc %#x outside code region", in.PC)
				}
			}
		}
	}
}

func TestThreadsUseOwnPrivateRegions(t *testing.T) {
	l := testLayout(t, 2)
	g0, _ := NewGenerator(testParams(), l, 0, 20000, 5)
	for _, in := range collect(t, g0) {
		if in.Kind == Load || in.Kind == Store {
			if l.Private[1].Contains(in.Addr) {
				t.Fatalf("thread 0 touched thread 1's private region: %#x", in.Addr)
			}
		}
	}
}

func TestKindIsPureFunctionOfPC(t *testing.T) {
	// The same PC must always carry the same instruction kind — the
	// property that makes branch sites stable for the predictor.
	l := testLayout(t, 1)
	g, _ := NewGenerator(testParams(), l, 0, 100000, 9)
	kinds := map[uint64]Kind{}
	for _, in := range collect(t, g) {
		if in.Kind == Barrier {
			continue
		}
		// Loop-back branch sites are positional; they are branches at a
		// fixed PC too, so the check holds for all kinds.
		if prev, ok := kinds[in.PC]; ok && prev != in.Kind {
			t.Fatalf("pc %#x changed kind %v -> %v", in.PC, prev, in.Kind)
		}
		kinds[in.PC] = in.Kind
	}
}

func TestWarmSetMatchesFootprint(t *testing.T) {
	l := testLayout(t, 2)
	p := testParams()
	g, _ := NewGenerator(p, l, 0, 1000, 1)
	ws := g.WarmSet()
	want := int(p.WarmBytes / p.WarmStride) // 192-byte steps over 96 steps, all distinct lines
	if len(ws) != want {
		t.Fatalf("warm set %d lines, want %d", len(ws), want)
	}
	seen := map[uint64]bool{}
	for _, a := range ws {
		if a%64 != 0 {
			t.Fatalf("warm address %#x not line aligned", a)
		}
		if seen[a] {
			t.Fatalf("duplicate warm line %#x", a)
		}
		seen[a] = true
		if !l.Private[0].Contains(a) {
			t.Fatalf("warm line %#x outside private region", a)
		}
	}
}

func TestHotSetCoversHotBytes(t *testing.T) {
	l := testLayout(t, 1)
	p := testParams()
	g, _ := NewGenerator(p, l, 0, 1000, 1)
	hs := g.HotSet()
	if len(hs) != int(p.HotBytes/64) {
		t.Fatalf("hot set %d lines, want %d", len(hs), p.HotBytes/64)
	}
}

func TestBudgetApproximatelyHonored(t *testing.T) {
	l := testLayout(t, 1)
	p := testParams()
	p.ImbalancePct = 0
	g, _ := NewGenerator(p, l, 0, 25000, 1)
	n := 0
	for _, in := range collect(t, g) {
		if in.Kind != Barrier {
			n++
		}
	}
	if n != 25000 {
		t.Fatalf("emitted %d instructions, want exactly 25000 without jitter", n)
	}
}

func TestRemaining(t *testing.T) {
	l := testLayout(t, 1)
	g, _ := NewGenerator(testParams(), l, 0, 10000, 1)
	if g.Remaining() != 10000 {
		t.Fatal("initial remaining wrong")
	}
	var in Instr
	g.Next(&in)
	if g.Remaining() >= 10000 {
		t.Fatal("remaining did not decrease")
	}
}

func TestParamsAccessor(t *testing.T) {
	l := testLayout(t, 1)
	p := testParams()
	g, _ := NewGenerator(p, l, 0, 10, 1)
	if g.Params().LoopLen != p.LoopLen {
		t.Fatal("params accessor wrong")
	}
}
