package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Stream is the instruction-stream abstraction the pipeline model executes:
// the live Generator implements it, and FileStream replays a recorded
// stream. WarmSet/HotSet expose the prewarm footprints; Params carries the
// timing knobs (MLP, DepProb) the cpu layer consumes.
type Stream interface {
	Next(in *Instr) bool
	Params() Params
	WarmSet() []uint64
	HotSet() []uint64
}

var (
	_ Stream = (*Generator)(nil)
	_ Stream = (*FileStream)(nil)
)

// Trace-file format (little endian):
//
//	magic   [6]byte  "XTRC01"
//	mlp     float64  (as IEEE bits)
//	depProb float64
//	nWarm   uint32, warm line addresses [nWarm]uint64
//	nHot    uint32, hot line addresses  [nHot]uint64
//	records: kind uint8; for Barrier nothing else; otherwise
//	         pc uint64; for Load/Store addr uint64; for Branch
//	         taken uint8 + target uint64
//	terminator: kind = 0xFF
const traceMagic = "XTRC01"

const recEnd = 0xFF

// WriteTrace drains src and writes it to w. It returns the number of
// non-barrier instructions written.
func WriteTrace(w io.Writer, src Stream) (int64, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return 0, err
	}
	le := binary.LittleEndian
	var scratch [8]byte
	writeU64 := func(v uint64) error {
		le.PutUint64(scratch[:], v)
		_, err := bw.Write(scratch[:])
		return err
	}
	p := src.Params()
	if err := binary.Write(bw, le, p.MLP); err != nil {
		return 0, err
	}
	if err := binary.Write(bw, le, p.DepProb); err != nil {
		return 0, err
	}
	for _, set := range [][]uint64{src.WarmSet(), src.HotSet()} {
		if err := binary.Write(bw, le, uint32(len(set))); err != nil {
			return 0, err
		}
		for _, a := range set {
			if err := writeU64(a); err != nil {
				return 0, err
			}
		}
	}

	var n int64
	var in Instr
	for src.Next(&in) {
		if err := bw.WriteByte(byte(in.Kind)); err != nil {
			return n, err
		}
		switch in.Kind {
		case Barrier:
			continue
		case Load, Store:
			if err := writeU64(in.PC); err != nil {
				return n, err
			}
			if err := writeU64(in.Addr); err != nil {
				return n, err
			}
		case Branch:
			if err := writeU64(in.PC); err != nil {
				return n, err
			}
			t := byte(0)
			if in.Taken {
				t = 1
			}
			if err := bw.WriteByte(t); err != nil {
				return n, err
			}
			if err := writeU64(in.Target); err != nil {
				return n, err
			}
		default: // Compute
			if err := writeU64(in.PC); err != nil {
				return n, err
			}
		}
		n++
	}
	if err := bw.WriteByte(recEnd); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// FileStream replays a recorded trace.
type FileStream struct {
	r       *bufio.Reader
	params  Params
	warm    []uint64
	hot     []uint64
	done    bool
	scratch [8]byte
	err     error
}

// NewFileStream parses the header of a recorded trace and prepares replay.
func NewFileStream(r io.Reader) (*FileStream, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	fs := &FileStream{r: br}
	le := binary.LittleEndian
	if err := binary.Read(br, le, &fs.params.MLP); err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	if err := binary.Read(br, le, &fs.params.DepProb); err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	// Replayed params must validate minimally for the cpu layer; fill the
	// fields the validator needs but replay never consults.
	fs.params.HotFrac = 1
	fs.params.LoopLen = 2
	fs.params.ChunkInstr = 1
	for i := 0; i < 2; i++ {
		var n uint32
		if err := binary.Read(br, le, &n); err != nil {
			return nil, fmt.Errorf("trace: header: %w", err)
		}
		set := make([]uint64, n)
		for j := range set {
			if err := binary.Read(br, le, &set[j]); err != nil {
				return nil, fmt.Errorf("trace: header: %w", err)
			}
		}
		if i == 0 {
			fs.warm = set
		} else {
			fs.hot = set
		}
	}
	return fs, nil
}

// Params returns the timing knobs recorded in the header.
func (fs *FileStream) Params() Params { return fs.params }

// WarmSet returns the recorded warm footprint.
func (fs *FileStream) WarmSet() []uint64 { return fs.warm }

// HotSet returns the recorded hot footprint.
func (fs *FileStream) HotSet() []uint64 { return fs.hot }

// Err reports a malformed-trace error encountered during replay (Next
// returns false on error; callers that care should check Err afterwards).
func (fs *FileStream) Err() error { return fs.err }

func (fs *FileStream) readU64(v *uint64) bool {
	if _, err := io.ReadFull(fs.r, fs.scratch[:]); err != nil {
		fs.err = fmt.Errorf("trace: truncated record: %w", err)
		fs.done = true
		return false
	}
	*v = binary.LittleEndian.Uint64(fs.scratch[:])
	return true
}

// Next replays the next record.
func (fs *FileStream) Next(in *Instr) bool {
	if fs.done {
		return false
	}
	k, err := fs.r.ReadByte()
	if err != nil {
		fs.err = fmt.Errorf("trace: truncated stream: %w", err)
		fs.done = true
		return false
	}
	if k == recEnd {
		fs.done = true
		return false
	}
	kind := Kind(k)
	switch kind {
	case Barrier:
		*in = Instr{Kind: Barrier}
		return true
	case Load, Store:
		var pc, addr uint64
		if !fs.readU64(&pc) || !fs.readU64(&addr) {
			return false
		}
		*in = Instr{Kind: kind, PC: pc, Addr: addr}
		return true
	case Branch:
		var pc, target uint64
		if !fs.readU64(&pc) {
			return false
		}
		t, err := fs.r.ReadByte()
		if err != nil {
			fs.err = fmt.Errorf("trace: truncated branch: %w", err)
			fs.done = true
			return false
		}
		if !fs.readU64(&target) {
			return false
		}
		*in = Instr{Kind: Branch, PC: pc, Taken: t == 1, Target: target}
		return true
	case Compute:
		var pc uint64
		if !fs.readU64(&pc) {
			return false
		}
		*in = Instr{Kind: Compute, PC: pc}
		return true
	default:
		fs.err = fmt.Errorf("trace: unknown record kind %d", k)
		fs.done = true
		return false
	}
}
