package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func recordStream(t *testing.T, budget int64) (*Generator, *bytes.Buffer) {
	t.Helper()
	l := testLayout(t, 2)
	g, err := NewGenerator(testParams(), l, 0, budget, 21)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := WriteTrace(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no records written")
	}
	// A fresh generator with identical parameters for comparison.
	g2, err := NewGenerator(testParams(), l, 0, budget, 21)
	if err != nil {
		t.Fatal(err)
	}
	return g2, &buf
}

func TestTraceRoundTrip(t *testing.T) {
	ref, buf := recordStream(t, 20000)
	fs, err := NewFileStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var a, b Instr
	i := 0
	for {
		ok1 := ref.Next(&a)
		ok2 := fs.Next(&b)
		if ok1 != ok2 {
			t.Fatalf("record %d: live=%v replay=%v", i, ok1, ok2)
		}
		if !ok1 {
			break
		}
		if a != b {
			t.Fatalf("record %d differs: live %+v replay %+v", i, a, b)
		}
		i++
	}
	if fs.Err() != nil {
		t.Fatalf("replay error: %v", fs.Err())
	}
}

func TestTraceHeaderCarriesTimingKnobs(t *testing.T) {
	ref, buf := recordStream(t, 1000)
	fs, err := NewFileStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if fs.Params().MLP != ref.Params().MLP || fs.Params().DepProb != ref.Params().DepProb {
		t.Fatal("timing knobs lost in the header")
	}
	if len(fs.WarmSet()) != len(ref.WarmSet()) || len(fs.HotSet()) != len(ref.HotSet()) {
		t.Fatal("prewarm footprints lost in the header")
	}
	if err := fs.Params().Validate(); err != nil {
		t.Fatalf("replayed params must validate: %v", err)
	}
}

func TestTraceRejectsBadMagic(t *testing.T) {
	if _, err := NewFileStream(strings.NewReader("NOTATRACE")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewFileStream(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestTraceTruncatedBodySurfacesError(t *testing.T) {
	_, buf := recordStream(t, 1000)
	raw := buf.Bytes()
	fs, err := NewFileStream(bytes.NewReader(raw[:len(raw)-9])) // cut mid-record
	if err != nil {
		t.Fatal(err)
	}
	var in Instr
	for fs.Next(&in) {
	}
	if fs.Err() == nil {
		t.Fatal("truncated trace replayed without error")
	}
}

func TestTraceTerminatorStopsReplay(t *testing.T) {
	_, buf := recordStream(t, 500)
	// Append garbage after the terminator: replay must stop cleanly first.
	raw := append(buf.Bytes(), 0xAB, 0xCD)
	fs, err := NewFileStream(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var in Instr
	n := 0
	for fs.Next(&in) {
		n++
	}
	if fs.Err() != nil {
		t.Fatalf("unexpected error: %v", fs.Err())
	}
	if n == 0 {
		t.Fatal("no records replayed")
	}
}

func TestWriteTracePreservesBarriers(t *testing.T) {
	l := testLayout(t, 2)
	g, err := NewGenerator(testParams(), l, 0, 20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := WriteTrace(&buf, g); err != nil {
		t.Fatal(err)
	}
	fs, err := NewFileStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	barriers := 0
	var in Instr
	for fs.Next(&in) {
		if in.Kind == Barrier {
			barriers++
		}
	}
	if barriers != 20000/5000 {
		t.Fatalf("replayed %d barriers, want %d", barriers, 20000/5000)
	}
}

// limitedWriter fails after n bytes, exercising write-error paths.
type limitedWriter struct {
	n int
}

func (w *limitedWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, io.ErrShortWrite
	}
	if len(p) > w.n {
		p = p[:w.n]
		w.n = 0
		return len(p), io.ErrShortWrite
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWriteTraceSurfacesWriteErrors(t *testing.T) {
	l := testLayout(t, 1)
	g, err := NewGenerator(testParams(), l, 0, 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteTrace(&limitedWriter{n: 64}, g); err == nil {
		t.Fatal("write error swallowed")
	}
}
