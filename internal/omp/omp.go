// Package omp is a small OpenMP-like runtime for Go, used by the functional
// NAS benchmark implementations in internal/npb. It provides fork-join
// parallel regions over a fixed-size thread team, static / dynamic / guided
// loop scheduling, a sense-reversing barrier, reductions, critical sections,
// and single/master constructs — the OpenMP subset the NAS OpenMP suite
// relies on.
//
// The runtime runs on real goroutines (one per team member, created per
// parallel region like a non-persistent OpenMP team) and is independent of
// the timing simulator: it exists so the benchmark kernels are genuine
// shared-memory parallel programs whose loop structure grounds the
// architectural profiles in internal/profiles.
package omp

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Team is a fixed-size thread team. The zero value is not usable; construct
// with NewTeam. A Team may execute any number of parallel regions, one at a
// time.
type Team struct {
	n       int
	barrier *Barrier
}

// NewTeam returns a team of n threads; n <= 0 selects runtime.GOMAXPROCS(0).
func NewTeam(n int) *Team {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Team{n: n, barrier: NewBarrier(n)}
}

// NumThreads returns the team size.
func (t *Team) NumThreads() int { return t.n }

// Context is the per-thread view inside a parallel region, passed to the
// region body. It identifies the thread and carries the team's
// synchronization primitives.
type Context struct {
	tid  int
	team *Team
	reg  *region
}

// TID returns the thread id in [0, NumThreads).
func (c *Context) TID() int { return c.tid }

// NumThreads returns the team size.
func (c *Context) NumThreads() int { return c.team.n }

// region holds per-parallel-region shared state.
type region struct {
	mu      sync.Mutex
	singles map[int]bool // single-construct occurrence -> claimed
	counter int64        // dynamic schedule cursor
	hi      int64
	chunk   int64
	guided  bool
	minChk  int64
}

// Parallel executes body on every team thread and waits for all of them
// (fork-join). Panics in workers are re-raised on the caller after all
// workers finish or die.
func (t *Team) Parallel(body func(c *Context)) {
	reg := &region{singles: map[int]bool{}}
	var wg sync.WaitGroup
	panics := make([]any, t.n)
	wg.Add(t.n)
	for tid := 0; tid < t.n; tid++ {
		go func(tid int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[tid] = r
				}
			}()
			body(&Context{tid: tid, team: t, reg: reg})
		}(tid)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// Barrier blocks until every team thread has called it (inside a parallel
// region).
func (c *Context) Barrier() { c.team.barrier.Wait() }

// For returns this thread's static partition [lo2, hi2) of the iteration
// space [lo, hi) — the OpenMP `schedule(static)` block distribution.
func (c *Context) For(lo, hi int) (int, int) {
	return StaticRange(lo, hi, c.tid, c.team.n)
}

// StaticRange computes the static block partition of [lo, hi) for thread
// tid of n. The first (hi-lo) mod n threads get one extra iteration.
func StaticRange(lo, hi, tid, n int) (int, int) {
	if hi <= lo {
		return lo, lo
	}
	total := hi - lo
	base := total / n
	rem := total % n
	var start int
	if tid < rem {
		start = lo + tid*(base+1)
		return start, start + base + 1
	}
	start = lo + rem*(base+1) + (tid-rem)*base
	return start, start + base
}

// Schedule identifies a loop scheduling policy.
type Schedule int

// Loop schedules.
const (
	Static Schedule = iota
	Dynamic
	Guided
)

// String names the schedule.
func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	default:
		return fmt.Sprintf("schedule(%d)", int(s))
	}
}

// ForEach runs body over [lo, hi) under the given schedule with the given
// chunk size (chunk <= 0 selects a default). It must be called by every
// team thread; it contains no implicit barrier (append c.Barrier() as
// needed, like `nowait` semantics).
func (c *Context) ForEach(lo, hi int, sched Schedule, chunk int, body func(i int)) {
	switch sched {
	case Static:
		if chunk <= 0 {
			b, e := c.For(lo, hi)
			for i := b; i < e; i++ {
				body(i)
			}
			return
		}
		// Round-robin chunked static schedule.
		for base := lo + c.tid*chunk; base < hi; base += c.team.n * chunk {
			end := base + chunk
			if end > hi {
				end = hi
			}
			for i := base; i < end; i++ {
				body(i)
			}
		}
	case Dynamic, Guided:
		if chunk <= 0 {
			chunk = 1
		}
		r := c.reg
		// First thread to arrive initializes the shared cursor for this
		// loop instance. Loops are separated by barriers in well-formed
		// OpenMP code, which is what makes this reuse safe.
		r.mu.Lock()
		if r.hi != int64(hi) || r.counter < int64(lo) || r.counter > int64(hi) {
			r.counter = int64(lo)
			r.hi = int64(hi)
			r.chunk = int64(chunk)
			r.guided = sched == Guided
			r.minChk = int64(chunk)
		}
		r.mu.Unlock()
		for {
			b, e := nextChunk(r, c.team.n)
			if b >= e {
				return
			}
			for i := b; i < e; i++ {
				body(int(i))
			}
		}
	default:
		panic(fmt.Sprintf("omp: unknown schedule %v", sched))
	}
}

func nextChunk(r *region, nthreads int) (int64, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counter >= r.hi {
		return r.hi, r.hi
	}
	size := r.chunk
	if r.guided {
		remaining := r.hi - r.counter
		size = remaining / int64(2*nthreads)
		if size < r.minChk {
			size = r.minChk
		}
	}
	b := r.counter
	e := b + size
	if e > r.hi {
		e = r.hi
	}
	r.counter = e
	return b, e
}

// Single executes f on exactly one thread of the team for this textual
// occurrence (identified by id, which must be unique per single construct
// within the region) and then barriers the team, matching OpenMP's implicit
// end-of-single barrier.
func (c *Context) Single(id int, f func()) {
	c.reg.mu.Lock()
	claimed := c.reg.singles[id]
	if !claimed {
		c.reg.singles[id] = true
	}
	c.reg.mu.Unlock()
	if !claimed {
		f()
		// Re-arm the construct for the next pass (after everyone has gone
		// through the barrier below, a later execution may claim it again).
		defer func() {
			c.reg.mu.Lock()
			delete(c.reg.singles, id)
			c.reg.mu.Unlock()
		}()
	}
	c.Barrier()
}

// Master executes f on thread 0 only, with no implied barrier.
func (c *Context) Master(f func()) {
	if c.tid == 0 {
		f()
	}
}

// Critical executes f under the team-wide mutual exclusion lock.
func (c *Context) Critical(f func()) {
	c.reg.mu.Lock()
	defer c.reg.mu.Unlock()
	f()
}

// Barrier is a reusable sense-reversing barrier for n participants.
type Barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	phase uint64
}

// NewBarrier creates a barrier for n participants.
func NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic("omp: barrier size must be positive")
	}
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until n goroutines have called Wait for the current phase.
func (b *Barrier) Wait() {
	b.mu.Lock()
	phase := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for phase == b.phase {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// ReduceFloat64 combines one float64 contribution per thread with op and
// returns the combined value on every thread. It is a full-team collective:
// every team thread must call Combine the same number of times. The reducer
// alternates between two accumulator slots, which makes it safely reusable
// across consecutive reductions and across parallel regions with a single
// barrier per reduction.
type ReduceFloat64 struct {
	mu    sync.Mutex
	round uint64
	slots [2]struct {
		acc float64
		n   int
	}
}

// NewReduceFloat64 returns a reusable reduction workspace. Create one per
// reduction variable, outside the parallel region.
func NewReduceFloat64() *ReduceFloat64 { return &ReduceFloat64{} }

// Combine folds v into the current round's accumulator using op and returns
// the team-wide result after a barrier. op must be associative and
// commutative (e.g. +, max).
func (r *ReduceFloat64) Combine(c *Context, v float64, op func(a, b float64) float64) float64 {
	size := c.team.n
	r.mu.Lock()
	slot := &r.slots[r.round%2]
	if slot.n == size {
		// Stale state from two rounds ago: first contribution of a new
		// round reusing this slot.
		slot.n = 0
	}
	if slot.n == 0 {
		slot.acc = v
	} else {
		slot.acc = op(slot.acc, v)
	}
	slot.n++
	if slot.n == size {
		// Round complete: subsequent Combine calls use the other slot.
		r.round++
	}
	r.mu.Unlock()

	// All contributions are in once every thread passes this barrier. The
	// slot cannot be reused before every thread has also contributed to
	// the NEXT reduction on the other slot, which cannot happen before it
	// returns from this one — so the read below is stable.
	c.Barrier()
	r.mu.Lock()
	out := slot.acc
	r.mu.Unlock()
	return out
}

// AtomicAddFloat64 atomically adds delta to the float64 encoded in *addr
// (as math.Float64bits) using a CAS loop, the moral equivalent of
// `#pragma omp atomic`.
func AtomicAddFloat64(addr *uint64, delta float64) {
	for {
		old := atomic.LoadUint64(addr)
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if atomic.CompareAndSwapUint64(addr, old, nw) {
			return
		}
	}
}
