package omp

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestNewTeamDefaults(t *testing.T) {
	if NewTeam(0).NumThreads() <= 0 {
		t.Fatal("default team empty")
	}
	if NewTeam(3).NumThreads() != 3 {
		t.Fatal("explicit team size wrong")
	}
}

func TestParallelRunsAllThreads(t *testing.T) {
	team := NewTeam(4)
	var seen [4]int32
	team.Parallel(func(c *Context) {
		atomic.AddInt32(&seen[c.TID()], 1)
		if c.NumThreads() != 4 {
			t.Error("NumThreads wrong inside region")
		}
	})
	for tid, n := range seen {
		if n != 1 {
			t.Fatalf("thread %d ran %d times", tid, n)
		}
	}
}

func TestParallelPropagatesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic to propagate")
		}
	}()
	NewTeam(3).Parallel(func(c *Context) {
		if c.TID() == 1 {
			panic("boom")
		}
	})
}

func TestStaticRangeCoversExactly(t *testing.T) {
	f := func(loRaw, sizeRaw uint16, nRaw uint8) bool {
		lo := int(loRaw % 1000)
		hi := lo + int(sizeRaw%5000)
		n := int(nRaw%16) + 1
		covered := make(map[int]int)
		for tid := 0; tid < n; tid++ {
			b, e := StaticRange(lo, hi, tid, n)
			if b > e {
				return false
			}
			for i := b; i < e; i++ {
				covered[i]++
			}
		}
		if len(covered) != hi-lo {
			return false
		}
		for i := lo; i < hi; i++ {
			if covered[i] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStaticRangeBalanced(t *testing.T) {
	// No thread may have more than one extra iteration.
	b0, e0 := StaticRange(0, 10, 0, 3)
	b2, e2 := StaticRange(0, 10, 2, 3)
	if (e0-b0)-(e2-b2) > 1 {
		t.Fatalf("imbalance: %d vs %d", e0-b0, e2-b2)
	}
}

func TestForEachSchedulesCoverExactlyOnce(t *testing.T) {
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		for _, chunk := range []int{0, 1, 7} {
			if sched == Static && chunk == 0 {
				// covered by the property test above via c.For
			}
			team := NewTeam(4)
			const n = 1000
			var hits [n]int32
			team.Parallel(func(c *Context) {
				c.ForEach(0, n, sched, chunk, func(i int) {
					atomic.AddInt32(&hits[i], 1)
				})
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("%v chunk=%d: iteration %d executed %d times", sched, chunk, i, h)
				}
			}
		}
	}
}

func TestForEachEmptyRange(t *testing.T) {
	team := NewTeam(2)
	ran := int32(0)
	team.Parallel(func(c *Context) {
		c.ForEach(5, 5, Static, 0, func(i int) { atomic.AddInt32(&ran, 1) })
		c.ForEach(5, 3, Dynamic, 2, func(i int) { atomic.AddInt32(&ran, 1) })
	})
	if ran != 0 {
		t.Fatal("empty ranges executed iterations")
	}
}

func TestDynamicScheduleBalancesUnevenWork(t *testing.T) {
	// With wildly uneven iteration costs, dynamic scheduling must give the
	// cheap-iteration threads more chunks. We only verify correctness of
	// coverage plus that multiple threads participated.
	team := NewTeam(4)
	const n = 400
	var who [n]int32
	team.Parallel(func(c *Context) {
		c.Barrier() // start the race together
		c.ForEach(0, n, Dynamic, 4, func(i int) {
			// Yield so the test is meaningful even on GOMAXPROCS=1, where
			// a non-yielding thread would drain the loop alone.
			runtime.Gosched()
			atomic.StoreInt32(&who[i], int32(c.TID())+1)
		})
	})
	participants := map[int32]bool{}
	for _, w := range who {
		if w == 0 {
			t.Fatal("iteration not executed")
		}
		participants[w] = true
	}
	if len(participants) < 2 {
		t.Fatal("dynamic schedule used a single thread")
	}
}

func TestGuidedChunksShrink(t *testing.T) {
	// Drive nextChunk directly to observe decreasing chunk sizes.
	r := &region{singles: map[int]bool{}}
	r.counter, r.hi, r.chunk, r.minChk, r.guided = 0, 1000, 4, 4, true
	var sizes []int64
	for {
		b, e := nextChunk(r, 4)
		if b >= e {
			break
		}
		sizes = append(sizes, e-b)
	}
	if len(sizes) < 3 {
		t.Fatalf("too few chunks: %v", sizes)
	}
	if !sort.SliceIsSorted(sizes, func(i, j int) bool { return sizes[i] > sizes[j] }) {
		t.Fatalf("guided chunks not non-increasing: %v", sizes)
	}
	var total int64
	for _, s := range sizes {
		total += s
	}
	if total != 1000 {
		t.Fatalf("guided chunks cover %d of 1000", total)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	team := NewTeam(8)
	var before, after int32
	team.Parallel(func(c *Context) {
		atomic.AddInt32(&before, 1)
		c.Barrier()
		// Every thread must observe all 8 pre-barrier increments.
		if atomic.LoadInt32(&before) != 8 {
			t.Error("barrier released early")
		}
		atomic.AddInt32(&after, 1)
	})
	if after != 8 {
		t.Fatal("not all threads passed the barrier")
	}
}

func TestBarrierReusable(t *testing.T) {
	team := NewTeam(4)
	var phase int32
	team.Parallel(func(c *Context) {
		for i := 0; i < 50; i++ {
			c.Barrier()
			if c.TID() == 0 {
				atomic.AddInt32(&phase, 1)
			}
			c.Barrier()
			if atomic.LoadInt32(&phase) != int32(i+1) {
				t.Errorf("phase skew at iteration %d", i)
				return
			}
		}
	})
}

func TestStandaloneBarrier(t *testing.T) {
	b := NewBarrier(3)
	var wg sync.WaitGroup
	var count int32
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			atomic.AddInt32(&count, 1)
			b.Wait()
			if atomic.LoadInt32(&count) != 3 {
				t.Error("standalone barrier released early")
			}
		}()
	}
	wg.Wait()
}

func TestNewBarrierPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBarrier(0)
}

func TestSingleRunsOnce(t *testing.T) {
	team := NewTeam(6)
	var ran int32
	team.Parallel(func(c *Context) {
		c.Single(1, func() { atomic.AddInt32(&ran, 1) })
	})
	if ran != 1 {
		t.Fatalf("single ran %d times", ran)
	}
}

func TestSingleRearmsAcrossPasses(t *testing.T) {
	team := NewTeam(4)
	var ran int32
	team.Parallel(func(c *Context) {
		for i := 0; i < 10; i++ {
			c.Single(1, func() { atomic.AddInt32(&ran, 1) })
		}
	})
	if ran != 10 {
		t.Fatalf("single across passes ran %d times, want 10", ran)
	}
}

func TestMasterOnlyThreadZero(t *testing.T) {
	team := NewTeam(4)
	var who int32 = -1
	team.Parallel(func(c *Context) {
		c.Master(func() { atomic.StoreInt32(&who, int32(c.TID())) })
	})
	if who != 0 {
		t.Fatalf("master ran on thread %d", who)
	}
}

func TestCriticalMutualExclusion(t *testing.T) {
	team := NewTeam(8)
	counter := 0 // unsynchronized on purpose: Critical must protect it
	team.Parallel(func(c *Context) {
		for i := 0; i < 1000; i++ {
			c.Critical(func() { counter++ })
		}
	})
	if counter != 8000 {
		t.Fatalf("critical lost updates: %d", counter)
	}
}

func TestReduceFloat64Sum(t *testing.T) {
	team := NewTeam(5)
	red := NewReduceFloat64()
	results := make([]float64, 5)
	team.Parallel(func(c *Context) {
		v := float64(c.TID() + 1)
		results[c.TID()] = red.Combine(c, v, func(a, b float64) float64 { return a + b })
	})
	for tid, r := range results {
		if r != 15 {
			t.Fatalf("thread %d saw reduction %v, want 15", tid, r)
		}
	}
}

func TestReduceFloat64Max(t *testing.T) {
	team := NewTeam(4)
	red := NewReduceFloat64()
	var got float64
	team.Parallel(func(c *Context) {
		v := float64((c.TID() * 7) % 5)
		r := red.Combine(c, v, func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		})
		if c.TID() == 0 {
			got = r
		}
	})
	if got != 4 {
		t.Fatalf("max reduction = %v, want 4", got)
	}
}

func TestReduceReusable(t *testing.T) {
	team := NewTeam(3)
	red := NewReduceFloat64()
	sum := func(a, b float64) float64 { return a + b }
	team.Parallel(func(c *Context) {
		for i := 0; i < 20; i++ {
			r := red.Combine(c, 1, sum)
			if r != 3 {
				t.Errorf("pass %d reduction %v, want 3", i, r)
				return
			}
		}
	})
}

func TestAtomicAddFloat64(t *testing.T) {
	var bits uint64
	team := NewTeam(8)
	team.Parallel(func(c *Context) {
		for i := 0; i < 1000; i++ {
			AtomicAddFloat64(&bits, 0.5)
		}
	})
	got := mathFrombits(bits)
	if got != 4000 {
		t.Fatalf("atomic add total %v, want 4000", got)
	}
}

func TestScheduleString(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" || Guided.String() != "guided" {
		t.Fatal("schedule names wrong")
	}
	if Schedule(99).String() == "" {
		t.Fatal("unknown schedule name empty")
	}
}

// mathFrombits is a test helper mirroring math.Float64frombits.
func mathFrombits(b uint64) float64 {
	return math.Float64frombits(b)
}
