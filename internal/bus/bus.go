// Package bus models the memory system below the L2 caches: one front-side
// bus (FSB) per physical chip, both feeding a shared dual-channel DDR-2
// memory controller. This is the layout the paper identifies as the dual-core
// Xeon's structural bottleneck — the two cores of a chip share one FSB, and
// the two chips share the memory controller.
//
// Timing is modeled with per-resource free-at clocks: a transaction occupies
// its chip's FSB for the line-transfer time at the FSB's effective
// bandwidth, then the least-loaded memory channel for the transfer time at
// the channel bandwidth, plus a fixed DRAM access latency. Queueing delay
// falls out of the free-at bookkeeping. The model is calibrated so that an
// unloaded read takes the paper's measured 136.85 ns and a saturating read
// stream achieves 3.57 GB/s from one chip and 4.43 GB/s from two
// (see internal/lmbench).
//
// Writes are modeled the way write-allocate hardware behaves: a store miss
// issues a read-for-ownership (RFO) and the dirty line is written back on
// eviction, so a streaming write moves two lines of traffic per line
// written. That doubling reproduces the paper's ~2x read/write bandwidth
// ratio without a separate write-path calibration.
package bus

import (
	"fmt"

	"xeonomp/internal/units"
)

// TxnType classifies FSB transactions, mirroring the bus-transaction
// breakdown the paper derives from the PMU (demand vs. prefetch traffic).
type TxnType int

// Transaction types.
const (
	DemandRead TxnType = iota // demand line fetch (load miss, ifetch miss)
	RFO                       // read-for-ownership (store miss)
	Writeback                 // dirty eviction
	Prefetch                  // hardware prefetcher fill
	numTxnTypes
)

var txnNames = [numTxnTypes]string{"demand_read", "rfo", "writeback", "prefetch"}

// String returns the transaction type name.
func (t TxnType) String() string {
	if t < 0 || t >= numTxnTypes {
		return fmt.Sprintf("txn(%d)", int(t))
	}
	return txnNames[t]
}

// IsRead reports whether the transaction moves a line from memory to the
// chip (reads, RFOs and prefetches) as opposed to chip-to-memory traffic.
func (t TxnType) IsRead() bool { return t != Writeback }

// MemConfig describes the shared memory controller.
type MemConfig struct {
	Channels         int     // independent DRAM channels
	ChannelBandwidth float64 // bytes/second per channel
	LatencyNs        float64 // unloaded end-to-end read latency target
	LineSize         int64
	Freq             units.Frequency // core frequency for cycle conversion
}

// Validate checks the configuration.
func (c MemConfig) Validate() error {
	if c.Channels <= 0 {
		return fmt.Errorf("bus: channels %d", c.Channels)
	}
	if c.ChannelBandwidth <= 0 {
		return fmt.Errorf("bus: channel bandwidth %g", c.ChannelBandwidth)
	}
	if c.LatencyNs <= 0 || c.LineSize <= 0 || c.Freq <= 0 {
		return fmt.Errorf("bus: incomplete memory config %+v", c)
	}
	return nil
}

// Memory is the dual-channel controller shared by every chip.
type Memory struct {
	cfg        MemConfig
	chFreeAt   []int64
	chOccupy   int64 // cycles one line occupies one channel
	readBytes  uint64
	writeBytes uint64
}

// NewMemory builds the shared controller, panicking on invalid config.
func NewMemory(cfg MemConfig) *Memory {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Memory{
		cfg:      cfg,
		chFreeAt: make([]int64, cfg.Channels),
		chOccupy: cfg.Freq.OccupancyCycles(cfg.LineSize, cfg.ChannelBandwidth),
	}
}

// Config returns the memory configuration.
func (m *Memory) Config() MemConfig { return m.cfg }

// ReadBytes returns total bytes read from DRAM.
func (m *Memory) ReadBytes() uint64 { return m.readBytes }

// WriteBytes returns total bytes written to DRAM.
func (m *Memory) WriteBytes() uint64 { return m.writeBytes }

// access reserves the least-loaded channel starting no earlier than at and
// returns when the channel transfer completes.
func (m *Memory) access(at int64, read bool) int64 {
	best := 0
	for i := 1; i < len(m.chFreeAt); i++ {
		if m.chFreeAt[i] < m.chFreeAt[best] {
			best = i
		}
	}
	start := at
	if m.chFreeAt[best] > start {
		start = m.chFreeAt[best]
	}
	done := start + m.chOccupy
	m.chFreeAt[best] = done
	if read {
		m.readBytes += uint64(m.cfg.LineSize)
	} else {
		m.writeBytes += uint64(m.cfg.LineSize)
	}
	return done
}

// Reset clears timing state and byte counters.
func (m *Memory) Reset() {
	for i := range m.chFreeAt {
		m.chFreeAt[i] = 0
	}
	m.readBytes, m.writeBytes = 0, 0
}

// FSBConfig describes one chip's front-side bus.
type FSBConfig struct {
	Name      string
	Bandwidth float64 // effective bytes/second (protocol overhead folded in)
	LineSize  int64
	Freq      units.Frequency
}

// Validate checks the configuration.
func (c FSBConfig) Validate() error {
	if c.Bandwidth <= 0 || c.LineSize <= 0 || c.Freq <= 0 {
		return fmt.Errorf("bus: incomplete FSB config %+v", c)
	}
	return nil
}

// FSB is one chip's front-side bus, attached to the shared Memory.
type FSB struct {
	cfg      FSBConfig
	mem      *Memory
	freeAt   int64
	occupy   int64 // cycles one line occupies the FSB
	baseLat  int64 // fixed DRAM access cycles beyond the two occupancies
	txnCount [numTxnTypes]uint64
}

// NewFSB builds a chip bus attached to mem. The fixed DRAM latency component
// is derived so that an unloaded DemandRead completes in mem.cfg.LatencyNs.
func NewFSB(cfg FSBConfig, mem *Memory) *FSB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	f := &FSB{
		cfg:    cfg,
		mem:    mem,
		occupy: cfg.Freq.OccupancyCycles(cfg.LineSize, cfg.Bandwidth),
	}
	total := cfg.Freq.Cycles(mem.cfg.LatencyNs)
	f.baseLat = total - f.occupy - mem.chOccupy
	if f.baseLat < 0 {
		f.baseLat = 0
	}
	return f
}

// Config returns the FSB configuration.
func (f *FSB) Config() FSBConfig { return f.cfg }

// UnloadedLatency returns the cycle count of an uncontended read, the
// quantity LMbench's pointer chase measures.
func (f *FSB) UnloadedLatency() int64 { return f.occupy + f.mem.chOccupy + f.baseLat }

// Issue submits a transaction at cycle now and returns its completion cycle.
// Writebacks are posted (the caller should not stall on the result), but
// they still consume FSB and channel bandwidth.
func (f *FSB) Issue(now int64, t TxnType) int64 {
	f.txnCount[t]++
	start := now
	if f.freeAt > start {
		start = f.freeAt
	}
	f.freeAt = start + f.occupy
	memDone := f.mem.access(f.freeAt, t.IsRead())
	if t == Writeback {
		return memDone
	}
	return memDone + f.baseLat
}

// QueueDelay returns how many cycles a transaction issued at now would wait
// before its FSB slot; the prefetcher uses this as its headroom gate.
func (f *FSB) QueueDelay(now int64) int64 {
	if f.freeAt <= now {
		return 0
	}
	return f.freeAt - now
}

// Transactions returns the count of transactions of type t.
func (f *FSB) Transactions(t TxnType) uint64 { return f.txnCount[t] }

// TotalTransactions returns the count across all types.
func (f *FSB) TotalTransactions() uint64 {
	var s uint64
	for _, c := range f.txnCount {
		s += c
	}
	return s
}

// Reset clears timing and counts (the shared Memory is reset separately).
func (f *FSB) Reset() {
	f.freeAt = 0
	f.txnCount = [numTxnTypes]uint64{}
}
