package bus

import (
	"math"
	"testing"
	"testing/quick"

	"xeonomp/internal/units"
)

const testFreq = units.Frequency(2.8 * units.GHz)

func memCfg() MemConfig {
	return MemConfig{
		Channels:         2,
		ChannelBandwidth: 4.43 * units.GB / 2,
		LatencyNs:        136.85,
		LineSize:         64,
		Freq:             testFreq,
	}
}

func fsbCfg() FSBConfig {
	return FSBConfig{Name: "fsb0", Bandwidth: 3.57 * units.GB, LineSize: 64, Freq: testFreq}
}

func TestConfigValidation(t *testing.T) {
	if err := memCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := fsbCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (MemConfig{}).Validate(); err == nil {
		t.Error("zero MemConfig should be invalid")
	}
	if err := (FSBConfig{}).Validate(); err == nil {
		t.Error("zero FSBConfig should be invalid")
	}
}

func TestUnloadedLatencyMatchesCalibration(t *testing.T) {
	mem := NewMemory(memCfg())
	fsb := NewFSB(fsbCfg(), mem)
	wantCycles := testFreq.Cycles(136.85)
	if got := fsb.UnloadedLatency(); got != wantCycles {
		t.Fatalf("unloaded latency %d cycles, want %d", got, wantCycles)
	}
	done := fsb.Issue(0, DemandRead)
	if done != wantCycles {
		t.Fatalf("first read completes at %d, want %d", done, wantCycles)
	}
}

func TestBackToBackReadsSerializeOnFSB(t *testing.T) {
	mem := NewMemory(memCfg())
	fsb := NewFSB(fsbCfg(), mem)
	d1 := fsb.Issue(0, DemandRead)
	d2 := fsb.Issue(0, DemandRead)
	if d2 <= d1 {
		t.Fatalf("second read must finish later: %d vs %d", d2, d1)
	}
	// The spacing at saturation is the FSB occupancy (~50 cycles at
	// 3.57 GB/s and 2.8 GHz).
	occ := testFreq.OccupancyCycles(64, 3.57*units.GB)
	if d2-d1 != occ {
		t.Fatalf("spacing %d, want FSB occupancy %d", d2-d1, occ)
	}
}

func TestSaturatedReadBandwidthSingleChip(t *testing.T) {
	mem := NewMemory(memCfg())
	fsb := NewFSB(fsbCfg(), mem)
	const n = 20000
	var last int64
	for i := 0; i < n; i++ {
		if d := fsb.Issue(0, DemandRead); d > last {
			last = d
		}
	}
	seconds := testFreq.Nanoseconds(last) / 1e9
	bw := float64(n) * 64 / seconds
	if math.Abs(bw-3.57e9)/3.57e9 > 0.03 {
		t.Fatalf("single-chip read bandwidth %.3g, want ~3.57e9", bw)
	}
}

func TestSaturatedReadBandwidthDualChip(t *testing.T) {
	mem := NewMemory(memCfg())
	f0 := NewFSB(fsbCfg(), mem)
	f1 := NewFSB(fsbCfg(), mem)
	const n = 20000
	var last int64
	for i := 0; i < n; i++ {
		f := f0
		if i%2 == 1 {
			f = f1
		}
		if d := f.Issue(0, DemandRead); d > last {
			last = d
		}
	}
	seconds := testFreq.Nanoseconds(last) / 1e9
	bw := float64(n) * 64 / seconds
	// Two chips are memory-controller bound at 4.43 GB/s.
	if math.Abs(bw-4.43e9)/4.43e9 > 0.03 {
		t.Fatalf("dual-chip read bandwidth %.3g, want ~4.43e9", bw)
	}
}

func TestQueueDelayGrowsUnderLoad(t *testing.T) {
	mem := NewMemory(memCfg())
	fsb := NewFSB(fsbCfg(), mem)
	if fsb.QueueDelay(0) != 0 {
		t.Fatal("idle bus must have zero queue delay")
	}
	for i := 0; i < 10; i++ {
		fsb.Issue(0, DemandRead)
	}
	if fsb.QueueDelay(0) == 0 {
		t.Fatal("loaded bus must have queue delay")
	}
	// Delay is relative to now.
	d0 := fsb.QueueDelay(0)
	d5 := fsb.QueueDelay(5)
	if d5 != d0-5 {
		t.Fatalf("queue delay not relative to now: %d vs %d", d0, d5)
	}
}

func TestTransactionCounting(t *testing.T) {
	mem := NewMemory(memCfg())
	fsb := NewFSB(fsbCfg(), mem)
	fsb.Issue(0, DemandRead)
	fsb.Issue(0, DemandRead)
	fsb.Issue(0, RFO)
	fsb.Issue(0, Writeback)
	fsb.Issue(0, Prefetch)
	if fsb.Transactions(DemandRead) != 2 || fsb.Transactions(RFO) != 1 ||
		fsb.Transactions(Writeback) != 1 || fsb.Transactions(Prefetch) != 1 {
		t.Fatal("per-type transaction counts wrong")
	}
	if fsb.TotalTransactions() != 5 {
		t.Fatalf("total = %d", fsb.TotalTransactions())
	}
}

func TestMemoryByteAccounting(t *testing.T) {
	mem := NewMemory(memCfg())
	fsb := NewFSB(fsbCfg(), mem)
	fsb.Issue(0, DemandRead)
	fsb.Issue(0, RFO)
	fsb.Issue(0, Prefetch)
	fsb.Issue(0, Writeback)
	if mem.ReadBytes() != 3*64 {
		t.Fatalf("read bytes = %d", mem.ReadBytes())
	}
	if mem.WriteBytes() != 64 {
		t.Fatalf("write bytes = %d", mem.WriteBytes())
	}
}

func TestWritebackCompletesWithoutDRAMLatency(t *testing.T) {
	mem := NewMemory(memCfg())
	fsb := NewFSB(fsbCfg(), mem)
	wb := fsb.Issue(0, Writeback)
	rd := NewFSB(fsbCfg(), NewMemory(memCfg())).Issue(0, DemandRead)
	if wb >= rd {
		t.Fatalf("posted writeback (%d) should complete before a full read (%d)", wb, rd)
	}
}

func TestTxnTypeStrings(t *testing.T) {
	names := map[TxnType]string{
		DemandRead: "demand_read", RFO: "rfo", Writeback: "writeback", Prefetch: "prefetch",
	}
	for k, v := range names {
		if k.String() != v {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if !DemandRead.IsRead() || Writeback.IsRead() {
		t.Error("IsRead classification wrong")
	}
}

func TestReset(t *testing.T) {
	mem := NewMemory(memCfg())
	fsb := NewFSB(fsbCfg(), mem)
	fsb.Issue(0, DemandRead)
	fsb.Reset()
	mem.Reset()
	if fsb.TotalTransactions() != 0 || fsb.QueueDelay(0) != 0 {
		t.Fatal("FSB reset incomplete")
	}
	if mem.ReadBytes() != 0 || mem.WriteBytes() != 0 {
		t.Fatal("memory reset incomplete")
	}
	// Latency after reset equals a cold start.
	if fsb.Issue(0, DemandRead) != fsb.UnloadedLatency() {
		t.Fatal("post-reset latency not cold")
	}
}

func TestChannelsBalanced(t *testing.T) {
	// With two channels, interleaved lines should sustain twice one
	// channel's bandwidth when the FSB is not the limit.
	cfg := memCfg()
	mem := NewMemory(cfg)
	fat := FSBConfig{Name: "fat", Bandwidth: 100 * units.GB, LineSize: 64, Freq: testFreq}
	fsb := NewFSB(fat, mem)
	const n = 10000
	var last int64
	for i := 0; i < n; i++ {
		if d := fsb.Issue(0, DemandRead); d > last {
			last = d
		}
	}
	seconds := testFreq.Nanoseconds(last) / 1e9
	bw := float64(n) * 64 / seconds
	want := float64(cfg.Channels) * cfg.ChannelBandwidth
	if math.Abs(bw-want)/want > 0.03 {
		t.Fatalf("channel-bound bandwidth %.3g, want %.3g", bw, want)
	}
}

func TestCompletionMonotoneProperty(t *testing.T) {
	// For non-decreasing issue times on one FSB, read completions are
	// strictly increasing (the bus serializes) and never precede the
	// unloaded latency.
	f := func(gaps []uint8) bool {
		mem := NewMemory(memCfg())
		fsb := NewFSB(fsbCfg(), mem)
		now := int64(0)
		last := int64(-1)
		for _, g := range gaps {
			now += int64(g)
			done := fsb.Issue(now, DemandRead)
			if done <= last {
				return false
			}
			if done < now+fsb.UnloadedLatency() {
				return false
			}
			last = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueDrainsProperty(t *testing.T) {
	// After enough idle time, the queue delay returns to zero.
	f := func(n uint8) bool {
		mem := NewMemory(memCfg())
		fsb := NewFSB(fsbCfg(), mem)
		var lastDone int64
		for i := 0; i < int(n%32)+1; i++ {
			if d := fsb.Issue(0, DemandRead); d > lastDone {
				lastDone = d
			}
		}
		return fsb.QueueDelay(lastDone+1) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
