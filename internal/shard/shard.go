package shard

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"

	"xeonomp/internal/api"
	"xeonomp/internal/config"
	"xeonomp/internal/core"
	"xeonomp/internal/obs"
)

// defaultInflight bounds concurrent cells per worker when WithInflight
// is not given: enough to keep a small worker's gate busy without one
// frontend monopolizing it.
const defaultInflight = 4

// probeEvery is the sticky-down recovery cadence: every probeEvery-th
// cell that would have routed to a down worker is sent there anyway as a
// probe, so a restarted worker rejoins without any clock-based health
// checks (routing stays a pure function of request traffic).
const probeEvery = 32

// worker is one remote plus its routing state.
type worker struct {
	remote *Remote
	// sem bounds in-flight cells on this worker.
	sem chan struct{}
	// down is the sticky health flag: set on transport failure, cleared
	// by the first cell (or probe) the worker answers.
	down atomic.Bool
	// skips counts cells routed away while down; it paces probes.
	skips atomic.Uint64
	// sent is the per-shard split of MetricShardCellsSent.
	sent *obs.Counter
}

// probeDue records one routed-away cell and reports whether it should be
// sent to this down worker as a recovery probe instead.
func (wk *worker) probeDue() bool { return wk.skips.Add(1)%probeEvery == 0 }

// markUp clears the down flag after a successful response.
func (wk *worker) markUp() {
	if wk.down.CompareAndSwap(true, false) {
		wk.skips.Store(0)
	}
}

// Shard is a core.Backend that partitions cells across N remote workers.
// Each cell's home worker is chosen by its runcache content address —
// the same identity every cache tier keys on — so reruns and resumed
// studies land on the worker whose cache and dedupe layer already hold
// the cell. A worker that fails at the transport level (connection
// refused, reset, timeout) is marked down and its cells fail over to the
// next worker in ring order; typed API errors (bad request, over budget
// beyond Remote's retries) are the caller's problem and never fail over.
//
// Shard carries no cache of its own: wrap it in core.Cached to give the
// frontend a journal to resume from and a cache to serve warm reruns
// out of — cmd/xeond -shard wires exactly Dedupe(Gate(Cached(Shard))).
type Shard struct {
	workers []*worker
}

// Option configures a Shard.
type Option func(*shardConfig)

type shardConfig struct {
	inflight int
}

// WithInflight bounds concurrent in-flight cells per worker (minimum 1,
// default 4). Excess cells for a worker queue at the frontend rather
// than piling onto the worker's admission control.
func WithInflight(n int) Option {
	return func(c *shardConfig) { c.inflight = n }
}

// New returns a Shard over the given workers, in ring order.
func New(remotes []*Remote, opts ...Option) (*Shard, error) {
	if len(remotes) == 0 {
		return nil, errors.New("shard: no workers")
	}
	cfg := shardConfig{inflight: defaultInflight}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.inflight < 1 {
		cfg.inflight = 1
	}
	s := &Shard{}
	for i, r := range remotes {
		s.workers = append(s.workers, &worker{
			remote: r,
			sem:    make(chan struct{}, cfg.inflight),
			sent:   obs.NewCounter(obs.MetricShardCellsSent + "." + strconv.Itoa(i)),
		})
	}
	return s, nil
}

// Workers reports the number of shards.
func (s *Shard) Workers() int { return len(s.workers) }

// home returns the cell's affinity shard: its runcache content address
// reduced mod N. An unhashable key (impossible with plain-data inputs)
// degrades to shard 0.
func (s *Shard) home(w core.Workload, cfg config.Configuration, opt core.Options) int {
	hash, err := core.CacheKey(w, cfg, opt).Hash()
	if err != nil || len(hash) < 8 {
		return 0
	}
	v, err := strconv.ParseUint(hash[:8], 16, 64)
	if err != nil {
		return 0
	}
	return int(v % uint64(len(s.workers)))
}

// RunCell implements core.Backend: try the home shard, fail over through
// the ring on transport errors. Cells are idempotent (deterministic and
// content-addressed), so re-dispatching a cell whose worker died
// mid-simulation is always safe.
func (s *Shard) RunCell(ctx context.Context, w core.Workload, cfg config.Configuration, opt core.Options) (*core.RunResult, bool, error) {
	n := len(s.workers)
	home := s.home(w, cfg, opt)

	// Candidates in affinity/ring order, skipping down workers unless
	// their probe is due; if that skips everyone, probe the full ring —
	// a recovered fleet must be rediscovered, not errored at.
	candidates := make([]int, 0, n)
	for i := 0; i < n; i++ {
		idx := (home + i) % n
		if wk := s.workers[idx]; !wk.down.Load() || wk.probeDue() {
			candidates = append(candidates, idx)
		}
	}
	if len(candidates) == 0 {
		for i := 0; i < n; i++ {
			candidates = append(candidates, (home+i)%n)
		}
	}

	var lastErr error
	for _, idx := range candidates {
		wk := s.workers[idx]
		select {
		case wk.sem <- struct{}{}:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if idx != home {
			obsFailovers.Inc()
		}
		obsCellsSent.Inc()
		wk.sent.Inc()
		res, cached, err := wk.remote.RunCell(ctx, w, cfg, opt)
		<-wk.sem
		if err == nil {
			wk.markUp()
			return res, cached, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			// The caller gave up; that is not the worker's health signal.
			return nil, false, cerr
		}
		if !errors.Is(err, api.ErrTransport) {
			return nil, false, err
		}
		wk.down.Store(true)
		lastErr = err
	}
	return nil, false, fmt.Errorf("shard: all %d workers unreachable: %w", n, lastErr)
}
