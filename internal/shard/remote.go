// Package shard executes simulation cells on remote xeond workers
// through the core.Backend seam. Remote forwards one cell to one worker
// over api.Client; Shard partitions cells across N Remotes by the same
// content address the run cache uses (so a worker keeps seeing the cells
// it already has warm) and fails over to the next healthy worker when
// one drops. Backends never affect results — a sharded frontend serves
// artifacts byte-identical to a local run, which the shard-smoke CI job
// and the equivalence tests pin.
package shard

import (
	"context"
	"errors"
	"fmt"
	"time"

	"xeonomp/internal/api"
	"xeonomp/internal/config"
	"xeonomp/internal/core"
	"xeonomp/internal/counters"
	"xeonomp/internal/obs"
)

// Process-wide observability series for sharded execution; totals live
// here, the per-shard split is registered per Shard (see newWorker).
var (
	obsCellsSent = obs.NewCounter(obs.MetricShardCellsSent)
	obsRetries   = obs.NewCounter(obs.MetricShardRetries)
	obsFailovers = obs.NewCounter(obs.MetricShardFailovers)
)

// Busy-worker retry pacing: a 429's Retry-After hint is honored when
// present; otherwise the delay doubles from retryDelay up to retryCap,
// for at most retryMax rounds per cell.
const (
	retryDelay = 100 * time.Millisecond
	retryCap   = 5 * time.Second
	retryMax   = 8
)

// Remote is a core.Backend that executes every cell on one xeond worker
// via the synchronous cell endpoint. The worker simulates (or serves
// from its own cache); Remote rebuilds the full RunResult from the raw
// wire counters, re-deriving metrics locally so a remote cell can never
// disagree with what counters.Derive produces here.
//
// Errors keep the api package's typed identity: a rejected request
// matches api.ErrBadRequest, a dead worker matches api.ErrTransport (the
// signal Shard fails over on), and 429s are retried internally with
// bounded backoff. Options the wire cannot express — a custom machine,
// cycle limits, samplers, the reference engine, a non-default warmup —
// are rejected loudly rather than silently dropped.
type Remote struct {
	c *api.Client
}

// NewRemote returns a Remote executing cells on the worker behind c.
func NewRemote(c *api.Client) *Remote { return &Remote{c: c} }

// Name identifies the worker in errors and logs: its base URL.
func (r *Remote) Name() string { return r.c.Base() }

// cellRequest maps one cell onto the wire, or explains why it cannot be.
func cellRequest(w core.Workload, cfg config.Configuration, opt core.Options) (api.CellRequest, error) {
	var zero api.CellRequest
	def := core.DefaultOptions()
	switch {
	case opt.Machine != nil:
		return zero, errors.New("shard: custom machine configs are not expressible over the cell API")
	case opt.CycleLimit != 0:
		return zero, errors.New("shard: cycle limits are not expressible over the cell API")
	case opt.SampleInterval != 0:
		return zero, errors.New("shard: counter samplers are not expressible over the cell API")
	case opt.Reference:
		return zero, errors.New("shard: the reference engine is not expressible over the cell API")
	case opt.WarmupFrac != def.WarmupFrac:
		return zero, fmt.Errorf("shard: warmup fraction %g is not expressible over the cell API (workers use %g)", opt.WarmupFrac, def.WarmupFrac)
	}
	policy, err := api.PolicyName(opt.Policy)
	if err != nil {
		return zero, fmt.Errorf("shard: %w", err)
	}
	req := api.CellRequest{Config: cfg.Name, Scale: opt.Scale, Seed: opt.Seed, Policy: policy}
	for _, p := range w.Programs {
		req.Benchmarks = append(req.Benchmarks, p.Name)
	}
	return req, nil
}

// RunCell implements core.Backend.
func (r *Remote) RunCell(ctx context.Context, w core.Workload, cfg config.Configuration, opt core.Options) (*core.RunResult, bool, error) {
	req, err := cellRequest(w, cfg, opt)
	if err != nil {
		return nil, false, err
	}
	resp, err := r.runWithRetry(ctx, req)
	if err != nil {
		return nil, false, fmt.Errorf("shard: worker %s: %w", r.Name(), err)
	}
	res, err := rebuild(resp, cfg, w)
	if err != nil {
		return nil, false, fmt.Errorf("shard: worker %s: %w", r.Name(), err)
	}
	return res, resp.Cached, nil
}

// runWithRetry posts the cell, waiting out the worker's admission
// control: each 429 is retried after its Retry-After hint (or the
// exponential fallback), bounded by retryMax rounds.
func (r *Remote) runWithRetry(ctx context.Context, req api.CellRequest) (api.CellResponse, error) {
	delay := retryDelay
	for attempt := 0; ; attempt++ {
		resp, err := r.c.RunCell(ctx, req)
		if err == nil || !errors.Is(err, api.ErrOverBudget) {
			return resp, err
		}
		if attempt+1 >= retryMax {
			return api.CellResponse{}, fmt.Errorf("worker still over budget after %d attempts: %w", retryMax, err)
		}
		wait := delay
		var apiErr *api.Error
		if errors.As(err, &apiErr) && apiErr.RetryAfter > 0 {
			wait = apiErr.RetryAfter
		}
		obsRetries.Inc()
		if serr := sleep(ctx, wait); serr != nil {
			return api.CellResponse{}, serr
		}
		if delay *= 2; delay > retryCap {
			delay = retryCap
		}
	}
}

// rebuild reconstructs the full RunResult from the wire response. The
// raw counters are required: without them the derived metrics would be
// zeros, which downstream reductions would silently aggregate.
func rebuild(resp api.CellResponse, cfg config.Configuration, w core.Workload) (*core.RunResult, error) {
	if len(resp.Programs) != len(w.Programs) {
		return nil, fmt.Errorf("cell response has %d programs, want %d", len(resp.Programs), len(w.Programs))
	}
	res := &core.RunResult{Config: cfg, WallCycles: resp.WallCycles}
	for i := range resp.Programs {
		p := &resp.Programs[i]
		if p.Benchmark != w.Programs[i].Name {
			return nil, fmt.Errorf("cell response program %d is %q, want %q", i, p.Benchmark, w.Programs[i].Name)
		}
		if len(p.Counters) == 0 {
			return nil, fmt.Errorf("cell response for %s carries no raw counters; the worker predates the counters field", p.Benchmark)
		}
		set, err := counters.SetFromMap(p.Counters)
		if err != nil {
			return nil, err
		}
		res.Programs = append(res.Programs, core.ProgramResult{
			Benchmark: p.Benchmark,
			Threads:   p.Threads,
			Cycles:    p.Cycles,
			Counters:  set,
			Metrics:   counters.Derive(&set),
		})
	}
	return res, nil
}

// sleep waits d, honoring ctx cancellation.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
