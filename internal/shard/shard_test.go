package shard_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"xeonomp/internal/api"
	"xeonomp/internal/config"
	"xeonomp/internal/core"
	"xeonomp/internal/obs"
	"xeonomp/internal/profiles"
	"xeonomp/internal/server"
	"xeonomp/internal/shard"
)

// workerHandler fronts a real experiment-server handler, counting cell
// requests and — when dieAfter > 0 — aborting every cell connection
// after that many, which the client sees as a mid-study worker death.
type workerHandler struct {
	inner    http.Handler
	cells    atomic.Int64
	dieAfter int64
}

func (h *workerHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/api/v1/cell" {
		n := h.cells.Add(1)
		if h.dieAfter > 0 && n > h.dieAfter {
			panic(http.ErrAbortHandler) // dead worker: connection reset, no response
		}
	}
	h.inner.ServeHTTP(w, r)
}

// newWorker boots one in-process xeond worker and returns its counting
// handler and Remote.
func newWorker(t *testing.T, dieAfter int64) (*workerHandler, *shard.Remote) {
	t.Helper()
	s := server.New(server.Config{})
	h := &workerHandler{inner: s.Handler(), dieAfter: dieAfter}
	ts := httptest.NewServer(h)
	t.Cleanup(func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Errorf("closing worker: %v", err)
		}
	})
	return h, shard.NewRemote(api.NewClient(ts.URL))
}

func testCell(t *testing.T) (core.Workload, config.Configuration, core.Options) {
	t.Helper()
	prof, err := profiles.ByName("CG")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := config.ByArch(config.Serial)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Scale = 0.02
	return core.Single(prof), cfg, opt
}

// TestRemoteMatchesLocal runs one cell both ways and requires identical
// results — the contract that lets a shard fleet serve golden artifacts.
func TestRemoteMatchesLocal(t *testing.T) {
	_, remote := newWorker(t, 0)
	w, cfg, opt := testCell(t)
	ctx := context.Background()

	local, _, err := core.Local().RunCell(ctx, w, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, cached, err := remote.RunCell(ctx, w, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("fresh worker reported the cell cached")
	}
	if got.WallCycles != local.WallCycles || len(got.Programs) != len(local.Programs) {
		t.Fatalf("remote cell differs: wall %d vs %d", got.WallCycles, local.WallCycles)
	}
	for i := range got.Programs {
		g, l := &got.Programs[i], &local.Programs[i]
		if g.Benchmark != l.Benchmark || g.Cycles != l.Cycles || g.Threads != l.Threads ||
			g.Counters != l.Counters || g.Metrics != l.Metrics {
			t.Errorf("program %s differs across the wire", l.Benchmark)
		}
	}
}

func TestRemoteRejectsInexpressibleOptions(t *testing.T) {
	_, remote := newWorker(t, 0)
	w, cfg, opt := testCell(t)
	opt.SampleInterval = 1000
	if _, _, err := remote.RunCell(context.Background(), w, cfg, opt); err == nil ||
		!strings.Contains(err.Error(), "not expressible") {
		t.Errorf("sampler options crossed the wire silently: %v", err)
	}
	opt = core.DefaultOptions()
	opt.Scale = 0.02
	opt.CycleLimit = 1 << 40
	if _, _, err := remote.RunCell(context.Background(), w, cfg, opt); err == nil {
		t.Error("cycle limit crossed the wire silently")
	}
}

// TestRemoteRetriesOverBudget pins the 429 path: a worker that rejects
// the first attempts is retried with backoff until it admits the cell.
func TestRemoteRetriesOverBudget(t *testing.T) {
	s := server.New(server.Config{})
	defer func() {
		if err := s.Close(); err != nil {
			t.Errorf("closing worker: %v", err)
		}
	}()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/api/v1/cell" && calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			// Test fixture; a failed encode fails the retry assertions.
			_ = json.NewEncoder(w).Encode(api.ErrorResponse{Error: "busy", Code: api.CodeOverBudget})
			return
		}
		s.Handler().ServeHTTP(w, r)
	}))
	defer ts.Close()

	retriesBefore := obs.NewCounter(obs.MetricShardRetries).Value()
	remote := shard.NewRemote(api.NewClient(ts.URL))
	w, cfg, opt := testCell(t)
	if _, _, err := remote.RunCell(context.Background(), w, cfg, opt); err != nil {
		t.Fatalf("cell never admitted: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("worker saw %d attempts, want 3 (two rejections, one success)", got)
	}
	if d := obs.NewCounter(obs.MetricShardRetries).Value() - retriesBefore; d != 2 {
		t.Errorf("shard.retries moved by %d, want 2", d)
	}
}

// runStudy runs the single study over the given backend and returns its
// canonical artifact bytes by name.
func runStudy(t *testing.T, backend core.Backend, scale float64) map[string][]byte {
	t.Helper()
	study := core.NewSingleStudy()
	opt := core.DefaultOptions()
	opt.Scale = scale
	opt.Workers = 4
	opt.Backend = backend
	if err := study.Run(context.Background(), opt); err != nil {
		t.Fatal(err)
	}
	arts, err := study.Artifacts()
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, a := range arts {
		b, err := a.MarshalCanonical()
		if err != nil {
			t.Fatal(err)
		}
		out[a.Name] = b
	}
	return out
}

// TestShardSpreadsAndMatchesLocal runs the single study over two healthy
// workers: both must receive cells (affinity partitions, it does not
// funnel), and every artifact byte must match a local run.
func TestShardSpreadsAndMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("full study over HTTP")
	}
	hA, remoteA := newWorker(t, 0)
	hB, remoteB := newWorker(t, 0)
	sh, err := shard.New([]*shard.Remote{remoteA, remoteB})
	if err != nil {
		t.Fatal(err)
	}
	want := runStudy(t, nil, 0.02)
	got := runStudy(t, sh, 0.02)
	for name, wb := range want {
		if !bytes.Equal(got[name], wb) {
			t.Errorf("artifact %s differs between local and sharded runs", name)
		}
	}
	if hA.cells.Load() == 0 || hB.cells.Load() == 0 {
		t.Errorf("cell spread %d/%d: affinity must partition across both workers", hA.cells.Load(), hB.cells.Load())
	}
}

// TestShardFailover kills one worker mid-study (it aborts every cell
// connection after its third cell) and requires the study to finish on
// the survivor with results identical to a local run.
func TestShardFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("full study over HTTP")
	}
	hA, remoteA := newWorker(t, 3) // dies after 3 cells
	_, remoteB := newWorker(t, 0)
	sh, err := shard.New([]*shard.Remote{remoteA, remoteB}, shard.WithInflight(2))
	if err != nil {
		t.Fatal(err)
	}
	failoversBefore := obs.NewCounter(obs.MetricShardFailovers).Value()
	want := runStudy(t, nil, 0.02)
	got := runStudy(t, sh, 0.02)
	for name, wb := range want {
		if !bytes.Equal(got[name], wb) {
			t.Errorf("artifact %s differs after mid-study failover", name)
		}
	}
	if d := obs.NewCounter(obs.MetricShardFailovers).Value() - failoversBefore; d == 0 {
		t.Error("shard.failovers never moved while a worker was dead")
	}
	if hA.cells.Load() <= 3 {
		t.Errorf("dead worker saw only %d cells; the test never exercised its death", hA.cells.Load())
	}
}

// TestShardAllWorkersDown: every cell fails with a transport-rooted
// error once the whole fleet is unreachable — typed, not hung.
func TestShardAllWorkersDown(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	ts.Close()
	sh, err := shard.New([]*shard.Remote{shard.NewRemote(api.NewClient(ts.URL))})
	if err != nil {
		t.Fatal(err)
	}
	w, cfg, opt := testCell(t)
	if _, _, err := sh.RunCell(context.Background(), w, cfg, opt); !errors.Is(err, api.ErrTransport) {
		t.Fatalf("error %v, want ErrTransport through the failover chain", err)
	}
}

// TestShardGoldenScale is the golden-scale equivalence gate: the single
// study executed through a sharded fleet must produce artifacts
// byte-identical to the checked-in testdata/golden files (scale 0.1,
// seed 1) — the same bytes a local `xeonchar -export-json` writes.
func TestShardGoldenScale(t *testing.T) {
	if testing.Short() {
		t.Skip("golden-scale study over HTTP")
	}
	_, remoteA := newWorker(t, 0)
	_, remoteB := newWorker(t, 0)
	sh, err := shard.New([]*shard.Remote{remoteA, remoteB})
	if err != nil {
		t.Fatal(err)
	}
	got := runStudy(t, sh, 0.1)
	for _, name := range []string{"figure2", "figure3", "table2", "single-counters"} {
		want, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", name+".json"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[name], want) {
			t.Errorf("artifact %s from the sharded run differs from testdata/golden", name)
		}
	}
}
