package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// NDTaint is the interprocedural successor of the old per-file
// determinism analyzer. It guards the bit-stable-output promise on two
// levels:
//
//   - locally, like before: simulation and export packages must not read
//     the wall clock, must not draw from the global (unseeded) math/rand
//     source, and must not let map-iteration order reach ordered output
//   - globally, on the dataflow engine: nondeterminism *sources* (wall
//     clock, global rand, environment reads) are propagated through
//     assignments, helper calls, and struct fields — an SSA-lite taint
//     mask per value, a summary per function — and reported wherever a
//     tainted value reaches a serialization *sink*: the internal/golden
//     exporters, report.Table row builders, journal.Append, or
//     runcache.Put. A timestamp laundered through three helpers and a
//     struct field into an artifact is caught at the sink even though no
//     single file looks wrong.
//
// The wall-clock allowlist still applies to where findings are reported
// (internal/journal's progress reporter and cmd/nasrun legitimately
// observe real time), but taint is tracked *through* allowlisted code:
// an allowlisted timestamp that escapes into a golden artifact is still
// a finding, reported at the sink call outside the allowlist.
type NDTaint struct{}

func (*NDTaint) Name() string { return "taint" }
func (*NDTaint) Doc() string {
	return "forbid wall-clock/rand/env nondeterminism, locally and via interprocedural flows into exporters"
}

// wallClockAllowlist names the packages (by path suffix) allowed to read
// the wall clock: the progress/ETA reporter, which exists to report real
// elapsed time, the functional NAS harness, which times real computation,
// the observability layer, which is the single clock-reading choke
// point the rest of the tree instruments through (obs.StartTimer/Span) —
// its values flow into the metric registry and tracer, never into
// artifacts — and the wire layer (internal/api, internal/shard), whose
// timers pace retries and reconnects without touching payloads.
// Everything else in the tree is simulation or export code, where
// wall-clock reads are nondeterminism leaking into results.
//
// The allowlist is also a taint *boundary* for the interprocedural
// solver, but only for opaque handles: clock taint originating inside an
// allowlisted package is stripped from a function's returns when every
// result is a type the package declares itself (obs.Timer, *obs.Span), a
// context, or an error — handles whose timing content is consumed by the
// observability layer, never exported. Plain data escaping an allowlisted
// function (a time.Time, an int64 of nanoseconds) keeps its clock taint,
// clock taint passing through an allowlisted call via its arguments still
// propagates, and a direct time.Now in any other package is still
// flagged.
var wallClockAllowlist = []string{
	"internal/journal",
	"internal/obs",
	"cmd/nasrun",
	// The wire layer: reconnect backoff, 429 retry pacing, and failover
	// probing are real-time concerns by nature. Nothing these packages
	// compute from the clock reaches results — backends cannot affect
	// artifact bytes (the golden equivalence tests pin that).
	"internal/api",
	"internal/shard",
}

func allowlisted(pkg *Package) bool {
	return allowlistedPath(pkg.Path)
}

func allowlistedPath(path string) bool {
	for _, allowed := range wallClockAllowlist {
		if pathHasSuffix(path, allowed) {
			return true
		}
	}
	return false
}

// clockBoundary reports whether fn's returns form a clock-taint
// boundary: fn is declared in an allowlisted package and every result is
// an opaque handle type (declared in an allowlisted package itself, a
// context, or an error) rather than plain data that could end up in an
// artifact.
func clockBoundary(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || !allowlistedPath(fn.Pkg().Path()) {
		return false
	}
	res := fn.Type().(*types.Signature).Results()
	if res.Len() == 0 {
		return false
	}
	for i := 0; i < res.Len(); i++ {
		if !boundaryType(res.At(i).Type()) {
			return false
		}
	}
	return true
}

func boundaryType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name() == "error"
	}
	return obj.Pkg().Path() == "context" || allowlistedPath(obj.Pkg().Path())
}

// wallClockFuncs are the time package entry points that observe the wall
// clock (referencing one as a value counts too, so `now := time.Now`
// cannot hide a read).
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// globalRandFuncs are the math/rand (and v2) package-level draws backed by
// the shared source. Constructing an explicitly seeded generator
// (rand.New(rand.NewSource(seed))) stays legal.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint32N": true, "Uint64N": true,
	"Uint": true, "UintN": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// envFuncs are the os package environment reads. Reading the environment
// is legal on its own (tests and harnesses tune themselves with it); it
// only becomes a finding when the value flows into a serialization sink,
// so env is a flow-only taint source with no local blanket check.
var envFuncs = map[string]bool{"Getenv": true, "LookupEnv": true, "Environ": true}

// taintKind is a bitset of nondeterminism source families.
type taintKind uint8

const (
	taintClock taintKind = 1 << iota // wall-clock reads (time.Now and friends)
	taintRand                        // global unseeded math/rand draws
	taintEnv                         // process-environment reads
)

func (k taintKind) String() string {
	var parts []string
	if k&taintClock != 0 {
		parts = append(parts, "wall-clock")
	}
	if k&taintRand != 0 {
		parts = append(parts, "unseeded-rand")
	}
	if k&taintEnv != 0 {
		parts = append(parts, "environment")
	}
	if len(parts) == 0 {
		return "clean"
	}
	return strings.Join(parts, "+")
}

// taintMask is the value-flow lattice element: the low byte carries the
// source kinds a value may derive from, the high bits carry the function
// inputs (receiver, then parameters) it may depend on. Join is bitwise
// OR, bottom is zero, and the lattice is finite, so every fixed point
// below terminates.
type taintMask uint64

const taintInputShift = 8

func (m taintMask) kinds() taintKind  { return taintKind(m) }
func (m taintMask) inputs() taintMask { return m >> taintInputShift << taintInputShift }

// inputBit returns the lattice bit of function input i (receiver first,
// then parameters). Inputs past the representable 56 are conservatively
// untracked.
func inputBit(i int) taintMask {
	if i >= 64-taintInputShift {
		return 0
	}
	return taintMask(1) << (taintInputShift + i)
}

// taintSummary is one function's interprocedural contract.
type taintSummary struct {
	// ret is the mask of sources and inputs that may reach the function's
	// return values.
	ret taintMask
	// sinkParams marks the inputs that reach a serialization sink inside
	// the function (directly or through further calls).
	sinkParams taintMask
	// fieldFlows records inputs the function stores into struct fields,
	// so a caller passing a tainted argument taints the field globally.
	fieldFlows []taintFieldFlow
}

type taintFieldFlow struct {
	inputs taintMask
	field  *types.Var
}

// taintFacts is the module-wide fixed point: per-function summaries plus
// the field- and package-variable taint that crosses function boundaries.
type taintFacts struct {
	facts      *Facts
	summaries  map[*types.Func]*taintSummary
	fieldTaint map[*types.Var]taintKind
	varTaint   map[*types.Var]taintKind // package-level variables
	changed    bool
}

// taintFor solves the whole-module taint analysis once and caches it.
func (f *Facts) taintFor() *taintFacts {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.taint != nil {
		return f.taint
	}
	tf := &taintFacts{
		facts:      f,
		summaries:  map[*types.Func]*taintSummary{},
		fieldTaint: map[*types.Var]taintKind{},
		varTaint:   map[*types.Var]taintKind{},
	}
	for _, fi := range f.Funcs {
		tf.summaries[fi.Fn] = &taintSummary{}
	}
	// Bottom-up over the call graph, iterated to a global fixed point:
	// one sweep resolves call chains without cycles; field taint and
	// recursion converge in the following sweeps.
	for sweep := 0; sweep < 32; sweep++ {
		tf.changed = false
		tf.solvePackageVars()
		for _, fi := range f.Funcs {
			a := tf.analysisFor(fi)
			a.solve()
			a.commit()
		}
		if !tf.changed {
			break
		}
	}
	f.taint = tf
	return tf
}

// solvePackageVars folds package-level initializers into the variable
// taint map (`var t0 = time.Now()` taints t0 for every reader).
func (tf *taintFacts) solvePackageVars() {
	for _, pkg := range tf.facts.prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					a := &taintAnalysis{tf: tf, pkg: pkg, env: map[types.Object]taintMask{}, inputs: map[types.Object]int{}}
					for i, name := range vs.Names {
						var m taintMask
						if len(vs.Values) == len(vs.Names) {
							m = a.eval(vs.Values[i])
						} else if len(vs.Values) == 1 {
							m = a.eval(vs.Values[0])
						}
						if v, ok := pkg.Info.Defs[name].(*types.Var); ok && m.kinds() != 0 {
							tf.setVarTaint(v, m.kinds())
						}
					}
				}
			}
		}
	}
}

func (tf *taintFacts) setVarTaint(v *types.Var, k taintKind) {
	if tf.varTaint[v]&k != k {
		tf.varTaint[v] |= k
		tf.changed = true
	}
}

func (tf *taintFacts) setFieldTaint(fld *types.Var, k taintKind) {
	if tf.fieldTaint[fld]&k != k {
		tf.fieldTaint[fld] |= k
		tf.changed = true
	}
}

// analysisFor prepares the per-function lattice: every input (receiver,
// then parameters) starts at its own input bit.
func (tf *taintFacts) analysisFor(fi *FuncInfo) *taintAnalysis {
	a := &taintAnalysis{
		tf:     tf,
		fi:     fi,
		pkg:    fi.Pkg,
		env:    map[types.Object]taintMask{},
		inputs: map[types.Object]int{},
	}
	sig := fi.Fn.Type().(*types.Signature)
	i := 0
	if recv := sig.Recv(); recv != nil {
		a.inputs[recv] = i
		a.env[recv] = inputBit(i)
		i++
	}
	for p := 0; p < sig.Params().Len(); p++ {
		prm := sig.Params().At(p)
		a.inputs[prm] = i
		a.env[prm] = inputBit(i)
		i++
	}
	a.numInputs = i
	return a
}

// taintAnalysis is the SSA-lite value-flow pass over one function body:
// an environment mapping each local object to its taint mask, iterated to
// a local fixed point, with interprocedural effects routed through the
// shared taintFacts.
type taintAnalysis struct {
	tf        *taintFacts
	fi        *FuncInfo // nil when folding package-level initializers
	pkg       *Package
	env       map[types.Object]taintMask
	inputs    map[types.Object]int
	numInputs int

	summary taintSummary // effects observed this pass

	// report, when set, receives sink findings; nil while solving.
	report func(n ast.Node, format string, args ...any)
}

// solve iterates the body to a local fixed point. Assignment order in a
// single walk already covers straight-line flow; the loop covers
// loop-carried and out-of-order dependencies.
func (a *taintAnalysis) solve() {
	for pass := 0; pass < 8; pass++ {
		before := a.snapshot()
		a.walk()
		if a.snapshot() == before {
			break
		}
	}
}

func (a *taintAnalysis) snapshot() uint64 {
	var h uint64
	for _, m := range a.env {
		h += uint64(m) * 1099511628211
	}
	return h
}

// commit merges the observed effects into the function's shared summary.
func (a *taintAnalysis) commit() {
	sum := a.tf.summaries[a.fi.Fn]
	if sum.ret|a.summary.ret != sum.ret {
		sum.ret |= a.summary.ret
		a.tf.changed = true
	}
	if sum.sinkParams|a.summary.sinkParams != sum.sinkParams {
		sum.sinkParams |= a.summary.sinkParams
		a.tf.changed = true
	}
	for _, flow := range a.summary.fieldFlows {
		if !sum.hasFlow(flow) {
			sum.fieldFlows = append(sum.fieldFlows, flow)
			a.tf.changed = true
		}
	}
}

func (s *taintSummary) hasFlow(flow taintFieldFlow) bool {
	for _, f := range s.fieldFlows {
		if f.field == flow.field && f.inputs|flow.inputs == f.inputs {
			return true
		}
	}
	return false
}

// walk visits every statement of the function body (including nested
// literals, whose captures share this environment) and applies the
// transfer functions.
func (a *taintAnalysis) walk() {
	body := a.fi.Decl.Body
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, n)
		case *ast.AssignStmt:
			a.assign(n)
		case *ast.RangeStmt:
			m := a.eval(n.X)
			a.apply(n.Key, m, n)
			a.apply(n.Value, m, n)
		case *ast.ReturnStmt:
			// Returns inside nested literals belong to the literal, not to
			// this function's summary.
			for _, lit := range lits {
				if n.Pos() >= lit.Pos() && n.End() <= lit.End() {
					return true
				}
			}
			for _, res := range n.Results {
				a.summary.ret |= a.eval(res)
			}
			if len(n.Results) == 0 {
				// Named results returned bare.
				sig := a.fi.Fn.Type().(*types.Signature)
				for i := 0; i < sig.Results().Len(); i++ {
					a.summary.ret |= a.env[sig.Results().At(i)]
				}
			}
		case *ast.ExprStmt:
			a.eval(n.X) // sink calls used as statements
		case *ast.GoStmt:
			a.eval(n.Call)
		case *ast.DeferStmt:
			a.eval(n.Call)
		}
		return true
	})
}

// assign applies one assignment: RHS masks join into LHS objects, and
// stores into struct fields or package variables escalate to the global
// maps.
func (a *taintAnalysis) assign(n *ast.AssignStmt) {
	if len(n.Lhs) == len(n.Rhs) {
		for i := range n.Lhs {
			a.apply(n.Lhs[i], a.eval(n.Rhs[i]), n)
		}
		return
	}
	if len(n.Rhs) == 1 { // tuple assignment: v, ok := f()
		m := a.eval(n.Rhs[0])
		for _, lhs := range n.Lhs {
			a.apply(lhs, m, n)
		}
	}
}

// apply joins mask m into an assignment target.
func (a *taintAnalysis) apply(target ast.Expr, m taintMask, at ast.Node) {
	if target == nil || m == 0 {
		return
	}
	switch t := ast.Unparen(target).(type) {
	case *ast.Ident:
		obj := assignedObj(a.pkg.Info, t)
		v, ok := obj.(*types.Var)
		if !ok {
			return
		}
		if v.Parent() == a.pkg.Types.Scope() {
			// Package-level variable: visible to every function.
			if m.kinds() != 0 {
				a.tf.setVarTaint(v, m.kinds())
			}
			return
		}
		a.env[v] |= m
	case *ast.SelectorExpr:
		if s, ok := a.pkg.Info.Selections[t]; ok && s.Kind() == types.FieldVal {
			if fld, ok := s.Obj().(*types.Var); ok {
				if m.kinds() != 0 {
					a.tf.setFieldTaint(fld, m.kinds())
				}
				if m.inputs() != 0 {
					a.noteFieldFlow(m.inputs(), fld)
				}
			}
			return
		}
		a.apply(t.X, m, at)
	case *ast.IndexExpr:
		a.apply(t.X, m, at)
	case *ast.StarExpr:
		a.apply(t.X, m, at)
	}
}

func (a *taintAnalysis) noteFieldFlow(inputs taintMask, fld *types.Var) {
	if a.fi == nil {
		return
	}
	flow := taintFieldFlow{inputs: inputs, field: fld}
	if !a.summary.hasFlow(flow) {
		a.summary.fieldFlows = append(a.summary.fieldFlows, flow)
	}
}

// eval computes the taint mask of an expression.
func (a *taintAnalysis) eval(e ast.Expr) taintMask {
	switch e := e.(type) {
	case nil:
		return 0
	case *ast.Ident:
		if v, ok := objOf(a.pkg.Info, e).(*types.Var); ok {
			return a.env[v] | taintMask(a.tf.varTaint[v])
		}
		if fn, ok := a.pkg.Info.Uses[e].(*types.Func); ok {
			return taintMask(sourceKind(fn)) // now := time.Now
		}
		return 0
	case *ast.SelectorExpr:
		if fn, ok := a.pkg.Info.Uses[e.Sel].(*types.Func); ok {
			if k := sourceKind(fn); k != 0 {
				return taintMask(k)
			}
			return a.eval(e.X) // method value of a possibly tainted receiver
		}
		if s, ok := a.pkg.Info.Selections[e]; ok && s.Kind() == types.FieldVal {
			m := a.eval(e.X)
			if fld, ok := s.Obj().(*types.Var); ok {
				m |= taintMask(a.tf.fieldTaint[fld])
			}
			return m
		}
		if v, ok := a.pkg.Info.Uses[e.Sel].(*types.Var); ok {
			return taintMask(a.tf.varTaint[v]) // qualified package var
		}
		return 0
	case *ast.CallExpr:
		return a.evalCall(e)
	case *ast.BinaryExpr:
		return a.eval(e.X) | a.eval(e.Y)
	case *ast.UnaryExpr:
		return a.eval(e.X)
	case *ast.ParenExpr:
		return a.eval(e.X)
	case *ast.StarExpr:
		return a.eval(e.X)
	case *ast.IndexExpr:
		return a.eval(e.X)
	case *ast.SliceExpr:
		return a.eval(e.X)
	case *ast.TypeAssertExpr:
		return a.eval(e.X)
	case *ast.CompositeLit:
		return a.evalComposite(e)
	}
	return 0
}

// evalComposite joins the element masks and records struct-field stores
// (`Run{Stamp: now}` taints the Stamp field exactly like an assignment).
func (a *taintAnalysis) evalComposite(lit *ast.CompositeLit) taintMask {
	var m taintMask
	st := structOf(a.pkg.Info.TypeOf(lit))
	for i, elt := range lit.Elts {
		var fld *types.Var
		val := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			val = kv.Value
			if key, ok := kv.Key.(*ast.Ident); ok {
				fld, _ = a.pkg.Info.Uses[key].(*types.Var)
			}
		} else if st != nil && i < st.NumFields() {
			fld = st.Field(i)
		}
		em := a.eval(val)
		m |= em
		if fld != nil {
			if em.kinds() != 0 {
				a.tf.setFieldTaint(fld, em.kinds())
			}
			if em.inputs() != 0 {
				a.noteFieldFlow(em.inputs(), fld)
			}
		}
	}
	return m
}

// evalCall applies the call transfer function: sources introduce taint,
// local callees are resolved through their summaries (mapping callee
// input bits back to argument masks), sinks consume taint and report or
// summarize, and unknown callees conservatively join receiver and
// argument masks.
func (a *taintAnalysis) evalCall(call *ast.CallExpr) taintMask {
	// Conversions pass taint through unchanged.
	if tv, ok := a.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return a.eval(call.Args[0])
		}
		return 0
	}
	fn := calleeFunc(a.pkg.Info, call)
	if fn == nil {
		// Builtin or call through a function value: join everything — a
		// stored time.Now called later stays caught.
		m := a.eval(call.Fun)
		for _, arg := range call.Args {
			m |= a.eval(arg)
		}
		return m
	}
	if k := sourceKind(fn); k != 0 {
		return taintMask(k)
	}

	args := a.callInputs(call, fn)

	if desc := sinkOf(fn); desc != "" {
		for _, arg := range call.Args {
			am := a.eval(arg)
			if k := am.kinds(); k != 0 && a.report != nil {
				a.report(arg, "%s-tainted value reaches %s; exported results must be deterministic (derive the value from simulation state, or seed it)", k, desc)
			}
			if am.inputs() != 0 {
				a.summary.sinkParams |= am.inputs()
			}
		}
		return 0
	}

	if sum, ok := a.tf.summaries[fn]; ok {
		// Inputs that reach a sink inside the callee: a tainted argument
		// here is the laundered flow the local pass cannot see.
		for i, am := range args {
			if sum.sinkParams&inputBit(i) == 0 {
				continue
			}
			if k := am.kinds(); k != 0 && a.report != nil {
				a.report(call, "%s-tainted argument to %s reaches a serialization sink inside it; exported results must be deterministic", k, qualifiedFuncName(fn))
			}
			a.summary.sinkParams |= am.inputs()
		}
		// Inputs the callee stores into struct fields.
		for _, flow := range sum.fieldFlows {
			for i, am := range args {
				if flow.inputs&inputBit(i) == 0 {
					continue
				}
				if am.kinds() != 0 {
					a.tf.setFieldTaint(flow.field, am.kinds())
				}
				if am.inputs() != 0 {
					a.noteFieldFlow(am.inputs(), flow.field)
				}
			}
		}
		// Return mask: callee sources pass through; callee input bits
		// resolve to the matching argument masks. Opaque timing handles
		// returned by allowlisted packages are clock-taint boundaries —
		// sanctioned wall-clock consumers, not simulation data — so their
		// own clock reads stop here (input resolution below still carries
		// a caller's clock taint through unchanged).
		m := taintMask(sum.ret.kinds())
		if clockBoundary(fn) {
			m &^= taintMask(taintClock)
		}
		for i, am := range args {
			if sum.ret&inputBit(i) != 0 {
				m |= am
			}
		}
		return m
	}

	// External callee without a summary: conservatively assume any input
	// may flow to the result (t.UnixNano(), strconv, fmt.Sprintf, ...).
	var m taintMask
	for _, am := range args {
		m |= am
	}
	return m
}

// callInputs returns the argument masks of a call in callee-input order:
// receiver first for ordinary method calls, then the positional
// arguments (method expressions T.M(recv, ...) already carry the
// receiver as args[0]).
func (a *taintAnalysis) callInputs(call *ast.CallExpr, fn *types.Func) []taintMask {
	var masks []taintMask
	sig := fn.Type().(*types.Signature)
	if sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s, selOk := a.pkg.Info.Selections[sel]; !selOk || s.Kind() == types.MethodVal {
				masks = append(masks, a.eval(sel.X))
			}
		}
	}
	for _, arg := range call.Args {
		masks = append(masks, a.eval(arg))
	}
	return masks
}

// sourceKind classifies a function as a nondeterminism source.
func sourceKind(fn *types.Func) taintKind {
	if fn == nil || fn.Pkg() == nil {
		return 0
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			return taintClock
		}
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[fn.Name()] && fn.Type().(*types.Signature).Recv() == nil {
			return taintRand
		}
	case "os":
		if envFuncs[fn.Name()] {
			return taintEnv
		}
	}
	return 0
}

// sinkOf reports whether fn is a serialization sink — a function whose
// arguments end up in an ordered artifact — and names it for messages.
func sinkOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil || !fn.Exported() {
		return ""
	}
	path := fn.Pkg().Path()
	switch {
	case pathHasSuffix(path, "internal/golden"), pathHasSuffix(path, "internal/report"):
		return qualifiedFuncName(fn)
	case pathHasSuffix(path, "internal/journal") && fn.Name() == "Append":
		return qualifiedFuncName(fn)
	case pathHasSuffix(path, "internal/runcache") && fn.Name() == "Put":
		return qualifiedFuncName(fn)
	}
	return ""
}

// qualifiedFuncName renders pkg.Func or pkg.Type.Method for messages.
func qualifiedFuncName(fn *types.Func) string {
	name := fn.Name()
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}

// objOf resolves an identifier to its object, whether defined or used
// here.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// structOf unwraps a (pointer to a) struct type.
func structOf(t types.Type) *types.Struct {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

func (a *NDTaint) Check(prog *Program, pkg *Package) []Diagnostic {
	facts := prog.Facts()
	tf := facts.taintFor()

	var diags []Diagnostic
	seen := map[string]bool{}
	report := func(n ast.Node, format string, args ...any) {
		d := Diagnostic{Pos: prog.Fset.Position(n.Pos()), Analyzer: a.Name(), Message: fmt.Sprintf(format, args...)}
		key := d.Pos.String() + d.Message
		if !seen[key] {
			seen[key] = true
			diags = append(diags, d)
		}
	}

	allowed := allowlisted(pkg)

	// Interprocedural pass: re-run each function's local analysis in
	// report mode against the solved global facts, so sink findings land
	// at the call that feeds the exporter. Allowlisted packages are where
	// the clock may be *read*; a flow that terminates inside one is
	// progress reporting, not data.
	if !allowed {
		for _, fi := range facts.PkgFuncs(pkg) {
			an := tf.analysisFor(fi)
			an.solve()
			an.report = report
			an.walk()
		}
	}

	// Local passes, unchanged from the old determinism analyzer: blanket
	// source checks and map-iteration order feeding ordered output.
	for _, f := range pkg.Files {
		if !allowed {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				fn, ok := pkg.Info.Uses[id].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					if wallClockFuncs[fn.Name()] {
						report(id, "time.%s reads the wall clock; simulation/export code must be deterministic (allowlist: %v)",
							fn.Name(), wallClockAllowlist)
					}
				case "math/rand", "math/rand/v2":
					if globalRandFuncs[fn.Name()] && fn.Type().(*types.Signature).Recv() == nil {
						report(id, "rand.%s draws from the global math/rand source; use a seeded rand.New(rand.NewSource(seed))",
							fn.Name())
					}
				}
				return true
			})
		}

		funcBodies(f, func(owner ast.Node, body *ast.BlockStmt) {
			ast.Inspect(body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pkg.Info.Types[rng.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				a.checkMapRange(prog, pkg, body, rng, report)
				return true
			})
		})
	}
	return diags
}

// checkMapRange flags ordered-output operations inside a range-over-map
// body. funcBody is the whole body of the enclosing function, searched for
// a later sort call that would launder the order.
func (a *NDTaint) checkMapRange(prog *Program, pkg *Package, funcBody *ast.BlockStmt, rng *ast.RangeStmt, report func(ast.Node, string, ...any)) {
	// Method names whose call inside the loop emits or accumulates ordered
	// output. The Add* family is only ordered on the row/cell builders in
	// internal/report and internal/golden — counters.Set.Add is a
	// commutative increment and must stay legal — so those match only when
	// the receiver's type lives in one of the ordered-output packages.
	// Encoders and writers are ordered wherever they appear.
	orderedAppends := map[string]bool{
		"Add": true, "AddF": true, "AddTol": true, "AddUnit": true,
	}
	orderedWriters := map[string]bool{
		"Encode": true, "Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(pkg.Info, n); fn != nil {
				if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && isPrintName(fn.Name()) {
					report(n, "fmt.%s inside range over map emits in nondeterministic order; iterate sorted keys", fn.Name())
					return true
				}
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok && fn.Type().(*types.Signature).Recv() != nil {
					ordered := orderedWriters[fn.Name()] ||
						(orderedAppends[fn.Name()] && recvInOrderedPackage(fn))
					if ordered {
						report(n, "%s.%s inside range over map appends in nondeterministic order; iterate sorted keys",
							exprString(sel.X), fn.Name())
						return true
					}
				}
			}
		case *ast.AssignStmt:
			// v = append(v, ...) growing a slice declared outside the loop.
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "append" {
					continue
				}
				if _, builtin := pkg.Info.Uses[id].(*types.Builtin); !builtin {
					continue
				}
				obj := assignedObj(pkg.Info, n.Lhs[i])
				if obj == nil {
					continue
				}
				// Declared inside the loop: order cannot escape.
				if obj.Pos() >= rng.Body.Pos() && obj.Pos() <= rng.Body.End() {
					continue
				}
				// Sorted after the loop in the same function: order is
				// laundered before anyone observes it.
				if sortedAfter(pkg.Info, funcBody, rng, obj) {
					continue
				}
				report(n, "append to %q under range over map collects in nondeterministic order; sort the keys first or sort %q afterwards",
					obj.Name(), obj.Name())
			}
		}
		return true
	})
}

// orderedPackages are the package path suffixes whose Add* builder
// methods accumulate ordered rows/cells.
var orderedPackages = []string{"internal/report", "internal/golden"}

// recvInOrderedPackage reports whether a method's receiver type is
// declared in one of the ordered-output packages.
func recvInOrderedPackage(fn *types.Func) bool {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	for _, p := range orderedPackages {
		if pathHasSuffix(named.Obj().Pkg().Path(), p) {
			return true
		}
	}
	return false
}

// isPrintName reports whether a fmt function name writes output (Sprint*
// only formats, so it does not count).
func isPrintName(name string) bool {
	switch name {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
		return true
	}
	return false
}

// assignedObj resolves the variable object behind an assignment target
// identifier, or nil for anything more structured.
func assignedObj(info *types.Info, lhs ast.Expr) types.Object {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// sortedAfter reports whether obj is passed to a sort/slices call after
// the range statement within the enclosing function body — the
// collect-then-sort idiom.
func sortedAfter(info *types.Info, funcBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			used := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && info.Uses[id] == obj {
					used = true
				}
				return !used
			})
			if used {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// exprString renders a short receiver expression for messages.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	default:
		return "receiver"
	}
}
