package analysis_test

import (
	"bufio"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"xeonomp/internal/analysis"
)

// Fixture tests: each module under testdata/src seeds violations for one
// analyzer, annotated in-line as
//
//	offending code // want `substring of the expected message`
//
// The harness demands an exact match between annotations and diagnostics —
// every want must be hit on its own line, and every diagnostic must be
// wanted — so a fixture both proves the analyzer fires and pins the lines
// it must stay quiet on.

var wantRe = regexp.MustCompile("// want `([^`]*)`")

type expectation struct {
	file   string // fixture-relative path
	line   int
	substr string
	hit    bool
}

func loadFixture(t *testing.T, name string) (*analysis.Program, string) {
	t.Helper()
	root := filepath.Join("testdata", "src", name)
	prog, err := (&analysis.Loader{Root: root}).Load()
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	abs, err := filepath.Abs(root)
	if err != nil {
		t.Fatal(err)
	}
	return prog, abs
}

// wantsIn scans every fixture source file for want annotations.
func wantsIn(t *testing.T, root string) []*expectation {
	t.Helper()
	var wants []*expectation
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				wants = append(wants, &expectation{file: rel, line: line, substr: m[1]})
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

func checkFixture(t *testing.T, name string, analyzers []analysis.Analyzer) {
	t.Helper()
	prog, root := loadFixture(t, name)
	diags := prog.Run(analyzers)
	wants := wantsIn(t, root)
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == rel && w.line == d.Pos.Line && strings.Contains(d.Message, w.substr) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s:%d: [%s] %s", rel, d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("missing diagnostic at %s:%d containing %q", w.file, w.line, w.substr)
		}
	}
}

func TestTaint(t *testing.T) {
	checkFixture(t, "taint", []analysis.Analyzer{&analysis.NDTaint{}})
}

func TestDimension(t *testing.T) {
	checkFixture(t, "dimension", []analysis.Analyzer{&analysis.Dimension{}})
}

func TestUnitSafety(t *testing.T) {
	checkFixture(t, "unitsafety", []analysis.Analyzer{&analysis.UnitSafety{}})
}

func TestErrDrop(t *testing.T) {
	checkFixture(t, "errdrop", []analysis.Analyzer{&analysis.ErrDrop{}})
}

func TestLockCheck(t *testing.T) {
	checkFixture(t, "lockcheck", []analysis.Analyzer{&analysis.LockCheck{}})
}

func TestCounterParity(t *testing.T) {
	checkFixture(t, "counterparity", []analysis.Analyzer{&analysis.CounterParity{}})
}

// TestIgnoreDirectives pins the whole suppression lifecycle on one
// fixture: a valid ignore above the line and one on the line both
// suppress, a stale ignore is reported as unused, and the two malformed
// directives are reported rather than half-obeyed.
func TestIgnoreDirectives(t *testing.T) {
	prog, _ := loadFixture(t, "ignores")
	diags := prog.Run([]analysis.Analyzer{&analysis.ErrDrop{}})

	for _, d := range diags {
		if d.Analyzer == "errdrop" {
			t.Errorf("errdrop diagnostic survived its ignore directive: %s", d)
		}
	}
	for _, substr := range []string{
		"malformed ignore",
		`unknown analyzer "nosuch"`,
		"unused ignore directive",
	} {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic containing %q in %v", substr, diags)
		}
	}
	if len(diags) != 3 {
		t.Errorf("got %d diagnostics, want exactly 3: %v", len(diags), diags)
	}
}

// TestAnalyzersRegistered pins the registry: six analyzers, stable unique
// names, non-empty docs — the contract -list and the ignore grammar rely
// on.
func TestAnalyzersRegistered(t *testing.T) {
	as := analysis.Analyzers()
	if len(as) != 6 {
		t.Fatalf("got %d analyzers, want 6", len(as))
	}
	want := []string{"taint", "dimension", "unitsafety", "errdrop", "lockcheck", "counterparity"}
	for i, a := range as {
		if a.Name() != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name(), want[i])
		}
		if a.Doc() == "" {
			t.Errorf("analyzer %q has no doc", a.Name())
		}
	}
}

// copyFixture clones a fixture module into a temp dir so -fix can rewrite
// it without touching the checked-in sources.
func copyFixture(t *testing.T, name string) string {
	t.Helper()
	src := filepath.Join("testdata", "src", name)
	dst := t.TempDir()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

func runOn(t *testing.T, root string) (*analysis.Program, []analysis.Diagnostic) {
	t.Helper()
	prog, err := (&analysis.Loader{Root: root}).Load()
	if err != nil {
		t.Fatalf("loading %s: %v", root, err)
	}
	return prog, prog.Run(analysis.Analyzers())
}

// TestFixIdempotency pins the autofix contract on the fixable fixture:
// every finding there carries a fix, applying the fixes leaves the module
// lint-clean, and a second apply pass proposes no further edits.
func TestFixIdempotency(t *testing.T) {
	root := copyFixture(t, "fixable")

	prog, diags := runOn(t, root)
	if len(diags) == 0 {
		t.Fatal("fixable fixture produced no findings")
	}
	for _, d := range diags {
		if d.Fix == nil {
			t.Errorf("finding without a fix in the fixable fixture: %s", d)
		}
	}

	fixed, err := analysis.ApplyFixes(prog, diags, os.ReadFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) == 0 {
		t.Fatal("ApplyFixes produced no file rewrites")
	}
	for name, content := range fixed {
		if err := os.WriteFile(name, content, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	prog2, diags2 := runOn(t, root)
	if len(diags2) != 0 {
		t.Fatalf("findings remain after applying fixes: %v", diags2)
	}
	again, err := analysis.ApplyFixes(prog2, diags2, os.ReadFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Fatalf("second fix pass still proposes edits in %d file(s)", len(again))
	}
}

// TestUnifiedDiff pins the diff renderer -diff is built on.
func TestUnifiedDiff(t *testing.T) {
	oldSrc := []byte("a\nb\nc\nd\ne\nf\ng\n")
	newSrc := []byte("a\nb\nc\nX\ne\nf\ng\n")
	d := analysis.UnifiedDiff("f.go", oldSrc, newSrc)
	for _, wantLine := range []string{"--- f.go", "+++ f.go", "-d", "+X", "@@ -1,7 +1,7 @@"} {
		if !strings.Contains(d, wantLine) {
			t.Errorf("diff missing %q:\n%s", wantLine, d)
		}
	}
	if analysis.UnifiedDiff("f.go", oldSrc, oldSrc) != "" {
		t.Error("identical contents produced a non-empty diff")
	}
}
