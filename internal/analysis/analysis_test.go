package analysis_test

import (
	"bufio"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"xeonomp/internal/analysis"
)

// Fixture tests: each module under testdata/src seeds violations for one
// analyzer, annotated in-line as
//
//	offending code // want `substring of the expected message`
//
// The harness demands an exact match between annotations and diagnostics —
// every want must be hit on its own line, and every diagnostic must be
// wanted — so a fixture both proves the analyzer fires and pins the lines
// it must stay quiet on.

var wantRe = regexp.MustCompile("// want `([^`]*)`")

type expectation struct {
	file   string // fixture-relative path
	line   int
	substr string
	hit    bool
}

func loadFixture(t *testing.T, name string) (*analysis.Program, string) {
	t.Helper()
	root := filepath.Join("testdata", "src", name)
	prog, err := (&analysis.Loader{Root: root}).Load()
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	abs, err := filepath.Abs(root)
	if err != nil {
		t.Fatal(err)
	}
	return prog, abs
}

// wantsIn scans every fixture source file for want annotations.
func wantsIn(t *testing.T, root string) []*expectation {
	t.Helper()
	var wants []*expectation
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				wants = append(wants, &expectation{file: rel, line: line, substr: m[1]})
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

func checkFixture(t *testing.T, name string, analyzers []analysis.Analyzer) {
	t.Helper()
	prog, root := loadFixture(t, name)
	diags := prog.Run(analyzers)
	wants := wantsIn(t, root)
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == rel && w.line == d.Pos.Line && strings.Contains(d.Message, w.substr) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s:%d: [%s] %s", rel, d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("missing diagnostic at %s:%d containing %q", w.file, w.line, w.substr)
		}
	}
}

func TestTaint(t *testing.T) {
	checkFixture(t, "taint", []analysis.Analyzer{&analysis.NDTaint{}})
}

func TestDimension(t *testing.T) {
	checkFixture(t, "dimension", []analysis.Analyzer{&analysis.Dimension{}})
}

func TestUnitSafety(t *testing.T) {
	checkFixture(t, "unitsafety", []analysis.Analyzer{&analysis.UnitSafety{}})
}

func TestErrDrop(t *testing.T) {
	checkFixture(t, "errdrop", []analysis.Analyzer{&analysis.ErrDrop{}})
}

func TestCtxFlow(t *testing.T) {
	checkFixture(t, "ctxflow", []analysis.Analyzer{&analysis.CtxFlow{}})
}

func TestGoLeak(t *testing.T) {
	checkFixture(t, "goleak", []analysis.Analyzer{&analysis.GoLeak{}})
}

func TestLockOrder(t *testing.T) {
	checkFixture(t, "lockorder", []analysis.Analyzer{&analysis.LockOrder{}})
}

func TestCounterParity(t *testing.T) {
	checkFixture(t, "counterparity", []analysis.Analyzer{&analysis.CounterParity{}})
}

func TestHotAlloc(t *testing.T) {
	checkFixture(t, "hotalloc", []analysis.Analyzer{&analysis.HotAlloc{}})
}

func TestHotCall(t *testing.T) {
	checkFixture(t, "hotcall", []analysis.Analyzer{&analysis.HotCall{}})
}

func TestBenchParity(t *testing.T) {
	checkFixture(t, "benchparity", []analysis.Analyzer{&analysis.BenchParity{}})
}

// TestHotAllocFixSafety pins which hotalloc findings carry a machine
// fix: only trailing defers (deleting the keyword runs the call where
// it was queued) and zero-length makes (adding a capacity cannot change
// the length or produce cap < len). The fixture marks fix-carrying
// lines with "(fix)" after the want comment; every other finding must
// be report-only.
func TestHotAllocFixSafety(t *testing.T) {
	prog, root := loadFixture(t, "hotalloc")
	diags := prog.Run([]analysis.Analyzer{&analysis.HotAlloc{}})
	if len(diags) == 0 {
		t.Fatal("hotalloc fixture produced no diagnostics")
	}
	lines := map[string][]string{}
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := lines[rel]; !ok {
			src, err := os.ReadFile(d.Pos.Filename)
			if err != nil {
				t.Fatal(err)
			}
			lines[rel] = strings.Split(string(src), "\n")
		}
		wantFix := strings.Contains(lines[rel][d.Pos.Line-1], "(fix)")
		if (d.Fix != nil) != wantFix {
			t.Errorf("%s:%d: has fix = %v, want %v: %s", rel, d.Pos.Line, d.Fix != nil, wantFix, d.Message)
		}
	}
}

// TestParallelRunDeterministic pins the parallel driver's contract:
// whatever the worker count, the merged, sorted diagnostics are
// identical — per-package fan-out must not leak scheduling order into
// output.
func TestParallelRunDeterministic(t *testing.T) {
	run := func(workers int) []analysis.Diagnostic {
		prog, _ := loadFixture(t, "hotalloc")
		prog.Workers = workers
		return prog.Run([]analysis.Analyzer{&analysis.HotAlloc{}, &analysis.HotCall{}, &analysis.BenchParity{}})
	}
	want := run(1)
	if len(want) == 0 {
		t.Fatal("fixture produced no diagnostics to compare")
	}
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d diagnostics, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i].Pos != want[i].Pos || got[i].Analyzer != want[i].Analyzer ||
				got[i].Message != want[i].Message || got[i].Note != want[i].Note {
				t.Errorf("workers=%d: diagnostic %d differs:\n got %v\nwant %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestIgnoreDirectives pins the whole suppression lifecycle on one
// fixture: a valid ignore above the line and one on the line both
// suppress, a stale ignore is reported as unused, and the two malformed
// directives are reported rather than half-obeyed.
func TestIgnoreDirectives(t *testing.T) {
	prog, _ := loadFixture(t, "ignores")
	diags := prog.Run([]analysis.Analyzer{&analysis.ErrDrop{}})

	for _, d := range diags {
		if d.Analyzer == "errdrop" {
			t.Errorf("errdrop diagnostic survived its ignore directive: %s", d)
		}
	}
	for _, substr := range []string{
		"malformed ignore",
		`unknown analyzer "nosuch"`,
		"unused ignore directive",
	} {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic containing %q in %v", substr, diags)
		}
	}
	if len(diags) != 3 {
		t.Errorf("got %d diagnostics, want exactly 3: %v", len(diags), diags)
	}
}

// TestAnalyzersRegistered pins the registry: eleven analyzers, stable
// unique names, non-empty docs — the contract -list and the ignore
// grammar rely on.
func TestAnalyzersRegistered(t *testing.T) {
	as := analysis.Analyzers()
	if len(as) != 11 {
		t.Fatalf("got %d analyzers, want 11", len(as))
	}
	want := []string{"taint", "dimension", "unitsafety", "errdrop", "ctxflow", "goleak", "lockorder", "counterparity", "hotalloc", "hotcall", "benchparity"}
	for i, a := range as {
		if a.Name() != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name(), want[i])
		}
		if a.Doc() == "" {
			t.Errorf("analyzer %q has no doc", a.Name())
		}
	}
}

// copyFixture clones a fixture module into a temp dir so -fix can rewrite
// it without touching the checked-in sources.
func copyFixture(t *testing.T, name string) string {
	t.Helper()
	src := filepath.Join("testdata", "src", name)
	dst := t.TempDir()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

func runOn(t *testing.T, root string) (*analysis.Program, []analysis.Diagnostic) {
	t.Helper()
	prog, err := (&analysis.Loader{Root: root}).Load()
	if err != nil {
		t.Fatalf("loading %s: %v", root, err)
	}
	return prog, prog.Run(analysis.Analyzers())
}

// TestFixIdempotency pins the autofix contract on the fixable fixture:
// every finding there carries a fix, applying the fixes leaves the module
// lint-clean, and a second apply pass proposes no further edits.
func TestFixIdempotency(t *testing.T) {
	root := copyFixture(t, "fixable")

	prog, diags := runOn(t, root)
	if len(diags) == 0 {
		t.Fatal("fixable fixture produced no findings")
	}
	for _, d := range diags {
		if d.Fix == nil {
			t.Errorf("finding without a fix in the fixable fixture: %s", d)
		}
	}

	fixed, err := analysis.ApplyFixes(prog, diags, os.ReadFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) == 0 {
		t.Fatal("ApplyFixes produced no file rewrites")
	}
	for name, content := range fixed {
		if err := os.WriteFile(name, content, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	prog2, diags2 := runOn(t, root)
	if len(diags2) != 0 {
		t.Fatalf("findings remain after applying fixes: %v", diags2)
	}
	again, err := analysis.ApplyFixes(prog2, diags2, os.ReadFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Fatalf("second fix pass still proposes edits in %d file(s)", len(again))
	}
}

// TestSortDiagnostics pins the total diagnostic order -json output and
// the CI problem matcher depend on: file, line, column, analyzer,
// message — every tie broken, so shuffled input always lands in one
// diff-stable order.
func TestSortDiagnostics(t *testing.T) {
	mk := func(file string, line, col int, analyzer, msg string) analysis.Diagnostic {
		var d analysis.Diagnostic
		d.Pos.Filename, d.Pos.Line, d.Pos.Column = file, line, col
		d.Analyzer, d.Message = analyzer, msg
		return d
	}
	want := []analysis.Diagnostic{
		mk("a.go", 1, 1, "benchparity", "analyzer order is lexical, not registry"),
		mk("a.go", 1, 1, "ctxflow", "first"),
		mk("a.go", 1, 1, "errdrop", "same spot, later analyzer"),
		mk("a.go", 1, 1, "errdrop", "same spot, same analyzer, later message"),
		mk("a.go", 1, 1, "hotalloc", "note-carrying diagnostics obey the same keys"),
		mk("a.go", 1, 2, "ctxflow", "later column"),
		mk("a.go", 2, 1, "ctxflow", "later line"),
		mk("b.go", 1, 1, "ctxflow", "later file"),
	}
	want[4].Note = true
	// Reversed input: every comparison key must do its job to restore it.
	got := make([]analysis.Diagnostic, len(want))
	for i := range want {
		got[len(want)-1-i] = want[i]
	}
	analysis.SortDiagnostics(got)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("position %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

// TestApplyFixesOverlap pins the overlap contract for fixes from two
// analyzers aimed at the same line: non-overlapping edits all apply,
// truly overlapping edits resolve deterministically to the earlier start
// regardless of the order diagnostics arrive in.
func TestApplyFixesOverlap(t *testing.T) {
	prog, root := loadFixture(t, "ignores")
	var file string
	var base int // token.Pos offset base of the first fixture file
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			file = prog.Fset.Position(f.Pos()).Filename
			base = int(f.FileStart)
			break
		}
		break
	}
	_ = root
	src, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}

	edit := func(start, end int, text string) *analysis.SuggestedFix {
		return &analysis.SuggestedFix{Message: "test edit", Edits: []analysis.TextEdit{{
			Pos: token.Pos(base + start), End: token.Pos(base + end), NewText: text,
		}}}
	}
	diag := func(analyzer string, fix *analysis.SuggestedFix) analysis.Diagnostic {
		var d analysis.Diagnostic
		d.Pos.Filename = file
		d.Analyzer = analyzer
		d.Message = "synthetic"
		d.Fix = fix
		return d
	}

	// Same line, non-overlapping: an insertion at column 0 (ctxflow) and a
	// replacement at columns 3-5 (errdrop) must both land.
	both := []analysis.Diagnostic{
		diag("ctxflow", edit(0, 0, "A")),
		diag("errdrop", edit(3, 5, "BB")),
	}
	fixed, err := analysis.ApplyFixes(prog, both, os.ReadFile)
	if err != nil {
		t.Fatal(err)
	}
	wantBoth := "A" + string(src[:3]) + "BB" + string(src[5:])
	if got := string(fixed[file]); got != wantBoth {
		t.Errorf("non-overlapping same-line edits: got %q..., want %q...", got[:10], wantBoth[:10])
	}

	// Truly overlapping ranges: earlier start wins, and the outcome is the
	// same whichever analyzer's diagnostic comes first.
	overlapping := [][]analysis.Diagnostic{
		{diag("ctxflow", edit(0, 4, "X")), diag("errdrop", edit(2, 6, "Y"))},
		{diag("errdrop", edit(2, 6, "Y")), diag("ctxflow", edit(0, 4, "X"))},
	}
	wantOverlap := "X" + string(src[4:])
	for i, diags := range overlapping {
		fixed, err := analysis.ApplyFixes(prog, diags, os.ReadFile)
		if err != nil {
			t.Fatal(err)
		}
		if got := string(fixed[file]); got != wantOverlap {
			t.Errorf("overlap order %d: got %q..., want earlier-start edit to win", i, got[:10])
		}
	}
}

// TestUnifiedDiff pins the diff renderer -diff is built on.
func TestUnifiedDiff(t *testing.T) {
	oldSrc := []byte("a\nb\nc\nd\ne\nf\ng\n")
	newSrc := []byte("a\nb\nc\nX\ne\nf\ng\n")
	d := analysis.UnifiedDiff("f.go", oldSrc, newSrc)
	for _, wantLine := range []string{"--- f.go", "+++ f.go", "-d", "+X", "@@ -1,7 +1,7 @@"} {
		if !strings.Contains(d, wantLine) {
			t.Errorf("diff missing %q:\n%s", wantLine, d)
		}
	}
	if analysis.UnifiedDiff("f.go", oldSrc, oldSrc) != "" {
		t.Error("identical contents produced a non-empty diff")
	}
}
