package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtxFlow enforces that cancellation actually reaches the places that can
// block. The server era (cmd/xeond) made context.Context the lifetime
// currency of the module: a study request's ctx must be able to preempt
// every channel hand-off, cond wait, and backend call downstream of it,
// or Ctrl-C and client disconnects strand goroutines mid-cell. Four rules:
//
//   - no fresh roots: context.Background()/TODO() outside package main,
//     tests, and single-statement wrappers is a finding (with a -fix
//     replacing it when a ctx parameter is in scope)
//   - no dropped ctx at the frontier: a function holding a ctx parameter
//     must not call a module function that may block but accepts no
//     context — the interprocedural "ctx stops here" bug
//   - guarded hand-offs: with ctx in scope, unbuffered sends, receives
//     from never-closed channels, ranges over never-closed channels, and
//     sync.Cond.Wait without a context.AfterFunc bridge are findings
//     unless they sit inside a select with a ctx.Done() arm or default
//   - cancellable selects: a select with neither a ctx.Done() arm nor a
//     default cannot be preempted; when the enclosing function returns
//     error, the finding carries a -fix inserting the Done arm
//
// Blocking facts come from the shared concurrency summaries (conc.go),
// so helpers that block only transitively are still caught at the call.
type CtxFlow struct{}

func (*CtxFlow) Name() string { return "ctxflow" }
func (*CtxFlow) Doc() string {
	return "flag context roots, dropped ctx at blocking frontiers, and unguarded blocking ops"
}

func (a *CtxFlow) Check(prog *Program, pkg *Package) []Diagnostic {
	facts := prog.Facts()
	cf := facts.concFor()
	var diags []Diagnostic
	for _, b := range facts.Bodies(pkg) {
		diags = append(diags, a.checkBody(prog, pkg, cf, b)...)
	}
	return diags
}

func (a *CtxFlow) checkBody(prog *Program, pkg *Package, cf *concFacts, b Body) []Diagnostic {
	var diags []Diagnostic
	report := func(n ast.Node, fix *SuggestedFix, format string, args ...any) {
		diags = append(diags, Diagnostic{Pos: prog.Fset.Position(n.Pos()), Analyzer: a.Name(), Message: fmt.Sprintf(format, args...), Fix: fix})
	}
	info := pkg.Info
	decl, _ := b.Owner.(*ast.FuncDecl)
	filename := prog.Fset.Position(b.Block.Pos()).Filename
	inTest := strings.HasSuffix(filename, "_test.go")

	var ctxVar *types.Var
	if decl != nil {
		ctxVar = ctxParamVar(info, decl.Type)
	} else if lit, ok := b.Owner.(*ast.FuncLit); ok {
		ctxVar = ctxParamVar(info, lit.Type)
	}

	// Fresh-root rule, independent of whether a ctx is in scope.
	if pkg.Name != "main" && !inTest {
		ast.Inspect(b.Block, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
			if fn.Name() != "Background" && fn.Name() != "TODO" {
				return true
			}
			// The single-return wrapper shape is only sanctioned for
			// ctx-less entry points; with a ctx in hand there is no excuse.
			if ctxVar == nil && isCompatWrapper(b.Block, call) {
				return true
			}
			var fix *SuggestedFix
			if ctxVar != nil {
				fix = &SuggestedFix{
					Message: fmt.Sprintf("use the in-scope context %s", ctxVar.Name()),
					Edits:   []TextEdit{{Pos: call.Pos(), End: call.End(), NewText: ctxVar.Name()}},
				}
			}
			report(call, fix, "context.%s() starts a fresh context root; thread the caller's ctx instead", fn.Name())
			return true
		})
	}

	// The remaining rules only bind when a ctx parameter is in scope: that
	// parameter is a promise this call tree is cancellable.
	if ctxVar == nil {
		return diags
	}

	// Buffer/close evidence is module-wide: the close routinely lives in
	// the producer while the guarded receive lives here.
	buffered := cf.bufferedAnywhere
	closed := cf.closedAnywhere
	hasAfterFunc := callsAfterFunc(info, b.Block)

	// Selects first: a guarded select exempts the hand-offs inside it, an
	// unguarded one is reported once at the select.
	var selectRanges [][2]token.Pos
	ast.Inspect(b.Block, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		selectRanges = append(selectRanges, [2]token.Pos{sel.Pos(), sel.End()})
		if selectHasDoneArm(info, sel) {
			return true
		}
		if selectCommsEvidenced(info, sel, buffered, closed) {
			return true
		}
		var fix *SuggestedFix
		if returnsExactlyError(decl) {
			fix = &SuggestedFix{
				Message: fmt.Sprintf("add a <-%s.Done() arm returning %s.Err()", ctxVar.Name(), ctxVar.Name()),
				Edits: []TextEdit{{
					Pos: sel.Body.Rbrace, End: sel.Body.Rbrace,
					NewText: fmt.Sprintf("case <-%s.Done():\n\t\treturn %s.Err()\n\t", ctxVar.Name(), ctxVar.Name()),
				}},
			}
		}
		report(sel, fix, "select has no <-%s.Done() arm or default; cancellation cannot preempt it", ctxVar.Name())
		return true
	})
	inSelect := func(n ast.Node) bool {
		for _, r := range selectRanges {
			if n.Pos() >= r[0] && n.End() <= r[1] {
				return true
			}
		}
		return false
	}

	ast.Inspect(b.Block, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if inSelect(n) || buffered[chainObject(info, n.Chan)] {
				return true
			}
			report(n, nil, "send on unbuffered channel %s with ctx in scope may block forever; select on it with <-%s.Done()",
				exprString(n.Chan), ctxVar.Name())
		case *ast.UnaryExpr:
			if n.Op != token.ARROW || inSelect(n) || isDoneCall(info, n.X) {
				return true
			}
			obj := chainObject(info, n.X)
			if closed[obj] || buffered[obj] {
				return true
			}
			report(n, nil, "receive from %s with ctx in scope may block forever; select on it with <-%s.Done()",
				exprString(n.X), ctxVar.Name())
		case *ast.RangeStmt:
			if !isChanType(info, n.X) || closed[chainObject(info, n.X)] {
				return true
			}
			report(n, nil, "range over channel %s that nothing closes; close it or select with <-%s.Done()",
				exprString(n.X), ctxVar.Name())
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			if fn == nil {
				return true
			}
			if kind, method := syncPrimitiveMethod(fn); kind == "Cond" && method == "Wait" && !hasAfterFunc {
				report(n, nil, "sync.Cond.Wait with ctx in scope has no context.AfterFunc bridge; cancellation cannot wake the waiter")
				return true
			}
			if isHTTPRoundTrip(fn) {
				report(n, nil, "http.%s performs a round-trip that ignores ctx; use http.NewRequestWithContext", fn.Name())
				return true
			}
			// Frontier rule: the ctx stops here if the callee may block but
			// cannot be handed the context.
			if cf.facts.FuncOf[fn] != nil && cf.blocking[fn] && !funcHasCtxParam(fn) {
				report(n, nil, "%s may block but takes no context; ctx stops here — thread it through", moduleFuncName(fn))
			}
		}
		return true
	})
	return diags
}

// isCompatWrapper reports whether the call sits in a single-statement
// `return F(context.Background(), ...)` body — the sanctioned shape for
// context-free compatibility entry points.
func isCompatWrapper(block *ast.BlockStmt, call *ast.CallExpr) bool {
	if len(block.List) != 1 {
		return false
	}
	ret, ok := block.List[0].(*ast.ReturnStmt)
	if !ok {
		return false
	}
	return call.Pos() >= ret.Pos() && call.End() <= ret.End()
}

// selectCommsEvidenced reports whether every comm clause of a select has
// its own termination evidence (buffered send target, receive from a
// channel closed in this body), making a Done arm redundant.
func selectCommsEvidenced(info *types.Info, sel *ast.SelectStmt, buffered, closed map[types.Object]bool) bool {
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		if !commEvidenced(info, cc.Comm, buffered, closed) {
			return false
		}
	}
	return true
}

func commEvidenced(info *types.Info, comm ast.Stmt, buffered, closed map[types.Object]bool) bool {
	recvOK := func(e ast.Expr) bool {
		u, ok := ast.Unparen(e).(*ast.UnaryExpr)
		if !ok || u.Op != token.ARROW {
			return false
		}
		if isDoneCall(info, u.X) {
			return true
		}
		obj := chainObject(info, u.X)
		return closed[obj] || buffered[obj]
	}
	switch comm := comm.(type) {
	case *ast.SendStmt:
		return buffered[chainObject(info, comm.Chan)]
	case *ast.ExprStmt:
		return recvOK(comm.X)
	case *ast.AssignStmt:
		for _, r := range comm.Rhs {
			if !recvOK(r) {
				return false
			}
		}
		return true
	}
	return false
}

// returnsExactlyError reports whether decl's result list is exactly one
// unnamed-or-named error — the shape the Done-arm autofix can complete
// with `return ctx.Err()`.
func returnsExactlyError(decl *ast.FuncDecl) bool {
	if decl == nil || decl.Type.Results == nil {
		return false
	}
	results := decl.Type.Results.List
	if len(results) != 1 || len(results[0].Names) > 1 {
		return false
	}
	id, ok := results[0].Type.(*ast.Ident)
	return ok && id.Name == "error"
}

// moduleFuncName renders a module function for messages: "pkg.Func" or
// "pkg.Type.Method".
func moduleFuncName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}
