// Package ig exercises the //xeonlint:ignore directive grammar: a
// suppression above the line, a suppression on the line, a stale directive
// that suppresses nothing, and two malformed directives.
package ig

//xeonlint:ignore
//xeonlint:ignore nosuch because reasons

func checked() error { return nil }

func suppressedAbove() {
	//xeonlint:ignore errdrop the result only matters to the caller in this fixture
	checked()
}

func suppressedSameLine() {
	checked() //xeonlint:ignore errdrop recorded elsewhere in this fixture
}

func stale() error {
	//xeonlint:ignore errdrop stale directive kept for the unused-ignore test
	return checked()
}

var _ = suppressedAbove
var _ = suppressedSameLine
var _ = stale
