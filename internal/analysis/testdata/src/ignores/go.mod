module ig

go 1.22
