// Package counters mimics the real metrics schema: one field is rendered
// elsewhere, one is orphaned, and one event name was forgotten.
package counters

// Metrics is the per-run metric record.
type Metrics struct {
	Used   float64
	Orphan float64 // want `counters.Metrics field Orphan has no renderer/exporter use`
}

// Event identifies one hardware counter.
type Event int

// Events.
const (
	EvCycles Event = iota
	EvMisses
	numEvents
)

var eventNames = [numEvents]string{
	"cycles",
	"", // want `empty event name`
}

var _ = eventNames
