// Package user registers obs metrics the way instrumented packages do:
// package-level vars holding the handles.
package user

import "cp/obs"

var (
	reg   obs.Registry
	hits  = obs.NewCounter(obs.MetricHits)
	depth = reg.Gauge(obs.MetricDepth)
)

// Touch keeps the handles referenced.
func Touch() (*obs.Counter, *obs.Gauge) { return hits, depth }
