// Package obs mirrors the metric registry shape the analyzer anchors on:
// Metric* string constants name metrics, NewCounter and friends register
// them. A constant nobody registers is a metric that can never appear in
// a snapshot.
package obs

// Counter is a stand-in for the real atomic counter.
type Counter struct{ v uint64 }

// NewCounter registers a counter under name.
func NewCounter(name string) *Counter { return &Counter{} }

// Gauge is a stand-in for the real gauge.
type Gauge struct{ v uint64 }

// Registry is a stand-in metric registry; its methods are registration
// sites too.
type Registry struct{}

// Gauge registers a gauge under name.
func (r *Registry) Gauge(name string) *Gauge { return &Gauge{} }

const (
	// MetricHits is registered by the user package below.
	MetricHits = "cache.hits"
	// MetricDepth is registered through a Registry method.
	MetricDepth = "queue.depth"
	// MetricOrphan is declared but never registered anywhere.
	MetricOrphan = "cache.orphan" // want `obs metric constant MetricOrphan ("cache.orphan") is never registered`
)
