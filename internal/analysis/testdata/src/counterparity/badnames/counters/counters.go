// Package counters (badnames) under-fills its event-name table: two Event
// constants, one name.
package counters

// Event identifies one hardware counter.
type Event int

// Events.
const (
	EvA Event = iota
	EvB
)

var eventNames = [2]string{ // want `eventNames has 1 entries for 2 Event constants`
	"a",
}

var _ = eventNames
