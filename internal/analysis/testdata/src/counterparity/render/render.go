// Package render is the consumer side of the parity check: reading a
// Metrics field here is what keeps it off the orphan list.
package render

import "cp/counters"

// Row renders the one metric this fixture cares about.
func Row(m counters.Metrics) float64 {
	return m.Used
}
