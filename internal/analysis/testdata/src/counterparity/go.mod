module cp

go 1.22
