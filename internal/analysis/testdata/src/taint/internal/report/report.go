// Package report mimics the real ordered row builder: Add appends a row,
// so calling it under a map range leaks iteration order.
package report

// Table accumulates rows in call order.
type Table struct {
	rows [][]string
}

// Add appends one row.
func (t *Table) Add(cells ...string) {
	t.rows = append(t.rows, cells)
}
