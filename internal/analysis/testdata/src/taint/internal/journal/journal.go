// Package journal sits on the wall-clock allowlist: progress reporting is
// allowed to observe real time, so nothing here may be flagged.
package journal

import (
	"context"
	"time"
)

// Stamp returns the current wall-clock time. time.Time is plain data, not
// an opaque handle, so clock taint survives the package boundary.
func Stamp() time.Time {
	return time.Now()
}

// Timer is an opaque wall-clock handle; its timing content feeds progress
// reporting inside this package, never artifacts.
type Timer struct {
	start time.Time
}

// StartTimer captures the current time behind an opaque handle — a
// clock-taint boundary for callers.
func StartTimer() Timer {
	return Timer{start: time.Now()}
}

type ctxKey struct{}

// Mark derives a context carrying the current time, mirroring a span
// being attached to a request context. The returned context is an opaque
// handle, so threading it through simulation code must not taint results.
func Mark(ctx context.Context) (context.Context, Timer) {
	t := StartTimer()
	return context.WithValue(ctx, ctxKey{}, t), t
}
