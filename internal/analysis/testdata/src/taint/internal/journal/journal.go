// Package journal sits on the wall-clock allowlist: progress reporting is
// allowed to observe real time, so nothing here may be flagged.
package journal

import "time"

// Stamp returns the current wall-clock time.
func Stamp() time.Time {
	return time.Now()
}
