// Package golden mimics the real golden-artifact exporter: every exported
// method is a serialization sink for the taint analyzer.
package golden

// Artifact accumulates named metric values for serialization.
type Artifact struct {
	names  []string
	values []float64
}

// Add records one metric value.
func (a *Artifact) Add(name string, v float64) {
	a.names = append(a.names, name)
	a.values = append(a.values, v)
}

// AddUnit records one metric value with a unit label.
func (a *Artifact) AddUnit(name string, v float64, unit string) {
	a.Add(name+"_"+unit, v)
}
