// Package taint seeds local determinism violations and legal counterparts;
// flow.go adds the interprocedural cases.
package taint

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"taint/internal/report"
	"taint/tally"
)

var clock = time.Now // want `time.Now reads the wall clock`

func stamp() int64 {
	return time.Now().UnixNano() // want `time.Now reads the wall clock`
}

func roll() int {
	return rand.Intn(6) // want `rand.Intn draws from the global math/rand source`
}

func seeded() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(6)
}

func dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt.Println inside range over map`
	}
}

func collect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" under range over map`
	}
	return keys
}

func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectLocal(m map[string][]int) {
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		_ = local
	}
}

func render(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `b.WriteString inside range over map`
	}
	return b.String()
}

func tabulate(m map[string]float64, t *report.Table) {
	for k, v := range m {
		t.Add(k, fmt.Sprint(v)) // want `t.Add inside range over map`
	}
}

func total(m map[string]float64, s *tally.Set) {
	for k, v := range m {
		s.Add(k, v)
	}
}

var _ = clock
