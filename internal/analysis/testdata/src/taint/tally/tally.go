// Package tally mimics the commutative counter set: Add is an increment,
// not an ordered append, so calling it under a map range is legal.
package tally

// Set is a bag of named totals.
type Set struct {
	c map[string]float64
}

// Add increments a named total; order of calls cannot be observed.
func (s *Set) Add(k string, v float64) {
	if s.c == nil {
		s.c = map[string]float64{}
	}
	s.c[k] += v
}
