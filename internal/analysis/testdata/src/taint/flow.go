// Interprocedural cases: nondeterminism laundered through helpers,
// struct fields, and package boundaries must be caught at the sink.
package taint

import (
	"context"
	"math/rand"
	"os"
	"time"

	"taint/internal/golden"
	"taint/internal/journal"
	"taint/pipe"
)

// elapsedNs reads the clock behind a helper; the local blanket check
// fires here, and the flow is tracked onward.
func elapsedNs() float64 {
	return float64(time.Now().UnixNano()) // want `time.Now reads the wall clock`
}

type run struct {
	elapsed float64
}

// record launders the clock read through a struct field.
func record() run {
	return run{elapsed: elapsedNs()}
}

// exportRun is caught at the sink: two helpers and a field away from the
// time.Now call.
func exportRun(a *golden.Artifact) {
	r := record()
	a.Add("elapsed_ns", r.elapsed) // want `wall-clock-tainted value reaches golden.Artifact.Add`
}

// label is an environment read — legal on its own (no blanket check)...
func label() string {
	return os.Getenv("XEON_LABEL")
}

// ...until the value reaches an exporter.
func exportLabel(a *golden.Artifact) {
	a.Add(label(), 1) // want `environment-tainted value reaches golden.Artifact.Add`
}

// put forwards its argument to a sink; callers passing tainted values are
// reported even though put itself is clean.
func put(a *golden.Artifact, name string, v float64) {
	a.AddUnit(name, v, "ns")
}

func exportDraw(a *golden.Artifact) {
	put(a, "draw", rand.Float64()) // want `rand.Float64 draws from the global math/rand source` // want `unseeded-rand-tainted argument to taint.put reaches a serialization sink inside it`
}

// journal.Stamp may read the clock (allowlisted package), but the value
// escaping into an artifact is still a finding — at the sink, not in the
// journal.
func exportStamp(a *golden.Artifact) {
	t := journal.Stamp()
	a.Add("stamp_ns", float64(t.UnixNano())) // want `wall-clock-tainted value reaches golden.Artifact.Add`
}

// exportHost crosses a package boundary: the env read sits two calls and
// a struct field away, in package pipe.
func exportHost(a *golden.Artifact) {
	a.Add(pipe.Describe().Host, 0) // want `environment-tainted value reaches golden.Artifact.Add`
}

// Negative: an explicitly seeded generator is deterministic.
func seededDraw(a *golden.Artifact) {
	r := rand.New(rand.NewSource(42))
	a.Add("seeded", r.Float64())
}

// Negative: values derived from constants flow freely.
func deterministic(a *golden.Artifact) {
	a.Add("pi", 3.14159)
}

// Negative: an environment read that never reaches a sink is harness
// tuning, not nondeterministic data.
func verbose() bool {
	return os.Getenv("XEON_VERBOSE") == "1"
}

// Negative: an opaque timing handle from an allowlisted package is a
// clock-taint boundary — instrumented code holding one stays clean.
func timedExport(a *golden.Artifact) {
	t := journal.StartTimer()
	defer observe(t)
	a.Add("cells", 3)
}

func observe(journal.Timer) {}

// Negative: a context threaded through an allowlisted marker (a span
// attached to the request context) flows into computation without marking
// the computed results clock-derived. Before the boundary rule, the
// tuple assignment tainted ctx, ctx.Err() tainted the helper's return,
// and every exported value downstream was flagged.
func exportWithContext(ctx context.Context, a *golden.Artifact) {
	ctx, t := journal.Mark(ctx)
	defer observe(t)
	v, err := compute(ctx)
	if err != nil {
		return
	}
	a.Add("computed", v)
}

func compute(ctx context.Context) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return 2.5, nil
}
