module taint

go 1.22
