// Package pipe launders an environment read across a package boundary:
// the taint must survive the helper call, the struct field, and the
// import edge to be caught at the sink in the root package.
package pipe

import "os"

// Node reads the host name from the environment.
func Node() string {
	return os.Getenv("XEON_NODE")
}

// Meta describes where a run happened.
type Meta struct {
	Host string
	Tag  string
}

// Describe builds run metadata; Host carries the environment read.
func Describe() Meta {
	return Meta{Host: Node(), Tag: "fixed"}
}
