// Package inner holds Mix: hot by directive, benchmark-covered only
// transitively — BenchmarkCovered → runCovered → Covered → Mix.
package inner

// Mix folds one value.
//
//xeonlint:hot
func Mix(v int) int {
	return v*3 + 1
}
