package benchparity

import "testing"

var sinkVal int

// runCovered is the helper hop between the benchmark and the hot
// function: reachability must follow it.
func runCovered() int {
	return Covered([]int{1, 2, 3})
}

func BenchmarkCovered(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkVal = runCovered()
	}
}
