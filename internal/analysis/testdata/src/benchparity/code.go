// Package benchparity seeds the benchmark-coverage check: hot functions
// must be reachable from a Benchmark*, directly, through a test helper,
// or across packages — and an unreached one is a finding.
package benchparity

import "benchparity/inner"

// Covered is hot and reached by BenchmarkCovered through the runCovered
// test helper; its call into inner.Mix extends coverage interprocedurally.
//
//xeonlint:hot
func Covered(vals []int) int {
	total := 0
	for _, v := range vals {
		total += inner.Mix(v)
	}
	return total
}

// Orphan is hot with no benchmark anywhere on a path to it.
//
//xeonlint:hot
func Orphan(v int) int { // want `not reachable from any Benchmark`
	return v * v
}

// Scratch is hot and deliberately unbenchmarked: the reasoned ignore
// keeps it quiet, pinning the suppression path.
//
//xeonlint:hot
//xeonlint:ignore benchparity measured through Covered's composite benchmark; a solo benchmark would duplicate it
func Scratch(v int) int {
	return v + 1
}

// plain is cold: no benchmark requirement applies.
func plain(v int) int { return v - 1 }

var (
	_ = Orphan
	_ = Scratch
	_ = plain
)
