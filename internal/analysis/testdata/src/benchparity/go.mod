module benchparity

go 1.22
