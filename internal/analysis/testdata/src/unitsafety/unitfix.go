// Package unitfix seeds magic unit-conversion literals and legal uses.
package unitfix

import "unitfix/internal/units"

func toGB(bytes float64) float64 {
	return bytes / 1e9 // want `magic conversion literal 1e9`
}

func toMops(ops, secs float64) float64 {
	return ops / secs / 1_000_000 // want `magic conversion literal 1_000_000`
}

func cyclesAt(seconds float64) float64 {
	return seconds * 2.8e9 // want `magic conversion literal 2.8e9`
}

func named(bytes float64) float64 {
	return bytes / units.GB
}

func notAFactor(n int) int {
	return n + 1000
}

func powerOfTwo(n int64) int64 {
	return n * 1024
}

var _ = toGB
var _ = toMops
var _ = cyclesAt
var _ = named
var _ = notAFactor
var _ = powerOfTwo
