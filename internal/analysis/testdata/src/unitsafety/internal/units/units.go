// Package units is the one place allowed to spell conversion factors as
// literals: this is where they get their names.
package units

// GB is the decimal gigabyte.
const GB float64 = 1e9

// ToGB converts bytes to decimal gigabytes.
func ToGB(b float64) float64 {
	return b / 1e9
}
