// Package inner holds the blocking helpers the frontier rule is checked
// against across a package boundary.
package inner

import "context"

// Drain blocks on a receive but accepts no context — calling it with a
// ctx in scope is the cross-package frontier finding.
func Drain(ch chan int) int {
	return <-ch
}

// DrainCtx is the fixed twin: same blocking receive, but cancellable.
func DrainCtx(ctx context.Context, ch chan int) (int, error) {
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// Pure is compute-only; calling it with a ctx in scope is fine.
func Pure(n int) int {
	return n * 2
}
