// Command main proves package main may mint root contexts.
package main

import "context"

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_ = ctx
}
