module ctxflow

go 1.22
