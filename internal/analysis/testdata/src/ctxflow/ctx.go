// Package ctxflow seeds dropped contexts, fresh roots, and unguarded
// blocking operations for the ctxflow analyzer.
package ctxflow

import (
	"context"
	"net/http"
	"sync"

	"ctxflow/inner"
)

func run(ctx context.Context) error {
	return ctx.Err()
}

// freshRoot mints a root context mid-module: finding.
func freshRoot() error {
	ctx := context.Background() // want `context.Background() starts a fresh context root`
	return run(ctx)
}

// freshTODO drops the ctx it already has on the floor: finding, with a
// replacement fix.
func freshTODO(ctx context.Context) error {
	return run(context.TODO()) // want `context.TODO() starts a fresh context root`
}

// Run is the sanctioned compat-wrapper shape: a ctx-less entry point
// whose whole body is one return through Background.
func Run() error {
	return run(context.Background())
}

// Deprecated: use Run. The Deprecated marker buys no exemption — only
// the single-statement wrapper shape above does.
func OldRun() error {
	err := run(context.Background()) // want `context.Background() starts a fresh context root`
	return err
}

// frontier calls a blocking helper across the package boundary that has
// no way to receive the ctx: the interprocedural finding.
func frontier(ctx context.Context, ch chan int) int {
	return inner.Drain(ch) // want `inner.Drain may block but takes no context`
}

// frontierFixed threads the ctx through the cancellable twin.
func frontierFixed(ctx context.Context, ch chan int) (int, error) {
	return inner.DrainCtx(ctx, ch)
}

// frontierPure calls compute-only code; no finding.
func frontierPure(ctx context.Context) int {
	return inner.Pure(3)
}

// pump blocks (unbuffered send) and takes no ctx; it is fine on its own —
// the finding belongs to the ctx-holding caller below.
func pump(ch chan int) {
	ch <- 1
}

func frontierLocal(ctx context.Context, ch chan int) {
	pump(ch) // want `ctxflow.pump may block but takes no context`
}

func unguardedSend(ctx context.Context, ch chan int) {
	ch <- 1 // want `send on unbuffered channel ch with ctx in scope may block forever`
}

func bufferedSend(ctx context.Context) {
	ch := make(chan int, 1)
	ch <- 1
}

func unguardedRecv(ctx context.Context, ch chan int) int {
	return <-ch // want `receive from ch with ctx in scope may block forever`
}

func guardedRecv(ctx context.Context, ch chan int) (int, error) {
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

func noDoneSelect(ctx context.Context, a, b chan int) error {
	select { // want `select has no <-ctx.Done() arm or default`
	case <-a:
	case <-b:
	}
	return nil
}

func defaultSelect(ctx context.Context, a chan int) {
	select {
	case <-a:
	default:
	}
}

func rangeUnclosed(ctx context.Context, ch chan int) {
	for v := range ch { // want `range over channel ch that nothing closes`
		_ = v
	}
}

func rangeClosed(ctx context.Context) {
	ch := make(chan int, 1)
	ch <- 1
	close(ch)
	for v := range ch {
		_ = v
	}
}

func condNoBridge(ctx context.Context, cond *sync.Cond) {
	cond.Wait() // want `sync.Cond.Wait with ctx in scope has no context.AfterFunc bridge`
}

func condBridged(ctx context.Context, cond *sync.Cond) {
	stop := context.AfterFunc(ctx, cond.Broadcast)
	defer stop()
	cond.Wait()
}

func fetch(ctx context.Context, url string) error {
	_, err := http.Get(url) // want `http.Get performs a round-trip that ignores ctx`
	return err
}

var _ = freshRoot
var _ = freshTODO
var _ = Run
var _ = OldRun
var _ = frontier
var _ = frontierFixed
var _ = frontierPure
var _ = frontierLocal
var _ = unguardedSend
var _ = bufferedSend
var _ = unguardedRecv
var _ = guardedRecv
var _ = noDoneSelect
var _ = defaultSelect
var _ = rangeUnclosed
var _ = rangeClosed
var _ = condNoBridge
var _ = condBridged
var _ = fetch
