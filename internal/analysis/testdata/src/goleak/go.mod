module goleak

go 1.22
