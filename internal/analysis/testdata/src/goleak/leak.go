// Package goleak seeds goroutines with and without provable termination
// paths.
package goleak

import (
	"context"
	"sync"
)

// joined is structured concurrency done right: Done in the body, Wait in
// the spawner.
func joined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work(1)
		}()
	}
	wg.Wait()
}

// spawnFor is a helper that spawns on behalf of its caller: the join
// evidence lives (or doesn't) at the call sites below.
func spawnFor(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { // want `spawned for goleak.brokenCaller, which never Waits on the WaitGroup it passes`
		defer wg.Done()
		work(2)
	}()
}

// goodCaller joins the goroutine spawnFor started for it.
func goodCaller() {
	var wg sync.WaitGroup
	spawnFor(&wg)
	wg.Wait()
}

// brokenCaller never Waits: the leak is reported at the distant spawn.
func brokenCaller() {
	var wg sync.WaitGroup
	spawnFor(&wg)
}

// orphanDone signals a WaitGroup nothing ever Waits on.
func orphanDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `Done on WaitGroup "wg" that nothing in the module Waits on`
		defer wg.Done()
		work(3)
	}()
}

// spinner loops forever with no cancellation exit.
func spinner(ch chan int) {
	go func() { // want `unbounded for loop with no ctx.Done() exit`
		for {
			work(4)
		}
	}()
}

// cancellable loops forever but exits on ctx.Done.
func cancellable(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				work(v)
			}
		}
	}()
}

// spawnCtx hands the declared worker a context: cancellable by contract.
func spawnCtx(ctx context.Context) {
	go pumpCtx(ctx)
}

func pumpCtx(ctx context.Context) {
	<-ctx.Done()
}

// resultSlot is the buffered one-shot idiom: the send cannot block.
func resultSlot() chan error {
	errc := make(chan error, 1)
	go func() {
		errc <- work(5)
	}()
	return errc
}

// stuckSend parks forever if nobody receives.
func stuckSend(ch chan int) {
	go func() { // want `sends on unbuffered channel ch outside a guarded select`
		ch <- 1
	}()
}

// drainClosed ranges over a channel the producer closes.
func drainClosed() {
	ch := make(chan int)
	go func() {
		for v := range ch {
			work(v)
		}
	}()
	ch <- 1
	close(ch)
}

// drainForever ranges over a channel nothing closes.
func drainForever(ch chan int) {
	go func() { // want `ranges over channel ch, which nothing closes`
		for v := range ch {
			work(v)
		}
	}()
}

// spawnHelper leaks through a callee: the blocking loop is two calls
// away, and the summary walk still surfaces it at the go statement.
func spawnHelper(ch chan int) {
	go helper(ch) // want `calls goleak.inner, which receives from channel ch, which nothing closes`
}

func helper(ch chan int) {
	inner(ch)
}

func inner(ch chan int) int {
	return <-ch
}

// dynamic spawns a function value the analyzer cannot see into.
func dynamic(f func()) {
	go f() // want `target is a function value`
}

func work(n int) error {
	if n < 0 {
		return context.Canceled
	}
	return nil
}

var _ = joined
var _ = goodCaller
var _ = brokenCaller
var _ = orphanDone
var _ = spinner
var _ = cancellable
var _ = spawnCtx
var _ = resultSlot
var _ = stuckSend
var _ = drainClosed
var _ = drainForever
var _ = spawnHelper
var _ = dynamic
