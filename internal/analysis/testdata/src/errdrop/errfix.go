// Package errfix seeds dropped-error shapes and sanctioned sinks.
package errfix

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func work() error { return nil }

func drop() {
	work() // want `work() returns an error that is dropped`
}

func launch() {
	go work() // want `go work() discards`
}

func deferred(f *os.File) {
	defer f.Close() // want `deferred f.Close() discards`
}

func fine(f *os.File) error {
	_ = work()
	fmt.Println("ok")
	fmt.Fprintln(os.Stderr, "diagnostic")
	var b strings.Builder
	b.WriteString("x")
	fmt.Fprintf(&b, "y")
	var buf bytes.Buffer
	buf.WriteByte('z')
	return f.Close()
}

var _ = drop
var _ = launch
var _ = deferred
var _ = fine
