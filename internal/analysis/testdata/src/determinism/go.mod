module det

go 1.22
