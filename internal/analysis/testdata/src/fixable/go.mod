module fixable

go 1.22
