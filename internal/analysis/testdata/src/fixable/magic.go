// Package fixable seeds findings every one of which carries a suggested
// fix, so applying them all leaves a lint-clean tree — the -fix
// idempotency contract.
package fixable

import (
	"os"

	"fixable/internal/units"
)

// clockCycles converts with a magic 1e9 next to a frequency-named
// operand: the fix rewrites it to units.GHz.
func clockCycles(clockGHz, seconds float64) float64 {
	return clockGHz * 1e9 * seconds
}

// mops scales by a magic million: the fix rewrites it to units.Mega.
func mops(ops float64) float64 {
	return ops / 1000000
}

// delay has a non-unit mantissa: the fix parenthesizes the product,
// (2.8 * units.NsPerSecond).
func delay(timer float64) float64 {
	return timer * 2.8e9
}

// keep the units import referenced even before fixes introduce more uses.
var _ = units.GHz

// save drops its error as a bare statement: the fix inserts `_ =` and a
// review marker.
func save(path string) {
	os.Remove(path)
}
