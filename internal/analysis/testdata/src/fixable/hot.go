// Fixable hotalloc findings: a defer queued per hot-loop iteration as
// the loop body's last statement (the fix deletes the keyword, running
// the call where it was queued) and an append into a zero-length make
// with a derivable bound (the fix adds the capacity).
package fixable

// hotLoop is hot by directive; BenchmarkHotLoop keeps benchparity quiet.
//
//xeonlint:hot
func hotLoop(n int) []int {
	xs := make([]int, 0)
	for i := 0; i < n; i++ {
		xs = append(xs, i)
		defer noteDone(i)
	}
	return xs
}

func noteDone(int) {}

var _ = hotLoop
