// Fixable hotalloc findings: a defer queued per hot-loop iteration (the
// fix calls directly at the site) and an append into a capacity-less
// make with a derivable bound (the fix adds the capacity).
package fixable

// hotLoop is hot by directive; BenchmarkHotLoop keeps benchparity quiet.
//
//xeonlint:hot
func hotLoop(n int) []int {
	xs := make([]int, 0)
	for i := 0; i < n; i++ {
		defer noteDone(i)
		xs = append(xs, i)
	}
	return xs
}

func noteDone(int) {}

var _ = hotLoop
