// Fixable ctxflow findings: a fresh root replaced by the in-scope ctx,
// and a select gaining its ctx.Done() arm.
package fixable

import "context"

func step(ctx context.Context) error {
	return ctx.Err()
}

// reroot drops its ctx for a fresh root: the fix swaps Background for ctx.
func reroot(ctx context.Context) error {
	return step(context.Background())
}

// wait blocks in a select that cancellation cannot preempt: the fix
// inserts the ctx.Done() arm.
func wait(ctx context.Context, a chan int) error {
	select {
	case <-a:
	}
	return nil
}

var _ = reroot
var _ = wait
