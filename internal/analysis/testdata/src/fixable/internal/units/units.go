// Package units names the conversion factors the autofix rewrites
// magic literals into.
package units

// Hz multiples.
const (
	KHz float64 = 1e3
	MHz float64 = 1e6
	GHz float64 = 1e9
)

// GB scales GB/s bandwidth figures into bytes/s.
const GB float64 = 1e9

// Mega is the bare 10^6 scale factor.
const Mega float64 = 1e6

// NsPerSecond converts between seconds and nanoseconds.
const NsPerSecond float64 = 1e9
