package fixable

import "testing"

var benchSink []int

func BenchmarkHotLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = hotLoop(64)
	}
}
