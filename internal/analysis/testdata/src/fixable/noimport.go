// A file with no imports at all: the literal fix must also create the
// units import block.
package fixable

func throughput(bytesMoved, clockGHz float64) float64 {
	return clockGHz * 1e9 * bytesMoved
}
