// Package hotpgo pairs with testdata/pgo/small.pgo: the profile names
// Kernel (90% flat, plus a folded Kernel.func1 closure sample), helper
// and Cold (0.5% flat each, below the default threshold), and a ghost
// function that no longer exists in the source. The golden test pins the
// resulting hot set: Kernel by profile share, helper by loop
// propagation, Cold out, ghost unresolved.
package hotpgo

// Kernel is the profile's dominant function.
func Kernel(vals []int) int {
	total := 0
	for _, v := range vals {
		total += helper(v)
	}
	return total
}

// helper is cold in the profile but runs per iteration of Kernel's loop.
func helper(v int) int {
	return v * v
}

// Cold has samples but stays under the flat-share threshold.
func Cold(v int) int {
	return v + 1
}

var _ = Cold
