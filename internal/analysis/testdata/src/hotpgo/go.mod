module hotpgo

go 1.22
