// Package inner holds the interprocedural target: Format is hot only
// because hotalloc.Render calls it from a hot loop.
package inner

import "fmt"

// Format renders one item; its whole body is loop context.
func Format(v int) string {
	return fmt.Sprintf("item-%d", v) // want `fmt.Sprintf in a hot loop`
}
