// Package hotalloc seeds per-iteration allocation findings in
// directive-hot functions, with cold twins the analyzer must stay quiet
// on. No profile is loaded for fixtures: //xeonlint:hot is the only
// hotness source.
package hotalloc

import (
	"fmt"

	"hotalloc/inner"
)

// Concat builds strings the allocating way in its hot loops.
//
//xeonlint:hot
func Concat(names []string, n int) string {
	out := ""
	for _, name := range names {
		out += name // want `string concatenation in a hot loop`
	}
	for i := 0; i < n; i++ {
		out = out + "x" // want `string concatenation in a hot loop`
	}
	return out
}

// Labels allocates per iteration twice over: a fmt.Sprintf result and an
// append into a slice made with zero capacity despite the known bound.
//
//xeonlint:hot
func Labels(n int) []string {
	ls := make([]string, 0)
	for i := 0; i < n; i++ {
		l := fmt.Sprintf("l%d", i) // want `fmt.Sprintf in a hot loop`
		ls = append(ls, l)         // want `append to ls in a hot loop regrows without a capacity hint` (fix)
	}
	return ls
}

// Consume builds a capturing closure and queues a defer every iteration.
// The defer is the loop body's last statement, so its finding carries the
// delete-the-keyword fix.
//
//xeonlint:hot
func Consume(vals []int) int {
	total := 0
	for _, v := range vals {
		add := func() { total += v } // want `closure capturing outer variables in a hot loop`
		add()
		defer release(v) // want `defer in a hot loop grows the defer chain` (fix)
	}
	return total
}

// DeferMid queues a defer with statements after it in the loop body:
// still a per-iteration defer-chain leak, but report-only — deleting the
// keyword would run release before the accumulation that follows it.
//
//xeonlint:hot
func DeferMid(vals []int) int {
	total := 0
	for _, v := range vals {
		defer release(v) // want `defer in a hot loop grows the defer chain`
		total += v
	}
	return total
}

// SizedAppend appends to a slice made with a nonzero length: flagged,
// but no capacity fix — the appends land after the eight existing
// elements, so a loop-bound capacity could be below the length.
//
//xeonlint:hot
func SizedAppend(n int) []int {
	xs := make([]int, 8)
	for i := 0; i < n; i++ {
		xs = append(xs, i) // want `append to xs in a hot loop regrows without a capacity hint`
	}
	return xs
}

func release(int) {}

type payload struct{ a, b int }

func sink(v any) { _ = v }

// Box passes a concrete struct to an interface parameter per iteration.
//
//xeonlint:hot
func Box(ps []payload) {
	for _, p := range ps {
		sink(p) // want `boxes an allocation per iteration`
	}
}

type node struct{ id int }

// NewNode returns the address of a fresh composite literal: one heap
// allocation per call of a hot function, loop or not.
//
//xeonlint:hot
func NewNode(id int) *node {
	return &node{id: id} // want `escapes hot function`
}

// Render is hot and calls inner.Format from its loop — the
// interprocedural case: Format's body becomes loop context and its
// finding is reported over in the inner package. The append here is
// preallocated, so it stays quiet.
//
//xeonlint:hot
func Render(items []int) []string {
	out := make([]string, 0, len(items))
	for _, it := range items {
		out = append(out, inner.Format(it))
	}
	return out
}

// coldConcat repeats Concat's patterns without hotness: no findings.
func coldConcat(names []string) string {
	out := ""
	for _, n := range names {
		out += n
	}
	return out
}

// coldLabels repeats Labels without hotness: no findings.
func coldLabels(n int) []string {
	ls := make([]string, 0)
	for i := 0; i < n; i++ {
		ls = append(ls, fmt.Sprintf("l%d", i))
	}
	return ls
}

// Reuse appends into a resliced pooled buffer inside a hot loop: the
// capacity survives from the previous window, so no finding.
//
//xeonlint:hot
func Reuse(buf []int, vals []int) []int {
	xs := buf[:0]
	for _, v := range vals {
		xs = append(xs, v)
	}
	return xs
}

var (
	_ = coldConcat
	_ = coldLabels
)
