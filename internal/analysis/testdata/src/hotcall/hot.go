// Package hotcall seeds per-iteration call-overhead findings in
// directive-hot functions: a devirtualizable interface call, a hoistable
// loop-invariant map lookup, channel operations, and a hot→cold advisory
// note against a too-large inner-package callee.
package hotcall

import "hotcall/inner"

type hasher interface {
	hash(uint64) uint64
}

// xorHash is the module's only hasher implementation.
type xorHash struct{ k uint64 }

func (h xorHash) hash(v uint64) uint64 { return v ^ h.k }

// Mix dispatches through the interface although only one concrete type
// exists in the module.
//
//xeonlint:hot
func Mix(h hasher, vals []uint64) uint64 {
	acc := uint64(0)
	for _, v := range vals {
		acc ^= h.hash(v) // want `only in-module implementation`
	}
	return acc
}

// Weighted looks up the same key in the same map every iteration.
//
//xeonlint:hot
func Weighted(weights map[string]int, key string, vals []int) int {
	total := 0
	for _, v := range vals {
		total += v * weights[key] // want `loop-invariant in a hot loop`
	}
	return total
}

// Tally mutates the map under a per-iteration key: both invariance
// conditions fail, so no finding.
//
//xeonlint:hot
func Tally(counts map[string]int, keys []string) {
	for _, k := range keys {
		counts[k]++
	}
}

// Pump sends per iteration.
//
//xeonlint:hot
func Pump(out chan<- int, vals []int) {
	for _, v := range vals {
		out <- v // want `channel send in a hot loop`
	}
}

// Drain receives per iteration.
//
//xeonlint:hot
func Drain(in <-chan int, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += <-in // want `channel receive in a hot loop`
	}
	return total
}

// Walk calls inner.Classify — too large to inline, absent from any hot
// evidence of its own — from its hot loop: the interprocedural advisory.
//
//xeonlint:hot
func Walk(vals []int) int {
	total := 0
	for _, v := range vals {
		total += inner.Classify(v) // want `too large to inline`
	}
	return total
}

// coldMix repeats Mix without hotness: no findings.
func coldMix(h hasher, vals []uint64) uint64 {
	acc := uint64(0)
	for _, v := range vals {
		acc ^= h.hash(v)
	}
	return acc
}

var _ = coldMix
