// Package inner holds Classify: a branchy classifier far beyond the
// inlining budget, with no profile or directive hotness of its own —
// the target of hotcall's hot→cold advisory note.
package inner

// Classify buckets a value through an intentionally long decision chain.
func Classify(v int) int {
	switch {
	case v < -90:
		return v * 2
	case v < -80:
		return v * 3
	case v < -70:
		return v * 5
	case v < -60:
		return v * 7
	case v < -50:
		return v * 11
	case v < -40:
		return v * 13
	case v < -30:
		return v * 17
	case v < -20:
		return v * 19
	case v < -10:
		return v * 23
	case v < 0:
		return v * 29
	case v < 10:
		return v + 31
	case v < 20:
		return v + 37
	case v < 30:
		return v + 41
	case v < 40:
		return v + 43
	case v < 50:
		return v + 47
	case v < 60:
		return v + 53
	case v < 70:
		return v + 59
	case v < 80:
		return v + 61
	case v < 90:
		return v + 67
	default:
		return v + 71
	}
}
