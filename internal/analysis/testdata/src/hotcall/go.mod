module hotcall

go 1.22
