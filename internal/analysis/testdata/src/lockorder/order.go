package lockfix

import "sync"

// Registry and Journal acquire each other's locks in opposite orders —
// the module-wide cycle.
type Registry struct {
	mu sync.Mutex
	j  *Journal
}

type Journal struct {
	mu sync.Mutex
	r  *Registry
}

func (r *Registry) Sync() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.j.mu.Lock() // want `lock-order cycle among [lockfix.Journal.mu lockfix.Registry.mu]`
	r.j.mu.Unlock()
}

func (j *Journal) Sync() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.r.mu.Lock()
	j.r.mu.Unlock()
}

// Counter locks consistently: no cycle, no findings.
type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *Counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// reLock acquires the same mutex twice in one frame.
func reLock(c *Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mu.Lock() // want `lockfix.Counter.mu acquired while already held; self-deadlock`
	c.mu.Unlock()
}

// lockThenInc deadlocks through the call: Inc re-acquires the held lock.
func lockThenInc(c *Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Inc() // want `calls lockfix.Counter.Inc while holding lockfix.Counter.mu, which it acquires again; self-deadlock through the call`
}

// unlockThenInc releases first: clean.
func unlockThenInc(c *Counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.Inc()
}

// heldAcrossSend parks with the lock held.
func heldAcrossSend(c *Counter, ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch <- c.n // want `lock [lockfix.Counter.mu] held across send on unbuffered channel ch`
}

// sendOutsideLock hands off after releasing: clean.
func sendOutsideLock(c *Counter, ch chan int) {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	ch <- n
}

// heldAcrossWait joins workers while holding the lock they may need.
func heldAcrossWait(c *Counter, wg *sync.WaitGroup) {
	c.mu.Lock()
	defer c.mu.Unlock()
	wg.Wait() // want `lock [lockfix.Counter.mu] held across WaitGroup.Wait`
}

// Queue is the sanctioned cond shape: Wait releases the one held lock.
type Queue struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

func (q *Queue) Pop() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 {
		q.cond.Wait()
	}
	q.n--
	return q.n
}

// popBoth waits on the cond while also holding a second lock that Wait
// will not release.
func popBoth(q *Queue, c *Counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 {
		q.cond.Wait() // want `sync.Cond.Wait while holding [lockfix.Counter.mu lockfix.Queue.mu]`
	}
	return q.n
}

var _ = reLock
var _ = lockThenInc
var _ = unlockThenInc
var _ = heldAcrossSend
var _ = sendOutsideLock
var _ = heldAcrossWait
var _ = popBoth
