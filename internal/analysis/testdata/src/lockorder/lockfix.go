// Package lockfix seeds copied sync primitives and unlocked fan-out.
package lockfix

import "sync"

// Guarded embeds a mutex, so passing it by value copies the lock.
type Guarded struct {
	mu sync.Mutex
	n  int
}

func byValue(g Guarded) { // want `parameter passes Guarded by value, copying its sync.Mutex`
	_ = g.n
}

func (g Guarded) Bump() { // want `receiver passes Guarded by value, copying its sync.Mutex`
	g.n++
}

func makeWG() (wg sync.WaitGroup) { // want `result passes sync.WaitGroup by value`
	return
}

func byPointer(g *Guarded) {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func fanOutBad(gs []*Guarded) {
	total := 0
	for _, g := range gs {
		g := g
		go func() {
			total += g.n // want `writes captured variable "total" without locking`
		}()
	}
	_ = total
}

func fanOutLocked(gs []*Guarded, mu *sync.Mutex) {
	total := 0
	for _, g := range gs {
		g := g
		go func() {
			mu.Lock()
			total += g.n
			mu.Unlock()
		}()
	}
	_ = total
}

func fanOutLocal(gs []*Guarded) {
	for range gs {
		go func() {
			local := 1
			local = local + 1
			_ = local
		}()
	}
}

var _ = byValue
var _ = makeWG
var _ = byPointer
var _ = fanOutBad
var _ = fanOutLocked
var _ = fanOutLocal
