// Package units mirrors the real conversion layer: the constants and
// Frequency methods seed the dimension analyzer's ground truth.
package units

// Hz multiples.
const (
	KHz float64 = 1e3
	MHz float64 = 1e6
	GHz float64 = 1e9
)

// Byte sizes.
const (
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
)

// GB scales GB/s bandwidth figures into bytes/s.
const GB float64 = 1e9

// NsPerSecond converts between seconds and nanoseconds.
const NsPerSecond float64 = 1e9

// Frequency is a clock rate in Hz.
type Frequency float64

// Nanoseconds converts a cycle count at f into nanoseconds.
func (f Frequency) Nanoseconds(cycles int64) float64 {
	return float64(cycles) / float64(f) * 1e9
}

// Cycles converts a duration in nanoseconds to whole clock cycles at f.
func (f Frequency) Cycles(ns float64) int64 {
	return int64(ns * float64(f) / 1e9)
}

// BytesPerCycle converts a bandwidth in bytes/second into bytes per core
// cycle at f.
func (f Frequency) BytesPerCycle(bytesPerSecond float64) float64 {
	return bytesPerSecond / float64(f)
}
