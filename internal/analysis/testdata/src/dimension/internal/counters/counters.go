// Package counters mirrors the real event-counter layer: Set.Get
// dimensions follow the event name, Metrics fields their documented
// meanings.
package counters

// Event identifies one hardware counter.
type Event int

// The counted events: cycles, instructions, and byte traffic.
const (
	CPUCycles Event = iota
	Instructions
	L1Misses
	MemReadBytes
)

// Set is a bag of event totals.
type Set struct {
	counts [4]float64
}

// Get returns the total of one event.
func (s *Set) Get(e Event) float64 {
	return s.counts[e]
}

// Metrics are the derived per-benchmark columns.
type Metrics struct {
	CPI        float64
	L1MissRate float64
	DTLBMisses float64
}
