module dim

go 1.22
