// Package dim seeds dimension-inference violations and clean
// counterparts: mixed additions, meaningless products, cross-base
// quotients, and declared-dimension mismatches.
package dim

import (
	"dim/internal/counters"
	"dim/internal/units"
)

// Nanoseconds and cycles must not add without a conversion.
func mixed(latencyNs, busCycles float64) float64 {
	return latencyNs + busCycles // want `mixed-dimension addition: ns + cycles`
}

// A squared duration has no physical meaning in this model.
func square(elapsedNs, waitNs float64) float64 {
	return elapsedNs * waitNs // want `suspicious product`
}

// Assigning raw cycles into an ns-named variable skips the frequency
// conversion; the fixed version goes through units.Frequency.
func convertAssign(f units.Frequency, busCycles int64) float64 {
	var latencyNs float64
	latencyNs = float64(busCycles) // want `assigning cycles expression to "latencyNs"`
	latencyNs = f.Nanoseconds(busCycles)
	return latencyNs
}

// cycles/ns is a frequency in disguise and must go through units.
func hiddenFreq(busCycles, elapsedNs float64) float64 {
	return busCycles / elapsedNs // want `quotient cycles / ns mixes clock and wall time`
}

// Metrics fields carry their documented dimensions: CPI is cycles/event.
func fill(m *counters.Metrics, s *counters.Set) {
	m.CPI = s.Get(counters.CPUCycles) // want `assigning cycles expression to field "CPI"`
	m.L1MissRate = s.Get(counters.L1Misses) / s.Get(counters.Instructions)
	m.CPI = s.Get(counters.CPUCycles) / s.Get(counters.Instructions)
}

// Counter families have dimensions too: cycle counts and byte counts
// cannot add.
func mixedCounts(s *counters.Set) float64 {
	return s.Get(counters.CPUCycles) + s.Get(counters.MemReadBytes) // want `mixed-dimension addition: cycles + bytes`
}

// Negative: the canonical clean derivation — cycles through
// units.Frequency to ns, ns to seconds through NsPerSecond, bytes over
// seconds to bandwidth.
func bandwidth(f units.Frequency, lines int64, lineBytes float64) float64 {
	elapsedNs := f.Nanoseconds(lines)
	seconds := elapsedNs / units.NsPerSecond
	totalBytes := float64(lines) * lineBytes
	return totalBytes / seconds
}

// Negative: scalars adapt — literals rescale without changing dimension.
func scaled(latencyNs float64) float64 {
	return latencyNs*2 + 1
}
