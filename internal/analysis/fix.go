package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// This file is the autofix engine: analyzers attach SuggestedFix values
// to their diagnostics, and cmd/xeonlint materializes them — applied in
// place under -fix, rendered as a unified diff under -diff. Fixes are
// plain byte-range edits against the loaded file contents, so applying
// them needs no re-parse; overlapping fixes are resolved deterministically
// (first by position wins) rather than producing corrupt output.

// TextEdit replaces the source range [Pos, End) with NewText. Pos == End
// is an insertion.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// SuggestedFix is one machine-applicable resolution for a finding: a
// human-readable description plus the edits that implement it. All edits
// of one fix must land in the same file.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// fileEdit is a resolved edit: byte offsets within one file.
type fileEdit struct {
	start, end int
	newText    string
}

// ApplyFixes collects the fixes attached to diags and returns the fixed
// content of every affected file, keyed by filename. Edits within a file
// are applied from the end backwards so earlier offsets stay valid;
// overlapping edits are skipped deterministically (the edit starting
// earlier wins, ties broken by end then replacement text). The input
// files are read through prog's FileSet, so the bytes being edited are
// exactly the bytes that were analyzed.
func ApplyFixes(prog *Program, diags []Diagnostic, readFile func(string) ([]byte, error)) (map[string][]byte, error) {
	perFile := map[string][]fileEdit{}
	for _, d := range diags {
		if d.Fix == nil {
			continue
		}
		for _, e := range d.Fix.Edits {
			posn := prog.Fset.Position(e.Pos)
			endn := prog.Fset.Position(e.End)
			if posn.Filename == "" || posn.Filename != endn.Filename || posn.Offset > endn.Offset {
				return nil, fmt.Errorf("invalid fix %q at %s", d.Fix.Message, posn)
			}
			perFile[posn.Filename] = append(perFile[posn.Filename], fileEdit{posn.Offset, endn.Offset, e.NewText})
		}
	}

	out := map[string][]byte{}
	for filename, edits := range perFile {
		src, err := readFile(filename)
		if err != nil {
			return nil, fmt.Errorf("apply fixes: %w", err)
		}
		sort.Slice(edits, func(i, j int) bool {
			a, b := edits[i], edits[j]
			if a.start != b.start {
				return a.start < b.start
			}
			if a.end != b.end {
				return a.end < b.end
			}
			return a.newText < b.newText
		})
		// Drop exact duplicates (two findings proposing the same edit,
		// e.g. one missing-import insertion per literal) and overlaps
		// (the edit sorting first wins).
		kept := edits[:0]
		lastEnd := 0
		for _, e := range edits {
			if len(kept) > 0 {
				p := kept[len(kept)-1]
				if p.start == e.start && p.end == e.end && p.newText == e.newText {
					continue
				}
			}
			if e.start < lastEnd {
				continue
			}
			if e.end > len(src) {
				return nil, fmt.Errorf("fix range beyond EOF in %s", filename)
			}
			kept = append(kept, e)
			if e.end > lastEnd {
				lastEnd = e.end
			}
		}
		// Apply back-to-front.
		fixed := append([]byte(nil), src...)
		for i := len(kept) - 1; i >= 0; i-- {
			e := kept[i]
			fixed = append(fixed[:e.start], append([]byte(e.newText), fixed[e.end:]...)...)
		}
		out[filename] = fixed
	}
	return out, nil
}

// UnifiedDiff renders a unified diff between old and new content of one
// file, with the conventional ---/+++ header and @@ hunks (3 lines of
// context). Returns "" when the contents are identical.
func UnifiedDiff(filename string, oldSrc, newSrc []byte) string {
	if string(oldSrc) == string(newSrc) {
		return ""
	}
	ops := diffLines(splitLines(string(oldSrc)), splitLines(string(newSrc)))

	// Keep every changed op plus ctx lines of context around it; the kept
	// runs are the hunks.
	const ctx = 3
	keep := make([]bool, len(ops))
	for i, op := range ops {
		if op.kind == ' ' {
			continue
		}
		lo, hi := i-ctx, i+ctx
		if lo < 0 {
			lo = 0
		}
		if hi >= len(ops) {
			hi = len(ops) - 1
		}
		for j := lo; j <= hi; j++ {
			keep[j] = true
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s\n+++ %s\n", filename, filename)
	for i := 0; i < len(ops); {
		if !keep[i] {
			i++
			continue
		}
		j := i
		for j < len(ops) && keep[j] {
			j++
		}
		aStart, bStart := ops[i].aLine, ops[i].bLine
		aCount, bCount := 0, 0
		for _, op := range ops[i:j] {
			if op.kind != '+' {
				aCount++
			}
			if op.kind != '-' {
				bCount++
			}
		}
		fmt.Fprintf(&sb, "@@ -%d,%d +%d,%d @@\n", aStart+1, aCount, bStart+1, bCount)
		for _, op := range ops[i:j] {
			sb.WriteByte(byte(op.kind))
			sb.WriteString(op.text)
			sb.WriteByte('\n')
		}
		i = j
	}
	return sb.String()
}

type diffOp struct {
	kind         rune // ' ', '-', '+'
	text         string
	aLine, bLine int // 0-based line numbers in old/new at this op
}

// splitLines splits content into lines without trailing newlines; a
// trailing newline does not produce an empty final line.
func splitLines(s string) []string {
	if s == "" {
		return nil
	}
	s = strings.TrimSuffix(s, "\n")
	return strings.Split(s, "\n")
}

// diffLines computes a line-level diff via the classic LCS dynamic
// program — fine for source files of this size.
func diffLines(a, b []string) []diffOp {
	n, m := len(a), len(b)
	// lcs[i][j] = LCS length of a[i:], b[j:].
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var ops []diffOp
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] == b[j]:
			ops = append(ops, diffOp{' ', a[i], i, j})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			ops = append(ops, diffOp{'-', a[i], i, j})
			i++
		default:
			ops = append(ops, diffOp{'+', b[j], i, j})
			j++
		}
	}
	for ; i < n; i++ {
		ops = append(ops, diffOp{'-', a[i], i, j})
	}
	for ; j < m; j++ {
		ops = append(ops, diffOp{'+', b[j], i, j})
	}
	return ops
}
