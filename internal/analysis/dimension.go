package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Dimension infers physical dimensions for the values feeding the paper's
// derived metrics and flags arithmetic that cannot be dimensionally
// coherent. The nine Figure-2/4 quantities mix five base dimensions —
// core cycles, nanoseconds, seconds, bytes, and counted events — and a
// formula that adds nanoseconds to cycles or multiplies two durations
// produces a number that still *looks* plausible in a table, which is
// exactly how a silent unit bug reaches a golden artifact.
//
// Dimensions are seeded from ground truth, not guessed per expression:
//
//   - internal/units constants and the units.Frequency conversion methods
//     (GHz is cycles/second, NsPerSecond is ns/second, Nanoseconds()
//     returns ns, Cycles() returns cycles, ...)
//   - counters: Set.Get dimensions by Event constant name (…Bytes events
//     are bytes, …Cycles events are cycles, the rest are counted events),
//     and the Metrics fields by their documented meaning (CPI is
//     cycles/event, the rates and percentages are dimensionless)
//   - time.Duration values (ns) and the stats.Ratio quotient
//   - naming conventions on declared variables, fields, parameters, and
//     results: …Ns, …Cycles, …Bytes, …Size, …Seconds, …BW, …Hz, …Freq,
//     and …PerSecond/…PerCycle compositions
//
// and propagated through assignments, arithmetic, conversions, and local
// call summaries (a function returning freq.Nanoseconds(c) returns ns to
// its callers). Three shapes are reported:
//
//   - mixed-dimension + or - (ns + cycles)
//   - products whose result squares a time base or multiplies two
//     different time bases (ns·cycles has no physical meaning here)
//   - a value of one known dimension assigned to a variable or field
//     whose declared dimension differs (latencyNs = cycles)
//
// Untyped numeric literals are scalars: they adapt to either operand, so
// `lat + 1` and `2.8 * units.GHz` stay legal. internal/units itself is
// exempt — it is where raw conversion factors legitimately live.
type Dimension struct{}

func (*Dimension) Name() string { return "dimension" }
func (*Dimension) Doc() string {
	return "infer cycles/ns/bytes/events dimensions and flag incoherent arithmetic feeding derived metrics"
}

// Dim is a dimension vector: integer exponents over the five base
// dimensions. The zero vector with known=true is a genuine dimensionless
// ratio; known=false is "no information" and never participates in
// checks.
type Dim struct {
	known             bool
	ns, s, cy, by, ev int8
}

var (
	dimNone    = Dim{}
	dimScalar  = Dim{known: true}
	dimNs      = Dim{known: true, ns: 1}
	dimSeconds = Dim{known: true, s: 1}
	dimCycles  = Dim{known: true, cy: 1}
	dimBytes   = Dim{known: true, by: 1}
	dimEvents  = Dim{known: true, ev: 1}
	dimHz      = Dim{known: true, cy: 1, s: -1} // clock rate: cycles per second
	dimBW      = Dim{known: true, by: 1, s: -1} // bandwidth: bytes per second
)

func (d Dim) mul(o Dim) Dim {
	if !d.known || !o.known {
		return dimNone
	}
	return Dim{true, d.ns + o.ns, d.s + o.s, d.cy + o.cy, d.by + o.by, d.ev + o.ev}
}

func (d Dim) div(o Dim) Dim {
	if !d.known || !o.known {
		return dimNone
	}
	return Dim{true, d.ns - o.ns, d.s - o.s, d.cy - o.cy, d.by - o.by, d.ev - o.ev}
}

// suspiciousProduct reports whether a product's dimension is physically
// meaningless in this codebase: a squared time base, or two different
// time bases multiplied together (ns·cycles, cycles·seconds, ...).
func (d Dim) suspiciousProduct() bool {
	if !d.known {
		return false
	}
	timeBases := 0
	for _, e := range []int8{d.ns, d.s, d.cy} {
		if e >= 2 || e <= -2 {
			return true
		}
		if e > 0 {
			timeBases++
		}
	}
	return timeBases >= 2
}

// String renders the dimension for messages ("ns", "cycles/event",
// "bytes/s", "dimensionless").
func (d Dim) String() string {
	if !d.known {
		return "unknown"
	}
	bases := []struct {
		name string
		exp  int8
	}{{"ns", d.ns}, {"s", d.s}, {"cycles", d.cy}, {"bytes", d.by}, {"events", d.ev}}
	var num, den []string
	for _, b := range bases {
		switch {
		case b.exp == 1:
			num = append(num, b.name)
		case b.exp > 1:
			num = append(num, fmt.Sprintf("%s^%d", b.name, b.exp))
		case b.exp == -1:
			den = append(den, b.name)
		case b.exp < -1:
			den = append(den, fmt.Sprintf("%s^%d", b.name, -b.exp))
		}
	}
	switch {
	case len(num) == 0 && len(den) == 0:
		return "dimensionless"
	case len(num) == 0:
		return "1/" + strings.Join(den, "/")
	case len(den) == 0:
		return strings.Join(num, "·")
	default:
		return strings.Join(num, "·") + "/" + strings.Join(den, "/")
	}
}

// dimFacts caches the interprocedural result-dimension summaries: for
// each declared function, the inferred dimension of each result.
type dimFacts struct {
	results map[*types.Func][]Dim
}

// dimsFor solves the module-wide result-dimension summaries, iterating
// bottom-up over the call graph until stable so chains of helpers
// propagate (Latency returns Nanoseconds()/n returns ns).
func (f *Facts) dimsFor() *dimFacts {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dims != nil {
		return f.dims
	}
	df := &dimFacts{results: map[*types.Func][]Dim{}}
	f.dims = df // visible to the solver below for recursive lookups
	for sweep := 0; sweep < 4; sweep++ {
		changed := false
		for _, fi := range f.Funcs {
			a := newDimAnalysis(fi, df)
			a.solve()
			res := a.resultDims()
			old := df.results[fi.Fn]
			if !dimSliceEq(old, res) {
				df.results[fi.Fn] = res
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return df
}

func dimSliceEq(a, b []Dim) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// dimAnalysis is the per-function inference pass: an environment mapping
// local objects to dimensions, seeded from declarations and iterated to a
// local fixed point.
type dimAnalysis struct {
	fi   *FuncInfo
	pkg  *Package
	df   *dimFacts
	env  map[types.Object]Dim
	rets [][]ast.Expr

	report func(n ast.Node, format string, args ...any)
}

func newDimAnalysis(fi *FuncInfo, df *dimFacts) *dimAnalysis {
	a := &dimAnalysis{fi: fi, pkg: fi.Pkg, df: df, env: map[types.Object]Dim{}}
	sig := fi.Fn.Type().(*types.Signature)
	seed := func(v *types.Var) {
		if d := declaredDim(v); d.known {
			a.env[v] = d
		}
	}
	if recv := sig.Recv(); recv != nil {
		seed(recv)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		seed(sig.Params().At(i))
	}
	for i := 0; i < sig.Results().Len(); i++ {
		seed(sig.Results().At(i))
	}
	return a
}

func (a *dimAnalysis) solve() {
	for pass := 0; pass < 6; pass++ {
		before := len(a.env)
		var same = true
		snap := make(map[types.Object]Dim, len(a.env))
		for k, v := range a.env {
			snap[k] = v
		}
		a.walk()
		if len(a.env) != before {
			same = false
		} else {
			for k, v := range a.env {
				if snap[k] != v {
					same = false
					break
				}
			}
		}
		if same {
			break
		}
	}
}

// resultDims infers the dimensions of the function's results from its
// return statements (the summary callers consume).
func (a *dimAnalysis) resultDims() []Dim {
	sig := a.fi.Fn.Type().(*types.Signature)
	n := sig.Results().Len()
	if n == 0 {
		return nil
	}
	out := make([]Dim, n)
	for i := 0; i < n; i++ {
		if d := declaredDim(sig.Results().At(i)); d.known {
			out[i] = d
		}
	}
	for _, results := range a.rets {
		if len(results) != n {
			continue
		}
		for i, res := range results {
			if d := a.eval(res); d.known && !out[i].known {
				out[i] = d
			}
		}
	}
	return out
}

// walk applies the transfer functions over the body, collecting return
// statements for the summary and (in report mode) emitting findings.
func (a *dimAnalysis) walk() {
	a.rets = a.rets[:0]
	var lits []*ast.FuncLit
	ast.Inspect(a.fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, n)
		case *ast.AssignStmt:
			a.assign(n)
		case *ast.ReturnStmt:
			inLit := false
			for _, lit := range lits {
				if n.Pos() >= lit.Pos() && n.End() <= lit.End() {
					inLit = true
					break
				}
			}
			if !inLit && len(n.Results) > 0 {
				a.rets = append(a.rets, n.Results)
			}
		case ast.Expr:
			// Arithmetic checks fire from eval; make sure expression
			// statements and conditions are visited too.
			_ = a.eval(n)
			return false // eval recurses itself
		}
		return true
	})
}

// assign propagates the RHS dimension into the target and, when both
// sides carry a known dimension, checks them against each other.
func (a *dimAnalysis) assign(n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		for _, rhs := range n.Rhs {
			_ = a.eval(rhs)
		}
		return
	}
	for i := range n.Lhs {
		rhs := a.eval(n.Rhs[i])
		switch n.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN:
			lhs := a.evalTarget(n.Lhs[i])
			if incompatible(lhs, rhs) {
				a.reportf(n, "mixed-dimension %s: %s %s= %s", n.Tok, lhs, string(n.Tok.String()[0]), rhs)
			}
			continue
		case token.MUL_ASSIGN:
			lhs := a.evalTarget(n.Lhs[i])
			if p := lhs.mul(rhs); p.suspiciousProduct() {
				a.reportf(n, "suspicious product: %s *= %s yields %s, which has no physical meaning here", lhs, rhs, p)
			}
			continue
		case token.ASSIGN, token.DEFINE:
		default:
			continue
		}
		a.applyDim(n.Lhs[i], rhs, n.Rhs[i], n)
	}
}

// applyDim stores an inferred dimension into the target object and checks
// it against the target's declared dimension.
func (a *dimAnalysis) applyDim(target ast.Expr, d Dim, rhs ast.Expr, at ast.Node) {
	switch t := ast.Unparen(target).(type) {
	case *ast.Ident:
		obj := assignedObj(a.pkg.Info, t)
		v, ok := obj.(*types.Var)
		if !ok {
			return
		}
		if want := declaredDim(v); incompatible(want, d) {
			a.reportf(at, "assigning %s expression to %q, which is declared/named as %s", d, v.Name(), want)
			return
		}
		if d.known {
			a.env[v] = d
		}
	case *ast.SelectorExpr:
		if s, ok := a.pkg.Info.Selections[t]; ok && s.Kind() == types.FieldVal {
			if fld, ok := s.Obj().(*types.Var); ok {
				if want := declaredDim(fld); incompatible(want, d) {
					a.reportf(at, "assigning %s expression to field %q, which is declared/named as %s", d, fld.Name(), want)
				}
			}
		}
	}
}

// evalTarget evaluates an assignment target as a value (for += / -=).
func (a *dimAnalysis) evalTarget(e ast.Expr) Dim {
	return a.eval(e)
}

// scalarExpr reports whether e is a pure scale factor that adapts to any
// dimension: a constant expression with no known dimension of its own.
// units.NsPerSecond is constant but NOT scalar — it carries ns/s and must
// participate in dimension arithmetic.
func (a *dimAnalysis) scalarExpr(e ast.Expr) bool {
	tv, ok := a.pkg.Info.Types[e]
	return ok && tv.Value != nil && !a.eval(e).known
}

// incompatible reports a genuine dimension clash: both sides known,
// different, and neither a bare scalar — a dimensionless factor (a ratio,
// units.Mega, units.GB scaling a GB/s figure) may combine with anything.
func incompatible(a, b Dim) bool {
	return a.known && b.known && a != b && a != dimScalar && b != dimScalar
}

// eval infers the dimension of an expression, emitting findings at
// incoherent arithmetic when in report mode.
func (a *dimAnalysis) eval(e ast.Expr) Dim {
	switch e := e.(type) {
	case nil:
		return dimNone
	case *ast.Ident:
		obj := objOf(a.pkg.Info, e)
		if v, ok := obj.(*types.Var); ok {
			if d, ok := a.env[v]; ok {
				return d
			}
			return declaredDim(v)
		}
		if c, ok := obj.(*types.Const); ok {
			return constDim(c)
		}
		return dimNone
	case *ast.SelectorExpr:
		if s, ok := a.pkg.Info.Selections[e]; ok && s.Kind() == types.FieldVal {
			_ = a.eval(e.X)
			if fld, ok := s.Obj().(*types.Var); ok {
				return declaredDim(fld)
			}
			return dimNone
		}
		if c, ok := a.pkg.Info.Uses[e.Sel].(*types.Const); ok {
			return constDim(c)
		}
		if v, ok := a.pkg.Info.Uses[e.Sel].(*types.Var); ok {
			return declaredDim(v)
		}
		return dimNone
	case *ast.BinaryExpr:
		return a.evalBinary(e)
	case *ast.CallExpr:
		return a.evalCall(e)
	case *ast.ParenExpr:
		return a.eval(e.X)
	case *ast.UnaryExpr:
		return a.eval(e.X)
	case *ast.StarExpr:
		return a.eval(e.X)
	case *ast.IndexExpr:
		_ = a.eval(e.Index)
		return a.eval(e.X)
	case *ast.CompositeLit:
		return a.evalComposite(e)
	case *ast.TypeAssertExpr:
		return a.eval(e.X)
	case *ast.BasicLit:
		return dimNone // untyped literal: adapts to context
	}
	return dimNone
}

func (a *dimAnalysis) evalBinary(e *ast.BinaryExpr) Dim {
	x, y := a.eval(e.X), a.eval(e.Y)
	xScalar, yScalar := a.scalarExpr(e.X), a.scalarExpr(e.Y)
	switch e.Op {
	case token.ADD, token.SUB:
		if incompatible(x, y) && !xScalar && !yScalar {
			a.reportf(e, "mixed-dimension %s: %s %s %s; convert through internal/units first", opName(e.Op), x, e.Op, y)
			return dimNone
		}
		// Prefer the more specific operand's dimension.
		if x.known && x != dimScalar {
			return x
		}
		if y.known && y != dimScalar {
			return y
		}
		if x.known {
			return x
		}
		return y
	case token.MUL:
		// A scalar operand rescales without touching the dimension.
		if xScalar {
			return y
		}
		if yScalar {
			return x
		}
		p := x.mul(y)
		if p.suspiciousProduct() {
			a.reportf(e, "suspicious product: %s * %s yields %s, which has no physical meaning here", x, y, p)
			return dimNone
		}
		return p
	case token.QUO:
		if yScalar {
			return x
		}
		if xScalar && y.known {
			return dimScalar.div(y)
		}
		q := x.div(y)
		if x.known && y.known && crossTimeQuotient(x, y) {
			a.reportf(e, "quotient %s / %s mixes clock and wall time without a units.Frequency conversion", x, y)
			return dimNone
		}
		return q
	case token.REM, token.SHL, token.SHR:
		return x
	default:
		return dimNone // comparisons, logic, bit ops: no dimension
	}
}

// crossTimeQuotient reports a division of pure cycles by pure
// nanoseconds or vice versa — a frequency in disguise that must go
// through units.Frequency instead.
func crossTimeQuotient(x, y Dim) bool {
	pureCy := Dim{known: true, cy: 1}
	pureNs := Dim{known: true, ns: 1}
	return (x == pureCy && y == pureNs) || (x == pureNs && y == pureCy)
}

func (a *dimAnalysis) evalComposite(lit *ast.CompositeLit) Dim {
	st := structOf(a.pkg.Info.TypeOf(lit))
	for i, elt := range lit.Elts {
		var fld *types.Var
		val := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			val = kv.Value
			if key, ok := kv.Key.(*ast.Ident); ok {
				fld, _ = a.pkg.Info.Uses[key].(*types.Var)
			}
		} else if st != nil && i < st.NumFields() {
			fld = st.Field(i)
		}
		d := a.eval(val)
		if fld != nil {
			if want := declaredDim(fld); incompatible(want, d) {
				a.reportf(val, "field %q is declared/named as %s but initialized with a %s expression", fld.Name(), want, d)
			}
		}
	}
	return dimNone
}

// evalCall resolves conversions, the well-known dimension transformers,
// and local function summaries; everything else evaluates arguments for
// checks but yields no dimension.
func (a *dimAnalysis) evalCall(call *ast.CallExpr) Dim {
	if tv, ok := a.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			d := a.eval(call.Args[0])
			if d.known {
				return d
			}
			return typeDim(tv.Type)
		}
		return dimNone
	}
	fn := calleeFunc(a.pkg.Info, call)
	for _, arg := range call.Args {
		_ = a.eval(arg) // visit for nested checks
	}
	if fn == nil {
		return dimNone
	}
	if d, ok := a.wellKnownCall(call, fn); ok {
		return d
	}
	if res, ok := a.df.results[fn]; ok && len(res) > 0 {
		return res[0]
	}
	return dimNone
}

// wellKnownCall hard-codes the dimension contracts of the conversion and
// counter layers, the ground truth everything else is checked against.
func (a *dimAnalysis) wellKnownCall(call *ast.CallExpr, fn *types.Func) (Dim, bool) {
	if fn.Pkg() == nil {
		return dimNone, false
	}
	path := fn.Pkg().Path()
	switch {
	case pathHasSuffix(path, "internal/units"):
		switch fn.Name() {
		case "Nanoseconds":
			return dimNs, true
		case "Cycles", "OccupancyCycles":
			return dimCycles, true
		case "BytesPerCycle":
			return Dim{known: true, by: 1, cy: -1}, true
		}
	case path == "time":
		switch fn.Name() {
		case "Seconds":
			return dimSeconds, true
		case "Nanoseconds":
			return dimNs, true
		}
	case fn.Name() == "Ratio" && pathHasSuffix(path, "internal/stats"):
		if len(call.Args) == 2 {
			x, y := a.eval(call.Args[0]), a.eval(call.Args[1])
			if x.known && y.known {
				return x.div(y), true
			}
		}
		return dimNone, true
	case fn.Name() == "Get" && isCountersSet(fn):
		if len(call.Args) == 1 {
			return eventDim(a.pkg.Info, call.Args[0]), true
		}
	}
	// time.Duration methods: a Duration is ns at heart.
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil && fn.Pkg().Path() == "time" {
		switch fn.Name() {
		case "Seconds":
			return dimSeconds, true
		case "Nanoseconds", "Sub":
			return dimNs, true
		}
	}
	return dimNone, false
}

// isCountersSet reports whether fn is a method of the counters Set type.
func isCountersSet(fn *types.Func) bool {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || fn.Pkg() == nil || fn.Pkg().Name() != "counters" {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Set"
}

// eventDim maps a counters.Event constant to the dimension it counts.
func eventDim(info *types.Info, arg ast.Expr) Dim {
	var name string
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		return dimEvents
	}
	switch {
	case strings.HasSuffix(name, "Bytes"):
		return dimBytes
	case strings.HasSuffix(name, "Cycles") || name == "Cycles":
		return dimCycles
	default:
		return dimEvents
	}
}

// constDim seeds dimensions from the internal/units constants — the
// canonical names the whole dimension system is anchored on.
func constDim(c *types.Const) Dim {
	if c.Pkg() != nil && pathHasSuffix(c.Pkg().Path(), "internal/units") {
		switch c.Name() {
		case "KHz", "MHz", "GHz":
			return dimHz
		case "KiB", "MiB", "GiB":
			return dimBytes
		case "NsPerSecond":
			return Dim{known: true, ns: 1, s: -1}
		case "GB", "Mega":
			// Numeric prefixes: GB scales GB/s figures into bytes/s and
			// Mega scales MOPS; both are scale factors, not quantities.
			return dimScalar
		}
	}
	return nameDim(c.Name())
}

// declaredDim derives a variable's dimension from its type or name.
func declaredDim(v *types.Var) Dim {
	if v == nil {
		return dimNone
	}
	if d := typeDim(v.Type()); d.known {
		return d
	}
	// counters.Metrics fields carry their documented meanings.
	if ownerIsMetrics(v) {
		switch v.Name() {
		case "CPI":
			return Dim{known: true, cy: 1, ev: -1}
		case "DTLBMisses":
			return dimEvents
		default:
			return dimScalar // the rates and percentages
		}
	}
	return nameDim(v.Name())
}

// ownerIsMetrics reports whether v is a field of the counters Metrics
// struct.
func ownerIsMetrics(v *types.Var) bool {
	if !v.IsField() || v.Pkg() == nil || v.Pkg().Name() != "counters" {
		return false
	}
	obj := v.Pkg().Scope().Lookup("Metrics")
	if obj == nil {
		return false
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i) == v {
			return true
		}
	}
	return false
}

// typeDim maps well-known named types to dimensions.
func typeDim(t types.Type) Dim {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return dimNone
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	switch {
	case pkg == "time" && name == "Duration":
		return dimNs
	case pathHasSuffix(pkg, "internal/units") && name == "Frequency":
		return dimHz
	}
	return dimNone
}

// nameDim derives a dimension from an identifier's naming convention: an
// exact lowercase name ("ns", "cycles") or a camel-case suffix with a
// word boundary ("LatencyNs", "memReadBytes"). Anything else is unknown —
// a wrong guess here would manufacture false findings.
func nameDim(name string) Dim {
	suffixes := []struct {
		suffix string
		dim    Dim
	}{
		{"PerSecond", dimNone}, // resolved below against the remainder
		{"PerCycle", dimNone},
		{"Ns", dimNs},
		{"Nanos", dimNs},
		{"Cycles", dimCycles},
		{"Bytes", dimBytes},
		{"Size", dimBytes},
		{"Seconds", dimSeconds},
		{"Secs", dimSeconds},
		{"BW", dimBW},
		{"Bandwidth", dimBW},
		{"Hz", dimHz},
		{"Freq", dimHz},
	}
	lower := strings.ToLower(name)
	for _, s := range suffixes {
		sl := strings.ToLower(s.suffix)
		if lower == sl {
			return resolveNameDim(s.suffix, "")
		}
		if strings.HasSuffix(name, s.suffix) && len(name) > len(s.suffix) {
			prev := name[len(name)-len(s.suffix)-1]
			// Require a camel-case boundary so "columns" never reads as
			// "...Ns".
			if s.suffix[0] >= 'A' && s.suffix[0] <= 'Z' && (prev < 'A' || prev > 'Z') {
				return resolveNameDim(s.suffix, name[:len(name)-len(s.suffix)])
			}
		}
	}
	return dimNone
}

// resolveNameDim handles the compositional suffixes: BytesPerSecond,
// CyclesPerSecond, and friends.
func resolveNameDim(suffix, rest string) Dim {
	switch suffix {
	case "PerSecond":
		if base := nameDim(strings.Title(rest)); base.known { //nolint — ascii identifiers only
			return base.div(dimSeconds)
		}
		return dimNone
	case "PerCycle":
		if base := nameDim(strings.Title(rest)); base.known {
			return base.div(dimCycles)
		}
		return dimNone
	case "Ns", "Nanos":
		return dimNs
	case "Cycles":
		return dimCycles
	case "Bytes", "Size":
		return dimBytes
	case "Seconds", "Secs":
		return dimSeconds
	case "BW", "Bandwidth":
		return dimBW
	case "Hz", "Freq":
		return dimHz
	}
	return dimNone
}

func opName(op token.Token) string {
	if op == token.ADD {
		return "addition"
	}
	return "subtraction"
}

func (a *dimAnalysis) reportf(n ast.Node, format string, args ...any) {
	if a.report != nil {
		a.report(n, format, args...)
	}
}

func (a *Dimension) Check(prog *Program, pkg *Package) []Diagnostic {
	// internal/units is where raw conversion factors live; checking it
	// against itself would be circular.
	if pathHasSuffix(pkg.Path, unitsPackage) {
		return nil
	}
	facts := prog.Facts()
	df := facts.dimsFor()

	var diags []Diagnostic
	seen := map[string]bool{}
	for _, fi := range facts.PkgFuncs(pkg) {
		if strings.HasSuffix(prog.Fset.Position(fi.Decl.Pos()).Filename, "_test.go") {
			continue
		}
		an := newDimAnalysis(fi, df)
		an.solve()
		an.report = func(n ast.Node, format string, args ...any) {
			d := Diagnostic{Pos: prog.Fset.Position(n.Pos()), Analyzer: a.Name(), Message: fmt.Sprintf(format, args...)}
			key := d.Pos.String() + d.Message
			if !seen[key] {
				seen[key] = true
				diags = append(diags, d)
			}
		}
		an.walk()
	}
	return diags
}
