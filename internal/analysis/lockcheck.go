package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// LockCheck guards the job fan-out in internal/core (and anything shaped
// like it) against the two concurrency mistakes a deterministic simulator
// cannot afford:
//
//   - sync primitives copied by value — a receiver, parameter, or result
//     of a type containing a sync.Mutex/RWMutex/WaitGroup/Once/Cond
//     duplicates the lock state, so two holders guard nothing
//   - goroutines launched in a loop that write variables captured from the
//     enclosing function without any locking in the goroutine body — the
//     classic fan-out race on shared simulator state
type LockCheck struct{}

func (*LockCheck) Name() string { return "lockcheck" }
func (*LockCheck) Doc() string {
	return "flag sync primitives copied by value and loop goroutines writing captured state unlocked"
}

func (a *LockCheck) Check(prog *Program, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	report := func(n ast.Node, format string, args ...any) {
		diags = append(diags, Diagnostic{prog.Fset.Position(n.Pos()), a.Name(), fmt.Sprintf(format, args...), nil})
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					a.checkFields(pkg, n.Recv, "receiver", report)
				}
				a.checkFuncType(pkg, n.Type, report)
			case *ast.FuncLit:
				a.checkFuncType(pkg, n.Type, report)
			case *ast.ForStmt:
				a.checkLoopGoroutines(pkg, n.Body, report)
			case *ast.RangeStmt:
				a.checkLoopGoroutines(pkg, n.Body, report)
			}
			return true
		})
	}
	return diags
}

func (a *LockCheck) checkFuncType(pkg *Package, ft *ast.FuncType, report func(ast.Node, string, ...any)) {
	a.checkFields(pkg, ft.Params, "parameter", report)
	a.checkFields(pkg, ft.Results, "result", report)
}

// checkFields flags fields whose non-pointer type contains a sync
// primitive.
func (a *LockCheck) checkFields(pkg *Package, fl *ast.FieldList, kind string, report func(ast.Node, string, ...any)) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		tv, ok := pkg.Info.Types[field.Type]
		if !ok {
			continue
		}
		if lock := lockIn(tv.Type, 0); lock != "" {
			report(field, "%s passes %s by value, copying its %s; use a pointer", kind, types.TypeString(tv.Type, types.RelativeTo(pkg.Types)), lock)
		}
	}
}

// lockIn returns the name of a sync primitive reachable by value inside t
// ("" if none). Pointers stop the walk: sharing a pointer is the fix.
func lockIn(t types.Type, depth int) string {
	if depth > 8 {
		return ""
	}
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond":
				return "sync." + obj.Name()
			}
		}
		return lockIn(t.Underlying(), depth+1)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if l := lockIn(t.Field(i).Type(), depth+1); l != "" {
				return l
			}
		}
	case *types.Array:
		return lockIn(t.Elem(), depth+1)
	}
	return ""
}

// checkLoopGoroutines flags `go func(){...}()` launched inside a loop
// whose body assigns to variables captured from outside the closure
// without taking any lock — the fan-out data race. A closure that calls
// any .Lock() is given the benefit of the doubt; channel sends and
// atomics don't assign, so they never trip this.
func (a *LockCheck) checkLoopGoroutines(pkg *Package, loopBody *ast.BlockStmt, report func(ast.Node, string, ...any)) {
	ast.Inspect(loopBody, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		if callsLock(pkg.Info, lit.Body) {
			return true
		}
		ast.Inspect(lit.Body, func(bn ast.Node) bool {
			as, ok := bn.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pkg.Info.Uses[id] // Defs means := — a new, local var
				if obj == nil {
					continue
				}
				if _, isVar := obj.(*types.Var); !isVar {
					continue
				}
				// Captured: declared outside the closure.
				if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
					continue
				}
				report(as, "goroutine launched in a loop writes captured variable %q without locking; guard it with a mutex or use a channel", id.Name)
			}
			return true
		})
		return true
	})
}

// callsLock reports whether the block calls any method named Lock or
// RLock.
func callsLock(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(info, call); fn != nil && (fn.Name() == "Lock" || fn.Name() == "RLock") {
			found = true
		}
		return !found
	})
	return found
}
