package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the concurrency substrate shared by the ctxflow, goleak,
// and lockorder analyzers: per-function summaries of what may block, which
// module-visible locks a call may acquire, and which WaitGroup objects are
// ever waited on — computed once per Program over the Facts call graph,
// like the taint and dimension fixed points.

// concFacts is the module-wide concurrency summary set.
type concFacts struct {
	facts *Facts

	// blocking marks functions that may block: a channel operation, a
	// select without default, sync.Cond.Wait, sync.WaitGroup.Wait, an
	// HTTP round-trip — directly or through any module callee.
	blocking map[*types.Func]bool

	// acquires maps each function to the module-visible locks (struct
	// fields and package-level variables of sync.Mutex/RWMutex type) it
	// may acquire, directly or through module callees, with one sample
	// acquisition site per lock.
	acquires map[*types.Func]map[*types.Var]token.Pos

	// waits records, per WaitGroup object (field, package var, or local),
	// the functions that call .Wait() on it — the join evidence goleak
	// resolves WaitGroup-spawned goroutines against.
	waits map[types.Object][]*types.Func

	// lockNames carries a stable display name per lock object, resolved
	// from the receiver's static type at the first acquisition site seen
	// in deterministic package/file order ("server.Server.mu").
	lockNames map[*types.Var]string

	// bufferedAnywhere and closedAnywhere are module-wide evidence sets:
	// channel objects made with a non-zero capacity, and channel objects
	// some function closes. goleak consults these instead of per-body
	// scans because the close is often in the spawner while the receive
	// is in the spawned helper.
	bufferedAnywhere map[types.Object]bool
	closedAnywhere   map[types.Object]bool

	// lockDiags is the lockorder analyzer's module-wide result (held-lock
	// walk + acquisition-graph cycles), solved once and filtered per
	// package by Check.
	lockDiags  []Diagnostic
	lockSolved bool
}

// concFor solves the concurrency summaries once and caches them.
func (f *Facts) concFor() *concFacts {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.conc != nil {
		return f.conc
	}
	cf := &concFacts{
		facts:            f,
		blocking:         map[*types.Func]bool{},
		acquires:         map[*types.Func]map[*types.Var]token.Pos{},
		waits:            map[types.Object][]*types.Func{},
		lockNames:        map[*types.Var]string{},
		bufferedAnywhere: map[types.Object]bool{},
		closedAnywhere:   map[types.Object]bool{},
	}

	// Direct facts per declared function body.
	for _, pkg := range f.prog.Packages {
		for _, b := range f.bodies[pkg] {
			if b.Fn == nil {
				continue
			}
			cf.scanDirect(pkg, b.Fn, b.Block)
		}
		for _, b := range f.bodies[pkg] {
			for obj := range bufferedChans(pkg.Info, b.Block) {
				cf.bufferedAnywhere[obj] = true
			}
			for obj := range closedChans(pkg.Info, b.Block) {
				cf.closedAnywhere[obj] = true
			}
		}
	}

	// Transitive closure over the call graph. Funcs is bottom-up, so one
	// sweep resolves acyclic chains; iterate until stable for cycles.
	for sweep := 0; sweep < 16; sweep++ {
		changed := false
		for _, fi := range f.Funcs {
			for _, callee := range f.Callees[fi.Fn] {
				if cf.blocking[callee] && !cf.blocking[fi.Fn] {
					cf.blocking[fi.Fn] = true
					changed = true
				}
				for lock, pos := range cf.acquires[callee] {
					if _, ok := cf.acquires[fi.Fn][lock]; !ok {
						if cf.acquires[fi.Fn] == nil {
							cf.acquires[fi.Fn] = map[*types.Var]token.Pos{}
						}
						cf.acquires[fi.Fn][lock] = pos
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	f.conc = cf
	return cf
}

// scanDirect records one function's direct blocking operations, lock
// acquisitions, and WaitGroup waits.
func (cf *concFacts) scanDirect(pkg *Package, fn *types.Func, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			cf.blocking[fn] = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				cf.blocking[fn] = true
			}
		case *ast.RangeStmt:
			if isChanType(pkg.Info, n.X) {
				cf.blocking[fn] = true
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				cf.blocking[fn] = true
			}
		case *ast.CallExpr:
			callee := calleeFunc(pkg.Info, n)
			if callee == nil {
				return true
			}
			if kind, method := syncPrimitiveMethod(callee); kind != "" {
				switch {
				case method == "Wait" && (kind == "Cond" || kind == "WaitGroup"):
					cf.blocking[fn] = true
					if kind == "WaitGroup" {
						if obj := receiverObject(pkg.Info, n); obj != nil {
							cf.waits[obj] = append(cf.waits[obj], fn)
						}
					}
				case (method == "Lock" || method == "RLock") && (kind == "Mutex" || kind == "RWMutex"):
					if v := lockVarOf(pkg.Info, n); v != nil {
						if cf.acquires[fn] == nil {
							cf.acquires[fn] = map[*types.Var]token.Pos{}
						}
						if _, ok := cf.acquires[fn][v]; !ok {
							cf.acquires[fn][v] = n.Pos()
						}
						if _, ok := cf.lockNames[v]; !ok {
							cf.lockNames[v] = lockDisplayName(pkg, n, v)
						}
					}
				}
			}
			if isHTTPRoundTrip(callee) {
				cf.blocking[fn] = true
			}
		}
		return true
	})
}

// lockName renders a lock object for messages, falling back to the bare
// variable name when no acquisition named it.
func (cf *concFacts) lockName(v *types.Var) string {
	if name, ok := cf.lockNames[v]; ok {
		return name
	}
	return v.Name()
}

// syncPrimitiveMethod reports the sync primitive type name and method
// name of a sync.* method ("" when fn is not one).
func syncPrimitiveMethod(fn *types.Func) (kind, method string) {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	return named.Obj().Name(), fn.Name()
}

// receiverObject resolves the base object of a method call's receiver
// chain: `x.Wait()` gives x's object, `s.wg.Wait()` gives the wg field.
func receiverObject(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return chainObject(info, sel.X)
}

// chainObject resolves an expression to the object it names: the field
// var for a selector chain, the variable for an ident, nil otherwise.
func chainObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok && s.Kind() == types.FieldVal {
			return s.Obj()
		}
		if obj := info.Uses[e.Sel]; obj != nil {
			return obj
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return chainObject(info, e.X)
		}
	case *ast.StarExpr:
		return chainObject(info, e.X)
	}
	return nil
}

// lockVarOf resolves the lock object of an `x.Lock()` call to a
// module-visible *types.Var: a struct field or a package-level variable.
// Local mutexes return the local var (held-state tracking still works);
// unresolvable receivers return nil.
func lockVarOf(info *types.Info, call *ast.CallExpr) *types.Var {
	obj := receiverObject(info, call)
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	return v
}

// graphableLock reports whether a lock var can participate in the
// module-wide acquisition graph: struct fields and package-level
// variables. Function-local mutexes cannot be acquired by two functions
// in conflicting order.
func graphableLock(v *types.Var) bool {
	if v == nil {
		return false
	}
	if v.IsField() {
		return true
	}
	// Package-level: parent scope is the package scope.
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// lockDisplayName renders "pkg.Type.field" for a lock acquisition like
// s.mu.Lock() by reading the receiver chain's static types.
func lockDisplayName(pkg *Package, call *ast.CallExpr, v *types.Var) string {
	if !v.IsField() {
		if v.Pkg() != nil {
			return v.Pkg().Name() + "." + v.Name()
		}
		return v.Name()
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if ok {
		if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
			if tv, ok := pkg.Info.Types[inner.X]; ok && tv.Type != nil {
				t := tv.Type
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
				}
				if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
					return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + v.Name()
				}
			}
		}
	}
	if v.Pkg() != nil {
		return v.Pkg().Name() + "." + v.Name()
	}
	return v.Name()
}

// isHTTPRoundTrip reports whether fn is a net/http call that performs a
// network round-trip with no context of its own (http.Get and friends) —
// the round-trips ctxflow wants threaded through NewRequestWithContext.
func isHTTPRoundTrip(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "net/http" {
		return false
	}
	// Only the package-level convenience functions are round-trips;
	// methods that share their names (http.Header.Get) are plain lookups.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	switch fn.Name() {
	case "Get", "Post", "Head", "PostForm":
		return true
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// ctxParamVar returns the object of the first context.Context parameter
// of a function type's field list, resolved through info (nil if none or
// unnamed).
func ctxParamVar(info *types.Info, ft *ast.FuncType) *types.Var {
	if ft == nil || ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if v, ok := info.Defs[name].(*types.Var); ok {
				return v
			}
		}
	}
	return nil
}

// funcHasCtxParam reports whether fn's signature accepts a
// context.Context parameter.
func funcHasCtxParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isChanType reports whether e has channel type.
func isChanType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// selectHasDefault reports whether a select statement has a default
// clause.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// isDoneRecv reports whether e is a receive (or bare call) of
// `<something>.Done()` on a context-typed receiver — the cancellation
// arm shape.
func isDoneRecv(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			return isDoneCall(info, e.X)
		}
	}
	return false
}

// isDoneCall reports whether e is a call `x.Done()` with x a
// context.Context.
func isDoneCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	tv, ok := info.Types[sel.X]
	return ok && isContextType(tv.Type)
}

// selectHasDoneArm reports whether a select has a `<-ctx.Done()` comm
// clause (or a default clause, which also makes it non-blocking).
func selectHasDoneArm(info *types.Info, sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default
		}
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			if isDoneRecv(info, comm.X) {
				return true
			}
		case *ast.AssignStmt:
			for _, r := range comm.Rhs {
				if isDoneRecv(info, r) {
					return true
				}
			}
		}
	}
	return false
}

// bufferedChans scans a top-level body for channels made with an explicit
// non-zero capacity (`make(chan T, n)`), keyed by the variable object the
// channel is bound to. Sends on these complete without a receiver until
// the buffer fills, which is the "result slot" idiom the analyzers
// accept.
func bufferedChans(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	isBufferedMake := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return false
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "make" {
			return false
		}
		if _, isChan := info.Types[call.Args[0]].Type.(*types.Chan); !isChan {
			return false
		}
		if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil && tv.Value.String() == "0" {
			return false // make(chan T, 0) is unbuffered
		}
		return true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if !isBufferedMake(rhs) {
					continue
				}
				if obj := chainObject(info, n.Lhs[i]); obj != nil {
					out[obj] = true
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) != len(n.Values) {
				return true
			}
			for i, v := range n.Values {
				if !isBufferedMake(v) {
					continue
				}
				if obj := info.Defs[n.Names[i]]; obj != nil {
					out[obj] = true
				}
			}
		case *ast.KeyValueExpr:
			// Struct literal fields: Gate{sem: make(chan struct{}, n)}
			// makes the sem field a buffered channel module-wide.
			if !isBufferedMake(n.Value) {
				return true
			}
			if key, ok := n.Key.(*ast.Ident); ok {
				if obj, ok := info.Uses[key].(*types.Var); ok && obj.IsField() {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// closedChans scans a top-level body for `close(ch)` calls, keyed by the
// channel's variable object — evidence that receives and ranges on the
// channel have a termination protocol.
func closedChans(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "close" {
			return true
		}
		if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		if obj := chainObject(info, call.Args[0]); obj != nil {
			out[obj] = true
		}
		return true
	})
	return out
}

// callsAfterFunc reports whether a top-level body calls context.AfterFunc
// — the documented bridge that wakes sync.Cond waiters on cancellation.
func callsAfterFunc(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" && fn.Name() == "AfterFunc" {
			found = true
		}
		return !found
	})
	return found
}

// sortedLockVars orders lock vars deterministically by display name then
// position, for stable cycle reports.
func (cf *concFacts) sortedLockVars(vars map[*types.Var]bool) []*types.Var {
	out := make([]*types.Var, 0, len(vars))
	for v := range vars {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := cf.lockName(out[i]), cf.lockName(out[j])
		if a != b {
			return a < b
		}
		return out[i].Pos() < out[j].Pos()
	})
	return out
}
