package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader discovers, parses, and type-checks every package under a module
// root using only the standard library: local imports are resolved by
// type-checking the imported directory (memoized, in dependency order)
// and everything else goes through go/types' source importer.
type Loader struct {
	// Root is the module root directory (the one holding go.mod).
	Root string
	// ModulePath overrides the module path; read from go.mod when empty.
	ModulePath string
	// IncludeTests adds in-package _test.go files to each package.
	// External test packages (package foo_test) are never loaded: they
	// would need export-data plumbing the analyzers don't profit from.
	IncludeTests bool

	fset    *token.FileSet
	std     types.ImporterFrom
	pkgs    map[string]*Package // import path -> loaded package
	loading map[string]bool     // cycle guard
	prog    *Program
}

// Load walks the root, type-checks every package, and returns the
// program. Any parse or type error fails the load: the linter runs on
// trees that build.
func (l *Loader) Load() (*Program, error) {
	if l.Root == "" {
		l.Root = "."
	}
	abs, err := filepath.Abs(l.Root)
	if err != nil {
		return nil, err
	}
	l.Root = abs
	if l.ModulePath == "" {
		mp, err := modulePath(filepath.Join(l.Root, "go.mod"))
		if err != nil {
			return nil, err
		}
		l.ModulePath = mp
	}
	l.fset = token.NewFileSet()
	l.std = importer.ForCompiler(l.fset, "source", nil).(types.ImporterFrom)
	l.pkgs = map[string]*Package{}
	l.loading = map[string]bool{}
	l.prog = &Program{Fset: l.fset, ModulePath: l.ModulePath}

	dirs, err := l.packageDirs()
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		if _, err := l.loadLocal(l.importPath(dir)); err != nil {
			return nil, err
		}
	}
	sort.Slice(l.prog.Packages, func(i, j int) bool {
		return l.prog.Packages[i].Path < l.prog.Packages[j].Path
	})
	return l.prog, nil
}

// modulePath reads the module directive of a go.mod file.
func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: reading module path: %w", err)
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// packageDirs lists every directory under Root holding Go files the
// loader would actually include, skipping hidden directories and testdata
// trees. Discovery and loading share includeFile, so a directory is
// listed if and only if loadLocal would find files in it — the two stages
// cannot disagree about build tags or _test.go files.
func (l *Loader) packageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(path)
		if path != l.Root && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") || base == "testdata") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && l.includeFile(path, e.Name()) {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

// The lint target platform is pinned so an analyzer run on a developer
// laptop and the CI lint job see byte-identical file sets: build
// constraints are evaluated as linux/amd64 regardless of the host.
const (
	targetGOOS   = "linux"
	targetGOARCH = "amd64"
)

// includeFile is the single file-selection predicate shared by discovery
// and loading: .go files, minus editor/backup artifacts, minus _test.go
// when tests are excluded, minus files ruled out by a GOOS/GOARCH
// filename suffix or a //go:build / +build constraint.
func (l *Loader) includeFile(dir, name string) bool {
	if !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
		return false
	}
	if !l.IncludeTests && strings.HasSuffix(name, "_test.go") {
		return false
	}
	if !fileSuffixOK(name) {
		return false
	}
	src, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return false
	}
	return buildTagsOK(src)
}

// knownOS and knownArch recognize the implicit filename constraints
// (foo_windows.go, foo_arm64.go, foo_windows_arm64.go).
var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// fileSuffixOK applies the go/build filename-suffix rules against the
// pinned target platform.
func fileSuffixOK(name string) bool {
	name = strings.TrimSuffix(name, ".go")
	name = strings.TrimSuffix(name, "_test")
	parts := strings.Split(name, "_")
	if len(parts) < 2 {
		return true
	}
	last := parts[len(parts)-1]
	if knownArch[last] {
		if last != targetGOARCH {
			return false
		}
		if len(parts) >= 3 && knownOS[parts[len(parts)-2]] {
			return parts[len(parts)-2] == targetGOOS
		}
		return true
	}
	if knownOS[last] {
		return last == targetGOOS
	}
	return true
}

// buildTagsOK evaluates the build constraints in a file header against
// the pinned target platform. A //go:build line takes precedence over
// legacy +build lines, matching the go tool.
func buildTagsOK(src []byte) bool {
	tagOK := func(tag string) bool {
		switch tag {
		case targetGOOS, targetGOARCH, "gc", "unix":
			return true
		}
		// Release tags: the toolchain building this module satisfies the
		// module's own go directive, so accept any go1.x.
		return strings.HasPrefix(tag, "go1.")
	}
	var plusLines []constraint.Expr
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "package ") {
			break
		}
		switch {
		case constraint.IsGoBuild(trimmed):
			expr, err := constraint.Parse(trimmed)
			if err != nil {
				return false
			}
			return expr.Eval(tagOK)
		case constraint.IsPlusBuild(trimmed):
			if expr, err := constraint.Parse(trimmed); err == nil {
				plusLines = append(plusLines, expr)
			}
		}
	}
	for _, expr := range plusLines {
		if !expr.Eval(tagOK) {
			return false
		}
	}
	return true
}

// importPath maps a directory under Root to its import path.
func (l *Loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// dirOf maps a local import path back to its directory.
func (l *Loader) dirOf(path string) string {
	if path == l.ModulePath {
		return l.Root
	}
	return filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath+"/")))
}

// isLocal reports whether path belongs to the loaded module.
func (l *Loader) isLocal(path string) bool {
	return path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Root, 0)
}

// ImportFrom implements types.ImporterFrom, routing local packages to the
// recursive loader and everything else to the source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if l.isLocal(path) {
		p, err := l.loadLocal(path)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("analysis: no buildable Go files in %s", path)
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// loadLocal parses and type-checks one module-local package, memoized.
func (l *Loader) loadLocal(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirOf(path)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range ents {
		if e.IsDir() || !l.includeFile(dir, e.Name()) {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		// Skip external test packages (package foo_test).
		if strings.HasSuffix(f.Name.Name, "_test") && strings.HasSuffix(name, "_test.go") {
			continue
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name != pkgName {
			return nil, fmt.Errorf("analysis: %s: mixed packages %s and %s", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		// Every file was excluded (a dir holding only external-test
		// packages, or only files for other platforms): not an error,
		// just nothing to analyze. Memoize the miss.
		l.pkgs[path] = nil
		return nil, nil
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Name: pkgName, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	l.prog.Packages = append(l.prog.Packages, p)
	return p, nil
}
