package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// LockOrder is the module-wide deadlock analyzer. Each top-level body is
// walked with a held-lock set; acquisitions while holding another lock
// become edges of a module-wide acquisition graph (held -> acquired),
// with calls expanded through the per-function acquisition summaries
// (conc.go) so an A->B ordering established through a helper still gets
// its edge. Findings:
//
//   - acquisition cycles: strongly-connected components of the graph are
//     potential deadlocks, reported once per cycle at the earliest edge
//   - self-deadlock: re-acquiring a held lock, directly or by calling a
//     function whose summary acquires it
//   - lock held across blocking: a channel op, select, WaitGroup.Wait,
//     or call to a may-block function while holding a mutex stalls every
//     other holder; sync.Cond.Wait is exempt for the single lock it
//     releases
//
// It also subsumes the retired lockcheck analyzer's local patterns:
// sync primitives copied by value, and loop goroutines writing captured
// variables unlocked.
type LockOrder struct{}

func (*LockOrder) Name() string { return "lockorder" }
func (*LockOrder) Doc() string {
	return "flag lock-ordering cycles, self-deadlocks, locks held across blocking ops, and lock-copy races"
}

func (a *LockOrder) Check(prog *Program, pkg *Package) []Diagnostic {
	cf := prog.Facts().concFor()
	a.solve(prog, cf)

	var diags []Diagnostic
	for _, d := range cf.lockDiags {
		if filepath.Dir(d.Pos.Filename) == pkg.Dir {
			diags = append(diags, d)
		}
	}

	// Local (single-package) patterns inherited from lockcheck.
	report := func(n ast.Node, format string, args ...any) {
		diags = append(diags, Diagnostic{Pos: prog.Fset.Position(n.Pos()), Analyzer: a.Name(), Message: fmt.Sprintf(format, args...)})
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					a.checkFields(pkg, n.Recv, "receiver", report)
				}
				a.checkFields(pkg, n.Type.Params, "parameter", report)
				a.checkFields(pkg, n.Type.Results, "result", report)
			case *ast.FuncLit:
				a.checkFields(pkg, n.Type.Params, "parameter", report)
				a.checkFields(pkg, n.Type.Results, "result", report)
			case *ast.ForStmt:
				a.checkLoopGoroutines(pkg, n.Body, report)
			case *ast.RangeStmt:
				a.checkLoopGoroutines(pkg, n.Body, report)
			}
			return true
		})
	}
	return diags
}

// solve runs the module-wide held-lock walk and cycle detection once per
// Program, caching the diagnostics on the shared concurrency facts.
func (a *LockOrder) solve(prog *Program, cf *concFacts) {
	// Serialized by the shared facts mutex: with per-package Check calls
	// fanned out in parallel, the first two may race to solve.
	f := prog.Facts()
	f.mu.Lock()
	defer f.mu.Unlock()
	if cf.lockSolved {
		return
	}
	cf.lockSolved = true

	w := &lockWalker{prog: prog, cf: cf, edges: map[[2]*types.Var]token.Pos{}}
	for _, pkg := range prog.Packages {
		w.info = pkg.Info
		for _, b := range prog.Facts().Bodies(pkg) {
			w.walkStmt(b.Block, map[*types.Var]token.Pos{})
		}
	}
	cf.lockDiags = append(cf.lockDiags, a.cycleDiags(prog, cf, w.edges)...)
}

// cycleDiags finds strongly-connected components of the acquisition graph
// and reports each once, at its earliest edge.
func (a *LockOrder) cycleDiags(prog *Program, cf *concFacts, edges map[[2]*types.Var]token.Pos) []Diagnostic {
	nodes := map[*types.Var]bool{}
	succ := map[*types.Var][]*types.Var{}
	for e := range edges {
		nodes[e[0]], nodes[e[1]] = true, true
		succ[e[0]] = append(succ[e[0]], e[1])
	}
	order := cf.sortedLockVars(nodes)
	for _, vs := range succ {
		sort.Slice(vs, func(i, j int) bool { return cf.lockName(vs[i]) < cf.lockName(vs[j]) })
	}

	// Tarjan SCC, deterministic because roots and successors are sorted.
	index := map[*types.Var]int{}
	low := map[*types.Var]int{}
	onStack := map[*types.Var]bool{}
	var stack []*types.Var
	var sccs [][]*types.Var
	next := 0
	var strongconnect func(v *types.Var)
	strongconnect = func(v *types.Var) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, u := range succ[v] {
			if _, seen := index[u]; !seen {
				strongconnect(u)
				if low[u] < low[v] {
					low[v] = low[u]
				}
			} else if onStack[u] && index[u] < low[v] {
				low[v] = index[u]
			}
		}
		if low[v] == index[v] {
			var scc []*types.Var
			for {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[u] = false
				scc = append(scc, u)
				if u == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}

	var diags []Diagnostic
	for _, scc := range sccs {
		inSCC := map[*types.Var]bool{}
		for _, v := range scc {
			inSCC[v] = true
		}
		if len(scc) == 1 && !hasEdge(edges, scc[0], scc[0]) {
			continue
		}
		// Earliest edge inside the component anchors the report.
		var at token.Position
		var from, to *types.Var
		for e, pos := range edges {
			if !inSCC[e[0]] || !inSCC[e[1]] {
				continue
			}
			p := prog.Fset.Position(pos)
			if from == nil || p.Filename < at.Filename || (p.Filename == at.Filename && p.Offset < at.Offset) {
				at, from, to = p, e[0], e[1]
			}
		}
		names := make([]string, 0, len(scc))
		for _, v := range cf.sortedLockVars(inSCC) {
			names = append(names, cf.lockName(v))
		}
		diags = append(diags, Diagnostic{Pos: at, Analyzer: a.Name(),
			Message: fmt.Sprintf("lock-order cycle among %v (edge %s -> %s here); potential deadlock — pick one acquisition order",
				names, cf.lockName(from), cf.lockName(to))})
	}
	return diags
}

func hasEdge(edges map[[2]*types.Var]token.Pos, a, b *types.Var) bool {
	_, ok := edges[[2]*types.Var{a, b}]
	return ok
}

// lockWalker tracks the held-lock set through one top-level body,
// emitting acquisition-graph edges and held-across findings into the
// shared caches.
type lockWalker struct {
	prog  *Program
	cf    *concFacts
	info  *types.Info
	edges map[[2]*types.Var]token.Pos
}

func (w *lockWalker) report(n ast.Node, format string, args ...any) {
	w.cf.lockDiags = append(w.cf.lockDiags, Diagnostic{
		Pos: w.prog.Fset.Position(n.Pos()), Analyzer: "lockorder", Message: fmt.Sprintf(format, args...)})
}

func copyHeld(held map[*types.Var]token.Pos) map[*types.Var]token.Pos {
	out := make(map[*types.Var]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// heldNames renders the held set for messages, sorted for determinism.
func (w *lockWalker) heldNames(held map[*types.Var]token.Pos) []string {
	set := map[*types.Var]bool{}
	for v := range held {
		set[v] = true
	}
	var names []string
	for _, v := range w.cf.sortedLockVars(set) {
		names = append(names, w.cf.lockName(v))
	}
	return names
}

// walkStmt threads the held set through a statement, returning the set
// live after it. Branch bodies are explored with copies; the sequential
// spine (lock ... unlock in one block) is tracked exactly.
func (w *lockWalker) walkStmt(s ast.Stmt, held map[*types.Var]token.Pos) map[*types.Var]token.Pos {
	switch s := s.(type) {
	case nil:
		return held
	case *ast.BlockStmt:
		for _, st := range s.List {
			held = w.walkStmt(st, held)
		}
		return held
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	case *ast.IfStmt:
		held = w.walkStmt(s.Init, held)
		w.scanExpr(s.Cond, held)
		w.walkStmt(s.Body, copyHeld(held))
		w.walkStmt(s.Else, copyHeld(held))
		return held
	case *ast.ForStmt:
		held = w.walkStmt(s.Init, held)
		w.scanExpr(s.Cond, held)
		inner := w.walkStmt(s.Body, copyHeld(held))
		w.walkStmt(s.Post, inner)
		return held
	case *ast.RangeStmt:
		w.scanExpr(s.X, held)
		if isChanType(w.info, s.X) && len(held) > 0 {
			w.report(s, "lock %v held across range over channel %s; the receive can block every other holder",
				w.heldNames(held), exprString(s.X))
		}
		w.walkStmt(s.Body, copyHeld(held))
		return held
	case *ast.SwitchStmt:
		held = w.walkStmt(s.Init, held)
		w.scanExpr(s.Tag, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				h := copyHeld(held)
				for _, e := range cc.List {
					w.scanExpr(e, h)
				}
				for _, st := range cc.Body {
					h = w.walkStmt(st, h)
				}
			}
		}
		return held
	case *ast.TypeSwitchStmt:
		held = w.walkStmt(s.Init, held)
		w.walkStmt(s.Assign, copyHeld(held))
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				h := copyHeld(held)
				for _, st := range cc.Body {
					h = w.walkStmt(st, h)
				}
			}
		}
		return held
	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(s) {
			w.report(s, "lock %v held across blocking select; cancellation or a slow peer stalls every other holder",
				w.heldNames(held))
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				// The comm ops themselves are covered by the select-level
				// report; only the case bodies are walked.
				h := copyHeld(held)
				for _, st := range cc.Body {
					h = w.walkStmt(st, h)
				}
			}
		}
		return held
	case *ast.GoStmt:
		// The goroutine starts with nothing held; its args are evaluated
		// here with the current set.
		for _, arg := range s.Call.Args {
			w.scanExpr(arg, held)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.walkStmt(lit.Body, map[*types.Var]token.Pos{})
		}
		return held
	case *ast.DeferStmt:
		// Deferred unlocks release at return, not here: the held set is
		// the truth for the rest of the body. Deferred closures run with
		// an unknowable future set; walk them with a copy for their own
		// internal ordering only.
		if fn := calleeFunc(w.info, s.Call); fn != nil {
			if _, method := syncPrimitiveMethod(fn); method == "Unlock" || method == "RUnlock" {
				return held
			}
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.walkStmt(lit.Body, copyHeld(held))
			return held
		}
		for _, arg := range s.Call.Args {
			w.scanExpr(arg, held)
		}
		return held
	case *ast.SendStmt:
		w.scanExpr(s.Value, held)
		if len(held) > 0 && !w.cf.bufferedAnywhere[chainObject(w.info, s.Chan)] {
			w.report(s, "lock %v held across send on unbuffered channel %s; a slow receiver stalls every other holder",
				w.heldNames(held), exprString(s.Chan))
		}
		return held
	case *ast.ExprStmt:
		return w.scanExpr(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			held = w.scanExpr(e, held)
		}
		for _, e := range s.Lhs {
			held = w.scanExpr(e, held)
		}
		return held
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			held = w.scanExpr(e, held)
		}
		return held
	case *ast.DeclStmt, *ast.IncDecStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.scanExpr(e, held)
				return false
			}
			return true
		})
		return held
	default:
		return held
	}
}

// scanExpr visits the calls and channel ops of one expression in
// evaluation order (left to right is close enough for lock tracking) and
// updates the held set for Lock/Unlock calls.
func (w *lockWalker) scanExpr(e ast.Expr, held map[*types.Var]token.Pos) map[*types.Var]token.Pos {
	if e == nil {
		return held
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal passed as a value may run while the caller's locks
			// are held (s.withLock(func(){...})); judge it with a copy.
			w.walkStmt(n.Body, copyHeld(held))
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && len(held) > 0 && !isDoneCall(w.info, n.X) {
				obj := chainObject(w.info, n.X)
				if !w.cf.closedAnywhere[obj] && !w.cf.bufferedAnywhere[obj] {
					w.report(n, "lock %v held across receive from %s; a silent sender stalls every other holder",
						w.heldNames(held), exprString(n.X))
				}
			}
		case *ast.CallExpr:
			w.call(n, held)
		}
		return true
	})
	return held
}

// call handles one call expression against the held set.
func (w *lockWalker) call(call *ast.CallExpr, held map[*types.Var]token.Pos) {
	fn := calleeFunc(w.info, call)
	if fn == nil {
		return
	}
	cf := w.cf
	if kind, method := syncPrimitiveMethod(fn); kind != "" {
		switch {
		case method == "Lock" || method == "RLock":
			v := lockVarOf(w.info, call)
			if v == nil {
				return
			}
			if _, already := held[v]; already {
				w.report(call, "%s acquired while already held; self-deadlock (RWMutex read locks included: a writer between them deadlocks)",
					cf.lockName(v))
				return
			}
			for h := range held {
				if graphableLock(h) && graphableLock(v) {
					k := [2]*types.Var{h, v}
					if _, ok := w.edges[k]; !ok {
						w.edges[k] = call.Pos()
					}
				}
			}
			held[v] = call.Pos()
		case method == "Unlock" || method == "RUnlock":
			if v := lockVarOf(w.info, call); v != nil {
				delete(held, v)
			}
		case kind == "Cond" && method == "Wait":
			// Wait releases the cond's one lock; holding a second lock
			// across it is the deadlock.
			if len(held) > 1 {
				w.report(call, "sync.Cond.Wait while holding %v; Wait only releases the cond's own lock",
					w.heldNames(held))
			}
		case kind == "WaitGroup" && method == "Wait":
			if len(held) > 0 {
				w.report(call, "lock %v held across WaitGroup.Wait; workers needing the lock can never finish",
					w.heldNames(held))
			}
		}
		return
	}

	fi := cf.facts.FuncOf[fn]
	if fi == nil {
		if isHTTPRoundTrip(fn) && len(held) > 0 {
			w.report(call, "lock %v held across http.%s round-trip", w.heldNames(held), fn.Name())
		}
		return
	}
	// Expand the callee's acquisition summary: a held lock the callee
	// re-acquires is a self-deadlock through the call; everything else it
	// acquires inherits edges from the held set.
	deadlocked := false
	for v := range cf.acquires[fn] {
		if _, already := held[v]; already {
			w.report(call, "calls %s while holding %s, which it acquires again; self-deadlock through the call",
				moduleFuncName(fn), cf.lockName(v))
			deadlocked = true
			continue
		}
		for h := range held {
			if graphableLock(h) && graphableLock(v) {
				k := [2]*types.Var{h, v}
				if _, ok := w.edges[k]; !ok {
					w.edges[k] = call.Pos()
				}
			}
		}
	}
	if !deadlocked && len(held) > 0 && cf.blocking[fn] {
		w.report(call, "lock %v held across call to %s, which may block", w.heldNames(held), moduleFuncName(fn))
	}
}

// checkFields flags receiver/parameter/result fields whose non-pointer
// type contains a sync primitive — two holders of a copied lock guard
// nothing.
func (a *LockOrder) checkFields(pkg *Package, fl *ast.FieldList, kind string, report func(ast.Node, string, ...any)) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		tv, ok := pkg.Info.Types[field.Type]
		if !ok {
			continue
		}
		if lock := lockIn(tv.Type, 0); lock != "" {
			report(field, "%s passes %s by value, copying its %s; use a pointer", kind, types.TypeString(tv.Type, types.RelativeTo(pkg.Types)), lock)
		}
	}
}

// lockIn returns the name of a sync primitive reachable by value inside t
// ("" if none). Pointers stop the walk: sharing a pointer is the fix.
func lockIn(t types.Type, depth int) string {
	if depth > 8 {
		return ""
	}
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond":
				return "sync." + obj.Name()
			}
		}
		return lockIn(t.Underlying(), depth+1)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if l := lockIn(t.Field(i).Type(), depth+1); l != "" {
				return l
			}
		}
	case *types.Array:
		return lockIn(t.Elem(), depth+1)
	}
	return ""
}

// checkLoopGoroutines flags `go func(){...}()` launched inside a loop
// whose body assigns to variables captured from the enclosing function
// without any locking in the goroutine body — the fan-out data race.
func (a *LockOrder) checkLoopGoroutines(pkg *Package, loopBody *ast.BlockStmt, report func(ast.Node, string, ...any)) {
	ast.Inspect(loopBody, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		if callsLock(pkg.Info, lit.Body) {
			return true
		}
		ast.Inspect(lit.Body, func(bn ast.Node) bool {
			as, ok := bn.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pkg.Info.Uses[id] // Defs means := — a new, local var
				if obj == nil {
					continue
				}
				if _, isVar := obj.(*types.Var); !isVar {
					continue
				}
				// Captured: declared outside the closure.
				if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
					continue
				}
				report(as, "goroutine launched in a loop writes captured variable %q without locking; guard it with a mutex or use a channel", id.Name)
			}
			return true
		})
		return true
	})
}

// callsLock reports whether the block calls any method named Lock or
// RLock.
func callsLock(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(info, call); fn != nil && (fn.Name() == "Lock" || fn.Name() == "RLock") {
			found = true
		}
		return !found
	})
	return found
}
