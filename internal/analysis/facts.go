package analysis

import (
	"go/ast"
	"go/types"
	"sync"
)

// This file is the dataflow engine's shared substrate. A loaded Program
// computes one Facts value on demand — a module-wide function index, the
// static call graph over it, and the cross-package field-use relation —
// and every analyzer consumes those facts instead of re-walking the
// module. The interprocedural passes (taint, dimension) additionally
// cache their fixed-point results here, so the engine solves each
// whole-module analysis exactly once per run no matter how many packages
// Check is called on.

// FuncInfo is one declared function or method of the program, joined with
// the package it lives in and its body.
type FuncInfo struct {
	Fn   *types.Func
	Pkg  *Package
	Decl *ast.FuncDecl
}

// Body is one top-level function body: a declared function, or a function
// literal bound to a package-level variable. Nested literals are reached
// by walking the enclosing Block, so iterating a package's Bodies visits
// every statement of the package exactly once.
type Body struct {
	// Owner is the *ast.FuncDecl or package-level *ast.FuncLit.
	Owner ast.Node
	// Fn is the declared function object; nil for package-level literals.
	Fn    *types.Func
	Pkg   *Package
	Block *ast.BlockStmt
}

// Facts is the shared state the analyzers build on: the function index,
// the call graph, and the field-use relation, computed once per Program.
type Facts struct {
	prog *Program

	// Funcs lists every declared function with a body, in bottom-up call
	// graph order (callees before callers, cycles broken arbitrarily), so
	// summary-driven passes converge in one or two sweeps.
	Funcs []*FuncInfo
	// FuncOf resolves a types.Func back to its declaration.
	FuncOf map[*types.Func]*FuncInfo

	// Callees and Callers are the static call-graph edges between declared
	// functions of the module. Calls through function values and into
	// other modules have no edge; the value-flow passes treat those
	// callees conservatively instead.
	Callees map[*types.Func][]*types.Func
	Callers map[*types.Func][]*types.Func

	// FieldUses maps each struct field to the packages that read it via a
	// selector — the relation counterparity checks Metrics columns
	// against.
	FieldUses map[*types.Var]map[*Package]bool

	// NamedTypes lists every package-level named type of the module, in
	// package/source order — the set hotcall searches for concrete
	// implementations when it argues an interface call can devirtualize.
	NamedTypes []*types.Named

	bodies map[*Package][]Body

	// mu serializes the lazy module-wide solves below: with per-package
	// analyzer runs fanned out over a worker pool, the first Check calls
	// of one analyzer race to build its fixed point. Each getter
	// double-checks under the lock; after a layer is built it is
	// read-only and needs no further synchronization.
	mu sync.Mutex

	taint *taintFacts // solved lazily by the taint analyzer
	dims  *dimFacts   // solved lazily by the dimension analyzer
	conc  *concFacts  // solved lazily by the concurrency analyzers
	hotf  *hotFacts   // solved lazily by the PGO-driven analyzers
	bench *benchFacts // solved lazily by the benchparity analyzer
}

// Facts returns the program's shared analysis facts, building them on
// first use. Safe for concurrent use by the parallel analyzer driver.
func (p *Program) Facts() *Facts {
	p.factsMu.Lock()
	defer p.factsMu.Unlock()
	if p.facts == nil {
		p.facts = buildFacts(p)
	}
	return p.facts
}

// Bodies returns the top-level function bodies of pkg.
func (f *Facts) Bodies(pkg *Package) []Body {
	return f.bodies[pkg]
}

// PkgFuncs returns the declared functions of pkg in source order.
func (f *Facts) PkgFuncs(pkg *Package) []*FuncInfo {
	var out []*FuncInfo
	for _, fi := range f.Funcs {
		if fi.Pkg == pkg {
			out = append(out, fi)
		}
	}
	return out
}

func buildFacts(p *Program) *Facts {
	f := &Facts{
		prog:      p,
		FuncOf:    map[*types.Func]*FuncInfo{},
		Callees:   map[*types.Func][]*types.Func{},
		Callers:   map[*types.Func][]*types.Func{},
		FieldUses: map[*types.Var]map[*Package]bool{},
		bodies:    map[*Package][]Body{},
	}

	// Function index and top-level bodies, in source order.
	var declared []*FuncInfo
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					fn, ok := pkg.Info.Defs[d.Name].(*types.Func)
					if !ok {
						continue
					}
					fi := &FuncInfo{Fn: fn, Pkg: pkg, Decl: d}
					declared = append(declared, fi)
					f.FuncOf[fn] = fi
					f.bodies[pkg] = append(f.bodies[pkg], Body{Owner: d, Fn: fn, Pkg: pkg, Block: d.Body})
				case *ast.GenDecl:
					// var handler = func() {...} at package level: the body
					// belongs to no FuncDecl, so index it separately.
					for _, spec := range d.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, v := range vs.Values {
							for _, lit := range topFuncLits(v) {
								f.bodies[pkg] = append(f.bodies[pkg], Body{Owner: lit, Pkg: pkg, Block: lit.Body})
							}
						}
					}
				}
			}
		}
	}

	// Static call graph over the declared functions.
	edge := map[[2]*types.Func]bool{}
	for _, pkg := range p.Packages {
		for _, b := range f.bodies[pkg] {
			caller := b.Fn
			if caller == nil {
				continue
			}
			ast.Inspect(b.Block, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pkg.Info, call)
				if callee == nil || f.FuncOf[callee] == nil {
					return true
				}
				k := [2]*types.Func{caller, callee}
				if !edge[k] {
					edge[k] = true
					f.Callees[caller] = append(f.Callees[caller], callee)
					f.Callers[callee] = append(f.Callers[callee], caller)
				}
				return true
			})
		}
	}

	// Bottom-up ordering: postorder DFS over the callee edges.
	seen := map[*types.Func]bool{}
	var order []*FuncInfo
	var visit func(fi *FuncInfo)
	visit = func(fi *FuncInfo) {
		if seen[fi.Fn] {
			return
		}
		seen[fi.Fn] = true
		for _, callee := range f.Callees[fi.Fn] {
			visit(f.FuncOf[callee])
		}
		order = append(order, fi)
	}
	for _, fi := range declared {
		visit(fi)
	}
	f.Funcs = order

	// Package-level named types, for implements-style queries.
	for _, pkg := range p.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				f.NamedTypes = append(f.NamedTypes, named)
			}
		}
	}

	// Field-use relation: which packages select which struct fields.
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s, ok := pkg.Info.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					return true
				}
				fld, ok := s.Obj().(*types.Var)
				if !ok {
					return true
				}
				if f.FieldUses[fld] == nil {
					f.FieldUses[fld] = map[*Package]bool{}
				}
				f.FieldUses[fld][pkg] = true
				return true
			})
		}
	}
	return f
}

// topFuncLits returns the outermost function literals of an expression
// (literals nested inside another literal's body are reached by walking
// that body).
func topFuncLits(e ast.Expr) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
			return false
		}
		return true
	})
	return lits
}
