package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ErrDrop flags silently dropped error returns — the bug class behind the
// forEachJob deadlock fixed in PR 1, where worker errors vanished and the
// producer hung. Three shapes are reported:
//
//   - a call whose results include an error used as a bare statement
//   - `defer x.Close()` / Flush / Sync, whose error disappears with the
//     frame (fatal on write paths: a failed flush means a truncated file
//     that nobody hears about)
//   - `go f()` where f returns an error nobody can receive
//
// An explicit `_ = f()` is a visible, reviewable drop and stays legal.
// Well-known infallible or best-effort sinks (fmt printing to
// stdout/stderr, strings.Builder, bytes.Buffer) are excluded.
type ErrDrop struct{}

func (*ErrDrop) Name() string { return "errdrop" }
func (*ErrDrop) Doc() string {
	return "flag unchecked error returns, deferred Close/Flush drops, and goroutines losing errors"
}

// droppyDefers are the method names whose deferred error loss is worth
// reporting; anything else deferred with an error result is too noisy to
// police.
var droppyDefers = map[string]bool{"Close": true, "Flush": true, "Sync": true}

func (a *ErrDrop) Check(prog *Program, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	report := func(n ast.Node, fix *SuggestedFix, format string, args ...any) {
		diags = append(diags, Diagnostic{Pos: prog.Fset.Position(n.Pos()), Analyzer: a.Name(), Message: fmt.Sprintf(format, args...), Fix: fix})
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok || !returnsError(pkg.Info, call) || a.excluded(pkg.Info, call) {
					return true
				}
				// Only single-error results can become `_ = call`; a
				// multi-value tuple needs a hand-written receiver list.
				var fix *SuggestedFix
				if tv, ok := pkg.Info.Types[call]; ok {
					if _, isTuple := tv.Type.(*types.Tuple); !isTuple {
						fix = &SuggestedFix{
							Message: "make the drop explicit with `_ =` and a review marker",
							Edits: []TextEdit{
								{Pos: n.Pos(), End: n.Pos(), NewText: "_ = "},
								{Pos: n.End(), End: n.End(), NewText: " // TODO(xeonlint): handle this error"},
							},
						}
					}
				}
				report(n, fix, "%s returns an error that is dropped; handle it or assign to _ explicitly", callName(pkg.Info, call))
			case *ast.DeferStmt:
				fn := calleeFunc(pkg.Info, n.Call)
				if fn == nil || !droppyDefers[fn.Name()] || !returnsError(pkg.Info, n.Call) {
					return true
				}
				report(n, nil, "deferred %s discards its error; wrap it in a func that checks, or //xeonlint:ignore with a reason",
					callName(pkg.Info, n.Call))
			case *ast.GoStmt:
				if !returnsError(pkg.Info, n.Call) || a.excluded(pkg.Info, n.Call) {
					return true
				}
				report(n, nil, "go %s discards the goroutine's error; collect it via a channel or errgroup-style join",
					callName(pkg.Info, n.Call))
			}
			return true
		})
	}
	return diags
}

// excluded reports whether the dropped error is one of the sanctioned
// best-effort sinks.
func (a *ErrDrop) excluded(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	// fmt.Print* write to stdout; Fprint* when aimed at os.Stdout/os.Stderr
	// (diagnostics, not data) or at an infallible in-memory builder.
	if fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			return len(call.Args) > 0 &&
				(isStdStream(info, call.Args[0]) || isInfallibleWriter(info.Types[call.Args[0]].Type))
		}
	}
	// strings.Builder and bytes.Buffer writes cannot fail.
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return isInfallibleWriter(recv.Type())
	}
	return false
}

// isInfallibleWriter reports whether t is (a pointer to) strings.Builder
// or bytes.Buffer, whose Write methods never return a non-nil error.
func isInfallibleWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return full == "strings.Builder" || full == "bytes.Buffer"
}

// isStdStream reports whether e is os.Stdout or os.Stderr.
func isStdStream(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
		return false
	}
	return obj.Name() == "Stdout" || obj.Name() == "Stderr"
}

// callName renders the called expression for messages.
func callName(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name + "()"
	case *ast.SelectorExpr:
		return exprString(fun.X) + "." + fun.Sel.Name + "()"
	default:
		return "call"
	}
}
