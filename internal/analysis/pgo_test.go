package analysis_test

import (
	"bytes"
	"compress/gzip"
	"path/filepath"
	"strings"
	"testing"

	"xeonomp/internal/analysis"
)

// Minimal protobuf encoder for synthesizing pprof profiles in tests.
// Mirrors the subset pgo.go reads: sample_type, sample, location,
// function, string_table, duration_nanos.

type protoBuf struct{ bytes.Buffer }

func (b *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		b.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	b.WriteByte(byte(v))
}

func (b *protoBuf) uintField(tag int, v uint64) {
	b.varint(uint64(tag << 3)) // wire type 0
	b.varint(v)
}

func (b *protoBuf) bytesField(tag int, data []byte) {
	b.varint(uint64(tag<<3 | 2))
	b.varint(uint64(len(data)))
	b.Write(data)
}

func encValueType(typ, unit int) []byte {
	var b protoBuf
	b.uintField(1, uint64(typ))
	b.uintField(2, uint64(unit))
	return b.Bytes()
}

// encSample encodes a sample; packedLocs selects between the packed and
// one-scalar-per-entry encodings of the repeated location_id field, both
// of which real profiles use.
func encSample(locs []uint64, vals []int64, packedLocs bool) []byte {
	var b protoBuf
	if packedLocs {
		var p protoBuf
		for _, l := range locs {
			p.varint(l)
		}
		b.bytesField(1, p.Bytes())
	} else {
		for _, l := range locs {
			b.uintField(1, l)
		}
	}
	var v protoBuf
	for _, val := range vals {
		v.varint(uint64(val))
	}
	b.bytesField(2, v.Bytes())
	return b.Bytes()
}

// encLocation encodes a location whose Line entries reference fnIDs,
// innermost first.
func encLocation(id uint64, fnIDs ...uint64) []byte {
	var b protoBuf
	b.uintField(1, id)
	for _, fid := range fnIDs {
		var line protoBuf
		line.uintField(1, fid)
		b.bytesField(4, line.Bytes())
	}
	return b.Bytes()
}

func encFunction(id uint64, nameIdx int) []byte {
	var b protoBuf
	b.uintField(1, id)
	b.uintField(2, uint64(nameIdx))
	return b.Bytes()
}

type testProfile struct {
	strings    []string
	valueTypes [][2]int // string indices: {type, unit}
	functions  map[uint64]int
	locations  map[uint64][]uint64
	samples    []struct {
		locs   []uint64
		vals   []int64
		packed bool
	}
	durationNs uint64
}

func (p *testProfile) encode() []byte {
	var b protoBuf
	for _, vt := range p.valueTypes {
		b.bytesField(1, encValueType(vt[0], vt[1]))
	}
	for _, s := range p.samples {
		b.bytesField(2, encSample(s.locs, s.vals, s.packed))
	}
	for id, fns := range p.locations {
		b.bytesField(4, encLocation(id, fns...))
	}
	for id, name := range p.functions {
		b.bytesField(5, encFunction(id, name))
	}
	for _, s := range p.strings {
		b.bytesField(6, []byte(s))
	}
	if p.durationNs != 0 {
		b.uintField(10, p.durationNs)
	}
	return b.Bytes()
}

func gzipped(data []byte) []byte {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(data)
	zw.Close()
	return buf.Bytes()
}

// syntheticProfile builds the same shape as testdata/pgo/small.pgo: two
// value columns (samples/count, cpu/nanoseconds), a dominant Kernel, a
// folded closure sample, two sub-threshold functions, and a ghost name
// absent from any source.
func syntheticProfile() *testProfile {
	return &testProfile{
		strings: []string{
			"", "samples", "count", "cpu", "nanoseconds",
			"hotpgo.Kernel", "hotpgo.helper", "hotpgo.Cold",
			"hotpgo.ghost", "hotpgo.Kernel.func1",
		},
		valueTypes: [][2]int{{1, 2}, {3, 4}},
		functions:  map[uint64]int{1: 5, 2: 6, 3: 7, 4: 8, 5: 9},
		locations: map[uint64][]uint64{
			1: {1}, 2: {2}, 3: {3}, 4: {4}, 5: {5},
		},
		samples: []struct {
			locs   []uint64
			vals   []int64
			packed bool
		}{
			{locs: []uint64{1}, vals: []int64{90, 9000}, packed: true},
			{locs: []uint64{2, 1}, vals: []int64{1, 50}, packed: false},
			{locs: []uint64{3}, vals: []int64{1, 50}, packed: true},
			{locs: []uint64{4}, vals: []int64{9, 900}, packed: true},
			{locs: []uint64{5, 1}, vals: []int64{1, 100}, packed: true},
		},
		durationNs: 2_000_000_000,
	}
}

func TestPGOParseSynthetic(t *testing.T) {
	raw := syntheticProfile().encode()
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"raw", raw},
		{"gzipped", gzipped(raw)},
	} {
		p, err := analysis.ParsePGO(tc.data)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(p.SampleTypes) != 2 || p.SampleTypes[1].Type != "cpu" || p.SampleTypes[1].Unit != "nanoseconds" {
			t.Errorf("%s: sample types = %+v", tc.name, p.SampleTypes)
		}
		if p.ValueIndex != 1 {
			t.Errorf("%s: value index = %d, want 1 (the cpu column)", tc.name, p.ValueIndex)
		}
		if p.Total != 10100 {
			t.Errorf("%s: total = %d, want 10100", tc.name, p.Total)
		}
		if p.DurationNs != 2_000_000_000 {
			t.Errorf("%s: duration = %d", tc.name, p.DurationNs)
		}
		if got := p.Flat["hotpgo.Kernel"]; got != 9000 {
			t.Errorf("%s: Kernel flat = %d, want 9000", tc.name, got)
		}
		if got := p.Flat["hotpgo.Kernel.func1"]; got != 100 {
			t.Errorf("%s: Kernel.func1 flat = %d, want 100", tc.name, got)
		}
		// Kernel is on both its own sample and helper's stack: cum adds.
		if got := p.Cum["hotpgo.Kernel"]; got != 9150 {
			t.Errorf("%s: Kernel cum = %d, want 9150", tc.name, got)
		}
		if got := p.Flat["hotpgo.helper"]; got != 50 {
			t.Errorf("%s: helper flat = %d, want 50", tc.name, got)
		}
		if share := p.FlatShare("hotpgo.ghost"); share < 0.089 || share > 0.090 {
			t.Errorf("%s: ghost flat share = %v, want ~0.0891", tc.name, share)
		}
	}
}

// TestPGOInlinedLeaf pins flat attribution for a location carrying an
// inlined call chain: Line[0] is the innermost frame and gets the flat
// credit; the caller it was inlined into gets only cum.
func TestPGOInlinedLeaf(t *testing.T) {
	p := syntheticProfile()
	p.locations[6] = []uint64{2, 1} // helper inlined into Kernel
	p.samples = append(p.samples, struct {
		locs   []uint64
		vals   []int64
		packed bool
	}{locs: []uint64{6}, vals: []int64{1, 40}, packed: true})
	prof, err := analysis.ParsePGO(p.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got := prof.Flat["hotpgo.helper"]; got != 90 {
		t.Errorf("helper flat = %d, want 90 (50 direct + 40 inlined leaf)", got)
	}
	if got := prof.Flat["hotpgo.Kernel"]; got != 9000 {
		t.Errorf("Kernel flat = %d, want 9000 (inlined sample is cum-only)", got)
	}
	if got := prof.Cum["hotpgo.Kernel"]; got != 9190 {
		t.Errorf("Kernel cum = %d, want 9190", got)
	}
}

// TestPGOCorrupt pins the error contract: corrupt and truncated inputs
// fail with a descriptive error, never a panic.
func TestPGOCorrupt(t *testing.T) {
	raw := syntheticProfile().encode()
	gz := gzipped(raw)

	bad := map[string][]byte{
		"empty gzip header":   {0x1f, 0x8b},
		"truncated gzip body": gz[:len(gz)/2],
		"garbage":             []byte("not a profile at all"),
		"truncated message":   raw[:len(raw)-3],
	}
	// A length-delimited field whose length runs past the buffer.
	var over protoBuf
	over.varint(uint64(2<<3 | 2))
	over.varint(1 << 20)
	bad["overlong length"] = over.Bytes()
	// A string index beyond the table.
	short := syntheticProfile()
	short.strings = short.strings[:3]
	bad["string index out of range"] = short.encode()
	// A sample referencing a location that was never defined.
	ghost := syntheticProfile()
	ghost.samples[0].locs = []uint64{99}
	bad["unknown location"] = ghost.encode()

	for name, data := range bad {
		p, err := analysis.ParsePGO(data)
		if err == nil {
			t.Errorf("%s: parsed without error into %+v", name, p)
			continue
		}
		if !strings.Contains(err.Error(), "malformed") && !strings.Contains(err.Error(), "out of range") {
			t.Errorf("%s: error %q lacks a malformed/out-of-range marker", name, err)
		}
	}
}

// TestPGOFixtureHotSet is the golden test for hot-set extraction over
// the checked-in fixture profile: deterministic membership, order,
// reasons, and staleness reporting — run twice to pin determinism.
func TestPGOFixtureHotSet(t *testing.T) {
	prof, err := analysis.ReadPGO(filepath.Join("testdata", "pgo", "small.pgo"))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		prog, _ := loadFixture(t, "hotpgo")
		prog.PGO = prof

		hot := prog.HotFunctions()
		if len(hot) != 2 {
			t.Fatalf("round %d: hot set has %d members, want 2: %+v", round, len(hot), hot)
		}
		if hot[0].Name != "hotpgo.Kernel" {
			t.Errorf("round %d: hot[0] = %s, want hotpgo.Kernel", round, hot[0].Name)
		}
		if hot[0].Flat < 0.90 || hot[0].Flat > 0.91 {
			t.Errorf("round %d: Kernel flat share = %v, want ~0.9010 (closure folded in)", round, hot[0].Flat)
		}
		if !strings.Contains(hot[0].Reason, "flat in profile") {
			t.Errorf("round %d: Kernel reason = %q", round, hot[0].Reason)
		}
		if hot[1].Name != "hotpgo.helper" {
			t.Errorf("round %d: hot[1] = %s, want hotpgo.helper", round, hot[1].Name)
		}
		if want := "called in a hot loop of hotpgo.Kernel"; hot[1].Reason != want {
			t.Errorf("round %d: helper reason = %q, want %q", round, hot[1].Reason, want)
		}
		for _, h := range hot {
			if h.Fn == nil {
				t.Errorf("round %d: hot function %s has no types.Func", round, h.Name)
			}
		}

		unresolved := prog.UnresolvedHotNames()
		if len(unresolved) != 1 || unresolved[0] != "hotpgo.ghost" {
			t.Errorf("round %d: unresolved = %v, want [hotpgo.ghost]", round, unresolved)
		}
	}
}

// TestPGODefaultProfile asserts the checked-in default profile decodes
// and resolves onto the real module: non-empty hot set, every member a
// declared module function — the freshness contract CI enforces.
func TestPGODefaultProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	prof, err := analysis.ReadPGO(filepath.Join("..", "..", "cmd", "xeonchar", "default.pgo"))
	if err != nil {
		t.Fatal(err)
	}
	if prof.Total <= 0 || len(prof.Flat) == 0 {
		t.Fatalf("default profile decoded empty: total=%d flat=%d", prof.Total, len(prof.Flat))
	}
	prog, err := (&analysis.Loader{Root: filepath.Join("..", "..")}).Load()
	if err != nil {
		t.Fatal(err)
	}
	prog.PGO = prof
	hot := prog.HotFunctions()
	if len(hot) == 0 {
		t.Fatal("default profile resolves to an empty hot set")
	}
	pkgs := map[string]bool{}
	for _, h := range hot {
		if h.Fn == nil || h.Fn.Pkg() == nil {
			t.Errorf("hot function %s did not resolve to a module function", h.Name)
			continue
		}
		pkgs[h.Fn.Pkg().Path()] = true
	}
	// The profile must land on the cycle engine the benchmarks drive.
	for _, want := range []string{"xeonomp/internal/cpu", "xeonomp/internal/machine"} {
		if !pkgs[want] {
			t.Errorf("hot set misses package %s; profile is stale", want)
		}
	}
	if unresolved := prog.UnresolvedHotNames(); len(unresolved) != 0 {
		t.Errorf("default profile names missing from source (stale profile): %v", unresolved)
	}
}
