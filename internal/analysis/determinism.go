package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// wallClockAllowlist names the packages (by path suffix) allowed to read
// the wall clock: the progress/ETA reporter, which exists to report real
// elapsed time, and the functional NAS harness, which times real
// computation. Everything else in the tree is simulation or export code,
// where wall-clock reads are nondeterminism leaking into results.
var wallClockAllowlist = []string{
	"internal/journal",
	"cmd/nasrun",
}

// Determinism guards the bit-stable-output promise: simulation and export
// packages must not read the wall clock, must not draw from the global
// (unseeded) math/rand source, and must not let map-iteration order reach
// ordered output (slices that stay unsorted, print calls, table/artifact
// appends, writer or encoder calls).
type Determinism struct{}

func (*Determinism) Name() string { return "determinism" }
func (*Determinism) Doc() string {
	return "forbid wall-clock reads, unseeded math/rand, and map-iteration order feeding ordered output"
}

// wallClockFuncs are the time package entry points that observe the wall
// clock (referencing one as a value counts too, so `now := time.Now`
// cannot hide a read).
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// globalRandFuncs are the math/rand (and v2) package-level draws backed by
// the shared source. Constructing an explicitly seeded generator
// (rand.New(rand.NewSource(seed))) stays legal.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint32N": true, "Uint64N": true,
	"Uint": true, "UintN": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

func (a *Determinism) Check(prog *Program, pkg *Package) []Diagnostic {
	for _, allowed := range wallClockAllowlist {
		if pathHasSuffix(pkg.Path, allowed) {
			return nil
		}
	}
	var diags []Diagnostic
	report := func(n ast.Node, format string, args ...any) {
		diags = append(diags, Diagnostic{prog.Fset.Position(n.Pos()), a.Name(), fmt.Sprintf(format, args...)})
	}

	for _, f := range pkg.Files {
		// Wall clock and global rand: catch any use of the named objects,
		// including value references.
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pkg.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					report(id, "time.%s reads the wall clock; simulation/export code must be deterministic (allowlist: %v)",
						fn.Name(), wallClockAllowlist)
				}
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[fn.Name()] && fn.Type().(*types.Signature).Recv() == nil {
					report(id, "rand.%s draws from the global math/rand source; use a seeded rand.New(rand.NewSource(seed))",
						fn.Name())
				}
			}
			return true
		})

		// Map-iteration order feeding ordered output.
		funcBodies(f, func(owner ast.Node, body *ast.BlockStmt) {
			ast.Inspect(body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pkg.Info.Types[rng.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				a.checkMapRange(prog, pkg, body, rng, report)
				return true
			})
		})
	}
	return diags
}

// checkMapRange flags ordered-output operations inside a range-over-map
// body. funcBody is the whole body of the enclosing function, searched for
// a later sort call that would launder the order.
func (a *Determinism) checkMapRange(prog *Program, pkg *Package, funcBody *ast.BlockStmt, rng *ast.RangeStmt, report func(ast.Node, string, ...any)) {
	// Method names whose call inside the loop emits or accumulates ordered
	// output. The Add* family is only ordered on the row/cell builders in
	// internal/report and internal/golden — counters.Set.Add is a
	// commutative increment and must stay legal — so those match only when
	// the receiver's type lives in one of the ordered-output packages.
	// Encoders and writers are ordered wherever they appear.
	orderedAppends := map[string]bool{
		"Add": true, "AddF": true, "AddTol": true, "AddUnit": true,
	}
	orderedWriters := map[string]bool{
		"Encode": true, "Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(pkg.Info, n); fn != nil {
				if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && isPrintName(fn.Name()) {
					report(n, "fmt.%s inside range over map emits in nondeterministic order; iterate sorted keys", fn.Name())
					return true
				}
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok && fn.Type().(*types.Signature).Recv() != nil {
					ordered := orderedWriters[fn.Name()] ||
						(orderedAppends[fn.Name()] && recvInOrderedPackage(fn))
					if ordered {
						report(n, "%s.%s inside range over map appends in nondeterministic order; iterate sorted keys",
							exprString(sel.X), fn.Name())
						return true
					}
				}
			}
		case *ast.AssignStmt:
			// v = append(v, ...) growing a slice declared outside the loop.
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "append" {
					continue
				}
				if _, builtin := pkg.Info.Uses[id].(*types.Builtin); !builtin {
					continue
				}
				obj := assignedObj(pkg.Info, n.Lhs[i])
				if obj == nil {
					continue
				}
				// Declared inside the loop: order cannot escape.
				if obj.Pos() >= rng.Body.Pos() && obj.Pos() <= rng.Body.End() {
					continue
				}
				// Sorted after the loop in the same function: order is
				// laundered before anyone observes it.
				if sortedAfter(pkg.Info, funcBody, rng, obj) {
					continue
				}
				report(n, "append to %q under range over map collects in nondeterministic order; sort the keys first or sort %q afterwards",
					obj.Name(), obj.Name())
			}
		}
		return true
	})
}

// orderedPackages are the package path suffixes whose Add* builder
// methods accumulate ordered rows/cells.
var orderedPackages = []string{"internal/report", "internal/golden"}

// recvInOrderedPackage reports whether a method's receiver type is
// declared in one of the ordered-output packages.
func recvInOrderedPackage(fn *types.Func) bool {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	for _, p := range orderedPackages {
		if pathHasSuffix(named.Obj().Pkg().Path(), p) {
			return true
		}
	}
	return false
}

// isPrintName reports whether a fmt function name writes output (Sprint*
// only formats, so it does not count).
func isPrintName(name string) bool {
	switch name {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
		return true
	}
	return false
}

// assignedObj resolves the variable object behind an assignment target
// identifier, or nil for anything more structured.
func assignedObj(info *types.Info, lhs ast.Expr) types.Object {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// sortedAfter reports whether obj is passed to a sort/slices call after
// the range statement within the enclosing function body — the
// collect-then-sort idiom.
func sortedAfter(info *types.Info, funcBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			used := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && info.Uses[id] == obj {
					used = true
				}
				return !used
			})
			if used {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// exprString renders a short receiver expression for messages.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	default:
		return "receiver"
	}
}
