package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// BenchParity closes the loop between the profile and the benchmark
// suite: every function the PGO profile marks hot must be reachable from
// some Benchmark* in the module, or carry a reasoned //xeonlint:ignore.
// A hot function no benchmark exercises is a function whose regressions
// BENCH_*.json snapshots cannot catch — the perf gate has a blind spot
// exactly where the profile says the time goes.
//
// Reachability is computed over the static call graph, seeded from
// Benchmark* functions in the module's _test.go files (parsed
// syntactically — the loader excludes test files from type checking).
// Method calls that the static graph cannot resolve extend the frontier
// to every module method of the same name, a safe overapproximation:
// benchparity should stay quiet when a benchmark plausibly covers a hot
// method through an interface.
type BenchParity struct{}

func (*BenchParity) Name() string { return "benchparity" }
func (*BenchParity) Doc() string {
	return "require every profile-hot function to be reachable from a Benchmark* in the module"
}

func (a *BenchParity) Check(prog *Program, pkg *Package) []Diagnostic {
	facts := prog.Facts()
	hf := facts.hotFor()
	bf := facts.benchFor()
	var diags []Diagnostic
	for _, fi := range facts.PkgFuncs(pkg) {
		reason, hot := hf.hot[fi.Fn]
		if !hot || bf.reached[fi.Fn] {
			continue
		}
		msg := fmt.Sprintf(
			"hot function %s (%s) is not reachable from any Benchmark* in the module; add a benchmark or a reasoned //xeonlint:ignore",
			shortFuncName(fi.Fn), reason)
		if bf.benchCount == 0 {
			msg = fmt.Sprintf(
				"hot function %s (%s) has no benchmark coverage: the module declares no Benchmark* functions",
				shortFuncName(fi.Fn), reason)
		}
		diags = append(diags, Diagnostic{
			Pos:      prog.Fset.Position(fi.Decl.Name.Pos()),
			Analyzer: a.Name(),
			Message:  msg,
		})
	}
	return diags
}

// benchFacts is the benchmark-reachability layer: the set of declared
// module functions transitively callable from a Benchmark*.
type benchFacts struct {
	reached    map[*types.Func]bool
	benchCount int
}

// benchFor builds the benchmark-reachability facts on first use. It is
// independent of hotFor — neither calls the other — so both can be built
// under the same Facts.mu without re-entry.
func (f *Facts) benchFor() *benchFacts {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.bench != nil {
		return f.bench
	}
	bf := &benchFacts{reached: map[*types.Func]bool{}}
	f.bench = bf

	// Index the module's declared functions for name-based seeding:
	// package dir → top-level function name → FuncInfo, and method name →
	// all module methods with that name (the dynamic-dispatch fallback).
	type dirFuncs map[string]*FuncInfo
	byDir := map[string]dirFuncs{}
	byPkgName := map[string]map[string]*FuncInfo{}
	methodsByName := map[string][]*types.Func{}
	for _, fi := range f.Funcs {
		if fi.Decl.Recv != nil {
			methodsByName[fi.Fn.Name()] = append(methodsByName[fi.Fn.Name()], fi.Fn)
			continue
		}
		dir := fi.Pkg.Dir
		if byDir[dir] == nil {
			byDir[dir] = dirFuncs{}
		}
		byDir[dir][fi.Fn.Name()] = fi
		pname := fi.Pkg.Types.Name()
		if byPkgName[pname] == nil {
			byPkgName[pname] = map[string]*FuncInfo{}
		}
		byPkgName[pname][fi.Fn.Name()] = fi
	}

	// Parse each package directory's _test.go files syntactically and
	// collect their top-level function declarations.
	type testFunc struct {
		decl *ast.FuncDecl
		dir  string
	}
	testFuncs := map[string]map[string]*testFunc{} // dir → name → decl
	fset := token.NewFileSet()
	for _, pkg := range f.prog.Packages {
		entries, err := os.ReadDir(pkg.Dir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			file, err := parser.ParseFile(fset, filepath.Join(pkg.Dir, e.Name()), nil, parser.SkipObjectResolution)
			if err != nil {
				continue // a broken test file is vet's problem, not ours
			}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv != nil || fd.Body == nil {
					continue
				}
				if testFuncs[pkg.Dir] == nil {
					testFuncs[pkg.Dir] = map[string]*testFunc{}
				}
				testFuncs[pkg.Dir][fd.Name.Name] = &testFunc{decl: fd, dir: pkg.Dir}
			}
		}
	}

	// Seed: walk each Benchmark* (following test-local helper calls) and
	// collect the module functions its call sites can name. Selector
	// calls are matched by qualifier==package-name for cross-package
	// functions, plus all module methods of that name.
	var frontier []*types.Func
	seed := func(fn *types.Func) {
		if fn != nil && !bf.reached[fn] {
			bf.reached[fn] = true
			frontier = append(frontier, fn)
		}
	}
	for dir, funcs := range testFuncs {
		visited := map[string]bool{}
		var visit func(name string)
		visit = func(name string) {
			if visited[name] {
				return
			}
			visited[name] = true
			tf := funcs[name]
			if tf == nil {
				return
			}
			ast.Inspect(tf.decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					// Same-package call: a test helper, or a function of
					// the package under test (in-package test files).
					visit(fun.Name)
					if df := byDir[dir]; df != nil {
						if fi := df[fun.Name]; fi != nil {
							seed(fi.Fn)
						}
					}
				case *ast.SelectorExpr:
					if qual, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
						if pf := byPkgName[qual.Name]; pf != nil {
							if fi := pf[fun.Sel.Name]; fi != nil {
								seed(fi.Fn)
							}
						}
					}
					// Method or unresolvable selector: overapproximate to
					// every module method with this name.
					for _, m := range methodsByName[fun.Sel.Name] {
						seed(m)
					}
				}
				return true
			})
		}
		for name := range funcs {
			if strings.HasPrefix(name, "Benchmark") {
				bf.benchCount++
				visit(name)
			}
		}
	}

	// Transitive closure over the static call graph, extending the
	// frontier through unresolved method calls by name.
	for len(frontier) > 0 {
		fn := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, callee := range f.Callees[fn] {
			if !bf.reached[callee] {
				bf.reached[callee] = true
				frontier = append(frontier, callee)
			}
		}
		fi := f.FuncOf[fn]
		if fi == nil {
			continue
		}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(fi.Pkg.Info, call)
			if callee != nil && f.FuncOf[callee] != nil {
				return true // statically resolved: the Callees edge covers it
			}
			// Dynamic or abstract dispatch: every module method with this
			// name is plausibly the target.
			for _, m := range methodsByName[sel.Sel.Name] {
				if !bf.reached[m] {
					bf.reached[m] = true
					frontier = append(frontier, m)
				}
			}
			return true
		})
	}
	return bf
}
