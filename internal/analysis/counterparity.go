package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// CounterParity is the cross-package schema guard: every metric the
// counters package declares must have a renderer/exporter twin, so the
// golden JSON artifacts can never silently lose a column.
//
// Two invariants are checked against the package named "counters":
//
//   - every exported field of counters.Metrics is read (selected) in at
//     least one other package — in this tree, core's panels() and the
//     exporters. A Metrics field nobody renders is a paper metric that
//     silently stopped flowing into figures and golden artifacts.
//   - the eventNames table has exactly one non-empty name per declared
//     Event constant. The array is sized by the compiler, but a forgotten
//     entry compiles as "" — and an unnamed event serializes as an empty
//     JSON key, corrupting every artifact that touches it.
type CounterParity struct{}

func (*CounterParity) Name() string { return "counterparity" }
func (*CounterParity) Doc() string {
	return "cross-check counters.Metrics fields and Event names against their renderer/exporter twins"
}

func (a *CounterParity) Check(prog *Program, pkg *Package) []Diagnostic {
	// The analyzer anchors on the counters package and looks outward; on
	// every other package it has nothing to do.
	if pkg.Name != "counters" {
		return nil
	}
	var diags []Diagnostic

	metrics := a.metricsStruct(pkg)
	if metrics != nil {
		used := a.fieldsUsedElsewhere(prog, pkg, metrics)
		for i := 0; i < metrics.NumFields(); i++ {
			fld := metrics.Field(i)
			if !fld.Exported() || used[fld] {
				continue
			}
			diags = append(diags, Diagnostic{prog.Fset.Position(fld.Pos()), a.Name(),
				fmt.Sprintf("counters.Metrics field %s has no renderer/exporter use outside %s; the golden schema would silently lose this column", fld.Name(), pkg.Path), nil})
		}
	}

	diags = append(diags, a.checkEventNames(prog, pkg)...)
	return diags
}

// metricsStruct finds the Metrics struct type in the counters package.
func (a *CounterParity) metricsStruct(pkg *Package) *types.Struct {
	obj := pkg.Types.Scope().Lookup("Metrics")
	if obj == nil {
		return nil
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	return st
}

// fieldsUsedElsewhere collects the Metrics fields selected in any other
// package of the program, straight off the engine's shared field-use
// relation — no re-walk of the module.
func (a *CounterParity) fieldsUsedElsewhere(prog *Program, counters *Package, metrics *types.Struct) map[*types.Var]bool {
	fieldUses := prog.Facts().FieldUses
	used := map[*types.Var]bool{}
	for i := 0; i < metrics.NumFields(); i++ {
		fld := metrics.Field(i)
		for pkg := range fieldUses[fld] {
			if pkg != counters {
				used[fld] = true
				break
			}
		}
	}
	return used
}

// checkEventNames verifies the eventNames literal covers every Event
// constant with a non-empty name.
func (a *CounterParity) checkEventNames(prog *Program, pkg *Package) []Diagnostic {
	eventObj := pkg.Types.Scope().Lookup("Event")
	if eventObj == nil {
		return nil
	}
	eventType := eventObj.Type()

	// Count the exported Event constants; the unexported iota sentinel
	// (numEvents) sizes the array but is not an event.
	events := 0
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if ok && c.Exported() && types.Identical(c.Type(), eventType) {
			events++
		}
	}
	if events == 0 {
		return nil
	}

	// Find the eventNames composite literal.
	var lit *ast.CompositeLit
	var litPos ast.Node
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for i, name := range vs.Names {
				if name.Name != "eventNames" && name.Name != "EventNames" {
					continue
				}
				if i < len(vs.Values) {
					if cl, ok := vs.Values[i].(*ast.CompositeLit); ok {
						lit, litPos = cl, name
					}
				}
			}
			return true
		})
	}
	if lit == nil {
		return nil
	}

	var diags []Diagnostic
	if len(lit.Elts) != events {
		diags = append(diags, Diagnostic{prog.Fset.Position(litPos.Pos()), a.Name(),
			fmt.Sprintf("eventNames has %d entries for %d Event constants; a missing entry serializes as an empty column name", len(lit.Elts), events), nil})
	}
	for _, elt := range lit.Elts {
		if bl, ok := elt.(*ast.BasicLit); ok && bl.Value == `""` {
			diags = append(diags, Diagnostic{prog.Fset.Position(bl.Pos()), a.Name(),
				"empty event name would serialize as an empty golden-artifact column", nil})
		}
	}
	return diags
}
