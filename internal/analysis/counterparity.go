package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// CounterParity is the cross-package schema guard: every metric the
// counters package declares must have a renderer/exporter twin, so the
// golden JSON artifacts can never silently lose a column.
//
// Two invariants are checked against the package named "counters":
//
//   - every exported field of counters.Metrics is read (selected) in at
//     least one other package — in this tree, core's panels() and the
//     exporters. A Metrics field nobody renders is a paper metric that
//     silently stopped flowing into figures and golden artifacts.
//   - the eventNames table has exactly one non-empty name per declared
//     Event constant. The array is sized by the compiler, but a forgotten
//     entry compiles as "" — and an unnamed event serializes as an empty
//     JSON key, corrupting every artifact that touches it.
//
// A third invariant anchors on the package named "obs": every exported
// Metric* string constant must be the name argument of a registration
// call (obs.NewCounter/NewGauge/NewHistogram or the Registry methods)
// somewhere in the module. A declared-but-unregistered metric name is a
// dashboard column that silently never appears in any snapshot.
type CounterParity struct{}

func (*CounterParity) Name() string { return "counterparity" }
func (*CounterParity) Doc() string {
	return "cross-check counters.Metrics fields and Event names against their renderer/exporter twins"
}

func (a *CounterParity) Check(prog *Program, pkg *Package) []Diagnostic {
	// The analyzer anchors on the counters and obs packages and looks
	// outward; on every other package it has nothing to do.
	if pkg.Name == "obs" {
		return a.checkMetricRegistration(prog, pkg)
	}
	if pkg.Name != "counters" {
		return nil
	}
	var diags []Diagnostic

	metrics := a.metricsStruct(pkg)
	if metrics != nil {
		used := a.fieldsUsedElsewhere(prog, pkg, metrics)
		for i := 0; i < metrics.NumFields(); i++ {
			fld := metrics.Field(i)
			if !fld.Exported() || used[fld] {
				continue
			}
			diags = append(diags, Diagnostic{Pos: prog.Fset.Position(fld.Pos()), Analyzer: a.Name(),
				Message: fmt.Sprintf("counters.Metrics field %s has no renderer/exporter use outside %s; the golden schema would silently lose this column", fld.Name(), pkg.Path)})
		}
	}

	diags = append(diags, a.checkEventNames(prog, pkg)...)
	return diags
}

// metricRegistrars are the obs entry points whose first name argument
// registers a metric: the package-level constructors and the Registry
// methods they wrap.
var metricRegistrars = map[string]bool{
	"NewCounter":   true,
	"NewGauge":     true,
	"NewHistogram": true,
	"Counter":      true,
	"Gauge":        true,
	"Histogram":    true,
}

// checkMetricRegistration verifies every exported Metric* string constant
// in the obs package reaches a registration call somewhere in the module.
// Registration is matched by constant value, so both obs.MetricX at a
// call site and a dot-imported or locally aliased use count.
func (a *CounterParity) checkMetricRegistration(prog *Program, obsPkg *Package) []Diagnostic {
	// Collect the declared metric name constants.
	consts := map[string]*types.Const{} // metric name value -> constant
	scope := obsPkg.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() || !strings.HasPrefix(name, "Metric") {
			continue
		}
		if c.Val().Kind() != constant.String {
			continue
		}
		consts[constant.StringVal(c.Val())] = c
	}
	if len(consts) == 0 {
		return nil
	}

	// Scan every package for registration calls and resolve the name
	// argument's constant value.
	registered := map[string]bool{}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				fn := calleeFunc(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPkg.Path || !metricRegistrars[fn.Name()] {
					return true
				}
				if tv, ok := pkg.Info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
					registered[constant.StringVal(tv.Value)] = true
				}
				return true
			})
		}
	}

	var diags []Diagnostic
	for _, name := range scope.Names() { // scope order keeps output stable
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || consts[metricValue(c)] != c || registered[metricValue(c)] {
			continue
		}
		diags = append(diags, Diagnostic{Pos: prog.Fset.Position(c.Pos()), Analyzer: a.Name(),
			Message: fmt.Sprintf("obs metric constant %s (%q) is never registered via NewCounter/NewGauge/NewHistogram; the metric can never appear in a snapshot", c.Name(), metricValue(c))})
	}
	return diags
}

// metricValue returns a constant's string value, or "" for non-strings.
func metricValue(c *types.Const) string {
	if c.Val().Kind() != constant.String {
		return ""
	}
	return constant.StringVal(c.Val())
}

// metricsStruct finds the Metrics struct type in the counters package.
func (a *CounterParity) metricsStruct(pkg *Package) *types.Struct {
	obj := pkg.Types.Scope().Lookup("Metrics")
	if obj == nil {
		return nil
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	return st
}

// fieldsUsedElsewhere collects the Metrics fields selected in any other
// package of the program, straight off the engine's shared field-use
// relation — no re-walk of the module.
func (a *CounterParity) fieldsUsedElsewhere(prog *Program, counters *Package, metrics *types.Struct) map[*types.Var]bool {
	fieldUses := prog.Facts().FieldUses
	used := map[*types.Var]bool{}
	for i := 0; i < metrics.NumFields(); i++ {
		fld := metrics.Field(i)
		for pkg := range fieldUses[fld] {
			if pkg != counters {
				used[fld] = true
				break
			}
		}
	}
	return used
}

// checkEventNames verifies the eventNames literal covers every Event
// constant with a non-empty name.
func (a *CounterParity) checkEventNames(prog *Program, pkg *Package) []Diagnostic {
	eventObj := pkg.Types.Scope().Lookup("Event")
	if eventObj == nil {
		return nil
	}
	eventType := eventObj.Type()

	// Count the exported Event constants; the unexported iota sentinel
	// (numEvents) sizes the array but is not an event.
	events := 0
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if ok && c.Exported() && types.Identical(c.Type(), eventType) {
			events++
		}
	}
	if events == 0 {
		return nil
	}

	// Find the eventNames composite literal.
	var lit *ast.CompositeLit
	var litPos ast.Node
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for i, name := range vs.Names {
				if name.Name != "eventNames" && name.Name != "EventNames" {
					continue
				}
				if i < len(vs.Values) {
					if cl, ok := vs.Values[i].(*ast.CompositeLit); ok {
						lit, litPos = cl, name
					}
				}
			}
			return true
		})
	}
	if lit == nil {
		return nil
	}

	var diags []Diagnostic
	if len(lit.Elts) != events {
		diags = append(diags, Diagnostic{Pos: prog.Fset.Position(litPos.Pos()), Analyzer: a.Name(),
			Message: fmt.Sprintf("eventNames has %d entries for %d Event constants; a missing entry serializes as an empty column name", len(lit.Elts), events)})
	}
	for _, elt := range lit.Elts {
		if bl, ok := elt.(*ast.BasicLit); ok && bl.Value == `""` {
			diags = append(diags, Diagnostic{Pos: prog.Fset.Position(bl.Pos()), Analyzer: a.Name(),
				Message: "empty event name would serialize as an empty golden-artifact column"})
		}
	}
	return diags
}
