package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HotCall flags per-iteration call overhead in profile-hot loops — the
// dispatch and lookup costs that stay invisible to correctness tests but
// show up directly in the cycle engine's instructions-per-second:
//
//   - an interface method call where exactly one concrete in-module type
//     implements the interface: the dispatch can devirtualize (and then
//     inline) by using the concrete type
//   - a map lookup whose map and key are both loop-invariant: hoist the
//     lookup above the loop
//   - channel sends/receives/selects, which take the runtime's channel
//     lock per operation: batch, or restructure to a slice handoff
//   - a call from hot code into a cold in-module function too large to
//     inline — reported as a note (advisory, does not fail the lint),
//     since splitting a function is a judgement call
type HotCall struct{}

func (*HotCall) Name() string { return "hotcall" }
func (*HotCall) Doc() string {
	return "flag devirtualizable interface calls, loop-invariant map lookups, and channel ops in profile-hot loops"
}

// inlineBudgetNodes approximates the compiler's inlining budget: bodies
// above this many AST nodes will not inline into their hot callers.
const inlineBudgetNodes = 120

func (a *HotCall) Check(prog *Program, pkg *Package) []Diagnostic {
	facts := prog.Facts()
	hf := facts.hotFor()
	var diags []Diagnostic
	for _, fi := range facts.PkgFuncs(pkg) {
		reason, hot := hf.hot[fi.Fn]
		if !hot {
			continue
		}
		w := &hotCallWalker{
			a: a, prog: prog, pkg: pkg, fi: fi, facts: facts, hf: hf,
			reason:   reason,
			bodyLoop: hf.loopHot[fi.Fn],
			noted:    map[*types.Func]bool{},
		}
		w.walk(fi.Decl.Body, nil)
		diags = append(diags, w.diags...)
	}
	return diags
}

type hotCallWalker struct {
	a        *HotCall
	prog     *Program
	pkg      *Package
	fi       *FuncInfo
	facts    *Facts
	hf       *hotFacts
	reason   string
	bodyLoop bool
	// noted dedupes the hot→cold advisory per callee: one note per
	// (caller, callee) pair, not one per call site.
	noted map[*types.Func]bool
	diags []Diagnostic
}

func (w *hotCallWalker) report(n ast.Node, note bool, format string, args ...any) {
	w.diags = append(w.diags, Diagnostic{
		Pos:      w.prog.Fset.Position(n.Pos()),
		Analyzer: w.a.Name(),
		Message:  fmt.Sprintf(format, args...),
		Note:     note,
	})
}

func (w *hotCallWalker) inLoop(loops []ast.Node) bool {
	return w.bodyLoop || len(loops) > 0
}

func (w *hotCallWalker) walk(n ast.Node, loops []ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.ForStmt:
			if m.Init != nil {
				w.walk(m.Init, loops)
			}
			inner := append(loops, ast.Node(m))
			if m.Cond != nil {
				w.walk(m.Cond, inner)
			}
			if m.Post != nil {
				w.walk(m.Post, inner)
			}
			w.walk(m.Body, inner)
			return false
		case *ast.RangeStmt:
			w.walk(m.X, loops)
			w.walk(m.Body, append(loops, ast.Node(m)))
			return false
		case *ast.CallExpr:
			if w.inLoop(loops) {
				w.checkInterfaceCall(m)
				w.checkColdCallee(m)
			}
		case *ast.IndexExpr:
			if w.inLoop(loops) {
				w.checkInvariantMapLookup(m, loops)
			}
		case *ast.SendStmt:
			if w.inLoop(loops) {
				w.report(m, false,
					"channel send in a hot loop takes the channel lock per iteration (%s); batch into a slice and send once", w.reason)
			}
		case *ast.UnaryExpr:
			if m.Op == token.ARROW && w.inLoop(loops) {
				w.report(m, false,
					"channel receive in a hot loop takes the channel lock per iteration (%s); drain in batches outside the hot path", w.reason)
			}
		case *ast.SelectStmt:
			if w.inLoop(loops) {
				w.report(m, false,
					"select in a hot loop polls every case's channel lock per iteration (%s); restructure to a slice handoff or a coarser wakeup", w.reason)
			}
			// Still walk the bodies, but the comm clauses' channel ops are
			// part of the select we just flagged — skip re-reporting them.
			for _, clause := range m.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok {
					for _, s := range cc.Body {
						w.walk(s, loops)
					}
				}
			}
			return false
		}
		return true
	})
}

// checkInterfaceCall flags interface method calls with exactly one
// in-module concrete implementation.
func (w *hotCallWalker) checkInterfaceCall(call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	s, ok := w.pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return
	}
	recv := s.Recv()
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok || isErrorType(recv) {
		return
	}
	impls := w.moduleImplementations(iface)
	if len(impls) != 1 {
		return
	}
	w.report(call, false,
		"interface call %s.%s in a hot loop dispatches dynamically (%s); %s is the only in-module implementation — use it concretely to devirtualize",
		typeDisplay(recv, w.pkg), sel.Sel.Name, w.reason, typeDisplay(impls[0], w.pkg))
}

// moduleImplementations returns the module's named types satisfying
// iface, by value or by pointer, skipping interface types themselves.
func (w *hotCallWalker) moduleImplementations(iface *types.Interface) []types.Type {
	var impls []types.Type
	for _, named := range w.facts.NamedTypes {
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		if types.Implements(named, iface) {
			impls = append(impls, named)
		} else if ptr := types.NewPointer(named); types.Implements(ptr, iface) {
			impls = append(impls, ptr)
		}
	}
	return impls
}

// checkInvariantMapLookup flags m[k] where neither the map nor the key
// can change across iterations of the innermost enclosing loop.
func (w *hotCallWalker) checkInvariantMapLookup(idx *ast.IndexExpr, loops []ast.Node) {
	if len(loops) == 0 {
		return // whole-body loop context has no loop node to test invariance against
	}
	tv, ok := w.pkg.Info.Types[idx.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	loop := loops[len(loops)-1]
	mObj := chainObject(w.pkg.Info, idx.X)
	kObj, kConst := lookupKeyObject(w.pkg.Info, idx.Index)
	if mObj == nil || (!kConst && kObj == nil) {
		return
	}
	// The lookup result being assigned is fine; the *map or key* being
	// written in the loop defeats hoisting.
	if objAssignedIn(w.pkg.Info, loop, mObj) || mapMutatedIn(w.pkg.Info, loop, mObj) {
		return
	}
	if kObj != nil && objAssignedIn(w.pkg.Info, loop, kObj) {
		return
	}
	w.report(idx, false,
		"map lookup %s is loop-invariant in a hot loop (%s); hoist it above the loop", exprString(idx), w.reason)
}

// lookupKeyObject classifies a map key expression: a constant literal
// (kConst), or a simple object chain whose root object is returned.
func lookupKeyObject(info *types.Info, key ast.Expr) (obj types.Object, konst bool) {
	key = ast.Unparen(key)
	if _, ok := key.(*ast.BasicLit); ok {
		return nil, true
	}
	if tv, ok := info.Types[key]; ok && tv.Value != nil {
		return nil, true // constant expression
	}
	return chainObject(info, key), false
}

// objAssignedIn reports whether obj is the target of an assignment,
// IncDec, or unary-& (potential aliasing write) anywhere in the loop.
func objAssignedIn(info *types.Info, loop ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if chainObject(info, lhs) == obj {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if chainObject(info, n.X) == obj {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND && chainObject(info, n.X) == obj {
				found = true
			}
		case *ast.RangeStmt:
			for _, lhs := range []ast.Expr{n.Key, n.Value} {
				if lhs != nil && chainObject(info, lhs) == obj {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// mapMutatedIn reports whether the loop stores into or deletes from the
// map rooted at obj.
func mapMutatedIn(info *types.Info, loop ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && chainObject(info, idx.X) == obj {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "delete" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) > 0 {
					if chainObject(info, n.Args[0]) == obj {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// checkColdCallee emits an advisory note when a hot loop calls a cold
// in-module function whose body exceeds the inlining budget.
func (w *hotCallWalker) checkColdCallee(call *ast.CallExpr) {
	fn := calleeFunc(w.pkg.Info, call)
	if fn == nil || w.noted[fn] {
		return
	}
	fi := w.facts.FuncOf[fn]
	if fi == nil {
		return // out-of-module or bodiless: nothing to say about its size
	}
	// Loop propagation marks every in-module loop callee hot, so "cold"
	// here means: no profile or directive evidence of its own (loopHot
	// marks the propagation-only members).
	if _, calleeHot := w.hf.hot[fn]; calleeHot && !w.hf.loopHot[fn] {
		return
	}
	size := 0
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if n != nil {
			size++
		}
		return true
	})
	if size <= inlineBudgetNodes {
		return
	}
	w.noted[fn] = true
	w.report(call, true,
		"note: hot loop calls %s (~%d AST nodes), too large to inline and absent from the profile's hot set (%s); consider splitting its fast path",
		shortFuncName(fn), size, w.reason)
}

// typeDisplay renders a type relative to the reporting package.
func typeDisplay(t types.Type, pkg *Package) string {
	return types.TypeString(t, types.RelativeTo(pkg.Types))
}
